GO ?= go

.PHONY: ci vet build test race bench bench-smoke campaign-check report-smoke report-golden trace-smoke trace-golden discipline-smoke discipline-golden shard-smoke shard-golden serve-smoke serve-golden telemetry-smoke telemetry-golden byzantine-smoke byzantine-golden

# ci is the gate run by .github/workflows/ci.yml: vet, build, and the
# full test suite under the race detector (the harness worker pool is
# the main customer of -race).
ci: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-smoke compiles and runs every benchmark exactly once (no timing
# loop): a cheap CI guard that benchmark code doesn't rot.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# campaign-check runs the smoke campaign and gates it against the
# committed golden file (regenerate with:
#   go run ./cmd/nticampaign -preset smoke -write-golden cmd/nticampaign/testdata/smoke.golden.json)
campaign-check:
	$(GO) run ./cmd/nticampaign -preset smoke -q -check cmd/nticampaign/testdata/smoke.golden.json

# report-smoke runs the smoke preset under 3 seeds, renders the
# Markdown+SVG report and byte-diffs it against the committed golden:
# the report pipeline (harness → stats → report) is deterministic end
# to end, so any diff is a real behavior change. Regenerate after an
# intentional change with `make report-golden`.
report-smoke:
	rm -rf build/report-smoke
	$(GO) run ./cmd/nticampaign -preset smoke -seeds 3 -q -out build/report-smoke >/dev/null
	$(GO) run ./cmd/ntireport -in build/report-smoke -out build/report-smoke/report.md
	diff -u cmd/ntireport/testdata/smoke.report.golden.md build/report-smoke/report.md

# trace-smoke walks one CSP through the full Fig. 3 data path on a
# 2-node system with tracing on (DMA words included) and byte-diffs the
# JSONL trace export against the committed golden. Any diff means the
# cross-layer event stream — ordering, timing, payloads or formatting —
# changed. Regenerate after an intentional change with `make
# trace-golden`.
trace-smoke:
	mkdir -p build
	$(GO) run ./cmd/ntitrace -json > build/trace-smoke.jsonl
	diff -u cmd/ntitrace/testdata/smoke.trace.golden.jsonl build/trace-smoke.jsonl

# discipline-smoke runs the clock-discipline shootout (every discipline
# × ensemble + GPS fault matrix) and byte-diffs its comparison report —
# including the head-to-head ranking table — against the committed
# golden. Any diff means a discipline's dynamics changed. Regenerate
# after an intentional change with `make discipline-golden`.
discipline-smoke:
	rm -rf build/discipline-smoke
	mkdir -p build/discipline-smoke
	$(GO) run ./cmd/nticampaign -preset disciplines -q -report build/discipline-smoke/report.md >/dev/null
	diff -u cmd/nticampaign/testdata/disciplines.report.golden.md build/discipline-smoke/report.md

# shard-smoke runs the sharded WANs-of-LANs campaign with 4 shard
# workers per multi-segment cell and byte-diffs its JSONL artifact
# against the committed golden, which was generated with -shards 1
# (sequential execution — the single-kernel baseline): the conservative
# parallel kernel must be bit-identical to it at any worker count.
# Regenerate after an intentional behavior change with `make
# shard-golden`.
shard-smoke:
	rm -rf build/shard-smoke
	$(GO) run ./cmd/nticampaign -preset sharded -shards 4 -q -out build/shard-smoke >/dev/null
	diff -u cmd/nticampaign/testdata/sharded.golden.jsonl build/shard-smoke/campaign-sharded.jsonl

# byzantine-smoke runs the Byzantine traitor-tolerance campaign with 4
# shard workers and byte-diffs its JSONL artifact against the committed
# golden, which was generated with -shards 1: traitor casts, per-pair
# lies and source-quarantine decisions are pure functions of the cell
# seed, so the adversarial grid must be bit-identical at any shard or
# campaign worker count. Regenerate after an intentional behavior
# change with `make byzantine-golden`.
byzantine-smoke:
	rm -rf build/byzantine-smoke
	$(GO) run ./cmd/nticampaign -preset byzantine -shards 4 -q -out build/byzantine-smoke >/dev/null
	diff -u cmd/nticampaign/testdata/byzantine.golden.jsonl build/byzantine-smoke/campaign-byzantine.jsonl

# serve-smoke runs the serving preset (clients × arrival grid, 3 seeds)
# with 4 shard workers and byte-diffs its JSONL artifact — including the
# served-accuracy percentiles — against the committed golden, which was
# generated with -shards 1: query arrival streams and quantile sketches
# must be bit-identical for any shard/worker count. Regenerate after an
# intentional behavior change with `make serve-golden`.
serve-smoke:
	rm -rf build/serve-smoke
	$(GO) run ./cmd/nticampaign -preset serving -seeds 3 -shards 4 -q -out build/serve-smoke >/dev/null
	diff -u cmd/nticampaign/testdata/serving.golden.jsonl build/serve-smoke/campaign-serving.jsonl

# telemetry-smoke runs the sharded campaign with runtime telemetry on
# (4 shard workers) and byte-diffs the combined per-tick snapshot
# artifact against the committed golden, which was generated with
# -shards 1: every counter, gauge high-water and histogram quantile in
# every snapshot must be bit-identical at any worker or shard-worker
# count. Regenerate after an intentional change with `make
# telemetry-golden`.
telemetry-smoke:
	rm -rf build/telemetry-smoke
	$(GO) run ./cmd/nticampaign -preset sharded -shards 4 -telemetry -q -out build/telemetry-smoke >/dev/null
	diff -u cmd/nticampaign/testdata/sharded.telemetry.golden.jsonl build/telemetry-smoke/campaign-sharded.telemetry.jsonl

# telemetry-golden refreshes the committed telemetry snapshot golden
# from a sequential (-shards 1) run.
telemetry-golden:
	rm -rf build/telemetry-golden
	$(GO) run ./cmd/nticampaign -preset sharded -shards 1 -telemetry -q -out build/telemetry-golden >/dev/null
	cp build/telemetry-golden/campaign-sharded.telemetry.jsonl cmd/nticampaign/testdata/sharded.telemetry.golden.jsonl

# serve-golden refreshes the committed serving campaign golden from a
# sequential (-shards 1) run.
serve-golden:
	rm -rf build/serve-golden
	$(GO) run ./cmd/nticampaign -preset serving -seeds 3 -shards 1 -q -out build/serve-golden >/dev/null
	cp build/serve-golden/campaign-serving.jsonl cmd/nticampaign/testdata/serving.golden.jsonl

# shard-golden refreshes the committed sharded campaign golden from a
# sequential (-shards 1) run.
shard-golden:
	rm -rf build/shard-golden
	$(GO) run ./cmd/nticampaign -preset sharded -shards 1 -q -out build/shard-golden >/dev/null
	cp build/shard-golden/campaign-sharded.jsonl cmd/nticampaign/testdata/sharded.golden.jsonl

# byzantine-golden refreshes the committed Byzantine campaign golden
# from a sequential (-shards 1) run.
byzantine-golden:
	rm -rf build/byzantine-golden
	$(GO) run ./cmd/nticampaign -preset byzantine -shards 1 -q -out build/byzantine-golden >/dev/null
	cp build/byzantine-golden/campaign-byzantine.jsonl cmd/nticampaign/testdata/byzantine.golden.jsonl

# discipline-golden refreshes the committed discipline shootout golden.
discipline-golden:
	$(GO) run ./cmd/nticampaign -preset disciplines -q -report cmd/nticampaign/testdata/disciplines.report.golden.md >/dev/null

# trace-golden refreshes the committed smoke trace golden.
trace-golden:
	$(GO) run ./cmd/ntitrace -json > cmd/ntitrace/testdata/smoke.trace.golden.jsonl

# report-golden refreshes the committed smoke report golden.
report-golden:
	rm -rf build/report-smoke
	$(GO) run ./cmd/nticampaign -preset smoke -seeds 3 -q -out build/report-smoke >/dev/null
	$(GO) run ./cmd/ntireport -in build/report-smoke -out cmd/ntireport/testdata/smoke.report.golden.md
