GO ?= go

.PHONY: ci vet build test race bench bench-smoke campaign-check

# ci is the gate run by .github/workflows/ci.yml: vet, build, and the
# full test suite under the race detector (the harness worker pool is
# the main customer of -race).
ci: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-smoke compiles and runs every benchmark exactly once (no timing
# loop): a cheap CI guard that benchmark code doesn't rot.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# campaign-check runs the smoke campaign and gates it against the
# committed golden file (regenerate with:
#   go run ./cmd/nticampaign -preset smoke -write-golden cmd/nticampaign/testdata/smoke.golden.json)
campaign-check:
	$(GO) run ./cmd/nticampaign -preset smoke -q -check cmd/nticampaign/testdata/smoke.golden.json
