// Command ntifault runs targeted fault-injection studies against a
// GPS-anchored cluster: pick a receiver failure mode (from the [HS97]
// failure classes), a magnitude and a policy, and watch what the
// interval-based clock validation does with it.
//
// Usage:
//
//	ntifault -fault offset -mag 0.02 -nodes 8 -trust=false
package main

import (
	"flag"
	"fmt"
	"os"

	"ntisim/internal/cluster"
	"ntisim/internal/gps"
	"ntisim/internal/metrics"
)

func main() {
	var (
		faultName = flag.String("fault", "offset", "fault kind: none|outage|offset|wrongsec|flapping|ramp")
		magnitude = flag.Float64("mag", 20e-3, "fault magnitude (s, s/s or whole seconds, by kind)")
		start     = flag.Float64("start", 60, "fault onset [sim s]")
		nodes     = flag.Int("nodes", 8, "cluster size")
		gpsNodes  = flag.Int("gps", 3, "GPS-equipped nodes (node 'gps-1' carries the fault)")
		trust     = flag.Bool("trust", false, "naively trust GPS (bypass clock validation)")
		seed      = flag.Uint64("seed", 42, "random seed")
		duration  = flag.Float64("duration", 240, "total simulated time [s]")
	)
	flag.Parse()

	kinds := map[string]gps.FaultKind{
		"none": gps.FaultNone, "outage": gps.FaultOutage, "offset": gps.FaultOffset,
		"wrongsec": gps.FaultWrongSec, "flapping": gps.FaultFlapping, "ramp": gps.FaultRampDrift,
	}
	kind, ok := kinds[*faultName]
	if !ok {
		fmt.Fprintf(os.Stderr, "ntifault: unknown fault %q\n", *faultName)
		os.Exit(2)
	}
	if *gpsNodes < 1 || *gpsNodes > *nodes {
		fmt.Fprintln(os.Stderr, "ntifault: gps count out of range")
		os.Exit(2)
	}

	cfg := cluster.Defaults(*nodes, *seed)
	cfg.Sync.TrustExternal = *trust
	cfg.GPS = map[int]gps.Config{}
	for i := 0; i < *gpsNodes; i++ {
		cfg.GPS[i] = gps.DefaultReceiver()
	}
	if kind != gps.FaultNone {
		rc := gps.DefaultReceiver()
		rc.Faults = []gps.Fault{{Kind: kind, Start: *start, Magnitude: *magnitude}}
		cfg.GPS[*gpsNodes-1] = rc
	}

	c := cluster.New(cfg)
	b := c.MeasureDelay(0, 1, 16)
	for _, m := range c.Members {
		m.Sync.SetDelayBounds(b)
	}
	c.Start(c.Sim.Now() + 1)

	fmt.Printf("fault=%s mag=%g onset=%gs policy=%s nodes=%d gps=%d seed=%d\n\n",
		kind, *magnitude, *start, policy(*trust), *nodes, *gpsNodes, *seed)
	tb := metrics.Table{Header: []string{"t [s]", "precision [µs]", "worst |C-t| [µs]", "contained", "ext acc/rej"}}
	begin := c.Sim.Now()
	for t := begin + 10; t <= begin+*duration; t += 10 {
		c.Sim.RunUntil(t)
		cs := c.Snapshot()
		var acc, rej uint64
		for _, m := range c.Members {
			st := m.Sync.Stats()
			acc += st.ExternalAccepted
			rej += st.ExternalRejected
		}
		tb.AddRow(fmt.Sprintf("%.0f", t), metrics.Us(cs.Precision), metrics.Us(cs.MaxAbsOffset),
			fmt.Sprint(cs.Contained), fmt.Sprintf("%d/%d", acc, rej))
	}
	tb.Fprint(os.Stdout)
}

func policy(trust bool) string {
	if trust {
		return "naive-trust"
	}
	return "validated"
}
