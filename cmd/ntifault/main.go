// Command ntifault runs targeted fault-injection studies against a
// GPS-anchored cluster: pick a receiver failure mode (from the [HS97]
// failure classes), a magnitude and a policy, and watch what the
// interval-based clock validation does with it. Cells execute through
// the internal/harness campaign engine; `-fault all` fans the whole
// fault × policy matrix across all cores and prints a summary table.
//
// Usage:
//
//	ntifault -fault offset -mag 0.02 -nodes 8 -trust=false
//	ntifault -fault all              # every fault kind under both policies
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"ntisim/internal/cluster"
	"ntisim/internal/gps"
	"ntisim/internal/harness"
	"ntisim/internal/metrics"
)

var kinds = map[string]gps.FaultKind{
	"none": gps.FaultNone, "outage": gps.FaultOutage, "offset": gps.FaultOffset,
	"wrongsec": gps.FaultWrongSec, "flapping": gps.FaultFlapping, "ramp": gps.FaultRampDrift,
}

func kindChoices() string {
	names := make([]string, 0, len(kinds)+1)
	for n := range kinds {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(append(names, "all"), "|")
}

func main() {
	var (
		faultName = flag.String("fault", "offset", "fault kind: "+kindChoices())
		magnitude = flag.Float64("mag", 20e-3, "fault magnitude (s, s/s or whole seconds, by kind)")
		start     = flag.Float64("start", 60, "fault onset [sim s]")
		nodes     = flag.Int("nodes", 8, "cluster size")
		gpsNodes  = flag.Int("gps", 3, "GPS-equipped nodes (node 'gps-1' carries the fault)")
		trust     = flag.Bool("trust", false, "naively trust GPS (bypass clock validation)")
		seed      = flag.Uint64("seed", 42, "random seed")
		duration  = flag.Float64("duration", 240, "total simulated time [s]")
		workers   = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		jsonlPath = flag.String("jsonl", "", "also write per-cell JSONL records to this file")
	)
	flag.Parse()

	if *gpsNodes < 1 || *gpsNodes > *nodes {
		fmt.Fprintln(os.Stderr, "ntifault: gps count out of range")
		os.Exit(2)
	}

	var scenarios []harness.FaultScenario
	if *faultName == "all" {
		var names []string
		for n := range kinds {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			for _, tr := range []bool{false, true} {
				scenarios = append(scenarios, harness.FaultScenario{
					Kind: kinds[n], Magnitude: *magnitude, StartS: *start, Trust: tr,
				})
			}
		}
	} else {
		kind, ok := kinds[*faultName]
		if !ok {
			fmt.Fprintf(os.Stderr, "ntifault: unknown fault %q (choices: %s)\n", *faultName, kindChoices())
			os.Exit(2)
		}
		scenarios = []harness.FaultScenario{{Kind: kind, Magnitude: *magnitude, StartS: *start, Trust: *trust}}
	}

	spec := harness.Spec{
		Name:         "fault",
		Base:         cluster.Defaults(*nodes, *seed),
		Points:       harness.FaultAxis(*gpsNodes, scenarios...).Points,
		Seeds:        []uint64{*seed},
		DelayProbes:  16,
		WarmupS:      5,
		WindowS:      *duration,
		SampleEveryS: 10,
		Timeline:     len(scenarios) == 1,
		Workers:      *workers,
	}
	if len(scenarios) > 1 {
		spec.Progress = os.Stderr
	}
	camp := harness.Run(spec)

	if spec.Timeline {
		printTimeline(&camp.Results[0], *nodes, *gpsNodes, *seed)
	} else {
		printMatrix(camp)
	}

	if *jsonlPath != "" {
		f, err := os.Create(*jsonlPath)
		if err == nil {
			err = camp.WriteJSONL(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "ntifault: %v\n", err)
			os.Exit(1)
		}
	}
	if failed := camp.Failed(); len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "ntifault: %d of %d cells failed\n", len(failed), len(camp.Results))
		os.Exit(1)
	}
}

// printTimeline renders the single-scenario evolution, one row per
// sample, as the pre-harness ntifault did.
func printTimeline(r *harness.Result, nodes, gpsN int, seed uint64) {
	fmt.Printf("fault=%s mag=%s onset=%ss policy=%s nodes=%d gps=%d seed=%d\n\n",
		r.Params["fault"], r.Params["mag"], r.Params["onset"], r.Params["policy"], nodes, gpsN, seed)
	if r.Err != "" {
		fmt.Printf("cell failed: %s\n", r.Err)
		return
	}
	tb := metrics.Table{Header: []string{"t [s]", "precision [µs]", "worst |C-t| [µs]", "contained", "ext acc/rej"}}
	for _, p := range r.Timeline {
		tb.AddRow(fmt.Sprintf("%.0f", p.T), metrics.Us(p.PrecisionS), metrics.Us(p.MaxAbsOffS),
			fmt.Sprint(p.Contained), fmt.Sprintf("%d/%d", p.ExtAccepted, p.ExtRejected))
	}
	tb.Fprint(os.Stdout)
}

// printMatrix renders the fault × policy summary.
func printMatrix(camp *harness.Campaign) {
	tb := metrics.Table{Header: []string{"fault", "policy", "mean prec [µs]", "worst |C-t| [µs]", "contained", "ext acc/rej"}}
	for i := range camp.Results {
		r := &camp.Results[i]
		if r.Err != "" {
			tb.AddRow(r.Params["fault"], r.Params["policy"], "error", r.Err, "", "")
			continue
		}
		contained := fmt.Sprintf("%d/%d", r.Samples-r.ContainmentViolations, r.Samples)
		tb.AddRow(r.Params["fault"], r.Params["policy"],
			metrics.Us(r.Precision.Mean), metrics.Us(r.Accuracy.Max), contained,
			fmt.Sprintf("%d/%d", r.Sync.ExternalAccepted, r.Sync.ExternalRejected))
	}
	tb.Fprint(os.Stdout)
}
