// Command ntiflight analyzes cross-layer trace artifacts (the JSONL
// emitted by `nticampaign -trace` or `ntitrace -json`): it reconstructs
// the per-hop latency distribution of the Fig. 3 timestamping data path
// — CSP send → TRANSMIT trigger → serialization → reception → RECEIVE
// trigger → stored → CI arrival → round update — and prints the fault
// onset/recovery and round-convergence timelines.
//
// Usage:
//
//	ntiflight -in artifacts/campaign-smoke.cell-000.trace.jsonl
//	ntitrace -json | ntiflight -in -
//	ntiflight -in cell.trace.jsonl -perfetto flight.json  # ui.perfetto.dev
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ntisim/internal/discipline"
	"ntisim/internal/gps"
	"ntisim/internal/metrics"
	"ntisim/internal/trace"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ntiflight: "+format+"\n", args...)
	os.Exit(1)
}

// presentKinds lists the distinct record kinds in the trace, in first-
// appearance order.
func presentKinds(recs []trace.Record) []string {
	seen := map[string]bool{}
	var out []string
	for i := range recs {
		k := recs[i].Kind.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

func main() {
	in := flag.String("in", "", "trace JSONL file ('-' for stdin)")
	perfetto := flag.String("perfetto", "", "additionally convert the trace to Chrome/Perfetto trace-event JSON at this path")
	rounds := flag.Int("rounds", 8, "round-timeline entries to print (0 = none, -1 = all)")
	flag.Parse()

	if *in == "" {
		fatalf("-in is required (trace JSONL from 'nticampaign -trace' or 'ntitrace -json')")
	}
	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		r = f
	}
	recs, err := trace.ReadJSONL(r)
	if err != nil {
		fatalf("%v", err)
	}
	if len(recs) == 0 {
		fatalf("empty trace")
	}
	fmt.Printf("%d records, t=%.6f..%.6f\n\n", len(recs), recs[0].T, recs[len(recs)-1].T)

	hops := trace.FlightPath(recs)
	matched := false
	for _, h := range hops {
		if h.N > 0 {
			matched = true
			break
		}
	}
	if !matched {
		// A zero-filled table would read as "everything took 0 µs". Name
		// the kinds the trace does carry so the user can see what they
		// loaded (e.g. a ring that wrapped past the CSP records, or a
		// tracer configured without the flight-path kinds).
		fatalf("no flight-path records in %s (need csp-send/tx-trigger/frame-tx/frame-rx/rx-trigger/rx-done/csp-arrival chains; trace carries: %s)",
			*in, strings.Join(presentKinds(recs), ", "))
	}

	fmt.Println("flight path (per-hop latency, Fig. 3 stages):")
	tb := metrics.Table{Header: []string{"hop", "n", "min [µs]", "median [µs]", "p99 [µs]", "max [µs]"}}
	for _, h := range hops {
		if h.N == 0 {
			tb.AddRow(h.Name, "0", "-", "-", "-", "-")
			continue
		}
		tb.AddRow(h.Name, fmt.Sprint(h.N),
			metrics.Us(h.MinS), metrics.Us(h.MedianS), metrics.Us(h.P99S), metrics.Us(h.MaxS))
	}
	tb.Fprint(os.Stdout)

	if faults := trace.FaultTimeline(recs); len(faults) > 0 {
		fmt.Println("\nfault timeline:")
		for _, f := range faults {
			what := "recovered from"
			mag := ""
			if f.Onset {
				what = "onset of"
				mag = fmt.Sprintf(" (magnitude %g)", f.Magnitude)
			}
			fmt.Printf("  t=%10.3f  node %d: %s %s%s\n",
				f.T, f.Node, what, gps.FaultKind(f.FaultKind), mag)
		}
	}

	if evs := trace.RoundTimeline(recs); len(evs) > 0 && *rounds != 0 {
		ok, failed := 0, 0
		for _, e := range evs {
			if e.Failed {
				failed++
			} else {
				ok++
			}
		}
		fmt.Printf("\nrounds: %d updates, %d convergence failures\n", ok, failed)
		show := evs
		if *rounds > 0 && len(show) > *rounds {
			fmt.Printf("last %d:\n", *rounds)
			show = show[len(show)-*rounds:]
		}
		for _, e := range show {
			if e.Failed {
				fmt.Printf("  t=%10.6f  node %d round %d: FAILED (%d intervals)\n",
					e.T, e.Node, e.Round, e.Intervals)
				continue
			}
			via := ""
			if e.DisciplineID >= 0 {
				via = " via " + discipline.NameOf(e.DisciplineID)
			}
			fmt.Printf("  t=%10.6f  node %d round %d: %d intervals, correction %sµs%s\n",
				e.T, e.Node, e.Round, e.Intervals, metrics.Us(e.CorrectionS), via)
		}
	}

	if *perfetto != "" {
		f, err := os.Create(*perfetto)
		if err != nil {
			fatalf("%v", err)
		}
		if err := trace.WritePerfetto(f, recs); err != nil {
			f.Close()
			fatalf("%v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("\nperfetto trace: %s (load in ui.perfetto.dev or chrome://tracing)\n", *perfetto)
	}
}
