// Command ntisweep explores the synchronization design space: it sweeps
// one parameter (cluster size, round period, background load, oscillator
// frequency or fault tolerance) while holding the paper's prototype
// configuration for everything else, and prints the achieved precision
// and interval width per point.
//
// Usage:
//
//	ntisweep -param nodes            # 2..32 nodes
//	ntisweep -param period           # 0.25..4 s rounds
//	ntisweep -param load             # 0..60 % background traffic
//	ntisweep -param fosc             # 1..20 MHz
//	ntisweep -param f                # fault tolerance degree on 10 nodes
package main

import (
	"flag"
	"fmt"
	"os"

	"ntisim/internal/cluster"
	"ntisim/internal/metrics"
	"ntisim/internal/timefmt"
)

func main() {
	param := flag.String("param", "nodes", "sweep parameter: nodes|period|load|fosc|f")
	seed := flag.Uint64("seed", 7, "random seed")
	window := flag.Float64("window", 60, "measurement window [sim s]")
	flag.Parse()

	type point struct {
		label string
		mut   func(*cluster.Config)
	}
	var points []point
	switch *param {
	case "nodes":
		for _, n := range []int{2, 4, 8, 16, 24, 32} {
			n := n
			points = append(points, point{fmt.Sprintf("n=%d", n), func(c *cluster.Config) { c.Nodes = n }})
		}
	case "period":
		for _, p := range []float64{0.25, 0.5, 1, 2, 4} {
			p := p
			points = append(points, point{fmt.Sprintf("P=%.2gs", p), func(c *cluster.Config) {
				c.Sync.RoundPeriod = timefmt.DurationFromSeconds(p)
				c.Sync.ComputeDelay = timefmt.DurationFromSeconds(p / 4)
			}})
		}
	case "load":
		for _, l := range []float64{0, 0.15, 0.3, 0.45, 0.6} {
			l := l
			points = append(points, point{fmt.Sprintf("load=%.0f%%", l*100), func(c *cluster.Config) { c.BackgroundLoad = l }})
		}
	case "fosc":
		for _, f := range []float64{1e6, 4e6, 10e6, 14e6, 20e6} {
			f := f
			points = append(points, point{fmt.Sprintf("f=%.0fMHz", f/1e6), func(c *cluster.Config) { c.OscHz = f }})
		}
	case "f":
		for _, fv := range []int{0, 1, 2, 3, 4} {
			fv := fv
			points = append(points, point{fmt.Sprintf("F=%d", fv), func(c *cluster.Config) {
				c.Nodes = 10
				c.Sync.F = fv
			}})
		}
	default:
		fmt.Fprintf(os.Stderr, "ntisweep: unknown parameter %q\n", *param)
		os.Exit(2)
	}

	tb := metrics.Table{Header: []string{*param, "mean prec [µs]", "worst prec [µs]", "mean width ±[µs]", "CSP use"}}
	for _, pt := range points {
		cfg := cluster.Defaults(8, *seed)
		pt.mut(&cfg)
		c := cluster.New(cfg)
		b := c.MeasureDelay(0, 1, 12)
		for _, m := range c.Members {
			m.Sync.SetDelayBounds(b)
		}
		c.Start(c.Sim.Now() + 1)
		c.Sim.RunUntil(c.Sim.Now() + 20)
		var prec, width metrics.Series
		start := c.Sim.Now()
		for t := start; t <= start+*window; t += 1 {
			c.Sim.RunUntil(t)
			cs := c.Snapshot()
			prec.Add(cs.Precision)
			var w metrics.Series
			for _, m := range c.Members {
				am, ap := m.U.Alpha()
				w.Add((am.Duration().Seconds() + ap.Duration().Seconds()) / 2)
			}
			width.Add(w.Mean())
		}
		var used, sent uint64
		for _, m := range c.Members {
			st := m.Sync.Stats()
			used += st.CSPsUsed
			sent += st.CSPsSent
		}
		ideal := sent * uint64(len(c.Members)-1)
		use := "n/a"
		if ideal > 0 {
			use = fmt.Sprintf("%.1f%%", 100*float64(used)/float64(ideal))
		}
		tb.AddRow(pt.label, metrics.Us(prec.Mean()), metrics.Us(prec.Max()), metrics.Us(width.Mean()), use)
	}
	tb.Fprint(os.Stdout)
}
