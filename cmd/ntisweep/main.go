// Command ntisweep explores the synchronization design space: it sweeps
// one parameter (cluster size, round period, background load, oscillator
// frequency or fault tolerance) while holding the paper's prototype
// configuration for everything else, and prints the achieved precision
// and interval width per point. Cells run in parallel through the
// internal/harness campaign engine; output is identical for any worker
// count.
//
// Usage:
//
//	ntisweep -param nodes            # 2..32 nodes
//	ntisweep -param period           # 0.25..4 s rounds
//	ntisweep -param load             # 0..60 % background traffic
//	ntisweep -param fosc             # 1..20 MHz
//	ntisweep -param f                # fault tolerance degree on 10 nodes
//	ntisweep -param nodes -jsonl sweep.jsonl -workers 4
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"ntisim/internal/cluster"
	"ntisim/internal/discipline"
	"ntisim/internal/harness"
	"ntisim/internal/metrics"
)

// axes maps -param values to their sweep axis.
var axes = map[string]func() harness.Axis{
	"nodes":      func() harness.Axis { return harness.NodesAxis() },
	"period":     func() harness.Axis { return harness.PeriodAxis() },
	"load":       func() harness.Axis { return harness.LoadAxis() },
	"fosc":       func() harness.Axis { return harness.FoscAxis() },
	"f":          func() harness.Axis { return harness.FAxis(10) },
	"discipline": func() harness.Axis { return harness.DisciplineAxis() },
	"clients":    func() harness.Axis { return harness.ClientsAxis(10000, 100000, 1000000) },
	"arrival":    func() harness.Axis { return harness.ArrivalAxis() },
}

func paramChoices() string {
	var names []string
	for n := range axes {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, "|")
}

func main() {
	param := flag.String("param", "nodes", "sweep parameter: "+paramChoices())
	discName := flag.String("discipline", "", "clock discipline for every cell (default: the paper's interval algorithm): "+strings.Join(discipline.Names(), "|"))
	seed := flag.Uint64("seed", 7, "random seed")
	window := flag.Float64("window", 60, "measurement window [sim s]")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	jsonlPath := flag.String("jsonl", "", "also write per-cell JSONL records to this file")
	quiet := flag.Bool("q", false, "suppress per-cell progress on stderr")
	flag.Parse()

	axis, ok := axes[*param]
	if !ok {
		fmt.Fprintf(os.Stderr, "ntisweep: unknown parameter %q (choices: %s)\n", *param, paramChoices())
		os.Exit(2)
	}

	base := cluster.Defaults(8, *seed)
	if *param == "arrival" {
		// An arrival-process sweep is only meaningful with a population;
		// give the base config a moderate one.
		base.Serving.Clients = 100000
	}
	if *discName != "" {
		f, ok := discipline.Lookup(*discName)
		if !ok {
			fmt.Fprintf(os.Stderr, "ntisweep: unknown discipline %q (choices: %s)\n", *discName, strings.Join(discipline.Names(), "|"))
			os.Exit(2)
		}
		base.Sync.Discipline = f
	}

	spec := harness.Spec{
		Name:    "sweep-" + *param,
		Base:    base,
		Points:  axis().Points,
		Seeds:   []uint64{*seed},
		WindowS: *window,
		Workers: *workers,
	}
	if !*quiet {
		spec.Progress = os.Stderr
	}
	camp := harness.Run(spec)

	hasServing := false
	for i := range camp.Results {
		if camp.Results[i].Serving != nil {
			hasServing = true
			break
		}
	}
	header := []string{*param, "mean prec [µs]", "worst prec [µs]", "mean width ±[µs]", "CSP use"}
	if hasServing {
		header = append(header, "req/s", "p99 err [µs]")
	}
	tb := metrics.Table{Header: header}
	for i := range camp.Results {
		r := &camp.Results[i]
		row := []string{r.Label, "error", r.Err, "", ""}
		if r.Err == "" {
			use := "n/a"
			if r.Sync.CSPsSent > 0 {
				use = fmt.Sprintf("%.1f%%", 100*r.CSPUse)
			}
			row = []string{r.Label, metrics.Us(r.Precision.Mean), metrics.Us(r.Precision.Max), metrics.Us(r.Width.Mean), use}
		}
		if hasServing {
			if sv := r.Serving; sv != nil {
				row = append(row, fmt.Sprintf("%.0f", sv.QPS), metrics.Us(sv.ErrP99S))
			} else {
				row = append(row, "", "")
			}
		}
		tb.AddRow(row...)
	}
	tb.Fprint(os.Stdout)

	if *jsonlPath != "" {
		f, err := os.Create(*jsonlPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ntisweep: %v\n", err)
			os.Exit(1)
		}
		if err := camp.WriteJSONL(f); err != nil {
			fmt.Fprintf(os.Stderr, "ntisweep: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "ntisweep: %v\n", err)
			os.Exit(1)
		}
	}
	if failed := camp.Failed(); len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "ntisweep: %d of %d cells failed\n", len(failed), len(camp.Results))
		os.Exit(1)
	}
}
