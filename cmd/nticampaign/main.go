// Command nticampaign runs full experiment campaigns — EXPERIMENTS.md
// style matrices of cluster size × round period × background load, or
// the complete GPS fault × policy grid — through the internal/harness
// engine: every cell an independent deterministic simulation, fanned
// across all cores, with JSONL/CSV/manifest artifacts and golden-file
// regression gating.
//
// Usage:
//
//	nticampaign -list                        # available presets
//	nticampaign -preset matrix -out artifacts/
//	nticampaign -preset smoke -out artifacts/ -trace  # + per-cell traces
//	nticampaign -preset smoke -seeds 3 -report report.md
//	nticampaign -preset smoke -check testdata/smoke.golden.json
//	nticampaign -preset smoke -write-golden testdata/smoke.golden.json
//	nticampaign -refine load=2e-6            # bisect load until mean
//	                                         # precision crosses 2 µs
//	nticampaign -preset sharded -shards 4    # multi-segment cells on 4
//	                                         # shard workers each
//	nticampaign -preset smoke -telemetry -out artifacts/  # + runtime metric
//	                                         # snapshots and health flags
//	nticampaign -preset matrix -monitor :8080  # live status for cmd/ntitop
//
// Golden files are regenerated with -write-golden after an intentional
// behavior change and committed; -check then gates CI against them.
// -seeds N runs every preset point under N consecutive seeds (derived
// from -seed) so reports can attach confidence intervals; -report
// renders the run through internal/report. -refine axis=target
// replaces the preset grid with adaptive bisection of one numeric axis
// (load|period|fosc|nodes) until the mean-precision crossover of
// target is bracketed to -refine-tol; -refine-ci additionally demands
// the bootstrap 95% CI across seeds clear the target before a bracket
// moves, stopping (noise-limited) when seeds can't resolve it.
// -shards sets the worker-goroutine count of each multi-segment cell's
// sharded kernel — a pure execution knob: artifacts are byte-identical
// for every value (the determinism contract of internal/sim.Group).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"ntisim/internal/adversary"
	"ntisim/internal/cluster"
	"ntisim/internal/discipline"
	"ntisim/internal/gps"
	"ntisim/internal/harness"
	"ntisim/internal/metrics"
	"ntisim/internal/prof"
	"ntisim/internal/report"
	"ntisim/internal/service"
	"ntisim/internal/stats"
	"ntisim/internal/telemetry"
)

// preset bundles a grid with the sampling schedule that suits it.
type preset struct {
	desc   string
	points func() []harness.Point
	spec   func(*harness.Spec)
}

var presets = map[string]preset{
	"smoke": {
		desc:   "4-cell nodes×load grid with a short window (CI regression gate)",
		points: func() []harness.Point { return harness.Cross(harness.NodesAxis(2, 8), harness.LoadAxis(0, 0.3)) },
		spec: func(s *harness.Spec) {
			s.WarmupS = 10
			s.WindowS = 30
		},
	},
	"matrix": {
		desc: "nodes × period × load matrix (36 points/seed)",
		points: func() []harness.Point {
			return harness.Cross(
				harness.NodesAxis(2, 4, 8, 16),
				harness.PeriodAxis(0.5, 1, 2),
				harness.LoadAxis(0, 0.3, 0.6),
			)
		},
	},
	"faults": {
		desc: "every GPS fault kind under validated and naive-trust policies",
		points: func() []harness.Point {
			var scenarios []harness.FaultScenario
			for _, k := range harness.AllFaultKinds() {
				for _, trust := range []bool{false, true} {
					scenarios = append(scenarios, harness.FaultScenario{
						Kind: k, Magnitude: 20e-3, StartS: 60, Trust: trust,
					})
				}
			}
			return harness.FaultAxis(3, scenarios...).Points
		},
		spec: func(s *harness.Spec) {
			s.DelayProbes = 16
			s.WindowS = 180
			s.SampleEveryS = 5
		},
	},
	"scaling": {
		desc: "cluster size × oscillator frequency (throughput/impairment study)",
		points: func() []harness.Point {
			return harness.Cross(harness.NodesAxis(2, 8, 16, 32), harness.FoscAxis(1e6, 10e6, 20e6))
		},
	},
	"sharded": {
		desc: "WANs-of-LANs segments × nodes grid on the segment-sharded kernel (shard-count byte-identity gate)",
		points: func() []harness.Point {
			return harness.Cross(harness.SegmentsAxis(1, 2, 4), harness.NodesAxis(8, 16))
		},
		spec: func(s *harness.Spec) {
			// F=1 keeps gateways per WAN link at F+1 = 2; seg=1 cells run
			// the classic single-kernel path next to the sharded ones.
			s.Base.Sync.F = 1
			s.WarmupS = 10
			s.WindowS = 30
		},
	},
	"serving": {
		desc: "client-population load: clients × arrival process serving a 4-segment sharded topology (served-accuracy percentiles)",
		points: func() []harness.Point {
			return harness.Cross(
				harness.ClientsAxis(100000, 1000000),
				harness.ArrivalAxis(),
			)
		},
		spec: func(s *harness.Spec) {
			s.Base.Nodes = 16
			s.Base.Segments = 4
			// F=1 keeps gateways per WAN link at F+1 = 2.
			s.Base.Sync.F = 1
			s.Base.Serving.RegionalSkew = 1.5
			s.WarmupS = 10
			s.WindowS = 30
		},
	},
	"byzantine": {
		desc: "Byzantine traitor tolerance: discipline × nodes × traitor fraction on a 2-segment topology with colluding liars, triple GNSS sources and a wide-area spoof window",
		points: func() []harness.Point {
			pts := harness.Cross(
				harness.DisciplineAxis(),
				harness.NodesAxis(8, 16),
				harness.TraitorsAxis(0, 0.125, 0.25, 0.375),
			)
			// NodesAxis does not rescale Sync.F; the tolerance question
			// is exactly how F-vs-clique-size plays out at each scale, so
			// recompute the proportional default per cell.
			for i := range pts {
				pt := &pts[i]
				inner := pt.Mutate
				pt.Mutate = func(c *cluster.Config) {
					if inner != nil {
						inner(c)
					}
					f := (c.Nodes - 1) / 3
					if f > 5 {
						f = 5
					}
					c.Sync.F = f
				}
			}
			return pts
		},
		spec: func(s *harness.Spec) {
			s.Base.Segments = 2
			// Fixed gateway redundancy (instead of the F+1 default) so
			// the n=16 cells don't spend 6 gateways per link.
			s.Base.GatewaysPerLink = 3
			// Nodes 0 and 1 (both on segment 0, the MeasureDelay pair)
			// carry GNSS; each holds 3 independent sources combined with
			// SourceF=1 fault tolerance, and the wide-area spoof window
			// captures source 0 of every receiver mid-window.
			s.Base.GPS = map[int]gps.Config{0: gps.DefaultReceiver(), 1: gps.DefaultReceiver()}
			s.Base.Sync.SourceF = 1
			s.Base.Adversary = adversary.Spec{
				Attack: adversary.AttackCollude,
				// In the capture band: wider than a typical steady-state
				// interval half-width (~330 µs) so a clique larger than F
				// drags fused intervals off true time, but narrow enough
				// that intersection still succeeds (a louder lie merely
				// kills convergence, which containment survives).
				MagnitudeS: 500e-6,
				Sources:    3,
				GNSS: []adversary.GNSSEvent{{
					Kind: adversary.GNSSSpoof, StartS: 25, EndS: 35,
					OffsetS: 20e-3, Sources: 1,
				}},
			}
			s.Watchdog.PrecisionDriftWindow = 8
			s.WarmupS = 10
			s.WindowS = 30
		},
	},
	"disciplines": {
		desc: "clock-discipline shootout: every discipline × (ensemble-only + the GPS fault matrix)",
		points: func() []harness.Point {
			var scenarios []harness.FaultScenario
			for _, k := range harness.AllFaultKinds() {
				scenarios = append(scenarios, harness.FaultScenario{
					Kind: k, Magnitude: 20e-3, StartS: 40,
				})
			}
			fault := harness.FaultAxis(3, scenarios...)
			// Ensemble-only cell first: with no UTC anchor, interval
			// validation cannot override the reference point, so the
			// filter dynamics alone set the achievable precision. In the
			// GPS cells validation dominates the reference — there the
			// matrix measures fault robustness, not filter quality.
			fault.Points = append([]harness.Point{{
				Label:  "fault=ensemble",
				Params: map[string]string{"fault": "ensemble", "policy": "internal"},
			}}, fault.Points...)
			return harness.Cross(harness.DisciplineAxis(), fault)
		},
		spec: func(s *harness.Spec) {
			s.DelayProbes = 16
			// Short warmup + timelines: the ranking report needs the
			// convergence transient inside the measurement window.
			s.WarmupS = 4
			s.WindowS = 90
			s.SampleEveryS = 1
			s.Timeline = true
		},
	},
}

func presetChoices() string {
	var names []string
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, "|")
}

func disciplineChoices() string {
	return strings.Join(discipline.Names(), "|")
}

func arrivalChoices() string {
	return strings.Join(service.Arrivals(), "|")
}

func refineChoices() string {
	var names []string
	for n := range harness.StandardNumericAxes() {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, "|")
}

// runRefine executes adaptive bisection of one numeric axis until the
// mean-precision crossover of target is bracketed, printing every
// evaluation and the final bracket. With ci set it uses the
// variance-aware RefineCI: bisection only proceeds while the bootstrap
// 95% CI of the metric clears the target. It reports whether the
// crossover was bracketed (to tolerance, for plain refinement).
func runRefine(spec harness.Spec, arg string, tol float64, ci bool) bool {
	name, targetStr, ok := strings.Cut(arg, "=")
	if !ok {
		fatalf("-refine wants axis=target (e.g. load=2e-6), got %q", arg)
	}
	ax, axOK := harness.StandardNumericAxes()[name]
	if !axOK {
		fatalf("unknown refine axis %q (choices: %s)", name, refineChoices())
	}
	target, err := strconv.ParseFloat(targetStr, 64)
	if err != nil {
		fatalf("bad refine target %q: %v", targetStr, err)
	}
	if tol <= 0 {
		tol = (ax.Hi - ax.Lo) / 64
	}

	var r harness.Refinement
	if ci {
		r = harness.RefineCI(spec, ax, target, tol, nil, 0)
	} else {
		r = harness.Refine(spec, ax, target, tol, nil)
	}

	header := []string{name, "mean prec [µs]", "cells"}
	if ci {
		header = []string{name, "mean prec [µs]", "95% CI [µs]", "cells"}
	}
	tb := metrics.Table{Header: header}
	for _, e := range r.Evals {
		if ci {
			tb.AddRow(fmt.Sprintf("%g", e.Value), metrics.Us(e.Metric),
				fmt.Sprintf("[%s, %s]", metrics.Us(e.CILo), metrics.Us(e.CIHi)),
				fmt.Sprint(len(e.Results)))
			continue
		}
		tb.AddRow(fmt.Sprintf("%g", e.Value), metrics.Us(e.Metric), fmt.Sprint(len(e.Results)))
	}
	tb.Fprint(os.Stdout)
	if !r.Bracketed {
		fmt.Printf("\nno crossover of %sµs inside %s ∈ [%g, %g] (metric %s..%sµs)\n",
			metrics.Us(target), name, ax.Lo, ax.Hi, metrics.Us(r.Lo.Metric), metrics.Us(r.Hi.Metric))
		if r.NoiseLimited {
			fmt.Printf("noise-limited: a range end's 95%% CI straddles the target — add seeds (-seeds) to resolve\n")
		}
		return false
	}
	fmt.Printf("\ncrossover of %sµs bracketed: %s ∈ [%g, %g] (width %g, tol %g), metric %sµs → %sµs, %d evaluations\n",
		metrics.Us(target), name, r.Lo.Value, r.Hi.Value, r.Hi.Value-r.Lo.Value, tol,
		metrics.Us(r.Lo.Metric), metrics.Us(r.Hi.Metric), len(r.Evals))
	if r.NoiseLimited {
		fmt.Printf("noise-limited: stopped before tol — a midpoint's 95%% CI straddles the target; add seeds (-seeds) to refine further\n")
	}
	return true
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "nticampaign: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	var (
		presetName  = flag.String("preset", "smoke", "campaign preset: "+presetChoices())
		list        = flag.Bool("list", false, "list presets and exit")
		seed        = flag.Uint64("seed", 1998, "base random seed")
		seedCount   = flag.Int("seeds", 1, "number of consecutive seeds per point")
		window      = flag.Float64("window", 0, "override measurement window [sim s]")
		workers     = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		outDir      = flag.String("out", "", "write JSONL/CSV/manifest artifacts into this directory")
		checkPath   = flag.String("check", "", "gate against this golden file (non-zero exit on deviation)")
		writeGolden = flag.String("write-golden", "", "write/refresh the golden file from this run")
		reportPath  = flag.String("report", "", "write a Markdown+SVG report of this run to this file")
		traceCells  = flag.Bool("trace", false, "capture a cross-layer trace per cell (requires -out; adds one .cell-NNN.trace.jsonl per cell)")
		discName    = flag.String("discipline", "", "force one clock discipline for every cell: "+disciplineChoices())
		clients     = flag.Int("clients", 0, "force a simulated client population of this size on every cell (enables serving metrics)")
		arrival     = flag.String("arrival", "", "force one client arrival process for every cell: "+arrivalChoices()+" (use with -clients or the serving preset)")
		refine      = flag.String("refine", "", "adaptive refinement instead of the preset grid: axis=target, e.g. load=2e-6 (axes: "+refineChoices()+")")
		refineTol   = flag.Float64("refine-tol", 0, "axis tolerance for -refine (default: range/64)")
		refineCI    = flag.Bool("refine-ci", false, "variance-aware -refine: bisect only while the bootstrap 95% CI across seeds clears the target (use with -seeds > 1)")
		shards      = flag.Int("shards", 0, "worker goroutines per multi-segment (sharded) cell; 0 = auto. Execution-only knob: artifacts are byte-identical for every value")
		telem       = flag.Bool("telemetry", false, "capture runtime telemetry per cell: per-tick metric snapshots (with -out: one combined .telemetry.jsonl) plus watchdog health flags in artifacts and reports")
		monitorAddr = flag.String("monitor", "", "serve live campaign status on this host:port (/campaign.json for ntitop, /metrics for Prometheus scrapers); implies -telemetry")
		quiet       = flag.Bool("q", false, "suppress per-cell progress on stderr")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile  = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()

	if *list {
		var names []string
		for n := range presets {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("%-9s %s\n", n, presets[n].desc)
		}
		return
	}
	p, ok := presets[*presetName]
	if !ok {
		fmt.Fprintf(os.Stderr, "nticampaign: unknown preset %q (choices: %s)\n", *presetName, presetChoices())
		os.Exit(2)
	}
	if *seedCount < 1 {
		fmt.Fprintln(os.Stderr, "nticampaign: -seeds must be >= 1")
		os.Exit(2)
	}

	seeds := make([]uint64, *seedCount)
	for i := range seeds {
		seeds[i] = *seed + uint64(i)
	}
	spec := harness.Spec{
		Name:    "campaign-" + *presetName,
		Base:    cluster.Defaults(8, *seed),
		Points:  p.points(),
		Seeds:   seeds,
		Workers: *workers,
	}
	spec.Base.Shards = *shards
	if p.spec != nil {
		p.spec(&spec)
	}
	if *window > 0 {
		spec.WindowS = *window
	}
	if *traceCells {
		if *outDir == "" {
			fatalf("-trace needs -out (traces are written as per-cell artifacts)")
		}
		spec.Trace = true
	}
	if *discName != "" {
		f, ok := discipline.Lookup(*discName)
		if !ok {
			fmt.Fprintf(os.Stderr, "nticampaign: unknown discipline %q (choices: %s)\n", *discName, disciplineChoices())
			os.Exit(2)
		}
		// Force the discipline after every point mutation so it wins
		// even over a preset's own discipline axis.
		for i := range spec.Points {
			pt := &spec.Points[i]
			inner := pt.Mutate
			pt.Mutate = func(c *cluster.Config) {
				if inner != nil {
					inner(c)
				}
				c.Sync.Discipline = f
			}
			if pt.Params == nil {
				pt.Params = map[string]string{}
			}
			pt.Params["discipline"] = *discName
		}
	}
	if *arrival != "" && !service.ValidArrival(*arrival) {
		fmt.Fprintf(os.Stderr, "nticampaign: unknown arrival process %q (choices: %s)\n", *arrival, arrivalChoices())
		os.Exit(2)
	}
	if *clients < 0 {
		fmt.Fprintln(os.Stderr, "nticampaign: -clients must be >= 0")
		os.Exit(2)
	}
	if *clients > 0 || *arrival != "" {
		// Force the population after every point mutation, like
		// -discipline; a bare -arrival keeps the preset's population (or
		// stays inert on presets without one).
		for i := range spec.Points {
			pt := &spec.Points[i]
			inner := pt.Mutate
			pt.Mutate = func(c *cluster.Config) {
				if inner != nil {
					inner(c)
				}
				if *clients > 0 {
					c.Serving.Clients = *clients
				}
				if *arrival != "" {
					c.Serving.Arrival = *arrival
				}
			}
			if pt.Params == nil {
				pt.Params = map[string]string{}
			}
			if *clients > 0 {
				pt.Params["clients"] = fmt.Sprint(*clients)
			}
			if *arrival != "" {
				pt.Params["arrival"] = *arrival
			}
		}
	}
	if !*quiet {
		spec.Progress = os.Stderr
	}
	if *telem || *monitorAddr != "" {
		spec.Telemetry = true
	}
	if *monitorAddr != "" {
		mon := telemetry.NewMonitor()
		addr, err := mon.Serve(*monitorAddr)
		if err != nil {
			fatalf("monitor: %v", err)
		}
		defer mon.Close()
		fmt.Fprintf(os.Stderr, "nticampaign: monitor on http://%s/ (campaign.json, metrics)\n", addr)
		spec.Monitor = mon
	}

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatalf("%v", err)
	}

	if *refine != "" {
		ok := runRefine(spec, *refine, *refineTol, *refineCI)
		if err := stopProf(); err != nil {
			fatalf("%v", err)
		}
		if !ok {
			os.Exit(1)
		}
		return
	}

	camp := harness.Run(spec)

	if err := stopProf(); err != nil {
		fatalf("%v", err)
	}

	// Rows grouped by point (all seeds of a point adjacent), the same
	// ordering reports aggregate over. Serving columns appear only when
	// some cell carried a client population.
	hasServing := false
	for i := range camp.Results {
		if camp.Results[i].Serving != nil {
			hasServing = true
			break
		}
	}
	header := []string{"cell", "seed", "mean prec [µs]", "worst prec [µs]", "worst |C-t| [µs]", "width ±[µs]", "CSP use"}
	if hasServing {
		header = append(header, "req/s", "p99 err [µs]")
	}
	tb := metrics.Table{Header: header}
	for _, g := range harness.GroupByPoint(camp.Results) {
		for _, r := range g.Results {
			row := []string{r.Label, fmt.Sprint(r.Seed), "error", r.Err, "", "", ""}
			if r.Err == "" {
				row = []string{r.Label, fmt.Sprint(r.Seed),
					metrics.Us(r.Precision.Mean), metrics.Us(r.Precision.Max),
					metrics.Us(r.Accuracy.Max), metrics.Us(r.Width.Mean),
					fmt.Sprintf("%.1f%%", 100*r.CSPUse)}
			}
			if hasServing {
				if sv := r.Serving; sv != nil {
					row = append(row, fmt.Sprintf("%.0f", sv.QPS), metrics.Us(sv.ErrP99S))
				} else {
					row = append(row, "", "")
				}
			}
			tb.AddRow(row...)
		}
	}
	tb.Fprint(os.Stdout)
	fmt.Printf("\n%d cells, %.0f sim-s total in %.2fs wall (%.0f sim-s/s, %d workers)\n",
		len(camp.Results), camp.TotalSimS(), camp.WallS, camp.TotalSimS()/camp.WallS, camp.Workers)
	for _, r := range camp.Results {
		if len(r.Health) > 0 {
			fmt.Printf("health: cell %d (%s/seed=%d): %s\n", r.Cell, r.Label, r.Seed, strings.Join(r.Health, ", "))
		}
	}

	if *outDir != "" {
		paths, err := camp.WriteArtifacts(*outDir)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("artifacts: %s\n", strings.Join(paths, ", "))
	}
	if *reportPath != "" {
		f, err := os.Create(*reportPath)
		if err != nil {
			fatalf("%v", err)
		}
		if err := report.Generate(f, spec.Name, camp.Results, stats.Options{}); err != nil {
			f.Close()
			fatalf("%v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("report: %s\n", *reportPath)
	}
	if *writeGolden != "" {
		if err := camp.Golden(harness.DefaultTolerance).Write(*writeGolden); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("golden written: %s\n", *writeGolden)
	}
	if *checkPath != "" {
		g, err := harness.LoadGolden(*checkPath)
		if err != nil {
			fatalf("%v", err)
		}
		if devs := camp.Check(g); len(devs) > 0 {
			fmt.Fprintf(os.Stderr, "nticampaign: regression gate FAILED, %d deviation(s) vs %s:\n", len(devs), *checkPath)
			for _, d := range devs {
				fmt.Fprintf(os.Stderr, "  %s\n", d)
			}
			os.Exit(1)
		}
		fmt.Printf("regression gate passed: %d cells match %s\n", len(camp.Results), *checkPath)
	}
	if failed := camp.Failed(); len(failed) > 0 {
		fatalf("%d of %d cells failed", len(failed), len(camp.Results))
	}
}
