// Command ntireport renders campaign JSONL artifacts into a
// deterministic Markdown report with embedded SVG plots: per-point
// statistics aggregated across seeds with 95% confidence intervals
// (Student-t and bootstrap), a Welch cross-point comparison, and one
// line/band/scatter chart per numeric sweep axis.
//
// Usage:
//
//	ntireport -in artifacts/             # every *.jsonl in the directory
//	ntireport -in artifacts/campaign-smoke.jsonl -out report.md
//
// Reports carry no wall-clock or environment metadata and all numeric
// formatting is fixed-precision, so the same artifacts always produce
// byte-identical output — CI golden-gates the smoke report with
// `make report-smoke`.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"ntisim/internal/report"
	"ntisim/internal/stats"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ntireport: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	var (
		in        = flag.String("in", "", "JSONL artifact file, or a directory of *.jsonl artifacts (required)")
		out       = flag.String("out", "", "output Markdown file (default stdout)")
		bootstrap = flag.Int("bootstrap", 1000, "bootstrap resamples for CIs (negative disables)")
		converged = flag.Float64("converged-below", 5e-6, "precision threshold [s] defining convergence time on timeline artifacts")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "ntireport: -in is required (artifact file or directory)")
		flag.Usage()
		os.Exit(2)
	}

	var paths []string
	if fi, err := os.Stat(*in); err != nil {
		fatalf("%v", err)
	} else if fi.IsDir() {
		paths, err = report.FindJSONL(*in)
		if err != nil {
			fatalf("%v", err)
		}
		if len(paths) == 0 {
			fatalf("no *.jsonl artifacts in %s", *in)
		}
	} else {
		paths = []string{*in}
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatalf("%v", err)
			}
		}()
		w = f
	}

	opt := stats.Options{Bootstrap: *bootstrap, ConvergedBelowS: *converged}
	for i, p := range paths {
		results, err := report.LoadJSONL(p)
		if err != nil {
			fatalf("%v", err)
		}
		if i > 0 {
			fmt.Fprintf(w, "\n---\n\n")
		}
		title := strings.TrimSuffix(filepath.Base(p), ".jsonl")
		if err := report.Generate(w, title, results, opt); err != nil {
			fatalf("%v", err)
		}
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "ntireport: wrote %s (%d campaign(s))\n", *out, len(paths))
	}
}
