// Command ntitop is the live campaign dashboard: it polls the status
// endpoint a running `nticampaign -monitor :PORT` serves and renders
// progress, throughput, per-worker load and watchdog health in the
// terminal — `top` for a simulation campaign.
//
// Usage:
//
//	nticampaign -preset matrix -seeds 5 -monitor 127.0.0.1:9091 &
//	ntitop -addr 127.0.0.1:9091
//	ntitop -addr 127.0.0.1:9091 -once   # one status dump, no screen control
//
// The wall-clock numbers shown here (ETA, sim-s/s, worker utilization)
// exist only in the monitor; campaign artifacts never carry them.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"ntisim/internal/metrics"
	"ntisim/internal/telemetry"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ntitop: "+format+"\n", args...)
	os.Exit(1)
}

func fetch(client *http.Client, url string) (telemetry.CampaignStatus, error) {
	var st telemetry.CampaignStatus
	resp, err := client.Get(url)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("%s: %s", url, resp.Status)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// bar renders a width-character progress bar.
func bar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	fill := int(frac*float64(width) + 0.5)
	return strings.Repeat("█", fill) + strings.Repeat("░", width-fill)
}

func fdur(s float64) string {
	if s <= 0 {
		return "-"
	}
	d := time.Duration(s * float64(time.Second)).Round(time.Second)
	return d.String()
}

func render(w *strings.Builder, st telemetry.CampaignStatus) {
	frac := 0.0
	if st.Total > 0 {
		frac = float64(st.Done) / float64(st.Total)
	}
	fmt.Fprintf(w, "%s  %d/%d cells", st.Name, st.Done, st.Total)
	if st.Failed > 0 {
		fmt.Fprintf(w, "  (%d FAILED)", st.Failed)
	}
	fmt.Fprintf(w, "\n[%s] %3.0f%%  elapsed %s  eta %s  %.0f sim-s/s\n\n",
		bar(frac, 40), 100*frac, fdur(st.ElapsedS), fdur(st.EtaS), st.SimSPS)

	if len(st.Workers) > 0 {
		tb := metrics.Table{Header: []string{"worker", "cells", "busy", "sim-s/s", "current"}}
		for _, ws := range st.Workers {
			cur := ws.Current
			if cur == "" {
				cur = "idle"
			}
			tb.AddRow(fmt.Sprint(ws.ID), fmt.Sprint(ws.Cells), fdur(ws.BusyS),
				fmt.Sprintf("%.0f", ws.SimSPS), cur)
		}
		tb.Fprint(w)
	}

	if len(st.Health) > 0 {
		fmt.Fprintf(w, "\nhealth flags:\n")
		cells := make([]string, 0, len(st.Health))
		for c := range st.Health {
			cells = append(cells, c)
		}
		sort.Strings(cells)
		for _, c := range cells {
			fmt.Fprintf(w, "  %-28s %s\n", c, strings.Join(st.Health[c], ", "))
		}
	}

	if s := st.Snapshot; s != nil {
		fmt.Fprintf(w, "\nlast snapshot (t=%.1f sim-s):\n", s.T)
		names := make([]string, 0, len(s.Counters))
		for n := range s.Counters {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(w, "  %-28s %d\n", n, s.Counters[n])
		}
		// Shard lag is the one gauge family worth a live view: a shard
		// whose lag grows while others sit at zero is the straggler.
		var lags []string
		for n := range s.Gauges {
			if strings.HasPrefix(n, "group.shard_lag_s") {
				lags = append(lags, n)
			}
		}
		sort.Strings(lags)
		for _, n := range lags {
			fmt.Fprintf(w, "  %-28s %.6f (hi %.6f)\n", n, s.Gauges[n].V, s.Gauges[n].Hi)
		}
	}
}

func main() {
	addr := flag.String("addr", "127.0.0.1:9091", "host:port of the campaign monitor (nticampaign -monitor)")
	every := flag.Duration("every", time.Second, "refresh period")
	once := flag.Bool("once", false, "print one status snapshot and exit (no screen control)")
	flag.Parse()

	url := "http://" + *addr + "/campaign.json"
	client := &http.Client{Timeout: 5 * time.Second}

	for {
		st, err := fetch(client, url)
		if err != nil {
			if *once {
				fatalf("%v", err)
			}
			// Keep polling: the campaign may not have bound yet, or just
			// exited between refreshes.
			fmt.Printf("\x1b[2J\x1b[Hntitop: waiting for %s (%v)\n", url, err)
			time.Sleep(*every)
			continue
		}
		var b strings.Builder
		render(&b, st)
		if *once {
			fmt.Print(b.String())
			return
		}
		fmt.Printf("\x1b[2J\x1b[H%s", b.String())
		if st.Total > 0 && st.Done >= st.Total {
			return
		}
		time.Sleep(*every)
	}
}
