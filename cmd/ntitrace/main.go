// Command ntitrace walks one CSP through the complete Fig. 3 data path
// on a two-node system and dumps every timestamping-relevant artefact:
// the cross-layer trace of the flight (every DMA word included), the
// transmit header image before and after the COMCO's trigger reads, the
// receive header as stored by DMA, the NTI's latched registers and the
// reassembled stamps. It is the repository's equivalent of putting a
// logic analyzer on the MA-Module.
//
// The event stream comes from internal/trace — the same records the
// campaign harness archives — rendered one record per line. -json dumps
// the records as trace JSONL instead (the committed golden in testdata/
// pins this byte-deterministic output; see `make trace-smoke`).
package main

import (
	"flag"
	"fmt"
	"os"

	"ntisim/internal/cluster"
	"ntisim/internal/csp"
	"ntisim/internal/kernel"
	"ntisim/internal/network"
	"ntisim/internal/nti"
	"ntisim/internal/timefmt"
	"ntisim/internal/trace"
)

func main() {
	seed := flag.Uint64("seed", 7, "random seed")
	at := flag.Float64("at", 0.5, "send time [sim s]")
	asJSON := flag.Bool("json", false, "emit the trace as JSONL on stdout (no prose)")
	flag.Parse()

	tr := trace.New(trace.Options{DMAWords: true})
	cfg := cluster.Defaults(2, *seed)
	cfg.Tracer = tr
	c := cluster.New(cfg)
	sender, receiver := c.Members[0], c.Members[1]

	var arrival *kernel.Arrival
	receiver.Node.OnCSP(func(ar kernel.Arrival) { arrival = &ar })

	// Build the CSP image in transmit header 0 ourselves so we can show
	// the before/after of the stamp block.
	p := csp.Packet{Kind: csp.KindCSP, Node: 0, Round: 1}
	img := p.Encode()
	before := append([]byte(nil), img...)
	c.Sim.At(*at, func() {
		sender.Node.NTI.CPUWrite(nti.TxHeaderAddr(0), img)
		sender.Node.COMCO.Transmit(0, nil, network.Broadcast)
	})
	c.Sim.RunUntil(*at + 1)

	if *asJSON {
		if err := tr.WriteJSONL(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "ntitrace: %v\n", err)
			os.Exit(1)
		}
		if arrival == nil {
			fmt.Fprintln(os.Stderr, "ntitrace: CSP never reached the CI — trace failed")
			os.Exit(1)
		}
		return
	}

	fmt.Printf("cross-layer trace (%d records, %d dropped):\n", tr.Len(), tr.Dropped())
	for _, r := range tr.Records() {
		fmt.Println("  " + r.String())
	}

	fmt.Printf("\nCPU wrote CSP image into tx header 0 at t=%.6f (stamp block zero)\n", *at)
	dumpStampBlock("  before", before)

	var after [nti.HeaderSize]byte
	sender.Node.NTI.CPURead(nti.TxHeaderAddr(0), after[:])
	fmt.Printf("\nafter transmission (memory unchanged; insertion happened on the wire path):\n")
	dumpStampBlock("  memory", after[:])

	txTrig, _, _ := sender.Node.NTI.Stats()
	_, rxTrig, _ := receiver.Node.NTI.Stats()
	fmt.Printf("\nsender TRANSMIT triggers: %d   receiver RECEIVE triggers: %d\n", txTrig, rxTrig)

	st, am, ap, base, seq := receiver.Node.NTI.ReadRxSample()
	fmt.Printf("receiver SSU sample: stamp=%v alpha=-%v/+%v seq=%d latched header base=0x%05X\n",
		st, am, ap, seq, base)

	var rxHdr [nti.HeaderSize]byte
	receiver.Node.NTI.CPURead(base, rxHdr[:])
	fmt.Printf("\nreceive header at 0x%05X as stored by DMA:\n", base)
	dumpHeader(rxHdr[:])

	if arrival == nil {
		fmt.Fprintln(os.Stderr, "\nntitrace: CSP never reached the CI — trace failed")
		os.Exit(1)
	}
	tx, ok := arrival.Pkt.TxStamp()
	fmt.Printf("\nCI delivery at t=%.6f\n", arrival.At)
	fmt.Printf("  tx stamp (inserted in flight): %v (checksum ok=%v)\n", tx, ok)
	fmt.Printf("  tx alphas: -%v/+%v\n", arrival.Pkt.TxAlphaM, arrival.Pkt.TxAlphaP)
	fmt.Printf("  rx stamp (latched + moved):    %v (attributed=%v)\n", arrival.RxStamp, arrival.StampOK)
	fmt.Printf("  trigger-to-trigger delay:      %v\n", arrival.RxStamp.Sub(tx))
}

func dumpStampBlock(prefix string, b []byte) {
	fmt.Printf("%s 0x14(trig)=%08X 0x18(ts)=%08X 0x1C(ms)=%08X 0x20(alpha)=%08X\n",
		prefix, be32(b[csp.OffTxTrig:]), be32(b[csp.OffTxStamp:]), be32(b[csp.OffTxMacro:]), be32(b[csp.OffTxAlpha:]))
}

func dumpHeader(b []byte) {
	for off := 0; off < len(b); off += 16 {
		fmt.Printf("  %04X:", off)
		for i := 0; i < 16; i += 4 {
			fmt.Printf(" %08X", be32(b[off+i:]))
		}
		fmt.Println()
	}
	if ts, ms := be32(b[csp.OffTxStamp:]), be32(b[csp.OffTxMacro:]); ts != 0 || ms != 0 {
		if st, ok := timefmt.FromWords(ts, ms); ok {
			fmt.Printf("  -> wire image carries tx stamp %v (checksum valid)\n", st)
		}
	}
}

func be32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}
