// Command ntibench regenerates every experiment table of the paper
// reproduction (see DESIGN.md §3 for the experiment index and
// EXPERIMENTS.md for recorded outputs). Experiments are independent
// deterministic simulations, so they are fanned across the harness
// worker pool; output is always emitted in suite order (E1..E15)
// regardless of which worker finishes first.
//
// Usage:
//
//	ntibench [-seed N] [-workers N] [E1 E4 ...]   run selected experiments (default all)
//	ntibench -list                                list experiment ids
//	ntibench -cpuprofile cpu.out -memprofile mem.out E4
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"ntisim/internal/experiments"
	"ntisim/internal/harness"
	"ntisim/internal/prof"
)

var runners = []struct {
	id  string
	fn  func(uint64) experiments.Result
	des string
}{
	{"E1", experiments.E1Epsilon, "two-node transmission/reception uncertainty ε"},
	{"E2", experiments.E2TimestampClasses, "timestamping classes: task vs ISR vs NTI"},
	{"E3", experiments.E3GranularitySweep, "precision impairment 4G+10u vs fosc"},
	{"E4", experiments.E4SixteenNode, "16-node prototype precision/accuracy"},
	{"E5", experiments.E5GPSValidation, "clock validation vs naive GPS trust"},
	{"E6", experiments.E6RateSync, "rate synchronization ablation"},
	{"E7", experiments.E7WANvsLAN, "NTP over WAN vs NTI on LAN"},
	{"E8", experiments.E8AdderVsCounter, "adder-based vs counter-based clock"},
	{"E9", experiments.E9TimestampPath, "packet timestamping data path"},
	{"E10", experiments.E10BackToBack, "Receive Header Base latch vs guessing"},
	{"E11", experiments.E11WANOfLANs, "WANs-of-LANs gateway topology"},
	{"E12", experiments.E12ByzantineNode, "actively faulty node tolerance"},
	{"E13", experiments.E13HardwareMeasuredPrecision, "hardware-measured precision"},
	{"E14", experiments.E14ConvergenceShootout, "convergence-function ablation"},
	{"E15", experiments.E15ReceiverCensus, "long-term GPS receiver census"},
}

func main() {
	seed := flag.Uint64("seed", 1998, "base random seed (runs are reproducible per seed)")
	list := flag.Bool("list", false, "list experiments and exit")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()

	if *list {
		for _, r := range runners {
			fmt.Printf("%-4s %s\n", r.id, r.des)
		}
		return
	}

	want := map[string]bool{}
	for _, a := range flag.Args() {
		want[a] = true
	}

	var selected []int
	for i, r := range runners {
		if len(want) > 0 && !want[r.id] {
			continue
		}
		selected = append(selected, i)
	}
	if len(selected) == 0 {
		fmt.Fprintln(os.Stderr, "ntibench: no matching experiments (use -list)")
		os.Exit(2)
	}

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ntibench: %v\n", err)
		os.Exit(1)
	}

	// Fan the suite across the pool; results land index-addressed so the
	// emitted order matches the suite order bit-for-bit.
	results := make([]experiments.Result, len(selected))
	harness.ForEach(*workers, len(selected), func(i int) {
		results[i] = runners[selected[i]].fn(*seed)
	})

	if err := stopProf(); err != nil {
		fmt.Fprintf(os.Stderr, "ntibench: %v\n", err)
		os.Exit(1)
	}

	failed := 0
	for _, res := range results {
		if !*asJSON {
			res.Fprint(os.Stdout)
		}
		if !res.Passed() {
			failed++
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintf(os.Stderr, "ntibench: %v\n", err)
			os.Exit(1)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "ntibench: %d experiment(s) with failed claims\n", failed)
		os.Exit(1)
	}
	if !*asJSON {
		fmt.Printf("all %d experiments reproduce the paper's claims (seed %d)\n", len(results), *seed)
	}
}
