// Quickstart: build a four-node LAN where every node carries an NTI
// (UTCSU + memory + CPLD) next to its Ethernet coprocessor, run
// interval-based clock synchronization, and inspect the result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ntisim/internal/core"
)

func main() {
	sys, err := core.NewSystem(core.Options{
		Nodes:         4,
		Seed:          2024,
		MeasureDelays: true, // round-trip-calibrate the delay bounds first
	})
	if err != nil {
		log.Fatal(err)
	}

	// 15 s of simulated warm-up (initial step + convergence), then a
	// 60 s measurement window sampled once per second.
	rep := sys.Run(15, 60, 1)

	fmt.Println("ntisim quickstart — 4 nodes, NTI hardware timestamping")
	fmt.Printf("measured delay bounds: [%v, %v] from %d probes\n",
		sys.DelayBounds.Min, sys.DelayBounds.Max, sys.DelayBounds.Samples)
	fmt.Printf("precision  max|Cp-Cq|: mean %6.3f µs   worst %6.3f µs\n",
		rep.Precision.Mean()*1e6, rep.Precision.Max()*1e6)
	fmt.Printf("accuracy   max|Cp-t| : mean %6.3f µs   worst %6.3f µs\n",
		rep.Accuracy.Mean()*1e6, rep.Accuracy.Max()*1e6)
	fmt.Printf("containment violations: %d (accuracy intervals vs real time)\n",
		rep.ContainmentViolations)
	for i, st := range rep.PerNode {
		fmt.Printf("node %d: %d rounds, %d CSPs used, %d amortizations, last correction %v\n",
			i, st.Rounds, st.CSPsUsed, st.Amortizations, st.LastCorrection)
	}
}
