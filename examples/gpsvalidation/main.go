// GPS validation walkthrough — interval-based clock validation [Sch94]
// in action (paper §2 and §5): three GPS receivers feed an 8-node
// cluster; one receiver develops a wrong-second fault mid-run, the kind
// the authors' own two-month receiver study [HS97] observed. Clock
// validation notices that the faulty external interval is inconsistent
// with the internally derived validation interval and falls back, so
// the ensemble stays on UTC. A second run with naive trust shows the
// counterfactual.
//
//	go run ./examples/gpsvalidation
package main

import (
	"fmt"
	"os"

	"ntisim/internal/cluster"
	"ntisim/internal/gps"
	"ntisim/internal/metrics"
)

func run(trust bool) {
	policy := "interval-based clock validation"
	if trust {
		policy = "NAIVE TRUST (validation bypassed)"
	}
	fmt.Printf("--- policy: %s ---\n", policy)

	cfg := cluster.Defaults(8, 77)
	cfg.Sync.TrustExternal = trust
	healthy := gps.DefaultReceiver()
	faulty := gps.DefaultReceiver()
	// Off-by-one-second labels from t=60 on: the receiver's pps is fine
	// but its serial time-of-day message is wrong.
	faulty.Faults = []gps.Fault{{Kind: gps.FaultWrongSec, Start: 60, Magnitude: 1}}
	cfg.GPS = map[int]gps.Config{0: healthy, 1: healthy, 2: faulty}

	c := cluster.New(cfg)
	b := c.MeasureDelay(0, 1, 16)
	for _, m := range c.Members {
		m.Sync.SetDelayBounds(b)
	}
	c.Start(c.Sim.Now() + 1)

	tb := metrics.Table{Header: []string{"t [s]", "worst |C-t|", "precision [µs]", "node2 rejected"}}
	begin := c.Sim.Now()
	for t := begin + 20; t <= begin+160; t += 20 {
		c.Sim.RunUntil(t)
		cs := c.Snapshot()
		st := c.Members[2].Sync.Stats()
		acc := fmt.Sprintf("%8.3f µs", cs.MaxAbsOffset*1e6)
		if cs.MaxAbsOffset > 1e-3 {
			acc = fmt.Sprintf("%8.3f ms (!)", cs.MaxAbsOffset*1e3)
		}
		tb.AddRow(fmt.Sprintf("%.0f", t-begin), acc, metrics.Us(cs.Precision), fmt.Sprint(st.ExternalRejected))
	}
	tb.Fprint(os.Stdout)
	fmt.Println()
}

func main() {
	fmt.Println("fault: GPS receiver on node 2 labels its pulses one second off from t=60")
	fmt.Println()
	run(false)
	run(true)
	fmt.Println("with validation the faulty receiver is simply outvoted by reality;")
	fmt.Println("with naive trust node 2 drags itself a full second away from UTC.")
}
