// Two-node ε measurement — the experiment of paper §4: "some
// preliminary experiments with a two-node system revealed a
// transmission/reception time uncertainty ε well below 1 µs".
//
// Two nodes with ideal (drift-free) oscillators exchange CSPs; the
// spread of (hardware receive stamp − hardware transmit stamp) is ε,
// the quantity that lower-bounds any achievable precision [LL84].
//
//	go run ./examples/twonode
package main

import (
	"fmt"

	"ntisim/internal/cluster"
	"ntisim/internal/csp"
	"ntisim/internal/kernel"
	"ntisim/internal/metrics"
	"ntisim/internal/network"
	"ntisim/internal/oscillator"
)

func main() {
	cfg := cluster.Defaults(2, 1998)
	// Ideal oscillators isolate the data path: any spread in the stamp
	// gap is transmission/reception uncertainty, not clock drift.
	cfg.OscillatorFor = func(int) oscillator.Config { return oscillator.Ideal(cfg.OscHz) }
	c := cluster.New(cfg)

	var gaps metrics.Series
	c.Members[1].Node.OnCSP(func(ar kernel.Arrival) {
		tx, ok := ar.Pkt.TxStamp()
		if ok && ar.StampOK {
			gaps.Add(ar.RxStamp.Sub(tx).Seconds())
		}
	})

	const n = 2000
	for i := 0; i < n; i++ {
		i := i
		c.Sim.After(0.01+float64(i)*0.002, func() {
			c.Members[0].Node.SendCSP(csp.Packet{Kind: csp.KindCSP, Round: uint32(i)}, network.Broadcast)
		})
	}
	c.Sim.RunUntil(0.01*float64(n)*0.2 + 5)

	fmt.Println("two-node ε measurement (paper §4)")
	fmt.Printf("CSPs stamped:       %d\n", gaps.N())
	fmt.Printf("gap min/mean/max:   %.3f / %.3f / %.3f µs\n",
		gaps.Min()*1e6, gaps.Mean()*1e6, gaps.Max()*1e6)
	fmt.Printf("ε = max-min spread: %.3f µs\n", gaps.Range()*1e6)
	if gaps.Range() < 1e-6 {
		fmt.Println("-> ε well below 1 µs, as §4 reports for the MVME-162 prototype")
	} else {
		fmt.Println("-> ε exceeds 1 µs: the §4 claim did NOT reproduce")
	}
	fmt.Println()
	fmt.Println("where the remaining ε comes from (paper §3.1): the COMCO's")
	fmt.Println("bus-arbitration jitter on both sides, the ±1/fosc input")
	fmt.Println("synchronizer of the UTCSU, and the 2^-24 s stamp granularity.")
}
