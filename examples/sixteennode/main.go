// Sixteen-node prototype — the system the paper announces in §4: "a 16
// node prototype distributed system consisting of four MVME-162 with
// four NTIs each, which is currently under development".
//
// Sixteen nodes with TCXO-grade oscillators on one 10 Mb/s LAN, with
// round-trip-measured delay bounds, rate synchronization and one GPS
// anchor, printing the convergence trajectory.
//
//	go run ./examples/sixteennode
package main

import (
	"fmt"
	"os"

	"ntisim/internal/cluster"
	"ntisim/internal/gps"
	"ntisim/internal/metrics"
)

func main() {
	cfg := cluster.Defaults(16, 404)
	cfg.Sync.RateSync = true
	cfg.GPS = map[int]gps.Config{0: gps.DefaultReceiver()}
	c := cluster.New(cfg)

	b := c.MeasureDelay(0, 1, 16)
	for _, m := range c.Members {
		m.Sync.SetDelayBounds(b)
	}
	fmt.Printf("16-node prototype; measured delay bounds [%v, %v]\n\n", b.Min, b.Max)
	c.Start(c.Sim.Now() + 1)

	tb := metrics.Table{Header: []string{"t [s]", "precision [µs]", "worst |C-t| [µs]", "mean interval ±[µs]", "contained"}}
	begin := c.Sim.Now()
	var steady metrics.Series
	for t := begin + 10; t <= begin+180; t += 10 {
		c.Sim.RunUntil(t)
		cs := c.Snapshot()
		var width metrics.Series
		for _, m := range c.Members {
			am, ap := m.U.Alpha()
			width.Add((am.Duration().Seconds() + ap.Duration().Seconds()) / 2)
		}
		tb.AddRow(fmt.Sprintf("%.0f", t-begin), metrics.Us(cs.Precision), metrics.Us(cs.MaxAbsOffset),
			metrics.Us(width.Mean()), fmt.Sprint(cs.Contained))
		if t > begin+60 {
			steady.Add(cs.Precision)
		}
	}
	tb.Fprint(os.Stdout)
	fmt.Printf("\nsteady-state worst precision: %.3f µs (paper's goal: 1 µs range)\n", steady.Max()*1e6)
	st := c.Members[0].Sync.Stats()
	fmt.Printf("GPS node: %d external intervals accepted, %d rejected\n",
		st.ExternalAccepted, st.ExternalRejected)
}
