// Event ordering — what µs-synchronized clocks are *for* (paper §1:
// "temporally ordered events are in fact beneficial for a wide variety
// of tasks, ranging from relating sensor data gathered at different
// nodes up to fully-fledged distributed algorithms").
//
// Four nodes synchronize over the LAN; physical events then occur in
// pairs at two different nodes, separated by a true interval δ. Each
// node timestamps its event with one of the UTCSU's nine APU inputs
// (hardware time/accuracy-stamping of application events, §3.3) and the
// stamps are compared. With ~2 µs precision, orderings down to a few µs
// resolve correctly — something a software-timestamped or NTP-grade
// system cannot do.
//
//	go run ./examples/eventordering
package main

import (
	"fmt"
	"os"

	"ntisim/internal/cluster"
	"ntisim/internal/gps"
	"ntisim/internal/metrics"
	"ntisim/internal/timefmt"
)

func main() {
	cfg := cluster.Defaults(4, 616)
	// One GPS anchor + rate synchronization: without UTC anchoring the
	// accuracy intervals must honestly stay wide (they cover the
	// ensemble's unbounded drift versus real time), and orderings would
	// be correct but never *provable*.
	cfg.GPS = map[int]gps.Config{0: gps.DefaultReceiver()}
	cfg.Sync.RateSync = true
	c := cluster.New(cfg)
	b := c.MeasureDelay(0, 1, 16)
	for _, m := range c.Members {
		m.Sync.SetDelayBounds(b)
	}
	c.Start(c.Sim.Now() + 1)
	c.Sim.RunUntil(c.Sim.Now() + 40) // converge (incl. rate sync) first

	fmt.Println("distributed event ordering with APU hardware timestamps")
	fmt.Printf("cluster precision right now: %.3f µs\n\n", c.Snapshot().Precision*1e6)

	type outcome struct {
		total, correct, resolvable int
	}
	results := map[float64]*outcome{}
	deltas := []float64{100e-6, 20e-6, 5e-6, 2e-6, 1e-6, 0.5e-6}
	rng := c.Sim.RNG("events")

	trial := func(delta float64, done func(ok, resolvable bool)) {
		// Event A at node 1, event B at node 3, true separation delta.
		a, bNode := c.Members[1], c.Members[3]
		var stampA, stampB timefmt.Stamp
		var amA, apA, amB, apB timefmt.Alpha
		c.Sim.After(0, func() {
			stampA, _ = a.U.APU(0).Trigger(true)
			_, amA, apA, _ = a.U.APU(0).Read()
		})
		c.Sim.After(delta, func() {
			stampB, _ = bNode.U.APU(0).Trigger(true)
			_, amB, apB, _ = bNode.U.APU(0).Read()
			ok := stampB > stampA // B truly happened after A
			// The interval-based answer: the ordering is *certain* when
			// the stamped accuracy intervals do not overlap.
			hiA := stampA.Add(apA.Duration())
			loB := stampB.Add(-amB.Duration())
			resolvable := loB > hiA
			_ = amA
			_ = apB
			done(ok, resolvable)
		})
	}

	for _, d := range deltas {
		res := &outcome{}
		results[d] = res
		for k := 0; k < 50; k++ {
			at := c.Sim.Now() + 0.1 + rng.Float64()*0.3
			d := d
			c.Sim.At(at, func() {
				trial(d, func(ok, resolvable bool) {
					res.total++
					if ok {
						res.correct++
					}
					if resolvable {
						res.resolvable++
					}
				})
			})
			c.Sim.RunUntil(at + 0.05)
		}
	}

	tb := metrics.Table{Header: []string{"true δ", "ordered correctly", "certain (intervals disjoint)"}}
	for _, d := range deltas {
		res := results[d]
		tb.AddRow(fmt.Sprintf("%8.1f µs", d*1e6),
			fmt.Sprintf("%d/%d", res.correct, res.total),
			fmt.Sprintf("%d/%d", res.resolvable, res.total))
	}
	tb.Fprint(os.Stdout)
	fmt.Println()
	fmt.Println("events further apart than the cluster precision order correctly;")
	fmt.Println("the accuracy intervals additionally tell the application WHEN the")
	fmt.Println("ordering is provable rather than merely probable (paper §2).")
}
