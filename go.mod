module ntisim

go 1.22
