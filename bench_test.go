// Package repro's root benchmarks regenerate every experiment of the
// paper reproduction (one benchmark per table/figure claim — see
// DESIGN.md §3 and EXPERIMENTS.md), reporting the headline quantities
// as custom benchmark metrics. `go test -bench=. -benchmem` therefore
// reproduces the whole evaluation.
package main_test

import (
	"fmt"
	"runtime"
	"testing"

	"ntisim/internal/cluster"
	"ntisim/internal/experiments"
	"ntisim/internal/harness"
	"ntisim/internal/metrics"
	"ntisim/internal/service"
	"ntisim/internal/telemetry"
)

const benchSeed = 1998

// reportClaims fails the benchmark if an experiment's claims broke.
func reportClaims(b *testing.B, r experiments.Result) {
	b.Helper()
	for name, ok := range r.Claims {
		if !ok {
			b.Errorf("%s: claim failed: %s", r.ID, name)
		}
	}
}

func BenchmarkE1EpsilonTwoNode(b *testing.B) {
	var r experiments.Result
	for i := 0; i < b.N; i++ {
		r = experiments.E1Epsilon(benchSeed)
	}
	reportClaims(b, r)
	b.ReportMetric(r.Numbers["eps_load0"]*1e9, "eps-ns")
	b.ReportMetric(r.Numbers["eps_load60"]*1e9, "eps-loaded-ns")
}

func BenchmarkE2TimestampClasses(b *testing.B) {
	var r experiments.Result
	for i := 0; i < b.N; i++ {
		r = experiments.E2TimestampClasses(benchSeed)
	}
	reportClaims(b, r)
	b.ReportMetric(r.Numbers["prec:task (software-only)"]*1e6, "task-us")
	b.ReportMetric(r.Numbers["prec:ISR (kernel-level)"]*1e6, "isr-us")
	b.ReportMetric(r.Numbers["prec:NTI (hardware)"]*1e6, "nti-us")
}

func BenchmarkE3GranularitySweep(b *testing.B) {
	var r experiments.Result
	for i := 0; i < b.N; i++ {
		r = experiments.E3GranularitySweep(benchSeed)
	}
	reportClaims(b, r)
	b.ReportMetric(r.Numbers["prec_1MHz"]*1e6, "prec1MHz-us")
	b.ReportMetric(r.Numbers["prec_20MHz"]*1e6, "prec20MHz-us")
}

func BenchmarkE4SixteenNode(b *testing.B) {
	var r experiments.Result
	for i := 0; i < b.N; i++ {
		r = experiments.E4SixteenNode(benchSeed)
	}
	reportClaims(b, r)
	b.ReportMetric(r.Numbers["precision_max"]*1e6, "prec-us")
	b.ReportMetric(r.Numbers["accuracy_max"]*1e6, "acc-us")
}

func BenchmarkE5GPSValidation(b *testing.B) {
	var r experiments.Result
	for i := 0; i < b.N; i++ {
		r = experiments.E5GPSValidation(benchSeed)
	}
	reportClaims(b, r)
	b.ReportMetric(r.Numbers["validated_acc:wrong-second"]*1e6, "validated-us")
	b.ReportMetric(r.Numbers["naive_acc"]*1e6, "naive-us")
}

func BenchmarkE6RateSync(b *testing.B) {
	var r experiments.Result
	for i := 0; i < b.N; i++ {
		r = experiments.E6RateSync(benchSeed)
	}
	reportClaims(b, r)
	b.ReportMetric(r.Numbers["det_on"]*1e6, "det-on-us-per-s")
	b.ReportMetric(r.Numbers["det_off"]*1e6, "det-off-us-per-s")
}

func BenchmarkE7WANvsLAN(b *testing.B) {
	var r experiments.Result
	for i := 0; i < b.N; i++ {
		r = experiments.E7WANvsLAN(benchSeed)
	}
	reportClaims(b, r)
	b.ReportMetric(r.Numbers["ntp_sym"]*1e3, "ntp-ms")
	b.ReportMetric(r.Numbers["nti_lan"]*1e6, "nti-us")
}

func BenchmarkE8AdderVsCounter(b *testing.B) {
	var r experiments.Result
	for i := 0; i < b.N; i++ {
		r = experiments.E8AdderVsCounter(benchSeed)
	}
	reportClaims(b, r)
	b.ReportMetric(r.Numbers["prec_adder"]*1e6, "adder-us")
	b.ReportMetric(r.Numbers["prec_counter"]*1e6, "counter-us")
}

func BenchmarkE9TimestampPath(b *testing.B) {
	var r experiments.Result
	for i := 0; i < b.N; i++ {
		r = experiments.E9TimestampPath(benchSeed)
	}
	reportClaims(b, r)
	b.ReportMetric(r.Numbers["gap"]*1e6, "gap-us")
}

func BenchmarkE10BackToBack(b *testing.B) {
	var r experiments.Result
	for i := 0; i < b.N; i++ {
		r = experiments.E10BackToBack(benchSeed)
	}
	reportClaims(b, r)
	b.ReportMetric(r.Numbers["latch_misattributed"], "latch-bad")
	b.ReportMetric(r.Numbers["guess_misattributed"], "guess-bad")
}

func BenchmarkE11WANOfLANs(b *testing.B) {
	var r experiments.Result
	for i := 0; i < b.N; i++ {
		r = experiments.E11WANOfLANs(benchSeed)
	}
	reportClaims(b, r)
	b.ReportMetric(r.Numbers["global"]*1e6, "global-us")
	b.ReportMetric(r.Numbers["seg0"]*1e6, "segment-us")
}

func BenchmarkE12ByzantineNode(b *testing.B) {
	var r experiments.Result
	for i := 0; i < b.N; i++ {
		r = experiments.E12ByzantineNode(benchSeed)
	}
	reportClaims(b, r)
	b.ReportMetric(r.Numbers["prec_tolerant"]*1e6, "tolerant-us")
	b.ReportMetric(r.Numbers["prec_trusting"]*1e6, "trusting-us")
}

func BenchmarkE13HardwareMeasured(b *testing.B) {
	var r experiments.Result
	for i := 0; i < b.N; i++ {
		r = experiments.E13HardwareMeasuredPrecision(benchSeed)
	}
	reportClaims(b, r)
	b.ReportMetric(r.Numbers["hw_max"]*1e6, "hw-us")
	b.ReportMetric(r.Numbers["truth_max"]*1e6, "truth-us")
}

// BenchmarkClusterScaling measures simulator throughput: simulated
// seconds of a synchronized n-node system per wall-clock second.
//
// The nodes-128/nodes-512 sub-benchmarks run the footnote-2
// WANs-of-LANs topology under three engines on the same commit:
//
//   - flat / wolNN-single: the classic single-kernel paths (one flat
//     LAN, and the legacy direct-attach multi-segment builder);
//   - wolNN-shards01: the segment-sharded engine executed sequentially
//     (byte-identical to any other shard count);
//   - wolNN-shardsNN: one worker goroutine per segment.
//
// On a single-CPU host the sharded speedup is purely algorithmic —
// per-segment event heaps and O(receivers) frame delivery instead of
// one global heap with O(stations) fan-out; multicore hosts add
// wall-clock parallelism on top. See BENCH_kernel.json's "sharded"
// section.
func BenchmarkClusterScaling(b *testing.B) {
	for _, n := range []int{2, 4, 8, 16, 32} {
		n := n
		b.Run(benchName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := cluster.New(cluster.Defaults(n, benchSeed))
				c.Start(1)
				c.Sim.RunUntil(30)
			}
			b.ReportMetric(30*float64(b.N)/b.Elapsed().Seconds(), "sim-s/s")
		})
	}

	const wolSimS = 10.0
	runWol := func(name string, mk func() *cluster.Cluster) {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := mk()
				c.Start(1)
				c.RunUntil(wolSimS)
			}
			b.ReportMetric(wolSimS*float64(b.N)/b.Elapsed().Seconds(), "sim-s/s")
		})
	}
	for _, tc := range []struct{ nodes, segments int }{{128, 8}, {512, 16}} {
		tc := tc
		base := cluster.Defaults(tc.nodes, benchSeed)
		base.Sync.F = 1 // keep gateways per link at F+1 = 2 as n grows
		per := tc.nodes / tc.segments
		if tc.nodes == 128 {
			// The flat-LAN shape of the classic scaling series, at a size
			// it was never built for: every CSP fans out to 127 receivers.
			runWol(fmt.Sprintf("nodes-%03d-flat", tc.nodes), func() *cluster.Cluster {
				return cluster.New(cluster.Defaults(tc.nodes, benchSeed))
			})
		}
		runWol(fmt.Sprintf("nodes-%03d-wol%02d-single", tc.nodes, tc.segments), func() *cluster.Cluster {
			return cluster.NewWANOfLANsGW(base, tc.segments, per, 2)
		})
		for _, shards := range []int{1, tc.segments} {
			shards := shards
			runWol(fmt.Sprintf("nodes-%03d-wol%02d-shards%02d", tc.nodes, tc.segments, shards), func() *cluster.Cluster {
				cfg := base
				cfg.Segments = tc.segments
				cfg.Shards = shards
				return cluster.New(cfg)
			})
		}
	}
}

func benchName(n int) string {
	return fmt.Sprintf("nodes-%02d", n)
}

// BenchmarkTelemetryOverhead runs the nodes-32 scaling shape with the
// telemetry registry detached and attached. The disabled variant must
// match BenchmarkClusterScaling/nodes-32 within noise (the instrumented
// hot paths reduce to nil-handle branches — see internal/cluster
// TestTelemetrySteadyStateAllocParity); the enabled variant bounds the
// honest cost of counting everything. Recorded in BENCH_kernel.json's
// "telemetry" section.
func BenchmarkTelemetryOverhead(b *testing.B) {
	for _, enabled := range []bool{false, true} {
		enabled := enabled
		name := "disabled"
		if enabled {
			name = "enabled"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := cluster.Defaults(32, benchSeed)
				if enabled {
					cfg.Telemetry = telemetry.New()
				}
				c := cluster.New(cfg)
				c.Start(1)
				c.Sim.RunUntil(30)
			}
			b.ReportMetric(30*float64(b.N)/b.Elapsed().Seconds(), "sim-s/s")
		})
	}
}

// BenchmarkServing measures the client-population load subsystem on the
// serving-preset topology (16 nodes, 4 segments, F=1): simulated
// seconds per wall second with the full query stream attached, plus the
// served-accuracy headline numbers. Arrivals are tick-batched per node
// (one Poisson draw per 10 ms tick, not one event per client), so
// throughput should be nearly independent of population size — the
// population only scales the per-tick arrival mean. Steady-state
// allocations per query are pinned to zero by
// internal/service TestGeneratorSteadyStateAllocFree.
func BenchmarkServing(b *testing.B) {
	// Match the -preset serving shape: 10 s of convergence before the
	// measured window so served errors are steady-state.
	const settleS, windowS = 10.0, 10.0
	for _, tc := range []struct {
		clients int
		arrival string
	}{
		{100000, "poisson"},
		{1000000, "poisson"},
		{1000000, "mmpp"},
		{10000000, "poisson"},
	} {
		tc := tc
		b.Run(fmt.Sprintf("clients-%.0e-%s", float64(tc.clients), tc.arrival), func(b *testing.B) {
			var st service.Stats
			for i := 0; i < b.N; i++ {
				cfg := cluster.Defaults(16, benchSeed)
				cfg.Segments = 4
				cfg.Sync.F = 1
				cfg.Serving = service.Config{
					Clients:      tc.clients,
					Arrival:      tc.arrival,
					RegionalSkew: 1.5,
				}
				c := cluster.New(cfg)
				// Tighten the a-priori delay bounds like harness.runCell
				// does; precision (and therefore served error) is bound
				// by them.
				db := c.MeasureDelay(0, 1, 12)
				for _, m := range c.Members {
					m.Sync.SetDelayBounds(db)
				}
				c.Start(c.Now() + 1)
				c.RunUntil(c.Now() + settleS)
				c.StartServing(c.Now())
				c.RunUntil(c.Now() + windowS)
				st = c.ServingReport(windowS)
			}
			if st.Queries == 0 {
				b.Fatal("no queries served")
			}
			b.ReportMetric((1+settleS+windowS)*float64(b.N)/b.Elapsed().Seconds(), "sim-s/s")
			b.ReportMetric(st.QPS, "req/sim-s")
			b.ReportMetric(st.ErrP99S*1e6, "p99-err-us")
		})
	}
}

// BenchmarkSnapshot measures the measurement path itself.
func BenchmarkSnapshot(b *testing.B) {
	c := cluster.New(cluster.Defaults(16, benchSeed))
	c.Start(1)
	c.Sim.RunUntil(20)
	b.ResetTimer()
	var cs metrics.ClusterSample
	for i := 0; i < b.N; i++ {
		cs = c.Snapshot()
	}
	_ = cs
}

// BenchmarkCampaignParallelSpeedup runs a fixed 12-cell campaign
// through the harness with 1 worker and with GOMAXPROCS workers. On a
// multi-core machine the workers-NN variant should show >2× the cells/s
// of workers-01 (cells are independent simulations; the pool is
// embarrassingly parallel), while the JSONL artifacts stay
// byte-identical — see internal/harness TestParallelDeterminism.
func BenchmarkCampaignParallelSpeedup(b *testing.B) {
	spec := harness.Spec{
		Name:         "bench",
		Base:         cluster.Defaults(8, benchSeed),
		Points:       harness.Cross(harness.NodesAxis(4, 8), harness.LoadAxis(0, 0.3, 0.6)),
		Seeds:        []uint64{benchSeed, benchSeed + 1},
		WarmupS:      5,
		WindowS:      20,
		SampleEveryS: 1,
	}
	cells := len(spec.Cells())
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		workers := workers
		b.Run(fmt.Sprintf("workers-%02d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := spec
				s.Workers = workers
				camp := harness.Run(s)
				if n := len(camp.Failed()); n > 0 {
					b.Fatalf("%d cells failed", n)
				}
			}
			b.ReportMetric(float64(cells*b.N)/b.Elapsed().Seconds(), "cells/s")
		})
	}
}

func BenchmarkE14ConvergenceShootout(b *testing.B) {
	var r experiments.Result
	for i := 0; i < b.N; i++ {
		r = experiments.E14ConvergenceShootout(benchSeed)
	}
	reportClaims(b, r)
	b.ReportMetric(r.Numbers["prec:OA (midpoint)"]*1e6, "oa-mid-us")
	b.ReportMetric(r.Numbers["prec:OA (average)"]*1e6, "oa-avg-us")
}

func BenchmarkE15ReceiverCensus(b *testing.B) {
	var r experiments.Result
	for i := 0; i < b.N; i++ {
		r = experiments.E15ReceiverCensus(benchSeed)
	}
	reportClaims(b, r)
	b.ReportMetric(r.Numbers["missing:rx2 outages"], "outage-missing")
	b.ReportMetric(r.Numbers["badlabel:rx4 wrong-second"], "bad-labels")
}
