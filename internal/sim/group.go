// Conservative parallel composition of Simulators.
//
// A Group runs S independent sub-simulators ("shards") in lock-step
// windows of width equal to the lookahead: within a window every shard
// processes its own events freely, and anything one shard wants to
// happen on another is routed through Post, which requires the target
// time to lie at or beyond the window end. Because cross-shard
// causality in this repository is carried by WAN links whose
// propagation delay is at least the lookahead, a post made at
// simulated time τ inside the window (t, t+W] targets τ+D ≥ t+W, so
// no shard can ever receive an event in its past — the classical
// conservative (Chandy–Misra style) synchronization argument, with
// the barrier playing the role of the null message (see DESIGN.md §8).
//
// Determinism is independent of the worker count: the shard
// decomposition, the window boundaries, and the mailbox flush order
// depend only on (lookahead, horizon, posting shard, posting order) —
// never on goroutine scheduling. Worker goroutines only ever touch
// disjoint shards inside a window, and all cross-shard state crosses
// the barrier through channels, so runs are race-free and
// byte-identical for 1 and N workers.
package sim

import (
	"fmt"
	"sort"

	"ntisim/internal/telemetry"
)

// DeriveSeed maps a scenario seed and a label to the seed of an
// independent deterministic stream, using the same splitmix64 + FNV-64
// construction as RNG.Derive: NewRNG(DeriveSeed(seed, label)) yields
// the stream NewRNG(seed).Derive(label). Shard sub-simulators use it
// so that shard i's RNG universe is a pure function of (seed, i).
func DeriveSeed(seed uint64, label string) uint64 {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return NewRNG(seed).s[0] ^ h
}

// crossPost is one cross-shard event waiting in a Group outbox for the
// end-of-window flush.
type crossPost struct {
	dst int
	at  float64
	fn  func()
}

// Group composes per-shard Simulators under windowed conservative
// synchronization. The zero value is not usable; call NewGroup.
//
// A Group is driven from a single goroutine (RunUntil); the configured
// worker goroutines exist only inside a window and never outlive a
// RunUntil call.
type Group struct {
	shards    []*Simulator
	lookahead float64
	workers   int

	now    float64
	winEnd float64 // end of the window currently executing (read-only inside it)

	outbox [][]crossPost // one append-only outbox per source shard
	merged []crossPost   // flush scratch, reused across windows

	// Per-window worker rendezvous. wstart[w] carries the window end to
	// worker w (per-worker channels so a fast worker cannot steal a
	// slower worker's wake-up and skip that worker's shards); wdone
	// collects one token per worker per window. wpanic holds the first
	// panic recovered on each worker, re-raised on the driving
	// goroutine so a panicking model behaves as in the serial engine.
	wstart []chan float64
	wdone  chan struct{}
	wpanic []any

	// Telemetry handles (SetTelemetry): window count, flushed cross-shard
	// posts, events per window and the per-window shard imbalance ratio.
	// All updates happen on the driving goroutine strictly between
	// windows, so they are as deterministic as the window boundaries.
	tmWindows   *telemetry.Counter
	tmPosts     *telemetry.Counter
	tmWinEvents *telemetry.Gauge
	tmImbalance *telemetry.Gauge
	tmPrevFired []uint64 // per-shard fired counts at the last barrier
}

// NewGroup builds a Group over the given shards. lookahead is the
// minimum cross-shard latency in simulated seconds and must be > 0;
// workers is clamped to [1, len(shards)].
func NewGroup(lookahead float64, workers int, shards []*Simulator) *Group {
	if len(shards) == 0 {
		panic("sim: NewGroup with no shards")
	}
	if !(lookahead > 0) {
		panic(fmt.Sprintf("sim: NewGroup lookahead %v must be > 0", lookahead))
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(shards) {
		workers = len(shards)
	}
	return &Group{
		shards:    shards,
		lookahead: lookahead,
		workers:   workers,
		outbox:    make([][]crossPost, len(shards)),
	}
}

// Shards returns the number of sub-simulators.
func (g *Group) Shards() int { return len(g.shards) }

// Shard returns sub-simulator i.
func (g *Group) Shard(i int) *Simulator { return g.shards[i] }

// Workers returns the configured worker-goroutine count.
func (g *Group) Workers() int { return g.workers }

// Now returns the group clock: the end of the last completed window.
// Individual shards sit exactly at this time between windows.
func (g *Group) Now() float64 { return g.now }

// Lookahead returns the window width.
func (g *Group) Lookahead() float64 { return g.lookahead }

// EventCount sums fired events across shards.
func (g *Group) EventCount() uint64 {
	var n uint64
	for _, s := range g.shards {
		n += s.EventCount()
	}
	return n
}

// SetTelemetry registers the group's conservative-sync metrics on r:
// a window counter, a flushed cross-shard post counter, an
// events-per-window gauge and a shard-imbalance gauge (busiest shard's
// window events over the per-shard mean; 1.0 = perfectly balanced, S =
// one shard did all the work). A nil r detaches.
//
// Wall-clock worker utilization is deliberately absent: it would differ
// run to run, and snapshots must stay a pure function of sim state. The
// live Monitor owns wall-clock observations.
func (g *Group) SetTelemetry(r *telemetry.Registry) {
	if r == nil {
		g.tmWindows, g.tmPosts, g.tmWinEvents, g.tmImbalance = nil, nil, nil, nil
		g.tmPrevFired = nil
		return
	}
	g.tmWindows = r.Counter("group.windows")
	g.tmPosts = r.Counter("group.posts_flushed")
	g.tmWinEvents = r.Gauge("group.window_events")
	g.tmImbalance = r.Gauge("group.imbalance")
	g.tmPrevFired = make([]uint64, len(g.shards))
}

// windowTelemetry records one completed window: total events fired in it
// and how unevenly the shards shared them.
func (g *Group) windowTelemetry() {
	g.tmWindows.Inc()
	var total, max uint64
	for i, s := range g.shards {
		d := s.EventCount() - g.tmPrevFired[i]
		g.tmPrevFired[i] = s.EventCount()
		total += d
		if d > max {
			max = d
		}
	}
	g.tmWinEvents.Set(float64(total))
	if total > 0 {
		mean := float64(total) / float64(len(g.shards))
		g.tmImbalance.Set(float64(max) / mean)
	}
}

// Post schedules fn to run on shard dst at absolute time at. It may be
// called from shard src's event callbacks while a window executes (and
// from the driving goroutine between windows). The target time must
// not precede the end of the current window — the conservative-sync
// contract; violating it means the claimed lookahead was wrong, which
// would silently break determinism, so it panics loudly instead.
//
// Posts are buffered per source shard and flushed at the barrier in a
// canonical order (by target time, ties broken by source shard then
// posting order), so the destination shard's (at, seq) tie-break is a
// pure function of simulation state, not goroutine timing.
func (g *Group) Post(src, dst int, at float64, fn func()) {
	if at < g.winEnd {
		panic(fmt.Sprintf("sim: cross-shard post at %v before window end %v (lookahead %v violated)",
			at, g.winEnd, g.lookahead))
	}
	g.outbox[src] = append(g.outbox[src], crossPost{dst: dst, at: at, fn: fn})
}

// flush drains every outbox into the destination shards in canonical
// order. Runs on the driving goroutine, strictly between windows.
func (g *Group) flush() {
	m := g.merged[:0]
	for src := range g.outbox {
		m = append(m, g.outbox[src]...)
		g.outbox[src] = g.outbox[src][:0]
	}
	g.tmPosts.Add(uint64(len(m)))
	if len(m) > 1 {
		// Stable sort on target time: ties keep concatenation order,
		// i.e. (source shard, posting order).
		sort.SliceStable(m, func(i, j int) bool { return m[i].at < m[j].at })
	}
	for i := range m {
		g.shards[m[i].dst].At(m[i].at, m[i].fn)
		m[i].fn = nil
	}
	g.merged = m[:0]
}

// RunUntil advances every shard to horizon in conservative windows of
// width Lookahead, flushing cross-shard posts at each barrier. It
// returns the group clock (== horizon when horizon > Now).
func (g *Group) RunUntil(horizon float64) float64 {
	if horizon <= g.now {
		return g.now
	}
	par := g.workers > 1 && len(g.shards) > 1
	if par {
		g.startWorkers()
		defer g.stopWorkers()
	}
	for g.now < horizon {
		end := g.now + g.lookahead
		if end > horizon {
			end = horizon
		}
		g.winEnd = end
		if par {
			g.runWindowParallel(end)
		} else {
			for _, s := range g.shards {
				s.RunUntil(end)
			}
		}
		g.flush()
		g.now = end
		if g.tmWindows != nil {
			g.windowTelemetry()
		}
	}
	return g.now
}

// startWorkers spawns the per-RunUntil worker pool. Worker w owns the
// shard stride w, w+P, w+2P, … — a static partition, so two workers
// never touch the same shard and the assignment is scheduling-free.
func (g *Group) startWorkers() {
	p := g.workers
	g.wstart = make([]chan float64, p)
	g.wdone = make(chan struct{}, p)
	g.wpanic = make([]any, p)
	for w := 0; w < p; w++ {
		g.wstart[w] = make(chan float64, 1)
		go func(w int) {
			for end := range g.wstart[w] {
				func() {
					defer func() {
						if r := recover(); r != nil && g.wpanic[w] == nil {
							g.wpanic[w] = r
						}
					}()
					for i := w; i < len(g.shards); i += p {
						g.shards[i].RunUntil(end)
					}
				}()
				g.wdone <- struct{}{}
			}
		}(w)
	}
}

// runWindowParallel executes one window on the worker pool and
// re-raises the lowest-indexed worker panic, if any, on the caller.
func (g *Group) runWindowParallel(end float64) {
	for _, ch := range g.wstart {
		ch <- end
	}
	for range g.wstart {
		<-g.wdone
	}
	for w := range g.wpanic {
		if r := g.wpanic[w]; r != nil {
			g.wpanic[w] = nil
			panic(r)
		}
	}
}

// stopWorkers shuts the pool down (workers exit when their start
// channel closes). Safe during panic unwinding via defer.
func (g *Group) stopWorkers() {
	for _, ch := range g.wstart {
		close(ch)
	}
	g.wstart = nil
	g.wdone = nil
	g.wpanic = nil
}
