package sim

// The pending-event set is a monomorphic 4-ary min-heap on (at, seq),
// replacing the earlier container/heap binary heap (see DESIGN.md §4).
// Heap entries are small pointer-free values: sift operations move
// 24-byte nodes within one slice with no interface dispatch, no `any`
// boxing and no GC write barriers (the Event itself is reached through
// the simulator's arena by index). (at, seq) is a total order — seq is
// unique per scheduling — so firing order is identical to the old heap
// regardless of arity or internal layout.
//
// Cancellation is lazy: Cancel only flips the event's state to
// stateCancelled (an O(1) tombstone). Tombstoned nodes are skipped and
// their events recycled when they surface at pop time; when tombstones
// outnumber live entries the queue is compacted in place and re-heapified
// in O(n). Compaction permutes only the internal array — the comparator's
// total order is unchanged, so determinism is preserved.

// node is one pending-event-set entry. idx addresses the owning
// Simulator's event arena, keeping the node pointer-free.
type node struct {
	at  float64
	seq uint64
	idx uint32
}

// before reports whether n fires before m: earlier time first, insertion
// order (seq) breaking ties.
func (n node) before(m node) bool {
	if n.at != m.at {
		return n.at < m.at
	}
	return n.seq < m.seq
}

// pushNode inserts a node, sifting it up with the hole technique (one
// write per level instead of a three-assignment swap).
func (s *Simulator) pushNode(n node) {
	q := append(s.queue, node{})
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !n.before(q[p]) {
			break
		}
		q[i] = q[p]
		i = p
	}
	q[i] = n
	s.queue = q
	s.tmScheduled.Inc()
	s.tmDepth.Set(float64(len(q)))
}

// popNode removes and returns the minimum node. The caller guarantees
// the queue is non-empty.
func (s *Simulator) popNode() node {
	q := s.queue
	top := q[0]
	n := len(q) - 1
	last := q[n]
	q = q[:n]
	if n > 0 {
		siftDown(q, 0, last)
	}
	s.queue = q
	return top
}

// siftDown places v at position i of q, sinking the hole toward the
// smallest of up to four children per level.
func siftDown(q []node, i int, v node) {
	n := len(q)
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		hi := c + 4
		if hi > n {
			hi = n
		}
		for j := c + 1; j < hi; j++ {
			if q[j].before(q[m]) {
				m = j
			}
		}
		if !q[m].before(v) {
			break
		}
		q[i] = q[m]
		i = m
	}
	q[i] = v
}

// compact removes tombstoned nodes in place, recycling their events, and
// rebuilds the heap bottom-up (Floyd) in O(n).
func (s *Simulator) compact() {
	q := s.queue
	k := 0
	for _, n := range q {
		e := s.events[n.idx]
		if e.state == stateCancelled {
			s.release(e)
			continue
		}
		q[k] = n
		k++
	}
	q = q[:k]
	for i := (k - 2) >> 2; i >= 0; i-- {
		siftDown(q, i, q[i])
	}
	s.queue = q
	s.tombstones = 0
}
