// Package sim is a deterministic discrete-event simulation kernel.
//
// Events carry a firing time in simulated "true" seconds (float64; see
// DESIGN.md §4 for the precision argument) and fire in time order, with
// insertion order breaking ties so runs are reproducible bit-for-bit.
package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. The Cancel method of the returned handle
// prevents a pending event from firing.
type Event struct {
	at    float64
	seq   uint64
	fn    func()
	index int // heap index, -1 once fired or cancelled
	owner *Simulator
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() {
	if e != nil && e.index >= 0 && e.owner != nil {
		heap.Remove(&e.owner.queue, e.index)
		e.index = -1
	}
}

// Pending reports whether the event is still scheduled.
func (e *Event) Pending() bool { return e != nil && e.index >= 0 }

// Simulator owns the event queue and the current simulated time.
// The zero value is not usable; call New.
type Simulator struct {
	now   float64
	seq   uint64
	queue eventQueue
	root  *RNG
	limit float64 // horizon; 0 = none
	fired uint64
}

// New creates a Simulator whose stochastic components derive their RNG
// streams from seed.
func New(seed uint64) *Simulator {
	return &Simulator{root: NewRNG(seed)}
}

// Now returns the current simulated time in seconds.
func (s *Simulator) Now() float64 { return s.now }

// RNG derives a named deterministic random stream for one component.
func (s *Simulator) RNG(label string) *RNG { return s.root.Derive(label) }

// EventCount returns the number of events fired so far (for diagnostics).
func (s *Simulator) EventCount() uint64 { return s.fired }

// At schedules fn to run at absolute time t (which must not be in the
// past) and returns a cancellable handle.
func (s *Simulator) At(t float64, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling into the past: %v < %v", t, s.now))
	}
	e := &Event{at: t, seq: s.seq, fn: fn, owner: s}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// After schedules fn to run d seconds from now.
func (s *Simulator) After(d float64, fn func()) *Event {
	if d < 0 {
		panic("sim: negative delay")
	}
	return s.At(s.now+d, fn)
}

// Every schedules fn every period seconds starting at start, until the
// returned handle is cancelled. fn sees the simulator clock already
// advanced to its firing time.
func (s *Simulator) Every(start, period float64, fn func()) *Ticker {
	t := &Ticker{sim: s, period: period, fn: fn}
	t.ev = s.At(start, t.fire)
	return t
}

// Ticker is a repeating event created by Every.
type Ticker struct {
	sim    *Simulator
	period float64
	fn     func()
	ev     *Event
	done   bool
}

func (t *Ticker) fire() {
	if t.done {
		return
	}
	t.fn()
	if !t.done { // fn may have stopped us
		t.ev = t.sim.After(t.period, t.fire)
	}
}

// Stop cancels future firings.
func (t *Ticker) Stop() {
	t.done = true
	t.ev.Cancel()
}

// Run processes events until the queue is empty or the horizon set by
// RunUntil is reached. It returns the time of the last fired event.
func (s *Simulator) Run() float64 {
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*Event)
		e.index = -1
		if s.limit > 0 && e.at > s.limit {
			s.now = s.limit
			return s.now
		}
		s.now = e.at
		s.fired++
		e.fn()
	}
	return s.now
}

// RunUntil processes events with firing times <= horizon, then stops with
// the clock at horizon. Events beyond the horizon remain queued.
func (s *Simulator) RunUntil(horizon float64) float64 {
	s.limit = horizon
	defer func() { s.limit = 0 }()
	for len(s.queue) > 0 && s.queue[0].at <= horizon {
		e := heap.Pop(&s.queue).(*Event)
		e.index = -1
		s.now = e.at
		s.fired++
		e.fn()
	}
	if s.now < horizon {
		s.now = horizon
	}
	return s.now
}

// eventQueue is a min-heap on (at, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}
