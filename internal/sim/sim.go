// Package sim is a deterministic discrete-event simulation kernel.
//
// Events carry a firing time in simulated "true" seconds (float64; see
// DESIGN.md §4 for the precision argument) and fire in time order, with
// insertion order breaking ties so runs are reproducible bit-for-bit.
//
// Scheduling is allocation-free in steady state: Event storage comes
// from a per-simulator free list and is recycled once an event has fired
// or a cancelled event has drained from the queue (see queue.go for the
// pending-event-set layout). A handle therefore identifies one
// scheduling only — once the event has fired, Cancel and Pending on the
// retained handle are no-ops at best and may observe a recycled
// scheduling. Callers that cache handles across firings must clear them
// when the callback runs (every retention site in this repository does;
// Ticker manages its own handle the same way).
package sim

import (
	"fmt"

	"ntisim/internal/telemetry"
	"ntisim/internal/trace"
)

// Event lifecycle states. A pooled Event cycles
// free → pending → (firing|cancelled) → free.
const (
	stateFree uint8 = iota
	statePending
	stateFiring
	stateCancelled
)

// compactFloor is the minimum tombstone count before Cancel considers
// compacting the queue; below it, lazy pop-time skipping is cheaper than
// re-heapifying.
const compactFloor = 64

// Event is a scheduled callback. The Cancel method of the returned handle
// prevents a pending event from firing.
type Event struct {
	fn    func()
	owner *Simulator
	idx   uint32 // position in owner.events, stable for the Event's lifetime
	state uint8
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op. The cancelled entry stays in the
// queue as an O(1) tombstone and is recycled when it surfaces at pop
// time (or at the next compaction).
func (e *Event) Cancel() {
	if e == nil || e.state != statePending {
		return
	}
	e.state = stateCancelled
	s := e.owner
	s.tmCancelled.Inc()
	s.tombstones++
	if s.tombstones >= compactFloor && s.tombstones > len(s.queue)/2 {
		s.compact()
	}
}

// Pending reports whether the event is still scheduled.
func (e *Event) Pending() bool { return e != nil && e.state == statePending }

// Simulator owns the event queue and the current simulated time.
// The zero value is not usable; call New.
type Simulator struct {
	now       float64
	seq       uint64
	queue     []node
	root      *RNG
	limit     float64 // horizon; 0 = none
	fired     uint64
	lastFired float64 // firing time of the most recent event

	// events is the arena the queue's pointer-free nodes index into;
	// free lists the recycled entries ready for reuse.
	events     []*Event
	free       []*Event
	tombstones int

	// tr is non-nil only when a tracer with dispatch recording is
	// attached (see SetTracer); the fire loops then emit one
	// KindEventFire record per dispatched event.
	tr *trace.Tracer

	// Telemetry handles (see SetTelemetry). All nil when telemetry is
	// off; their methods are nil-receiver no-ops, so the hot paths pay
	// one predictable branch each — same contract as tr above.
	tmScheduled *telemetry.Counter
	tmFired     *telemetry.Counter
	tmCancelled *telemetry.Counter
	tmDepth     *telemetry.Gauge
}

// New creates a Simulator whose stochastic components derive their RNG
// streams from seed.
func New(seed uint64) *Simulator {
	return &Simulator{root: NewRNG(seed)}
}

// Now returns the current simulated time in seconds.
func (s *Simulator) Now() float64 { return s.now }

// RNG derives a named deterministic random stream for one component.
func (s *Simulator) RNG(label string) *RNG { return s.root.Derive(label) }

// EventCount returns the number of events fired so far (for diagnostics).
func (s *Simulator) EventCount() uint64 { return s.fired }

// LastFiredAt returns the simulated time of the most recently fired
// event (0 before any event fires). The sharded kernel's telemetry uses
// it to expose per-shard window lag — how far behind the group clock a
// shard went idle.
func (s *Simulator) LastFiredAt() float64 { return s.lastFired }

// SetTelemetry registers this simulator's kernel metrics on r and keeps
// the update handles: events scheduled/fired/cancelled counters and the
// event-queue depth gauge (with high-water mark), plus snapshot-time
// pool-occupancy gauges (arena size and free-list length) that cost
// nothing between captures. A nil r detaches, restoring the all-nil
// handles of the free disabled path.
func (s *Simulator) SetTelemetry(r *telemetry.Registry) {
	if r == nil {
		s.tmScheduled, s.tmFired, s.tmCancelled, s.tmDepth = nil, nil, nil, nil
		return
	}
	s.tmScheduled = r.Counter("sim.events_scheduled")
	s.tmFired = r.Counter(telemetry.MetricEventsFired)
	s.tmCancelled = r.Counter("sim.events_cancelled")
	s.tmDepth = r.Gauge(telemetry.MetricQueueDepth)
	r.GaugeFunc("sim.pool_events", func() float64 { return float64(len(s.events)) })
	r.GaugeFunc("sim.pool_free", func() float64 { return float64(len(s.free)) })
}

// SetTracer attaches an event tracer. Dispatch records are only kept
// when the tracer asks for them (trace.Options.Dispatch) — otherwise
// the field stays nil and the fire loops pay a single never-taken
// branch, keeping the traced-but-quiet hot path identical to the
// untraced one.
func (s *Simulator) SetTracer(tr *trace.Tracer) {
	if tr != nil && tr.Options().Dispatch {
		s.tr = tr
	} else {
		s.tr = nil
	}
}

// alloc takes an Event from the free list, growing the arena only when
// the list is empty (steady state never grows it).
func (s *Simulator) alloc(fn func()) *Event {
	var e *Event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		e = &Event{owner: s, idx: uint32(len(s.events))}
		s.events = append(s.events, e)
	}
	e.fn = fn
	e.state = statePending
	return e
}

// release returns a fired or drained-cancelled Event to the free list.
func (s *Simulator) release(e *Event) {
	e.fn = nil
	e.state = stateFree
	s.free = append(s.free, e)
}

// At schedules fn to run at absolute time t (which must not be in the
// past) and returns a cancellable handle.
func (s *Simulator) At(t float64, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling into the past: %v < %v", t, s.now))
	}
	e := s.alloc(fn)
	s.pushNode(node{at: t, seq: s.seq, idx: e.idx})
	s.seq++
	return e
}

// After schedules fn to run d seconds from now.
func (s *Simulator) After(d float64, fn func()) *Event {
	if d < 0 {
		panic("sim: negative delay")
	}
	return s.At(s.now+d, fn)
}

// rearm re-pushes a currently-firing event at absolute time t, reusing
// its storage. Only legal from within the event's own callback (Ticker
// uses it to reschedule without allocating).
func (s *Simulator) rearm(e *Event, t float64) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling into the past: %v < %v", t, s.now))
	}
	e.state = statePending
	s.pushNode(node{at: t, seq: s.seq, idx: e.idx})
	s.seq++
}

// Every schedules fn every period seconds starting at start, until the
// returned handle is cancelled. fn sees the simulator clock already
// advanced to its firing time.
func (s *Simulator) Every(start, period float64, fn func()) *Ticker {
	t := &Ticker{sim: s, period: period, fn: fn}
	t.ev = s.At(start, t.fire)
	return t
}

// Ticker is a repeating event created by Every. It owns a single pooled
// Event that is re-pushed in place every period.
type Ticker struct {
	sim    *Simulator
	period float64
	fn     func()
	ev     *Event
	done   bool
}

func (t *Ticker) fire() {
	if t.done {
		return
	}
	t.fn()
	if t.done { // fn may have stopped us
		t.ev = nil
		return
	}
	t.sim.rearm(t.ev, t.sim.now+t.period)
}

// Stop cancels future firings. Stopping an already-stopped ticker, or
// stopping from within the callback, is safe.
func (t *Ticker) Stop() {
	t.done = true
	if t.ev != nil {
		t.ev.Cancel()
		t.ev = nil
	}
}

// Run processes events until the queue is empty or the horizon set by
// RunUntil is reached. It returns the time of the last fired event.
func (s *Simulator) Run() float64 {
	for len(s.queue) > 0 {
		n := s.popNode()
		e := s.events[n.idx]
		if e.state == stateCancelled {
			s.tombstones--
			s.release(e)
			continue
		}
		if s.limit > 0 && n.at > s.limit {
			s.now = s.limit
			s.release(e)
			return s.now
		}
		s.now = n.at
		s.fired++
		s.lastFired = n.at
		s.tmFired.Inc()
		if s.tr != nil {
			s.tr.Emit(trace.KindEventFire, s.now, -1, 0, n.seq, 0, 0)
		}
		e.state = stateFiring
		e.fn()
		if e.state == stateFiring { // not re-armed by its own callback
			s.release(e)
		}
	}
	return s.now
}

// RunUntil processes events with firing times <= horizon, then stops with
// the clock at horizon. Events beyond the horizon remain queued.
func (s *Simulator) RunUntil(horizon float64) float64 {
	s.limit = horizon
	defer func() { s.limit = 0 }()
	for len(s.queue) > 0 && s.queue[0].at <= horizon {
		n := s.popNode()
		e := s.events[n.idx]
		if e.state == stateCancelled {
			s.tombstones--
			s.release(e)
			continue
		}
		s.now = n.at
		s.fired++
		s.lastFired = n.at
		s.tmFired.Inc()
		if s.tr != nil {
			s.tr.Emit(trace.KindEventFire, s.now, -1, 0, n.seq, 0, 0)
		}
		e.state = stateFiring
		e.fn()
		if e.state == stateFiring {
			s.release(e)
		}
	}
	if s.now < horizon {
		s.now = horizon
	}
	return s.now
}
