package sim

// Tests for the pooled allocation-free pending-event set: tombstone
// cancellation, compaction, Ticker stop races, steady-state
// allocation-freedom, and a firing-order oracle over random
// schedule/cancel sequences.

import (
	"sort"
	"testing"
)

// TestCancelFromWithinCallback covers the tombstone path when the
// cancelling code runs inside another event's callback: the cancelled
// event is already in the heap and must be skipped at pop time.
func TestCancelFromWithinCallback(t *testing.T) {
	s := New(1)
	var fired []string
	var victim *Event
	s.At(1, func() {
		fired = append(fired, "canceller")
		victim.Cancel()
	})
	victim = s.At(2, func() { fired = append(fired, "victim") })
	s.At(3, func() { fired = append(fired, "survivor") })
	s.Run()
	if len(fired) != 2 || fired[0] != "canceller" || fired[1] != "survivor" {
		t.Errorf("fired = %v, want [canceller survivor]", fired)
	}
	if victim.Pending() {
		t.Error("victim still pending after cancel")
	}
}

// TestCancelSelfFromCallback: cancelling the event that is currently
// firing is a no-op (it already fired), and must not corrupt the pool.
func TestCancelSelfFromCallback(t *testing.T) {
	s := New(1)
	count := 0
	var e *Event
	e = s.At(1, func() {
		count++
		e.Cancel() // no-op: the event is firing, not pending
	})
	s.At(2, func() { count += 10 })
	s.Run()
	if count != 11 {
		t.Errorf("count = %d, want 11", count)
	}
}

// TestTickerStopIsIdempotent guards the nil-ev path: stopping twice,
// and stopping after a stop-from-within-callback, must be no-ops.
func TestTickerStopIsIdempotent(t *testing.T) {
	s := New(1)
	count := 0
	tk := s.Every(1, 1, func() { count++ })
	s.RunUntil(3.5)
	tk.Stop()
	tk.Stop() // second stop: ev is already nil
	s.RunUntil(10)
	if count != 3 {
		t.Errorf("ticker fired %d times, want 3", count)
	}
}

// TestTickerStopFromWithinCallback stops the ticker from its own
// callback; the firing event must not be rescheduled, and a later Stop
// must not cancel an unrelated recycled event.
func TestTickerStopFromWithinCallback(t *testing.T) {
	s := New(1)
	count := 0
	var tk *Ticker
	tk = s.Every(1, 1, func() {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	// Unrelated events that recycle pool storage after the ticker dies.
	for i := 4; i < 10; i++ {
		s.At(float64(i)+0.5, func() {})
	}
	s.Run()
	tk.Stop() // stale stop long after the pooled event was recycled
	if count != 3 {
		t.Errorf("ticker fired %d times, want 3", count)
	}
}

// TestTickerStopThenFireSameInstant: Stop runs at the exact simulated
// time of the next ticker firing but earlier in tie-break order; the
// tombstoned event must not fire.
func TestTickerStopThenFireSameInstant(t *testing.T) {
	s := New(1)
	count := 0
	tk := s.Every(2, 2, func() { count++ }) // fires at 2, 4, 6, ...
	// Scheduled before the ticker exists? No — after, but at t=4 the
	// ticker's re-push from its t=2 firing carries a later seq than this
	// event only if this is scheduled first. Schedule the stop at t=4
	// before the ticker's t=2 callback re-pushes: seq(stop) < seq(repush),
	// so the stop wins the tie and the t=4 firing must be cancelled.
	s.At(4, func() { tk.Stop() })
	s.Run()
	if count != 1 {
		t.Errorf("ticker fired %d times, want 1 (stop ties with second firing)", count)
	}
}

// TestEventPoolReuse pins the free-list: steady-state schedule/fire must
// not grow the event arena.
func TestEventPoolReuse(t *testing.T) {
	s := New(1)
	cb := func() {}
	for i := 0; i < 100; i++ {
		s.After(1, cb)
		s.Run()
	}
	arena := len(s.events)
	for i := 0; i < 1000; i++ {
		s.After(1, cb)
		s.Run()
	}
	if got := len(s.events); got != arena {
		t.Errorf("event arena grew from %d to %d during steady state", arena, got)
	}
}

// TestZeroAllocAfterFire asserts the allocation-free property for the
// steady-state schedule→fire cycle.
func TestZeroAllocAfterFire(t *testing.T) {
	s := New(1)
	cb := func() {}
	for i := 0; i < 64; i++ { // warm the pool and the queue's capacity
		s.After(1, cb)
	}
	s.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		s.After(1, cb)
		s.Run()
	})
	if allocs != 0 {
		t.Errorf("steady-state After+fire: %v allocs/op, want 0", allocs)
	}
}

// TestZeroAllocTicker asserts Ticker periods re-push the pooled event
// without allocating.
func TestZeroAllocTicker(t *testing.T) {
	s := New(1)
	n := 0
	s.Every(1, 1, func() { n++ })
	horizon := 10.0
	s.RunUntil(horizon)
	allocs := testing.AllocsPerRun(100, func() {
		horizon += 10
		s.RunUntil(horizon)
	})
	if allocs != 0 {
		t.Errorf("steady-state ticker periods: %v allocs/op, want 0", allocs)
	}
	if n == 0 {
		t.Fatal("ticker never fired")
	}
}

// TestZeroAllocCancel asserts the tombstone path itself is
// allocation-free: schedule two, cancel one, drain.
func TestZeroAllocCancel(t *testing.T) {
	s := New(1)
	cb := func() {}
	for i := 0; i < 64; i++ {
		s.After(1, cb)
	}
	s.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		keep := s.After(1, cb)
		kill := s.After(2, cb)
		kill.Cancel()
		s.Run()
		_ = keep
	})
	if allocs != 0 {
		t.Errorf("steady-state schedule+cancel+fire: %v allocs/op, want 0", allocs)
	}
}

// TestCompaction drives tombstones past half the queue so Cancel
// triggers an in-place compaction, then verifies both firing order and
// that the cancelled events were recycled.
func TestCompaction(t *testing.T) {
	s := New(1)
	var fired []int
	events := make([]*Event, 0, 4*compactFloor)
	for i := 0; i < 4*compactFloor; i++ {
		i := i
		events = append(events, s.At(float64(i), func() { fired = append(fired, i) }))
	}
	// Cancel ~3/4 of the queue: crosses the tombstones > len/2 threshold.
	for i := 0; i < len(events); i++ {
		if i%4 != 0 {
			events[i].Cancel()
		}
	}
	if s.tombstones != 0 && s.tombstones > len(s.queue)/2 {
		t.Errorf("compaction did not run: %d tombstones, queue %d", s.tombstones, len(s.queue))
	}
	s.Run()
	if len(fired) != compactFloor {
		t.Fatalf("fired %d events, want %d", len(fired), compactFloor)
	}
	for k, v := range fired {
		if v != 4*k {
			t.Fatalf("fired[%d] = %d, want %d (order broken by compaction)", k, v, 4*k)
		}
	}
}

// TestQueueOracle compares the queue's firing order against a
// sort.SliceStable reference over random schedule/cancel sequences,
// including duplicate timestamps (tie-break by insertion order).
func TestQueueOracle(t *testing.T) {
	for trial := uint64(0); trial < 40; trial++ {
		rng := NewRNG(trial)
		s := New(1)
		type sched struct {
			at        float64
			id        int
			cancelled bool
		}
		var oracle []sched
		var handles []*Event
		var got []int
		for op := 0; op < 300; op++ {
			if len(oracle) == 0 || rng.Float64() < 0.7 {
				// Coarse quantization makes duplicate timestamps common.
				at := float64(rng.Intn(40))
				id := len(oracle)
				oracle = append(oracle, sched{at: at, id: id})
				handles = append(handles, s.At(at, func() { got = append(got, id) }))
			} else {
				victim := rng.Intn(len(oracle))
				if !oracle[victim].cancelled {
					oracle[victim].cancelled = true
					handles[victim].Cancel()
					handles[victim].Cancel() // double-cancel is a no-op
				}
			}
		}
		s.Run()
		live := make([]sched, 0, len(oracle))
		for _, e := range oracle {
			if !e.cancelled {
				live = append(live, e)
			}
		}
		sort.SliceStable(live, func(i, j int) bool { return live[i].at < live[j].at })
		if len(got) != len(live) {
			t.Fatalf("trial %d: fired %d events, oracle says %d", trial, len(got), len(live))
		}
		for k := range live {
			if got[k] != live[k].id {
				t.Fatalf("trial %d: position %d fired id %d, oracle says %d", trial, k, got[k], live[k].id)
			}
		}
	}
}

// TestNestedSchedulingOracle mixes scheduling from inside callbacks with
// pre-run scheduling: events scheduled at the current instant from a
// callback must still respect global (at, seq) order.
func TestNestedSchedulingOracle(t *testing.T) {
	s := New(1)
	var got []float64
	for i := 10; i > 0; i-- {
		at := float64(i)
		s.At(at, func() {
			got = append(got, at)
			if at < 8 {
				inner := at + 0.5
				s.At(inner, func() { got = append(got, inner) })
			}
		})
	}
	s.Run()
	if !sort.Float64sAreSorted(got) {
		t.Errorf("interleaved nested events fired out of order: %v", got)
	}
	if len(got) != 17 {
		t.Errorf("fired %d events, want 17", len(got))
	}
}
