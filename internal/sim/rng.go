package sim

import "math"

// RNG is a small, fast, deterministic random number generator
// (xoshiro256** seeded via splitmix64). Each stochastic component of the
// simulation owns its own RNG derived from the scenario seed and a label,
// so adding a component never perturbs the random streams of others.
type RNG struct {
	s [4]uint64
}

// NewRNG returns an RNG seeded from seed via splitmix64.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9E3779B97F4A7C15
		z := sm
		z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
		z = (z ^ z>>27) * 0x94D049BB133111EB
		r.s[i] = z ^ z>>31
	}
	// Avoid the all-zero state (cannot occur with splitmix, but be safe).
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Derive returns a new RNG whose stream is a deterministic function of r's
// seed material and the label, without consuming from r's own stream.
func (r *RNG) Derive(label string) *RNG {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return NewRNG(r.s[0] ^ h)
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform value in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Normal returns a normally distributed value (Box–Muller, one value per
// call for simplicity and stream stability).
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Exponential returns an exponentially distributed value with the given
// mean. Used for background traffic inter-arrival times.
func (r *RNG) Exponential(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Poisson returns a Poisson-distributed count with the given mean,
// used for tick-aggregated arrival batches. Small means use Knuth's
// product method (exact); means of 30 and above switch to a rounded
// normal approximation whose error is far below the shot noise at that
// scale, keeping the cost O(1) instead of O(mean). Both branches
// consume a bounded, deterministic number of stream draws for a given
// outcome, so counts are reproducible from the seed alone.
func (r *RNG) Poisson(mean float64) uint64 {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		var k uint64
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	v := math.Round(r.Normal(mean, math.Sqrt(mean)))
	if v < 0 {
		return 0
	}
	return uint64(v)
}

// TruncNormal returns a normal value clamped to [lo, hi], modelling
// bounded hardware jitter (e.g. bus-arbitration delays).
func (r *RNG) TruncNormal(mean, stddev, lo, hi float64) float64 {
	v := r.Normal(mean, stddev)
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Pareto returns a bounded Pareto sample in [lo, hi] with shape a > 0,
// modelling heavy-tailed queueing delays in the WAN path.
func (r *RNG) Pareto(a, lo, hi float64) float64 {
	u := r.Float64()
	la := math.Pow(lo, a)
	ha := math.Pow(hi, a)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/a)
}
