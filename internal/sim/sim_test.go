package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.At(3, func() { got = append(got, 3) })
	s.At(1, func() { got = append(got, 1) })
	s.At(2, func() { got = append(got, 2) })
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order = %v", got)
	}
	if s.Now() != 3 {
		t.Errorf("Now = %v, want 3", s.Now())
	}
}

func TestTieBreakByInsertion(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.Run()
	if !sort.IntsAreSorted(got) {
		t.Errorf("tied events fired out of insertion order: %v", got)
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	fired := false
	e := s.At(1, func() { fired = true })
	if !e.Pending() {
		t.Error("event should be pending")
	}
	e.Cancel()
	if e.Pending() {
		t.Error("cancelled event still pending")
	}
	e.Cancel() // double-cancel is a no-op
	s.Run()
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	s := New(1)
	var got []int
	events := make([]*Event, 20)
	for i := 0; i < 20; i++ {
		i := i
		events[i] = s.At(float64(i), func() { got = append(got, i) })
	}
	for i := 1; i < 20; i += 2 {
		events[i].Cancel()
	}
	s.Run()
	for _, v := range got {
		if v%2 != 0 {
			t.Errorf("cancelled event %d fired", v)
		}
	}
	if len(got) != 10 {
		t.Errorf("fired %d events, want 10", len(got))
	}
}

func TestAfterAndNesting(t *testing.T) {
	s := New(1)
	var times []float64
	s.After(1, func() {
		times = append(times, s.Now())
		s.After(0.5, func() { times = append(times, s.Now()) })
	})
	s.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 1.5 {
		t.Errorf("times = %v", times)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New(1)
	s.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling into the past should panic")
			}
		}()
		s.At(1, func() {})
	})
	s.Run()
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	var got []float64
	for _, at := range []float64{1, 2, 3, 4, 5} {
		at := at
		s.At(at, func() { got = append(got, at) })
	}
	s.RunUntil(3)
	if len(got) != 3 {
		t.Errorf("fired %v, want events at 1..3", got)
	}
	if s.Now() != 3 {
		t.Errorf("Now = %v after RunUntil(3)", s.Now())
	}
	s.Run() // rest still queued
	if len(got) != 5 {
		t.Errorf("after Run fired %v", got)
	}
}

func TestRunUntilEmptyAdvancesClock(t *testing.T) {
	s := New(1)
	s.RunUntil(10)
	if s.Now() != 10 {
		t.Errorf("Now = %v, want 10", s.Now())
	}
}

func TestTicker(t *testing.T) {
	s := New(1)
	count := 0
	tk := s.Every(1, 2, func() {
		count++
		if count == 5 {
			// Stop from within the callback.
		}
	})
	s.At(9.5, func() { tk.Stop() })
	s.Run()
	if count != 5 { // fires at 1,3,5,7,9
		t.Errorf("ticker fired %d times, want 5", count)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []uint64 {
		s := New(42)
		r := s.RNG("x")
		var out []uint64
		for i := 0; i < 5; i++ {
			d := r.Float64() * 10
			s.After(d, func() { out = append(out, r.Uint64()) })
		}
		s.Run()
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRNGDeriveIndependence(t *testing.T) {
	r := NewRNG(7)
	a := r.Derive("alpha")
	b := r.Derive("beta")
	a2 := NewRNG(7).Derive("alpha")
	if a.Uint64() != a2.Uint64() {
		t.Error("Derive not deterministic")
	}
	if a.Uint64() == b.Uint64() {
		t.Error("different labels should give different streams")
	}
}

func TestRNGUniformRange(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(3)
	n := 50000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.Normal(10, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("normal mean = %v", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Errorf("normal stddev = %v", math.Sqrt(variance))
	}
}

func TestRNGExponentialMean(t *testing.T) {
	r := NewRNG(9)
	n := 50000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exponential(3)
	}
	if mean := sum / float64(n); math.Abs(mean-3) > 0.1 {
		t.Errorf("exponential mean = %v", mean)
	}
}

func TestRNGPoissonMean(t *testing.T) {
	r := NewRNG(13)
	// Both regimes: Knuth product method (small mean) and the rounded
	// normal approximation (mean >= 30).
	for _, mean := range []float64{0.5, 6, 80, 5000} {
		n := 20000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(mean))
		}
		got := sum / float64(n)
		// Standard error of the sample mean is sqrt(mean/n); 5 sigma.
		tol := 5 * math.Sqrt(mean/float64(n))
		if math.Abs(got-mean) > tol {
			t.Errorf("Poisson(%g) sample mean = %g, want +- %g", mean, got, tol)
		}
	}
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Error("non-positive mean must give 0 arrivals")
	}
}

func TestRNGPoissonDeterminism(t *testing.T) {
	a, b := NewRNG(21), NewRNG(21)
	for i := 0; i < 1000; i++ {
		mean := 0.1 + float64(i%70)
		if va, vb := a.Poisson(mean), b.Poisson(mean); va != vb {
			t.Fatalf("draw %d diverged: %d vs %d", i, va, vb)
		}
	}
}

func TestRNGTruncNormalBounds(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 1000; i++ {
		v := r.TruncNormal(0, 10, -1, 1)
		if v < -1 || v > 1 {
			t.Fatalf("TruncNormal out of bounds: %v", v)
		}
	}
}

func TestRNGParetoBounds(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 1000; i++ {
		v := r.Pareto(1.5, 0.001, 0.5)
		if v < 0.001-1e-12 || v > 0.5+1e-12 {
			t.Fatalf("Pareto out of bounds: %v", v)
		}
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(8)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %v", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) produced only %d distinct values", len(seen))
	}
}

// Property: all queued events with distinct times fire in sorted order.
func TestQuickEventOrder(t *testing.T) {
	f := func(raw []uint16) bool {
		s := New(1)
		var fired []float64
		for _, v := range raw {
			at := float64(v)
			s.At(at, func() { fired = append(fired, at) })
		}
		s.Run()
		return sort.Float64sAreSorted(fired)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// BenchmarkEventQueue measures the pending-event set under the three
// steady-state workloads: a pure schedule→fire chain, a ticker re-push
// loop, and a schedule/cancel mix that exercises the tombstone path.
// All three must report 0 allocs/op (the pool regression tests in
// events_test.go pin the same property).
func BenchmarkEventQueue(b *testing.B) {
	b.Run("fire", func(b *testing.B) {
		s := New(1)
		r := s.RNG("bench")
		var fn func()
		n := 0
		fn = func() {
			n++
			if n < b.N {
				s.After(r.Float64(), fn)
			}
		}
		b.ReportAllocs()
		if b.N > 0 {
			s.After(0, fn)
		}
		s.Run()
	})
	b.Run("fire-fanout", func(b *testing.B) {
		// 64 events pending at all times: deeper heap, same chain.
		s := New(1)
		r := s.RNG("bench")
		var fn func()
		n := 0
		fn = func() {
			n++
			if n < b.N {
				s.After(1+r.Float64(), fn)
			}
		}
		for i := 0; i < 64 && i < b.N; i++ {
			s.After(r.Float64(), fn)
		}
		b.ReportAllocs()
		s.Run()
	})
	b.Run("ticker", func(b *testing.B) {
		s := New(1)
		n := 0
		s.Every(1, 1, func() { n++ })
		b.ReportAllocs()
		s.RunUntil(float64(b.N))
	})
	b.Run("schedule-cancel", func(b *testing.B) {
		s := New(1)
		r := s.RNG("bench")
		cb := func() {}
		var fn func()
		n := 0
		fn = func() {
			n++
			if n < b.N {
				// One survivor chains the benchmark; one victim is
				// tombstoned immediately.
				victim := s.After(2+r.Float64(), cb)
				s.After(r.Float64(), fn)
				victim.Cancel()
			}
		}
		b.ReportAllocs()
		if b.N > 0 {
			s.After(0, fn)
		}
		s.Run()
	})
}
