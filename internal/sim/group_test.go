package sim

import (
	"fmt"
	"reflect"
	"testing"
)

func TestDeriveSeedMatchesDerive(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, 0xDEADBEEF} {
		for _, label := range []string{"", "shard/0", "shard/17", "medium"} {
			a := NewRNG(DeriveSeed(seed, label))
			b := NewRNG(seed).Derive(label)
			for i := 0; i < 8; i++ {
				if x, y := a.Uint64(), b.Uint64(); x != y {
					t.Fatalf("seed %d label %q draw %d: DeriveSeed stream %x != Derive stream %x",
						seed, label, i, x, y)
				}
			}
		}
	}
}

// groupEvent is one observation in the per-shard logs used by the
// determinism tests: what ran, where, when, and with which RNG draw.
type groupEvent struct {
	Shard int
	T     float64
	Tag   string
	Draw  uint64
}

// runGroupScenario builds a 4-shard workload where every shard ticks
// locally, consumes its own RNG stream, and posts work to its
// neighbors exactly one lookahead ahead (including same-target-time
// collisions from multiple sources), then runs it to the horizon.
func runGroupScenario(workers int) []groupEvent {
	const (
		shards    = 4
		lookahead = 1e-3
		horizon   = 0.2
	)
	sims := make([]*Simulator, shards)
	logs := make([][]groupEvent, shards)
	for i := range sims {
		sims[i] = New(DeriveSeed(7, fmt.Sprintf("shard/%d", i)))
	}
	g := NewGroup(lookahead, workers, sims)
	for i := range sims {
		i := i
		s := sims[i]
		rng := s.RNG("ticker")
		period := 0.0007 + 0.0001*float64(i)
		s.Every(period, period, func() {
			draw := rng.Uint64()
			logs[i] = append(logs[i], groupEvent{i, s.Now(), "tick", draw})
			// Cross-shard post one lookahead out; every shard targets
			// shard 0 at the same absolute grid time to force (at, seq)
			// ties that only the canonical flush order can break.
			at := s.Now() + lookahead
			dst := (i + 1) % shards
			g.Post(i, dst, at, func() {
				d := sims[dst].RNG("mail").Uint64()
				logs[dst] = append(logs[dst], groupEvent{dst, sims[dst].Now(), "mail", d})
			})
			gridAt := (float64(int(s.Now()/lookahead)) + 2) * lookahead
			g.Post(i, 0, gridAt, func() {
				logs[0] = append(logs[0], groupEvent{0, sims[0].Now(), fmt.Sprintf("grid-from-%d", i), 0})
			})
		})
	}
	g.RunUntil(horizon)
	var all []groupEvent
	for i := range logs {
		all = append(all, logs[i]...)
	}
	return all
}

func TestGroupWorkerCountInvariance(t *testing.T) {
	base := runGroupScenario(1)
	if len(base) == 0 {
		t.Fatal("scenario produced no events")
	}
	for _, workers := range []int{2, 4} {
		got := runGroupScenario(workers)
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("workers=%d produced a different event history than workers=1 (%d vs %d events)",
				workers, len(got), len(base))
		}
	}
}

func TestGroupFlushTieBreakOrder(t *testing.T) {
	sims := []*Simulator{New(1), New(2), New(3)}
	g := NewGroup(1e-3, 1, sims)
	var order []int
	// Post out of source order, all to shard 0 at the same time; the
	// canonical flush order is (at, src, posting order).
	for _, src := range []int{2, 0, 1} {
		src := src
		g.Post(src, 0, 5e-3, func() { order = append(order, src) })
	}
	g.Post(1, 0, 4e-3, func() { order = append(order, 99) }) // earlier time wins regardless of src
	g.RunUntil(10e-3)
	want := []int{99, 0, 1, 2}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("flush order = %v, want %v", order, want)
	}
}

func TestGroupPostLookaheadViolationPanics(t *testing.T) {
	sims := []*Simulator{New(1), New(2)}
	g := NewGroup(1e-3, 1, sims)
	sims[0].At(0.5e-3, func() {
		// Window end is 1e-3; targeting before it violates lookahead.
		defer func() {
			if recover() == nil {
				t.Error("expected panic from lookahead violation")
			}
		}()
		g.Post(0, 1, 0.9e-3, func() {})
	})
	g.RunUntil(2e-3)
}

func TestGroupWorkerPanicPropagates(t *testing.T) {
	sims := []*Simulator{New(1), New(2), New(3), New(4)}
	g := NewGroup(1e-3, 4, sims)
	sims[2].At(0.4e-3, func() { panic("shard model exploded") })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected the shard panic to propagate to RunUntil's caller")
		}
		if s, ok := r.(string); !ok || s != "shard model exploded" {
			t.Fatalf("unexpected panic value %v", r)
		}
	}()
	g.RunUntil(2e-3)
}

func TestGroupRunUntilReachesHorizon(t *testing.T) {
	sims := []*Simulator{New(1), New(2)}
	g := NewGroup(1e-3, 2, sims)
	if got := g.RunUntil(0.0137); got != 0.0137 {
		t.Fatalf("group clock = %v, want horizon", got)
	}
	for i, s := range sims {
		if s.Now() != 0.0137 {
			t.Fatalf("shard %d clock = %v, want horizon", i, s.Now())
		}
	}
}
