package cpu

import (
	"math"
	"testing"

	"ntisim/internal/sim"
)

func TestISRDelayDistribution(t *testing.T) {
	s := sim.New(1)
	c := New(s, DefaultMVME162(), "t")
	var lo, hi, sum float64 = math.Inf(1), 0, 0
	n := 20000
	for i := 0; i < n; i++ {
		d := c.ISRDelay()
		if d < DefaultMVME162().ISRLatencyMinS {
			t.Fatalf("ISR delay %v below floor", d)
		}
		lo = math.Min(lo, d)
		hi = math.Max(hi, d)
		sum += d
	}
	mean := sum / float64(n)
	if mean < 10e-6 || mean > 40e-6 {
		t.Errorf("mean ISR delay %v", mean)
	}
	// Interrupt-disabled sections create a heavy tail.
	if hi < 50e-6 {
		t.Errorf("no long-tail ISR delays seen: max %v", hi)
	}
	if hi > 1e-3 {
		t.Errorf("ISR delay unbounded: %v", hi)
	}
}

func TestTaskDelayDistribution(t *testing.T) {
	s := sim.New(2)
	c := New(s, DefaultMVME162(), "t")
	for i := 0; i < 1000; i++ {
		d := c.TaskDelay()
		if d < DefaultMVME162().TaskLatencyMinS {
			t.Fatalf("task delay %v below floor", d)
		}
		if d > 2e-3 {
			t.Fatalf("task delay %v beyond clamp", d)
		}
	}
}

func TestFastConfigIsFast(t *testing.T) {
	s := sim.New(3)
	c := New(s, Fast(), "t")
	for i := 0; i < 100; i++ {
		if c.ISRDelay() > 10e-6 || c.TaskDelay() > 20e-6 {
			t.Fatal("Fast() config is not fast")
		}
	}
}

func TestRunISRAndTask(t *testing.T) {
	s := sim.New(4)
	c := New(s, DefaultMVME162(), "t")
	var order []string
	c.RunISR(func() { order = append(order, "isr") })
	c.RunTask(func() { order = append(order, "task") })
	s.Run()
	if len(order) != 2 {
		t.Fatalf("ran %d callbacks", len(order))
	}
	// ISR latency < task latency for the defaults, so ISR fires first.
	if order[0] != "isr" {
		t.Errorf("order = %v", order)
	}
	isrs, tasks := c.Stats()
	if isrs != 1 || tasks != 1 {
		t.Errorf("stats = %d/%d", isrs, tasks)
	}
}

func TestDeterministicPerLabel(t *testing.T) {
	mk := func(label string) float64 {
		s := sim.New(7)
		return New(s, DefaultMVME162(), label).ISRDelay()
	}
	if mk("a") != mk("a") {
		t.Error("same label differs across runs")
	}
	if mk("a") == mk("b") {
		t.Error("different labels share a stream")
	}
}
