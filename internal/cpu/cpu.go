// Package cpu models the node processor's software timing behaviour.
//
// Purely software-based clock synchronization timestamps CSPs in steps 1
// and 7 of the paper's transmission/reception sequence (§3.1), so the
// achievable uncertainty ε is dominated by interrupt latency (impaired by
// code sections with interrupts disabled) and task scheduling jitter.
// This package provides those latency distributions for an MVME-162-class
// CPU (M68040 + pSOS⁺ᵐ) so the software-only baselines of experiment E2
// suffer realistic impairments.
package cpu

import "ntisim/internal/sim"

// Config describes the latency distributions.
type Config struct {
	// ISR dispatch latency: normal(mean, jitter) clamped at Min.
	ISRLatencyMeanS   float64
	ISRLatencyJitterS float64
	ISRLatencyMinS    float64
	// With IntDisableProb an ISR additionally waits for the end of an
	// interrupt-disabled section, uniform in (0, IntDisableMaxS].
	IntDisableProb float64
	IntDisableMaxS float64
	// Task-level dispatch latency (scheduler + queueing): normal(mean,
	// jitter) clamped at Min, on top of the ISR that woke the task.
	TaskLatencyMeanS   float64
	TaskLatencyJitterS float64
	TaskLatencyMinS    float64
}

// DefaultMVME162 returns timings representative of a 25 MHz M68040
// running a multitasking real-time kernel.
func DefaultMVME162() Config {
	return Config{
		ISRLatencyMeanS:    12e-6,
		ISRLatencyJitterS:  4e-6,
		ISRLatencyMinS:     3e-6,
		IntDisableProb:     0.08,
		IntDisableMaxS:     150e-6,
		TaskLatencyMeanS:   300e-6,
		TaskLatencyJitterS: 150e-6,
		TaskLatencyMinS:    50e-6,
	}
}

// Fast returns a near-ideal CPU, for tests that want to isolate other
// effects.
func Fast() Config {
	return Config{
		ISRLatencyMeanS:  1e-6,
		ISRLatencyMinS:   1e-6,
		TaskLatencyMeanS: 2e-6,
		TaskLatencyMinS:  2e-6,
	}
}

// CPU is one node's processor.
type CPU struct {
	s   *sim.Simulator
	cfg Config
	rng *sim.RNG

	isrCount  uint64
	taskCount uint64
}

// New creates a CPU bound to the simulator; label individualizes its RNG.
func New(s *sim.Simulator, cfg Config, label string) *CPU {
	return &CPU{s: s, cfg: cfg, rng: s.RNG("cpu/" + label)}
}

// ISRDelay samples one interrupt-dispatch latency.
func (c *CPU) ISRDelay() float64 {
	d := c.rng.TruncNormal(c.cfg.ISRLatencyMeanS, c.cfg.ISRLatencyJitterS,
		c.cfg.ISRLatencyMinS, c.cfg.ISRLatencyMeanS+6*c.cfg.ISRLatencyJitterS+c.cfg.ISRLatencyMinS)
	if c.cfg.IntDisableProb > 0 && c.rng.Bool(c.cfg.IntDisableProb) {
		d += c.rng.Uniform(0, c.cfg.IntDisableMaxS)
	}
	return d
}

// TaskDelay samples one task-dispatch latency.
func (c *CPU) TaskDelay() float64 {
	return c.rng.TruncNormal(c.cfg.TaskLatencyMeanS, c.cfg.TaskLatencyJitterS,
		c.cfg.TaskLatencyMinS, c.cfg.TaskLatencyMeanS+6*c.cfg.TaskLatencyJitterS+c.cfg.TaskLatencyMinS)
}

// RunISR schedules fn after a sampled interrupt latency.
func (c *CPU) RunISR(fn func()) {
	c.isrCount++
	c.s.After(c.ISRDelay(), fn)
}

// RunTask schedules fn after a sampled task-dispatch latency (measured
// from now, i.e. on top of whatever context invoked it).
func (c *CPU) RunTask(fn func()) {
	c.taskCount++
	c.s.After(c.TaskDelay(), fn)
}

// Stats reports dispatched ISRs and tasks.
func (c *CPU) Stats() (isrs, tasks uint64) { return c.isrCount, c.taskCount }
