// Adaptive grid refinement: instead of sweeping a fixed axis grid,
// bisect one numeric parameter until a target metric crossover (e.g.
// mean precision crossing 1 µs) is bracketed to a requested axis
// tolerance. Every evaluation is a full multi-seed mini-campaign
// through Run, so refinement inherits the pool parallelism and the
// determinism guarantee: bisection decisions depend only on aggregated
// results, never on wall-clock or completion order.

package harness

import "math"

// NumericAxis is a continuously refinable sweep parameter: a point
// factory over a scalar value plus the default search range.
type NumericAxis struct {
	Name   string
	Lo, Hi float64
	// Integer snaps bisection midpoints to whole values (cluster
	// sizes); refinement stops when no untried integer remains between
	// the bracket ends.
	Integer bool
	// Point builds the grid point for one axis value.
	Point func(v float64) Point
}

// StandardNumericAxes maps axis names (as accepted by nticampaign
// -refine) to their refinable form, reusing the sweep-axis
// constructors of grid.go so a refined point is configured exactly
// like its swept counterpart.
func StandardNumericAxes() map[string]NumericAxis {
	return map[string]NumericAxis{
		"load": {Name: "load", Lo: 0, Hi: 0.9,
			Point: func(v float64) Point { return LoadAxis(v).Points[0] }},
		"period": {Name: "period", Lo: 0.25, Hi: 4,
			Point: func(v float64) Point { return PeriodAxis(v).Points[0] }},
		"fosc": {Name: "fosc", Lo: 1e6, Hi: 20e6,
			Point: func(v float64) Point { return FoscAxis(v).Points[0] }},
		"nodes": {Name: "nodes", Lo: 2, Hi: 32, Integer: true,
			Point: func(v float64) Point { return NodesAxis(int(v)).Points[0] }},
	}
}

// Evaluation is one refined axis value: the cells run at that value
// (all seeds) and the aggregated metric the bisection steered by.
type Evaluation struct {
	Value   float64
	Metric  float64
	Results []Result
}

// Refinement is the outcome of an adaptive-refinement run.
type Refinement struct {
	Axis   string
	Target float64
	Tol    float64
	// Evals lists every evaluated value in evaluation order (the two
	// range ends first, then midpoints).
	Evals []Evaluation
	// Lo and Hi are the final bracket, Lo.Value < Hi.Value. When
	// Bracketed, their metrics straddle Target and Hi.Value−Lo.Value
	// ≤ Tol (or no untried integer remains for an Integer axis).
	Lo, Hi    Evaluation
	Bracketed bool
}

// MeanPrecision is the default refinement metric: the mean across
// non-errored cells of the per-cell mean precision, in seconds.
func MeanPrecision(rs []Result) float64 {
	var sum float64
	n := 0
	for i := range rs {
		if rs[i].Err != "" {
			continue
		}
		sum += rs[i].Precision.Mean
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// Refine bisects ax over [ax.Lo, ax.Hi] until metric's crossover of
// target is bracketed to tol (axis units). spec.Points is ignored:
// each evaluation runs the axis point under every spec seed. A nil
// metric means MeanPrecision.
func Refine(spec Spec, ax NumericAxis, target, tol float64, metric func([]Result) float64) Refinement {
	if metric == nil {
		metric = MeanPrecision
	}
	eval := func(v float64) Evaluation {
		sp := spec
		sp.Points = []Point{ax.Point(v)}
		c := Run(sp)
		return Evaluation{Value: v, Metric: metric(c.Results), Results: c.Results}
	}
	return refineLoop(ax, target, tol, eval)
}

// refineLoop is the pure bisection engine behind Refine, split out so
// tests can drive it with a synthetic metric. It assumes the metric is
// monotone over the range (either direction); a non-monotone metric
// still terminates but may bracket an arbitrary crossover.
func refineLoop(ax NumericAxis, target, tol float64, eval func(v float64) Evaluation) Refinement {
	r := Refinement{Axis: ax.Name, Target: target, Tol: tol}
	lo, hi := eval(ax.Lo), eval(ax.Hi)
	r.Evals = append(r.Evals, lo, hi)
	above := func(e Evaluation) bool { return e.Metric >= target }
	if above(lo) == above(hi) || math.IsNaN(lo.Metric) || math.IsNaN(hi.Metric) {
		// No crossover inside the range: report the ends, unbracketed.
		r.Lo, r.Hi = lo, hi
		return r
	}
	r.Bracketed = true
	for hi.Value-lo.Value > tol {
		mv := (lo.Value + hi.Value) / 2
		if ax.Integer {
			mv = math.Round(mv)
			if mv == lo.Value || mv == hi.Value {
				break
			}
		}
		m := eval(mv)
		r.Evals = append(r.Evals, m)
		if above(m) == above(lo) {
			lo = m
		} else {
			hi = m
		}
	}
	r.Lo, r.Hi = lo, hi
	return r
}
