// Adaptive grid refinement: instead of sweeping a fixed axis grid,
// bisect one numeric parameter until a target metric crossover (e.g.
// mean precision crossing 1 µs) is bracketed to a requested axis
// tolerance. Every evaluation is a full multi-seed mini-campaign
// through Run, so refinement inherits the pool parallelism and the
// determinism guarantee: bisection decisions depend only on aggregated
// results, never on wall-clock or completion order.

package harness

import (
	"fmt"
	"math"
	"sort"

	"ntisim/internal/sim"
)

// NumericAxis is a continuously refinable sweep parameter: a point
// factory over a scalar value plus the default search range.
type NumericAxis struct {
	Name   string
	Lo, Hi float64
	// Integer snaps bisection midpoints to whole values (cluster
	// sizes); refinement stops when no untried integer remains between
	// the bracket ends.
	Integer bool
	// Point builds the grid point for one axis value.
	Point func(v float64) Point
}

// StandardNumericAxes maps axis names (as accepted by nticampaign
// -refine) to their refinable form, reusing the sweep-axis
// constructors of grid.go so a refined point is configured exactly
// like its swept counterpart.
func StandardNumericAxes() map[string]NumericAxis {
	return map[string]NumericAxis{
		"load": {Name: "load", Lo: 0, Hi: 0.9,
			Point: func(v float64) Point { return LoadAxis(v).Points[0] }},
		"period": {Name: "period", Lo: 0.25, Hi: 4,
			Point: func(v float64) Point { return PeriodAxis(v).Points[0] }},
		"fosc": {Name: "fosc", Lo: 1e6, Hi: 20e6,
			Point: func(v float64) Point { return FoscAxis(v).Points[0] }},
		"nodes": {Name: "nodes", Lo: 2, Hi: 32, Integer: true,
			Point: func(v float64) Point { return NodesAxis(int(v)).Points[0] }},
	}
}

// Evaluation is one refined axis value: the cells run at that value
// (all seeds) and the aggregated metric the bisection steered by.
type Evaluation struct {
	Value  float64
	Metric float64
	// CILo/CIHi is the bootstrap 95% confidence interval of Metric
	// across seeds. RefineCI steers by it; Refine collapses it to
	// [Metric, Metric].
	CILo, CIHi float64
	Results    []Result
}

// Clears reports whether the evaluation's CI lies entirely on one side
// of target (above = CILo ≥ target, below = CIHi < target). ok is
// false when the CI straddles target — the seed sample cannot resolve
// which side this value is on.
func (e Evaluation) Clears(target float64) (above, ok bool) {
	if e.CILo >= target {
		return true, true
	}
	if e.CIHi < target {
		return false, true
	}
	return false, false
}

// Refinement is the outcome of an adaptive-refinement run.
type Refinement struct {
	Axis   string
	Target float64
	Tol    float64
	// Evals lists every evaluated value in evaluation order (the two
	// range ends first, then midpoints).
	Evals []Evaluation
	// Lo and Hi are the final bracket, Lo.Value < Hi.Value. When
	// Bracketed, their metrics straddle Target and Hi.Value−Lo.Value
	// ≤ Tol (or no untried integer remains for an Integer axis).
	Lo, Hi    Evaluation
	Bracketed bool
	// NoiseLimited is set by RefineCI when bisection stopped because an
	// evaluation's bootstrap CI straddled the target: the crossover is
	// bracketed (if Bracketed) but cannot be narrowed further at this
	// seed count — the fix is more seeds, not more midpoints.
	NoiseLimited bool
}

// MeanPrecision is the default refinement metric: the mean across
// non-errored cells of the per-cell mean precision, in seconds.
func MeanPrecision(rs []Result) float64 {
	var sum float64
	n := 0
	for i := range rs {
		if rs[i].Err != "" {
			continue
		}
		sum += rs[i].Precision.Mean
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// Refine bisects ax over [ax.Lo, ax.Hi] until metric's crossover of
// target is bracketed to tol (axis units). spec.Points is ignored:
// each evaluation runs the axis point under every spec seed. A nil
// metric means MeanPrecision.
func Refine(spec Spec, ax NumericAxis, target, tol float64, metric func([]Result) float64) Refinement {
	if metric == nil {
		metric = MeanPrecision
	}
	eval := func(v float64) Evaluation {
		sp := spec
		sp.Points = []Point{ax.Point(v)}
		c := Run(sp)
		m := metric(c.Results)
		return Evaluation{Value: v, Metric: m, CILo: m, CIHi: m, Results: c.Results}
	}
	return refineLoop(ax, target, tol, eval)
}

// DefaultResamples is RefineCI's bootstrap resample count when the
// caller passes 0.
const DefaultResamples = 1000

// RefineCI is the variance-aware Refine: bisection decisions use the
// bootstrap 95% confidence interval of the metric across seeds rather
// than its point estimate. An evaluation only moves a bracket end when
// its whole CI clears the target; when a CI straddles the target the
// run stops with NoiseLimited set, because at that point another
// midpoint would be steering on noise — the honest next step is more
// seeds, not a narrower bracket. With a single seed the CI collapses
// to the mean and RefineCI degenerates to Refine.
//
// The bootstrap RNG is derived from Base.Seed, the axis name and the
// axis value, never from wall clock, so refinement reports stay
// byte-deterministic.
func RefineCI(spec Spec, ax NumericAxis, target, tol float64, metric func([]Result) float64, resamples int) Refinement {
	if metric == nil {
		metric = MeanPrecision
	}
	if resamples <= 0 {
		resamples = DefaultResamples
	}
	eval := func(v float64) Evaluation {
		sp := spec
		sp.Points = []Point{ax.Point(v)}
		c := Run(sp)
		e := Evaluation{Value: v, Metric: metric(c.Results), Results: c.Results}
		rng := sim.NewRNG(sim.DeriveSeed(sp.Base.Seed,
			fmt.Sprintf("refine-ci/%s/%x", ax.Name, math.Float64bits(v))))
		e.CILo, e.CIHi = metricCI(c.Results, metric, resamples, rng)
		return e
	}
	return refineLoopCI(ax, target, tol, eval)
}

// refineLoopCI is the CI-aware bisection engine behind RefineCI, split
// out (like refineLoop) so tests can drive it with synthetic
// evaluations carrying hand-built confidence intervals.
func refineLoopCI(ax NumericAxis, target, tol float64, eval func(v float64) Evaluation) Refinement {
	r := Refinement{Axis: ax.Name, Target: target, Tol: tol}
	lo, hi := eval(ax.Lo), eval(ax.Hi)
	r.Evals = append(r.Evals, lo, hi)
	r.Lo, r.Hi = lo, hi
	loAbove, loOK := lo.Clears(target)
	hiAbove, hiOK := hi.Clears(target)
	if !loOK || !hiOK {
		// A range end already straddles the target: no crossover
		// direction can be established at this seed count.
		r.NoiseLimited = true
		return r
	}
	if loAbove == hiAbove || math.IsNaN(lo.Metric) || math.IsNaN(hi.Metric) {
		return r // no crossover inside the range
	}
	r.Bracketed = true
	for hi.Value-lo.Value > tol {
		mv := (lo.Value + hi.Value) / 2
		if ax.Integer {
			mv = math.Round(mv)
			if mv == lo.Value || mv == hi.Value {
				break
			}
		}
		m := eval(mv)
		r.Evals = append(r.Evals, m)
		mAbove, mOK := m.Clears(target)
		if !mOK {
			r.NoiseLimited = true
			break
		}
		if mAbove == loAbove {
			lo = m
		} else {
			hi = m
		}
	}
	r.Lo, r.Hi = lo, hi
	return r
}

// metricCI bootstraps the 95% CI of the metric over per-seed
// observations: each seed's cells form one observation (metric applied
// to that seed's result slice), resampled with replacement. Mirrors
// internal/stats' percentile bootstrap, reimplemented here because
// stats imports harness and Go forbids the cycle.
func metricCI(rs []Result, metric func([]Result) float64, resamples int, rng *sim.RNG) (lo, hi float64) {
	// Group results by seed, preserving first-seen (seed-major grid)
	// order so the observation vector is deterministic.
	var seeds []uint64
	bySeed := map[uint64][]Result{}
	for _, r := range rs {
		if _, seen := bySeed[r.Seed]; !seen {
			seeds = append(seeds, r.Seed)
		}
		bySeed[r.Seed] = append(bySeed[r.Seed], r)
	}
	obs := make([]float64, 0, len(seeds))
	for _, s := range seeds {
		if v := metric(bySeed[s]); !math.IsNaN(v) {
			obs = append(obs, v)
		}
	}
	if len(obs) == 0 {
		return math.NaN(), math.NaN()
	}
	if len(obs) == 1 {
		return obs[0], obs[0]
	}
	n := len(obs)
	means := make([]float64, resamples)
	for b := range means {
		var sum float64
		for i := 0; i < n; i++ {
			sum += obs[rng.Intn(n)]
		}
		means[b] = sum / float64(n)
	}
	sort.Float64s(means)
	rank := func(p float64) int {
		i := int(p*float64(resamples-1) + 0.5)
		if i < 0 {
			i = 0
		}
		if i >= resamples {
			i = resamples - 1
		}
		return i
	}
	return means[rank(0.025)], means[rank(0.975)]
}

// refineLoop is the pure bisection engine behind Refine, split out so
// tests can drive it with a synthetic metric. It assumes the metric is
// monotone over the range (either direction); a non-monotone metric
// still terminates but may bracket an arbitrary crossover.
func refineLoop(ax NumericAxis, target, tol float64, eval func(v float64) Evaluation) Refinement {
	r := Refinement{Axis: ax.Name, Target: target, Tol: tol}
	lo, hi := eval(ax.Lo), eval(ax.Hi)
	r.Evals = append(r.Evals, lo, hi)
	above := func(e Evaluation) bool { return e.Metric >= target }
	if above(lo) == above(hi) || math.IsNaN(lo.Metric) || math.IsNaN(hi.Metric) {
		// No crossover inside the range: report the ends, unbracketed.
		r.Lo, r.Hi = lo, hi
		return r
	}
	r.Bracketed = true
	for hi.Value-lo.Value > tol {
		mv := (lo.Value + hi.Value) / 2
		if ax.Integer {
			mv = math.Round(mv)
			if mv == lo.Value || mv == hi.Value {
				break
			}
		}
		m := eval(mv)
		r.Evals = append(r.Evals, m)
		if above(m) == above(lo) {
			lo = m
		} else {
			hi = m
		}
	}
	r.Lo, r.Hi = lo, hi
	return r
}
