// Multi-seed grouping: the bridge between the flat cell-ordered result
// slice and per-point statistics. internal/stats aggregates over these
// groups; internal/report plots them.

package harness

// Group collects one grid point's results across all seeds it ran
// under. Results point into the slice passed to GroupByPoint.
type Group struct {
	Label  string
	Params map[string]string
	// Results holds the point's cells in ascending seed-grid order
	// (the order Spec.Cells enumerates seeds).
	Results []*Result
}

// GroupByPoint groups a campaign's results by point label. Groups are
// ordered by first appearance in the input, which for harness.Run
// output (seed-major grid order) is exactly Spec.Points order; within a
// group, results keep their grid order, i.e. ascending seed position.
// Both orders are stable guarantees — golden-gated reports depend on
// them.
func GroupByPoint(results []Result) []Group {
	idx := make(map[string]int, len(results))
	var groups []Group
	for i := range results {
		r := &results[i]
		j, ok := idx[r.Label]
		if !ok {
			j = len(groups)
			idx[r.Label] = j
			groups = append(groups, Group{Label: r.Label, Params: r.Params})
		}
		groups[j].Results = append(groups[j].Results, r)
	}
	return groups
}

// Seeds returns the seeds of the group's non-errored results, in group
// order.
func (g *Group) Seeds() []uint64 {
	var out []uint64
	for _, r := range g.Results {
		if r.Err == "" {
			out = append(out, r.Seed)
		}
	}
	return out
}
