package harness

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"ntisim/internal/cluster"
	"ntisim/internal/discipline"
	"ntisim/internal/gps"
)

// testSpec is a small but real campaign: 4 points × 2 seeds = 8 cells.
func testSpec(workers int) Spec {
	return Spec{
		Name:         "test",
		Base:         cluster.Defaults(2, 1),
		Points:       NodesAxis(2, 3, 4, 5).Points,
		Seeds:        []uint64{7, 8},
		WarmupS:      2,
		WindowS:      8,
		SampleEveryS: 1,
		DelayProbes:  4,
		Workers:      workers,
	}
}

func jsonl(t *testing.T, c *Campaign) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := c.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	return buf.Bytes()
}

// TestParallelDeterminism is the harness' core guarantee: the same
// campaign run with 1 worker and with many workers produces
// byte-identical JSONL artifacts, because cells are independent
// simulations keyed by cell ID (stable grid order), not by completion
// order.
func TestParallelDeterminism(t *testing.T) {
	serial := Run(testSpec(1))
	parallel := Run(testSpec(4))
	if got, want := len(parallel.Results), 8; got != want {
		t.Fatalf("cells = %d, want %d", got, want)
	}
	for _, r := range serial.Results {
		if r.Err != "" {
			t.Fatalf("cell %s errored: %s", r.Key(), r.Err)
		}
	}
	a, b := jsonl(t, serial), jsonl(t, parallel)
	if !bytes.Equal(a, b) {
		t.Fatalf("JSONL differs between 1 and 4 workers:\n--- serial ---\n%s\n--- parallel ---\n%s", a, b)
	}
}

func TestCellsStableOrder(t *testing.T) {
	sp := testSpec(1)
	cells := sp.Cells()
	if len(cells) != 8 {
		t.Fatalf("len(cells) = %d, want 8", len(cells))
	}
	for i, c := range cells {
		if c.Index != i {
			t.Errorf("cell %d has Index %d", i, c.Index)
		}
	}
	// Seed-major: first 4 cells carry seed 7.
	if cells[0].Seed != 7 || cells[3].Seed != 7 || cells[4].Seed != 8 {
		t.Errorf("unexpected seed order: %v %v %v", cells[0].Seed, cells[3].Seed, cells[4].Seed)
	}
	if cells[0].Key() != "n=2/seed=7" {
		t.Errorf("Key() = %q", cells[0].Key())
	}
}

func TestResultSanity(t *testing.T) {
	c := Run(testSpec(4))
	for _, r := range c.Results {
		if r.Samples == 0 {
			t.Fatalf("%s: no samples", r.Key())
		}
		if r.Precision.N != r.Samples {
			t.Errorf("%s: precision N %d != samples %d", r.Key(), r.Precision.N, r.Samples)
		}
		// Synchronized small clusters should be in the µs range.
		if r.Precision.Mean <= 0 || r.Precision.Mean > 1e-3 {
			t.Errorf("%s: implausible mean precision %g s", r.Key(), r.Precision.Mean)
		}
		if r.Events == 0 || r.SimS <= 0 {
			t.Errorf("%s: missing throughput data (events=%d sim=%g)", r.Key(), r.Events, r.SimS)
		}
		if r.Sync.CSPsSent == 0 || r.CSPUse <= 0 {
			t.Errorf("%s: no CSP traffic recorded", r.Key())
		}
	}
}

// TestCellPanicIsCaptured: a failing cell must not take down the
// campaign — it lands as Result.Err and the gate reports it.
func TestCellPanicIsCaptured(t *testing.T) {
	sp := testSpec(2)
	sp.Seeds = []uint64{7}
	sp.Points = append(NodesAxis(2).Points, Point{
		Label:  "bad",
		Mutate: func(c *cluster.Config) { c.Nodes = 0 }, // cluster.New panics
	})
	c := Run(sp)
	if c.Results[1].Err == "" {
		t.Fatal("expected cell 1 to capture the construction panic")
	}
	if c.Results[0].Err != "" {
		t.Fatalf("healthy cell errored: %s", c.Results[0].Err)
	}
	if len(c.Failed()) != 1 {
		t.Fatalf("Failed() = %d, want 1", len(c.Failed()))
	}
	devs := c.Check(c.Golden(0))
	if len(devs) != 1 || !strings.Contains(devs[0], "errored") {
		t.Fatalf("Check should flag the errored cell, got %v", devs)
	}
}

func TestGoldenRoundTripAndCheck(t *testing.T) {
	sp := testSpec(4)
	sp.Points = NodesAxis(2, 3).Points
	sp.Seeds = []uint64{7}
	c := Run(sp)

	g := c.Golden(0)
	if len(g.Cells) != 2 {
		t.Fatalf("golden cells = %d, want 2", len(g.Cells))
	}
	path := filepath.Join(t.TempDir(), "golden.json")
	if err := g.Write(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadGolden(path)
	if err != nil {
		t.Fatal(err)
	}
	if devs := c.Check(loaded); len(devs) != 0 {
		t.Fatalf("self-check deviations: %v", devs)
	}

	// Perturb one statistic: the gate must catch it.
	cell := c.Results[0].Key()
	gc := loaded.Cells[cell]
	gc.PrecisionMean *= 1.5
	loaded.Cells[cell] = gc
	devs := c.Check(loaded)
	if len(devs) != 1 || !strings.Contains(devs[0], "precision_mean") {
		t.Fatalf("expected one precision_mean deviation, got %v", devs)
	}

	// Grid drift in either direction is a deviation.
	loaded.Cells[cell] = c.Golden(0).Cells[cell]
	loaded.Cells["n=99/seed=7"] = GoldenCell{}
	if devs := c.Check(loaded); len(devs) != 1 || !strings.Contains(devs[0], "not in campaign") {
		t.Fatalf("expected missing-cell deviation, got %v", devs)
	}
	delete(loaded.Cells, "n=99/seed=7")
	delete(loaded.Cells, cell)
	if devs := c.Check(loaded); len(devs) != 1 || !strings.Contains(devs[0], "not in golden") {
		t.Fatalf("expected not-in-golden deviation, got %v", devs)
	}
}

func TestWriteArtifacts(t *testing.T) {
	sp := testSpec(2)
	sp.Points = NodesAxis(2).Points
	sp.Seeds = []uint64{7}
	c := Run(sp)
	dir := t.TempDir()
	paths, err := c.WriteArtifacts(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("artifacts = %v, want jsonl+csv+manifest", paths)
	}
	var csvBuf bytes.Buffer
	if err := c.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 2 { // header + one cell
		t.Fatalf("csv lines = %d:\n%s", len(lines), csvBuf.String())
	}
	if !strings.HasPrefix(lines[0], "cell,label,seed,precision_mean_s") {
		t.Errorf("unexpected csv header %q", lines[0])
	}
	m := c.Manifest()
	if m.Cells != 1 || m.Workers != 2 || m.GoVersion == "" {
		t.Errorf("manifest incomplete: %+v", m)
	}
}

func TestCrossAndAxes(t *testing.T) {
	pts := Cross(NodesAxis(2, 4), LoadAxis(0, 0.3))
	if len(pts) != 4 {
		t.Fatalf("cross size = %d, want 4", len(pts))
	}
	if pts[1].Label != "n=2,load=30%" {
		t.Errorf("label = %q", pts[1].Label)
	}
	if pts[1].Params["nodes"] != "2" || pts[1].Params["load"] != "0.3" {
		t.Errorf("params = %v", pts[1].Params)
	}
	cfg := cluster.Defaults(8, 1)
	pts[1].Mutate(&cfg)
	if cfg.Nodes != 2 || cfg.BackgroundLoad != 0.3 {
		t.Errorf("mutate: nodes=%d load=%g", cfg.Nodes, cfg.BackgroundLoad)
	}
	if Cross() != nil {
		t.Error("empty cross should be nil")
	}
}

// TestFaultAxisIsolation: FaultAxis mutators install fresh GPS maps per
// call, so two cells built from the same base never share receiver
// state.
func TestFaultAxisIsolation(t *testing.T) {
	ax := FaultAxis(2,
		FaultScenario{Kind: gps.FaultOffset, Magnitude: 20e-3, StartS: 5},
		FaultScenario{Kind: gps.FaultNone},
	)
	base := cluster.Defaults(4, 1)
	a := base.Clone()
	ax.Points[0].Mutate(&a)
	b := base.Clone()
	ax.Points[1].Mutate(&b)
	if len(a.GPS[1].Faults) != 1 {
		t.Fatalf("faulty cell lost its fault: %+v", a.GPS)
	}
	if len(b.GPS[1].Faults) != 0 {
		t.Fatalf("fault leaked across cells: %+v", b.GPS)
	}
	if base.GPS != nil {
		t.Fatal("base config was mutated")
	}
}

// TestTraceDeterminism pins the tracing acceptance bound: with Trace
// enabled, the same seed produces byte-identical per-cell trace
// exports whether the campaign runs on 1 worker or many. Tracing is
// purely passive — it consumes no randomness and schedules nothing —
// so worker count must not leak into the records.
func TestTraceDeterminism(t *testing.T) {
	mk := func(workers int) Spec {
		sp := testSpec(workers)
		sp.Points = NodesAxis(2, 3).Points
		sp.Seeds = []uint64{7}
		sp.Trace = true
		return sp
	}
	serial := Run(mk(1))
	parallel := Run(mk(4))
	for i, r := range serial.Results {
		if r.Trace == nil || parallel.Results[i].Trace == nil {
			t.Fatalf("cell %s: trace not captured", r.Key())
		}
		if r.Trace.Len() == 0 {
			t.Fatalf("cell %s: empty trace", r.Key())
		}
		var a, b bytes.Buffer
		if err := r.Trace.WriteJSONL(&a); err != nil {
			t.Fatal(err)
		}
		if err := parallel.Results[i].Trace.WriteJSONL(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("cell %s: trace bytes differ between 1 and 4 workers", r.Key())
		}
	}
}

// TestDisciplineAxisDeterminism extends the core determinism guarantee
// to the discipline axis: every registered discipline (including the
// windowed, arrival-order-sensitive ones) run under 1 worker and many
// workers yields byte-identical artifacts, and each cell reports the
// discipline it ran in its params.
func TestDisciplineAxisDeterminism(t *testing.T) {
	mk := func(workers int) Spec {
		sp := testSpec(workers)
		sp.Points = Cross(DisciplineAxis(), NodesAxis(4))
		sp.Seeds = []uint64{7}
		return sp
	}
	serial := Run(mk(1))
	parallel := Run(mk(4))
	if len(serial.Results) != len(discipline.Names()) {
		t.Fatalf("cells = %d, want one per discipline (%d)", len(serial.Results), len(discipline.Names()))
	}
	for _, r := range serial.Results {
		if r.Err != "" {
			t.Fatalf("cell %s errored: %s", r.Key(), r.Err)
		}
		if r.Params["discipline"] == "" {
			t.Fatalf("cell %s lost its discipline param: %v", r.Key(), r.Params)
		}
	}
	a, b := jsonl(t, serial), jsonl(t, parallel)
	if !bytes.Equal(a, b) {
		t.Fatalf("JSONL differs between 1 and 4 workers with the discipline axis")
	}
}

// shardedSpec is a WANs-of-LANs campaign whose cells run the
// segment-sharded parallel kernel: the base topology is 4 nodes over 2
// segments (plus F+1 = 2 gateways) and `shards` sets the worker
// goroutine count of each cell's sim.Group. The segments axis also
// covers seg=1, so every run exercises the classic single-kernel path
// next to the sharded one.
func shardedSpec(shards int) Spec {
	base := cluster.Defaults(4, 1)
	base.Sync.F = 1
	base.Segments = 2
	base.Shards = shards
	return Spec{
		Name:         "sharded-test",
		Base:         base,
		Points:       Cross(DisciplineAxis(), SegmentsAxis(1, 2)),
		Seeds:        []uint64{7},
		WarmupS:      4,
		WindowS:      8,
		SampleEveryS: 1,
		DelayProbes:  4,
		Trace:        true,
		Workers:      2,
	}
}

// TestShardedByteIdentityOverDisciplineGrid is the tentpole acceptance
// gate at campaign level: over the full discipline grid, a sharded
// campaign produces byte-identical JSONL and per-cell merged-trace
// artifacts whether each cluster's segment shards run on 1 worker
// goroutine (the single-kernel baseline) or N. Worker count is a pure
// execution knob — it must never leak into results.
func TestShardedByteIdentityOverDisciplineGrid(t *testing.T) {
	serial := Run(shardedSpec(1))
	parallel := Run(shardedSpec(2))
	want := len(discipline.Names()) * 2 // × segments {1, 2}
	if len(serial.Results) != want {
		t.Fatalf("cells = %d, want %d", len(serial.Results), want)
	}
	for _, r := range serial.Results {
		if r.Err != "" {
			t.Fatalf("cell %s errored: %s", r.Key(), r.Err)
		}
	}
	a, b := jsonl(t, serial), jsonl(t, parallel)
	if !bytes.Equal(a, b) {
		t.Fatalf("JSONL differs between 1-worker and 2-worker shard execution")
	}
	for i, r := range serial.Results {
		var x, y bytes.Buffer
		if err := r.Trace.WriteJSONL(&x); err != nil {
			t.Fatal(err)
		}
		if err := parallel.Results[i].Trace.WriteJSONL(&y); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(x.Bytes(), y.Bytes()) {
			t.Fatalf("cell %s: merged trace bytes differ between 1 and 2 shard workers", r.Key())
		}
	}
}

// TestShardedCampaignRace layers every concurrency mechanism at once —
// the harness worker pool outside, each cell's sim.Group shard workers
// inside, up to a 3-segment gateway chain — and just demands clean
// completion. Its real assertions come from the race detector: make ci
// runs this package under -race.
func TestShardedCampaignRace(t *testing.T) {
	sp := shardedSpec(3)
	sp.Trace = false
	sp.Points = Cross(SegmentsAxis(2, 3), NodesAxis(6))
	c := Run(sp)
	if got := len(c.Results); got != 2 {
		t.Fatalf("cells = %d, want 2", got)
	}
	for _, r := range c.Results {
		if r.Err != "" {
			t.Fatalf("cell %s errored: %s", r.Key(), r.Err)
		}
		if r.Samples == 0 || r.Sync.CSPsSent == 0 {
			t.Fatalf("cell %s ran empty (samples=%d, csps=%d)", r.Key(), r.Samples, r.Sync.CSPsSent)
		}
	}
}

// TestDisciplineAxisPanicsOnUnknown: the axis is the last line of
// defense after CLI validation; it must refuse silently falling back.
func TestDisciplineAxisPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("DisciplineAxis with unknown name should panic")
		}
	}()
	DisciplineAxis("no-such-filter")
}
