package harness

import "testing"

// TestGroupByPointOrdering pins the two ordering guarantees reports
// rely on: groups appear in Spec.Points order (first appearance in the
// seed-major grid) and results within a group keep ascending seed-grid
// order.
func TestGroupByPointOrdering(t *testing.T) {
	sp := testSpec(1)
	cells := sp.Cells() // 4 points × seeds {7, 8}, seed-major
	results := make([]Result, len(cells))
	for i, c := range cells {
		results[i] = Result{Cell: c.Index, Label: c.Point.Label, Seed: c.Seed, Params: c.Point.Params}
	}

	groups := GroupByPoint(results)
	if len(groups) != 4 {
		t.Fatalf("groups = %d, want 4", len(groups))
	}
	wantLabels := []string{"n=2", "n=3", "n=4", "n=5"}
	for i, g := range groups {
		if g.Label != wantLabels[i] {
			t.Errorf("group %d label = %q, want %q", i, g.Label, wantLabels[i])
		}
		if len(g.Results) != 2 {
			t.Fatalf("group %q has %d results, want 2", g.Label, len(g.Results))
		}
		if g.Results[0].Seed != 7 || g.Results[1].Seed != 8 {
			t.Errorf("group %q seed order = %d,%d, want 7,8",
				g.Label, g.Results[0].Seed, g.Results[1].Seed)
		}
		if got := g.Seeds(); len(got) != 2 || got[0] != 7 || got[1] != 8 {
			t.Errorf("group %q Seeds() = %v", g.Label, got)
		}
		if g.Params["nodes"] == "" {
			t.Errorf("group %q lost params", g.Label)
		}
	}

	// Results must point into the input slice, not copies.
	groups[0].Results[0].Err = "marker"
	if results[0].Err != "marker" {
		t.Error("group results are copies, want pointers into the input")
	}
	if got := groups[0].Seeds(); len(got) != 1 || got[0] != 8 {
		t.Errorf("Seeds() should skip errored results, got %v", got)
	}
}

func TestGroupByPointEmpty(t *testing.T) {
	if g := GroupByPoint(nil); g != nil {
		t.Errorf("GroupByPoint(nil) = %v, want nil", g)
	}
}
