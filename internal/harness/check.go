// Regression gating: a Golden file pins the key statistics of every
// cell of a campaign; Check diffs a fresh run against it within a
// relative tolerance. Runs are seed-deterministic, so the tolerance
// only has to absorb cross-architecture floating-point variation
// (e.g. FMA contraction), not run-to-run noise.

package harness

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
)

// DefaultTolerance is the relative deviation allowed by Check when the
// golden file doesn't set one.
const DefaultTolerance = 1e-6

// GoldenCell pins one cell's gating statistics (seconds).
type GoldenCell struct {
	PrecisionMean         float64 `json:"precision_mean_s"`
	PrecisionMax          float64 `json:"precision_max_s"`
	AccuracyMax           float64 `json:"accuracy_max_s"`
	WidthMean             float64 `json:"width_mean_s"`
	ContainmentViolations int     `json:"containment_violations"`
	Samples               int     `json:"samples"`
}

// Golden is the committed regression reference for one campaign.
type Golden struct {
	Name string `json:"name"`
	// Tolerance is the allowed relative deviation per statistic
	// (DefaultTolerance when 0).
	Tolerance float64 `json:"tolerance"`
	// Cells maps Cell.Key() → pinned statistics.
	Cells map[string]GoldenCell `json:"cells"`
}

// Golden derives the reference from an executed campaign.
func (c *Campaign) Golden(tolerance float64) Golden {
	g := Golden{Name: c.Spec.Name, Tolerance: tolerance, Cells: map[string]GoldenCell{}}
	for i := range c.Results {
		r := &c.Results[i]
		if r.Err != "" {
			continue
		}
		g.Cells[r.Key()] = GoldenCell{
			PrecisionMean:         r.Precision.Mean,
			PrecisionMax:          r.Precision.Max,
			AccuracyMax:           r.Accuracy.Max,
			WidthMean:             r.Width.Mean,
			ContainmentViolations: r.ContainmentViolations,
			Samples:               r.Samples,
		}
	}
	return g
}

// Check diffs the campaign against the golden reference and returns one
// human-readable deviation per mismatch (empty slice: gate passes).
// Cells present in only one side are deviations too, so grid drift is
// caught, not silently ignored.
func (c *Campaign) Check(g Golden) []string {
	tol := g.Tolerance
	if tol == 0 {
		tol = DefaultTolerance
	}
	var devs []string
	seen := map[string]bool{}
	for i := range c.Results {
		r := &c.Results[i]
		key := r.Key()
		seen[key] = true
		if r.Err != "" {
			devs = append(devs, fmt.Sprintf("%s: cell errored: %s", key, r.Err))
			continue
		}
		want, ok := g.Cells[key]
		if !ok {
			devs = append(devs, fmt.Sprintf("%s: not in golden file (grid changed? regenerate with -write-golden)", key))
			continue
		}
		check := func(stat string, got, ref float64) {
			if relDev(got, ref) > tol {
				devs = append(devs, fmt.Sprintf("%s: %s %.9g, golden %.9g (rel dev %.2e > tol %.2e)",
					key, stat, got, ref, relDev(got, ref), tol))
			}
		}
		check("precision_mean", r.Precision.Mean, want.PrecisionMean)
		check("precision_max", r.Precision.Max, want.PrecisionMax)
		check("accuracy_max", r.Accuracy.Max, want.AccuracyMax)
		check("width_mean", r.Width.Mean, want.WidthMean)
		if r.ContainmentViolations != want.ContainmentViolations {
			devs = append(devs, fmt.Sprintf("%s: containment_violations %d, golden %d",
				key, r.ContainmentViolations, want.ContainmentViolations))
		}
		if r.Samples != want.Samples {
			devs = append(devs, fmt.Sprintf("%s: samples %d, golden %d", key, r.Samples, want.Samples))
		}
	}
	var missing []string
	for key := range g.Cells {
		if !seen[key] {
			missing = append(missing, key)
		}
	}
	sort.Strings(missing)
	for _, key := range missing {
		devs = append(devs, fmt.Sprintf("%s: in golden file but not in campaign", key))
	}
	return devs
}

// relDev is |got−ref| / max(|ref|, tiny): relative where the reference
// is meaningful, absolute near zero (widths/precisions are ≥ 0 but a
// pinned 0 must match a computed 0 exactly).
func relDev(got, ref float64) float64 {
	d := math.Abs(got - ref)
	if d == 0 {
		return 0
	}
	den := math.Abs(ref)
	if den < 1e-30 {
		return math.Inf(1)
	}
	return d / den
}

// LoadGolden reads a golden file.
func LoadGolden(path string) (Golden, error) {
	var g Golden
	b, err := os.ReadFile(path)
	if err != nil {
		return g, err
	}
	if err := json.Unmarshal(b, &g); err != nil {
		return g, fmt.Errorf("harness: parse golden %s: %w", path, err)
	}
	return g, nil
}

// Write stores the golden file with stable formatting (sorted keys via
// encoding/json's map ordering) so regeneration diffs cleanly.
func (g Golden) Write(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
