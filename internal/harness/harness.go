// Package harness is the experiment-campaign engine: it fans a grid of
// cluster configurations (parameter points × seeds) across a worker
// pool, runs each cell as an independent deterministic simulation, and
// aggregates typed results for tables, JSONL/CSV artifacts and
// regression gating.
//
// The simulation kernel is seed-deterministic and every cell owns its
// own sim.Simulator, so parallel execution is bit-for-bit reproducible
// regardless of worker count or scheduling order: results are keyed by
// cell index, not completion order. cmd/ntisweep, cmd/ntifault and
// cmd/nticampaign are thin front-ends over this package.
package harness

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"ntisim/internal/cluster"
	"ntisim/internal/metrics"
	"ntisim/internal/service"
	"ntisim/internal/telemetry"
	"ntisim/internal/trace"
)

// Point is one parameter point of a campaign grid: a label, a
// serializable parameter description, and a mutation applied to a
// Clone of the base config.
type Point struct {
	Label string
	// Params describes the point for artifacts/manifests (e.g.
	// {"nodes": "16"}). Keys are merged left-to-right by Cross.
	Params map[string]string
	// Mutate edits the (already cloned) per-cell config. It must be
	// pure: any maps/slices it installs must be freshly allocated per
	// call, never shared across calls.
	Mutate func(*cluster.Config)
}

// Cell is one executable unit of a campaign: a point run under one seed.
type Cell struct {
	// Index is the stable cell ID: position in the seeds × points grid.
	// Results are ordered by Index regardless of execution order.
	Index int
	Point Point
	Seed  uint64
}

// Key is the stable identity of the cell across campaign runs with the
// same grid, used by golden files.
func (c Cell) Key() string { return fmt.Sprintf("%s/seed=%d", c.Point.Label, c.Seed) }

// Spec declares a campaign.
type Spec struct {
	// Name identifies the campaign in manifests and progress output.
	Name string
	// Base is the configuration every cell starts from (cloned per
	// cell; see cluster.Config.Clone). Base.Seed is overridden by the
	// cell's seed.
	Base cluster.Config
	// Points is the parameter grid (see Cross and the *Axis helpers).
	Points []Point
	// Seeds lists the seeds each point runs under; default {Base.Seed}.
	Seeds []uint64

	// WarmupS is settle time after synchronizer start before sampling
	// begins (default 20 sim-s — past initial-step transients).
	WarmupS float64
	// WindowS is the measurement window (default 60 sim-s).
	WindowS float64
	// SampleEveryS is the sampling period (default 1 sim-s).
	SampleEveryS float64
	// DelayProbes is the RTT probe count for MeasureDelay before start
	// (default 12; negative disables and keeps the a priori bounds).
	DelayProbes int
	// Timeline keeps the per-sample timeline in each Result (heavier
	// artifacts; used by fault studies that care about onset/recovery).
	Timeline bool
	// Trace attaches a cross-layer tracer to every cell's cluster and
	// keeps it in Result.Trace; WriteArtifacts then adds one
	// <name>.cell-NNN.trace.jsonl per cell. Each cell owns its own
	// Tracer, fed by its own single-threaded simulator, so traces are
	// byte-deterministic regardless of worker count.
	Trace bool
	// TraceOpts tunes the per-cell tracers when Trace is set (zero value
	// = defaults: 16384-record rings, no dispatch/DMA-word records).
	TraceOpts trace.Options

	// Telemetry attaches a runtime metrics registry to every cell's
	// cluster (cluster.Config.Telemetry) and captures one
	// telemetry.Snapshot per sampling tick into Result.Telemetry;
	// WriteArtifacts then adds one combined <name>.telemetry.jsonl. Each
	// cell owns its own registry, captured at shard barriers, so the
	// snapshot stream is byte-deterministic regardless of worker or
	// shard-worker count. Watchdog health rules run over the same
	// snapshots and land in Result.Health.
	Telemetry bool
	// Watchdog tunes the health rules when Telemetry is set (zero value
	// = defaults, see telemetry.WatchdogConfig).
	Watchdog telemetry.WatchdogConfig
	// Monitor, when non-nil, receives live campaign lifecycle events and
	// per-tick snapshots for the HTTP endpoint (cmd/ntitop). Monitor
	// state is wall-clock territory and never feeds artifacts.
	Monitor *telemetry.Monitor

	// Workers sizes the pool (default GOMAXPROCS).
	Workers int
	// Progress, when non-nil, receives one line per completed cell.
	Progress io.Writer
}

func (s *Spec) withDefaults() Spec {
	out := *s
	if out.WarmupS == 0 {
		out.WarmupS = 20
	}
	if out.WindowS == 0 {
		out.WindowS = 60
	}
	if out.SampleEveryS == 0 {
		out.SampleEveryS = 1
	}
	if out.DelayProbes == 0 {
		out.DelayProbes = 12
	}
	if out.Workers <= 0 {
		out.Workers = runtime.GOMAXPROCS(0)
	}
	if len(out.Seeds) == 0 {
		out.Seeds = []uint64{out.Base.Seed}
	}
	return out
}

// Cells enumerates the seeds × points grid in stable order (seed-major,
// matching how multi-seed tables group rows).
func (s *Spec) Cells() []Cell {
	sp := s.withDefaults()
	var cells []Cell
	for _, seed := range sp.Seeds {
		for _, p := range sp.Points {
			cells = append(cells, Cell{Index: len(cells), Point: p, Seed: seed})
		}
	}
	return cells
}

// SyncTotals aggregates clocksync statistics across a cell's members.
type SyncTotals struct {
	Rounds            uint64 `json:"rounds"`
	CSPsSent          uint64 `json:"csps_sent"`
	CSPsUsed          uint64 `json:"csps_used"`
	ConvergenceFailed uint64 `json:"convergence_failed"`
	ExternalAccepted  uint64 `json:"external_accepted"`
	ExternalRejected  uint64 `json:"external_rejected"`
	// RateCommands counts discipline-commanded frequency adjustments
	// (omitted for the offset-only disciplines, keeping older artifact
	// lines byte-identical).
	RateCommands uint64 `json:"rate_commands,omitempty"`
	// SourcesRejected counts reference-source quarantine entries under
	// multi-source trust (omitted on single-source cells, keeping older
	// artifact lines byte-identical).
	SourcesRejected uint64 `json:"sources_rejected,omitempty"`
}

// AdversaryTotals summarizes a cell's Byzantine activity. Present only
// on cells whose config enables an adversary — the pointer + omitempty
// keep adversary-free artifact lines byte-identical.
type AdversaryTotals struct {
	// Traitors is the cell's adversarial node count.
	Traitors int `json:"traitors"`
	// LiesTold counts adversarially mutated frame deliveries.
	LiesTold uint64 `json:"lies_told"`
	// SourcesRejected mirrors SyncTotals.SourcesRejected for the
	// adversary columns.
	SourcesRejected uint64 `json:"sources_rejected"`
	// HonestViolations counts samples in which some honest (non-traitor)
	// node's accuracy interval failed to contain true time — the
	// Byzantine failure criterion: a traitor's own clock going wrong is
	// configured behavior, an honest node losing containment means the
	// tolerance bound was exceeded.
	HonestViolations int `json:"honest_violations"`
}

// TimelinePoint is one sample of a cell's evolution (kept only when
// Spec.Timeline is set).
type TimelinePoint struct {
	// T is sim time since the start of the measurement window.
	T           float64 `json:"t"`
	PrecisionS  float64 `json:"precision_s"`
	MaxAbsOffS  float64 `json:"max_abs_offset_s"`
	Contained   bool    `json:"contained"`
	ExtAccepted uint64  `json:"ext_accepted"`
	ExtRejected uint64  `json:"ext_rejected"`
}

// Result is the typed outcome of one cell. All series statistics are in
// seconds. The JSON form is stable and deterministic for a given spec —
// wall-clock fields are excluded from serialization so artifacts are
// byte-identical across worker counts and machines.
type Result struct {
	Cell   int               `json:"cell"`
	Label  string            `json:"label"`
	Seed   uint64            `json:"seed"`
	Params map[string]string `json:"params,omitempty"`

	// Precision is max pairwise clock difference per sample;
	// Accuracy is max |C_i − t|; Width is the mean accuracy-interval
	// half-width across nodes.
	Precision metrics.SeriesStats `json:"precision"`
	Accuracy  metrics.SeriesStats `json:"accuracy"`
	Width     metrics.SeriesStats `json:"width"`
	// ContainmentViolations counts samples where some node's accuracy
	// interval failed to contain real time (requirement (A) of §2).
	ContainmentViolations int `json:"containment_violations"`
	Samples               int `json:"samples"`

	Sync SyncTotals `json:"sync"`
	// CSPUse is used/(sent·(n−1)): the fraction of broadcast CSPs that
	// survived to convergence at their receivers.
	CSPUse float64 `json:"csp_use"`

	// Events is the number of simulation events fired; SimS the total
	// simulated span. Together with WallS they give throughput.
	Events uint64  `json:"events"`
	SimS   float64 `json:"sim_s"`
	// WallS and EventsPerWallS are excluded from JSON: they vary
	// run-to-run and would break artifact determinism. Use Throughput
	// (or the progress stream) for reporting.
	WallS float64 `json:"-"`
	// EventsPerWallS is kernel event throughput — fired events per
	// wall-clock second — the profiling hook for event-queue work.
	EventsPerWallS float64 `json:"-"`

	// Serving carries the served-accuracy statistics of the simulated
	// client population when the cell's config enables one
	// (cluster.Config.Serving); nil otherwise. The pointer + omitempty
	// keep pre-serving artifact lines byte-identical.
	Serving *service.Stats `json:"serving,omitempty"`

	// Adversary carries the Byzantine activity summary when the cell's
	// config enables an adversary; nil otherwise.
	Adversary *AdversaryTotals `json:"adversary,omitempty"`

	// Health lists the watchdog flags the cell tripped (only when
	// Spec.Telemetry; omitted — and byte-invisible — when healthy).
	Health []string `json:"health,omitempty"`

	Err string `json:"error,omitempty"`

	Timeline []TimelinePoint `json:"timeline,omitempty"`

	// Trace is the cell's cross-layer tracer (only when Spec.Trace).
	// Excluded from the Result JSON — traces are written as their own
	// per-cell JSONL artifacts, keeping the campaign JSONL stable.
	Trace *trace.Tracer `json:"-"`

	// Telemetry is the cell's snapshot stream (only when Spec.Telemetry).
	// Excluded from the Result JSON — snapshots are written to the
	// combined <name>.telemetry.jsonl artifact instead.
	Telemetry []telemetry.Snapshot `json:"-"`
}

// Key matches Cell.Key for golden lookups.
func (r *Result) Key() string { return fmt.Sprintf("%s/seed=%d", r.Label, r.Seed) }

// Throughput returns simulated seconds per wall-clock second (0 when
// the cell failed before running).
func (r *Result) Throughput() float64 {
	if r.WallS <= 0 {
		return 0
	}
	return r.SimS / r.WallS
}

// Campaign is an executed Spec.
type Campaign struct {
	Spec Spec
	// Results is indexed by cell ID (stable grid order).
	Results []Result
	// WallS is the total wall-clock time of the run.
	WallS float64
	// Workers is the resolved pool size.
	Workers int
}

// TotalSimS sums simulated time across cells.
func (c *Campaign) TotalSimS() float64 {
	var s float64
	for i := range c.Results {
		s += c.Results[i].SimS
	}
	return s
}

// Failed returns the results that errored.
func (c *Campaign) Failed() []Result {
	var out []Result
	for _, r := range c.Results {
		if r.Err != "" {
			out = append(out, r)
		}
	}
	return out
}

// Run executes the campaign: every cell on its own simulator, fanned
// across Workers goroutines. Results land in grid order, so output is
// independent of scheduling. Run never fails the whole campaign for a
// failing cell — per-cell panics are captured into Result.Err.
func Run(spec Spec) *Campaign {
	sp := spec.withDefaults()
	cells := sp.Cells()
	camp := &Campaign{Spec: sp, Results: make([]Result, len(cells)), Workers: sp.Workers}

	start := time.Now()
	sp.Monitor.Begin(sp.Name, len(cells))
	var mu sync.Mutex // progress writer + completion counter
	done := 0
	ForEachWorker(sp.Workers, len(cells), func(worker, i int) {
		cell := cells[i]
		sp.Monitor.CellStart(worker, cell.Key())
		r := runCell(&sp, cell)
		sp.Monitor.CellEnd(worker, cell.Key(), r.SimS, r.Health, r.Err != "")
		camp.Results[cell.Index] = r
		if sp.Progress != nil {
			mu.Lock()
			done++
			status := fmt.Sprintf("prec(mean)=%sµs", metrics.Us(r.Precision.Mean))
			if r.Err != "" {
				status = "ERROR: " + r.Err
			}
			fmt.Fprintf(sp.Progress, "[%*d/%d] %-28s %s (%.2fs wall, %.0f sim-s/s, %.0f ev/s)\n",
				digits(len(cells)), done, len(cells), cell.Key(), status, r.WallS, r.Throughput(), r.EventsPerWallS)
			mu.Unlock()
		}
	})
	camp.WallS = time.Since(start).Seconds()
	return camp
}

func digits(n int) int { return len(fmt.Sprint(n)) }

// runCell executes one independent simulation and summarizes it.
func runCell(sp *Spec, cell Cell) (res Result) {
	res = Result{Cell: cell.Index, Label: cell.Point.Label, Seed: cell.Seed, Params: cell.Point.Params}
	wallStart := time.Now()
	defer func() {
		res.WallS = time.Since(wallStart).Seconds()
		if res.WallS > 0 {
			res.EventsPerWallS = float64(res.Events) / res.WallS
		}
		if p := recover(); p != nil {
			res.Err = fmt.Sprint(p)
		}
	}()

	cfg := sp.Base.Clone()
	if cell.Point.Mutate != nil {
		cell.Point.Mutate(&cfg)
	}
	cfg.Seed = cell.Seed
	if sp.Trace {
		res.Trace = trace.New(sp.TraceOpts)
		cfg.Tracer = res.Trace
	}
	// Each cell gets its own registry and watchdog — like the tracer,
	// they are fed only from the cell's own simulator(s), so the
	// snapshot stream is deterministic at any worker count. The harness
	// mirrors its containment verdicts into the registry so watchdog
	// rules can key on them.
	adversarial := cfg.Adversary.Enabled()
	var wd *telemetry.Watchdog
	var tmViol, tmHonest *telemetry.Counter
	if sp.Telemetry {
		cfg.Telemetry = telemetry.New()
		wd = telemetry.NewWatchdog(sp.Watchdog)
		tmViol = cfg.Telemetry.Counter(telemetry.MetricContainment)
		if adversarial {
			// Registered only on adversarial cells so legacy snapshot
			// streams keep their exact metric set.
			tmHonest = cfg.Telemetry.Counter(telemetry.MetricHonestContainment)
		}
	}

	c := cluster.New(cfg)
	if sp.DelayProbes > 0 && len(c.Members) >= 2 {
		b := c.MeasureDelay(0, 1, sp.DelayProbes)
		for _, m := range c.Members {
			m.Sync.SetDelayBounds(b)
		}
	}
	c.Start(c.Now() + 1)
	c.RunUntil(c.Now() + sp.WarmupS)

	// The sample count is fixed by the window and period, so the series
	// can be sized exactly up front — steady-state sampling never grows
	// a backing array (the pre-sized Add path is alloc-pinned in
	// metrics' TestSeriesGrowAllocFree).
	samples := int(sp.WindowS/sp.SampleEveryS) + 2
	var prec, acc, width, w metrics.Series
	prec.Grow(samples)
	acc.Grow(samples)
	width.Grow(samples)
	w.Grow(len(c.Members))
	begin := c.Now()
	honestViolations := 0
	serving := cfg.Serving.Clients > 0
	if serving {
		c.StartServing(begin)
	}
	for t := begin; t <= begin+sp.WindowS; t += sp.SampleEveryS {
		c.RunUntil(t)
		cs := c.Snapshot()
		prec.Add(cs.Precision)
		acc.Add(cs.MaxAbsOffset)
		w.Reset()
		for _, m := range c.Members {
			am, ap := m.U.Alpha()
			w.Add((am.Duration().Seconds() + ap.Duration().Seconds()) / 2)
		}
		width.Add(w.Mean())
		if !cs.Contained {
			res.ContainmentViolations++
			tmViol.Inc()
		}
		if adversarial {
			// Byzantine failure criterion: containment over the honest
			// subset only. cs.Contained covers every node, but a traitor
			// losing containment on its own steered clock is not a
			// tolerance failure.
			for _, m := range c.Members {
				if c.Traitor(m.Index) {
					continue
				}
				if _, lo, hi := m.OffsetAndBounds(); lo > 0 || hi < 0 {
					honestViolations++
					tmHonest.Inc()
					break
				}
			}
		}
		res.Samples++
		if sp.Telemetry {
			snap, _ := c.TelemetrySnapshot()
			wd.Observe(snap)
			wd.ObservePrecision(cs.Precision)
			res.Telemetry = append(res.Telemetry, snap)
			sp.Monitor.Publish(snap)
		}
		if sp.Timeline {
			var ea, er uint64
			for _, m := range c.Members {
				st := m.Sync.Stats()
				ea += st.ExternalAccepted
				er += st.ExternalRejected
			}
			res.Timeline = append(res.Timeline, TimelinePoint{
				T:           c.Now() - begin,
				PrecisionS:  cs.Precision,
				MaxAbsOffS:  cs.MaxAbsOffset,
				Contained:   cs.Contained,
				ExtAccepted: ea,
				ExtRejected: er,
			})
		}
	}

	for _, m := range c.Members {
		st := m.Sync.Stats()
		res.Sync.Rounds += st.Rounds
		res.Sync.CSPsSent += st.CSPsSent
		res.Sync.CSPsUsed += st.CSPsUsed
		res.Sync.ConvergenceFailed += st.ConvergenceFailed
		res.Sync.ExternalAccepted += st.ExternalAccepted
		res.Sync.ExternalRejected += st.ExternalRejected
		res.Sync.RateCommands += st.RateCommands
		res.Sync.SourcesRejected += st.SourcesRejected
	}
	if ideal := res.Sync.CSPsSent * uint64(len(c.Members)-1); ideal > 0 {
		res.CSPUse = float64(res.Sync.CSPsUsed) / float64(ideal)
	}
	res.Precision = prec.Stats()
	res.Accuracy = acc.Stats()
	res.Width = width.Stats()
	res.Events = c.EventCount()
	res.SimS = c.Now()
	if serving {
		st := c.ServingReport(c.Now() - begin)
		res.Serving = &st
	}
	if adversarial {
		res.Adversary = &AdversaryTotals{
			Traitors:         c.TraitorCount(),
			LiesTold:         c.AdversaryLies(),
			SourcesRejected:  res.Sync.SourcesRejected,
			HonestViolations: honestViolations,
		}
	}
	if sp.Trace {
		// Sharded clusters trace per shard; Trace() returns the merged
		// canonical-order tracer (the configured one for unsharded).
		res.Trace = c.Trace()
	}
	if wd != nil {
		res.Health = wd.Flags()
	}
	return res
}
