// Grid construction: the standard sweep axes of the evaluation
// (cluster size, round period, background load, oscillator frequency,
// fault-tolerance degree, GPS fault scenarios) and a cartesian-product
// combinator. cmd/ntisweep exposes single axes; cmd/nticampaign crosses
// them into full matrices.

package harness

import (
	"fmt"

	"ntisim/internal/cluster"
	"ntisim/internal/discipline"
	"ntisim/internal/gps"
	"ntisim/internal/service"
	"ntisim/internal/timefmt"
)

// Axis is a named list of points along one parameter.
type Axis struct {
	Name   string
	Points []Point
}

// NodesAxis sweeps cluster size (defaults: the paper-era 2..32 range).
func NodesAxis(ns ...int) Axis {
	if len(ns) == 0 {
		ns = []int{2, 4, 8, 16, 24, 32}
	}
	ax := Axis{Name: "nodes"}
	for _, n := range ns {
		n := n
		ax.Points = append(ax.Points, Point{
			Label:  fmt.Sprintf("n=%d", n),
			Params: map[string]string{"nodes": fmt.Sprint(n)},
			Mutate: func(c *cluster.Config) { c.Nodes = n },
		})
	}
	return ax
}

// SegmentsAxis sweeps the WANs-of-LANs segment count of the sharded
// topology (1 = single LAN). The worker count (cluster.Config.Shards)
// is deliberately not a point parameter: it cannot change results —
// that's the sharded kernel's determinism contract — so it is set on
// the Spec's base config, like Spec.Workers.
func SegmentsAxis(segs ...int) Axis {
	if len(segs) == 0 {
		segs = []int{1, 2, 4, 8}
	}
	ax := Axis{Name: "segments"}
	for _, s := range segs {
		s := s
		ax.Points = append(ax.Points, Point{
			Label:  fmt.Sprintf("seg=%d", s),
			Params: map[string]string{"segments": fmt.Sprint(s)},
			Mutate: func(c *cluster.Config) { c.Segments = s },
		})
	}
	return ax
}

// PeriodAxis sweeps the resynchronization round period in seconds,
// scaling the convergence compute delay with it.
func PeriodAxis(ps ...float64) Axis {
	if len(ps) == 0 {
		ps = []float64{0.25, 0.5, 1, 2, 4}
	}
	ax := Axis{Name: "period"}
	for _, p := range ps {
		p := p
		ax.Points = append(ax.Points, Point{
			Label:  fmt.Sprintf("P=%.2gs", p),
			Params: map[string]string{"period_s": fmt.Sprint(p)},
			Mutate: func(c *cluster.Config) {
				c.Sync.RoundPeriod = timefmt.DurationFromSeconds(p)
				c.Sync.ComputeDelay = timefmt.DurationFromSeconds(p / 4)
			},
		})
	}
	return ax
}

// LoadAxis sweeps background medium utilization (0..0.9).
func LoadAxis(ls ...float64) Axis {
	if len(ls) == 0 {
		ls = []float64{0, 0.15, 0.3, 0.45, 0.6}
	}
	ax := Axis{Name: "load"}
	for _, l := range ls {
		l := l
		ax.Points = append(ax.Points, Point{
			Label:  fmt.Sprintf("load=%.0f%%", l*100),
			Params: map[string]string{"load": fmt.Sprint(l)},
			Mutate: func(c *cluster.Config) { c.BackgroundLoad = l },
		})
	}
	return ax
}

// FoscAxis sweeps the UTCSU pacing frequency (the paper's 1..20 MHz).
func FoscAxis(fs ...float64) Axis {
	if len(fs) == 0 {
		fs = []float64{1e6, 4e6, 10e6, 14e6, 20e6}
	}
	ax := Axis{Name: "fosc"}
	for _, f := range fs {
		f := f
		ax.Points = append(ax.Points, Point{
			Label:  fmt.Sprintf("f=%.0fMHz", f/1e6),
			Params: map[string]string{"fosc_hz": fmt.Sprint(f)},
			Mutate: func(c *cluster.Config) { c.OscHz = f },
		})
	}
	return ax
}

// FAxis sweeps the fault-tolerance degree on a fixed-size cluster.
func FAxis(nodes int, fs ...int) Axis {
	if nodes <= 0 {
		nodes = 10
	}
	if len(fs) == 0 {
		fs = []int{0, 1, 2, 3, 4}
	}
	ax := Axis{Name: "f"}
	for _, fv := range fs {
		fv := fv
		ax.Points = append(ax.Points, Point{
			Label:  fmt.Sprintf("F=%d", fv),
			Params: map[string]string{"nodes": fmt.Sprint(nodes), "f": fmt.Sprint(fv)},
			Mutate: func(c *cluster.Config) {
				c.Nodes = nodes
				c.Sync.F = fv
			},
		})
	}
	return ax
}

// DisciplineAxis sweeps the clock-discipline algorithm (default: every
// registered discipline, in discipline.Names order). It panics on a
// name outside the registry — front-ends validate user input first
// (see cmd/nticampaign's valid-choices error).
func DisciplineAxis(names ...string) Axis {
	if len(names) == 0 {
		names = discipline.Names()
	}
	ax := Axis{Name: "discipline"}
	for _, n := range names {
		f, ok := discipline.Lookup(n)
		if !ok {
			panic(fmt.Sprintf("harness: unknown discipline %q", n))
		}
		n := n
		ax.Points = append(ax.Points, Point{
			Label:  fmt.Sprintf("disc=%s", n),
			Params: map[string]string{"discipline": n},
			Mutate: func(c *cluster.Config) { c.Sync.Discipline = f },
		})
	}
	return ax
}

// TraitorsAxis sweeps the Byzantine traitor fraction (the share of
// regular nodes running an adversarial behavior model; which nodes turn
// traitor derives from the cell seed — see internal/adversary). A 0
// point is the honest baseline within the same sweep.
func TraitorsAxis(fracs ...float64) Axis {
	if len(fracs) == 0 {
		fracs = []float64{0, 0.125, 0.25, 0.375}
	}
	ax := Axis{Name: "traitors"}
	for _, fr := range fracs {
		fr := fr
		ax.Points = append(ax.Points, Point{
			Label:  fmt.Sprintf("traitors=%g", fr),
			Params: map[string]string{"traitors": fmt.Sprint(fr)},
			Mutate: func(c *cluster.Config) { c.Adversary.TraitorFrac = fr },
		})
	}
	return ax
}

// ClientsAxis sweeps the simulated client population querying the
// cluster for time (enables the internal/service load subsystem).
func ClientsAxis(ns ...int) Axis {
	if len(ns) == 0 {
		ns = []int{100000, 1000000}
	}
	ax := Axis{Name: "clients"}
	for _, n := range ns {
		n := n
		ax.Points = append(ax.Points, Point{
			Label:  fmt.Sprintf("clients=%d", n),
			Params: map[string]string{"clients": fmt.Sprint(n)},
			Mutate: func(c *cluster.Config) { c.Serving.Clients = n },
		})
	}
	return ax
}

// ArrivalAxis sweeps the client arrival process (default: every
// registered process, in service.Arrivals order). Like DisciplineAxis
// it panics on an unknown name — front-ends validate user input first.
func ArrivalAxis(names ...string) Axis {
	if len(names) == 0 {
		names = service.Arrivals()
	}
	ax := Axis{Name: "arrival"}
	for _, n := range names {
		if !service.ValidArrival(n) {
			panic(fmt.Sprintf("harness: unknown arrival process %q", n))
		}
		n := n
		ax.Points = append(ax.Points, Point{
			Label:  fmt.Sprintf("arrival=%s", n),
			Params: map[string]string{"arrival": n},
			Mutate: func(c *cluster.Config) { c.Serving.Arrival = n },
		})
	}
	return ax
}

// AllFaultKinds lists the injectable receiver fault kinds (including
// FaultNone as the healthy control) in stable order.
func AllFaultKinds() []gps.FaultKind {
	return []gps.FaultKind{
		gps.FaultNone, gps.FaultOutage, gps.FaultOffset,
		gps.FaultWrongSec, gps.FaultFlapping, gps.FaultRampDrift,
	}
}

// FaultScenario describes one GPS fault-injection cell.
type FaultScenario struct {
	Kind      gps.FaultKind
	Magnitude float64 // unit depends on Kind (s, s/s, or whole seconds)
	StartS    float64 // fault onset in sim seconds
	// Trust bypasses interval-based clock validation (the naive-trust
	// contrast).
	Trust bool
}

// FaultAxis builds fault-injection points: gpsNodes receivers on the
// first nodes, with the last GPS node carrying the scenario's fault.
func FaultAxis(gpsNodes int, scenarios ...FaultScenario) Axis {
	ax := Axis{Name: "fault"}
	for _, sc := range scenarios {
		sc := sc
		label := fmt.Sprintf("fault=%s", sc.Kind)
		policy := "validated"
		if sc.Trust {
			policy = "naive-trust"
		}
		label += "/" + policy
		ax.Points = append(ax.Points, Point{
			Label: label,
			Params: map[string]string{
				"fault":  sc.Kind.String(),
				"mag":    fmt.Sprint(sc.Magnitude),
				"onset":  fmt.Sprint(sc.StartS),
				"policy": policy,
			},
			Mutate: func(c *cluster.Config) {
				c.Sync.TrustExternal = sc.Trust
				c.GPS = make(map[int]gps.Config, gpsNodes)
				for i := 0; i < gpsNodes; i++ {
					c.GPS[i] = gps.DefaultReceiver()
				}
				if sc.Kind != gps.FaultNone {
					rc := gps.DefaultReceiver()
					rc.Faults = []gps.Fault{{Kind: sc.Kind, Start: sc.StartS, Magnitude: sc.Magnitude}}
					c.GPS[gpsNodes-1] = rc
				}
			},
		})
	}
	return ax
}

// Cross returns the cartesian product of the axes' points: labels
// joined with ",", params merged (later axes win on key collisions),
// mutations applied left-to-right.
func Cross(axes ...Axis) []Point {
	pts := []Point{{}}
	for _, ax := range axes {
		var next []Point
		for _, base := range pts {
			for _, p := range ax.Points {
				next = append(next, combine(base, p))
			}
		}
		pts = next
	}
	// Strip the empty seed point artifacts when no axes were given.
	if len(axes) == 0 {
		return nil
	}
	return pts
}

func combine(a, b Point) Point {
	out := Point{Label: b.Label}
	if a.Label != "" {
		out.Label = a.Label + "," + b.Label
	}
	out.Params = map[string]string{}
	for k, v := range a.Params {
		out.Params[k] = v
	}
	for k, v := range b.Params {
		out.Params[k] = v
	}
	am, bm := a.Mutate, b.Mutate
	out.Mutate = func(c *cluster.Config) {
		if am != nil {
			am(c)
		}
		if bm != nil {
			bm(c)
		}
	}
	return out
}
