// Artifact writers: JSONL (one Result per line, in stable cell order),
// CSV (flat key statistics for spreadsheet/pandas consumption) and a
// campaign manifest carrying enough metadata to reproduce the run.

package harness

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"

	"ntisim/internal/telemetry"
)

// WriteJSONL writes one compact JSON record per result, in cell order.
// For a fixed spec the bytes are identical regardless of worker count:
// results are keyed by cell ID and wall-clock fields are excluded.
func (c *Campaign) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for i := range c.Results {
		if err := enc.Encode(&c.Results[i]); err != nil {
			return fmt.Errorf("harness: jsonl cell %d: %w", i, err)
		}
	}
	return nil
}

// csvHeader is the flat CSV schema (README "artifact schema").
var csvHeader = []string{
	"cell", "label", "seed",
	"precision_mean_s", "precision_p99_s", "precision_max_s",
	"accuracy_mean_s", "accuracy_max_s",
	"width_mean_s",
	"containment_violations", "samples",
	"rounds", "csps_sent", "csps_used", "csp_use",
	"ext_accepted", "ext_rejected",
	"events", "sim_s", "error",
	// Serving columns are empty for cells without a client population.
	"clients", "served_queries", "served_qps",
	"served_err_p50_s", "served_err_p99_s", "served_err_p999_s", "served_err_max_s",
	// Adversary columns are empty for cells without an adversary spec.
	"traitors", "lies_told", "sources_rejected", "honest_violations",
	// health is the ';'-joined watchdog flag list (empty = healthy or
	// telemetry disabled).
	"health",
}

// WriteCSV writes the key statistics of every cell as one flat row.
func (c *Campaign) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	for i := range c.Results {
		r := &c.Results[i]
		row := []string{
			strconv.Itoa(r.Cell), r.Label, strconv.FormatUint(r.Seed, 10),
			f(r.Precision.Mean), f(r.Precision.P99), f(r.Precision.Max),
			f(r.Accuracy.Mean), f(r.Accuracy.Max),
			f(r.Width.Mean),
			strconv.Itoa(r.ContainmentViolations), strconv.Itoa(r.Samples),
			u(r.Sync.Rounds), u(r.Sync.CSPsSent), u(r.Sync.CSPsUsed), f(r.CSPUse),
			u(r.Sync.ExternalAccepted), u(r.Sync.ExternalRejected),
			u(r.Events), f(r.SimS), r.Err,
		}
		if sv := r.Serving; sv != nil {
			row = append(row,
				strconv.Itoa(sv.Clients), u(sv.Queries), f(sv.QPS),
				f(sv.ErrP50S), f(sv.ErrP99S), f(sv.ErrP999S), f(sv.ErrMaxS))
		} else {
			row = append(row, "", "", "", "", "", "", "")
		}
		if av := r.Adversary; av != nil {
			row = append(row,
				strconv.Itoa(av.Traitors), u(av.LiesTold),
				u(av.SourcesRejected), strconv.Itoa(av.HonestViolations))
		} else {
			row = append(row, "", "", "", "")
		}
		row = append(row, strings.Join(r.Health, ";"))
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTelemetryJSONL writes every cell's snapshot stream as one
// combined JSONL: each line is a telemetry.Snapshot tagged with its
// cell ID, in cell order. Snapshots are pure functions of (config,
// seed, sim time), so for a fixed spec the bytes are identical at any
// worker count — and, for sharded configs, at any shard-worker count.
func (c *Campaign) WriteTelemetryJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	type line struct {
		Cell int `json:"cell"`
		telemetry.Snapshot
	}
	for i := range c.Results {
		r := &c.Results[i]
		for _, s := range r.Telemetry {
			if err := enc.Encode(line{Cell: r.Cell, Snapshot: s}); err != nil {
				return fmt.Errorf("harness: telemetry jsonl cell %d: %w", r.Cell, err)
			}
		}
	}
	return nil
}

// ManifestPoint records one grid point in the manifest.
type ManifestPoint struct {
	Label  string            `json:"label"`
	Params map[string]string `json:"params,omitempty"`
}

// Manifest describes a campaign run for reproduction: the grid, the
// seeds, and the build/runtime environment.
type Manifest struct {
	Name        string          `json:"name"`
	Cells       int             `json:"cells"`
	Seeds       []uint64        `json:"seeds"`
	Points      []ManifestPoint `json:"points"`
	BaseNodes   int             `json:"base_nodes"`
	WarmupS     float64         `json:"warmup_s"`
	WindowS     float64         `json:"window_s"`
	SampleS     float64         `json:"sample_every_s"`
	DelayProbes int             `json:"delay_probes"`

	Workers    int     `json:"workers"`
	GoMaxProcs int     `json:"gomaxprocs"`
	GoVersion  string  `json:"go_version"`
	VCSRev     string  `json:"vcs_revision,omitempty"`
	WallS      float64 `json:"wall_s"`
	TotalSimS  float64 `json:"total_sim_s"`
	Failed     int     `json:"failed"`
}

// Manifest builds the manifest for an executed campaign.
func (c *Campaign) Manifest() Manifest {
	m := Manifest{
		Name:        c.Spec.Name,
		Cells:       len(c.Results),
		Seeds:       c.Spec.Seeds,
		BaseNodes:   c.Spec.Base.Nodes,
		WarmupS:     c.Spec.WarmupS,
		WindowS:     c.Spec.WindowS,
		SampleS:     c.Spec.SampleEveryS,
		DelayProbes: c.Spec.DelayProbes,
		Workers:     c.Workers,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		GoVersion:   runtime.Version(),
		VCSRev:      vcsRevision(),
		WallS:       c.WallS,
		TotalSimS:   c.TotalSimS(),
		Failed:      len(c.Failed()),
	}
	for _, p := range c.Spec.Points {
		m.Points = append(m.Points, ManifestPoint{Label: p.Label, Params: p.Params})
	}
	return m
}

// vcsRevision reports the VCS commit stamped into the binary, if any.
func vcsRevision() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" {
			return s.Value
		}
	}
	return ""
}

// WriteArtifacts writes <name>.jsonl, <name>.csv and <name>.manifest.json
// into dir (created if needed) and returns the file paths.
func (c *Campaign) WriteArtifacts(dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	name := c.Spec.Name
	if name == "" {
		name = "campaign"
	}
	var paths []string
	write := func(suffix string, fn func(io.Writer) error) error {
		p := filepath.Join(dir, name+suffix)
		f, err := os.Create(p)
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		paths = append(paths, p)
		return nil
	}
	if err := write(".jsonl", c.WriteJSONL); err != nil {
		return nil, err
	}
	if err := write(".csv", c.WriteCSV); err != nil {
		return nil, err
	}
	err := write(".manifest.json", func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(c.Manifest())
	})
	if err != nil {
		return nil, err
	}
	if c.Spec.Telemetry {
		if err := write(".telemetry.jsonl", c.WriteTelemetryJSONL); err != nil {
			return nil, err
		}
	}
	// Per-cell trace artifacts (Spec.Trace campaigns). One file per
	// cell, named by the stable cell index, written in grid order —
	// byte-identical at any worker count because each cell's tracer is
	// fed by its own single-threaded simulator.
	for i := range c.Results {
		r := &c.Results[i]
		if r.Trace == nil {
			continue
		}
		suffix := fmt.Sprintf(".cell-%03d.trace.jsonl", r.Cell)
		if err := write(suffix, r.Trace.WriteJSONL); err != nil {
			return nil, err
		}
	}
	return paths, nil
}
