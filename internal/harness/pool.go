package harness

import (
	"runtime"
	"sync"
)

// ForEach runs task(0..n-1) across a pool of workers goroutines and
// returns when all tasks have completed. workers <= 0 sizes the pool to
// GOMAXPROCS. Tasks must be independent and should write their results
// into index-addressed storage — the discipline that keeps output
// deterministic regardless of scheduling order (campaign cells in Run,
// experiment tables in cmd/ntibench).
func ForEach(workers, n int, task func(i int)) {
	ForEachWorker(workers, n, func(_, i int) { task(i) })
}

// ForEachWorker is ForEach with the pool slot exposed: task receives
// (worker, i) where worker ∈ [0, workers) identifies the goroutine
// running it. Task results must not depend on the worker id — it
// exists for wall-clock observability (telemetry.Monitor per-worker
// status), never for output.
func ForEachWorker(workers, n int, task func(worker, i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			task(0, i)
		}
		return
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range work {
				task(worker, i)
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
}
