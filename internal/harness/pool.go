package harness

import (
	"runtime"
	"sync"
)

// ForEach runs task(0..n-1) across a pool of workers goroutines and
// returns when all tasks have completed. workers <= 0 sizes the pool to
// GOMAXPROCS. Tasks must be independent and should write their results
// into index-addressed storage — the discipline that keeps output
// deterministic regardless of scheduling order (campaign cells in Run,
// experiment tables in cmd/ntibench).
func ForEach(workers, n int, task func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			task(i)
		}
		return
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				task(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
}
