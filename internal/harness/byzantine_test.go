package harness

import (
	"bytes"
	"testing"

	"ntisim/internal/adversary"
	"ntisim/internal/cluster"
	"ntisim/internal/gps"
)

// byzantineSpec is a small slice of the byzantine campaign preset: a
// 2-segment 8-node cluster with colluding traitors, triple GNSS
// sources, a mid-window spoof, and an honest baseline point.
func byzantineSpec(workers, shards int) Spec {
	base := cluster.Defaults(8, 1)
	base.Segments = 2
	base.Shards = shards
	base.Sync.F = 2
	base.Sync.SourceF = 1
	base.GPS = map[int]gps.Config{0: gps.DefaultReceiver(), 1: gps.DefaultReceiver()}
	base.Adversary = adversary.Spec{
		Attack:     adversary.AttackCollude,
		MagnitudeS: 500e-6,
		Sources:    3,
		GNSS: []adversary.GNSSEvent{{
			Kind: adversary.GNSSSpoof, StartS: 4, EndS: 8,
			OffsetS: 20e-3, Sources: 1,
		}},
	}
	return Spec{
		Name:         "byzantine-test",
		Base:         base,
		Points:       TraitorsAxis(0, 0.375).Points,
		Seeds:        []uint64{11},
		WarmupS:      3,
		WindowS:      9,
		SampleEveryS: 1,
		DelayProbes:  4,
		Workers:      workers,
	}
}

// TestByzantineDeterminism extends the harness' core guarantee to
// adversarial cells: traitor casts, per-receiver lies, and multi-source
// quarantine decisions are pure functions of the cell seed, so the same
// byzantine grid is byte-identical across 1-vs-N workers crossed with
// 1-vs-N shards per cluster.
func TestByzantineDeterminism(t *testing.T) {
	ref := Run(byzantineSpec(1, 1))
	for _, r := range ref.Results {
		if r.Err != "" {
			t.Fatalf("cell %s errored: %s", r.Key(), r.Err)
		}
	}
	want := jsonl(t, ref)
	for _, cfg := range []struct{ workers, shards int }{{4, 1}, {1, 4}, {4, 4}} {
		got := jsonl(t, Run(byzantineSpec(cfg.workers, cfg.shards)))
		if !bytes.Equal(want, got) {
			t.Fatalf("JSONL differs at %d workers / %d shards:\n--- 1/1 ---\n%s\n--- %d/%d ---\n%s",
				cfg.workers, cfg.shards, want, cfg.workers, cfg.shards, got)
		}
	}
}

// TestByzantineTotals checks the adversarial bookkeeping of the same
// grid: the honest baseline reports no adversary block damage, and the
// super-F traitor cell reports its cast, its delivered lies, and the
// spoof-window source rejections.
func TestByzantineTotals(t *testing.T) {
	c := Run(byzantineSpec(1, 1))
	if len(c.Results) != 2 {
		t.Fatalf("cells = %d, want 2", len(c.Results))
	}
	for _, r := range c.Results {
		if r.Adversary == nil {
			t.Fatalf("cell %s: adversarial campaign lost its adversary totals", r.Key())
		}
		switch r.Params["traitors"] {
		case "0":
			if r.Adversary.Traitors != 0 || r.Adversary.LiesTold != 0 {
				t.Errorf("honest baseline reports %d traitors, %d lies", r.Adversary.Traitors, r.Adversary.LiesTold)
			}
			if r.Adversary.SourcesRejected == 0 {
				t.Error("honest baseline never quarantined the spoofed GNSS source")
			}
		case "0.375":
			if r.Adversary.Traitors != 3 {
				t.Errorf("traitors = %d, want 3 (0.375 of 8)", r.Adversary.Traitors)
			}
			if r.Adversary.LiesTold == 0 {
				t.Error("a 3-traitor cell delivered no lies")
			}
			if r.Adversary.HonestViolations == 0 {
				t.Error("a clique larger than F=2 should break honest containment")
			}
		default:
			t.Errorf("unexpected traitors param %q", r.Params["traitors"])
		}
	}
}
