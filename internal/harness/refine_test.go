package harness

import (
	"math"
	"testing"
)

// syntheticAxis drives refineLoop with a closed-form metric so the
// bisection contract can be checked without running simulations.
func syntheticAxis(lo, hi float64, integer bool) NumericAxis {
	return NumericAxis{Name: "synthetic", Lo: lo, Hi: hi, Integer: integer}
}

// TestRefineBracketsMonotoneCrossover: for a strictly monotone metric
// the loop must bracket the exact crossover within the requested axis
// tolerance, with metrics straddling the target.
func TestRefineBracketsMonotoneCrossover(t *testing.T) {
	// metric(v) = 0.5e-6 + 2e-6·v: crosses 1.5e-6 exactly at v = 0.5.
	metric := func(v float64) float64 { return 0.5e-6 + 2e-6*v }
	evals := 0
	eval := func(v float64) Evaluation {
		evals++
		return Evaluation{Value: v, Metric: metric(v)}
	}
	const target, tol, crossing = 1.5e-6, 1e-3, 0.5
	r := refineLoop(syntheticAxis(0, 0.9, false), target, tol, eval)
	if !r.Bracketed {
		t.Fatalf("crossover not bracketed: %+v", r)
	}
	if r.Hi.Value-r.Lo.Value > tol {
		t.Errorf("bracket width %g > tol %g", r.Hi.Value-r.Lo.Value, tol)
	}
	if r.Lo.Value > crossing || r.Hi.Value < crossing {
		t.Errorf("bracket [%g, %g] excludes the true crossing %g", r.Lo.Value, r.Hi.Value, crossing)
	}
	if (r.Lo.Metric >= target) == (r.Hi.Metric >= target) {
		t.Errorf("bracket metrics %g/%g do not straddle target %g", r.Lo.Metric, r.Hi.Metric, target)
	}
	if len(r.Evals) != evals {
		t.Errorf("recorded %d evals, performed %d", len(r.Evals), evals)
	}
	// Bisection cost: 2 ends + ~log2(range/tol) midpoints.
	if max := 2 + int(math.Ceil(math.Log2(0.9/tol))) + 1; evals > max {
		t.Errorf("evals = %d, want <= %d", evals, max)
	}
}

// A decreasing metric must bracket just as well (sign-based bisection).
func TestRefineDecreasingMetric(t *testing.T) {
	eval := func(v float64) Evaluation {
		return Evaluation{Value: v, Metric: 10 - v} // crosses 4 at v = 6
	}
	r := refineLoop(syntheticAxis(0, 32, false), 4, 0.125, eval)
	if !r.Bracketed || r.Lo.Value > 6 || r.Hi.Value < 6 {
		t.Fatalf("decreasing metric not bracketed around 6: %+v", r)
	}
	if r.Hi.Value-r.Lo.Value > 0.125 {
		t.Errorf("bracket width %g > tol", r.Hi.Value-r.Lo.Value)
	}
}

// TestRefineNoCrossover: when the target lies outside the metric range
// the loop reports the unbracketed ends instead of looping.
func TestRefineNoCrossover(t *testing.T) {
	eval := func(v float64) Evaluation { return Evaluation{Value: v, Metric: v} }
	r := refineLoop(syntheticAxis(0, 1, false), 5, 0.01, eval)
	if r.Bracketed {
		t.Fatal("target outside range must not bracket")
	}
	if len(r.Evals) != 2 {
		t.Errorf("no-crossover run evaluated %d points, want just the 2 ends", len(r.Evals))
	}
}

// TestRefineIntegerAxis: integer axes snap midpoints and stop when the
// bracket closes to adjacent integers, even with a tiny tolerance.
func TestRefineIntegerAxis(t *testing.T) {
	var seen []float64
	eval := func(v float64) Evaluation {
		seen = append(seen, v)
		return Evaluation{Value: v, Metric: v * v} // crosses 40 between 6 and 7
	}
	r := refineLoop(syntheticAxis(2, 32, true), 40, 1e-9, eval)
	if !r.Bracketed {
		t.Fatal("integer crossover not bracketed")
	}
	if r.Lo.Value != 6 || r.Hi.Value != 7 {
		t.Errorf("bracket = [%g, %g], want [6, 7]", r.Lo.Value, r.Hi.Value)
	}
	for _, v := range seen {
		if v != math.Trunc(v) {
			t.Errorf("non-integer evaluation %g on integer axis", v)
		}
	}
}

// TestRefineRealCampaign exercises the Run-backed wrapper end to end on
// a tiny spec: evaluations must carry one result per seed and be
// reproducible (the refinement is re-run and compared).
func TestRefineRealCampaign(t *testing.T) {
	spec := testSpec(4)
	spec.Points = nil
	spec.Seeds = []uint64{7, 8}
	spec.WarmupS, spec.WindowS = 2, 4

	ax := StandardNumericAxes()["load"]
	ax.Lo, ax.Hi = 0, 0.4
	run := func() Refinement {
		// Huge target: no crossover expected — only the 2 end evaluations
		// run, keeping the test cheap while covering the Run wiring.
		return Refine(spec, ax, 1.0, 0.1, nil)
	}
	a, b := run(), run()
	if len(a.Evals) != 2 {
		t.Fatalf("evals = %d, want 2", len(a.Evals))
	}
	for _, e := range a.Evals {
		if len(e.Results) != 2 {
			t.Fatalf("evaluation at %g has %d results, want one per seed", e.Value, len(e.Results))
		}
		if math.IsNaN(e.Metric) || e.Metric <= 0 {
			t.Errorf("implausible metric %g at %g", e.Metric, e.Value)
		}
	}
	for i := range a.Evals {
		if a.Evals[i].Metric != b.Evals[i].Metric || a.Evals[i].Value != b.Evals[i].Value {
			t.Errorf("refinement not reproducible at eval %d: %+v vs %+v", i, a.Evals[i], b.Evals[i])
		}
	}
}
