package harness

import (
	"math"
	"testing"
)

// syntheticAxis drives refineLoop with a closed-form metric so the
// bisection contract can be checked without running simulations.
func syntheticAxis(lo, hi float64, integer bool) NumericAxis {
	return NumericAxis{Name: "synthetic", Lo: lo, Hi: hi, Integer: integer}
}

// TestRefineBracketsMonotoneCrossover: for a strictly monotone metric
// the loop must bracket the exact crossover within the requested axis
// tolerance, with metrics straddling the target.
func TestRefineBracketsMonotoneCrossover(t *testing.T) {
	// metric(v) = 0.5e-6 + 2e-6·v: crosses 1.5e-6 exactly at v = 0.5.
	metric := func(v float64) float64 { return 0.5e-6 + 2e-6*v }
	evals := 0
	eval := func(v float64) Evaluation {
		evals++
		return Evaluation{Value: v, Metric: metric(v)}
	}
	const target, tol, crossing = 1.5e-6, 1e-3, 0.5
	r := refineLoop(syntheticAxis(0, 0.9, false), target, tol, eval)
	if !r.Bracketed {
		t.Fatalf("crossover not bracketed: %+v", r)
	}
	if r.Hi.Value-r.Lo.Value > tol {
		t.Errorf("bracket width %g > tol %g", r.Hi.Value-r.Lo.Value, tol)
	}
	if r.Lo.Value > crossing || r.Hi.Value < crossing {
		t.Errorf("bracket [%g, %g] excludes the true crossing %g", r.Lo.Value, r.Hi.Value, crossing)
	}
	if (r.Lo.Metric >= target) == (r.Hi.Metric >= target) {
		t.Errorf("bracket metrics %g/%g do not straddle target %g", r.Lo.Metric, r.Hi.Metric, target)
	}
	if len(r.Evals) != evals {
		t.Errorf("recorded %d evals, performed %d", len(r.Evals), evals)
	}
	// Bisection cost: 2 ends + ~log2(range/tol) midpoints.
	if max := 2 + int(math.Ceil(math.Log2(0.9/tol))) + 1; evals > max {
		t.Errorf("evals = %d, want <= %d", evals, max)
	}
}

// A decreasing metric must bracket just as well (sign-based bisection).
func TestRefineDecreasingMetric(t *testing.T) {
	eval := func(v float64) Evaluation {
		return Evaluation{Value: v, Metric: 10 - v} // crosses 4 at v = 6
	}
	r := refineLoop(syntheticAxis(0, 32, false), 4, 0.125, eval)
	if !r.Bracketed || r.Lo.Value > 6 || r.Hi.Value < 6 {
		t.Fatalf("decreasing metric not bracketed around 6: %+v", r)
	}
	if r.Hi.Value-r.Lo.Value > 0.125 {
		t.Errorf("bracket width %g > tol", r.Hi.Value-r.Lo.Value)
	}
}

// TestRefineNoCrossover: when the target lies outside the metric range
// the loop reports the unbracketed ends instead of looping.
func TestRefineNoCrossover(t *testing.T) {
	eval := func(v float64) Evaluation { return Evaluation{Value: v, Metric: v} }
	r := refineLoop(syntheticAxis(0, 1, false), 5, 0.01, eval)
	if r.Bracketed {
		t.Fatal("target outside range must not bracket")
	}
	if len(r.Evals) != 2 {
		t.Errorf("no-crossover run evaluated %d points, want just the 2 ends", len(r.Evals))
	}
}

// TestRefineIntegerAxis: integer axes snap midpoints and stop when the
// bracket closes to adjacent integers, even with a tiny tolerance.
func TestRefineIntegerAxis(t *testing.T) {
	var seen []float64
	eval := func(v float64) Evaluation {
		seen = append(seen, v)
		return Evaluation{Value: v, Metric: v * v} // crosses 40 between 6 and 7
	}
	r := refineLoop(syntheticAxis(2, 32, true), 40, 1e-9, eval)
	if !r.Bracketed {
		t.Fatal("integer crossover not bracketed")
	}
	if r.Lo.Value != 6 || r.Hi.Value != 7 {
		t.Errorf("bracket = [%g, %g], want [6, 7]", r.Lo.Value, r.Hi.Value)
	}
	for _, v := range seen {
		if v != math.Trunc(v) {
			t.Errorf("non-integer evaluation %g on integer axis", v)
		}
	}
}

// TestRefineCITightIntervalsBisectNormally: when every CI clears the
// target (near-zero seed noise), the variance-aware loop behaves
// exactly like plain bisection — bracketed to tolerance, not
// noise-limited.
func TestRefineCITightIntervalsBisectNormally(t *testing.T) {
	eval := func(v float64) Evaluation {
		m := 0.5e-6 + 2e-6*v // crosses 1.5e-6 at v = 0.5
		return Evaluation{Value: v, Metric: m, CILo: m - 1e-12, CIHi: m + 1e-12}
	}
	r := refineLoopCI(syntheticAxis(0, 0.9, false), 1.5e-6, 1e-3, eval)
	if !r.Bracketed || r.NoiseLimited {
		t.Fatalf("tight-CI run: bracketed=%v noiseLimited=%v", r.Bracketed, r.NoiseLimited)
	}
	if r.Hi.Value-r.Lo.Value > 1e-3 {
		t.Errorf("bracket width %g > tol", r.Hi.Value-r.Lo.Value)
	}
	if r.Lo.Value > 0.5 || r.Hi.Value < 0.5 {
		t.Errorf("bracket [%g, %g] excludes the true crossing 0.5", r.Lo.Value, r.Hi.Value)
	}
}

// TestRefineCIStopsWhenNoiseLimited: a CI that straddles the target at
// the first midpoint must stop the bisection immediately — the bracket
// stays valid (the ends cleared) but refining further would steer on
// noise.
func TestRefineCIStopsWhenNoiseLimited(t *testing.T) {
	const halfWidth = 0.2
	eval := func(v float64) Evaluation {
		return Evaluation{Value: v, Metric: v, CILo: v - halfWidth, CIHi: v + halfWidth}
	}
	// Ends: 0±0.2 < 0.5 and 1±0.2 > 0.5 both clear; midpoint 0.5±0.2
	// straddles.
	r := refineLoopCI(syntheticAxis(0, 1, false), 0.5, 1e-3, eval)
	if !r.Bracketed {
		t.Fatal("ends cleared on opposite sides: crossover should be bracketed")
	}
	if !r.NoiseLimited {
		t.Fatal("straddling midpoint CI must set NoiseLimited")
	}
	if len(r.Evals) != 3 {
		t.Errorf("evals = %d, want 3 (2 ends + the straddling midpoint)", len(r.Evals))
	}
	if r.Lo.Value != 0 || r.Hi.Value != 1 {
		t.Errorf("bracket = [%g, %g], want the untightened [0, 1]", r.Lo.Value, r.Hi.Value)
	}
}

// TestRefineCIEndStraddles: when a range end's own CI straddles the
// target, no crossover direction exists — the run reports the ends,
// unbracketed and noise-limited, without burning midpoint campaigns.
func TestRefineCIEndStraddles(t *testing.T) {
	eval := func(v float64) Evaluation {
		return Evaluation{Value: v, Metric: v, CILo: v - 0.3, CIHi: v + 0.3}
	}
	r := refineLoopCI(syntheticAxis(0, 1, false), 0.2, 1e-3, eval) // lo end 0±0.3 straddles 0.2
	if r.Bracketed {
		t.Fatal("straddling end must not claim a bracket")
	}
	if !r.NoiseLimited {
		t.Fatal("straddling end must set NoiseLimited")
	}
	if len(r.Evals) != 2 {
		t.Errorf("evals = %d, want just the 2 ends", len(r.Evals))
	}
}

// TestRefineCIPartialTightenThenNoiseLimited: the bisection may move a
// bracket end on clean midpoints before hitting a straddling one. The
// run must keep the partially tightened bracket, stay Bracketed, and
// set NoiseLimited.
func TestRefineCIPartialTightenThenNoiseLimited(t *testing.T) {
	// metric(v) = v, target 0.3. CIs are tight except within 0.2 of the
	// crossover. Midpoint order: 0.5 (clears above → hi), then 0.25
	// (straddles → stop).
	eval := func(v float64) Evaluation {
		hw := 0.01
		if math.Abs(v-0.3) < 0.2 {
			hw = 0.2
		}
		return Evaluation{Value: v, Metric: v, CILo: v - hw, CIHi: v + hw}
	}
	r := refineLoopCI(syntheticAxis(0, 1, false), 0.3, 1e-3, eval)
	if !r.Bracketed || !r.NoiseLimited {
		t.Fatalf("partial tighten: bracketed=%v noiseLimited=%v", r.Bracketed, r.NoiseLimited)
	}
	if r.Lo.Value != 0 || r.Hi.Value != 0.5 {
		t.Errorf("bracket = [%g, %g], want the partially tightened [0, 0.5]",
			r.Lo.Value, r.Hi.Value)
	}
	if len(r.Evals) != 4 {
		t.Errorf("evals = %d, want 4 (2 ends, 1 clean midpoint, 1 straddle)", len(r.Evals))
	}
}

// TestRefineCIRealCampaignNoiseLimited drives the Run-backed wrapper
// into the NoiseLimited stop with real simulations: the target is
// placed between the two per-seed metric observations at the low range
// end, so its 2-seed bootstrap CI must straddle it and the refinement
// must stop at the ends.
func TestRefineCIRealCampaignNoiseLimited(t *testing.T) {
	spec := testSpec(4)
	spec.Points = nil
	spec.Seeds = []uint64{7, 8}
	spec.WarmupS, spec.WindowS = 2, 4

	ax := StandardNumericAxes()["load"]
	ax.Lo, ax.Hi = 0, 0.4

	// Probe the low end to learn its per-seed metrics.
	probe := spec
	probe.Points = []Point{ax.Point(ax.Lo)}
	c := Run(probe)
	perSeed := map[uint64]float64{}
	for _, r := range c.Results {
		if r.Err != "" {
			t.Fatalf("probe cell %s errored: %s", r.Key(), r.Err)
		}
		perSeed[r.Seed] = MeanPrecision([]Result{r})
	}
	a, b := perSeed[7], perSeed[8]
	if a == b {
		t.Skip("per-seed metrics coincide; cannot place a straddling target")
	}
	target := (a + b) / 2

	r := RefineCI(spec, ax, target, 0.05, nil, 500)
	if !r.NoiseLimited {
		t.Fatalf("target %g between per-seed observations %g/%g must be noise-limited: %+v",
			target, a, b, r)
	}
	if r.Bracketed {
		t.Error("straddling range end must not claim a bracket")
	}
	if len(r.Evals) != 2 {
		t.Errorf("evals = %d, want just the 2 ends", len(r.Evals))
	}
	lo := r.Evals[0]
	if above, ok := lo.Clears(target); ok {
		t.Errorf("low end unexpectedly cleared the target (above=%v, CI [%g, %g])",
			above, lo.CILo, lo.CIHi)
	}
}

// TestRefineCIRealCampaign exercises the Run-backed variance-aware
// wrapper: per-seed observations feed a deterministic bootstrap, so
// the CI must contain the point metric and the whole refinement must
// be byte-reproducible across re-runs.
func TestRefineCIRealCampaign(t *testing.T) {
	spec := testSpec(4)
	spec.Points = nil
	spec.Seeds = []uint64{7, 8, 9}
	spec.WarmupS, spec.WindowS = 2, 4

	ax := StandardNumericAxes()["load"]
	ax.Lo, ax.Hi = 0, 0.4
	run := func() Refinement {
		// Huge target: only the 2 end evaluations run.
		return RefineCI(spec, ax, 1.0, 0.1, nil, 200)
	}
	a, b := run(), run()
	if len(a.Evals) != 2 {
		t.Fatalf("evals = %d, want 2", len(a.Evals))
	}
	if a.Bracketed || a.NoiseLimited {
		t.Fatalf("target far above range: bracketed=%v noiseLimited=%v", a.Bracketed, a.NoiseLimited)
	}
	for _, e := range a.Evals {
		if len(e.Results) != 3 {
			t.Fatalf("evaluation at %g has %d results, want one per seed", e.Value, len(e.Results))
		}
		if !(e.CILo <= e.Metric && e.Metric <= e.CIHi) {
			t.Errorf("at %g: CI [%g, %g] does not contain metric %g", e.Value, e.CILo, e.CIHi, e.Metric)
		}
		if e.CILo == e.CIHi {
			t.Errorf("at %g: 3-seed bootstrap CI collapsed to a point", e.Value)
		}
	}
	for i := range a.Evals {
		if a.Evals[i].Metric != b.Evals[i].Metric ||
			a.Evals[i].CILo != b.Evals[i].CILo || a.Evals[i].CIHi != b.Evals[i].CIHi {
			t.Errorf("CI refinement not reproducible at eval %d", i)
		}
	}
}

// TestRefineRealCampaign exercises the Run-backed wrapper end to end on
// a tiny spec: evaluations must carry one result per seed and be
// reproducible (the refinement is re-run and compared).
func TestRefineRealCampaign(t *testing.T) {
	spec := testSpec(4)
	spec.Points = nil
	spec.Seeds = []uint64{7, 8}
	spec.WarmupS, spec.WindowS = 2, 4

	ax := StandardNumericAxes()["load"]
	ax.Lo, ax.Hi = 0, 0.4
	run := func() Refinement {
		// Huge target: no crossover expected — only the 2 end evaluations
		// run, keeping the test cheap while covering the Run wiring.
		return Refine(spec, ax, 1.0, 0.1, nil)
	}
	a, b := run(), run()
	if len(a.Evals) != 2 {
		t.Fatalf("evals = %d, want 2", len(a.Evals))
	}
	for _, e := range a.Evals {
		if len(e.Results) != 2 {
			t.Fatalf("evaluation at %g has %d results, want one per seed", e.Value, len(e.Results))
		}
		if math.IsNaN(e.Metric) || e.Metric <= 0 {
			t.Errorf("implausible metric %g at %g", e.Metric, e.Value)
		}
	}
	for i := range a.Evals {
		if a.Evals[i].Metric != b.Evals[i].Metric || a.Evals[i].Value != b.Evals[i].Value {
			t.Errorf("refinement not reproducible at eval %d: %+v vs %+v", i, a.Evals[i], b.Evals[i])
		}
	}
}
