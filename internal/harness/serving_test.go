package harness

import (
	"bytes"
	"strings"
	"testing"

	"ntisim/internal/cluster"
)

// servingSpec is a small serving campaign over a sharded topology:
// clients × arrival grid, 2 seeds.
func servingSpec(workers, shards int) Spec {
	base := cluster.Defaults(4, 1)
	base.Segments = 2
	base.Sync.F = 0
	base.Shards = shards
	base.Serving.RegionalSkew = 1.5
	return Spec{
		Name:         "serving-test",
		Base:         base,
		Points:       Cross(ClientsAxis(20000, 200000), ArrivalAxis()),
		Seeds:        []uint64{3, 4},
		WarmupS:      2,
		WindowS:      8,
		SampleEveryS: 1,
		DelayProbes:  4,
		Workers:      workers,
	}
}

// TestServingByteIdentity is the serving subsystem's determinism
// contract: served-accuracy metrics in the JSONL artifact are
// byte-identical across 1-vs-N campaign workers and 1-vs-N shard
// workers, because arrival streams derive from (seed, node) alone and
// sketches merge exactly.
func TestServingByteIdentity(t *testing.T) {
	ref := Run(servingSpec(1, 1))
	for _, r := range ref.Results {
		if r.Err != "" {
			t.Fatalf("cell %s errored: %s", r.Key(), r.Err)
		}
		if r.Serving == nil {
			t.Fatalf("cell %s: no serving stats", r.Key())
		}
		sv := r.Serving
		if sv.Queries == 0 || sv.QPS == 0 {
			t.Fatalf("cell %s served nothing: %+v", r.Key(), sv)
		}
		if !(sv.ErrP50S <= sv.ErrP99S && sv.ErrP99S <= sv.ErrP999S && sv.ErrP999S <= sv.ErrMaxS) {
			t.Fatalf("cell %s: percentiles out of order: %+v", r.Key(), sv)
		}
	}
	want := jsonl(t, ref)
	if !strings.Contains(string(want), `"serving":{`) {
		t.Fatal("JSONL carries no serving records")
	}
	for _, v := range []struct {
		name            string
		workers, shards int
	}{
		{"4-workers", 4, 1},
		{"2-shards", 1, 2},
		{"4-workers-2-shards", 4, 2},
	} {
		got := jsonl(t, Run(servingSpec(v.workers, v.shards)))
		if !bytes.Equal(want, got) {
			t.Errorf("%s: JSONL differs from the 1-worker 1-shard reference", v.name)
		}
	}
}

// Cells without a population must not emit a serving field at all —
// the omitempty contract that keeps legacy golden artifacts intact.
func TestServingAbsentFromUnservedCells(t *testing.T) {
	c := Run(testSpec(2))
	for _, r := range c.Results {
		if r.Serving != nil {
			t.Fatalf("cell %s has serving stats without a population", r.Key())
		}
	}
	if b := jsonl(t, c); bytes.Contains(b, []byte("serving")) {
		t.Fatal("JSONL mentions serving on a campaign without a population")
	}
}

func TestArrivalAxisPanicsOnUnknown(t *testing.T) {
	defer func() {
		if p := recover(); p == nil {
			t.Fatal("ArrivalAxis accepted an unknown process")
		}
	}()
	ArrivalAxis("uniform")
}

func TestClientsAxisDefaults(t *testing.T) {
	ax := ClientsAxis()
	if len(ax.Points) != 2 {
		t.Fatalf("default points = %d", len(ax.Points))
	}
	var cfg cluster.Config
	ax.Points[1].Mutate(&cfg)
	if cfg.Serving.Clients != 1000000 {
		t.Fatalf("default top population = %d, want 1e6", cfg.Serving.Clients)
	}
	if got, want := ax.Points[0].Params["clients"], "100000"; got != want {
		t.Fatalf("params[clients] = %q, want %q", got, want)
	}
}
