package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ntisim/internal/cluster"
	"ntisim/internal/gps"
	"ntisim/internal/telemetry"
)

func telemetryJSONL(t *testing.T, c *Campaign) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := c.WriteTelemetryJSONL(&buf); err != nil {
		t.Fatalf("WriteTelemetryJSONL: %v", err)
	}
	return buf.Bytes()
}

// TestTelemetryByteIdentityAcrossWorkers extends the harness' core
// determinism guarantee to the telemetry artifact: per-tick metric
// snapshots are pure functions of (config, seed, sim time), so the
// combined JSONL is byte-identical at any worker count.
func TestTelemetryByteIdentityAcrossWorkers(t *testing.T) {
	mk := func(workers int) *Campaign {
		sp := testSpec(workers)
		sp.Telemetry = true
		return Run(sp)
	}
	serial, parallel := mk(1), mk(4)
	for _, r := range serial.Results {
		if r.Err != "" {
			t.Fatalf("cell %s errored: %s", r.Key(), r.Err)
		}
		if len(r.Telemetry) == 0 {
			t.Fatalf("cell %s captured no snapshots", r.Key())
		}
		if len(r.Telemetry) != r.Samples {
			t.Errorf("cell %s: %d snapshots != %d samples", r.Key(), len(r.Telemetry), r.Samples)
		}
	}
	a, b := telemetryJSONL(t, serial), telemetryJSONL(t, parallel)
	if !bytes.Equal(a, b) {
		t.Fatalf("telemetry JSONL differs between 1 and 4 workers")
	}
	// The campaign JSONL (now carrying health) must stay identical too.
	if !bytes.Equal(jsonl(t, serial), jsonl(t, parallel)) {
		t.Fatalf("campaign JSONL differs between 1 and 4 workers")
	}
}

// TestTelemetryByteIdentityAcrossShards is the same guarantee against
// the other execution knob: a multi-segment cell's snapshot stream must
// not depend on how many worker goroutines drive its sharded kernel.
// Counters and histograms merge by name across the per-shard
// registries; gauges stay shard-tagged — either way the decomposition
// is fixed by Segments, never by Shards.
func TestTelemetryByteIdentityAcrossShards(t *testing.T) {
	mk := func(shards int) *Campaign {
		base := cluster.Defaults(8, 1)
		base.Segments = 2
		base.Sync.F = 1
		base.Shards = shards
		sp := Spec{
			Name:         "shard-telemetry",
			Base:         base,
			Points:       NodesAxis(8).Points,
			Seeds:        []uint64{7},
			WarmupS:      2,
			WindowS:      8,
			SampleEveryS: 1,
			DelayProbes:  4,
			Workers:      1,
			Telemetry:    true,
		}
		return Run(sp)
	}
	one, many := mk(1), mk(2)
	for _, r := range one.Results {
		if r.Err != "" {
			t.Fatalf("cell %s errored: %s", r.Key(), r.Err)
		}
	}
	a, b := telemetryJSONL(t, one), telemetryJSONL(t, many)
	if !bytes.Equal(a, b) {
		t.Fatalf("telemetry JSONL differs between shards=1 and shards=2")
	}
	// Sharded cells must actually carry shard-tagged gauges.
	if !bytes.Contains(a, []byte(telemetry.MetricShardEvents+"@0")) ||
		!bytes.Contains(a, []byte(telemetry.MetricShardEvents+"@1")) {
		t.Fatalf("snapshots missing per-shard gauges:\n%s", a)
	}
}

// TestTelemetryWatchdogFiresOnNaiveTrustFault demonstrates a watchdog
// rule firing on a real fault preset: a naive-trust cell with a 20 ms
// GPS offset fault loses interval containment, the harness mirrors the
// violations into the registry, and the cell's Result carries the
// containment-violation flag — while the validated control stays clean.
func TestTelemetryWatchdogFiresOnNaiveTrustFault(t *testing.T) {
	sp := Spec{
		Name: "watchdog",
		Base: cluster.Defaults(4, 1),
		Points: FaultAxis(2,
			FaultScenario{Kind: gps.FaultOffset, Magnitude: 20e-3, StartS: 6, Trust: false},
			FaultScenario{Kind: gps.FaultOffset, Magnitude: 20e-3, StartS: 6, Trust: true},
		).Points,
		Seeds:        []uint64{7},
		WarmupS:      2,
		WindowS:      20,
		SampleEveryS: 1,
		DelayProbes:  4,
		Workers:      1,
		Telemetry:    true,
	}
	c := Run(sp)
	var validated, naive *Result
	for i := range c.Results {
		r := &c.Results[i]
		if r.Err != "" {
			t.Fatalf("cell %s errored: %s", r.Key(), r.Err)
		}
		if strings.Contains(r.Label, "naive-trust") {
			naive = r
		} else {
			validated = r
		}
	}
	if naive.ContainmentViolations == 0 {
		t.Fatalf("naive-trust offset cell reported no containment violations")
	}
	found := false
	for _, f := range naive.Health {
		if f == "containment-violation" {
			found = true
		}
	}
	if !found {
		t.Fatalf("naive-trust cell health = %v, want containment-violation", naive.Health)
	}
	if len(validated.Health) != 0 {
		t.Fatalf("validated cell unexpectedly flagged: %v", validated.Health)
	}
	// The flag must survive into the CSV artifact's health column.
	var csv bytes.Buffer
	if err := c.WriteCSV(&csv); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	if !strings.Contains(csv.String(), "containment-violation") {
		t.Fatalf("CSV missing health flag:\n%s", csv.String())
	}
}

// TestTelemetryArtifactWiring: the combined .telemetry.jsonl appears
// exactly when the spec asks for telemetry.
func TestTelemetryArtifactWiring(t *testing.T) {
	dir := t.TempDir()
	sp := testSpec(2)
	sp.Seeds = []uint64{7}
	sp.Points = NodesAxis(2).Points
	sp.Telemetry = true
	c := Run(sp)
	paths, err := c.WriteArtifacts(dir)
	if err != nil {
		t.Fatalf("WriteArtifacts: %v", err)
	}
	want := filepath.Join(dir, "test.telemetry.jsonl")
	found := false
	for _, p := range paths {
		if p == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("paths %v missing %s", paths, want)
	}
	data, err := os.ReadFile(want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte(`{"cell":0,"t":`)) {
		t.Fatalf("unexpected first line: %.80s", data)
	}

	sp.Telemetry = false
	c2 := Run(sp)
	paths2, err := c2.WriteArtifacts(t.TempDir())
	if err != nil {
		t.Fatalf("WriteArtifacts: %v", err)
	}
	for _, p := range paths2 {
		if strings.Contains(p, "telemetry") {
			t.Fatalf("telemetry artifact written without Spec.Telemetry: %s", p)
		}
	}
	for _, r := range c2.Results {
		if r.Telemetry != nil || r.Health != nil {
			t.Fatalf("cell %s carries telemetry without Spec.Telemetry", r.Key())
		}
	}
}
