package csp

import (
	"testing"
	"testing/quick"

	"ntisim/internal/fixpt"
	"ntisim/internal/timefmt"
)

func samplePacket() Packet {
	p := Packet{
		Kind:     KindCSP,
		Node:     7,
		Dest:     BroadcastNode,
		Round:    42,
		Seq:      1001,
		RatePPB:  -12345,
		TxAlphaM: 17,
		TxAlphaP: 23,
	}
	p.SetTxStamp(timefmt.StampFromTime(fix(123.456)))
	p.EchoReqTx = 111
	p.EchoReqRx = 222
	return p
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := samplePacket()
	b := p.Encode()
	if len(b) != HeaderSize {
		t.Fatalf("encoded size %d", len(b))
	}
	q, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if q != p {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", q, p)
	}
}

func TestTxStampVerifies(t *testing.T) {
	p := samplePacket()
	s, ok := p.TxStamp()
	if !ok {
		t.Fatal("valid tx stamp rejected")
	}
	if s != timefmt.StampFromTime(fix(123.456)) {
		t.Errorf("stamp = %v", s)
	}
	p.TxMacroWord ^= 0xFF00
	if _, ok := p.TxStamp(); ok {
		t.Error("corrupted macrostamp accepted")
	}
}

func TestDecodeShort(t *testing.T) {
	if _, err := Decode(make([]byte, 10)); err != ErrShort {
		t.Errorf("err = %v", err)
	}
}

func TestDecodeBadVersion(t *testing.T) {
	p := samplePacket()
	b := p.Encode()
	b[OffKind+1] = 99
	if _, err := Decode(b); err != ErrVersion {
		t.Errorf("err = %v", err)
	}
}

func TestDecodeChecksumCoversSoftwareFields(t *testing.T) {
	p := samplePacket()
	b := p.Encode()
	b[OffRound] ^= 0x01
	if _, err := Decode(b); err != ErrChecksum {
		t.Errorf("corrupted round not caught: %v", err)
	}
}

func TestHardwareFieldsOutsideChecksum(t *testing.T) {
	// The NTI inserts the stamp block AFTER software computed the
	// checksum; mutating those bytes must not fail Decode. Same for the
	// receiver-written RxSave field.
	p := samplePacket()
	b := p.Encode()
	for _, off := range []int{OffTxTrig, OffTxStamp, OffTxMacro, OffTxAlpha, OffTxAlpha + 2, OffRxSave} {
		b[off] ^= 0xA5
		if _, err := Decode(b); err != nil {
			t.Errorf("hardware write at 0x%02x broke decode: %v", off, err)
		}
	}
}

func TestOffsetsMatchPaper(t *testing.T) {
	// Paper §3.4: trigger on read of 0x14 in the transmit header; stamp
	// registers mapped at 0x18 and 0x20; receive trigger on write of
	// 0x1C; 64-byte headers.
	if OffTxTrig != 0x14 {
		t.Errorf("transmit trigger offset 0x%x, paper says 0x14", OffTxTrig)
	}
	if OffTxStamp != 0x18 || OffTxAlpha != 0x20 {
		t.Errorf("stamp mapping offsets 0x%x/0x%x, paper says 0x18/0x20", OffTxStamp, OffTxAlpha)
	}
	if RxTrigOffset != 0x1C {
		t.Errorf("receive trigger offset 0x%x, paper says 0x1C", RxTrigOffset)
	}
	if HeaderSize != 64 {
		t.Errorf("header size %d, paper says 64", HeaderSize)
	}
}

func TestKindString(t *testing.T) {
	if KindCSP.String() != "CSP" || KindRTTReq.String() != "RTTReq" || KindRTTResp.String() != "RTTResp" {
		t.Error("kind names wrong")
	}
	if Kind(200).String() == "" {
		t.Error("unknown kind should still format")
	}
}

// Property: encode/decode round-trips arbitrary field values.
func TestQuickRoundTrip(t *testing.T) {
	f := func(node, dest, seq uint16, round uint32, rate int32, am, ap uint16, tx int64, erx, etx int64) bool {
		p := Packet{
			Kind: KindRTTResp, Node: node, Dest: dest, Seq: seq, Round: round,
			RatePPB: rate, TxAlphaM: timefmt.Alpha(am), TxAlphaP: timefmt.Alpha(ap),
			EchoReqTx: timefmt.Stamp(etx), EchoReqRx: timefmt.Stamp(erx),
		}
		p.SetTxStamp(timefmt.Stamp(tx & (1<<55 - 1)))
		pp := p
		q, err := Decode(pp.Encode())
		return err == nil && q == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: single-byte corruption of any software field is detected.
func TestQuickChecksumDetection(t *testing.T) {
	f := func(off uint8, x byte) bool {
		o := int(off) % OffTxTrig // software region before the trigger
		if x == 0 {
			x = 1
		}
		p := samplePacket()
		b := p.Encode()
		b[o] ^= x
		_, err := Decode(b)
		// Corrupting the version byte yields ErrVersion; anything else
		// must yield ErrChecksum.
		return err == ErrChecksum || (o == OffKind+1 && err == ErrVersion)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func fix(s float64) fixpt.Time { return fixpt.FromSeconds(s) }

func TestFlagsRoundTrip(t *testing.T) {
	p := samplePacket()
	p.Flags = FlagPrimary
	q, err := Decode(p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if q.Flags&FlagPrimary == 0 {
		t.Error("primary flag lost on the wire")
	}
	// Flags live in the checksummed region: corruption is caught.
	b := p.Encode()
	b[OffFlags] ^= FlagPrimary
	if _, err := Decode(b); err != ErrChecksum {
		t.Errorf("flag corruption not caught: %v", err)
	}
}
