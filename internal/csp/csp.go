// Package csp defines the clock synchronization packet wire format.
//
// A CSP travels inside one link frame whose first 64 bytes are exactly
// the NTI's transmit/receive header (paper §3.4, Fig. 7): packet-specific
// control and routing information at fixed offsets, with the transmit
// time/accuracy stamp transparently inserted by the NTI hardware when the
// COMCO reads the trigger word at offset 0x14. The receiving NTI triggers
// its receive stamp when the COMCO writes offset 0x1C, and software (ISR)
// saves that stamp into the unused tail of the header.
//
// Offsets are part of the hardware/software contract and are tested
// byte-for-byte in package nti (experiment E9).
package csp

import (
	"encoding/binary"
	"errors"
	"fmt"

	"ntisim/internal/timefmt"
)

// Header layout (byte offsets within the 64-byte header).
const (
	OffKind    = 0x00 // packet kind (1 byte) + version (1 byte)
	OffNode    = 0x02 // sending node id (2 bytes)
	OffRound   = 0x04 // synchronization round number (4 bytes)
	OffDest    = 0x08 // destination node id, 0xFFFF = broadcast (2 bytes)
	OffSeq     = 0x0A // per-sender sequence number (2 bytes)
	OffRate    = 0x0C // sender's rate adjustment in ppb (4 bytes, signed)
	OffFlags   = 0x10 // flag bits (1 byte) + 3 reserved
	OffTxTrig  = 0x14 // COMCO read here raises TRANSMIT (4 bytes, don't care)
	OffTxStamp = 0x18 // hardware-inserted transmit timestamp word
	OffTxMacro = 0x1C // hardware-inserted transmit macrostamp word
	OffTxAlpha = 0x20 // hardware-inserted α⁻|α⁺ (2+2 bytes)
	OffEcho    = 0x24 // RTT echo block: req tx stamp (8) + req rx stamp (8)
	OffRxSave  = 0x34 // receiver ISR saves its rx stamp here (8 bytes, not checksummed)
	OffCheck   = 0x3C // header checksum (4 bytes)
	HeaderSize = 0x40 // 64 bytes, matching the NTI's header sections
)

// RxTrigOffset is the offset within a *receive* header whose write by
// the COMCO raises the RECEIVE trigger (paper §3.4: "when the 82596CA
// writes offset 0x1C within a receive header upon reception of a CSP").
// In this model the receive header holds the same CSP image, so the
// trigger fires while the stamp words land in memory.
const RxTrigOffset = 0x1C

// BroadcastNode addresses all nodes.
const BroadcastNode = 0xFFFF

// Flag bits (OffFlags).
const (
	// FlagPrimary marks a CSP whose sender recently validated its clock
	// against an external UTC source (a GPS-equipped "primary" node);
	// secondaries may apply interval-based clock validation against the
	// carried interval.
	FlagPrimary uint8 = 1 << 0
)

// Kind enumerates packet types.
type Kind uint8

const (
	KindInvalid Kind = iota
	KindCSP          // periodic round broadcast carrying A(t)
	KindRTTReq       // round-trip delay measurement probe
	KindRTTResp      // echo of a probe
	KindKernel       // pSOS+m Kernel Interface (KI) message
	KindNet          // pNA+ Network Interface (NI) message
)

func (k Kind) String() string {
	switch k {
	case KindCSP:
		return "CSP"
	case KindRTTReq:
		return "RTTReq"
	case KindRTTResp:
		return "RTTResp"
	case KindKernel:
		return "Kernel"
	case KindNet:
		return "Net"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// version is the wire format revision.
const version = 1

// Packet is the decoded form of a CSP.
type Packet struct {
	Kind  Kind
	Node  uint16 // sender
	Dest  uint16 // receiver or BroadcastNode
	Round uint32
	Seq   uint16

	// RatePPB carries the sender's current clock-rate adjustment for the
	// rate-synchronization algorithm [Scho97].
	RatePPB int32

	// Flags carries sender-role bits (FlagPrimary: the sender's interval
	// is anchored to a validated external UTC source).
	Flags uint8

	// Transmit stamp block — inserted by the sending NTI hardware, not
	// by software. TxStamp/TxMacro are the UTCSU register words; the
	// alphas are the ACU registers at the transmit trigger.
	TxStampWord uint32
	TxMacroWord uint32
	TxAlphaM    timefmt.Alpha
	TxAlphaP    timefmt.Alpha

	// Echo block for KindRTTResp: the probe's hardware transmit stamp
	// and the responder's hardware receive stamp of that probe.
	EchoReqTx timefmt.Stamp
	EchoReqRx timefmt.Stamp
}

// TxStamp reassembles the full 56-bit transmit stamp, verifying the
// macrostamp checksum.
func (p *Packet) TxStamp() (timefmt.Stamp, bool) {
	return timefmt.FromWords(p.TxStampWord, p.TxMacroWord)
}

// SetTxStamp splits a stamp into the hardware register words (used by
// the NTI model when performing transparent insertion).
func (p *Packet) SetTxStamp(s timefmt.Stamp) {
	p.TxStampWord, p.TxMacroWord = s.Words()
}

// Errors returned by Decode.
var (
	ErrShort    = errors.New("csp: packet shorter than header")
	ErrVersion  = errors.New("csp: unknown version")
	ErrChecksum = errors.New("csp: header checksum mismatch")
)

// Encode serializes p into a fresh HeaderSize-byte buffer.
func (p *Packet) Encode() []byte {
	b := make([]byte, HeaderSize)
	b[OffKind] = byte(p.Kind)
	b[OffKind+1] = version
	binary.BigEndian.PutUint16(b[OffNode:], p.Node)
	binary.BigEndian.PutUint32(b[OffRound:], p.Round)
	binary.BigEndian.PutUint16(b[OffDest:], p.Dest)
	binary.BigEndian.PutUint16(b[OffSeq:], p.Seq)
	binary.BigEndian.PutUint32(b[OffRate:], uint32(p.RatePPB))
	b[OffFlags] = p.Flags
	binary.BigEndian.PutUint32(b[OffTxStamp:], p.TxStampWord)
	binary.BigEndian.PutUint32(b[OffTxMacro:], p.TxMacroWord)
	binary.BigEndian.PutUint16(b[OffTxAlpha:], uint16(p.TxAlphaM))
	binary.BigEndian.PutUint16(b[OffTxAlpha+2:], uint16(p.TxAlphaP))
	binary.BigEndian.PutUint64(b[OffEcho:], uint64(p.EchoReqTx))
	binary.BigEndian.PutUint64(b[OffEcho+8:], uint64(p.EchoReqRx))
	binary.BigEndian.PutUint32(b[OffCheck:], headerCheck(b))
	return b
}

// Decode parses a header buffer. The stamp words inserted by hardware
// after software computed the checksum are excluded from the check, as
// the real driver must also arrange (the checksum covers the software-
// written fields only).
func Decode(b []byte) (Packet, error) {
	var p Packet
	if len(b) < HeaderSize {
		return p, ErrShort
	}
	if b[OffKind+1] != version {
		return p, ErrVersion
	}
	if binary.BigEndian.Uint32(b[OffCheck:]) != headerCheck(b) {
		return p, ErrChecksum
	}
	p.Kind = Kind(b[OffKind])
	p.Node = binary.BigEndian.Uint16(b[OffNode:])
	p.Round = binary.BigEndian.Uint32(b[OffRound:])
	p.Dest = binary.BigEndian.Uint16(b[OffDest:])
	p.Seq = binary.BigEndian.Uint16(b[OffSeq:])
	p.RatePPB = int32(binary.BigEndian.Uint32(b[OffRate:]))
	p.Flags = b[OffFlags]
	p.TxStampWord = binary.BigEndian.Uint32(b[OffTxStamp:])
	p.TxMacroWord = binary.BigEndian.Uint32(b[OffTxMacro:])
	p.TxAlphaM = timefmt.Alpha(binary.BigEndian.Uint16(b[OffTxAlpha:]))
	p.TxAlphaP = timefmt.Alpha(binary.BigEndian.Uint16(b[OffTxAlpha+2:]))
	p.EchoReqTx = timefmt.Stamp(binary.BigEndian.Uint64(b[OffEcho:]))
	p.EchoReqRx = timefmt.Stamp(binary.BigEndian.Uint64(b[OffEcho+8:]))
	return p, nil
}

// headerCheck is a FNV-32 over the software-written header region,
// skipping the hardware-inserted stamp block (0x14..0x23) and the
// checksum field itself.
func headerCheck(b []byte) uint32 {
	h := uint32(2166136261)
	mix := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			h ^= uint32(b[i])
			h *= 16777619
		}
	}
	mix(0, OffTxTrig)
	// The echo block is software-written by the sender; RxSave (0x34) is
	// receiver-written after verification and must stay outside the check.
	mix(OffEcho, OffRxSave)
	return h
}
