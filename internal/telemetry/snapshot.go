package telemetry

// GaugeValue is a gauge's level and high-water mark at snapshot time.
type GaugeValue struct {
	V  float64 `json:"v"`
	Hi float64 `json:"hi"`
}

// HistValue summarizes a histogram at snapshot time.
type HistValue struct {
	N    uint64  `json:"n"`
	Min  float64 `json:"min"`
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

// Snapshot is the merged state of one or more registries at a sim time.
// Everything in it is a pure function of (config, seed, sim time), so
// marshaling one (encoding/json sorts map keys) yields identical bytes on
// every run regardless of worker or shard-worker counts.
type Snapshot struct {
	T        float64               `json:"t"`
	Counters map[string]uint64     `json:"counters,omitempty"`
	Gauges   map[string]GaugeValue `json:"gauges,omitempty"`
	Hists    map[string]HistValue  `json:"hists,omitempty"`
}

// Capture merges the given registries into a Snapshot at sim time t. Call
// it only at a barrier (between Group windows / after RunUntil returns):
// registries are not thread-safe and Capture reads them directly.
//
// Merge rules: counters and histograms combine by plain name (sums and
// elementwise bin adds — shard decomposition is fixed by config, so totals
// are invariant under worker counts); gauges keep per-shard identities via
// the "name@shard" key of a tagged registry; GaugeFunc callbacks are
// evaluated here, never on the hot path. Nil registries are skipped.
func Capture(t float64, regs ...*Registry) Snapshot {
	s := Snapshot{
		T:        t,
		Counters: map[string]uint64{},
		Gauges:   map[string]GaugeValue{},
		Hists:    map[string]HistValue{},
	}
	merged := map[string]*Histogram{}
	for _, r := range regs {
		if r == nil {
			continue
		}
		for _, name := range sortedKeys(r.counters) {
			s.Counters[name] += r.counters[name].v
		}
		for _, name := range sortedKeys(r.gauges) {
			g := r.gauges[name]
			s.Gauges[r.gaugeKey(name)] = GaugeValue{V: g.v, Hi: g.hi}
		}
		for _, name := range sortedKeys(r.fns) {
			v := r.fns[name]()
			s.Gauges[r.gaugeKey(name)] = GaugeValue{V: v, Hi: v}
		}
		for _, name := range sortedKeys(r.hists) {
			m := merged[name]
			if m == nil {
				m = newHistogram()
				merged[name] = m
			}
			m.merge(r.hists[name])
		}
	}
	for name, h := range merged {
		s.Hists[name] = h.stats()
	}
	if len(s.Counters) == 0 {
		s.Counters = nil
	}
	if len(s.Gauges) == 0 {
		s.Gauges = nil
	}
	if len(s.Hists) == 0 {
		s.Hists = nil
	}
	return s
}
