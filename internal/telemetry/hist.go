package telemetry

import "math"

// Histogram is a log-binned streaming histogram in the spirit of the
// internal/service quantile sketch, rebuilt on math.Frexp so telemetry
// stays stdlib-only (service imports sim, sim imports telemetry — reusing
// service.Sketch would cycle). Each octave [2^(e-1), 2^e) is split into
// histSub equal-width sub-bins, giving a worst-case relative quantile
// error of 1/(2·histSub) ≈ 6% — coarse but cheap, and exact min/max/sum
// are carried alongside. Only non-negative observations are expected;
// negative values clamp into the underflow bin. Not thread-safe.
type Histogram struct {
	n        uint64
	sum      float64
	min, max float64
	zero     uint64 // observations below the smallest representable bin
	over     uint64 // observations at or above 2^histMaxExp
	bins     [histBins]uint32
}

const (
	histSub    = 8   // sub-bins per octave
	histMinExp = -40 // smallest tracked octave: [2^-41, 2^-40) ≈ 4.5e-13
	histMaxExp = 40  // largest tracked value: < 2^40 ≈ 1.1e12
	histBins   = (histMaxExp - histMinExp) * histSub
)

func newHistogram() *Histogram {
	return &Histogram{min: math.Inf(1), max: math.Inf(-1)}
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.n++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	idx := histIndex(v)
	switch {
	case idx < 0:
		h.zero++
	case idx >= histBins:
		h.over++
	default:
		h.bins[idx]++
	}
}

// ObserveN records the same value n times (one tick-batched arrival burst,
// say). No-op on a nil receiver.
func (h *Histogram) ObserveN(v float64, n uint64) {
	if h == nil || n == 0 {
		return
	}
	h.n += n
	h.sum += v * float64(n)
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	idx := histIndex(v)
	switch {
	case idx < 0:
		h.zero += n
	case idx >= histBins:
		h.over += n
	default:
		h.bins[idx] += uint32(n)
	}
}

// N returns the observation count (0 on a nil receiver).
func (h *Histogram) N() uint64 {
	if h == nil {
		return 0
	}
	return h.n
}

// histIndex maps v to its bin, -1 for underflow (including zero and
// negatives) and >= histBins for overflow.
func histIndex(v float64) int {
	if v <= 0 {
		return -1
	}
	f, e := math.Frexp(v) // v = f·2^e with f ∈ [0.5, 1)
	if e <= histMinExp {
		return -1
	}
	if e > histMaxExp {
		return histBins
	}
	sub := int((f - 0.5) * 2 * histSub)
	if sub >= histSub {
		sub = histSub - 1
	}
	return (e-1-histMinExp)*histSub + sub
}

// binMid returns the midpoint of bin idx, the value reported for
// quantiles that land in it.
func binMid(idx int) float64 {
	e := idx/histSub + 1 + histMinExp
	sub := idx % histSub
	return math.Ldexp(0.5+(float64(sub)+0.5)/(2*histSub), e)
}

// merge folds o into h elementwise; exact because bins are aligned.
func (h *Histogram) merge(o *Histogram) {
	if o == nil || o.n == 0 {
		return
	}
	h.n += o.n
	h.sum += o.sum
	if o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.zero += o.zero
	h.over += o.over
	for i, c := range o.bins {
		h.bins[i] += c
	}
}

// quantile returns the q-quantile (q ∈ [0,1]) as a bin midpoint clamped to
// the exact observed [min, max].
func (h *Histogram) quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	rank := uint64(q * float64(h.n-1))
	if rank >= h.n {
		rank = h.n - 1
	}
	v := h.max
	switch cum := h.zero; {
	case rank < cum:
		v = h.min
	default:
		v = h.max // falls through to overflow if bins never cover rank
		for i := range h.bins {
			cum += uint64(h.bins[i])
			if rank < cum {
				v = binMid(i)
				break
			}
		}
	}
	if v < h.min {
		v = h.min
	}
	if v > h.max {
		v = h.max
	}
	return v
}

// stats summarizes the histogram for a snapshot.
func (h *Histogram) stats() HistValue {
	if h == nil || h.n == 0 {
		return HistValue{}
	}
	return HistValue{
		N:    h.n,
		Min:  h.min,
		Mean: h.sum / float64(h.n),
		P50:  h.quantile(0.50),
		P90:  h.quantile(0.90),
		P99:  h.quantile(0.99),
		Max:  h.max,
	}
}
