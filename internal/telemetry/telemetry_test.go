package telemetry

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// TestNilHandlesAreNoOps: the entire disabled path — nil registry, nil
// handles — must be callable and free.
func TestNilHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z")
	r.GaugeFunc("f", func() float64 { return 1 })
	r.SetShard(3)
	c.Add(5)
	c.Inc()
	g.Set(1)
	g.Add(2)
	h.Observe(3)
	h.ObserveN(4, 2)
	if c.Value() != 0 || g.Value() != 0 || g.Hi() != 0 || h.N() != 0 {
		t.Fatalf("nil handles leaked state")
	}
	if r.Shard() != -1 {
		t.Fatalf("nil registry shard = %d", r.Shard())
	}
	var w *Watchdog
	w.Observe(Snapshot{})
	if w.Flags() != nil {
		t.Fatalf("nil watchdog flagged")
	}
	var m *Monitor
	m.Begin("x", 1)
	m.CellStart(0, "c")
	m.CellEnd(0, "c", 1, nil, false)
	m.Publish(Snapshot{})
	if st := m.Status(); st.Total != 0 {
		t.Fatalf("nil monitor status = %+v", st)
	}
}

// TestDisabledPathAllocFree pins the core acceptance property: with no
// registry configured, every update site costs zero allocations.
func TestDisabledPathAllocFree(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		g.Set(1.5)
		g.Add(0.5)
		h.Observe(1e-6)
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates %v allocs/op", allocs)
	}
}

// TestEnabledSteadyStateAllocFree: after handles exist, updates allocate
// nothing either.
func TestEnabledSteadyStateAllocFree(t *testing.T) {
	r := New()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(2)
		h.Observe(1e-3)
	})
	if allocs != 0 {
		t.Fatalf("enabled steady state allocates %v allocs/op", allocs)
	}
}

func TestCounterGauge(t *testing.T) {
	r := New()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("c") != c {
		t.Fatalf("second lookup returned a new counter")
	}
	g := r.Gauge("g")
	g.Set(10)
	g.Set(3)
	if g.Value() != 3 || g.Hi() != 10 {
		t.Fatalf("gauge v=%g hi=%g, want 3/10", g.Value(), g.Hi())
	}
	a := r.Gauge("acc")
	a.Add(1.5)
	a.Add(2.5)
	if a.Value() != 4 || a.Hi() != 4 {
		t.Fatalf("accumulator v=%g hi=%g, want 4/4", a.Value(), a.Hi())
	}
}

// TestHistogramQuantiles checks relative accuracy on a known distribution.
func TestHistogramQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("h")
	// 1..10000 µs uniform: p50 ≈ 5000 µs, p99 ≈ 9900 µs.
	for i := 1; i <= 10000; i++ {
		h.Observe(float64(i) * 1e-6)
	}
	st := h.stats()
	if st.N != 10000 {
		t.Fatalf("n = %d", st.N)
	}
	if st.Min != 1e-6 || st.Max != 1e-2 {
		t.Fatalf("min/max = %g/%g", st.Min, st.Max)
	}
	if rel := math.Abs(st.P50-5e-3) / 5e-3; rel > 0.07 {
		t.Fatalf("p50 = %g, rel err %.3f > 7%%", st.P50, rel)
	}
	if rel := math.Abs(st.P99-9.9e-3) / 9.9e-3; rel > 0.07 {
		t.Fatalf("p99 = %g, rel err %.3f > 7%%", st.P99, rel)
	}
	if mean := st.Mean; math.Abs(mean-5.0005e-3)/5e-3 > 1e-9 {
		t.Fatalf("mean = %g (exact sum expected)", mean)
	}
}

func TestHistogramEdges(t *testing.T) {
	r := New()
	h := r.Histogram("h")
	h.Observe(0)
	h.Observe(-1)
	h.Observe(1e300) // overflow bin
	h.ObserveN(2.5, 3)
	st := h.stats()
	if st.N != 6 {
		t.Fatalf("n = %d, want 6", st.N)
	}
	if st.Min != -1 || st.Max != 1e300 {
		t.Fatalf("min/max = %g/%g", st.Min, st.Max)
	}
	// p50 (rank 2 of 0-indexed 5) falls in the 2.5 bin.
	if st.P50 < 2.3 || st.P50 > 2.7 {
		t.Fatalf("p50 = %g, want ≈2.5", st.P50)
	}
	if (&Histogram{}).stats() != (HistValue{}) {
		t.Fatalf("empty histogram stats non-zero")
	}
}

// TestCaptureMerge: counters and hists sum across registries; gauges from
// shard-tagged registries keep per-shard keys.
func TestCaptureMerge(t *testing.T) {
	a, b := New(), New()
	a.SetShard(0)
	b.SetShard(1)
	a.Counter("ev").Add(10)
	b.Counter("ev").Add(32)
	a.Gauge("depth").Set(5)
	b.Gauge("depth").Set(7)
	a.Histogram("lat").Observe(1e-3)
	b.Histogram("lat").Observe(4e-3)
	b.GaugeFunc("pool", func() float64 { return 99 })
	s := Capture(12.5, a, b, nil)
	if s.T != 12.5 {
		t.Fatalf("t = %g", s.T)
	}
	if s.Counters["ev"] != 42 {
		t.Fatalf("merged counter = %d, want 42", s.Counters["ev"])
	}
	if s.Gauges["depth@0"].V != 5 || s.Gauges["depth@1"].V != 7 {
		t.Fatalf("gauges = %+v", s.Gauges)
	}
	if s.Gauges["pool@1"].V != 99 {
		t.Fatalf("gauge func = %+v", s.Gauges["pool@1"])
	}
	if h := s.Hists["lat"]; h.N != 2 || h.Min != 1e-3 || h.Max != 4e-3 {
		t.Fatalf("merged hist = %+v", h)
	}
	// Untagged registry gauges keep plain keys.
	c := New()
	c.Gauge("depth").Set(1)
	if s2 := Capture(0, c); s2.Gauges["depth"].V != 1 {
		t.Fatalf("untagged gauge key missing: %+v", s2.Gauges)
	}
}

// TestSnapshotJSONDeterministic: marshaling sorts map keys, so two
// captures of identical state yield identical bytes.
func TestSnapshotJSONDeterministic(t *testing.T) {
	mk := func() []byte {
		r := New()
		for _, n := range []string{"z", "a", "m", "q"} {
			r.Counter(n).Add(7)
			r.Gauge("g." + n).Set(1)
		}
		r.Histogram("h").ObserveN(1e-3, 5)
		b, err := json.Marshal(Capture(3, r))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	x, y := mk(), mk()
	if string(x) != string(y) {
		t.Fatalf("non-deterministic snapshot JSON:\n%s\n%s", x, y)
	}
	if !strings.Contains(string(x), `"t":3`) {
		t.Fatalf("snapshot JSON missing t: %s", x)
	}
	// Empty snapshot omits the maps entirely.
	e, _ := json.Marshal(Capture(1))
	if string(e) != `{"t":1}` {
		t.Fatalf("empty snapshot = %s", e)
	}
}

func TestWatchdogContainmentAndConvergence(t *testing.T) {
	w := NewWatchdog(WatchdogConfig{})
	w.Observe(Snapshot{Counters: map[string]uint64{MetricContainment: 0}})
	if w.Flags() != nil {
		t.Fatalf("flagged healthy snapshot: %v", w.Flags())
	}
	w.Observe(Snapshot{Counters: map[string]uint64{
		MetricContainment:       2,
		MetricConvergenceFailed: 1,
	}})
	got := w.Flags()
	want := []string{"containment-violation", "convergence-failures"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("flags = %v, want %v", got, want)
	}
	// Flags latch even after counters stop growing.
	w.Observe(Snapshot{})
	if len(w.Flags()) != 2 {
		t.Fatalf("flags unlatched: %v", w.Flags())
	}
	// Limits suppress.
	w2 := NewWatchdog(WatchdogConfig{ContainmentLimit: 5, ConvergenceFailLimit: 5})
	w2.Observe(Snapshot{Counters: map[string]uint64{MetricContainment: 5, MetricConvergenceFailed: 3}})
	if w2.Flags() != nil {
		t.Fatalf("limit not honored: %v", w2.Flags())
	}
}

func TestWatchdogQueueRunaway(t *testing.T) {
	w := NewWatchdog(WatchdogConfig{QueueDepthLimit: 100})
	w.Observe(Snapshot{Gauges: map[string]GaugeValue{MetricQueueDepth + "@2": {V: 5, Hi: 101}}})
	if f := w.Flags(); len(f) != 1 || f[0] != "queue-depth-runaway" {
		t.Fatalf("flags = %v", f)
	}
}

func TestWatchdogShardStall(t *testing.T) {
	w := NewWatchdog(WatchdogConfig{StallSnapshots: 2})
	snap := func(fired uint64, s0, s1 float64) Snapshot {
		return Snapshot{
			Counters: map[string]uint64{MetricEventsFired: fired},
			Gauges: map[string]GaugeValue{
				MetricShardEvents + "@0": {V: s0},
				MetricShardEvents + "@1": {V: s1},
			},
		}
	}
	w.Observe(snap(100, 50, 50))
	w.Observe(snap(200, 100, 50)) // shard 1 frozen while cluster advances
	if w.Flags() != nil {
		t.Fatalf("stall flagged too early: %v", w.Flags())
	}
	w.Observe(snap(300, 150, 50))
	if f := w.Flags(); len(f) != 1 || f[0] != "shard-stall@1" {
		t.Fatalf("flags = %v, want [shard-stall@1]", f)
	}
	// A healthy cluster where everything pauses (no fired growth) never
	// counts as a stall.
	w2 := NewWatchdog(WatchdogConfig{StallSnapshots: 2})
	w2.Observe(snap(100, 50, 50))
	w2.Observe(snap(100, 50, 50))
	w2.Observe(snap(100, 50, 50))
	if w2.Flags() != nil {
		t.Fatalf("global pause misflagged: %v", w2.Flags())
	}
}

func TestPromRendering(t *testing.T) {
	var sb strings.Builder
	snap := Snapshot{
		T:        2,
		Counters: map[string]uint64{"sim.events_fired": 7},
		Gauges:   map[string]GaugeValue{"sim.queue_depth@3": {V: 4, Hi: 9}},
		Hists:    map[string]HistValue{"sync.fused_width_s": {N: 1, P50: 2e-6, P90: 2e-6, P99: 2e-6, Mean: 2e-6}},
	}
	WriteProm(&sb, CampaignStatus{Total: 4, Done: 1, Snapshot: &snap})
	out := sb.String()
	for _, want := range []string{
		"nti_cells_total 4",
		"nti_sim_events_fired 7",
		`nti_sim_queue_depth{shard="3"} 4`,
		`nti_sim_queue_depth_hi{shard="3"} 9`,
		`nti_sync_fused_width_s{quantile="0.99"} 2e-06`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom output missing %q:\n%s", want, out)
		}
	}
}
