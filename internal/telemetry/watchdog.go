package telemetry

import (
	"sort"
	"strings"
)

// Metric names the watchdog rules key on. Layers register these exact
// names; the watchdog only sees merged snapshots, so it is decoupled from
// the instrumented packages.
const (
	// MetricContainment counts reference-interval containment violations
	// observed by the harness sample loop.
	MetricContainment = "sync.containment_violations"
	// MetricConvergenceFailed counts clocksync rounds whose interval
	// fusion failed to produce a valid result.
	MetricConvergenceFailed = "sync.convergence_failed"
	// MetricQueueDepth is the event-queue depth gauge (per shard when
	// sharded: "sim.queue_depth@N").
	MetricQueueDepth = "sim.queue_depth"
	// MetricShardEvents is the cumulative per-shard fired-event gauge
	// ("group.shard_events@N"), used for stall detection.
	MetricShardEvents = "group.shard_events"
	// MetricEventsFired is the merged fired-event counter.
	MetricEventsFired = "sim.events_fired"
)

// WatchdogConfig sets the health-rule thresholds. The zero value gets
// sane defaults from NewWatchdog.
type WatchdogConfig struct {
	// QueueDepthLimit flags "queue-depth-runaway" when any event-queue
	// depth high-water exceeds it. Default 1<<20.
	QueueDepthLimit float64 `json:"queue_depth_limit,omitempty"`
	// StallSnapshots flags "shard-stall@N" when shard N fires no events
	// for this many consecutive snapshots while the rest of the cluster
	// advances. Default 3.
	StallSnapshots int `json:"stall_snapshots,omitempty"`
	// ContainmentLimit flags "containment-violation" when the violation
	// counter exceeds it. Default 0 (any violation flags).
	ContainmentLimit uint64 `json:"containment_limit,omitempty"`
	// ConvergenceFailLimit flags "convergence-failures" when the failed
	// round counter exceeds it. Default 0.
	ConvergenceFailLimit uint64 `json:"convergence_fail_limit,omitempty"`
}

func (c WatchdogConfig) withDefaults() WatchdogConfig {
	if c.QueueDepthLimit == 0 {
		c.QueueDepthLimit = 1 << 20
	}
	if c.StallSnapshots == 0 {
		c.StallSnapshots = 3
	}
	return c
}

// Watchdog evaluates health rules over the snapshot sequence of one cell.
// Rules are pure functions of snapshot contents (sim-domain), so the flags
// a cell earns are as deterministic as the snapshots themselves. Flags
// latch: once raised they stay raised for the cell.
type Watchdog struct {
	cfg        WatchdogConfig
	prevShard  map[string]float64 // last seen per-shard cumulative events
	prevFired  uint64
	stallCount map[string]int
	flags      map[string]bool
}

// NewWatchdog returns a watchdog with defaults applied to cfg.
func NewWatchdog(cfg WatchdogConfig) *Watchdog {
	return &Watchdog{
		cfg:        cfg.withDefaults(),
		prevShard:  map[string]float64{},
		stallCount: map[string]int{},
		flags:      map[string]bool{},
	}
}

// Observe evaluates every rule against one snapshot. No-op on nil.
func (w *Watchdog) Observe(s Snapshot) {
	if w == nil {
		return
	}
	if s.Counters[MetricContainment] > w.cfg.ContainmentLimit {
		w.flags["containment-violation"] = true
	}
	if s.Counters[MetricConvergenceFailed] > w.cfg.ConvergenceFailLimit {
		w.flags["convergence-failures"] = true
	}
	for key, g := range s.Gauges {
		if key == MetricQueueDepth || strings.HasPrefix(key, MetricQueueDepth+"@") {
			if g.Hi > w.cfg.QueueDepthLimit {
				w.flags["queue-depth-runaway"] = true
			}
		}
	}
	fired := s.Counters[MetricEventsFired]
	advancing := fired > w.prevFired
	for key, g := range s.Gauges {
		if !strings.HasPrefix(key, MetricShardEvents+"@") {
			continue
		}
		prev, seen := w.prevShard[key]
		if seen && g.V == prev && advancing {
			w.stallCount[key]++
			if w.stallCount[key] >= w.cfg.StallSnapshots {
				w.flags["shard-stall@"+key[len(MetricShardEvents)+1:]] = true
			}
		} else if g.V != prev {
			w.stallCount[key] = 0
		}
		w.prevShard[key] = g.V
	}
	w.prevFired = fired
}

// Flags returns the latched health flags, sorted. Nil (not empty) when
// healthy, so a Result's omitempty health field stays absent.
func (w *Watchdog) Flags() []string {
	if w == nil || len(w.flags) == 0 {
		return nil
	}
	fs := make([]string, 0, len(w.flags))
	for f := range w.flags {
		fs = append(fs, f)
	}
	sort.Strings(fs)
	return fs
}
