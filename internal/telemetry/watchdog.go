package telemetry

import (
	"sort"
	"strings"
)

// Metric names the watchdog rules key on. Layers register these exact
// names; the watchdog only sees merged snapshots, so it is decoupled from
// the instrumented packages.
const (
	// MetricContainment counts reference-interval containment violations
	// observed by the harness sample loop.
	MetricContainment = "sync.containment_violations"
	// MetricConvergenceFailed counts clocksync rounds whose interval
	// fusion failed to produce a valid result.
	MetricConvergenceFailed = "sync.convergence_failed"
	// MetricQueueDepth is the event-queue depth gauge (per shard when
	// sharded: "sim.queue_depth@N").
	MetricQueueDepth = "sim.queue_depth"
	// MetricShardEvents is the cumulative per-shard fired-event gauge
	// ("group.shard_events@N"), used for stall detection.
	MetricShardEvents = "group.shard_events"
	// MetricEventsFired is the merged fired-event counter.
	MetricEventsFired = "sim.events_fired"
	// MetricHonestContainment counts containment violations on honest
	// (non-traitor) nodes only, maintained by the harness sample loop on
	// adversarial cells. A traitor steering its own clock off true time
	// is working as configured; an *honest* node losing containment
	// means the Byzantine tolerance bound was actually exceeded.
	MetricHonestContainment = "sync.honest_containment_violations"
)

// WatchdogConfig sets the health-rule thresholds. The zero value gets
// sane defaults from NewWatchdog.
type WatchdogConfig struct {
	// QueueDepthLimit flags "queue-depth-runaway" when any event-queue
	// depth high-water exceeds it. Default 1<<20.
	QueueDepthLimit float64 `json:"queue_depth_limit,omitempty"`
	// StallSnapshots flags "shard-stall@N" when shard N fires no events
	// for this many consecutive snapshots while the rest of the cluster
	// advances. Default 3.
	StallSnapshots int `json:"stall_snapshots,omitempty"`
	// ContainmentLimit flags "containment-violation" when the violation
	// counter exceeds it. Default 0 (any violation flags).
	ContainmentLimit uint64 `json:"containment_limit,omitempty"`
	// ConvergenceFailLimit flags "convergence-failures" when the failed
	// round counter exceeds it. Default 0.
	ConvergenceFailLimit uint64 `json:"convergence_fail_limit,omitempty"`
	// PrecisionDriftWindow enables the trend rule: precision getting
	// strictly worse for this many consecutive ObservePrecision calls
	// latches "precision-drift". 0 (the default) disables the rule, so
	// cells that never opt in keep their exact legacy flag sets.
	PrecisionDriftWindow int `json:"precision_drift_window,omitempty"`
}

func (c WatchdogConfig) withDefaults() WatchdogConfig {
	if c.QueueDepthLimit == 0 {
		c.QueueDepthLimit = 1 << 20
	}
	if c.StallSnapshots == 0 {
		c.StallSnapshots = 3
	}
	return c
}

// Watchdog evaluates health rules over the snapshot sequence of one cell.
// Rules are pure functions of snapshot contents (sim-domain), so the flags
// a cell earns are as deterministic as the snapshots themselves. Flags
// latch: once raised they stay raised for the cell.
type Watchdog struct {
	cfg        WatchdogConfig
	prevShard  map[string]float64 // last seen per-shard cumulative events
	prevFired  uint64
	stallCount map[string]int
	flags      map[string]bool
	// Precision-trend state (PrecisionDriftWindow > 0): the previous
	// observation and the current strictly-worsening streak length.
	prevPrecision float64
	driftStreak   int
	precisionSeen bool
}

// NewWatchdog returns a watchdog with defaults applied to cfg.
func NewWatchdog(cfg WatchdogConfig) *Watchdog {
	return &Watchdog{
		cfg:        cfg.withDefaults(),
		prevShard:  map[string]float64{},
		stallCount: map[string]int{},
		flags:      map[string]bool{},
	}
}

// Observe evaluates every rule against one snapshot. No-op on nil.
func (w *Watchdog) Observe(s Snapshot) {
	if w == nil {
		return
	}
	if s.Counters[MetricContainment] > w.cfg.ContainmentLimit {
		w.flags["containment-violation"] = true
	}
	if s.Counters[MetricConvergenceFailed] > w.cfg.ConvergenceFailLimit {
		w.flags["convergence-failures"] = true
	}
	if s.Counters[MetricHonestContainment] > 0 {
		// Safe unconditionally: the metric only exists in snapshots of
		// adversarial cells (registered there by the harness).
		w.flags["honest-containment"] = true
	}
	for key, g := range s.Gauges {
		if key == MetricQueueDepth || strings.HasPrefix(key, MetricQueueDepth+"@") {
			if g.Hi > w.cfg.QueueDepthLimit {
				w.flags["queue-depth-runaway"] = true
			}
		}
	}
	fired := s.Counters[MetricEventsFired]
	advancing := fired > w.prevFired
	for key, g := range s.Gauges {
		if !strings.HasPrefix(key, MetricShardEvents+"@") {
			continue
		}
		prev, seen := w.prevShard[key]
		if seen && g.V == prev && advancing {
			w.stallCount[key]++
			if w.stallCount[key] >= w.cfg.StallSnapshots {
				w.flags["shard-stall@"+key[len(MetricShardEvents)+1:]] = true
			}
		} else if g.V != prev {
			w.stallCount[key] = 0
		}
		w.prevShard[key] = g.V
	}
	w.prevFired = fired
}

// ObservePrecision feeds the trend rule one per-snapshot precision
// sample (seconds; smaller is better). A run of cfg.PrecisionDriftWindow
// consecutive strictly-worsening samples latches "precision-drift" —
// the "drifting monotonically worse" failure mode absolute limits can't
// see until it is far gone. No-op on nil or when the rule is disabled.
func (w *Watchdog) ObservePrecision(p float64) {
	if w == nil || w.cfg.PrecisionDriftWindow <= 0 {
		return
	}
	if w.precisionSeen && p > w.prevPrecision {
		w.driftStreak++
		if w.driftStreak >= w.cfg.PrecisionDriftWindow {
			w.flags["precision-drift"] = true
		}
	} else {
		w.driftStreak = 0
	}
	w.prevPrecision = p
	w.precisionSeen = true
}

// Flags returns the latched health flags, sorted. Nil (not empty) when
// healthy, so a Result's omitempty health field stays absent.
func (w *Watchdog) Flags() []string {
	if w == nil || len(w.flags) == 0 {
		return nil
	}
	fs := make([]string, 0, len(w.flags))
	for f := range w.flags {
		fs = append(fs, f)
	}
	sort.Strings(fs)
	return fs
}
