package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Monitor is the live, wall-clock side of telemetry: the campaign harness
// reports cell lifecycle events and latest snapshots into it, and it serves
// them over HTTP for cmd/ntitop (/campaign.json) and Prometheus-style
// scrapers (/metrics). Unlike Registry it is mutex-protected (the worker
// pool writes concurrently) and nothing it holds ever reaches an artifact
// — wall-clock numbers are not deterministic and must stay out of JSONL.
// All methods are nil-safe so the harness can thread an optional *Monitor
// without branching.
type Monitor struct {
	mu      sync.Mutex
	name    string
	total   int
	started time.Time
	done    int
	failed  int
	simS    float64
	workers map[int]*workerState
	health  map[string][]string
	last    Snapshot
	lastOK  bool
	ln      net.Listener
	srv     *http.Server
}

type workerState struct {
	Cells     int     `json:"cells"`
	BusyS     float64 `json:"busy_s"`
	SimS      float64 `json:"sim_s"`
	Current   string  `json:"current,omitempty"`
	busySince time.Time
}

// WorkerStatus is one worker's row in a CampaignStatus.
type WorkerStatus struct {
	ID      int     `json:"id"`
	Cells   int     `json:"cells"`
	BusyS   float64 `json:"busy_s"`
	SimSPS  float64 `json:"sim_s_per_s"`
	Current string  `json:"current,omitempty"`
}

// CampaignStatus is the /campaign.json payload polled by cmd/ntitop.
type CampaignStatus struct {
	Name     string              `json:"name"`
	Total    int                 `json:"total"`
	Done     int                 `json:"done"`
	Failed   int                 `json:"failed"`
	ElapsedS float64             `json:"elapsed_s"`
	EtaS     float64             `json:"eta_s"`
	SimSPS   float64             `json:"sim_s_per_s"`
	Workers  []WorkerStatus      `json:"workers,omitempty"`
	Health   map[string][]string `json:"health,omitempty"`
	Snapshot *Snapshot           `json:"snapshot,omitempty"`
}

// NewMonitor returns an idle monitor; call Serve to expose it.
func NewMonitor() *Monitor {
	return &Monitor{workers: map[int]*workerState{}, health: map[string][]string{}}
}

// Begin resets the monitor for a campaign of total cells.
func (m *Monitor) Begin(name string, total int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.name = name
	m.total = total
	m.started = time.Now()
	m.done, m.failed, m.simS = 0, 0, 0
	m.workers = map[int]*workerState{}
	m.health = map[string][]string{}
	m.lastOK = false
}

// CellStart marks worker as busy on cell.
func (m *Monitor) CellStart(worker int, cell string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	w := m.worker(worker)
	w.Current = cell
	w.busySince = time.Now()
}

// CellEnd marks the cell finished. simS is the simulated span covered,
// health the cell's watchdog flags (kept only when non-empty).
func (m *Monitor) CellEnd(worker int, cell string, simS float64, health []string, failed bool) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	w := m.worker(worker)
	if !w.busySince.IsZero() {
		w.BusyS += time.Since(w.busySince).Seconds()
		w.busySince = time.Time{}
	}
	w.Current = ""
	w.Cells++
	w.SimS += simS
	m.done++
	if failed {
		m.failed++
	}
	m.simS += simS
	if len(health) > 0 {
		m.health[cell] = health
	}
}

// Publish records the latest merged snapshot (any cell; last write wins).
func (m *Monitor) Publish(s Snapshot) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.last = s
	m.lastOK = true
	m.mu.Unlock()
}

func (m *Monitor) worker(id int) *workerState {
	w := m.workers[id]
	if w == nil {
		w = &workerState{}
		m.workers[id] = w
	}
	return w
}

// Status assembles the current CampaignStatus.
func (m *Monitor) Status() CampaignStatus {
	if m == nil {
		return CampaignStatus{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	st := CampaignStatus{Name: m.name, Total: m.total, Done: m.done, Failed: m.failed}
	elapsed := 0.0
	if !m.started.IsZero() {
		elapsed = time.Since(m.started).Seconds()
	}
	st.ElapsedS = elapsed
	if m.done > 0 && m.done < m.total && elapsed > 0 {
		st.EtaS = elapsed / float64(m.done) * float64(m.total-m.done)
	}
	if elapsed > 0 {
		st.SimSPS = m.simS / elapsed
	}
	ids := make([]int, 0, len(m.workers))
	for id := range m.workers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		w := m.workers[id]
		busy := w.BusyS
		if !w.busySince.IsZero() {
			busy += time.Since(w.busySince).Seconds()
		}
		ws := WorkerStatus{ID: id, Cells: w.Cells, BusyS: busy, Current: w.Current}
		if busy > 0 {
			ws.SimSPS = w.SimS / busy
		}
		st.Workers = append(st.Workers, ws)
	}
	if len(m.health) > 0 {
		st.Health = make(map[string][]string, len(m.health))
		for k, v := range m.health {
			st.Health[k] = v
		}
	}
	if m.lastOK {
		snap := m.last
		st.Snapshot = &snap
	}
	return st
}

// Serve binds addr (host:port; port 0 picks a free one) and serves
// /campaign.json and /metrics until Close. Returns the bound address.
func (m *Monitor) Serve(addr string) (string, error) {
	if m == nil {
		return "", fmt.Errorf("telemetry: Serve on nil Monitor")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/campaign.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(m.Status())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		WriteProm(w, m.Status())
	})
	m.mu.Lock()
	m.ln = ln
	m.srv = &http.Server{Handler: mux}
	m.mu.Unlock()
	go m.srv.Serve(ln)
	return ln.Addr().String(), nil
}

// Close stops the HTTP server, if serving.
func (m *Monitor) Close() error {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	srv := m.srv
	m.srv, m.ln = nil, nil
	m.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

// WriteProm renders a CampaignStatus in the Prometheus text exposition
// format: campaign progress first, then the latest snapshot's counters,
// gauges (with _hi companions) and histogram summaries, all under the
// nti_ prefix with shard suffixes mapped to {shard="N"} labels.
func WriteProm(w interface{ Write([]byte) (int, error) }, st CampaignStatus) {
	fmt.Fprintf(w, "nti_cells_total %d\n", st.Total)
	fmt.Fprintf(w, "nti_cells_done %d\n", st.Done)
	fmt.Fprintf(w, "nti_cells_failed %d\n", st.Failed)
	fmt.Fprintf(w, "nti_campaign_elapsed_seconds %g\n", st.ElapsedS)
	fmt.Fprintf(w, "nti_campaign_sim_seconds_per_second %g\n", st.SimSPS)
	if st.Snapshot == nil {
		return
	}
	s := st.Snapshot
	fmt.Fprintf(w, "nti_snapshot_sim_time_seconds %g\n", s.T)
	for _, name := range sortedKeys(s.Counters) {
		fmt.Fprintf(w, "%s %d\n", promName(name), s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		g := s.Gauges[name]
		fmt.Fprintf(w, "%s %g\n", promName(name), g.V)
		base, labels := promSplit(name)
		fmt.Fprintf(w, "nti_%s_hi%s %g\n", base, labels, g.Hi)
	}
	for _, name := range sortedKeys(s.Hists) {
		h := s.Hists[name]
		base, _ := promSplit(name)
		fmt.Fprintf(w, "nti_%s_count %d\n", base, h.N)
		fmt.Fprintf(w, "nti_%s_mean %g\n", base, h.Mean)
		fmt.Fprintf(w, "nti_%s{quantile=\"0.5\"} %g\n", base, h.P50)
		fmt.Fprintf(w, "nti_%s{quantile=\"0.9\"} %g\n", base, h.P90)
		fmt.Fprintf(w, "nti_%s{quantile=\"0.99\"} %g\n", base, h.P99)
	}
}

// promName converts a registry key ("sim.queue_depth@3") to a Prometheus
// series ("nti_sim_queue_depth{shard=\"3\"}").
func promName(key string) string {
	base, labels := promSplit(key)
	return "nti_" + base + labels
}

func promSplit(key string) (base, labels string) {
	if i := strings.LastIndexByte(key, '@'); i >= 0 {
		labels = `{shard="` + key[i+1:] + `"}`
		key = key[:i]
	}
	base = strings.NewReplacer(".", "_", "-", "_", "/", "_").Replace(key)
	return base, labels
}
