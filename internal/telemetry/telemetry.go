// Package telemetry is a low-overhead runtime metrics registry for the
// simulator stack: named counters, gauges and log-binned histograms that
// layers update on their hot paths and that the campaign harness captures
// into deterministic sim-time snapshots.
//
// Design rules, in the style of internal/trace:
//
//   - Disabled means free. Every handle method is nil-safe: a nil *Counter,
//     *Gauge or *Histogram returns immediately, so instrumented code holds
//     plain handle fields and never branches on configuration. A cluster
//     built without a Registry pays one predictable nil-check per update
//     site and allocates nothing (pinned by test).
//
//   - One registry per goroutine domain. A Registry is deliberately NOT
//     thread-safe: the sharded kernel gives each shard its own Registry
//     (updated only by that shard's single-threaded Simulator, exactly like
//     per-shard trace rings) plus one driver-level Registry touched only
//     between windows. Capture merges them at a barrier.
//
//   - Snapshots are sim-domain only. Everything that enters a Snapshot is a
//     pure function of (config, seed, sim time), so snapshot artifacts are
//     byte-identical across worker and shard-worker counts. Wall-clock
//     observations (worker utilization, throughput, ETA) live in Monitor,
//     which serves them over HTTP and never writes artifacts.
package telemetry

import (
	"sort"
	"strconv"
)

// Counter is a monotonically increasing event count. Not thread-safe;
// update it only from the owning registry's goroutine domain.
type Counter struct{ v uint64 }

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v += n
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v++
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is an instantaneous level with a high-water mark. Set tracks the
// level; Add accumulates (useful for "busy seconds" style integrals, where
// the running total is the level).
type Gauge struct{ v, hi float64 }

// Set records the current level and updates the high-water mark. No-op on
// a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v = v
	if v > g.hi {
		g.hi = v
	}
}

// Add accumulates dv into the level. No-op on a nil receiver.
func (g *Gauge) Add(dv float64) {
	if g == nil {
		return
	}
	g.v += dv
	if g.v > g.hi {
		g.hi = g.v
	}
}

// Value returns the current level (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Hi returns the high-water mark (0 on a nil receiver).
func (g *Gauge) Hi() float64 {
	if g == nil {
		return 0
	}
	return g.hi
}

// Registry owns the named metrics for one goroutine domain. The zero of
// usefulness is a nil *Registry: every lookup on it returns a nil handle,
// whose methods are all no-ops.
type Registry struct {
	shard    int
	counters map[string]*Counter
	gauges   map[string]*Gauge
	fns      map[string]func() float64
	hists    map[string]*Histogram
}

// New returns an empty registry with no shard tag.
func New() *Registry {
	return &Registry{
		shard:    -1,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		fns:      make(map[string]func() float64),
		hists:    make(map[string]*Histogram),
	}
}

// SetShard tags the registry with a shard index. Capture suffixes gauge
// keys from a tagged registry with "@<shard>" so per-shard levels stay
// distinguishable after the merge; counters and histograms merge by plain
// name regardless.
func (r *Registry) SetShard(shard int) {
	if r == nil {
		return
	}
	r.shard = shard
}

// Shard returns the shard tag (-1 when untagged or nil).
func (r *Registry) Shard() int {
	if r == nil {
		return -1
	}
	return r.shard
}

// Counter returns the named counter, creating it on first use. Returns nil
// (a valid no-op handle) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on
// a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a callback evaluated only at Capture time — zero
// hot-path cost for levels that are cheap to read on demand (pool sizes,
// cumulative event counts). Re-registering a name replaces the callback.
// No-op on a nil registry.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.fns[name] = fn
}

// Histogram returns the named histogram, creating it on first use. Returns
// nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	h := r.hists[name]
	if h == nil {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// gaugeKey maps a gauge name to its merged-snapshot key, suffixing the
// shard tag when present.
func (r *Registry) gaugeKey(name string) string {
	if r.shard < 0 {
		return name
	}
	return name + "@" + strconv.Itoa(r.shard)
}

// sortedKeys returns map keys in sorted order, for deterministic iteration.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
