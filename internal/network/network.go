// Package network models the communications substrates of the paper.
//
// The NTI targets class (II) systems (paper §1): nodes within a few
// hundred metres on a packet-oriented LAN with almost deterministic
// propagation delays but considerable medium-access uncertainty. Medium
// models a shared 10 Mb/s broadcast bus of that kind, including
// background load, FIFO arbitration with jitter, per-pair propagation
// delays and CRC errors.
//
// WANPath models a class (III) long-haul path with heavy-tailed queueing
// delays at intermediate gateways, used by the NTP-style baseline of
// experiment E7.
package network

import (
	"fmt"

	"ntisim/internal/sim"
	"ntisim/internal/telemetry"
	"ntisim/internal/trace"
)

// Frame is one link-layer frame in flight.
type Frame struct {
	Src     int    // transmitting station id
	Dst     int    // receiving station id, Broadcast for all
	Payload []byte // link SDU (the CSP wire format or test data)
	Corrupt bool   // set on delivery when the CRC check failed

	// ID is the medium-assigned per-frame trace id (monotone from 1),
	// the flow key that links every trace record of one frame's
	// flight path. Simulation metadata, not on the wire.
	ID uint64

	// Timing trace, filled in by the medium (simulation metadata; real
	// hardware has no access to these).
	RequestedAt float64 // when the sender asked for the medium
	AcquiredAt  float64 // when serialization began
	DeliveredAt float64 // when the last bit arrived at the receiver
}

// Broadcast addresses every attached station.
const Broadcast = -1

// BackgroundDst is the destination of synthetic background-load frames:
// it matches no station, so such frames occupy the bus for their full
// serialization time (which is all that matters for medium-access
// uncertainty) but are never delivered — the delivery loop skips the
// station walk entirely rather than filtering each station against an
// address that cannot match (see TestBackgroundFramesReachNoStation).
const BackgroundDst = -3

// BackgroundSrc is the virtual station id background-load frames are
// sent from. It is never a real attach id, so delivery filters treat it
// like any other foreign source.
const BackgroundSrc = -2

// Bus is the transmit-side contract a link-layer client (package comco)
// needs from a communications substrate: attach a receiving station,
// queue frames with an acquisition callback, and know the bit rate for
// DMA pacing. Medium (shared broadcast bus) and LinkPort (dedicated
// point-to-point WAN port, see link.go) both implement it.
type Bus interface {
	Attach(st Station) int
	Send(f Frame, onAcquired func(at float64)) uint64
	Bitrate() float64
}

// Station receives frames from a medium.
type Station interface {
	// FrameArrived is invoked once per delivered frame, after the last
	// bit has been received. Corrupted frames are delivered with
	// f.Corrupt set: the physical interface still saw the bits (and the
	// NTI's decode logic may already have triggered a timestamp — paper
	// footnote 4), the controller discards them afterwards.
	FrameArrived(f Frame)
}

// MediumConfig parameterizes a shared broadcast bus.
type MediumConfig struct {
	BitRateBps   float64 // default 10 Mb/s
	PreambleBits int     // bits on the wire before the payload; default 64
	InterframeS  float64 // minimum gap between frames; default 9.6 µs
	// PropDelayS is the one-way propagation delay between any two
	// stations (class II: essentially constant). Default 500 ns (~100 m).
	PropDelayS float64
	// AccessJitterS bounds the uniformly distributed extra arbitration
	// delay a station experiences when acquiring a busy medium.
	AccessJitterS float64
	// CRCErrorProb is the per-delivery probability of a corrupted frame.
	CRCErrorProb float64
}

// DefaultLAN returns the 10 Mb/s shared-Ethernet-like configuration used
// by the paper's prototype (Intel 82596CA on 10 Mb/s Ethernet).
func DefaultLAN() MediumConfig {
	return MediumConfig{
		BitRateBps:    10e6,
		PreambleBits:  64,
		InterframeS:   9.6e-6,
		PropDelayS:    500e-9,
		AccessJitterS: 20e-6,
	}
}

type pendingTx struct {
	frame      Frame
	onAcquired func(at float64)
}

// delivery is one pooled in-flight reception: the frame copy bound for
// one station plus a callback closed over the delivery itself, created
// once when the object enters the pool. Reusing deliveries keeps the
// per-station fan-out of a broadcast allocation-free.
type delivery struct {
	m   *Medium
	st  Station
	id  int // receiving station id (trace metadata)
	f   Frame
	run func()
}

func (d *delivery) deliver() {
	m, st, f, id := d.m, d.st, d.f, d.id
	d.st = nil
	d.f = Frame{}
	m.freeDeliv = append(m.freeDeliv, d)
	if m.tr != nil {
		corrupt := uint64(0)
		if f.Corrupt {
			corrupt = 1
		}
		m.tr.Emit(trace.KindFrameRx, m.s.Now(), id, 0, f.ID, corrupt, 0)
	}
	st.FrameArrived(f)
}

// SetPartitioned severs the medium: while partitioned, frames are still
// transmitted (the sender's COMCO behaves normally, triggers included)
// but reach no station — a cable fault or switch outage. Queued and
// in-flight traffic is unaffected retroactively.
func (m *Medium) SetPartitioned(down bool) { m.partitioned = down }

// Medium is a shared broadcast bus with FIFO arbitration.
type Medium struct {
	s           *sim.Simulator
	cfg         MediumConfig
	rng         *sim.RNG
	stations    []Station
	queue       []pendingTx
	head        int // queue[:head] already consumed (ring reuse)
	busy        bool
	partitioned bool
	sent        uint64
	dropped     uint64
	nextID      uint64
	tr          *trace.Tracer
	bgStop      func()

	// cur is the transmission currently waiting out arbitration; the
	// prebuilt method values let the hot path schedule without
	// allocating a closure per frame.
	cur         pendingTx
	transmitFn  func()
	startNextFn func()
	freeDeliv   []*delivery
	bgPayload   []byte

	// Telemetry handles (SetTelemetry); nil-receiver no-ops when off.
	tmSent      *telemetry.Counter
	tmLost      *telemetry.Counter
	tmCorrupt   *telemetry.Counter
	tmBg        *telemetry.Counter
	tmContended *telemetry.Counter
	tmBacklog   *telemetry.Gauge
	tmBusy      *telemetry.Gauge
}

// NewMedium attaches a broadcast bus to the simulator.
func NewMedium(s *sim.Simulator, cfg MediumConfig) *Medium {
	if cfg.BitRateBps <= 0 {
		cfg.BitRateBps = 10e6
	}
	if cfg.PreambleBits <= 0 {
		cfg.PreambleBits = 64
	}
	if cfg.InterframeS <= 0 {
		cfg.InterframeS = 9.6e-6
	}
	if cfg.PropDelayS < 0 {
		panic("network: negative propagation delay")
	}
	m := &Medium{s: s, cfg: cfg, rng: s.RNG("medium")}
	m.transmitFn = m.transmitCur
	m.startNextFn = m.startNext
	return m
}

// Attach registers a station and returns its id.
func (m *Medium) Attach(st Station) int {
	m.stations = append(m.stations, st)
	return len(m.stations) - 1
}

// Stations returns the number of attached stations.
func (m *Medium) Stations() int { return len(m.stations) }

// Bitrate returns the configured bit rate in bits per second.
func (m *Medium) Bitrate() float64 { return m.cfg.BitRateBps }

// FrameDuration returns the serialization time of a frame with n payload
// bytes.
func (m *Medium) FrameDuration(n int) float64 {
	return (float64(m.cfg.PreambleBits) + 8*float64(n)) / m.cfg.BitRateBps
}

// SetTracer attaches an event tracer (nil detaches). The medium emits
// frame-tx / frame-lost / frame-rx records; it never consumes RNG or
// changes timing on behalf of the tracer.
func (m *Medium) SetTracer(tr *trace.Tracer) { m.tr = tr }

// SetTelemetry registers the bus metrics on r: frames sent/lost/corrupt,
// background frames, contended acquisitions (frames that found the bus
// busy — the shared-Ethernet stand-in for collisions), the tx-ring
// backlog gauge and the cumulative bus-busy-seconds integral (occupancy
// = Δbusy/Δt between snapshots). A nil r detaches.
func (m *Medium) SetTelemetry(r *telemetry.Registry) {
	if r == nil {
		m.tmSent, m.tmLost, m.tmCorrupt, m.tmBg, m.tmContended = nil, nil, nil, nil, nil
		m.tmBacklog, m.tmBusy = nil, nil
		return
	}
	m.tmSent = r.Counter("net.frames_sent")
	m.tmLost = r.Counter("net.frames_lost")
	m.tmCorrupt = r.Counter("net.crc_corrupt")
	m.tmBg = r.Counter("net.bg_frames")
	m.tmContended = r.Counter("net.contended")
	m.tmBacklog = r.Gauge("net.tx_backlog")
	m.tmBusy = r.Gauge("net.bus_busy_s")
}

// Send queues a frame for transmission and returns the frame's
// medium-assigned trace id (monotone from 1 per medium). onAcquired, if
// non-nil, fires at the moment serialization begins (the sender's COMCO
// starts pulling the frame from memory around then — package comco
// builds on this hook).
func (m *Medium) Send(f Frame, onAcquired func(at float64)) uint64 {
	m.nextID++
	f.ID = m.nextID
	f.RequestedAt = m.s.Now()
	m.queue = append(m.queue, pendingTx{frame: f, onAcquired: onAcquired})
	m.tmBacklog.Set(float64(len(m.queue) - m.head))
	if !m.busy {
		m.startNext()
	}
	return f.ID
}

func (m *Medium) startNext() {
	if m.head == len(m.queue) {
		m.queue = m.queue[:0] // reuse the backing array
		m.head = 0
		m.busy = false
		return
	}
	m.busy = true
	tx := m.queue[m.head]
	m.queue[m.head] = pendingTx{}
	m.head++
	if m.head == len(m.queue) {
		m.queue = m.queue[:0]
		m.head = 0
	} else if m.head >= 64 && m.head >= len(m.queue)/2 {
		// Sustained backlog: reclaim the consumed prefix so the backing
		// array stays bounded (amortized O(1) per frame).
		m.queue = append(m.queue[:0], m.queue[m.head:]...)
		m.head = 0
	}
	// Medium-access uncertainty: arbitration adds bounded random delay
	// when there was contention; an idle medium is acquired immediately
	// after the interframe gap.
	delay := m.cfg.InterframeS
	if m.cfg.AccessJitterS > 0 && tx.frame.RequestedAt < m.s.Now() {
		delay += m.rng.Uniform(0, m.cfg.AccessJitterS)
		m.tmContended.Inc()
	}
	m.cur = tx
	m.s.After(delay, m.transmitFn)
}

// allocDelivery takes a delivery from the pool, binding its callback
// once on first allocation.
func (m *Medium) allocDelivery() *delivery {
	if n := len(m.freeDeliv); n > 0 {
		d := m.freeDeliv[n-1]
		m.freeDeliv[n-1] = nil
		m.freeDeliv = m.freeDeliv[:n-1]
		return d
	}
	d := &delivery{m: m}
	d.run = d.deliver
	return d
}

// transmitCur serializes the transmission parked in m.cur. The FIFO
// arbitration admits one transmission at a time (m.busy), so a single
// slot suffices and the whole path schedules only prebuilt callbacks.
func (m *Medium) transmitCur() {
	tx := m.cur
	m.cur = pendingTx{}
	start := m.s.Now()
	if tx.onAcquired != nil {
		tx.onAcquired(start)
	}
	f := tx.frame
	f.AcquiredAt = start
	dur := m.FrameDuration(len(f.Payload))
	end := start + dur
	m.tmBusy.Add(dur)
	if f.Src == BackgroundSrc {
		m.tmBg.Inc()
	}
	if m.partitioned {
		if m.tr != nil {
			m.tr.Emit(trace.KindFrameLost, start, f.Src, 0, f.ID, uint64(len(f.Payload)), dur)
		}
		m.sent++
		m.tmLost.Inc()
		m.s.At(end, m.startNextFn)
		return
	}
	if m.tr != nil {
		m.tr.Emit(trace.KindFrameTx, start, f.Src, 0, f.ID, uint64(len(f.Payload)), dur)
	}
	// Deliver at frame end + propagation — to the receivers only, not
	// O(stations): a broadcast walks every other station, a unicast
	// indexes its one receiver, and an unmatchable destination (e.g.
	// BackgroundDst) skips delivery work entirely. CRC randomness is
	// drawn once per actual delivery, in attach-id order, exactly as the
	// full walk would, so the filter is invisible to the RNG streams.
	switch {
	case f.Dst == Broadcast:
		for id, st := range m.stations {
			if id == f.Src {
				continue
			}
			m.scheduleDelivery(st, id, f, end)
		}
	case f.Dst >= 0 && f.Dst < len(m.stations) && f.Dst != f.Src:
		m.scheduleDelivery(m.stations[f.Dst], f.Dst, f, end)
	}
	m.sent++
	m.tmSent.Inc()
	m.s.At(end, m.startNextFn)
}

// scheduleDelivery queues one station's reception of f (last bit at
// end, plus propagation), drawing that delivery's CRC fate.
func (m *Medium) scheduleDelivery(st Station, id int, f Frame, end float64) {
	d := m.allocDelivery()
	d.st = st
	d.id = id
	d.f = f
	d.f.DeliveredAt = end + m.cfg.PropDelayS
	d.f.Corrupt = m.cfg.CRCErrorProb > 0 && m.rng.Bool(m.cfg.CRCErrorProb)
	if d.f.Corrupt {
		m.dropped++
		m.tmCorrupt.Inc()
	}
	m.s.At(d.f.DeliveredAt, d.run)
}

// Stats returns frames transmitted and deliveries corrupted.
func (m *Medium) Stats() (sent, corrupted uint64) { return m.sent, m.dropped }

// StartBackgroundLoad injects competing traffic: frames of meanBytes mean
// size (exponential, clamped to [64, 1500]) at a rate that loads the
// medium to approximately `utilization` (0..1). The frames come from a
// virtual station and are delivered to nobody; they only occupy the bus,
// which is all that matters for medium-access uncertainty.
func (m *Medium) StartBackgroundLoad(utilization float64, meanBytes int) {
	if utilization <= 0 {
		return
	}
	if utilization >= 0.95 {
		panic(fmt.Sprintf("network: background utilization %v too high", utilization))
	}
	if meanBytes <= 0 {
		meanBytes = 400
	}
	rng := m.s.RNG("bgload")
	meanDur := m.FrameDuration(meanBytes)
	meanGap := meanDur / utilization
	if m.bgPayload == nil {
		// Background frames reach no station (BackgroundDst) — only
		// their length occupies the bus — so every frame can slice one
		// shared scratch buffer instead of allocating a payload.
		m.bgPayload = make([]byte, 1500)
	}
	stopped := false
	var emit func()
	emit = func() {
		if stopped {
			return
		}
		n := int(rng.Exponential(float64(meanBytes)))
		if n < 64 {
			n = 64
		}
		if n > 1500 {
			n = 1500
		}
		m.Send(Frame{Src: BackgroundSrc, Dst: BackgroundDst, Payload: m.bgPayload[:n]}, nil)
		if stopped {
			return
		}
		m.s.After(rng.Exponential(meanGap), emit)
	}
	m.s.After(rng.Exponential(meanGap), emit)
	m.bgStop = func() { stopped = true }
}

// StopBackgroundLoad halts the generator.
func (m *Medium) StopBackgroundLoad() {
	if m.bgStop != nil {
		m.bgStop()
		m.bgStop = nil
	}
}
