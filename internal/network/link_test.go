package network

import (
	"encoding/binary"
	"math"
	"testing"

	"ntisim/internal/sim"
)

// TestBackgroundFramesReachNoStation pins the BackgroundDst contract:
// a background frame occupies the bus for its full serialization time
// (deferring later transmissions) but is delivered to no station.
func TestBackgroundFramesReachNoStation(t *testing.T) {
	s := sim.New(1)
	cfg := DefaultLAN()
	cfg.AccessJitterS = 0
	m := NewMedium(s, cfg)
	var cs [3]collector
	for i := range cs {
		m.Attach(&cs[i])
	}
	bg := make([]byte, 1000)
	m.Send(Frame{Src: BackgroundSrc, Dst: BackgroundDst, Payload: bg}, nil)
	var acquired float64
	m.Send(Frame{Src: 0, Dst: Broadcast, Payload: make([]byte, 64)}, func(at float64) {
		acquired = at
	})
	s.Run()
	if len(cs[0].frames) != 0 {
		t.Fatalf("station 0 sent the broadcast, yet received %d frames", len(cs[0].frames))
	}
	for i := 1; i < len(cs); i++ {
		if n := len(cs[i].frames); n != 1 {
			t.Fatalf("station %d got %d frames, want only the real broadcast", i, n)
		}
	}
	// The real frame must have waited for the background frame: bus
	// acquisition no earlier than bg serialization end + interframe gap.
	bgEnd := cfg.InterframeS + m.FrameDuration(len(bg))
	if acquired < bgEnd+cfg.InterframeS {
		t.Fatalf("broadcast acquired bus at %v, before background frame released it at %v",
			acquired, bgEnd)
	}
}

// TestBackgroundLoadDeliversNothing runs the full generator and pins
// that sustained background traffic reaches no station.
func TestBackgroundLoadDeliversNothing(t *testing.T) {
	s := sim.New(1)
	m := NewMedium(s, DefaultLAN())
	var c collector
	m.Attach(&c)
	m.StartBackgroundLoad(0.3, 400)
	s.RunUntil(0.05)
	sent, _ := m.Stats()
	if sent == 0 {
		t.Fatal("background generator sent nothing")
	}
	if len(c.frames) != 0 {
		t.Fatalf("background frames were delivered to a station (%d)", len(c.frames))
	}
}

// linkEnds wires a LinkPort and a Relay back-to-back through immediate
// in-simulator posts with a fixed WAN delay, standing in for the
// cluster's cross-shard plumbing (here both ends share one simulator,
// which the components themselves don't care about).
func linkEnds(s *sim.Simulator, med *Medium, wanDelay float64, rewrite RewriteFunc) (*LinkPort, *Relay) {
	var port *LinkPort
	var relay *Relay
	port = NewLinkPort(s, LinkConfig{}, func(f Frame) {
		s.At(s.Now()+wanDelay, func() { relay.Inject(f) })
	}, rewrite)
	relay = NewRelay(med, func(f Frame) {
		s.At(s.Now()+wanDelay, func() { port.Inject(f) })
	}, rewrite)
	return port, relay
}

func TestLinkUplinkReachesRemoteMedium(t *testing.T) {
	s := sim.New(3)
	cfg := DefaultLAN()
	cfg.AccessJitterS = 0
	med := NewMedium(s, cfg)
	var remote collector
	med.Attach(&remote)
	const wan = 1e-3
	port, _ := linkEnds(s, med, wan, nil)
	var gw collector
	port.Attach(&gw)

	payload := make([]byte, 100)
	var acq float64
	port.Send(Frame{Src: 0, Dst: Broadcast, Payload: payload}, func(at float64) { acq = at })
	s.Run()

	if acq == 0 {
		t.Fatal("uplink onAcquired never fired")
	}
	if len(remote.frames) != 1 {
		t.Fatalf("remote station got %d frames, want 1", len(remote.frames))
	}
	f := remote.frames[0]
	if len(f.Payload) != len(payload) {
		t.Fatalf("payload length %d, want %d", len(f.Payload), len(payload))
	}
	// End-to-end latency: uplink serialization + WAN delay + remote
	// medium gap + serialization + propagation.
	wantMin := acq + port.FrameDuration(len(payload)) + wan
	if f.DeliveredAt <= wantMin {
		t.Fatalf("delivered at %v, want after %v", f.DeliveredAt, wantMin)
	}
}

func TestLinkDownlinkDeliversToGateway(t *testing.T) {
	s := sim.New(4)
	cfg := DefaultLAN()
	cfg.AccessJitterS = 0
	med := NewMedium(s, cfg)
	med.Attach(&collector{}) // station 0: the remote sender
	const wan = 2e-3
	port, _ := linkEnds(s, med, wan, nil)
	var gw collector
	port.Attach(&gw)

	med.Send(Frame{Src: 0, Dst: Broadcast, Payload: make([]byte, 80)}, nil)
	s.Run()

	if len(gw.frames) != 1 {
		t.Fatalf("gateway got %d frames, want 1", len(gw.frames))
	}
	f := gw.frames[0]
	// Downlink must include the WAN delay and the port serialization.
	if f.DeliveredAt < wan+port.FrameDuration(80) {
		t.Fatalf("gateway delivery at %v is too early", f.DeliveredAt)
	}
	if f.Src != 0 {
		t.Fatalf("source id %d, want the remote sender 0", f.Src)
	}
}

// TestLinkRewriteElapsed checks the transparent-clock hook: the rewrite
// sees the true time between the frame's original acquisition and its
// final acquisition toward the ultimate receivers, in both directions.
func TestLinkRewriteElapsed(t *testing.T) {
	s := sim.New(5)
	cfg := DefaultLAN()
	cfg.AccessJitterS = 0
	med := NewMedium(s, cfg)
	var remote collector
	med.Attach(&remote)
	const wan = 1e-3
	var elapsed []float64
	rw := func(payload []byte, e float64) {
		elapsed = append(elapsed, e)
		binary.BigEndian.PutUint64(payload, math.Float64bits(e))
	}
	port, _ := linkEnds(s, med, wan, rw)
	var gw collector
	port.Attach(&gw)

	var acq float64
	port.Send(Frame{Src: 0, Dst: Broadcast, Payload: make([]byte, 64)}, func(at float64) { acq = at })
	s.Run()

	if len(elapsed) != 1 {
		t.Fatalf("rewrite ran %d times, want 1", len(elapsed))
	}
	// Elapsed = uplink serialization (from acquisition to handoff) +
	// WAN delay + remote medium queueing up to acquisition. Must be at
	// least serialization + WAN, and the delivered payload must carry
	// the rewritten bytes.
	minE := port.FrameDuration(64) + wan
	if elapsed[0] < minE || elapsed[0] > minE+1e-3 {
		t.Fatalf("uplink rewrite elapsed %v, want ≈ %v", elapsed[0], minE)
	}
	_ = acq
	got := math.Float64frombits(binary.BigEndian.Uint64(remote.frames[0].Payload))
	if got != elapsed[0] {
		t.Fatalf("delivered payload carries %v, want rewritten %v", got, elapsed[0])
	}

	// Downlink direction.
	elapsed = nil
	med.Send(Frame{Src: 0, Dst: Broadcast, Payload: make([]byte, 64)}, nil)
	s.Run()
	if len(elapsed) != 1 {
		t.Fatalf("downlink rewrite ran %d times, want 1", len(elapsed))
	}
	if elapsed[0] < minE {
		t.Fatalf("downlink rewrite elapsed %v, want ≥ %v", elapsed[0], minE)
	}
	if len(gw.frames) != 1 {
		t.Fatalf("gateway got %d frames", len(gw.frames))
	}
}

// TestLinkPayloadIsolation pins the cross-shard safety property: the
// payload delivered through a link is never the sender's own slice.
func TestLinkPayloadIsolation(t *testing.T) {
	s := sim.New(6)
	med := NewMedium(s, DefaultLAN())
	var remote collector
	med.Attach(&remote)
	port, _ := linkEnds(s, med, 1e-3, nil)
	port.Attach(&collector{})

	payload := make([]byte, 64)
	payload[0] = 0xAA
	port.Send(Frame{Src: 0, Dst: Broadcast, Payload: payload}, nil)
	s.Run()
	payload[0] = 0x55 // sender mutates its buffer after the fact
	if remote.frames[0].Payload[0] != 0xAA {
		t.Fatal("delivered payload aliases the sender's buffer")
	}
}

func TestLinkFIFOSerialization(t *testing.T) {
	s := sim.New(7)
	med := NewMedium(s, DefaultLAN())
	med.Attach(&collector{})
	port, _ := linkEnds(s, med, 1e-3, nil)
	port.Attach(&collector{})

	var starts []float64
	for i := 0; i < 3; i++ {
		port.Send(Frame{Src: 0, Dst: Broadcast, Payload: make([]byte, 1000)},
			func(at float64) { starts = append(starts, at) })
	}
	s.Run()
	if len(starts) != 3 {
		t.Fatalf("got %d acquisitions", len(starts))
	}
	dur := port.FrameDuration(1000)
	for i := 1; i < len(starts); i++ {
		if gap := starts[i] - starts[i-1]; gap < dur {
			t.Fatalf("frames %d/%d overlap on the link: gap %v < duration %v", i-1, i, gap, dur)
		}
	}
}
