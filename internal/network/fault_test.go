package network

import (
	"testing"

	"ntisim/internal/sim"
	"ntisim/internal/trace"
)

// TestPartitionDropsDeliveries: while the medium is partitioned (cable
// fault / switch outage), frames are still transmitted — the sender's
// side of the bus behaves normally, onAcquired fires, the sent counter
// advances — but no station receives anything.
func TestPartitionDropsDeliveries(t *testing.T) {
	s := sim.New(1)
	m := NewMedium(s, DefaultLAN())
	var cs [3]collector
	for i := range cs {
		m.Attach(&cs[i])
	}
	m.SetPartitioned(true)

	acquired := 0
	for i := 0; i < 4; i++ {
		m.Send(Frame{Src: 0, Dst: Broadcast, Payload: make([]byte, 64)},
			func(at float64) { acquired++ })
	}
	s.Run()

	if acquired != 4 {
		t.Errorf("onAcquired fired %d times, want 4 (tx side must behave normally)", acquired)
	}
	if sent, _ := m.Stats(); sent != 4 {
		t.Errorf("sent = %d, want 4 (partitioned frames still count as transmitted)", sent)
	}
	for i, c := range cs {
		if len(c.frames) != 0 {
			t.Errorf("station %d received %d frames across a partition", i, len(c.frames))
		}
	}
}

// TestPartitionRecovery: traffic queued after the partition clears is
// delivered again; the outage is not sticky.
func TestPartitionRecovery(t *testing.T) {
	s := sim.New(1)
	m := NewMedium(s, DefaultLAN())
	var rx collector
	m.Attach(&collector{}) // station 0: sender
	m.Attach(&rx)

	m.SetPartitioned(true)
	m.Send(Frame{Src: 0, Dst: Broadcast, Payload: make([]byte, 64)}, nil)
	s.Run()
	if len(rx.frames) != 0 {
		t.Fatalf("frame delivered during outage")
	}

	m.SetPartitioned(false)
	m.Send(Frame{Src: 0, Dst: Broadcast, Payload: make([]byte, 64)}, nil)
	s.Run()
	if len(rx.frames) != 1 {
		t.Fatalf("got %d frames after recovery, want 1", len(rx.frames))
	}
}

// TestPartitionTiming: the bus stays occupied for the full frame
// duration even when the frame reaches nobody — a partitioned medium
// still serializes, so a queued second frame waits its turn.
func TestPartitionTiming(t *testing.T) {
	s := sim.New(1)
	cfg := DefaultLAN()
	cfg.AccessJitterS = 0
	m := NewMedium(s, cfg)
	m.Attach(&collector{})
	m.Attach(&collector{})
	m.SetPartitioned(true)

	var t0, t1 float64
	m.Send(Frame{Src: 0, Dst: Broadcast, Payload: make([]byte, 125)}, func(at float64) { t0 = at })
	m.Send(Frame{Src: 0, Dst: Broadcast, Payload: make([]byte, 125)}, func(at float64) { t1 = at })
	s.Run()

	dur := m.FrameDuration(125)
	if min := t0 + dur + cfg.InterframeS; t1 < min-1e-12 {
		t.Errorf("second frame acquired at %v, want >= %v (lost frames must still occupy the bus)", t1, min)
	}
}

// TestPartitionTrace: a partitioned transmission shows up in the trace
// as frame-lost (not frame-tx), with the same payload attribution, and
// produces no frame-rx records.
func TestPartitionTrace(t *testing.T) {
	s := sim.New(1)
	m := NewMedium(s, DefaultLAN())
	tr := trace.New(trace.Options{})
	m.SetTracer(tr)
	m.Attach(&collector{})
	m.Attach(&collector{})

	fid := m.Send(Frame{Src: 0, Dst: Broadcast, Payload: make([]byte, 64)}, nil)
	s.Run() // deliver before the outage: partitioning is a transmit-time fact
	m.SetPartitioned(true)
	lostID := m.Send(Frame{Src: 0, Dst: Broadcast, Payload: make([]byte, 64)}, nil)
	s.Run()

	if fid != 1 || lostID != 2 {
		t.Fatalf("frame ids = %d,%d, want monotone 1,2", fid, lostID)
	}
	counts := map[trace.Kind]int{}
	for _, r := range tr.Records() {
		counts[r.Kind]++
		switch r.Kind {
		case trace.KindFrameTx:
			if r.A != fid {
				t.Errorf("frame-tx for frame %d, want %d", r.A, fid)
			}
		case trace.KindFrameLost:
			if r.A != lostID || r.B != 64 || r.V <= 0 {
				t.Errorf("frame-lost record mangled: %+v", r)
			}
		case trace.KindFrameRx:
			if r.A != fid {
				t.Errorf("frame-rx for lost frame %d", r.A)
			}
		}
	}
	if counts[trace.KindFrameTx] != 1 || counts[trace.KindFrameLost] != 1 {
		t.Errorf("tx/lost counts = %d/%d, want 1/1", counts[trace.KindFrameTx], counts[trace.KindFrameLost])
	}
	if counts[trace.KindFrameRx] != 1 {
		t.Errorf("frame-rx count = %d, want 1 (only the pre-partition frame)", counts[trace.KindFrameRx])
	}
}
