package network

import (
	"fmt"
	"math"
	"testing"

	"ntisim/internal/sim"
)

// collector records delivered frames.
type collector struct {
	frames []Frame
}

func (c *collector) FrameArrived(f Frame) { c.frames = append(c.frames, f) }

func TestBroadcastDelivery(t *testing.T) {
	s := sim.New(1)
	m := NewMedium(s, DefaultLAN())
	var cs [4]collector
	var ids [4]int
	for i := range cs {
		ids[i] = m.Attach(&cs[i])
	}
	m.Send(Frame{Src: ids[0], Dst: Broadcast, Payload: make([]byte, 100)}, nil)
	s.Run()
	if len(cs[0].frames) != 0 {
		t.Error("sender received its own frame")
	}
	for i := 1; i < 4; i++ {
		if len(cs[i].frames) != 1 {
			t.Fatalf("station %d got %d frames", i, len(cs[i].frames))
		}
	}
}

func TestUnicastDelivery(t *testing.T) {
	s := sim.New(1)
	m := NewMedium(s, DefaultLAN())
	var cs [3]collector
	for i := range cs {
		m.Attach(&cs[i])
	}
	m.Send(Frame{Src: 0, Dst: 2, Payload: make([]byte, 64)}, nil)
	s.Run()
	if len(cs[1].frames) != 0 || len(cs[2].frames) != 1 {
		t.Errorf("unicast delivery wrong: %d/%d", len(cs[1].frames), len(cs[2].frames))
	}
}

func TestFrameTiming(t *testing.T) {
	s := sim.New(1)
	cfg := DefaultLAN()
	cfg.AccessJitterS = 0
	m := NewMedium(s, cfg)
	var c collector
	m.Attach(&collector{}) // station 0: sender
	m.Attach(&c)
	var acquired float64
	m.Send(Frame{Src: 0, Dst: Broadcast, Payload: make([]byte, 125)}, func(at float64) { acquired = at })
	s.Run()
	// Idle medium: acquisition after the interframe gap only.
	if math.Abs(acquired-cfg.InterframeS) > 1e-12 {
		t.Errorf("acquired at %v, want %v", acquired, cfg.InterframeS)
	}
	f := c.frames[0]
	wantDur := (64 + 8*125) / 10e6
	if math.Abs(f.DeliveredAt-(acquired+wantDur+cfg.PropDelayS)) > 1e-12 {
		t.Errorf("delivered at %v", f.DeliveredAt)
	}
	if f.AcquiredAt != acquired {
		t.Error("AcquiredAt trace wrong")
	}
}

func TestMediumSerializesFrames(t *testing.T) {
	s := sim.New(1)
	cfg := DefaultLAN()
	m := NewMedium(s, cfg)
	var c collector
	m.Attach(&collector{})
	m.Attach(&c)
	// Two frames queued back to back must not overlap on the wire.
	var starts []float64
	for i := 0; i < 2; i++ {
		m.Send(Frame{Src: 0, Dst: Broadcast, Payload: make([]byte, 1000)}, func(at float64) { starts = append(starts, at) })
	}
	s.Run()
	if len(starts) != 2 {
		t.Fatalf("got %d acquisitions", len(starts))
	}
	dur := m.FrameDuration(1000)
	if starts[1] < starts[0]+dur {
		t.Errorf("second frame started at %v, before first ended at %v", starts[1], starts[0]+dur)
	}
}

func TestAccessUncertaintyUnderLoad(t *testing.T) {
	// The class-II property: medium access time varies under load.
	s := sim.New(2)
	cfg := DefaultLAN()
	m := NewMedium(s, cfg)
	var c collector
	m.Attach(&collector{})
	m.Attach(&c)
	m.StartBackgroundLoad(0.5, 400)
	var waits []float64
	send := func() {
		req := s.Now()
		m.Send(Frame{Src: 0, Dst: Broadcast, Payload: make([]byte, 100)}, func(at float64) {
			waits = append(waits, at-req)
		})
	}
	for i := 0; i < 200; i++ {
		s.After(float64(i)*0.01, send)
	}
	s.RunUntil(3)
	m.StopBackgroundLoad()
	if len(waits) < 150 {
		t.Fatalf("only %d sends completed", len(waits))
	}
	lo, hi := math.Inf(1), 0.0
	for _, w := range waits {
		lo = math.Min(lo, w)
		hi = math.Max(hi, w)
	}
	if hi-lo < 50e-6 {
		t.Errorf("access uncertainty %v too small under 50%% load", hi-lo)
	}
}

func TestCRCErrors(t *testing.T) {
	s := sim.New(3)
	cfg := DefaultLAN()
	cfg.CRCErrorProb = 0.3
	m := NewMedium(s, cfg)
	var c collector
	m.Attach(&collector{})
	m.Attach(&c)
	for i := 0; i < 500; i++ {
		s.After(float64(i)*0.001, func() {
			m.Send(Frame{Src: 0, Dst: Broadcast, Payload: make([]byte, 64)}, nil)
		})
	}
	s.Run()
	bad := 0
	for _, f := range c.frames {
		if f.Corrupt {
			bad++
		}
	}
	ratio := float64(bad) / float64(len(c.frames))
	if ratio < 0.2 || ratio > 0.4 {
		t.Errorf("corrupt ratio = %v, want ~0.3", ratio)
	}
	if _, corrupted := m.Stats(); corrupted == 0 {
		t.Error("stats did not count corruption")
	}
}

func TestBackgroundLoadUtilization(t *testing.T) {
	s := sim.New(4)
	m := NewMedium(s, DefaultLAN())
	m.Attach(&collector{})
	m.StartBackgroundLoad(0.3, 400)
	s.RunUntil(10)
	sent, _ := m.Stats()
	// Expected frames: 10 s * 0.3 / frameDuration(400B).
	want := 10 * 0.3 / m.FrameDuration(400)
	if float64(sent) < want*0.6 || float64(sent) > want*1.6 {
		t.Errorf("background frames = %d, want ≈%v", sent, want)
	}
}

func TestBackgroundLoadTooHighPanics(t *testing.T) {
	s := sim.New(1)
	m := NewMedium(s, DefaultLAN())
	defer func() {
		if recover() == nil {
			t.Error("expected panic at 95% utilization")
		}
	}()
	m.StartBackgroundLoad(0.99, 400)
}

func TestDeterministicMedium(t *testing.T) {
	run := func() []float64 {
		s := sim.New(77)
		m := NewMedium(s, DefaultLAN())
		var c collector
		m.Attach(&collector{})
		m.Attach(&c)
		m.StartBackgroundLoad(0.4, 300)
		for i := 0; i < 20; i++ {
			s.After(float64(i)*0.05, func() {
				m.Send(Frame{Src: 0, Dst: Broadcast, Payload: make([]byte, 80)}, nil)
			})
		}
		s.RunUntil(2)
		var out []float64
		for _, f := range c.frames {
			out = append(out, f.DeliveredAt)
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different frame counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestWANDelayDistribution(t *testing.T) {
	s := sim.New(5)
	w := NewWANPath(s, DefaultWAN(), "p")
	lo, hi, sum := math.Inf(1), 0.0, 0.0
	n := 5000
	for i := 0; i < n; i++ {
		d := w.SampleDelay(true)
		lo = math.Min(lo, d)
		hi = math.Max(hi, d)
		sum += d
	}
	if lo < w.MinDelay()-1e-9 {
		t.Errorf("delay %v below floor %v", lo, w.MinDelay())
	}
	if hi < 10*lo {
		t.Errorf("WAN delays not heavy-tailed: lo=%v hi=%v", lo, hi)
	}
	mean := sum / float64(n)
	if mean < 5e-3 || mean > 300e-3 {
		t.Errorf("mean delay %v implausible", mean)
	}
}

func TestWANAsymmetry(t *testing.T) {
	s := sim.New(6)
	cfg := DefaultWAN()
	cfg.Asymmetry = 3
	w := NewWANPath(s, cfg, "p")
	var fwd, rev float64
	n := 3000
	for i := 0; i < n; i++ {
		fwd += w.SampleDelay(true)
		rev += w.SampleDelay(false)
	}
	if fwd <= rev*1.3 {
		t.Errorf("asymmetry not visible: fwd=%v rev=%v", fwd/float64(n), rev/float64(n))
	}
}

func TestWANDeliverAndLoss(t *testing.T) {
	s := sim.New(7)
	cfg := DefaultWAN()
	cfg.LossProb = 0.5
	w := NewWANPath(s, cfg, "p")
	got := 0
	tried := 400
	for i := 0; i < tried; i++ {
		w.Deliver(true, func(sentAt, arrivedAt float64) {
			if arrivedAt <= sentAt {
				t.Error("non-causal delivery")
			}
			got++
		})
	}
	s.Run()
	delivered, lost := w.Stats()
	if int(delivered) != got {
		t.Errorf("stats delivered=%d, callbacks=%d", delivered, got)
	}
	if lost == 0 || got == 0 {
		t.Errorf("loss model degenerate: delivered=%d lost=%d", delivered, lost)
	}
	if ratio := float64(lost) / float64(tried); math.Abs(ratio-0.5) > 0.1 {
		t.Errorf("loss ratio %v, want ~0.5", ratio)
	}
}

func BenchmarkMediumThroughput(b *testing.B) {
	s := sim.New(1)
	m := NewMedium(s, DefaultLAN())
	var c collector
	m.Attach(&collector{})
	m.Attach(&c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Send(Frame{Src: 0, Dst: Broadcast, Payload: make([]byte, 100)}, nil)
		if i%1000 == 999 {
			s.Run()
		}
	}
	s.Run()
}

// discard is a Station that drops frames without retaining them, so the
// broadcast benchmarks measure the medium, not the collector.
type discard struct{ n int }

func (d *discard) FrameArrived(f Frame) { d.n++ }

// BenchmarkMediumBroadcast measures the per-station delivery fast path:
// one sender broadcasting to n-1 receivers on an otherwise idle medium,
// the pattern every CSP round produces. Steady state must not allocate
// (pooled deliveries, prebuilt arbitration/serialization callbacks).
func BenchmarkMediumBroadcast(b *testing.B) {
	for _, n := range []int{4, 16, 32} {
		b.Run(fmt.Sprintf("stations-%02d", n), func(b *testing.B) {
			s := sim.New(1)
			m := NewMedium(s, DefaultLAN())
			sinks := make([]discard, n)
			for i := range sinks {
				m.Attach(&sinks[i])
			}
			payload := make([]byte, 100)
			// Pace sends a hair slower than the medium's full cycle
			// (interframe gap + serialization) so the bus stays idle at
			// each request — the fast path under measurement.
			cycle := DefaultLAN().InterframeS + m.FrameDuration(len(payload)) + 1e-6
			var send func()
			sent := 0
			send = func() {
				sent++
				if sent < b.N {
					m.Send(Frame{Src: 0, Dst: Broadcast, Payload: payload}, nil)
					s.After(cycle, send)
				}
			}
			// Warm the delivery pool and slice capacities.
			m.Send(Frame{Src: 0, Dst: Broadcast, Payload: payload}, nil)
			s.Run()
			b.ReportAllocs()
			b.ResetTimer()
			if b.N > 0 {
				s.After(0, send)
			}
			s.Run()
		})
	}
}

// TestMediumBroadcastZeroAlloc pins the allocation-free property of the
// idle-medium broadcast path.
func TestMediumBroadcastZeroAlloc(t *testing.T) {
	s := sim.New(1)
	m := NewMedium(s, DefaultLAN())
	sinks := make([]discard, 8)
	for i := range sinks {
		m.Attach(&sinks[i])
	}
	payload := make([]byte, 100)
	for i := 0; i < 16; i++ { // warm pools and queue capacity
		m.Send(Frame{Src: 0, Dst: Broadcast, Payload: payload}, nil)
		s.Run()
	}
	allocs := testing.AllocsPerRun(500, func() {
		m.Send(Frame{Src: 0, Dst: Broadcast, Payload: payload}, nil)
		s.Run()
	})
	if allocs != 0 {
		t.Errorf("idle-medium broadcast: %v allocs/op, want 0", allocs)
	}
	for i := 1; i < len(sinks); i++ { // station 0 is the sender
		if sinks[i].n == 0 {
			t.Fatalf("station %d received nothing", i)
		}
	}
}

// TestBackgroundLoadPayloadReuse verifies background frames slice the
// shared scratch buffer instead of allocating per-frame payloads, and
// that the generator still stops cleanly.
func TestBackgroundLoadPayloadReuse(t *testing.T) {
	s := sim.New(1)
	m := NewMedium(s, DefaultLAN())
	m.StartBackgroundLoad(0.4, 400)
	s.RunUntil(0.2) // let the generator reach steady state
	allocs := testing.AllocsPerRun(20, func() {
		s.RunUntil(s.Now() + 0.05)
	})
	if allocs != 0 {
		t.Errorf("steady-state background load: %v allocs/op, want 0", allocs)
	}
	m.StopBackgroundLoad()
	sent, _ := m.Stats()
	s.RunUntil(s.Now() + 0.5)
	after, _ := m.Stats()
	// One in-flight frame may still drain; the generator must not keep
	// producing.
	if after > sent+1 {
		t.Errorf("background load kept sending after stop: %d -> %d", sent, after)
	}
}
