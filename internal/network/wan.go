package network

import "ntisim/internal/sim"

// WANPath models a class (III) long-haul path (paper §1): end-to-end
// delays composed of a base propagation term plus per-hop queueing that
// is heavy-tailed (bounded Pareto) and asymmetric under load — the
// environment NTP lives in, where deterministic guarantees are
// impossible and accuracy lands in the 10 ms range [Tro94].
type WANPath struct {
	s   *sim.Simulator
	cfg WANConfig
	rng *sim.RNG

	delivered uint64
	lost      uint64
}

// WANConfig parameterizes one direction of a WAN path.
type WANConfig struct {
	Hops       int     // intermediate gateways; default 3
	BaseDelayS float64 // propagation+transmission floor; default 5 ms
	// Queueing per hop: bounded Pareto with shape QueueShape on
	// [QueueMinS, QueueMaxS]. Defaults: 1.2, 0.2 ms, 80 ms.
	QueueMinS  float64
	QueueMaxS  float64
	QueueShape float64
	// Asymmetry skews the forward direction's queueing by this factor
	// (>1 = forward slower), modelling asymmetric congestion, the NTP
	// killer. Default 1.
	Asymmetry float64
	LossProb  float64
}

// DefaultWAN returns a mid-90s Internet-path configuration.
func DefaultWAN() WANConfig {
	return WANConfig{
		Hops:       3,
		BaseDelayS: 5e-3,
		QueueMinS:  0.2e-3,
		QueueMaxS:  80e-3,
		QueueShape: 1.2,
		Asymmetry:  1,
	}
}

// NewWANPath creates a path bound to the simulator. label distinguishes
// RNG streams when several paths exist.
func NewWANPath(s *sim.Simulator, cfg WANConfig, label string) *WANPath {
	if cfg.Hops <= 0 {
		cfg.Hops = 3
	}
	if cfg.BaseDelayS <= 0 {
		cfg.BaseDelayS = 5e-3
	}
	if cfg.QueueMinS <= 0 {
		cfg.QueueMinS = 0.2e-3
	}
	if cfg.QueueMaxS <= cfg.QueueMinS {
		cfg.QueueMaxS = cfg.QueueMinS * 100
	}
	if cfg.QueueShape <= 0 {
		cfg.QueueShape = 1.2
	}
	if cfg.Asymmetry <= 0 {
		cfg.Asymmetry = 1
	}
	return &WANPath{s: s, cfg: cfg, rng: s.RNG("wan/" + label)}
}

// SampleDelay draws one end-to-end delay. forward selects the skewed
// direction.
func (w *WANPath) SampleDelay(forward bool) float64 {
	d := w.cfg.BaseDelayS
	skew := 1.0
	if forward {
		skew = w.cfg.Asymmetry
	}
	for h := 0; h < w.cfg.Hops; h++ {
		d += skew * w.rng.Pareto(w.cfg.QueueShape, w.cfg.QueueMinS, w.cfg.QueueMaxS)
	}
	return d
}

// Deliver schedules fn after a sampled one-way delay, or drops the
// packet with the configured loss probability. It reports whether the
// packet survived.
func (w *WANPath) Deliver(forward bool, fn func(sentAt, arrivedAt float64)) bool {
	if w.cfg.LossProb > 0 && w.rng.Bool(w.cfg.LossProb) {
		w.lost++
		return false
	}
	sent := w.s.Now()
	d := w.SampleDelay(forward)
	w.s.After(d, func() { fn(sent, sent+d) })
	w.delivered++
	return true
}

// Stats returns packets delivered and lost.
func (w *WANPath) Stats() (delivered, lost uint64) { return w.delivered, w.lost }

// MinDelay returns the smallest possible one-way delay, the floor an
// NTP-style algorithm can calibrate against.
func (w *WANPath) MinDelay() float64 {
	return w.cfg.BaseDelayS + float64(w.cfg.Hops)*w.cfg.QueueMinS
}
