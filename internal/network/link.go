// Dedicated point-to-point WAN links for the sharded WANs-of-LANs
// topology (paper footnote 2; DESIGN.md §8).
//
// A gateway node lives entirely on its home shard; its second COMCO
// channel attaches not to the remote segment's Medium (which belongs
// to another shard's simulator) but to a LinkPort: the near end of a
// dedicated full-duplex store-and-forward link. The far end is a
// Relay, an ordinary Station on the remote Medium. The wire between
// them is abstract — the cluster layer carries frames across as
// timestamped cross-shard posts delayed by the WAN propagation delay,
// which is exactly the Group's conservative lookahead.
//
//	gateway COMCO ch1 ── LinkPort ──(cross-shard, +D)── Relay ── remote Medium
//
// The link is deliberately simple compared to Medium: FIFO per
// direction, deterministic acquisition (no contention jitter — the
// line is dedicated), no CRC errors (WAN framing is modeled
// error-free; LAN-side CRC draws still happen on each Medium).
// Corrupt flags picked up on the remote LAN ride through unchanged.
//
// Because a relayed frame spends extra true time in flight (link
// serialization + WAN propagation), its embedded CSP transmit
// timestamp would violate the LAN-scale [DelayMin, DelayMax] bounds
// the receivers compensate with. Both directions therefore apply a
// RewriteFunc at the final acquisition — the moment the last hop
// toward the ultimate receivers starts serializing — with the true
// time elapsed since the frame's original acquisition. The cluster
// layer uses it to advance the embedded transmit stamp and widen its
// accuracy field (a PTP-transparent-clock-style correction; see
// cluster.relayRewrite for the error argument).
package network

import (
	"fmt"

	"ntisim/internal/sim"
	"ntisim/internal/telemetry"
)

// LinkConfig parameterizes one direction-symmetric point-to-point link.
type LinkConfig struct {
	BitRateBps   float64 // default 10 Mb/s
	PreambleBits int     // default 64
	InterframeS  float64 // minimum gap between frames; default 9.6 µs
}

func (c LinkConfig) withDefaults() LinkConfig {
	if c.BitRateBps <= 0 {
		c.BitRateBps = 10e6
	}
	if c.PreambleBits <= 0 {
		c.PreambleBits = 64
	}
	if c.InterframeS <= 0 {
		c.InterframeS = 9.6e-6
	}
	return c
}

// RewriteFunc edits a relayed frame's payload in place at its final
// acquisition, elapsedS true seconds after the frame's original
// medium acquisition. The payload is a private copy owned by the
// relayed frame, never shared with the originating shard.
type RewriteFunc func(payload []byte, elapsedS float64)

// LinkPort is the home-shard end of a dedicated WAN link. It
// implements Bus for exactly one attached station (the gateway's
// second COMCO channel): Send serializes uplink frames FIFO and hands
// them to the forward callback at serialization end; Inject (invoked
// by the cluster when a far-side frame crosses the shard boundary)
// serializes downlink frames FIFO and delivers them to the station.
type LinkPort struct {
	s       *sim.Simulator
	cfg     LinkConfig
	st      Station
	forward func(f Frame)
	rewrite RewriteFunc

	txBusyUntil float64
	rxBusyUntil float64
	nextID      uint64
	sent        uint64
	received    uint64

	tmTx *telemetry.Counter
	tmRx *telemetry.Counter
}

// SetTelemetry registers WAN-traffic counters (uplink frames forwarded,
// downlink frames delivered) on r; nil detaches.
func (p *LinkPort) SetTelemetry(r *telemetry.Registry) {
	if r == nil {
		p.tmTx, p.tmRx = nil, nil
		return
	}
	p.tmTx = r.Counter("net.wan_tx")
	p.tmRx = r.Counter("net.wan_rx")
}

// NewLinkPort creates the home end of a link on the home shard's
// simulator. forward receives each uplink frame (payload already a
// private copy, AcquiredAt set to the uplink serialization start) at
// serialization end; the cluster posts it across the shard boundary.
func NewLinkPort(s *sim.Simulator, cfg LinkConfig, forward func(f Frame), rewrite RewriteFunc) *LinkPort {
	if forward == nil {
		panic("network: LinkPort needs a forward callback")
	}
	return &LinkPort{s: s, cfg: cfg.withDefaults(), forward: forward, rewrite: rewrite}
}

// Attach registers the single served station. The returned id is
// always 0: a point-to-point line has one endpoint per side.
func (p *LinkPort) Attach(st Station) int {
	if p.st != nil {
		panic("network: LinkPort already has its station attached")
	}
	p.st = st
	return 0
}

// Bitrate returns the link bit rate (Bus interface; the COMCO paces
// its DMA reads with it).
func (p *LinkPort) Bitrate() float64 { return p.cfg.BitRateBps }

// FrameDuration returns the serialization time of n payload bytes.
func (p *LinkPort) FrameDuration(n int) float64 {
	return (float64(p.cfg.PreambleBits) + 8*float64(n)) / p.cfg.BitRateBps
}

// Stats returns frames sent uplink and delivered downlink.
func (p *LinkPort) Stats() (sent, received uint64) { return p.sent, p.received }

// Send queues an uplink frame (Bus interface). Acquisition is
// deterministic: the line is dedicated, so the frame starts after the
// interframe gap as soon as the transmitter is free. onAcquired fires
// at serialization start, exactly as on Medium, so the COMCO's timed
// DMA reads — and the NTI's in-flight transmit timestamping — behave
// identically on both bus kinds.
func (p *LinkPort) Send(f Frame, onAcquired func(at float64)) uint64 {
	p.nextID++
	f.ID = p.nextID
	f.RequestedAt = p.s.Now()
	start := p.s.Now()
	if p.txBusyUntil > start {
		start = p.txBusyUntil
	}
	start += p.cfg.InterframeS
	end := start + p.FrameDuration(len(f.Payload))
	p.txBusyUntil = end
	if onAcquired != nil {
		p.s.At(start, func() { onAcquired(start) })
	}
	p.s.At(end, func() {
		f.AcquiredAt = start
		// Copy after serialization completes: the COMCO's DMA reads have
		// finished stamping the header by then, and the copy unshares
		// the payload from the sender before it crosses shards.
		f.Payload = append([]byte(nil), f.Payload...)
		p.sent++
		p.tmTx.Inc()
		p.forward(f)
	})
	return f.ID
}

// Inject delivers a far-side frame to the attached station: called on
// the home shard (via a cross-shard post) when a frame forwarded by
// the Relay arrives over the WAN. The frame is serialized FIFO onto
// the port's downlink, its payload rewritten at acquisition, and
// handed to the station at the last bit.
func (p *LinkPort) Inject(f Frame) {
	if p.st == nil {
		panic("network: LinkPort.Inject with no station attached")
	}
	start := p.s.Now()
	if p.rxBusyUntil > start {
		start = p.rxBusyUntil
	}
	start += p.cfg.InterframeS
	end := start + p.FrameDuration(len(f.Payload))
	p.rxBusyUntil = end
	p.s.At(end, func() {
		if p.rewrite != nil {
			p.rewrite(f.Payload, start-f.AcquiredAt)
		}
		f.AcquiredAt = start
		f.DeliveredAt = end
		p.received++
		p.tmRx.Inc()
		p.st.FrameArrived(f)
	})
}

// Relay is the far end of a LinkPort: an ordinary station on the
// remote segment's Medium. Broadcast frames it hears are copied and
// handed to forward (the cluster posts them to LinkPort.Inject across
// the shard boundary); frames from the far gateway are re-broadcast
// onto the medium via Inject, rewritten at acquisition.
//
// Only relays forward and every forwarded frame carries the relay's
// own station id as source, so relayed traffic can never loop: the
// medium never delivers a frame back to its sender, and nothing else
// on a segment re-forwards.
type Relay struct {
	med     *Medium
	id      int
	forward func(f Frame)
	rewrite RewriteFunc
	tmFwd   *telemetry.Counter
}

// SetTelemetry registers the relay-traffic counter (remote-LAN frames
// captured for the far gateway) on r; nil detaches.
func (r *Relay) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		r.tmFwd = nil
		return
	}
	r.tmFwd = reg.Counter("net.relay_fwd")
}

// NewRelay attaches a relay to the remote medium.
func NewRelay(med *Medium, forward func(f Frame), rewrite RewriteFunc) *Relay {
	if forward == nil {
		panic("network: Relay needs a forward callback")
	}
	r := &Relay{med: med, forward: forward, rewrite: rewrite}
	r.id = med.Attach(r)
	return r
}

// StationID returns the relay's attach id on the remote medium.
func (r *Relay) StationID() int { return r.id }

// FrameArrived captures one remote-LAN frame for the far gateway
// (Station interface). The payload is copied here, on the remote
// shard, so the cross-shard post owns it exclusively.
func (r *Relay) FrameArrived(f Frame) {
	f.Payload = append([]byte(nil), f.Payload...)
	r.tmFwd.Inc()
	r.forward(f)
}

// Inject re-broadcasts a frame from the far gateway onto the local
// medium: normal FIFO arbitration, jitter, CRC and delivery fan-out
// apply, so to every local receiver the relayed CSP is
// indistinguishable from a locally transmitted one (modulo the
// rewritten stamp). Must run on the medium's own shard.
func (r *Relay) Inject(f Frame) {
	origAcquired := f.AcquiredAt
	payload := f.Payload
	r.med.Send(Frame{Src: r.id, Dst: f.Dst, Payload: payload}, func(at float64) {
		if r.rewrite != nil {
			r.rewrite(payload, at-origAcquired)
		}
	})
}

// String implements fmt.Stringer for diagnostics.
func (r *Relay) String() string { return fmt.Sprintf("relay(station %d)", r.id) }
