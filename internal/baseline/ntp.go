package baseline

import (
	"math"

	"ntisim/internal/network"
	"ntisim/internal/sim"
	"ntisim/internal/timefmt"
	"ntisim/internal/utcsu"
)

// NTPClient is a software-only WAN time client in the style of the
// Network Time Protocol [Mil91]: it polls a server across a WANPath,
// computes the classic offset/delay estimates from four timestamps,
// filters by minimum round-trip delay, and disciplines the local clock.
// Under the heavy-tailed, possibly asymmetric queueing delays of class
// (III) systems it lands in the ~10 ms accuracy regime the paper quotes
// from [Tro94] — the E7 contrast to the NTI's µs on a LAN.
type NTPClient struct {
	s    *sim.Simulator
	u    *utcsu.UTCSU
	path *network.WANPath
	cfg  NTPConfig

	// shift register of recent (delay, offset) samples; the minimum-
	// delay sample wins (NTP's clock filter).
	samples []ntpSample
	polls   uint64
	synced  bool
	ticker  *sim.Ticker
	rng     *sim.RNG
}

type ntpSample struct {
	delay  float64
	offset float64 // seconds to ADD to local clock
}

// NTPConfig tunes the client.
type NTPConfig struct {
	PollInterval float64 // default 16 s
	FilterDepth  int     // clock-filter shift register size; default 8
	// ServerErrS is the server's own clock error bound (drawn uniformly
	// per response); default 1 ms.
	ServerErrS float64
	// StepThresholdS: larger offsets step the clock; smaller ones slew.
	StepThresholdS float64
}

// DefaultNTP returns a mid-90s configuration.
func DefaultNTP() NTPConfig {
	return NTPConfig{
		PollInterval:   16,
		FilterDepth:    8,
		ServerErrS:     1e-3,
		StepThresholdS: 128e-3,
	}
}

// NewNTPClient binds a client to a local UTCSU (used purely as a
// software-read clock — no NTI support on this path) and a WAN path to
// the server.
func NewNTPClient(s *sim.Simulator, u *utcsu.UTCSU, path *network.WANPath, cfg NTPConfig) *NTPClient {
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 16
	}
	if cfg.FilterDepth <= 0 {
		cfg.FilterDepth = 8
	}
	if cfg.StepThresholdS <= 0 {
		cfg.StepThresholdS = 128e-3
	}
	return &NTPClient{s: s, u: u, path: path, cfg: cfg, rng: s.RNG("ntp-server")}
}

// Start begins polling.
func (c *NTPClient) Start() {
	c.ticker = c.s.Every(c.s.Now()+1, c.cfg.PollInterval, c.poll)
}

// Stop halts polling.
func (c *NTPClient) Stop() {
	if c.ticker != nil {
		c.ticker.Stop()
	}
}

// Polls reports completed polls.
func (c *NTPClient) Polls() uint64 { return c.polls }

// poll performs one NTP exchange: client → server → client.
func (c *NTPClient) poll() {
	t1 := c.u.Now().Seconds() // software read of the local clock
	c.path.Deliver(true, func(_, reqArrive float64) {
		// Server timestamps with its own (bounded) error.
		srvErr := c.rng.Uniform(-c.cfg.ServerErrS, c.cfg.ServerErrS)
		t2 := reqArrive + srvErr
		t3 := t2 // negligible server turnaround
		c.path.Deliver(false, func(_, respArrive float64) {
			t4 := c.u.Now().Seconds()
			_ = respArrive
			offset := ((t2 - t1) + (t3 - t4)) / 2
			delay := (t4 - t1) - (t3 - t2)
			c.ingest(ntpSample{delay: delay, offset: offset})
		})
	})
}

// ingest runs the clock filter and disciplines the clock.
func (c *NTPClient) ingest(sm ntpSample) {
	c.polls++
	c.samples = append(c.samples, sm)
	if len(c.samples) > c.cfg.FilterDepth {
		c.samples = c.samples[1:]
	}
	best := c.samples[0]
	for _, s := range c.samples[1:] {
		if s.delay < best.delay {
			best = s
		}
	}
	off := best.offset
	if math.Abs(off) >= c.cfg.StepThresholdS {
		c.u.StepTo(c.u.Now().Add(timefmt.DurationFromSeconds(off)))
		c.synced = true
		return
	}
	// Slew: amortize a fraction of the filtered offset each poll (a
	// crude PLL, matching SNTP-class implementations).
	c.u.Amortize(timefmt.DurationFromSeconds(off/2), 500)
	c.synced = true
}

// OffsetSeconds returns the client clock's current error versus true
// time (simulation ground truth, for the experiment harness).
func (c *NTPClient) OffsetSeconds() float64 {
	snap := c.u.Snapshot()
	return snap.Clock.Seconds() - snap.TrueTime
}
