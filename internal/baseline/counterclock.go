// Package baseline implements the comparators the paper measures the
// NTI/UTCSU against:
//
//   - CounterClock: a CSU/[KO87]/[KKMS95]-class counter-based clock with
//     µs granularity, coarse rate steps and no continuous amortization
//     (experiment E8's ablation of the adder-based clock design);
//   - NTPClient: a software-only, WAN-polling client in the style of the
//     Network Time Protocol [Mil91] for the class (III) comparison of
//     experiment E7.
//
// The software-only LAN baselines of experiment E2 need no code here:
// they are the kernel's ModeISR/ModeTask timestamping classes running
// the same synchronization algorithm.
package baseline

import (
	"ntisim/internal/clocksync"
	"ntisim/internal/timefmt"
	"ntisim/internal/utcsu"
)

// CounterClock wraps a UTCSU to behave like the earlier counter-based
// clock synchronization units (paper §5):
//
//   - readings are quantized to a coarse granularity G (default ~1 µs,
//     the CSU's and [KKMS95]'s clock granularity);
//   - rate adjustments are quantized to steps of u ≈ G per second
//     (paper §5: "they utilize a clock with granularity G = 1 µs" and
//     the achievable precision is impaired by 4G + 10u);
//   - there is no continuous amortization: state corrections are
//     instantaneous steps (the UTCSU feature "not found in alternative
//     approaches").
type CounterClock struct {
	u *utcsu.UTCSU
	// granule is the visible granularity in 2⁻²⁴ s units.
	granule timefmt.Stamp
	// rateStepPPB is the coarse rate quantum.
	rateStepPPB int64
	ratePPB     int64
}

// CounterClockConfig tunes the emulated device.
type CounterClockConfig struct {
	// GranuleUnits is the read granularity in 2⁻²⁴ s units (default 17
	// ≈ 1.01 µs).
	GranuleUnits int
	// RateStepPPB is the rate-adjustment quantum (default 1000 ppb,
	// i.e. u ≈ 1 µs/s).
	RateStepPPB int64
}

// NewCounterClock wraps the UTCSU.
func NewCounterClock(u *utcsu.UTCSU, cfg CounterClockConfig) *CounterClock {
	if cfg.GranuleUnits <= 0 {
		cfg.GranuleUnits = 17
	}
	if cfg.RateStepPPB <= 0 {
		cfg.RateStepPPB = 1000
	}
	return &CounterClock{
		u:           u,
		granule:     timefmt.Stamp(cfg.GranuleUnits),
		rateStepPPB: cfg.RateStepPPB,
	}
}

var _ clocksync.Clock = (*CounterClock)(nil)

// Now returns the reading truncated to the coarse granularity.
func (c *CounterClock) Now() timefmt.Stamp {
	v := c.u.Now()
	return v - v%c.granule
}

// Alpha passes the accuracy registers through (quantized up to the
// coarse granule so containment still holds under coarser reads).
func (c *CounterClock) Alpha() (timefmt.Alpha, timefmt.Alpha) {
	am, ap := c.u.Alpha()
	g := timefmt.Alpha(c.granule)
	return am.AddSat(g), ap.AddSat(g)
}

// SetRatePPB quantizes to the device's coarse rate steps.
func (c *CounterClock) SetRatePPB(ppb int64) {
	q := ppb / c.rateStepPPB * c.rateStepPPB
	c.ratePPB = q
	c.u.SetRatePPB(q)
}

// RatePPB returns the last quantized command.
func (c *CounterClock) RatePPB() int64 { return c.ratePPB }

// RateStepPPB reports the coarse quantum — the u in 4G+10u.
func (c *CounterClock) RateStepPPB() float64 { return float64(c.rateStepPPB) }

// Amortize is not available in counter-based designs: the correction is
// applied as an instantaneous step.
func (c *CounterClock) Amortize(delta timefmt.Duration, _ int64) {
	if delta == 0 {
		return
	}
	c.u.StepTo(c.u.Now().Add(delta))
}

// StepTo loads the clock.
func (c *CounterClock) StepTo(v timefmt.Stamp) { c.u.StepTo(v) }

// SetAlpha loads the accuracy registers.
func (c *CounterClock) SetAlpha(minus, plus timefmt.Duration) { c.u.SetAlpha(minus, plus) }

// SetDriftBoundPPB programs deterioration.
func (c *CounterClock) SetDriftBoundPPB(minus, plus int64) { c.u.SetDriftBoundPPB(minus, plus) }

// DutyAt arms a timer; the coarse device fires on its coarse grid.
func (c *CounterClock) DutyAt(target timefmt.Stamp, fn func()) clocksync.Timer {
	return c.u.DutyAt(target, fn)
}

// QuantizeStamp coarsens hardware stamps to the counter granule: a
// CSU-class device timestamps packets with its own µs-level clock.
func (c *CounterClock) QuantizeStamp(s timefmt.Stamp) timefmt.Stamp {
	return s - s%c.granule
}

// GranuleSeconds reports the coarse G.
func (c *CounterClock) GranuleSeconds() float64 {
	return float64(c.granule) * timefmt.Granule
}
