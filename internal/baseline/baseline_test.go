package baseline

import (
	"math"
	"testing"

	"ntisim/internal/network"
	"ntisim/internal/oscillator"
	"ntisim/internal/sim"
	"ntisim/internal/timefmt"
	"ntisim/internal/utcsu"
)

func mkUTCSU(s *sim.Simulator, label string) *utcsu.UTCSU {
	o := oscillator.New(s, oscillator.TCXO(10e6), label)
	return utcsu.New(s, utcsu.Config{Osc: o})
}

func TestCounterClockGranularity(t *testing.T) {
	s := sim.New(1)
	c := NewCounterClock(mkUTCSU(s, "a"), CounterClockConfig{})
	s.RunUntil(1.2345)
	v := c.Now()
	if v%17 != 0 {
		t.Errorf("reading %v not on the coarse grid", v)
	}
	if g := c.GranuleSeconds(); g < 0.9e-6 || g > 1.2e-6 {
		t.Errorf("granule = %v, want ~1µs", g)
	}
	// Coarse reads lose up to G versus the underlying clock.
	fine := c.u.Now()
	if d := fine.Sub(v); d < 0 || d > 17 {
		t.Errorf("quantization error %v granules", d)
	}
}

func TestCounterClockRateQuantization(t *testing.T) {
	s := sim.New(2)
	c := NewCounterClock(mkUTCSU(s, "a"), CounterClockConfig{})
	c.SetRatePPB(1499)
	if c.RatePPB() != 1000 {
		t.Errorf("rate %v, want quantized to 1000", c.RatePPB())
	}
	c.SetRatePPB(-2500)
	if c.RatePPB() != -2000 {
		t.Errorf("rate %v, want -2000", c.RatePPB())
	}
	if c.RateStepPPB() != 1000 {
		t.Errorf("rate step %v", c.RateStepPPB())
	}
	s.RunUntil(0.1)
}

func TestCounterClockRateStepVsUTCSU(t *testing.T) {
	// The whole point of E8: the adder-based UTCSU adjusts ~100x finer.
	s := sim.New(3)
	u := mkUTCSU(s, "a")
	c := NewCounterClock(u, CounterClockConfig{})
	if c.RateStepPPB() < 50*u.RateStepPPB() {
		t.Errorf("counter step %v should dwarf adder step %v", c.RateStepPPB(), u.RateStepPPB())
	}
}

func TestCounterClockAmortizeIsStep(t *testing.T) {
	s := sim.New(4)
	c := NewCounterClock(mkUTCSU(s, "a"), CounterClockConfig{})
	s.RunUntil(1)
	before := c.u.Now()
	c.Amortize(timefmt.DurationFromSeconds(50e-6), 5000)
	s.RunUntil(1.0001) // a blink later — the step is already complete
	got := c.u.Now().Sub(before).Seconds()
	if math.Abs(got-(0.0001+50e-6)) > 5e-6 {
		t.Errorf("counter 'amortization' advanced %v, want instant step", got)
	}
	// And the step is visible as non-monotonic rate, unlike the UTCSU.
	if on, _ := c.u.Amortizing(); on {
		t.Error("counter clock must not use continuous amortization")
	}
}

func TestCounterClockAlphaPassThrough(t *testing.T) {
	s := sim.New(5)
	c := NewCounterClock(mkUTCSU(s, "a"), CounterClockConfig{})
	c.SetAlpha(timefmt.DurationFromSeconds(10e-6), timefmt.DurationFromSeconds(10e-6))
	s.RunUntil(0.01)
	am, ap := c.Alpha()
	// Coarser than the raw registers by the read granule.
	if am.Duration().Seconds() < 10e-6 || ap.Duration().Seconds() < 10e-6 {
		t.Errorf("alpha lost width: %v/%v", am, ap)
	}
}

func TestCounterClockDutyTimer(t *testing.T) {
	s := sim.New(6)
	c := NewCounterClock(mkUTCSU(s, "a"), CounterClockConfig{})
	fired := false
	c.DutyAt(timefmt.Stamp(timefmt.DurationFromSeconds(1)), func() { fired = true })
	s.RunUntil(2)
	if !fired {
		t.Error("duty timer dead")
	}
}

func TestNTPConvergesToMsRange(t *testing.T) {
	s := sim.New(7)
	u := mkUTCSU(s, "ntp")
	path := network.NewWANPath(s, network.DefaultWAN(), "ntp")
	c := NewNTPClient(s, u, path, DefaultNTP())
	c.Start()
	s.RunUntil(600)
	var worst float64
	for x := 600.0; x <= 900; x += 10 {
		s.RunUntil(x)
		worst = math.Max(worst, math.Abs(c.OffsetSeconds()))
	}
	if c.Polls() < 30 {
		t.Fatalf("only %d polls", c.Polls())
	}
	// NTP over a queueing WAN: ms-range, definitely not µs.
	if worst > 100e-3 {
		t.Errorf("NTP worst offset %v, want within ~10ms-range", worst)
	}
	if worst < 1e-6 {
		t.Errorf("NTP offset %v implausibly good for a WAN", worst)
	}
}

func TestNTPAsymmetryBias(t *testing.T) {
	// Asymmetric queueing biases NTP's offset estimate by ~half the
	// asymmetry — the structural failure mode deterministic LANs with
	// hardware stamping do not have.
	run := func(asym float64) float64 {
		s := sim.New(8)
		u := mkUTCSU(s, "ntp")
		cfg := network.DefaultWAN()
		cfg.Asymmetry = asym
		path := network.NewWANPath(s, cfg, "ntp")
		c := NewNTPClient(s, u, path, DefaultNTP())
		c.Start()
		s.RunUntil(300)
		var sum float64
		n := 0
		for x := 300.0; x <= 900; x += 10 {
			s.RunUntil(x)
			sum += c.OffsetSeconds()
			n++
		}
		return sum / float64(n) // signed mean: exposes systematic bias
	}
	sym := run(1)
	skew := run(4)
	if math.Abs(skew) < 2*math.Abs(sym) || math.Abs(skew) < 0.5e-3 {
		t.Errorf("asymmetry bias not visible: sym mean %v, asym mean %v", sym, skew)
	}
}

func TestNTPStopsPolling(t *testing.T) {
	s := sim.New(9)
	u := mkUTCSU(s, "ntp")
	path := network.NewWANPath(s, network.DefaultWAN(), "ntp")
	c := NewNTPClient(s, u, path, DefaultNTP())
	c.Start()
	s.RunUntil(100)
	n := c.Polls()
	c.Stop()
	s.RunUntil(300)
	if c.Polls() > n+1 { // one in-flight poll may still land
		t.Errorf("polls after Stop: %d -> %d", n, c.Polls())
	}
}
