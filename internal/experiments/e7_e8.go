package experiments

import (
	"math"

	"ntisim/internal/baseline"
	"ntisim/internal/clocksync"
	"ntisim/internal/cluster"
	"ntisim/internal/metrics"
	"ntisim/internal/network"
	"ntisim/internal/oscillator"
	"ntisim/internal/sim"
	"ntisim/internal/utcsu"
)

// E7WANvsLAN reproduces the §1 system-class comparison: NTP-style
// software synchronization over a class (III) long-haul path lands in
// the ~10 ms regime [Tro94], while the NTI on a class (II) LAN delivers
// µs — four orders of magnitude.
func E7WANvsLAN(seed uint64) Result {
	r := Result{
		ID:         "E7",
		Title:      "class III (NTP over WAN) vs class II (NTI on LAN) accuracy",
		PaperClaim: "§1: NTP reports ~10 ms maximum deviations under reasonable conditions; NTI targets 1 µs on LANs",
		Claims:     map[string]bool{},
		Numbers:    map[string]float64{},
	}
	r.Table.Header = []string{"system", "path", "worst |C-t| [ms]"}

	ntpRun := func(asym float64, label string) (worst, bias float64) {
		s := sim.New(seed)
		o := oscillator.New(s, oscillator.TCXO(10e6), "ntp"+label)
		u := utcsu.New(s, utcsu.Config{Osc: o})
		wcfg := network.DefaultWAN()
		wcfg.Asymmetry = asym
		path := network.NewWANPath(s, wcfg, "ntp"+label)
		c := baseline.NewNTPClient(s, u, path, baseline.DefaultNTP())
		c.Start()
		s.RunUntil(600)
		var sum float64
		n := 0
		for x := 600.0; x <= 2400; x += 10 {
			s.RunUntil(x)
			off := c.OffsetSeconds()
			worst = math.Max(worst, math.Abs(off))
			sum += off
			n++
		}
		return worst, sum / float64(n)
	}
	sym, symBias := ntpRun(1, "sym")
	asym, asymBias := ntpRun(4, "asym")
	r.Table.AddRow("NTP (software)", "3-hop WAN, symmetric", metrics.Ms(sym))
	r.Table.AddRow("NTP (software)", "3-hop WAN, 4x asymmetric", metrics.Ms(asym))

	// LAN with NTI + GPS anchor: the class-II target system.
	cfg := cluster.Defaults(8, seed)
	cfg.GPS = mapGPS(0, 1)
	c := cluster.New(cfg)
	applyMeasuredDelays(c)
	c.Start(c.Sim.Now() + 1)
	_, acc, _ := precisionWindow(c, c.Sim.Now()+60, 120, 1)
	r.Table.AddRow("NTI (hardware)", "10 Mb/s shared LAN", metrics.Ms(acc.Max()))

	r.Numbers["ntp_sym"] = sym
	r.Numbers["ntp_asym"] = asym
	r.Numbers["ntp_sym_bias"] = symBias
	r.Numbers["ntp_asym_bias"] = asymBias
	r.Numbers["nti_lan"] = acc.Max()
	r.Claims["NTP lands in the ms..10ms regime"] = sym > 100e-6 && sym < 100e-3
	// Asymmetric queueing biases NTP's offset estimator systematically
	// (half the one-way delay difference) — visible in the signed mean,
	// which a deterministic LAN with hardware stamping cannot exhibit.
	r.Claims["asymmetry biases NTP by ≥ 0.4 ms"] = asymBias-symBias > 0.4e-3
	r.Claims["NTI ≥ 100x better than NTP"] = sym > 100*acc.Max()
	return r
}

// E8AdderVsCounter reproduces the §5 design ablation: the UTCSU's
// adder-based clock (rate steps of fosc·2⁻⁵¹ ≈ 9 ns/s, continuous
// amortization) versus a CSU/[KKMS95]-class counter-based device
// (G ≈ 1 µs readings, ~1 µs/s rate steps, stepwise state corrections),
// running the identical synchronization algorithm.
func E8AdderVsCounter(seed uint64) Result {
	r := Result{
		ID:         "E8",
		Title:      "adder-based UTCSU clock vs counter-based (CSU-class) clock",
		PaperClaim: "§5: granularity effects ignored by [KKMS95]; 4G+10u with G=1µs forbids 1 µs precision; adder-based design surpasses counter-based",
		Claims:     map[string]bool{},
		Numbers:    map[string]float64{},
	}
	r.Table.Header = []string{"clock device", "G [µs]", "u [µs/s]", "4G+10u [µs]", "worst prec [µs]"}
	run := func(counter bool) (prec float64, g, u float64) {
		cfg := cluster.Defaults(4, seed)
		cfg.Sync.RateSync = true // exercise the rate-step quantum u
		if counter {
			cfg.ClockFactory = func(uu *utcsu.UTCSU) clocksync.Clock {
				return baseline.NewCounterClock(uu, baseline.CounterClockConfig{})
			}
		}
		c := cluster.New(cfg)
		applyMeasuredDelays(c)
		c.Start(c.Sim.Now() + 1)
		p, _, _ := precisionWindow(c, c.Sim.Now()+20, 60, 0.7)
		var clk clocksync.Clock = clocksync.UTCSUClock{UTCSU: c.Members[0].U}
		if counter {
			clk = baseline.NewCounterClock(c.Members[0].U, baseline.CounterClockConfig{})
		}
		return p.Max(), clk.GranuleSeconds(), clk.RateStepPPB() * 1e-9
	}
	pAdder, gA, uA := run(false)
	pCounter, gC, uC := run(true)
	boundAdder := 4*gA + 10*uA   // u per second over the 1 s round
	boundCounter := 4*gC + 10*uC // the §5 worst-case impairment
	r.Table.AddRow("adder (UTCSU)", metrics.Us(gA), metrics.Us(uA), metrics.Us(boundAdder), metrics.Us(pAdder))
	r.Table.AddRow("counter (CSU-class)", metrics.Us(gC), metrics.Us(uC), metrics.Us(boundCounter), metrics.Us(pCounter))
	r.Numbers["prec_adder"] = pAdder
	r.Numbers["prec_counter"] = pCounter
	r.Numbers["bound_adder"] = boundAdder
	r.Numbers["bound_counter"] = boundCounter
	r.Claims["adder clock strictly more precise (measured)"] = pAdder < pCounter
	// The paper's §5 point verbatim: the CSU-class worst-case impairment
	// alone already exceeds 1 µs, so "a few µs worst case precision" is
	// only legitimate when granularity effects are ignored.
	r.Claims["counter impairment bound 4G+10u forbids sub-µs"] = boundCounter > 1e-6
	r.Claims["adder impairment bound permits sub-µs"] = boundAdder < 1e-6
	r.Claims["adder clock reaches low-µs precision"] = pAdder < 4e-6
	r.Notes = append(r.Notes,
		"measured precision under the typical workload sits below the worst-case bound for both devices; the bound gap (50x) is the design argument")
	return r
}
