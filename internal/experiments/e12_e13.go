package experiments

import (
	"fmt"

	"ntisim/internal/cluster"
	"ntisim/internal/csp"
	"ntisim/internal/kernel"
	"ntisim/internal/metrics"
	"ntisim/internal/network"
	"ntisim/internal/timefmt"
)

// E12ByzantineNode exercises the fault-tolerance requirement (P)/(A) of
// the generic algorithm (paper §2): with at most f faulty nodes, the
// *correct* nodes keep precision and containment. The faulty node is
// not crashed but actively misleading: its clock is yanked around by
// milliseconds every round, so its hardware-stamped CSPs carry
// confidently-wrong intervals.
func E12ByzantineNode(seed uint64) Result {
	r := Result{
		ID:         "E12",
		Title:      "actively faulty node: (P)/(A) among correct nodes with f-tolerant convergence",
		PaperClaim: "§2: (P) and (A) must hold for all nodes non-faulty up to t, despite faulty input intervals",
		Claims:     map[string]bool{},
		Numbers:    map[string]float64{},
	}
	r.Table.Header = []string{"F", "correct-node worst prec [µs]", "containment violations"}

	run := func(f int) (prec float64, violations int) {
		cfg := cluster.Defaults(7, seed)
		cfg.Sync.F = f
		c := cluster.New(cfg)
		applyMeasuredDelays(c)
		c.Start(c.Sim.Now() + 1)
		evil := c.Members[6]
		rng := c.Sim.RNG("byzantine")
		// Yank the faulty node's clock by ±1..3 ms once per round.
		tick := c.Sim.Every(c.Sim.Now()+5, 1.0, func() {
			jump := timefmt.DurationFromSeconds(rng.Uniform(1e-3, 3e-3))
			if rng.Bool(0.5) {
				jump = -jump
			}
			evil.U.StepTo(evil.U.Now().Add(jump))
		})
		defer tick.Stop()
		c.Sim.RunUntil(c.Sim.Now() + 20)
		var ps metrics.Series
		start := c.Sim.Now()
		for t := start; t <= start+60; t += 1 {
			c.Sim.RunUntil(t)
			// Precision and containment over the six correct nodes only.
			lo, hi := 0.0, 0.0
			first := true
			for _, m := range c.Members[:6] {
				off, le, he := m.OffsetAndBounds()
				if le > 0 || he < 0 {
					violations++
				}
				if first {
					lo, hi, first = off, off, false
					continue
				}
				if off < lo {
					lo = off
				}
				if off > hi {
					hi = off
				}
			}
			ps.Add(hi - lo)
		}
		return ps.Max(), violations
	}

	pTol, vTol := run(2) // 7 nodes tolerate f=2; 1 actual traitor
	pNone, vNone := run(0)
	r.Table.AddRow("2 (tolerant)", metrics.Us(pTol), fmt.Sprint(vTol))
	r.Table.AddRow("0 (trusting)", metrics.Us(pNone), fmt.Sprint(vNone))
	r.Numbers["prec_tolerant"] = pTol
	r.Numbers["prec_trusting"] = pNone
	r.Numbers["violations_tolerant"] = float64(vTol)

	r.Claims["correct nodes keep low-µs precision with f=2"] = pTol < 6e-6
	r.Claims["containment holds for correct nodes with f=2"] = vTol == 0
	r.Claims["f=0 is visibly poisoned by the traitor"] = pNone > 5*pTol
	return r
}

// E13HardwareMeasuredPrecision evaluates precision the way the authors
// planned to with the SNU/snapshot features (paper §3.3: provisions "to
// facilitate an experimental evaluation of precision/accuracy"): a
// probe CSP is broadcast, every node's RECEIVE trigger samples its own
// clock within sub-µs of the same physical event (same last bit on the
// shared medium), and the spread of those hardware samples — minus the
// deterministic skew — measures precision *without access to simulation
// truth*. The experiment cross-checks this hardware estimate against
// the simulator's ground truth.
func E13HardwareMeasuredPrecision(seed uint64) Result {
	r := Result{
		ID:         "E13",
		Title:      "precision measured by the hardware itself (broadcast-triggered snapshots)",
		PaperClaim: "§3.3: SNU snapshots exist to evaluate precision/accuracy experimentally; the 16-node prototype evaluation would use them",
		Claims:     map[string]bool{},
		Numbers:    map[string]float64{},
	}
	cfg := cluster.Defaults(8, seed)
	c := cluster.New(cfg)
	applyMeasuredDelays(c)

	// Collect every member's hardware rx stamp per probe round.
	type probeSample struct {
		node  int
		stamp timefmt.Stamp
	}
	samples := map[uint32][]probeSample{}
	for i, m := range c.Members {
		i := i
		m.Node.OnCSP(func(ar kernel.Arrival) {
			if ar.Pkt.Kind == csp.KindCSP && ar.Pkt.Dest == 0xBEE && ar.StampOK {
				samples[ar.Pkt.Round] = append(samples[ar.Pkt.Round], probeSample{node: i, stamp: ar.RxStamp})
				return
			}
			m.Sync.HandleArrival(ar)
		})
	}
	c.Start(c.Sim.Now() + 1)
	c.Sim.RunUntil(c.Sim.Now() + 20)

	// Probe sender: an extra station that only emits snapshot probes
	// (its packets carry the reserved node id 0xBEE and are ignored by
	// the synchronizers).
	prober := c.Members[0]
	var truth metrics.Series
	for k := 0; k < 40; k++ {
		k := k
		c.Sim.After(float64(k)*0.5+0.13, func() {
			p := csp.Packet{Kind: csp.KindCSP, Round: uint32(1000 + k)}
			p.Node = 0 // overwritten by SendCSP; Dest marks the probe
			probe := p
			probe.Dest = 0xBEE
			prober.Node.SendCSP(probe, network.Broadcast)
			truth.Add(c.Snapshot().Precision)
		})
	}
	c.Sim.RunUntil(c.Sim.Now() + 25)

	// Hardware estimate: per probe, spread of rx stamps across nodes
	// (sender excluded: it has no rx stamp of its own probe).
	var hw metrics.Series
	for _, ss := range samples {
		if len(ss) < len(c.Members)-1 {
			continue
		}
		lo, hi := ss[0].stamp, ss[0].stamp
		for _, s := range ss[1:] {
			if s.stamp < lo {
				lo = s.stamp
			}
			if s.stamp > hi {
				hi = s.stamp
			}
		}
		hw.Add(hi.Sub(lo).Seconds())
	}

	r.Table.Header = []string{"estimator", "mean [µs]", "max [µs]", "probes"}
	r.Table.AddRow("hardware (rx-stamp spread)", metrics.Us(hw.Mean()), metrics.Us(hw.Max()), fmt.Sprint(hw.N()))
	r.Table.AddRow("ground truth (SNU vs sim)", metrics.Us(truth.Mean()), metrics.Us(truth.Max()), fmt.Sprint(truth.N()))
	r.Numbers["hw_max"] = hw.Max()
	r.Numbers["truth_max"] = truth.Max()

	r.Claims["hardware estimator collected full rounds"] = hw.N() >= 20
	// The hardware estimate must agree with truth within the per-node
	// reception skew (DMA arbitration + synchronizer ≈ ±0.6 µs).
	agree := hw.Max()-truth.Max() > -1.5e-6 && hw.Max()-truth.Max() < 1.5e-6
	r.Claims["hardware estimate agrees with ground truth (±1.5 µs)"] = agree
	return r
}
