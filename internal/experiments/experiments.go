// Package experiments regenerates every quantitative claim of the paper
// as a runnable experiment (DESIGN.md §3 maps each to its source). Each
// experiment returns a Result with a formatted table (what cmd/ntibench
// prints and EXPERIMENTS.md records) plus named claims that the test
// suite asserts — the *shape* of the paper's findings: who wins, by
// roughly what factor, where crossovers fall.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"ntisim/internal/metrics"
)

// Result is one experiment's outcome.
type Result struct {
	ID    string
	Title string
	// PaperClaim cites what the paper states.
	PaperClaim string
	Table      metrics.Table
	// Claims are named booleans the harness asserts (shape checks).
	Claims map[string]bool
	// Numbers exposes key measured values for the harness/EXPERIMENTS.md.
	Numbers map[string]float64
	Notes   []string
}

// Passed reports whether every claim held.
func (r *Result) Passed() bool {
	for _, ok := range r.Claims {
		if !ok {
			return false
		}
	}
	return true
}

// Fprint renders the experiment like an evaluation-section table.
func (r *Result) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s\n", r.ID, r.Title)
	fmt.Fprintf(w, "paper: %s\n\n", r.PaperClaim)
	r.Table.Fprint(w)
	if len(r.Notes) > 0 {
		fmt.Fprintln(w)
		for _, n := range r.Notes {
			fmt.Fprintf(w, "note: %s\n", n)
		}
	}
	fmt.Fprintln(w)
	names := make([]string, 0, len(r.Claims))
	for name := range r.Claims {
		names = append(names, name)
	}
	sort.Strings(names) // map order is randomized; tables must be stable
	for _, name := range names {
		status := "OK"
		if !r.Claims[name] {
			status = "FAILED"
		}
		fmt.Fprintf(w, "claim %-40s %s\n", name, status)
	}
	fmt.Fprintln(w)
}

// All runs every experiment with a common base seed.
func All(seed uint64) []Result {
	return []Result{
		E1Epsilon(seed),
		E2TimestampClasses(seed),
		E3GranularitySweep(seed),
		E4SixteenNode(seed),
		E5GPSValidation(seed),
		E6RateSync(seed),
		E7WANvsLAN(seed),
		E8AdderVsCounter(seed),
		E9TimestampPath(seed),
		E10BackToBack(seed),
		E11WANOfLANs(seed),
		E12ByzantineNode(seed),
		E13HardwareMeasuredPrecision(seed),
		E14ConvergenceShootout(seed),
		E15ReceiverCensus(seed),
	}
}
