package experiments

import (
	"strings"
	"testing"
)

// Each experiment's Claims encode the paper's qualitative findings; a
// failing claim means the reproduction lost the paper's shape. These are
// the repository's top-level integration tests.

func checkResult(t *testing.T, r Result) {
	t.Helper()
	if r.ID == "" || r.Title == "" || r.PaperClaim == "" {
		t.Error("result metadata incomplete")
	}
	if len(r.Table.Rows) == 0 {
		t.Error("experiment produced no table rows")
	}
	if len(r.Claims) == 0 {
		t.Error("experiment asserts nothing")
	}
	for name, ok := range r.Claims {
		if !ok {
			t.Errorf("claim failed: %s", name)
		}
	}
	var sb strings.Builder
	r.Fprint(&sb)
	if !strings.Contains(sb.String(), r.ID) {
		t.Error("Fprint lost the experiment id")
	}
}

func TestE1(t *testing.T) { checkResult(t, E1Epsilon(101)) }

func TestE2(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	checkResult(t, E2TimestampClasses(101))
}

func TestE3(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep experiment")
	}
	checkResult(t, E3GranularitySweep(101))
}

func TestE4(t *testing.T) {
	if testing.Short() {
		t.Skip("16-node long run")
	}
	checkResult(t, E4SixteenNode(101))
}

func TestE5(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	checkResult(t, E5GPSValidation(101))
}

func TestE6(t *testing.T) {
	if testing.Short() {
		t.Skip("long run")
	}
	checkResult(t, E6RateSync(101))
}

func TestE7(t *testing.T) {
	if testing.Short() {
		t.Skip("long WAN run")
	}
	checkResult(t, E7WANvsLAN(101))
}

func TestE8(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	checkResult(t, E8AdderVsCounter(101))
}

func TestE9(t *testing.T)  { checkResult(t, E9TimestampPath(101)) }
func TestE10(t *testing.T) { checkResult(t, E10BackToBack(101)) }

func TestResultPassed(t *testing.T) {
	r := Result{Claims: map[string]bool{"a": true, "b": true}}
	if !r.Passed() {
		t.Error("all-true claims should pass")
	}
	r.Claims["c"] = false
	if r.Passed() {
		t.Error("a false claim should fail")
	}
}

func TestSeedInsensitivityE1(t *testing.T) {
	// The headline ε result must not be a lucky seed.
	for _, seed := range []uint64{7, 77, 777} {
		r := E1Epsilon(seed)
		if !r.Passed() {
			t.Errorf("E1 failed at seed %d", seed)
		}
	}
}

func TestE11(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-segment long run")
	}
	checkResult(t, E11WANOfLANs(101))
}

func TestE12(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run long experiment")
	}
	checkResult(t, E12ByzantineNode(101))
}

func TestE13(t *testing.T) {
	if testing.Short() {
		t.Skip("probe campaign")
	}
	checkResult(t, E13HardwareMeasuredPrecision(101))
}

func TestE14(t *testing.T) {
	if testing.Short() {
		t.Skip("three long runs")
	}
	checkResult(t, E14ConvergenceShootout(101))
}

func TestE15(t *testing.T) {
	checkResult(t, E15ReceiverCensus(101))
}
