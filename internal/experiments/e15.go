package experiments

import (
	"fmt"
	"math"

	"ntisim/internal/gps"
	"ntisim/internal/sim"
)

// E15ReceiverCensus reproduces the spirit of [HS97] (paper footnote 7:
// "we conducted a 2-month continuous experimental evaluation of the
// output of six different GPS receivers, which revealed a wide variety
// of failures"): six simulated receivers with individual fault schedules
// run for a long (time-compressed) campaign; each pulse is judged
// against truth and tallied into a failure census — the empirical basis
// for never trusting a receiver without clock validation (E5).
func E15ReceiverCensus(seed uint64) Result {
	r := Result{
		ID:         "E15",
		Title:      "long-term GPS receiver census ([HS97], footnote 7)",
		PaperClaim: "footnote 7: two-month evaluation of six receivers revealed a wide variety of failures",
		Claims:     map[string]bool{},
		Numbers:    map[string]float64{},
	}
	const horizon = 3600.0 // one simulated hour ≈ the study, compressed

	type census struct {
		name     string
		cfg      gps.Config
		pulses   int
		missing  int
		badLabel int
		badPulse int // pulse error beyond 10x claimed accuracy
	}
	receivers := []*census{
		{name: "rx0 healthy", cfg: gps.DefaultReceiver()},
		{name: "rx1 healthy", cfg: gps.DefaultReceiver()},
		{name: "rx2 outages", cfg: withFaults(
			gps.Fault{Kind: gps.FaultOutage, Start: 300, End: 420},
			gps.Fault{Kind: gps.FaultOutage, Start: 1800, End: 2400})},
		{name: "rx3 offset step", cfg: withFaults(
			gps.Fault{Kind: gps.FaultOffset, Start: 900, End: 1500, Magnitude: 5e-3})},
		{name: "rx4 wrong-second", cfg: withFaults(
			gps.Fault{Kind: gps.FaultWrongSec, Start: 2000, End: 2600, Magnitude: 1})},
		{name: "rx5 flapping", cfg: withFaults(
			gps.Fault{Kind: gps.FaultFlapping, Start: 0, Magnitude: 2e-3})},
	}

	s := sim.New(seed)
	for _, c := range receivers {
		c := c
		acc := c.cfg.AccuracyS
		if acc == 0 {
			acc = 1e-6
		}
		gps.New(s, c.cfg, c.name, func(p gps.Pulse) {
			c.pulses++
			// Judge against simulation truth: the pulse physically marks
			// the nearest whole second; the label should name it.
			trueSec := math.Round(p.TrueTime)
			if p.LabelSec != int64(trueSec) {
				c.badLabel++
			}
			if math.Abs(p.TrueTime-trueSec) > 10*acc {
				c.badPulse++
			}
		})
	}
	s.RunUntil(horizon + 1) // +1 s so the last pulse (which may trail its second) lands

	r.Table.Header = []string{"receiver", "pulses", "missing", "bad label", "bad pulse", "trustworthy"}
	anyFailure := false
	healthyClean := true
	for _, c := range receivers {
		c.missing = int(horizon) - 1 - c.pulses
		if c.missing < 0 {
			c.missing = 0
		}
		trustworthy := c.missing == 0 && c.badLabel == 0 && c.badPulse == 0
		if !trustworthy {
			anyFailure = true
		}
		if c.name[:3] == "rx0" || c.name[:3] == "rx1" {
			healthyClean = healthyClean && trustworthy
		}
		r.Table.AddRow(c.name, fmt.Sprint(c.pulses), fmt.Sprint(c.missing),
			fmt.Sprint(c.badLabel), fmt.Sprint(c.badPulse), fmt.Sprint(trustworthy))
		r.Numbers["badpulse:"+c.name] = float64(c.badPulse)
		r.Numbers["badlabel:"+c.name] = float64(c.badLabel)
		r.Numbers["missing:"+c.name] = float64(c.missing)
	}

	r.Claims["healthy receivers stay clean for the whole campaign"] = healthyClean
	r.Claims["a wide variety of failures observed (outage+offset+label+flap)"] =
		r.Numbers["missing:rx2 outages"] > 100 &&
			r.Numbers["badpulse:rx3 offset step"] > 100 &&
			anyFailure
	r.Claims["wrong-second receiver mislabels while pulsing fine"] =
		r.Numbers["badpulse:rx4 wrong-second"] == 0 && r.Numbers["badlabel:rx4 wrong-second"] > 100
	r.Notes = append(r.Notes,
		"one simulated hour at 1 pulse/s stands in for the study's two months; the failure classes and their signatures are the point, not the duration")
	return r
}

func withFaults(fs ...gps.Fault) gps.Config {
	c := gps.DefaultReceiver()
	c.Faults = fs
	return c
}
