package experiments

import (
	"ntisim/internal/cluster"
	"ntisim/internal/metrics"
	"ntisim/internal/oscillator"
)

// idealOsc builds drift-free oscillators, for experiments that isolate
// data-path effects from clock drift.
func idealOsc(hz float64) func(int) oscillator.Config {
	return func(int) oscillator.Config { return oscillator.Ideal(hz) }
}

// precisionWindow runs a started cluster from warmup to warmup+span,
// sampling every `every`, and returns precision and accuracy series.
func precisionWindow(c *cluster.Cluster, warmup, span, every float64) (prec, acc metrics.Series, violations int) {
	c.Sim.RunUntil(warmup)
	for _, cs := range c.RunSampled(warmup, warmup+span, every) {
		prec.Add(cs.Precision)
		acc.Add(cs.MaxAbsOffset)
		if !cs.Contained {
			violations++
		}
	}
	return prec, acc, violations
}

// applyMeasuredDelays runs a delay campaign and loads the bounds into
// every member.
func applyMeasuredDelays(c *cluster.Cluster) {
	b := c.MeasureDelay(0, 1, 16)
	for _, m := range c.Members {
		m.Sync.SetDelayBounds(b)
	}
}
