package experiments

import (
	"fmt"

	"ntisim/internal/cluster"
	"ntisim/internal/csp"
	"ntisim/internal/gps"
	"ntisim/internal/kernel"
	"ntisim/internal/metrics"
	"ntisim/internal/network"
)

// mapGPS builds a GPS config map with healthy receivers on the given
// node indices.
func mapGPS(idx ...int) map[int]gps.Config {
	m := map[int]gps.Config{}
	for _, i := range idx {
		m[i] = gps.DefaultReceiver()
	}
	return m
}

// E9TimestampPath walks one CSP through the Fig. 3/7 data path and
// checks it byte-for-byte: the TRANSMIT trigger at transmit-header
// offset 0x14, the transparent stamp insertion over 0x18/0x1C/0x20, the
// RECEIVE trigger at receive-header offset 0x1C, and a checksum-valid
// decode at the far end.
func E9TimestampPath(seed uint64) Result {
	r := Result{
		ID:         "E9",
		Title:      "packet timestamping data path (Fig. 3, Fig. 7)",
		PaperClaim: "§3.4: trigger on read of 0x14; stamp registers mapped at 0x18/0x20; RECEIVE on write of 0x1C; 64-byte headers",
		Claims:     map[string]bool{},
		Numbers:    map[string]float64{},
	}
	cfg := cluster.Defaults(2, seed)
	cfg.OscillatorFor = idealOsc(cfg.OscHz)
	c := cluster.New(cfg)
	var got *kernel.Arrival
	c.Members[1].Node.OnCSP(func(ar kernel.Arrival) { got = &ar })
	c.Sim.After(0.5, func() {
		c.Members[0].Node.SendCSP(csp.Packet{Kind: csp.KindCSP, Round: 99}, network.Broadcast)
	})
	c.Sim.RunUntil(2)

	r.Table.Header = []string{"checkpoint", "value"}
	ok := got != nil
	r.Claims["CSP delivered through the CI"] = ok
	if ok {
		tx, txOK := got.Pkt.TxStamp()
		r.Claims["transmit stamp inserted in flight, checksum valid"] = txOK
		r.Claims["receive stamp attributed via header-base latch"] = got.StampOK
		gap := got.RxStamp.Sub(tx).Seconds()
		r.Claims["rx-tx gap equals the wire+DMA path (40..90 µs)"] = gap > 40e-6 && gap < 90e-6
		r.Numbers["gap"] = gap
		r.Table.AddRow("tx trigger offset", fmt.Sprintf("0x%02X", csp.OffTxTrig))
		r.Table.AddRow("stamp mapping offsets", fmt.Sprintf("0x%02X/0x%02X/0x%02X", csp.OffTxStamp, csp.OffTxMacro, csp.OffTxAlpha))
		r.Table.AddRow("rx trigger offset", fmt.Sprintf("0x%02X", csp.RxTrigOffset))
		r.Table.AddRow("tx stamp [s]", fmt.Sprintf("%.9f", tx.Seconds()))
		r.Table.AddRow("rx stamp [s]", fmt.Sprintf("%.9f", got.RxStamp.Seconds()))
		r.Table.AddRow("trigger-to-trigger gap [µs]", metrics.Us(gap))
		txTrig, _, _ := c.Members[0].Node.NTI.Stats()
		_, rxTrig, _ := c.Members[1].Node.NTI.Stats()
		r.Claims["exactly one TRANSMIT and one RECEIVE trigger"] = txTrig == 1 && rxTrig == 1
	}
	r.Claims["offsets match the paper"] =
		csp.OffTxTrig == 0x14 && csp.OffTxStamp == 0x18 && csp.OffTxAlpha == 0x20 &&
			csp.RxTrigOffset == 0x1C && csp.HeaderSize == 64
	return r
}

// E10BackToBack reproduces footnote 4: without the Receive Header Base
// register, the stamp-move ISR must guess which receive header a
// sampled timestamp belongs to; under back-to-back CSPs the guess
// misattributes stamps (the rx−tx gap jumps by a full frame slot),
// while the hardware latch keeps every surviving stamp attributed
// exactly.
func E10BackToBack(seed uint64) Result {
	r := Result{
		ID:         "E10",
		Title:      "back-to-back CSPs: Receive Header Base latch vs software guessing",
		PaperClaim: "footnote 4: sequential-order schemes do not work in general; the NTI latches the header base at the RECEIVE trigger",
		Claims:     map[string]bool{},
		Numbers:    map[string]float64{},
	}
	r.Table.Header = []string{"association", "delivered", "stamped", "misattributed"}

	run := func(useLatch bool) (delivered, stamped, misattributed int) {
		cfg := cluster.Defaults(3, seed)
		cfg.Kernel.UseRxBaseLatch = useLatch
		cfg.OscillatorFor = idealOsc(cfg.OscHz)
		c := cluster.New(cfg)
		c.Members[0].Node.OnCSP(func(ar kernel.Arrival) {
			delivered++
			if !ar.StampOK {
				return
			}
			stamped++
			tx, ok := ar.Pkt.TxStamp()
			if !ok {
				return
			}
			// The true trigger-to-trigger delay is ~59 µs ± sub-µs; a
			// misattributed stamp is off by at least one frame slot.
			gap := ar.RxStamp.Sub(tx).Seconds()
			if gap < 40e-6 || gap > 90e-6 {
				misattributed++
			}
		})
		for i := 0; i < 150; i++ {
			i := i
			c.Sim.After(0.01+float64(i)*0.005, func() {
				// Two CSPs back to back from different senders.
				c.Members[1].Node.SendCSP(csp.Packet{Kind: csp.KindCSP, Round: uint32(i)}, network.Broadcast)
				c.Members[2].Node.SendCSP(csp.Packet{Kind: csp.KindCSP, Round: uint32(i)}, network.Broadcast)
			})
		}
		c.Sim.RunUntil(2)
		return delivered, stamped, misattributed
	}

	dL, sL, mL := run(true)
	dG, sG, mG := run(false)
	r.Table.AddRow("hardware latch", fmt.Sprint(dL), fmt.Sprint(sL), fmt.Sprint(mL))
	r.Table.AddRow("software guess", fmt.Sprint(dG), fmt.Sprint(sG), fmt.Sprint(mG))
	r.Numbers["latch_misattributed"] = float64(mL)
	r.Numbers["guess_misattributed"] = float64(mG)
	r.Claims["latch never misattributes"] = mL == 0
	r.Claims["guessing misattributes under bursts"] = mG > 0
	r.Claims["both deliver the traffic"] = dL > 250 && dG > 250
	return r
}
