package experiments

import (
	"fmt"
	"math"

	"ntisim/internal/cluster"
	"ntisim/internal/metrics"
	"ntisim/internal/timefmt"
)

// E3GranularitySweep reproduces the §5 analysis: with the OA convergence
// function, clock granularity G and discrete rate-adjustment uncertainty
// u impair the achievable worst-case precision by 4G + 10u, where for
// the adder-based clock u = 1/fosc — hence G = u < 70 ns (fosc > 14 MHz)
// is required for a worst-case precision below 1 µs.
func E3GranularitySweep(seed uint64) Result {
	r := Result{
		ID:         "E3",
		Title:      "precision impairment 4G + 10u across oscillator frequencies",
		PaperClaim: "§5: OA worst-case precision impaired by 4G+10u; u = 1/fosc; G = u < 70 ns (fosc > 14 MHz) needed for < 1 µs",
		Claims:     map[string]bool{},
		Numbers:    map[string]float64{},
	}
	r.Table.Header = []string{"fosc [MHz]", "u=1/f [ns]", "4G+10u [µs]", "measured prec [µs]"}
	G := timefmt.Granule
	var prev float64
	monotone := true
	for _, mhz := range []float64{1, 2, 4, 8, 14, 20} {
		f := mhz * 1e6
		u := 1 / f
		bound := 4*G + 10*u
		// Real TCXOs: nodes tick dephased and drifting, so the ±1/fosc
		// input-synchronizer quantization actually shows up as relative
		// noise (ideal, phase-locked oscillators would mask it).
		cfg := cluster.Defaults(4, seed)
		cfg.OscHz = f
		c := cluster.New(cfg)
		applyMeasuredDelays(c)
		c.Start(c.Sim.Now() + 1)
		prec, _, _ := precisionWindow(c, c.Sim.Now()+15, 60, 0.9)
		r.Table.AddRow(fmt.Sprintf("%.0f", mhz), fmt.Sprintf("%.0f", u*1e9),
			metrics.Us(bound), metrics.Us(prec.Max()))
		r.Numbers[fmt.Sprintf("prec_%0.0fMHz", mhz)] = prec.Max()
		r.Numbers[fmt.Sprintf("bound_%0.0fMHz", mhz)] = bound
		if prev != 0 && prec.Max() > prev*1.8 {
			monotone = false // allow noise, forbid clear regressions
		}
		prev = prec.Max()
	}
	r.Claims["impairment bound crosses 1 µs near 14 MHz"] =
		r.Numbers["bound_8MHz"] > 1e-6 && r.Numbers["bound_14MHz"] <= 1.1e-6
	r.Claims["precision improves toward high fosc"] =
		r.Numbers["prec_20MHz"] < r.Numbers["prec_1MHz"] && monotone
	r.Claims["20 MHz precision in low-µs range"] = r.Numbers["prec_20MHz"] < 4e-6
	r.Notes = append(r.Notes,
		"G = 2^-24 s is fixed by the NTP time format; u = 1/fosc enters through the input-synchronizer sampling and the rate-step quantum",
		"measured precision flattens below the bound because the COMCO's DMA/arbitration jitter (ε ≈ 0.6 µs) is frequency-independent")
	return r
}

// E4SixteenNode reproduces the headline: worst-case precision/accuracy
// in the 1 µs range on the 16-node prototype system (§1, §4, §6), with
// measured delay bounds and rate synchronization as §2 prescribes.
func E4SixteenNode(seed uint64) Result {
	r := Result{
		ID:         "E4",
		Title:      "16-node prototype: precision/accuracy over 300 rounds",
		PaperClaim: "§1/§6: worst-case precision/accuracy in the 1 µs range; §4: 16-node prototype (4x MVME-162 with 4 NTIs each)",
		Claims:     map[string]bool{},
		Numbers:    map[string]float64{},
	}
	cfg := cluster.Defaults(16, seed)
	cfg.Sync.RateSync = true
	// The prototype is an *external* synchronization system: one GPS
	// anchor bounds the ensemble's UTC accuracy (internal sync alone
	// cannot pin the common mode, which random-walks at the mean
	// oscillator drift).
	cfg.GPS = mapGPS(0)
	c := cluster.New(cfg)
	applyMeasuredDelays(c)
	c.Start(c.Sim.Now() + 1)
	prec, acc, viol := precisionWindow(c, c.Sim.Now()+60, 300, 1)
	r.Table.Header = []string{"metric", "mean [µs]", "p99 [µs]", "max [µs]"}
	r.Table.AddRow("precision max|Cp-Cq|", metrics.Us(prec.Mean()), metrics.Us(prec.Percentile(0.99)), metrics.Us(prec.Max()))
	r.Table.AddRow("accuracy  max|Cp-t|", metrics.Us(acc.Mean()), metrics.Us(acc.Percentile(0.99)), metrics.Us(acc.Max()))
	r.Numbers["precision_max"] = prec.Max()
	r.Numbers["accuracy_max"] = acc.Max()
	r.Numbers["containment_violations"] = float64(viol)
	r.Claims["worst precision in low-µs range"] = prec.Max() < 5e-6
	r.Claims["worst UTC accuracy in low-µs range"] = acc.Max() < 20e-6
	r.Claims["accuracy intervals always contain real time"] = viol == 0
	used, sent := 0.0, 0.0
	for _, m := range c.Members {
		st := m.Sync.Stats()
		used += float64(st.CSPsUsed)
		sent += float64(st.CSPsSent)
	}
	r.Numbers["csp_use_ratio"] = used / math.Max(sent*15, 1)
	r.Notes = append(r.Notes,
		fmt.Sprintf("CSP utilization %.1f%% of the ideal n·(n−1) deliveries", 100*r.Numbers["csp_use_ratio"]))
	return r
}
