package experiments

import (
	"fmt"

	"ntisim/internal/cluster"
	"ntisim/internal/metrics"
)

// E11WANOfLANs reproduces paper footnote 2: "our approach can also be
// adopted to more general topologies commonly known as WANs-of-LANs,
// provided that all gateway nodes are also equipped with the NTI". Two
// LAN segments are chained by a gateway node whose single UTCSU serves
// a COMCO on each segment (two SSU pairs), so the segments' ensembles
// couple through its interval clock.
func E11WANOfLANs(seed uint64) Result {
	r := Result{
		ID:         "E11",
		Title:      "WANs-of-LANs: two segments chained by an NTI-equipped gateway",
		PaperClaim: "footnote 2: the approach extends to WANs-of-LANs when gateways carry NTIs; §3.3: six SSUs for redundant channels/gateway nodes",
		Claims:     map[string]bool{},
		Numbers:    map[string]float64{},
	}
	base := cluster.Defaults(11, seed)
	// Each node only sees its segment's ~6 members; F must be sized to
	// that view, or the fault-tolerant midpoint discards the (single)
	// gateway reference and the segments decouple.
	base.Sync.F = 1
	// F+1 = 2 redundant gateways per link: an f-trimming convergence
	// function ignores a single bridge's reference entirely (it is
	// always the extremum from inside a segment), so coupling under
	// fault tolerance needs > f gateways — a reproduction finding that
	// sharpens footnote 2.
	c := cluster.NewWANOfLANs(base, 2, 5)
	// Calibrate delay bounds within segment 0 and share them (symmetric
	// segments).
	b := c.MeasureDelay(0, 1, 16)
	for _, m := range c.Members {
		m.Sync.SetDelayBounds(b)
	}
	c.Start(c.Sim.Now() + 1)
	c.Sim.RunUntil(c.Sim.Now() + 30)

	var global, seg0, seg1 metrics.Series
	start := c.Sim.Now()
	for t := start; t <= start+120; t += 1 {
		c.Sim.RunUntil(t)
		cs := c.Snapshot()
		global.Add(cs.Precision)
		seg0.Add(c.SegmentPrecision(0))
		seg1.Add(c.SegmentPrecision(1))
	}

	r.Table.Header = []string{"scope", "mean prec [µs]", "worst prec [µs]"}
	r.Table.AddRow("segment 0 (5 nodes)", metrics.Us(seg0.Mean()), metrics.Us(seg0.Max()))
	r.Table.AddRow("segment 1 (5 nodes)", metrics.Us(seg1.Mean()), metrics.Us(seg1.Max()))
	r.Table.AddRow("global (12 members, 2 hops)", metrics.Us(global.Mean()), metrics.Us(global.Max()))
	r.Numbers["seg0"] = seg0.Max()
	r.Numbers["seg1"] = seg1.Max()
	r.Numbers["global"] = global.Max()

	gw := c.Members[len(c.Members)-1]

	tx0, rx0 := gw.Node.NTI.ChannelStats(0)
	tx1, rx1 := gw.Node.NTI.ChannelStats(1)
	r.Notes = append(r.Notes, fmt.Sprintf(
		"gateway hardware triggers: channel0 tx=%d rx=%d, channel1 tx=%d rx=%d (both SSU pairs active)",
		tx0, rx0, tx1, rx1))

	r.Claims["segments individually in low-µs range"] = seg0.Max() < 5e-6 && seg1.Max() < 5e-6
	r.Claims["global precision bounded across the gateway"] = global.Max() < 15e-6
	r.Claims["gateway stamps on both channels"] = tx0 > 0 && rx0 > 0 && tx1 > 0 && rx1 > 0
	return r
}
