package experiments

import (
	"fmt"

	"ntisim/internal/cluster"
	"ntisim/internal/gps"
	"ntisim/internal/metrics"
)

// E5GPSValidation reproduces §2/§5: interval-based clock validation
// accepts a highly accurate external interval only when consistent with
// the internally derived validation interval, so a faulty GPS receiver
// (offset, wrong-second — failure classes from the authors' own [HS97]
// study) cannot wreck the ensemble, while naive trust can.
func E5GPSValidation(seed uint64) Result {
	r := Result{
		ID:         "E5",
		Title:      "clock validation vs naive trust under GPS receiver faults",
		PaperClaim: "§2: faulty external interval only considered if consistent with the validation interval; §5/[HS97]: receivers do fail",
		Claims:     map[string]bool{},
		Numbers:    map[string]float64{},
	}
	r.Table.Header = []string{"policy", "fault", "worst acc [µs]", "worst prec [µs]", "rejected"}

	run := func(trust bool, fault gps.Fault) (acc, prec float64, rejected uint64) {
		cfg := cluster.Defaults(8, seed)
		cfg.Sync.TrustExternal = trust
		healthy := gps.DefaultReceiver()
		faulty := gps.DefaultReceiver()
		faulty.Faults = []gps.Fault{fault}
		cfg.GPS = map[int]gps.Config{0: healthy, 1: healthy, 2: faulty}
		c := cluster.New(cfg)
		applyMeasuredDelays(c)
		c.Start(c.Sim.Now() + 1)
		p, a, _ := precisionWindow(c, c.Sim.Now()+90, 120, 1)
		for _, m := range c.Members {
			rejected += m.Sync.Stats().ExternalRejected
		}
		return a.Max(), p.Max(), rejected
	}

	faults := map[string]gps.Fault{
		"offset 20 ms": {Kind: gps.FaultOffset, Start: 60, Magnitude: 20e-3},
		"wrong-second": {Kind: gps.FaultWrongSec, Start: 60, Magnitude: 1},
		"ramp 10 µs/s": {Kind: gps.FaultRampDrift, Start: 60, Magnitude: 10e-6},
	}
	for name, f := range faults {
		accV, precV, rej := run(false, f)
		r.Table.AddRow("validated", name, metrics.Us(accV), metrics.Us(precV), fmt.Sprint(rej))
		r.Numbers["validated_acc:"+name] = accV
		r.Numbers["validated_rej:"+name] = float64(rej)
	}
	accT, precT, _ := run(true, faults["wrong-second"])
	r.Table.AddRow("naive trust", "wrong-second", metrics.Us(accT), metrics.Us(precT), "-")
	r.Numbers["naive_acc"] = accT

	r.Claims["validation keeps accuracy bounded under all faults"] =
		r.Numbers["validated_acc:offset 20 ms"] < 100e-6 &&
			r.Numbers["validated_acc:wrong-second"] < 100e-6 &&
			r.Numbers["validated_acc:ramp 10 µs/s"] < 200e-6
	r.Claims["faulty intervals actually rejected"] =
		r.Numbers["validated_rej:offset 20 ms"] > 0 && r.Numbers["validated_rej:wrong-second"] > 0
	r.Claims["naive trust is >100x worse on wrong-second"] =
		accT > 100*r.Numbers["validated_acc:wrong-second"]
	return r
}

// E6RateSync reproduces §2's rate-synchronization promise: the
// interval-based rate algorithm [Scho97] "effectively reduces the
// maximum drift without necessitating highly accurate and stable
// oscillators at each node" — visible as slower accuracy-interval
// growth (smaller deterioration bound) at unchanged precision.
func E6RateSync(seed uint64) Result {
	r := Result{
		ID:         "E6",
		Title:      "rate synchronization: accuracy-interval growth with TCXO-grade oscillators",
		PaperClaim: "§2: rate synchronization reduces the maximum drift bound used for interval deterioration",
		Claims:     map[string]bool{},
		Numbers:    map[string]float64{},
	}
	r.Table.Header = []string{"rate sync", "deterioration [µs/s]", "worst prec [µs]", "worst rate cmd [ppb]"}
	run := func(on bool) (detPerSec, prec float64, rateCmd int64) {
		cfg := cluster.Defaults(8, seed)
		cfg.Sync.RateSync = on
		cfg.Sync.RhoPPB = 3000 // honest a priori bound for the TCXOs
		c := cluster.New(cfg)
		applyMeasuredDelays(c)
		c.Start(c.Sim.Now() + 1)
		c.Sim.RunUntil(c.Sim.Now() + 120) // let the rate loop settle
		var prec_ metrics.Series
		var det metrics.Series
		// Measure the ACU's deterioration rate: sample each node's
		// interval width twice, 0.5 s apart, away from resync instants
		// (rounds start at whole seconds; sample at +0.30 and +0.80).
		base := float64(int64(c.Sim.Now())) + 2
		for k := 0; k < 60; k++ {
			t0 := base + float64(k)
			c.Sim.RunUntil(t0 + 0.55)
			w0 := meanWidth(c)
			cs := c.Snapshot()
			prec_.Add(cs.Precision)
			c.Sim.RunUntil(t0 + 0.95)
			det.Add((meanWidth(c) - w0) / 0.4)
		}
		for _, m := range c.Members {
			if rp := m.U.RatePPB(); rp > rateCmd {
				rateCmd = rp
			} else if -rp > rateCmd {
				rateCmd = -rp
			}
		}
		return det.Mean(), prec_.Max(), rateCmd
	}
	dOn, pOn, rcOn := run(true)
	dOff, pOff, _ := run(false)
	r.Table.AddRow("on", metrics.Us(dOn), metrics.Us(pOn), fmt.Sprint(rcOn))
	r.Table.AddRow("off", metrics.Us(dOff), metrics.Us(pOff), "0 (free-running)")
	r.Numbers["det_on"] = dOn
	r.Numbers["det_off"] = dOff
	r.Numbers["prec_on"] = pOn
	r.Numbers["prec_off"] = pOff
	r.Claims["rate sync cuts interval deterioration ≥ 3x"] = dOff > 3*dOn
	r.Claims["precision not degraded"] = pOn < 2*pOff
	r.Notes = append(r.Notes,
		"deterioration is the ACU's automatic interval growth between resynchronizations: 2·ρ per second, with ρ dynamic under rate sync vs the 3000 ppb a priori bound")
	return r
}

// meanWidth averages the current accuracy-interval width across nodes.
func meanWidth(c *cluster.Cluster) float64 {
	var w metrics.Series
	for _, m := range c.Members {
		am, ap := m.U.Alpha()
		w.Add(am.Duration().Seconds() + ap.Duration().Seconds())
	}
	return w.Mean()
}
