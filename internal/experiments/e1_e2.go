package experiments

import (
	"fmt"

	"ntisim/internal/cluster"
	"ntisim/internal/csp"
	"ntisim/internal/kernel"
	"ntisim/internal/metrics"
	"ntisim/internal/network"
)

// epsilonRun measures the transmission/reception uncertainty ε on a
// two-node system: the spread of (hardware rx stamp − hardware tx
// stamp) over many CSPs, with both clocks ideal so stamp differences
// reflect the true data-path delay alone.
func epsilonRun(seed uint64, mode kernel.TimestampMode, load float64, nCSP int) metrics.Series {
	cfg := cluster.Defaults(2, seed)
	cfg.Kernel.Mode = mode
	cfg.OscillatorFor = idealOsc(cfg.OscHz)
	cfg.BackgroundLoad = load
	c := cluster.New(cfg)
	var gaps metrics.Series
	c.Members[1].Node.OnCSP(func(ar kernel.Arrival) {
		tx, ok := ar.Pkt.TxStamp()
		if !ok || !ar.StampOK {
			return
		}
		gaps.Add(ar.RxStamp.Sub(tx).Seconds())
	})
	for i := 0; i < nCSP; i++ {
		i := i
		c.Sim.After(0.01+float64(i)*0.003, func() {
			c.Members[0].Node.SendCSP(csp.Packet{Kind: csp.KindCSP, Round: uint32(i)}, network.Broadcast)
		})
	}
	c.Sim.RunUntil(0.02 + float64(nCSP)*0.003 + 1)
	return gaps
}

// E1Epsilon reproduces §4's two-node measurement: "some preliminary
// experiments with a two-node system revealed a transmission/reception
// time uncertainty ε well below 1 µs".
func E1Epsilon(seed uint64) Result {
	r := Result{
		ID:         "E1",
		Title:      "two-node transmission/reception uncertainty ε (NTI hardware timestamping)",
		PaperClaim: "§4: ε well below 1 µs on the two-node MVME-162 prototype",
		Claims:     map[string]bool{},
		Numbers:    map[string]float64{},
	}
	r.Table.Header = []string{"bg load", "CSPs", "gap min [µs]", "gap max [µs]", "eps [µs]"}
	var eps0 float64
	for _, load := range []float64{0, 0.3, 0.6} {
		g := epsilonRun(seed, kernel.ModeNTI, load, 1000)
		eps := g.Range()
		if load == 0 {
			eps0 = eps
		}
		r.Table.AddRow(fmt.Sprintf("%.0f%%", load*100), fmt.Sprint(g.N()),
			metrics.Us(g.Min()), metrics.Us(g.Max()), metrics.Us(eps))
		r.Numbers[fmt.Sprintf("eps_load%.0f", load*100)] = eps
	}
	r.Claims["eps below 1 µs (idle)"] = eps0 < 1e-6
	r.Claims["eps below 2 µs under 60% load"] = r.Numbers["eps_load60"] < 2e-6
	r.Notes = append(r.Notes,
		"ε is the spread of (hw rx stamp − hw tx stamp); timestamps are taken at the COMCO's trigger accesses, after medium access, so background load barely moves it")
	return r
}

// E2TimestampClasses reproduces the §1/§3.1 classification: purely
// software timestamping (task level) lands in the ms range, kernel/ISR
// level in the 100 µs range, NTI hardware support in the µs range.
func E2TimestampClasses(seed uint64) Result {
	r := Result{
		ID:         "E2",
		Title:      "timestamping classes: task-level vs ISR-level vs NTI hardware",
		PaperClaim: "§1: software-only ≈ ms range, brought down to µs with moderate hardware support; §3.1 steps 1–7",
		Claims:     map[string]bool{},
		Numbers:    map[string]float64{},
	}
	r.Table.Header = []string{"class", "eps [µs]", "worst precision [µs]"}
	type row struct {
		name string
		mode kernel.TimestampMode
	}
	var epsByMode, precByMode = map[string]float64{}, map[string]float64{}
	for _, rw := range []row{
		{"task (software-only)", kernel.ModeTask},
		{"ISR (kernel-level)", kernel.ModeISR},
		{"NTI (hardware)", kernel.ModeNTI},
	} {
		g := epsilonRun(seed+1, rw.mode, 0.2, 600)
		eps := g.Range()
		prec := syncPrecision(seed+2, rw.mode)
		epsByMode[rw.name] = eps
		precByMode[rw.name] = prec
		r.Table.AddRow(rw.name, metrics.Us(eps), metrics.Us(prec))
		r.Numbers["eps:"+rw.name] = eps
		r.Numbers["prec:"+rw.name] = prec
	}
	// ε: both software classes pay the medium-access uncertainty on the
	// transmit side (their stamp is taken in step 1/2, before access),
	// so they cluster in the ms range; only the NTI escapes it.
	r.Claims["software eps in ms range, NTI in sub-µs"] =
		epsByMode["task (software-only)"] >= epsByMode["ISR (kernel-level)"] &&
			epsByMode["ISR (kernel-level)"] > 100*epsByMode["NTI (hardware)"]
	// Precision separates all three classes: the convergence function
	// can exploit the ISR class's tighter receive stamps.
	r.Claims["task >> ISR >> NTI in precision"] =
		precByMode["task (software-only)"] > 3*precByMode["ISR (kernel-level)"] &&
			precByMode["ISR (kernel-level)"] > 3*precByMode["NTI (hardware)"]
	r.Claims["NTI precision in µs range"] = precByMode["NTI (hardware)"] < 10e-6
	r.Claims["task precision ≥ 100x NTI"] =
		precByMode["task (software-only)"] > 100*precByMode["NTI (hardware)"]
	r.Notes = append(r.Notes,
		"software transmit stamps are taken before medium access (paper §3.1 step 1), so both software classes inherit the access uncertainty in ε; receive-side differences then drive the precision gap")
	return r
}

// syncPrecision runs a 4-node synchronization with the given
// timestamping class and returns the worst observed precision.
func syncPrecision(seed uint64, mode kernel.TimestampMode) float64 {
	cfg := cluster.Defaults(4, seed)
	cfg.Kernel.Mode = mode
	c := cluster.New(cfg)
	c.Start(1)
	c.Sim.RunUntil(15)
	var prec metrics.Series
	for _, cs := range c.RunSampled(15, 45, 1) {
		prec.Add(cs.Precision)
	}
	return prec.Max()
}
