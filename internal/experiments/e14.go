package experiments

import (
	"ntisim/internal/cluster"
	"ntisim/internal/interval"
	"ntisim/internal/metrics"
)

// E14ConvergenceShootout is the repository's ablation of the convergence
// function — the component the paper says "determines the performance
// and fault-tolerance degree" of the interval-based algorithm (§2). The
// same 8-node system runs with three functions:
//
//   - OA (midpoint): precision from fault-tolerant-midpoint dynamics,
//     accuracy from the Marzullo intersection (the paper's choice);
//   - OA (average): same, with the fault-tolerant average as reference;
//   - Marzullo midpoint: pure intersection dynamics (NTP-style).
func E14ConvergenceShootout(seed uint64) Result {
	r := Result{
		ID:         "E14",
		Title:      "convergence-function ablation: OA-midpoint vs OA-average vs Marzullo",
		PaperClaim: "§2: the convergence function determines performance and fault-tolerance; §5 analyses OA [Sch97b]",
		Claims:     map[string]bool{},
		Numbers:    map[string]float64{},
	}
	r.Table.Header = []string{"convergence fn", "worst prec [µs]", "mean prec [µs]", "failures"}

	run := func(name string, fn clocksyncConverge) {
		cfg := cluster.Defaults(8, seed)
		cfg.Sync.Convergence = fn
		c := cluster.New(cfg)
		applyMeasuredDelays(c)
		c.Start(c.Sim.Now() + 1)
		prec, _, _ := precisionWindow(c, c.Sim.Now()+20, 90, 0.9)
		var fails uint64
		for _, m := range c.Members {
			fails += m.Sync.Stats().ConvergenceFailed
		}
		r.Table.AddRow(name, metrics.Us(prec.Max()), metrics.Us(prec.Mean()), itoa64(fails))
		r.Numbers["prec:"+name] = prec.Max()
		r.Numbers["fails:"+name] = float64(fails)
	}
	run("OA (midpoint)", interval.OrthogonalAccuracy)
	run("OA (average)", interval.OrthogonalAccuracyFTA)
	run("Marzullo midpoint", interval.MarzulloMidpoint)

	r.Claims["all three keep µs-range precision on a healthy LAN"] =
		r.Numbers["prec:OA (midpoint)"] < 6e-6 &&
			r.Numbers["prec:OA (average)"] < 6e-6 &&
			r.Numbers["prec:Marzullo midpoint"] < 30e-6
	r.Claims["averaging at least matches midpoint here"] =
		r.Numbers["prec:OA (average)"] < 1.5*r.Numbers["prec:OA (midpoint)"]
	r.Claims["no convergence failures"] =
		r.Numbers["fails:OA (midpoint)"] == 0 && r.Numbers["fails:OA (average)"] == 0
	r.Notes = append(r.Notes,
		"with healthy, equal-width intervals all functions behave; the differences the paper's analysis targets are worst-case bounds and behaviour under faults (see E12)")
	return r
}

// clocksyncConverge mirrors clocksync.ConvergeFunc without the import.
type clocksyncConverge = func([]interval.Interval, int) (interval.Interval, bool)

func itoa64(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
