package metrics

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSeriesBasics(t *testing.T) {
	var s Series
	for _, v := range []float64{3, 1, 4, 1, 5, 9, 2, 6} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if s.Min() != 1 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	if math.Abs(s.Mean()-3.875) > 1e-12 {
		t.Errorf("mean = %v", s.Mean())
	}
	if s.Range() != 8 {
		t.Errorf("range = %v", s.Range())
	}
}

func TestSeriesEmpty(t *testing.T) {
	var s Series
	if s.Min() != 0 || s.Max() != 0 || s.Mean() != 0 || s.Stddev() != 0 || s.Percentile(0.5) != 0 {
		t.Error("empty series should return zeros")
	}
	// Every quantile of the empty series is 0, including the clamped
	// out-of-range ones, and Range/Stats stay zero too.
	for _, p := range []float64{-1, 0, 0.25, 1, 2} {
		if s.Percentile(p) != 0 {
			t.Errorf("empty Percentile(%g) = %g, want 0", p, s.Percentile(p))
		}
	}
	if s.Range() != 0 {
		t.Errorf("empty Range = %g", s.Range())
	}
	if st := s.Stats(); st != (SeriesStats{}) {
		t.Errorf("empty Stats = %+v, want zero value", st)
	}
}

// A single sample is its own min, max, mean and every quantile, with
// zero dispersion — the degenerate case stats.Describe builds on.
func TestSeriesSingleSample(t *testing.T) {
	var s Series
	s.Add(3.5e-6)
	if s.N() != 1 || s.Min() != 3.5e-6 || s.Max() != 3.5e-6 || s.Mean() != 3.5e-6 {
		t.Fatalf("single-sample accessors: min=%g max=%g mean=%g", s.Min(), s.Max(), s.Mean())
	}
	for _, p := range []float64{-0.5, 0, 0.25, 0.5, 0.99, 1, 1.5} {
		if got := s.Percentile(p); got != 3.5e-6 {
			t.Errorf("Percentile(%g) = %g, want the sample", p, got)
		}
	}
	if s.Stddev() != 0 || s.Range() != 0 {
		t.Errorf("single-sample dispersion: stddev=%g range=%g, want 0", s.Stddev(), s.Range())
	}
	st := s.Stats()
	if st.N != 1 || st.Min != 3.5e-6 || st.P50 != 3.5e-6 || st.P99 != 3.5e-6 || st.Max != 3.5e-6 {
		t.Errorf("single-sample Stats = %+v", st)
	}
}

// Interleaving Add with order statistics must re-trigger the
// sort-once path each time: every read sees all samples added so far,
// and earlier sorted snapshots never leak stale answers.
func TestSeriesInterleavedAddAndQuantiles(t *testing.T) {
	var s Series
	oracle := func(p float64, want float64) {
		t.Helper()
		if got := s.Percentile(p); got != want {
			t.Errorf("after %d adds: Percentile(%g) = %g, want %g", s.N(), p, got, want)
		}
	}
	s.Add(5)
	oracle(0.5, 5) // sorts {5}
	s.Add(1)
	oracle(0, 1) // re-sorts {1,5}
	oracle(1, 5)
	s.Add(3)
	if s.Min() != 1 || s.Max() != 5 {
		t.Errorf("min/max = %g/%g", s.Min(), s.Max())
	}
	oracle(0.5, 3) // re-sorts {1,3,5}
	s.Add(0)       // new minimum after a quantile call
	oracle(0, 0)
	s.Add(9) // new maximum after a quantile call
	oracle(1, 9)
	oracle(0.5, 3)
	if s.Mean() != (5+1+3+0+9)/5.0 {
		t.Errorf("mean = %g", s.Mean())
	}
	// Stats after the interleaving agrees with the accessors.
	st := s.Stats()
	if st.Min != 0 || st.Max != 9 || st.P50 != 3 || st.N != 5 {
		t.Errorf("Stats after interleaving = %+v", st)
	}
}

func TestSeriesPercentile(t *testing.T) {
	var s Series
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if p := s.Percentile(0); p != 1 {
		t.Errorf("p0 = %v", p)
	}
	if p := s.Percentile(1); p != 100 {
		t.Errorf("p100 = %v", p)
	}
	if p := s.Percentile(0.5); math.Abs(p-50) > 1.5 {
		t.Errorf("p50 = %v", p)
	}
	// Adding after sorting must still work.
	s.Add(1000)
	if s.Percentile(1) != 1000 {
		t.Error("percentile stale after Add")
	}
}

func TestSeriesStddev(t *testing.T) {
	var s Series
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if math.Abs(s.Stddev()-2) > 1e-12 {
		t.Errorf("stddev = %v", s.Stddev())
	}
}

type fakeNode struct{ off, lo, hi float64 }

func (f fakeNode) OffsetAndBounds() (float64, float64, float64) { return f.off, f.lo, f.hi }

func TestSeriesGrowAllocFree(t *testing.T) {
	const n = 1024
	var s Series
	s.Grow(n)
	allocs := testing.AllocsPerRun(10, func() {
		s.Reset()
		for i := 0; i < n; i++ {
			s.Add(float64(i))
		}
	})
	if allocs != 0 {
		t.Errorf("pre-sized Add allocates %.2f/op, want 0", allocs)
	}
}

func TestSeriesGrowPreservesAndReset(t *testing.T) {
	var s Series
	s.Add(2)
	s.Add(1)
	s.Grow(100)
	if s.N() != 2 || s.Min() != 1 || s.Max() != 2 {
		t.Fatalf("Grow lost samples: n=%d min=%g max=%g", s.N(), s.Min(), s.Max())
	}
	s.Grow(0)
	s.Grow(-5)
	s.Add(3)
	if s.Max() != 3 {
		t.Fatalf("Add after Grow: max=%g", s.Max())
	}
	s.Reset()
	if s.N() != 0 || s.Max() != 0 {
		t.Fatalf("Reset left samples: n=%d", s.N())
	}
	s.Add(7)
	if s.N() != 1 || s.Percentile(0.5) != 7 {
		t.Fatalf("reuse after Reset broken: n=%d p50=%g", s.N(), s.Percentile(0.5))
	}
}

func TestSample(t *testing.T) {
	nodes := []Snapshotter{
		fakeNode{off: 1e-6, lo: -1e-6, hi: 3e-6},
		fakeNode{off: -2e-6, lo: -4e-6, hi: 0},
		fakeNode{off: 0.5e-6, lo: -0.5e-6, hi: 1.5e-6},
	}
	cs := Sample(10, nodes)
	if cs.TrueTime != 10 {
		t.Error("true time lost")
	}
	if math.Abs(cs.Precision-3e-6) > 1e-12 {
		t.Errorf("precision = %v", cs.Precision)
	}
	if math.Abs(cs.MaxAbsOffset-2e-6) > 1e-12 {
		t.Errorf("max offset = %v", cs.MaxAbsOffset)
	}
	if !cs.Contained {
		t.Error("all intervals contain zero, should be contained")
	}
}

func TestSampleDetectsViolation(t *testing.T) {
	nodes := []Snapshotter{
		fakeNode{off: 5e-6, lo: 1e-6, hi: 9e-6}, // interval excludes 0!
	}
	cs := Sample(1, nodes)
	if cs.Contained {
		t.Error("containment violation missed")
	}
	if cs.Precision != 0 {
		t.Error("single node has no pairwise precision")
	}
}

func TestTable(t *testing.T) {
	tb := Table{Header: []string{"name", "value"}}
	tb.AddRow("alpha", "1.5")
	tb.AddRow("longer-name", "2")
	var sb strings.Builder
	tb.Fprint(&sb)
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[1], "---") {
		t.Errorf("header/separator malformed:\n%s", out)
	}
	if !strings.Contains(lines[3], "longer-name") {
		t.Errorf("row missing:\n%s", out)
	}
}

func TestFormatHelpers(t *testing.T) {
	if Us(1.5e-6) != "1.500" {
		t.Errorf("Us = %q", Us(1.5e-6))
	}
	if Ms(2.5e-3) != "2.500" {
		t.Errorf("Ms = %q", Ms(2.5e-3))
	}
}

// Property: Min <= Mean <= Max and Percentile is monotone.
func TestQuickSeriesInvariants(t *testing.T) {
	f := func(raw []int32) bool {
		var s Series
		for _, v := range raw {
			s.Add(float64(v) * 1e-6)
		}
		if s.N() == 0 {
			return true
		}
		if s.Min() > s.Mean() || s.Mean() > s.Max() {
			return false
		}
		return s.Percentile(0.25) <= s.Percentile(0.75)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSeriesStatsAndJSON: the serializable summary matches the scalar
// accessors and round-trips through JSON without lossy formatting.
func TestSeriesStatsAndJSON(t *testing.T) {
	var s Series
	for _, v := range []float64{3e-6, 1e-6, 2e-6, 5e-6, 4e-6} {
		s.Add(v)
	}
	st := s.Stats()
	if st.N != 5 || st.Min != 1e-6 || st.Max != 5e-6 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Range != st.Max-st.Min {
		t.Errorf("range = %g", st.Range)
	}
	if st.Mean != s.Mean() || st.P99 != s.Percentile(0.99) {
		t.Errorf("stats disagree with accessors: %+v", st)
	}
	b, err := json.Marshal(&s)
	if err != nil {
		t.Fatal(err)
	}
	var back SeriesStats
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != st {
		t.Errorf("JSON round-trip: got %+v, want %+v", back, st)
	}

	var empty Series
	if es := empty.Stats(); es.N != 0 || es.Min != 0 || es.Max != 0 {
		t.Errorf("empty stats = %+v", es)
	}
}

// Min/Max after Add must reflect the new sample even though earlier
// calls cached a sorted slice.
func TestSeriesSortInvalidation(t *testing.T) {
	var s Series
	s.Add(2)
	s.Add(1)
	if s.Min() != 1 || s.Max() != 2 {
		t.Fatalf("min/max = %g/%g", s.Min(), s.Max())
	}
	s.Add(0.5)
	s.Add(3)
	if s.Min() != 0.5 || s.Max() != 3 {
		t.Errorf("after re-add: min/max = %g/%g", s.Min(), s.Max())
	}
}
