// Package metrics provides the measurement machinery of the evaluation
// harness: precision/accuracy sampling via UTCSU snapshots (the SNU's
// purpose, paper §3.3), ε estimation, and summary statistics formatted
// like the experiment tables in EXPERIMENTS.md.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series accumulates scalar samples.
//
// Defined behaviour at the edges, relied on by stats/report consumers:
// an empty series returns 0 from every statistic (Min, Max, Mean,
// Stddev, Percentile, Range); a single-sample series returns that
// sample from Min, Max, Mean and every Percentile, and 0 from Stddev
// and Range. Statistics never panic and never return NaN.
type Series struct {
	vals   []float64
	sorted bool
}

// Add appends a sample. Adding invalidates the sorted cache, so Add
// and order-statistic calls may interleave freely — the next
// Min/Max/Percentile re-sorts once and sees every sample added so far.
func (s *Series) Add(v float64) {
	s.vals = append(s.vals, v)
	s.sorted = false
}

// Grow pre-allocates capacity for at least n further samples, so a
// caller that knows its sample budget up front (the campaign loop
// derives it from the configured window and sampling period) pays one
// allocation instead of the append doubling ladder.
func (s *Series) Grow(n int) {
	if n <= 0 || cap(s.vals)-len(s.vals) >= n {
		return
	}
	vals := make([]float64, len(s.vals), len(s.vals)+n)
	copy(vals, s.vals)
	s.vals = vals
}

// Reset empties the series while keeping its capacity, so per-iteration
// scratch series can be reused without reallocating.
func (s *Series) Reset() {
	s.vals = s.vals[:0]
	s.sorted = false
}

// N returns the sample count.
func (s *Series) N() int { return len(s.vals) }

// sortNow sorts the sample slice in place once; Min/Max/Percentile all
// read from the sorted slice instead of re-scanning per call.
func (s *Series) sortNow() {
	if !s.sorted {
		sort.Float64s(s.vals)
		s.sorted = true
	}
}

// Min returns the smallest sample (0 when empty).
func (s *Series) Min() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	s.sortNow()
	return s.vals[0]
}

// Max returns the largest sample (0 when empty).
func (s *Series) Max() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	s.sortNow()
	return s.vals[len(s.vals)-1]
}

// Mean returns the arithmetic mean (0 when empty).
func (s *Series) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

// Stddev returns the population standard deviation (n denominator;
// 0 when the series is empty or has a single sample).
func (s *Series) Stddev() float64 {
	n := len(s.vals)
	if n == 0 {
		return 0
	}
	m := s.Mean()
	var acc float64
	for _, v := range s.vals {
		d := v - m
		acc += d * d
	}
	return math.Sqrt(acc / float64(n))
}

// Range returns Max-Min: the spread, which for stamp-gap series is ε.
// It is 0 for empty and single-sample series.
func (s *Series) Range() float64 { return s.Max() - s.Min() }

// Percentile returns the p-quantile (0 <= p <= 1) by nearest-rank on
// the sorted samples: index round(p·(n−1)). The empty series returns
// 0, a single sample is every quantile of itself, and p outside [0,1]
// clamps to the extreme samples rather than erroring.
func (s *Series) Percentile(p float64) float64 {
	n := len(s.vals)
	if n == 0 {
		return 0
	}
	s.sortNow()
	i := int(p*float64(n-1) + 0.5)
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return s.vals[i]
}

// SeriesStats is a serializable summary of a Series. All values are in
// the series' native unit (seconds for the harness' time series); JSON
// consumers convert, rather than parsing pre-formatted µs strings.
type SeriesStats struct {
	N      int     `json:"n"`
	Min    float64 `json:"min"`
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
	P50    float64 `json:"p50"`
	P90    float64 `json:"p90"`
	P99    float64 `json:"p99"`
	Max    float64 `json:"max"`
	Range  float64 `json:"range"`
}

// Stats computes the summary once (sorting at most once).
func (s *Series) Stats() SeriesStats {
	return SeriesStats{
		N:      s.N(),
		Min:    s.Min(),
		Mean:   s.Mean(),
		Stddev: s.Stddev(),
		P50:    s.Percentile(0.50),
		P90:    s.Percentile(0.90),
		P99:    s.Percentile(0.99),
		Max:    s.Max(),
		Range:  s.Range(),
	}
}

// MarshalJSON serializes the series as its Stats summary, so records
// embedding a *Series round-trip without lossy string formatting.
func (s *Series) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.Stats())
}

// Summary is a one-line description of the series in µs.
func (s *Series) Summary() string {
	return fmt.Sprintf("n=%d min=%.3fµs mean=%.3fµs p99=%.3fµs max=%.3fµs range=%.3fµs",
		s.N(), s.Min()*1e6, s.Mean()*1e6, s.Percentile(0.99)*1e6, s.Max()*1e6, s.Range()*1e6)
}

// ClusterSample is one simultaneous observation of every node's clock,
// taken through the SNU snapshot path.
type ClusterSample struct {
	TrueTime float64
	// Offsets[i] = C_i(t) − t in seconds.
	Offsets []float64
	// Precision is max_{p,q} |C_p − C_q|.
	Precision float64
	// MaxAbsOffset is max_p |C_p − t| (the worst accuracy).
	MaxAbsOffset float64
	// Contained reports whether every node's accuracy interval contained
	// real time (requirement (A) of paper §2).
	Contained bool
}

// Snapshotter is anything that can report (clock−true, alpha bounds) —
// satisfied by an adapter over utcsu.Snapshot in package cluster.
type Snapshotter interface {
	// OffsetAndBounds returns the clock's offset from true time and the
	// real-time edges of its accuracy interval, all in seconds relative
	// to true time (edges negative/positive around zero mean containment).
	OffsetAndBounds() (offset, loEdge, hiEdge float64)
}

// Sample collects a simultaneous cluster observation.
func Sample(trueTime float64, nodes []Snapshotter) ClusterSample {
	cs := ClusterSample{TrueTime: trueTime, Contained: true}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, n := range nodes {
		off, le, he := n.OffsetAndBounds()
		cs.Offsets = append(cs.Offsets, off)
		lo = math.Min(lo, off)
		hi = math.Max(hi, off)
		cs.MaxAbsOffset = math.Max(cs.MaxAbsOffset, math.Abs(off))
		if le > 0 || he < 0 {
			cs.Contained = false
		}
	}
	if len(nodes) > 1 {
		cs.Precision = hi - lo
	}
	return cs
}

// Table renders experiment tables with aligned columns.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint writes the table.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
}

// Us formats seconds as microseconds with 3 decimals.
func Us(s float64) string { return fmt.Sprintf("%.3f", s*1e6) }

// Ms formats seconds as milliseconds with 3 decimals.
func Ms(s float64) string { return fmt.Sprintf("%.3f", s*1e3) }
