package kernel

import (
	"math"
	"testing"

	"ntisim/internal/comco"
	"ntisim/internal/cpu"
	"ntisim/internal/csp"
	"ntisim/internal/network"
	"ntisim/internal/oscillator"
	"ntisim/internal/sim"
	"ntisim/internal/utcsu"
)

// pair builds two nodes on a quiet LAN with ideal oscillators, so clock
// readings equal true time and stamps can be checked against the frame
// trace directly.
func pair(t testing.TB, seed uint64, cfg Config) (*sim.Simulator, *network.Medium, *Node, *Node) {
	t.Helper()
	s := sim.New(seed)
	med := network.NewMedium(s, network.DefaultLAN())
	mk := func(id uint16) *Node {
		o := oscillator.New(s, oscillator.Ideal(10e6), string(rune('a'+id)))
		u := utcsu.New(s, utcsu.Config{Osc: o})
		return NewNode(s, id, u, med, cfg, comco.Default82596())
	}
	a := mk(0)
	b := mk(1)
	return s, med, a, b
}

func ntiCfg() Config {
	return Config{CPU: cpu.DefaultMVME162(), Mode: ModeNTI, UseRxBaseLatch: true}
}

func TestCSPDeliveryModeNTI(t *testing.T) {
	s, _, a, b := pair(t, 1, ntiCfg())
	var got []Arrival
	b.OnCSP(func(ar Arrival) { got = append(got, ar) })
	s.After(0.5, func() { a.SendCSP(csp.Packet{Kind: csp.KindCSP, Round: 7}, network.Broadcast) })
	s.RunUntil(1)
	if len(got) != 1 {
		t.Fatalf("CI delivered %d packets", len(got))
	}
	ar := got[0]
	if ar.Pkt.Kind != csp.KindCSP || ar.Pkt.Round != 7 || ar.Pkt.Node != 0 {
		t.Errorf("packet fields wrong: %+v", ar.Pkt)
	}
	if !ar.StampOK {
		t.Fatal("hardware rx stamp not attributed")
	}
	tx, ok := ar.Pkt.TxStamp()
	if !ok {
		t.Fatal("tx stamp checksum failed")
	}
	// With ideal clocks both stamps track true time; the difference is
	// the true hardware-timestamping delay: trigger offsets within the
	// frame plus DMA/arbitration terms. Must be tens of µs at 10 Mb/s,
	// and positive.
	d := ar.RxStamp.Sub(tx).Seconds()
	if d <= 0 || d > 200e-6 {
		t.Errorf("rx-tx stamp gap = %v", d)
	}
}

func TestTransmitStampInsertedInFlight(t *testing.T) {
	// The CSP was encoded with zero stamp words; the receiver must see
	// hardware-inserted, checksum-valid words — proof the insertion
	// happened on the wire path, not in software.
	s, _, a, b := pair(t, 2, ntiCfg())
	var got []Arrival
	b.OnCSP(func(ar Arrival) { got = append(got, ar) })
	s.After(0.25, func() { a.SendCSP(csp.Packet{Kind: csp.KindCSP}, network.Broadcast) })
	s.RunUntil(1)
	if len(got) != 1 {
		t.Fatal("no delivery")
	}
	tx, ok := got[0].Pkt.TxStamp()
	if !ok || tx == 0 {
		t.Fatalf("inserted stamp invalid: %v ok=%v", tx, ok)
	}
	if math.Abs(tx.Seconds()-0.25) > 0.01 {
		t.Errorf("tx stamp %v far from send time", tx)
	}
}

func TestEpsilonHardwareSmall(t *testing.T) {
	// ε is the variability of (rx stamp - tx stamp) across many CSPs
	// (paper §3.1/[LL84]). With the NTI it must be well below 1 µs even
	// though ISR latencies are in the 100 µs range.
	s, _, a, b := pair(t, 3, ntiCfg())
	var gaps []float64
	b.OnCSP(func(ar Arrival) {
		if tx, ok := ar.Pkt.TxStamp(); ok && ar.StampOK {
			gaps = append(gaps, ar.RxStamp.Sub(tx).Seconds())
		}
	})
	for i := 0; i < 200; i++ {
		i := i
		s.After(0.01+float64(i)*0.002, func() {
			a.SendCSP(csp.Packet{Kind: csp.KindCSP, Round: uint32(i)}, network.Broadcast)
		})
	}
	s.RunUntil(2)
	if len(gaps) < 150 {
		t.Fatalf("only %d stamped deliveries", len(gaps))
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, g := range gaps {
		lo = math.Min(lo, g)
		hi = math.Max(hi, g)
	}
	eps := hi - lo
	if eps >= 1e-6 {
		t.Errorf("hardware ε = %v, want < 1 µs", eps)
	}
	if eps <= 0 {
		t.Errorf("ε degenerate: %v", eps)
	}
}

func TestModeTaskStampsAtTaskLevel(t *testing.T) {
	cfg := Config{CPU: cpu.DefaultMVME162(), Mode: ModeTask}
	s, _, a, b := pair(t, 4, cfg)
	var gaps []float64
	b.OnCSP(func(ar Arrival) {
		if tx, ok := ar.Pkt.TxStamp(); ok {
			gaps = append(gaps, ar.RxStamp.Sub(tx).Seconds())
		}
	})
	for i := 0; i < 100; i++ {
		s.After(0.01+float64(i)*0.005, func() {
			a.SendCSP(csp.Packet{Kind: csp.KindCSP}, network.Broadcast)
		})
	}
	s.RunUntil(2)
	if len(gaps) < 80 {
		t.Fatalf("only %d deliveries", len(gaps))
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, g := range gaps {
		lo = math.Min(lo, g)
		hi = math.Max(hi, g)
	}
	// Software-only ε is dominated by task dispatch jitter: >> hardware.
	if hi-lo < 20e-6 {
		t.Errorf("task-level ε = %v, implausibly small", hi-lo)
	}
}

func TestKIAndNIRouting(t *testing.T) {
	s, _, a, b := pair(t, 5, ntiCfg())
	var ki, ni []uint16
	b.OnKernelMsg(func(from uint16, _ []byte) { ki = append(ki, from) })
	b.OnNetMsg(func(from uint16, _ []byte) { ni = append(ni, from) })
	b.OnCSP(func(Arrival) { t.Error("KI/NI traffic leaked into CI") })
	s.After(0.1, func() {
		a.SendKernelMsg(b.Station(), []byte("rpc"))
		a.SendNetMsg(b.Station(), []byte("tcp"))
	})
	s.RunUntil(1)
	if len(ki) != 1 || ki[0] != 0 {
		t.Errorf("KI deliveries: %v", ki)
	}
	if len(ni) != 1 || ni[0] != 0 {
		t.Errorf("NI deliveries: %v", ni)
	}
}

func TestRTTExchange(t *testing.T) {
	s, _, a, b := pair(t, 6, ntiCfg())
	b.EnableRTTResponder()
	var resp []Arrival
	a.OnCSP(func(ar Arrival) {
		if ar.Pkt.Kind == csp.KindRTTResp {
			resp = append(resp, ar)
		}
	})
	s.After(0.1, func() { a.SendCSP(csp.Packet{Kind: csp.KindRTTReq, Round: 9}, b.Station()) })
	s.RunUntil(2)
	if len(resp) != 1 {
		t.Fatalf("%d RTT responses", len(resp))
	}
	ar := resp[0]
	if ar.Pkt.Round != 9 {
		t.Error("round not echoed")
	}
	if ar.Pkt.EchoReqTx == 0 || ar.Pkt.EchoReqRx == 0 {
		t.Error("echo stamps missing")
	}
	// With ideal clocks: reqTx < reqRx (B's receive after A's send), and
	// the response's own stamps bracket sensibly.
	if ar.Pkt.EchoReqRx <= ar.Pkt.EchoReqTx {
		t.Error("echo stamps out of order")
	}
	respTx, ok := ar.Pkt.TxStamp()
	if !ok || respTx < ar.Pkt.EchoReqRx {
		t.Error("response tx stamp precedes request rx stamp")
	}
	if !ar.StampOK || ar.RxStamp < respTx {
		t.Error("final rx stamp precedes response tx stamp")
	}
}

func TestCorruptFramesDiscardedButStampConsumed(t *testing.T) {
	s := sim.New(7)
	mc := network.DefaultLAN()
	mc.CRCErrorProb = 1.0 // every delivery corrupt
	med := network.NewMedium(s, mc)
	mko := func(id uint16) *Node {
		o := oscillator.New(s, oscillator.Ideal(10e6), string(rune('a'+id)))
		u := utcsu.New(s, utcsu.Config{Osc: o})
		return NewNode(s, id, u, med, ntiCfg(), comco.Default82596())
	}
	a, b := mko(0), mko(1)
	b.OnCSP(func(Arrival) { t.Error("corrupt CSP delivered to CI") })
	s.After(0.1, func() { a.SendCSP(csp.Packet{Kind: csp.KindCSP}, network.Broadcast) })
	s.RunUntil(1)
	// The RECEIVE trigger fired although the packet was discarded
	// (footnote 4's scenario).
	if _, rx, _ := b.NTI.Stats(); rx != 1 {
		t.Errorf("rx triggers = %d", rx)
	}
	if b.CIDelivered() != 0 {
		t.Error("CI count nonzero")
	}
}

func TestBackToBackLatchVsGuess(t *testing.T) {
	// E10's mechanism test: with bursts of CSPs from two senders, the
	// latch keeps stamp attribution exact for every packet whose sample
	// survived; timing-based guessing misattributes some stamps.
	run := func(useLatch bool) (valid, total int) {
		s := sim.New(99)
		med := network.NewMedium(s, network.DefaultLAN())
		cfg := Config{CPU: cpu.DefaultMVME162(), Mode: ModeNTI, UseRxBaseLatch: useLatch}
		mk := func(id uint16) *Node {
			o := oscillator.New(s, oscillator.Ideal(10e6), string(rune('a'+id)))
			u := utcsu.New(s, utcsu.Config{Osc: o})
			return NewNode(s, id, u, med, cfg, comco.Default82596())
		}
		recv := mk(0)
		s1, s2 := mk(1), mk(2)
		recv.OnCSP(func(ar Arrival) {
			total++
			if ar.StampOK {
				valid++
			}
		})
		for i := 0; i < 50; i++ {
			i := i
			s.After(0.01+float64(i)*0.01, func() {
				// Two CSPs back to back from different senders.
				s1.SendCSP(csp.Packet{Kind: csp.KindCSP}, network.Broadcast)
				s2.SendCSP(csp.Packet{Kind: csp.KindCSP}, network.Broadcast)
			})
		}
		s.RunUntil(2)
		return valid, total
	}
	vLatch, tLatch := run(true)
	if tLatch < 90 {
		t.Fatalf("latch run delivered only %d", tLatch)
	}
	// With the latch, every packet whose trigger was the most recent at
	// ISR time gets a correct stamp; under this burst pattern at least
	// half survive.
	if float64(vLatch)/float64(tLatch) < 0.5 {
		t.Errorf("latch attribution rate %d/%d too low", vLatch, tLatch)
	}
}

func TestOverrunDetection(t *testing.T) {
	s, _, a, b := pair(t, 8, ntiCfg())
	b.OnCSP(func(Arrival) {})
	// A burst that outpaces the stamp-move ISR occasionally.
	for i := 0; i < 30; i++ {
		s.After(0.1+float64(i)*0.0001, func() {
			a.SendCSP(csp.Packet{Kind: csp.KindCSP}, network.Broadcast)
		})
	}
	s.RunUntil(2)
	// Not asserting a specific count — just that the counter plumbing
	// works and the run completes; under this burst some overruns are
	// expected with 150 µs interrupt-disable sections.
	t.Logf("overruns: %d, delivered: %d", b.Overruns(), b.CIDelivered())
}

func TestDeterministicKernel(t *testing.T) {
	run := func() (uint64, uint64) {
		s, _, a, b := pair(t, 42, ntiCfg())
		b.OnCSP(func(Arrival) {})
		for i := 0; i < 20; i++ {
			s.After(0.01+float64(i)*0.01, func() {
				a.SendCSP(csp.Packet{Kind: csp.KindCSP}, network.Broadcast)
			})
		}
		s.RunUntil(2)
		return b.CIDelivered(), s.EventCount()
	}
	d1, e1 := run()
	d2, e2 := run()
	if d1 != d2 || e1 != e2 {
		t.Errorf("non-deterministic: %d/%d vs %d/%d", d1, e1, d2, e2)
	}
}

func TestGatewayAttachSegment(t *testing.T) {
	s := sim.New(20)
	medA := network.NewMedium(s, network.DefaultLAN())
	medB := network.NewMedium(s, network.DefaultLAN())
	mk := func(id uint16, med *network.Medium) *Node {
		o := oscillator.New(s, oscillator.Ideal(10e6), string(rune('g'+id)))
		u := utcsu.New(s, utcsu.Config{Osc: o})
		return NewNode(s, id, u, med, ntiCfg(), comco.Default82596())
	}
	a := mk(0, medA)  // segment A node
	b := mk(1, medB)  // segment B node
	gw := mk(2, medA) // gateway on A...
	if ch := gw.AttachSegment(medB); ch != 1 {
		t.Fatalf("second segment got channel %d", ch)
	}
	if gw.Channels() != 2 {
		t.Fatalf("gateway channels = %d", gw.Channels())
	}
	var fromA, fromB []Arrival
	gw.OnCSP(func(ar Arrival) {
		switch ar.Pkt.Node {
		case 0:
			fromA = append(fromA, ar)
		case 1:
			fromB = append(fromB, ar)
		}
	})
	var atB []Arrival
	b.OnCSP(func(ar Arrival) { atB = append(atB, ar) })
	s.After(0.1, func() {
		a.SendCSP(csp.Packet{Kind: csp.KindCSP, Round: 1}, network.Broadcast)
		b.SendCSP(csp.Packet{Kind: csp.KindCSP, Round: 2}, network.Broadcast)
		gw.SendCSP(csp.Packet{Kind: csp.KindCSP, Round: 3}, network.Broadcast)
	})
	s.RunUntil(1)
	if len(fromA) != 1 || len(fromB) != 1 {
		t.Fatalf("gateway received %d from A, %d from B", len(fromA), len(fromB))
	}
	if !fromA[0].StampOK || !fromB[0].StampOK {
		t.Error("gateway hardware stamps missing on a channel")
	}
	// The gateway's broadcast reached segment B with fresh channel-1
	// hardware stamps.
	found := false
	for _, ar := range atB {
		if ar.Pkt.Node == 2 && ar.Pkt.Round == 3 {
			found = true
			if tx, ok := ar.Pkt.TxStamp(); !ok || tx == 0 {
				t.Error("gateway tx stamp invalid on segment B")
			}
			if !ar.StampOK {
				t.Error("segment B rx stamp missing for gateway CSP")
			}
		}
	}
	if !found {
		t.Error("gateway broadcast never reached segment B")
	}
	// Channel trigger accounting: one tx+rx pair on each channel.
	tx0, rx0 := gw.NTI.ChannelStats(0)
	tx1, rx1 := gw.NTI.ChannelStats(1)
	if tx0 != 1 || tx1 != 1 {
		t.Errorf("gateway tx triggers %d/%d", tx0, tx1)
	}
	if rx0 != 1 || rx1 != 1 {
		t.Errorf("gateway rx triggers %d/%d", rx0, rx1)
	}
	// A node on segment A must never see segment B traffic.
	if len(atB) != 1 {
		t.Errorf("segment B saw %d CSPs, want only the gateway's", len(atB))
	}
}

func TestAttachSegmentLimit(t *testing.T) {
	s, med, a, _ := pair(t, 21, ntiCfg())
	a.AttachSegment(med) // 2nd
	a.AttachSegment(med) // 3rd
	defer func() {
		if recover() == nil {
			t.Error("fourth segment should exhaust the SSU pairs")
		}
	}()
	a.AttachSegment(med)
	_ = s
}

func TestSendCSPOnSpecificChannel(t *testing.T) {
	s := sim.New(22)
	medA := network.NewMedium(s, network.DefaultLAN())
	medB := network.NewMedium(s, network.DefaultLAN())
	mk := func(id uint16, med *network.Medium) *Node {
		o := oscillator.New(s, oscillator.Ideal(10e6), string(rune('s'+id)))
		u := utcsu.New(s, utcsu.Config{Osc: o})
		return NewNode(s, id, u, med, ntiCfg(), comco.Default82596())
	}
	gw := mk(0, medA)
	gw.AttachSegment(medB)
	onA := mk(1, medA)
	onB := mk(2, medB)
	var gotA, gotB int
	onA.OnCSP(func(Arrival) { gotA++ })
	onB.OnCSP(func(Arrival) { gotB++ })
	s.After(0.1, func() {
		gw.SendCSPOn(1, csp.Packet{Kind: csp.KindCSP}, network.Broadcast)
	})
	s.RunUntil(1)
	if gotA != 0 || gotB != 1 {
		t.Errorf("channel-targeted send reached A=%d B=%d", gotA, gotB)
	}
}

func TestModeISRStampsBetweenTaskAndHardware(t *testing.T) {
	// The kernel-level class: receive stamps taken in the frame ISR land
	// between the task-level and hardware classes in spread.
	spread := func(mode TimestampMode) float64 {
		cfg := Config{CPU: cpu.DefaultMVME162(), Mode: mode, UseRxBaseLatch: true}
		s, _, a, b := pair(t, 41, cfg)
		var gaps []float64
		b.OnCSP(func(ar Arrival) {
			if tx, ok := ar.Pkt.TxStamp(); ok && ar.StampOK {
				gaps = append(gaps, ar.RxStamp.Sub(tx).Seconds())
			}
		})
		for i := 0; i < 100; i++ {
			s.After(0.01+float64(i)*0.004, func() {
				a.SendCSP(csp.Packet{Kind: csp.KindCSP}, network.Broadcast)
			})
		}
		s.RunUntil(2)
		if len(gaps) < 80 {
			t.Fatalf("mode %v: only %d deliveries", mode, len(gaps))
		}
		lo, hi := gaps[0], gaps[0]
		for _, g := range gaps[1:] {
			lo = math.Min(lo, g)
			hi = math.Max(hi, g)
		}
		return hi - lo
	}
	isr := spread(ModeISR)
	task := spread(ModeTask)
	nti := spread(ModeNTI)
	if !(nti < isr && isr < task) {
		t.Errorf("spread ordering violated: nti=%v isr=%v task=%v", nti, isr, task)
	}
}

func TestServicesLocalQueue(t *testing.T) {
	s, _, a, _ := pair(t, 60, ntiCfg())
	sv := UseServices(a)
	var got []string
	sv.CreateQueue("log", func(from uint16, msg []byte) { got = append(got, string(msg)) })
	sv.Send("log", []byte("hello"))
	s.RunUntil(0.1)
	if len(got) != 1 || got[0] != "hello" {
		t.Errorf("local queue got %v", got)
	}
}

func TestServicesRemoteQueue(t *testing.T) {
	// The paper's Fig. 9 story end to end: node B owns a queue; node A
	// resolves it by ident broadcast over the KI and sends to it, all of
	// it sharing the medium with (hypothetical) CSP traffic.
	s, _, a, b := pair(t, 61, ntiCfg())
	svA := UseServices(a)
	svB := UseServices(b)
	var got []string
	var senders []uint16
	svB.CreateQueue("sensor", func(from uint16, msg []byte) {
		got = append(got, string(msg))
		senders = append(senders, from)
	})
	s.After(0.1, func() { svA.Send("sensor", []byte("r=42")) })
	s.After(0.2, func() { svA.Send("sensor", []byte("r=43")) }) // ident now cached
	s.RunUntil(2)
	if len(got) != 2 || got[0] != "r=42" || got[1] != "r=43" {
		t.Fatalf("remote queue got %v", got)
	}
	if senders[0] != 0 {
		t.Errorf("sender id %d", senders[0])
	}
}

func TestServicesIdentCaching(t *testing.T) {
	s, _, a, b := pair(t, 62, ntiCfg())
	svA := UseServices(a)
	svB := UseServices(b)
	svB.CreateQueue("q", func(uint16, []byte) {})
	resolved := 0
	s.After(0.1, func() {
		svA.Ident("q", func(station int) {
			resolved++
			if station != b.Station() {
				t.Errorf("resolved to %d", station)
			}
			// Second resolve must hit the cache (synchronously).
			svA.Ident("q", func(int) { resolved++ })
		})
	})
	s.RunUntil(2)
	if resolved != 2 {
		t.Errorf("resolved = %d", resolved)
	}
}

func TestServicesUnknownQueueSilent(t *testing.T) {
	s, _, a, b := pair(t, 63, ntiCfg())
	svA := UseServices(a)
	UseServices(b)
	svA.Send("nonexistent", []byte("x")) // ident never resolves; no crash
	s.RunUntil(1)
}

func TestKIPayloadIntegrity(t *testing.T) {
	// Larger-than-trivial payloads must survive the data-buffer DMA path.
	s, _, a, b := pair(t, 64, ntiCfg())
	want := make([]byte, 300)
	for i := range want {
		want[i] = byte(i * 7)
	}
	var got []byte
	b.OnKernelMsg(func(_ uint16, payload []byte) { got = append([]byte(nil), payload...) })
	s.After(0.1, func() { a.SendKernelMsg(b.Station(), want) })
	s.RunUntil(1)
	if len(got) != len(want) {
		t.Fatalf("payload length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("payload byte %d = %d, want %d", i, got[i], want[i])
		}
	}
}
