package kernel

import "encoding/binary"

// pSOS⁺ᵐ-style kernel services (paper §4 / Fig. 9): remote objects —
// here named message queues — "internally managed via RPCs" over the
// Kernel Interface. A queue lives on the node that created it; any node
// can resolve its location with Ident (pSOS's object-ident broadcast)
// and send to it; messages are delivered to the owner's registered
// consumer. This is the add-on the clock synchronization is designed to
// coexist with: KI traffic shares the medium and creates the load that
// software-only timestamping suffers from (experiments E1/E2 use it as
// background).

// KI wire format (inside the KindKernel payload):
//
//	byte 0      op: 1 ident-request, 2 ident-reply, 3 qsend
//	byte 1      name length L
//	bytes 2..   name (L bytes)
//	rest        payload (qsend) / owner station (ident-reply, 2 bytes)
const (
	kiIdentReq  = 1
	kiIdentRep  = 2
	kiQSend     = 3
	kiBroadcast = -1 // forwarded to network.Broadcast by the caller
)

// Services is the per-node kernel-services endpoint.
type Services struct {
	n      *Node
	queues map[string]func(from uint16, msg []byte)
	idents map[string]int // resolved queue name -> owner station
	// pending ident waiters
	waiting map[string][]func(station int)
}

// UseServices attaches the kernel-services dispatcher to the node's KI.
// Call at most once per node.
func UseServices(n *Node) *Services {
	s := &Services{
		n:       n,
		queues:  make(map[string]func(uint16, []byte)),
		idents:  make(map[string]int),
		waiting: make(map[string][]func(int)),
	}
	n.OnKernelMsg(s.onKI)
	return s
}

// CreateQueue registers a named queue on this node; consume receives
// every message sent to it (local or remote).
func (s *Services) CreateQueue(name string, consume func(from uint16, msg []byte)) {
	s.queues[name] = consume
}

// Ident resolves a queue's owner station, calling done when known. A
// local queue resolves immediately; otherwise an ident-request is
// broadcast and the owner replies (pSOS's obj_ident).
func (s *Services) Ident(name string, done func(station int)) {
	if _, local := s.queues[name]; local {
		done(s.n.Station())
		return
	}
	if st, ok := s.idents[name]; ok {
		done(st)
		return
	}
	s.waiting[name] = append(s.waiting[name], done)
	s.n.SendKernelMsg(kiBroadcast, kiEncode(kiIdentReq, name, nil))
}

// Send delivers msg to the named queue, resolving its location first if
// needed.
func (s *Services) Send(name string, msg []byte) {
	if consume, local := s.queues[name]; local {
		consume(s.n.ID, msg)
		return
	}
	body := append([]byte(nil), msg...)
	s.Ident(name, func(station int) {
		s.n.SendKernelMsg(station, kiEncode(kiQSend, name, body))
	})
}

func (s *Services) onKI(from uint16, payload []byte) {
	op, name, body, ok := kiDecode(payload)
	if !ok {
		return
	}
	switch op {
	case kiIdentReq:
		if _, local := s.queues[name]; local {
			var st [2]byte
			binary.BigEndian.PutUint16(st[:], uint16(s.n.Station()))
			s.n.SendKernelMsg(s.n.stationOf(from), kiEncode(kiIdentRep, name, st[:]))
		}
	case kiIdentRep:
		if len(body) < 2 {
			return
		}
		station := int(binary.BigEndian.Uint16(body))
		s.idents[name] = station
		for _, done := range s.waiting[name] {
			done(station)
		}
		delete(s.waiting, name)
	case kiQSend:
		if consume, local := s.queues[name]; local {
			consume(from, body)
		}
	}
}

func kiEncode(op byte, name string, body []byte) []byte {
	out := make([]byte, 0, 2+len(name)+len(body))
	out = append(out, op, byte(len(name)))
	out = append(out, name...)
	return append(out, body...)
}

func kiDecode(p []byte) (op byte, name string, body []byte, ok bool) {
	if len(p) < 2 {
		return 0, "", nil, false
	}
	l := int(p[1])
	if len(p) < 2+l {
		return 0, "", nil, false
	}
	return p[0], string(p[2 : 2+l]), p[2+l:], true
}
