// Package kernel models the node software stack of paper §4 / Fig. 9:
// a pSOS⁺ᵐ-style real-time kernel add-on whose COMCO driver multiplexes
// three interfaces onto the controller — the Kernel Interface (KI) for
// remote kernel objects, the Network Interface (NI) for TCP/IP-style
// traffic, and the Clock Interface (CI) for the synchronization
// algorithm. CSPs sent and received via the CI are timestamped by the
// NTI hardware; KI/NI traffic passes through untouched, sharing the
// medium (and thereby creating exactly the load that software-only
// timestamping suffers from).
//
// The reception path reproduces the two-stage ISR structure the NTI's
// Receive Header Base register exists for (paper §3.4 + footnote 4):
// the RECEIVE-transition ISR moves the sampled stamp from the UTCSU
// register into the unused tail of the correct receive header before the
// next CSP can overwrite the register; the frame-stored ISR then hands
// the completed header to the CI task level.
package kernel

import (
	"encoding/binary"
	"fmt"

	"ntisim/internal/comco"
	"ntisim/internal/cpu"
	"ntisim/internal/csp"
	"ntisim/internal/network"
	"ntisim/internal/nti"
	"ntisim/internal/sim"
	"ntisim/internal/timefmt"
	"ntisim/internal/trace"
	"ntisim/internal/utcsu"
)

// TimestampMode selects where CSPs are timestamped — the three classes
// compared in experiment E2.
type TimestampMode int

const (
	// ModeNTI uses the hardware triggers: transmit stamps are inserted
	// on the fly by the NTI; receive stamps come from the RECEIVE SSU.
	ModeNTI TimestampMode = iota
	// ModeISR timestamps in software at interrupt level: transmit at
	// driver entry (before medium access!), receive in the frame ISR.
	ModeISR
	// ModeTask timestamps in software at task level: transmit when the
	// CSP is assembled, receive when the CI task processes it — the
	// purely software-based approach (steps 1 and 7 of §3.1).
	ModeTask
)

func (m TimestampMode) String() string {
	switch m {
	case ModeNTI:
		return "NTI"
	case ModeISR:
		return "ISR"
	case ModeTask:
		return "Task"
	}
	return fmt.Sprintf("TimestampMode(%d)", int(m))
}

// Config assembles a node's software stack.
type Config struct {
	CPU  cpu.Config
	Mode TimestampMode
	// UseRxBaseLatch selects whether the stamp-move ISR uses the NTI's
	// Receive Header Base register (true, the paper's design) or guesses
	// the header from its software ring pointer (false: the unreliable
	// alternative footnote 4 warns about). Only meaningful in ModeNTI.
	UseRxBaseLatch bool
}

// Arrival is what the CI delivers to the synchronization algorithm.
type Arrival struct {
	Pkt csp.Packet
	// RxStamp is the receive time/accuracy stamp according to the
	// configured TimestampMode. StampOK is false when the hardware stamp
	// could not be attributed to this packet (overrun without latch).
	RxStamp  timefmt.Stamp
	RxAlphaM timefmt.Alpha
	RxAlphaP timefmt.Alpha
	StampOK  bool
	// At is the simulation time of CI delivery (diagnostics only).
	At float64
}

// Node is one complete station: CPU + UTCSU + NTI + COMCO(s) + driver.
// Ordinary nodes have one network channel; gateway nodes in a
// WANs-of-LANs topology (paper footnote 2) attach further segments via
// AttachSegment, each wired to its own SSU pair of the same UTCSU.
type Node struct {
	ID  uint16
	Sim *sim.Simulator
	CPU *cpu.CPU

	U     *utcsu.UTCSU
	NTI   *nti.NTI
	COMCO *comco.COMCO // channel 0, kept for the common single-LAN case

	chans []*nodeChannel

	cfg Config
	seq uint16

	ciHandler func(Arrival)
	kiHandler func(from uint16, payload []byte)
	niHandler func(from uint16, payload []byte)

	// rxMeta holds the per-header sampled accuracies and validity, the
	// kernel-private part of the stamp-move bookkeeping (conceptually in
	// the NTI's System Structures section).
	rxMeta map[uint32]rxMetaEntry

	overruns     uint64
	ciDelivered  uint64
	rttResponder bool

	// stationOf maps a node id to its medium station; nodes are attached
	// in id order by the cluster builder, so the default is identity.
	stationOf func(uint16) int

	// stampMoveFn caches the stampMoveISR method value: moduleISR runs
	// once per received frame, and a fresh bound-method closure per
	// interrupt was the largest allocation site of a campaign run.
	stampMoveFn func()

	// freeJobs is the free list of pooled rxJob records (see rxJob):
	// after the pool warms up, frame reception allocates neither ISR nor
	// task closures.
	freeJobs *rxJob

	comcoCfg comco.Config
	tr       *trace.Tracer
}

// SetTracer attaches an event tracer (nil detaches) and propagates it
// to every attached channel's COMCO. The node emits csp-send,
// latch-read and csp-arrival records.
func (n *Node) SetTracer(tr *trace.Tracer) {
	n.tr = tr
	for _, nc := range n.chans {
		nc.comco.SetTracer(tr, int(n.ID))
	}
}

type rxMetaEntry struct {
	alphaM, alphaP timefmt.Alpha
	valid          bool
}

// nodeChannel is the driver state of one network channel.
type nodeChannel struct {
	comco  *comco.COMCO
	txNext int
	// rxGuessSlot is the receive-header slot the kernel *believes* the
	// next RECEIVE trigger belongs to — the software ring pointer used
	// when the Receive Header Base latch is disabled (footnote 4).
	rxGuessSlot int
	lastMoveSeq uint64
}

// NewNode wires a node together and installs its interrupt plumbing.
func NewNode(s *sim.Simulator, id uint16, u *utcsu.UTCSU, med network.Bus, cfg Config, comcoCfg comco.Config) *Node {
	n := &Node{
		ID:        id,
		Sim:       s,
		CPU:       cpu.New(s, cfg.CPU, fmt.Sprintf("n%d", id)),
		U:         u,
		cfg:       cfg,
		rxMeta:    make(map[uint32]rxMetaEntry),
		stationOf: func(node uint16) int { return int(node) },
	}
	n.NTI = nti.New(u)
	n.comcoCfg = comcoCfg
	n.stampMoveFn = n.stampMoveISR
	n.NTI.OnInterrupt(n.moduleISR)
	n.NTI.EnableInts()
	n.AttachSegment(med)
	n.COMCO = n.chans[0].comco
	return n
}

// AttachSegment wires the node to an additional LAN segment through the
// NTI's next free channel (its own SSU pair and header partitions) and
// returns the channel index. Gateway nodes in a WANs-of-LANs topology
// call this once per extra segment.
func (n *Node) AttachSegment(med network.Bus) int {
	ch := len(n.chans)
	if ch >= nti.NumChannels {
		panic("kernel: no free NTI channel for another segment")
	}
	nc := &nodeChannel{
		comco: comco.NewChannel(n.Sim, n.NTI, med, n.comcoCfg, fmt.Sprintf("n%d.%d", n.ID, ch), ch),
	}
	n.chans = append(n.chans, nc)
	if n.tr != nil {
		nc.comco.SetTracer(n.tr, int(n.ID))
	}
	nc.comco.OnRxStored(func(fid uint64, base uint32, length int, corrupt bool) {
		n.frameStored(ch, fid, base, length, corrupt)
	})
	if n.cfg.Mode == ModeNTI {
		// Arm the RECEIVE transition interrupt that drives the
		// stamp-move ISR.
		n.U.SSU(2*ch + 1).EnableInterrupt(true)
	}
	return ch
}

// Channels reports the number of attached segments.
func (n *Node) Channels() int { return len(n.chans) }

// Station returns the node's medium station id.
func (n *Node) Station() int { return n.COMCO.Station() }

// OnCSP installs the CI handler.
func (n *Node) OnCSP(fn func(Arrival)) { n.ciHandler = fn }

// OnKernelMsg installs the KI handler.
func (n *Node) OnKernelMsg(fn func(from uint16, payload []byte)) { n.kiHandler = fn }

// OnNetMsg installs the NI handler.
func (n *Node) OnNetMsg(fn func(from uint16, payload []byte)) { n.niHandler = fn }

// EnableRTTResponder makes the node echo KindRTTReq probes at ISR level.
func (n *Node) EnableRTTResponder() { n.rttResponder = true }

// Overruns reports receive-stamp overruns detected by the stamp-move ISR.
func (n *Node) Overruns() uint64 { return n.overruns }

// CIDelivered reports packets handed to the CI handler.
func (n *Node) CIDelivered() uint64 { return n.ciDelivered }

// SendCSP transmits a clock synchronization packet. In ModeNTI the
// transmit stamp fields are filled in flight by the hardware; in the
// software modes they are filled here, before the frame ever contends
// for the medium — which is precisely their handicap.
// A broadcast goes out on every attached segment (gateway nodes relay
// their interval to both LANs, each transmission hardware-stamped on
// its own channel); a unicast uses channel 0.
func (n *Node) SendCSP(p csp.Packet, dst int) {
	if dst == network.Broadcast {
		for ch := range n.chans {
			n.sendCSPOn(ch, p, dst)
		}
		return
	}
	n.sendCSPOn(0, p, dst)
}

// SendCSPOn transmits on one specific channel (segment).
func (n *Node) SendCSPOn(ch int, p csp.Packet, dst int) { n.sendCSPOn(ch, p, dst) }

func (n *Node) sendCSPOn(ch int, p csp.Packet, dst int) {
	p.Node = n.ID
	n.seq++
	p.Seq = n.seq
	nc := n.chans[ch]
	var fid uint64
	switch n.cfg.Mode {
	case ModeNTI:
		slot := nc.txNext
		nc.txNext = (nc.txNext + 1) % nti.TxHeadersPerCh
		n.NTI.CPUWrite(nti.TxHeaderAddrCh(ch, slot), p.Encode())
		fid = nc.comco.Transmit(slot, nil, dst)
	default:
		st := n.U.Now()
		am, ap := n.U.Alpha()
		p.SetTxStamp(st)
		p.TxAlphaM, p.TxAlphaP = am, ap
		fid = nc.comco.TransmitRaw(p.Encode(), dst)
	}
	if n.tr != nil {
		n.tr.Emit(trace.KindCSPSend, n.Sim.Now(), int(n.ID), ch, fid, uint64(p.Round), 0)
	}
}

// SendKernelMsg ships a KI message (shares the medium with CSPs).
func (n *Node) SendKernelMsg(dst int, payload []byte) { n.sendData(csp.KindKernel, dst, payload) }

// SendNetMsg ships an NI message.
func (n *Node) SendNetMsg(dst int, payload []byte) { n.sendData(csp.KindNet, dst, payload) }

func (n *Node) sendData(kind csp.Kind, dst int, payload []byte) {
	p := csp.Packet{Kind: kind, Node: n.ID, Dest: uint16(dst)}
	n.seq++
	p.Seq = n.seq
	buf := append(p.Encode(), payload...)
	// KI/NI traffic does not need timestamping; it travels the raw path
	// on channel 0 (paper Fig. 9: the COMCO driver multiplexes all three
	// interfaces onto the same controller).
	n.chans[0].comco.TransmitRaw(buf, dst)
}

// moduleISR is the first-level handler for the NTI's vectorized
// interrupt. A RECEIVE transition (INTN) dispatches the stamp-move ISR.
func (n *Node) moduleISR(vector uint8) {
	if vector&nti.VecINTN != 0 && n.cfg.Mode == ModeNTI {
		n.CPU.RunISR(n.stampMoveFn)
		return
	}
	// Timer/application interrupts re-enable immediately: duty-timer
	// callbacks are delivered by the UTCSU model itself.
	n.NTI.EnableInts()
}

// stampMoveISR moves the sampled receive stamp from the UTCSU registers
// into the RxSave field of the owning receive header — "an unused
// portion of the receive buffer" (paper §3.1) — before the next CSP can
// overwrite the register. The sampled accuracies go to a driver table in
// the System Structures section.
// The single INTN line does not encode the channel, so the ISR scans
// every channel's sample unit and consumes whatever is new.
func (n *Node) stampMoveISR() {
	for ch, nc := range n.chans {
		stamp, am, ap, latchedBase, seq := n.NTI.ReadRxSampleCh(ch)
		if seq == nc.lastMoveSeq {
			continue // no new sample on this channel
		}
		if seq != nc.lastMoveSeq+1 {
			// A further trigger fired before this ISR ran: the register
			// now belongs to a newer CSP; earlier stamps are gone.
			n.overruns += seq - nc.lastMoveSeq - 1
		}
		nc.lastMoveSeq = seq
		base := latchedBase
		if !n.cfg.UseRxBaseLatch {
			// Footnote-4 alternative: guess the header from the software
			// ring pointer. Whenever the ISR was delayed past the next
			// frame's trigger, the guess attributes the stamp to the
			// wrong packet.
			base = nti.RxHeaderAddrCh(ch, nc.rxGuessSlot)
		}
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], uint64(stamp))
		n.NTI.CPUWrite(base+csp.OffRxSave, buf[:])
		n.rxMeta[base] = rxMetaEntry{alphaM: am, alphaP: ap, valid: true}
		if n.tr != nil {
			n.tr.Emit(trace.KindLatchRead, n.Sim.Now(), int(n.ID), ch, seq, uint64(base), stamp.Seconds())
		}
	}
	n.NTI.EnableInts()
}

// rxSaveRead pulls the stamp the stamp-move ISR deposited in a header.
// A valid entry is consumed so a reused slot cannot leak a stale stamp;
// an invalid read leaves the slot alone (the mover may still be pending
// and the caller may retry).
func (n *Node) rxSaveRead(base uint32) (timefmt.Stamp, timefmt.Alpha, timefmt.Alpha, bool) {
	meta := n.rxMeta[base]
	if !meta.valid {
		return 0, 0, 0, false
	}
	delete(n.rxMeta, base)
	var buf [8]byte
	n.NTI.CPURead(base+csp.OffRxSave, buf[:])
	st := timefmt.Stamp(binary.BigEndian.Uint64(buf[:]))
	return st, meta.alphaM, meta.alphaP, true
}

// rxJob carries one received frame from the frame-stored ISR to CI task
// level. Receptions overlap (the ISR runs ~12 µs after storage, the CI
// task hundreds of µs later, and every peer broadcasts each round), so
// jobs live on a per-node free list with their ISR and task entry
// points bound once at allocation: after warm-up, frame reception
// allocates nothing but the payload copy of data-bearing frames. The
// per-frame delivery closures this replaces were the top remaining
// allocation site after the stamp-move ISR was cached.
type rxJob struct {
	n          *Node
	ch         int
	slot       int
	attempt    int
	fid        uint64
	headerBase uint32
	length     int
	corrupt    bool
	pkt        csp.Packet
	payload    []byte
	isrStamp   timefmt.Stamp
	isrAM      timefmt.Alpha
	isrAP      timefmt.Alpha
	isrFn      func()
	taskFn     func()
	next       *rxJob
}

func (n *Node) getJob() *rxJob {
	j := n.freeJobs
	if j == nil {
		j = &rxJob{n: n}
		j.isrFn = j.runISR
		j.taskFn = j.runTask
		return j
	}
	n.freeJobs = j.next
	j.next = nil
	return j
}

func (n *Node) putJob(j *rxJob) {
	j.payload = nil
	j.pkt = csp.Packet{}
	j.next = n.freeJobs
	n.freeJobs = j
}

// frameStored is the COMCO's reception-complete callback: it runs the
// frame ISR on the CPU, then hands CSPs to the CI at task level.
func (n *Node) frameStored(ch int, fid uint64, headerBase uint32, length int, corrupt bool) {
	slot := int(headerBase-nti.RxHeaderAddrCh(ch, 0)) / nti.HeaderSize
	// The kernel's software ring pointer: the *next* trigger should
	// belong to the slot after this one (the no-latch guess).
	n.chans[ch].rxGuessSlot = (slot + 1) % nti.RxHeadersPerCh
	j := n.getJob()
	j.ch, j.slot, j.attempt = ch, slot, 0
	j.fid, j.headerBase, j.length, j.corrupt = fid, headerBase, length, corrupt
	n.CPU.RunISR(j.isrFn)
}

// runISR is the frame ISR body (the same operation order as the closure
// it replaced — CPURead costs are part of the timing model).
func (j *rxJob) runISR() {
	n := j.n
	j.isrStamp = n.U.Now()
	j.isrAM, j.isrAP = n.U.Alpha()
	var hdr [nti.HeaderSize]byte
	n.NTI.CPURead(j.headerBase, hdr[:])
	if extra := j.length - nti.HeaderSize; extra > 0 {
		if extra > nti.DataSlotSize {
			extra = nti.DataSlotSize
		}
		j.payload = make([]byte, extra)
		n.NTI.CPURead(nti.DataSlotAddr(j.ch, j.slot), j.payload)
	}
	if j.corrupt {
		// CRC failure: discard. In ModeNTI the RECEIVE trigger fired
		// anyway; the stamp-move ISR already consumed the sample, so
		// nothing is left dangling (this is why a sequential-order
		// scheme breaks, footnote 4).
		n.putJob(j)
		return
	}
	pkt, err := csp.Decode(hdr[:])
	if err != nil {
		n.putJob(j)
		return
	}
	j.pkt = pkt
	n.CPU.RunTask(j.taskFn)
}

// runTask is the CI task entry: it dispatches and then releases the job
// (dispatch signals a pending retry by bumping j.attempt and re-queuing
// j.taskFn, in which case the job stays live).
func (j *rxJob) runTask() {
	if j.n.dispatch(j) {
		j.n.putJob(j)
	}
}

// dispatch runs at CI task level. In ModeNTI it consumes the hardware
// stamp the stamp-move ISR deposited; if the mover lost the race against
// task dispatch it retries once before declaring the stamp lost (a real
// driver polls the validity marker the same way — the hardware register
// alone cannot be trusted once further CSPs may have arrived). It
// reports whether the job is finished (false = retry queued).
func (n *Node) dispatch(j *rxJob) bool {
	pkt, payload := j.pkt, j.payload
	var hwStamp timefmt.Stamp
	var hwAM, hwAP timefmt.Alpha
	hwOK := false
	if n.cfg.Mode == ModeNTI {
		hwStamp, hwAM, hwAP, hwOK = n.rxSaveRead(j.headerBase)
		if !hwOK && j.attempt < 2 {
			j.attempt++
			n.CPU.RunTask(j.taskFn)
			return false
		}
	}
	if n.rttResponder && pkt.Kind == csp.KindRTTReq {
		if n.cfg.Mode == ModeNTI && hwOK {
			n.respondRTT(pkt, hwStamp)
		}
		return true
	}
	switch pkt.Kind {
	case csp.KindKernel:
		if n.kiHandler != nil {
			n.kiHandler(pkt.Node, payload)
		}
		return true
	case csp.KindNet:
		if n.niHandler != nil {
			n.niHandler(pkt.Node, payload)
		}
		return true
	}
	if n.ciHandler == nil {
		return true
	}
	a := Arrival{Pkt: pkt, At: n.Sim.Now()}
	switch n.cfg.Mode {
	case ModeNTI:
		a.RxStamp, a.RxAlphaM, a.RxAlphaP, a.StampOK = hwStamp, hwAM, hwAP, hwOK
	case ModeISR:
		a.RxStamp, a.RxAlphaM, a.RxAlphaP, a.StampOK = j.isrStamp, j.isrAM, j.isrAP, true
	case ModeTask:
		a.RxStamp = n.U.Now()
		a.RxAlphaM, a.RxAlphaP = n.U.Alpha()
		a.StampOK = true
	}
	n.ciDelivered++
	if n.tr != nil {
		v := 0.0
		if a.StampOK {
			v = a.RxStamp.Seconds()
		}
		n.tr.Emit(trace.KindCSPArrival, n.Sim.Now(), int(n.ID), j.ch, j.fid, uint64(pkt.Round), v)
	}
	n.ciHandler(a)
	return true
}

// respondRTT echoes a round-trip probe at ISR level: the response
// carries the probe's hardware transmit stamp and this node's hardware
// receive stamp of the probe; the response's own transmit stamp is again
// inserted by the NTI in flight.
func (n *Node) respondRTT(req csp.Packet, rxStamp timefmt.Stamp) {
	reqTx, ok := req.TxStamp()
	if !ok {
		return
	}
	resp := csp.Packet{
		Kind:      csp.KindRTTResp,
		Dest:      req.Node,
		Round:     req.Round,
		EchoReqTx: reqTx,
		EchoReqRx: rxStamp,
	}
	n.SendCSP(resp, n.stationOf(req.Node))
}

// SetDirectory overrides the node-id → medium-station mapping (the
// default is identity, matching the cluster builder's attach order).
func (n *Node) SetDirectory(fn func(uint16) int) { n.stationOf = fn }
