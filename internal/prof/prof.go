// Package prof is the tiny profiling helper behind the -cpuprofile and
// -memprofile flags of cmd/ntibench and cmd/nticampaign: start CPU
// profiling up front, write the heap profile at exit, with the error
// handling in one place.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins profiling according to the (possibly empty) file paths.
// It returns a stop function that must be called once on the way out —
// it stops the CPU profile and writes the heap profile. Either path may
// be empty to skip that profile.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("prof: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("prof: %w", err)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("prof: %w", err)
			}
		}
		return nil
	}, nil
}
