package report

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ntisim/internal/cluster"
	"ntisim/internal/harness"
	"ntisim/internal/stats"
)

var update = flag.Bool("update", false, "rewrite golden files from this run")

// fixtureResults is a hand-built 2-axis, 2-seed campaign (4 points ×
// 2 seeds) with known values, grid (seed-major) order.
func fixtureResults() []harness.Result {
	var out []harness.Result
	cell := 0
	for _, seed := range []uint64{100, 101} {
		for _, n := range []int{2, 8} {
			for _, load := range []string{"0", "0.3"} {
				r := harness.Result{
					Cell:  cell,
					Label: "n=" + map[int]string{2: "2", 8: "8"}[n] + ",load=" + load + "%",
					Seed:  seed,
					Params: map[string]string{
						"nodes": map[int]string{2: "2", 8: "8"}[n],
						"load":  load,
					},
					Samples: 30,
				}
				base := 1e-6 * float64(n) / 2
				if load != "0" {
					base *= 1.5
				}
				jitter := 1e-8 * float64(seed-100+1)
				r.Precision.N = 30
				r.Precision.Mean = base + jitter
				r.Precision.Max = 2*base + jitter
				r.Accuracy.Max = 3*base + jitter
				r.Width.Mean = 4 * base
				out = append(out, r)
				cell++
			}
		}
	}
	return out
}

// TestGenerateGolden pins the full Markdown+SVG report bytes for the
// fixture campaign. Regenerate intentionally with:
//
//	go test ./internal/report -run Golden -update
func TestGenerateGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := Generate(&buf, "fixture", fixtureResults(), stats.Options{}); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "fixture.report.golden.md")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("report differs from golden (regenerate with -update if intentional)\n--- got ---\n%.2000s", buf.String())
	}
}

// The same inputs must always produce the same bytes (bootstrap RNG is
// seeded from the cells, not the clock).
func TestGenerateDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := Generate(&a, "x", fixtureResults(), stats.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := Generate(&b, "x", fixtureResults(), stats.Options{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("repeated Generate calls differ")
	}
}

func TestGenerateContent(t *testing.T) {
	var buf bytes.Buffer
	if err := Generate(&buf, "fixture", fixtureResults(), stats.Options{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# Campaign report — fixture",
		"8 cells · 4 points × 2 seeds (100, 101)",
		"## Aggregate statistics",
		"## Cross-point comparison (Welch t, 95%)",
		"## Precision vs load",
		"## Precision vs nodes",
		"<svg xmlns",
		"| n=2,load=0% | 2 |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(out, "NaN") || strings.Contains(out, "+Inf") {
		t.Error("report contains unformatted NaN/Inf")
	}
	// Two numeric axes → two charts.
	if n := strings.Count(out, "<svg"); n != 2 {
		t.Errorf("charts = %d, want 2", n)
	}
}

// Errored cells must be reported, not aggregated.
func TestGenerateWithErrors(t *testing.T) {
	rs := fixtureResults()
	rs[0].Err = "panic: boom"
	var buf bytes.Buffer
	if err := Generate(&buf, "e", rs, stats.Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "**1 errored**") || !strings.Contains(buf.String(), "(1 errored)") {
		t.Errorf("errored cell not surfaced:\n%.400s", buf.String())
	}
}

// TestJSONLRoundTrip: a report generated from the JSONL artifact must
// match one generated from the in-memory results.
func TestJSONLRoundTrip(t *testing.T) {
	spec := harness.Spec{
		Name:         "rt",
		Base:         cluster.Defaults(2, 1),
		Points:       harness.NodesAxis(2, 3).Points,
		Seeds:        []uint64{7, 8},
		WarmupS:      2,
		WindowS:      6,
		SampleEveryS: 1,
		DelayProbes:  4,
		Workers:      4,
	}
	camp := harness.Run(spec)
	dir := t.TempDir()
	if _, err := camp.WriteArtifacts(dir); err != nil {
		t.Fatal(err)
	}
	paths, err := FindJSONL(dir)
	if err != nil || len(paths) != 1 {
		t.Fatalf("FindJSONL = %v, %v", paths, err)
	}
	loaded, err := LoadJSONL(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(camp.Results) {
		t.Fatalf("loaded %d results, want %d", len(loaded), len(camp.Results))
	}
	var fromMem, fromDisk bytes.Buffer
	if err := Generate(&fromMem, "rt", camp.Results, stats.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := Generate(&fromDisk, "rt", loaded, stats.Options{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromMem.Bytes(), fromDisk.Bytes()) {
		t.Fatal("report from JSONL differs from report from memory")
	}
}

// TestWorkerCountDeterminism: the acceptance property — reports over
// the same spec are byte-identical for 1 and N workers.
func TestWorkerCountDeterminism(t *testing.T) {
	run := func(workers int) []byte {
		spec := harness.Spec{
			Name:         "wd",
			Base:         cluster.Defaults(2, 1),
			Points:       harness.NodesAxis(2, 4).Points,
			Seeds:        []uint64{5, 6},
			WarmupS:      2,
			WindowS:      6,
			SampleEveryS: 1,
			DelayProbes:  4,
			Workers:      workers,
		}
		var buf bytes.Buffer
		if err := Generate(&buf, "wd", harness.Run(spec).Results, stats.Options{}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(run(1), run(4)) {
		t.Fatal("report differs between 1 and 4 workers")
	}
}

func TestNiceTicks(t *testing.T) {
	ticks := niceTicks(0, 10, 6)
	if len(ticks) < 4 || ticks[0] != 0 || ticks[len(ticks)-1] != 10 {
		t.Errorf("ticks(0,10) = %v", ticks)
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i] <= ticks[i-1] {
			t.Fatalf("ticks not increasing: %v", ticks)
		}
	}
	if got := niceTicks(5, 5, 6); len(got) != 1 {
		t.Errorf("degenerate ticks = %v", got)
	}
}

func TestNumericAxes(t *testing.T) {
	agg := stats.Aggregate(fixtureResults(), stats.Options{Bootstrap: -1})
	axes := numericAxes(agg)
	if len(axes) != 2 || axes[0] != "load" || axes[1] != "nodes" {
		t.Errorf("axes = %v, want [load nodes]", axes)
	}
}

// TestTimelineSection: results carrying Spec.Timeline data render a
// Timelines section with one precision chart per point and — when any
// external reference CSPs were rejected (the GPS fault signature) — a
// cumulative-rejection chart; results without timelines render nothing
// extra, keeping pre-timeline reports byte-identical.
func TestTimelineSection(t *testing.T) {
	rs := fixtureResults()
	var plain bytes.Buffer
	if err := Generate(&plain, "tl", rs, stats.Options{}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), "## Timelines") {
		t.Fatal("Timelines section rendered without timeline data")
	}

	// Attach a timeline with a mid-window fault to the two seeds of one
	// point: rejections start at t=4 (onset) and stop at t=8 (recovery).
	for i := range rs {
		if rs[i].Label != "n=2,load=0%" {
			continue
		}
		var rej uint64
		for s := 0; s <= 10; s++ {
			tt := float64(s)
			if tt >= 4 && tt < 8 {
				rej++
			}
			rs[i].Timeline = append(rs[i].Timeline, harness.TimelinePoint{
				T:           tt,
				PrecisionS:  1e-6 + 1e-7*tt,
				MaxAbsOffS:  2e-6,
				Contained:   true,
				ExtRejected: rej,
			})
		}
	}
	var buf bytes.Buffer
	if err := Generate(&buf, "tl", rs, stats.Options{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"## Timelines",
		"### n=2,load=0%",
		"precision over time — n=2,load=0%",
		"external rejections — n=2,load=0%",
		"seed 100",
		"seed 101",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline report missing %q", want)
		}
	}
	// Only the point with timeline data gets a subsection.
	if n := strings.Count(out, "### "); n != 1 {
		t.Errorf("timeline subsections = %d, want 1", n)
	}
	// The section is deterministic like everything else.
	var again bytes.Buffer
	if err := Generate(&again, "tl", rs, stats.Options{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("timeline rendering not deterministic")
	}
}

// disciplineResults builds a 2-discipline × 2-fault fixture with known
// ordering: kalman strictly beats interval on precision.
func disciplineResults() []harness.Result {
	var out []harness.Result
	cell := 0
	for _, disc := range []string{"interval", "kalman"} {
		for _, fault := range []string{"none", "offset"} {
			r := harness.Result{
				Cell:    cell,
				Label:   "disc=" + disc + ",fault=" + fault,
				Seed:    1,
				Params:  map[string]string{"discipline": disc, "fault": fault},
				Samples: 30,
			}
			base := 2e-6
			if disc == "kalman" {
				base = 1e-6
			}
			if fault != "none" {
				base *= 1.5
			}
			r.Precision.N = 30
			r.Precision.Mean = base
			r.Precision.Max = 2 * base
			r.Accuracy.Max = 3 * base
			r.Width.Mean = 4 * base
			out = append(out, r)
			cell++
		}
	}
	return out
}

// TestDisciplineRanking: campaigns with a discipline axis get the
// head-to-head ranking section, ordered by pooled mean precision.
func TestDisciplineRanking(t *testing.T) {
	var buf bytes.Buffer
	if err := Generate(&buf, "d", disciplineResults(), stats.Options{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "## Discipline ranking") {
		t.Fatalf("ranking section missing:\n%.600s", out)
	}
	k := strings.Index(out, "| 1 | kalman |")
	i := strings.Index(out, "| 2 | interval |")
	if k < 0 || i < 0 || k > i {
		t.Errorf("ranking order wrong (kalman@%d interval@%d):\n%.1200s", k, i, out)
	}
}

// TestDisciplineRankingSkipped: no discipline axis (or a single
// discipline) must leave the report untouched — byte-compatibility of
// the smoke golden depends on it.
func TestDisciplineRankingSkipped(t *testing.T) {
	var plain bytes.Buffer
	if err := Generate(&plain, "p", fixtureResults(), stats.Options{}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), "Discipline ranking") {
		t.Error("ranking section appeared without a discipline axis")
	}
	single := disciplineResults()[:2] // interval only
	var buf bytes.Buffer
	if err := Generate(&buf, "s", single, stats.Options{}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "Discipline ranking") {
		t.Error("ranking section appeared for a single discipline")
	}
}
