// Timeline rendering: when a campaign was run with Spec.Timeline, each
// cell carries per-sample evolution data. The report turns those into
// per-point charts — precision over the measurement window, and (when
// any external reference CSPs were rejected) the cumulative rejection
// count whose slope changes mark GPS fault onset and recovery. Cells
// without timeline data render nothing, so ordinary campaign reports
// are byte-for-byte unchanged.

package report

import (
	"fmt"
	"io"
	"sort"

	"ntisim/internal/harness"
)

// timelineGroups orders the results that carry timelines by point
// label (grid order), grouping the seeds of each point into one chart.
func timelineGroups(results []harness.Result) ([]string, map[string][]*harness.Result) {
	var labels []string
	groups := map[string][]*harness.Result{}
	for i := range results {
		r := &results[i]
		if len(r.Timeline) == 0 || r.Err != "" {
			continue
		}
		if _, ok := groups[r.Label]; !ok {
			labels = append(labels, r.Label)
		}
		groups[r.Label] = append(groups[r.Label], r)
	}
	sort.Strings(labels)
	for _, rs := range groups {
		sort.Slice(rs, func(i, j int) bool { return rs[i].Seed < rs[j].Seed })
	}
	return labels, groups
}

func writeTimelines(w io.Writer, results []harness.Result) {
	labels, groups := timelineGroups(results)
	if len(labels) == 0 {
		return
	}
	fmt.Fprintf(w, "## Timelines\n\n")
	fmt.Fprintf(w, "Per-sample evolution over the measurement window (one series per\nseed). Where external reference CSPs were rejected, the cumulative\nrejection count is plotted too: its slope turning on and off marks\nGPS fault onset and recovery.\n\n")
	for _, label := range labels {
		rs := groups[label]
		var prec, rej []plotSeries
		anyRej := false
		for _, r := range rs {
			ps := plotSeries{Name: fmt.Sprintf("seed %d", r.Seed)}
			js := plotSeries{Name: fmt.Sprintf("seed %d", r.Seed)}
			for _, p := range r.Timeline {
				y := p.PrecisionS * 1e6
				ps.Points = append(ps.Points, plotPoint{X: p.T, Y: y, Lo: y, Hi: y})
				jy := float64(p.ExtRejected)
				js.Points = append(js.Points, plotPoint{X: p.T, Y: jy, Lo: jy, Hi: jy})
				if p.ExtRejected > 0 {
					anyRej = true
				}
			}
			prec = append(prec, ps)
			rej = append(rej, js)
		}
		fmt.Fprintf(w, "### %s\n\n", label)
		fmt.Fprintf(w, "%s\n\n", renderSVG("precision over time — "+label, "t [s]", "precision [µs]", prec))
		if anyRej {
			fmt.Fprintf(w, "%s\n\n", renderSVG("external rejections — "+label, "t [s]", "cumulative rejected CSPs", rej))
		}
	}
}
