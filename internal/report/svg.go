// Pure-stdlib SVG line plots: one fixed-size chart with optional
// confidence bands and per-seed scatter per series. Everything is
// rendered with fixed-precision coordinate formatting and sorted
// iteration, so the same data always produces the same bytes — the
// golden report gate depends on that.

package report

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

const (
	svgW, svgH                           = 640, 360
	padLeft, padRight, padTop, padBottom = 64, 16, 28, 44
)

// palette is the fixed series color cycle (matplotlib's tab colors).
var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

type xy struct{ X, Y float64 }

// plotPoint is one line vertex with an optional confidence band
// [Lo, Hi] around Y (Lo == Hi == Y renders no band contribution).
type plotPoint struct{ X, Y, Lo, Hi float64 }

type plotSeries struct {
	Name    string
	Points  []plotPoint // ascending X (caller sorts)
	Scatter []xy        // per-seed observations
}

// fc formats an SVG coordinate: two decimals is below device
// resolution and keeps the output byte-stable.
func fc(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }

// fticks formats a tick label with 4 significant digits.
func ftick(v float64) string { return strconv.FormatFloat(v, 'g', 4, 64) }

// niceStep rounds raw up to a 1/2/5×10^k step.
func niceStep(raw float64) float64 {
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	switch frac := raw / mag; {
	case frac <= 1:
		return mag
	case frac <= 2:
		return 2 * mag
	case frac <= 5:
		return 5 * mag
	default:
		return 10 * mag
	}
}

// niceTicks returns ~n tick values covering [lo, hi].
func niceTicks(lo, hi float64, n int) []float64 {
	if hi <= lo || n < 2 {
		return []float64{lo}
	}
	step := niceStep((hi - lo) / float64(n-1))
	var ticks []float64
	for v := math.Ceil(lo/step) * step; v <= hi+step*1e-9; v += step {
		// Snap near-zero accumulation error so labels read "0", not "1e-17".
		if math.Abs(v) < step*1e-6 {
			v = 0
		}
		ticks = append(ticks, v)
	}
	return ticks
}

// renderSVG draws the chart. Y values are expected pre-converted to
// display units (µs for the report's precision plots).
func renderSVG(title, xLabel, yLabel string, series []plotSeries) string {
	xlo, xhi := math.Inf(1), math.Inf(-1)
	ylo, yhi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, p := range s.Points {
			xlo, xhi = math.Min(xlo, p.X), math.Max(xhi, p.X)
			ylo = math.Min(ylo, math.Min(p.Y, p.Lo))
			yhi = math.Max(yhi, math.Max(p.Y, p.Hi))
		}
		for _, p := range s.Scatter {
			xlo, xhi = math.Min(xlo, p.X), math.Max(xhi, p.X)
			ylo, yhi = math.Min(ylo, p.Y), math.Max(yhi, p.Y)
		}
	}
	if math.IsInf(xlo, 1) {
		return `<svg xmlns="http://www.w3.org/2000/svg" width="640" height="60"><text x="8" y="30" font-family="monospace" font-size="12">no data</text></svg>`
	}
	pad := func(lo, hi float64) (float64, float64) {
		span := hi - lo
		if span == 0 {
			span = math.Max(math.Abs(hi), 1)
		}
		return lo - 0.05*span, hi + 0.05*span
	}
	xlo, xhi = pad(xlo, xhi)
	ylo, yhi = pad(ylo, yhi)

	sx := func(v float64) float64 {
		return padLeft + (v-xlo)/(xhi-xlo)*float64(svgW-padLeft-padRight)
	}
	sy := func(v float64) float64 {
		return float64(svgH-padBottom) - (v-ylo)/(yhi-ylo)*float64(svgH-padTop-padBottom)
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="11">`+"\n", svgW, svgH)
	fmt.Fprintf(&b, `<text x="%s" y="16" text-anchor="middle" font-size="13">%s</text>`+"\n",
		fc(float64(padLeft+(svgW-padLeft-padRight)/2)), escape(title))

	// Grid and ticks.
	for _, t := range niceTicks(xlo, xhi, 6) {
		x := fc(sx(t))
		fmt.Fprintf(&b, `<line x1="%s" y1="%d" x2="%s" y2="%d" stroke="#dddddd"/>`+"\n", x, padTop, x, svgH-padBottom)
		fmt.Fprintf(&b, `<text x="%s" y="%d" text-anchor="middle" fill="#444444">%s</text>`+"\n", x, svgH-padBottom+16, ftick(t))
	}
	for _, t := range niceTicks(ylo, yhi, 6) {
		y := fc(sy(t))
		fmt.Fprintf(&b, `<line x1="%d" y1="%s" x2="%d" y2="%s" stroke="#dddddd"/>`+"\n", padLeft, y, svgW-padRight, y)
		fmt.Fprintf(&b, `<text x="%d" y="%s" text-anchor="end" dy="4" fill="#444444">%s</text>`+"\n", padLeft-6, y, ftick(t))
	}
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#888888"/>`+"\n",
		padLeft, padTop, svgW-padLeft-padRight, svgH-padTop-padBottom)
	fmt.Fprintf(&b, `<text x="%s" y="%d" text-anchor="middle">%s</text>`+"\n",
		fc(float64(padLeft+(svgW-padLeft-padRight)/2)), svgH-8, escape(xLabel))
	fmt.Fprintf(&b, `<text x="14" y="%s" text-anchor="middle" transform="rotate(-90 14 %s)">%s</text>`+"\n",
		fc(float64(padTop+(svgH-padTop-padBottom)/2)), fc(float64(padTop+(svgH-padTop-padBottom)/2)), escape(yLabel))

	for i, s := range series {
		color := palette[i%len(palette)]
		// Confidence band: upper edge left-to-right, lower edge back.
		hasBand := false
		for _, p := range s.Points {
			if p.Lo != p.Y || p.Hi != p.Y {
				hasBand = true
			}
		}
		if hasBand && len(s.Points) > 1 {
			var poly []string
			for _, p := range s.Points {
				poly = append(poly, fc(sx(p.X))+","+fc(sy(p.Hi)))
			}
			for j := len(s.Points) - 1; j >= 0; j-- {
				p := s.Points[j]
				poly = append(poly, fc(sx(p.X))+","+fc(sy(p.Lo)))
			}
			fmt.Fprintf(&b, `<polygon points="%s" fill="%s" fill-opacity="0.15" stroke="none"/>`+"\n",
				strings.Join(poly, " "), color)
		}
		var line []string
		for _, p := range s.Points {
			line = append(line, fc(sx(p.X))+","+fc(sy(p.Y)))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
			strings.Join(line, " "), color)
		for _, p := range s.Points {
			fmt.Fprintf(&b, `<circle cx="%s" cy="%s" r="3" fill="%s"/>`+"\n", fc(sx(p.X)), fc(sy(p.Y)), color)
		}
		for _, p := range s.Scatter {
			fmt.Fprintf(&b, `<circle cx="%s" cy="%s" r="2" fill="%s" fill-opacity="0.45"/>`+"\n", fc(sx(p.X)), fc(sy(p.Y)), color)
		}
	}

	// Legend, top-right inside the frame.
	for i, s := range series {
		color := palette[i%len(palette)]
		y := padTop + 14 + 15*i
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			svgW-padRight-150, y, svgW-padRight-130, y, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" dy="4">%s</text>`+"\n", svgW-padRight-124, y, escape(s.Name))
	}
	b.WriteString("</svg>")
	return b.String()
}

// escape makes a string safe for SVG/HTML text content.
func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
