// Package report renders campaign artifacts into deterministic
// Markdown reports with embedded SVG plots. Input is either the JSONL
// artifact a campaign wrote (LoadJSONL) or in-memory results straight
// from harness.Run; output is a single Markdown document: a per-point
// aggregate table with Student-t and bootstrap confidence intervals,
// a Welch cross-point comparison, and one line/band/scatter chart per
// numeric sweep axis.
//
// Reports carry no wall-clock, hostname, or build metadata and every
// number is formatted with fixed precision, so identical inputs yield
// byte-identical reports — they are golden-gated in CI exactly like
// campaign artifacts (make report-smoke).
package report

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"ntisim/internal/harness"
	"ntisim/internal/metrics"
	"ntisim/internal/stats"
)

// LoadJSONL reads one campaign's results from a JSONL artifact.
func LoadJSONL(path string) ([]harness.Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []harness.Result
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24) // timelines can make long lines
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var r harness.Result
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			return nil, fmt.Errorf("report: %s line %d: %w", path, len(out)+1, err)
		}
		out = append(out, r)
	}
	return out, sc.Err()
}

// FindJSONL lists the *.jsonl artifacts under dir in sorted order.
func FindJSONL(dir string) ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

// us formats seconds as µs with 3 decimals (the report's time unit).
func us(s float64) string { return metrics.Us(s) }

// ci formats a confidence interval in µs.
func ci(lo, hi float64) string { return "[" + us(lo) + ", " + us(hi) + "]" }

// ft formats a t statistic (infinite t — zero-variance exact
// difference — prints as inf).
func ft(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	if math.IsInf(v, -1) {
		return "-inf"
	}
	return strconv.FormatFloat(v, 'f', 2, 64)
}

// Generate writes the Markdown report for one campaign's results.
func Generate(w io.Writer, title string, results []harness.Result, opt stats.Options) error {
	agg := stats.Aggregate(results, opt)
	bw := bufio.NewWriter(w)

	seedSet := map[uint64]bool{}
	errors := 0
	for i := range results {
		seedSet[results[i].Seed] = true
		if results[i].Err != "" {
			errors++
		}
	}
	seeds := make([]uint64, 0, len(seedSet))
	for s := range seedSet {
		seeds = append(seeds, s)
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })

	fmt.Fprintf(bw, "# Campaign report — %s\n\n", title)
	fmt.Fprintf(bw, "%d cells · %d points × %d seeds", len(results), len(agg), len(seeds))
	if len(seeds) > 0 {
		fmt.Fprintf(bw, " (")
		for i, s := range seeds {
			if i > 0 {
				fmt.Fprintf(bw, ", ")
			}
			fmt.Fprintf(bw, "%d", s)
		}
		fmt.Fprintf(bw, ")")
	}
	if errors > 0 {
		fmt.Fprintf(bw, " · **%d errored**", errors)
	}
	fmt.Fprintf(bw, ". All times in µs.\n\n")

	writeAggregateTable(bw, agg)
	writeHealth(bw, results)
	writeTraitorTolerance(bw, results)
	writeConvergence(bw, agg, opt)
	writeServing(bw, agg)
	writeDisciplineRanking(bw, agg)
	writeComparison(bw, agg)
	writePlots(bw, agg)
	writeServingPlots(bw, agg)
	writeTimelines(bw, results)

	return bw.Flush()
}

func writeAggregateTable(w io.Writer, agg []stats.PointStats) {
	fmt.Fprintf(w, "## Aggregate statistics (across seeds)\n\n")
	fmt.Fprintf(w, "Precision is the per-sample max pairwise clock difference; each seed\ncontributes its window mean/max. CIs are 95%% (Student-t and bootstrap\npercentile).\n\n")
	fmt.Fprintf(w, "| point | n | prec mean | t95 CI | boot95 CI | prec worst | worst offset | width ± |\n")
	fmt.Fprintf(w, "|---|---|---|---|---|---|---|---|\n")
	for _, p := range agg {
		label := p.Label
		if p.Errors > 0 {
			label += fmt.Sprintf(" (%d errored)", p.Errors)
		}
		if p.Precision.N == 0 {
			fmt.Fprintf(w, "| %s | 0 | — | — | — | — | — | — |\n", label)
			continue
		}
		fmt.Fprintf(w, "| %s | %d | %s | %s | %s | %s | %s | %s |\n",
			label, p.Precision.N,
			us(p.Precision.Mean), ci(p.Precision.Lo, p.Precision.Hi),
			ci(p.Precision.BootLo, p.Precision.BootHi),
			us(p.PrecisionWorst.Mean), us(p.Accuracy.Mean), us(p.Width.Mean))
	}
	fmt.Fprintf(w, "\n")
}

// writeHealth lists the cells whose telemetry watchdog tripped. Cells
// without flags are omitted, and campaigns with no flagged cell (or no
// telemetry at all) skip the section entirely, keeping their reports
// byte-identical to before it existed.
func writeHealth(w io.Writer, results []harness.Result) {
	any := false
	for i := range results {
		if len(results[i].Health) > 0 {
			any = true
			break
		}
	}
	if !any {
		return
	}
	fmt.Fprintf(w, "## Health flags (telemetry watchdog)\n\n")
	fmt.Fprintf(w, "Cells whose runtime-telemetry watchdog tripped at least one rule\n(containment violation, convergence failures, queue-depth runaway, or\na stalled shard). Healthy cells are omitted.\n\n")
	fmt.Fprintf(w, "| cell | point | seed | flags |\n")
	fmt.Fprintf(w, "|---|---|---|---|\n")
	for i := range results {
		r := &results[i]
		if len(r.Health) == 0 {
			continue
		}
		flags := ""
		for j, f := range r.Health {
			if j > 0 {
				flags += ", "
			}
			flags += "`" + f + "`"
		}
		fmt.Fprintf(w, "| %d | %s | %d | %s |\n", r.Cell, r.Label, r.Seed, flags)
	}
	fmt.Fprintf(w, "\n")
}

func writeConvergence(w io.Writer, agg []stats.PointStats, opt stats.Options) {
	any := false
	for _, p := range agg {
		if p.Convergence.N > 0 {
			any = true
		}
	}
	if !any {
		return
	}
	thr := opt.ConvergedBelowS
	if thr == 0 {
		thr = 5e-6
	}
	fmt.Fprintf(w, "## Convergence time (precision ≤ %s µs)\n\n", us(thr))
	fmt.Fprintf(w, "| point | n | mean [s] | t95 CI [s] | min [s] | max [s] |\n")
	fmt.Fprintf(w, "|---|---|---|---|---|---|\n")
	fs := func(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }
	for _, p := range agg {
		c := p.Convergence
		if c.N == 0 {
			fmt.Fprintf(w, "| %s | 0 | — | — | — | — |\n", p.Label)
			continue
		}
		fmt.Fprintf(w, "| %s | %d | %s | [%s, %s] | %s | %s |\n",
			p.Label, c.N, fs(c.Mean), fs(c.Lo), fs(c.Hi), fs(c.Min), fs(c.Max))
	}
	fmt.Fprintf(w, "\n")
}

// writeServing reports the served-accuracy percentiles of the client
// population for campaigns that enabled one (cluster.Config.Serving);
// campaigns without serving data skip the section, keeping their
// reports byte-identical to before it existed.
func writeServing(w io.Writer, agg []stats.PointStats) {
	any := false
	for i := range agg {
		if agg[i].HasServing() {
			any = true
		}
	}
	if !any {
		return
	}
	fmt.Fprintf(w, "## Served-accuracy percentiles (client population)\n\n")
	fmt.Fprintf(w, "Each served query samples the responding node's clock error at\nservice time; percentiles are over all queries of the window, then\naveraged across seeds. req/s is served requests per sim-second.\n\n")
	fmt.Fprintf(w, "| point | n | req/s | p50 err | p99 err | p99 boot95 CI | p99.9 err | max err |\n")
	fmt.Fprintf(w, "|---|---|---|---|---|---|---|---|\n")
	fq := func(v float64) string { return strconv.FormatFloat(v, 'f', 0, 64) }
	for i := range agg {
		p := &agg[i]
		if !p.HasServing() {
			fmt.Fprintf(w, "| %s | 0 | — | — | — | — | — | — |\n", p.Label)
			continue
		}
		fmt.Fprintf(w, "| %s | %d | %s | %s | %s | %s | %s | %s |\n",
			p.Label, p.ServedP99.N, fq(p.ServedQPS.Mean),
			us(p.ServedP50.Mean), us(p.ServedP99.Mean),
			ci(p.ServedP99.BootLo, p.ServedP99.BootHi),
			us(p.ServedP999.Mean), us(p.ServedMax.Max))
	}
	fmt.Fprintf(w, "\n")
}

// writeServingPlots charts the served p99 error against each numeric
// sweep axis, mirroring the precision plots. Skipped entirely without
// serving data.
func writeServingPlots(w io.Writer, agg []stats.PointStats) {
	for i := range agg {
		if agg[i].HasServing() {
			goto plot
		}
	}
	return
plot:
	for _, axis := range numericAxes(agg) {
		names := []string{}
		series := map[string]*plotSeries{}
		for _, p := range agg {
			if !p.HasServing() {
				continue
			}
			x, _ := strconv.ParseFloat(p.Params[axis], 64)
			name := otherSig(p.Params, axis)
			if name == "" {
				name = "all points"
			}
			s, ok := series[name]
			if !ok {
				s = &plotSeries{Name: name}
				series[name] = s
				names = append(names, name)
			}
			e := p.ServedP99
			s.Points = append(s.Points, plotPoint{X: x, Y: e.Mean * 1e6, Lo: e.Lo * 1e6, Hi: e.Hi * 1e6})
			for _, v := range e.Values {
				s.Scatter = append(s.Scatter, xy{X: x, Y: v * 1e6})
			}
		}
		if len(names) == 0 {
			continue
		}
		sort.Strings(names)
		var ss []plotSeries
		for _, n := range names {
			s := series[n]
			sort.Slice(s.Points, func(i, j int) bool { return s.Points[i].X < s.Points[j].X })
			sort.Slice(s.Scatter, func(i, j int) bool {
				if s.Scatter[i].X != s.Scatter[j].X {
					return s.Scatter[i].X < s.Scatter[j].X
				}
				return s.Scatter[i].Y < s.Scatter[j].Y
			})
			ss = append(ss, *s)
		}
		fmt.Fprintf(w, "## Served p99 error vs %s\n\n", axis)
		fmt.Fprintf(w, "Line: mean across seeds of the per-seed served p99 client error.\nBand: Student-t 95%% CI. Dots: per-seed values.\n\n")
		fmt.Fprintf(w, "%s\n\n", renderSVG("served p99 vs "+axis, axis, "served p99 error [µs]", ss))
	}
}

// writeDisciplineRanking ranks clock disciplines head-to-head when the
// campaign swept a "discipline" axis: every discipline's points are
// pooled (equal weight per point) and ranked on mean precision, with
// accuracy and convergence time alongside. Campaigns with fewer than
// two distinct disciplines skip the section, so reports without the
// axis are byte-identical to before it existed.
func writeDisciplineRanking(w io.Writer, agg []stats.PointStats) {
	type pool struct {
		name      string
		points    int
		precSum   float64
		worstPrec float64
		accSum    float64
		convSum   float64
		convN     int
	}
	pools := map[string]*pool{}
	var order []string
	for _, p := range agg {
		name, ok := p.Params["discipline"]
		if !ok || p.Precision.N == 0 {
			continue
		}
		g := pools[name]
		if g == nil {
			g = &pool{name: name}
			pools[name] = g
			order = append(order, name)
		}
		g.points++
		g.precSum += p.Precision.Mean
		if p.PrecisionWorst.Mean > g.worstPrec {
			g.worstPrec = p.PrecisionWorst.Mean
		}
		g.accSum += p.Accuracy.Mean
		if p.Convergence.N > 0 {
			g.convSum += p.Convergence.Mean
			g.convN++
		}
	}
	if len(pools) < 2 {
		return
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := pools[order[i]], pools[order[j]]
		ma, mb := a.precSum/float64(a.points), b.precSum/float64(b.points)
		if ma != mb {
			return ma < mb
		}
		return a.name < b.name
	})
	fmt.Fprintf(w, "## Discipline ranking\n\n")
	fmt.Fprintf(w, "Every discipline's points (each fault scenario × seed) pooled with\nequal weight per point and ranked on mean precision. Convergence\naverages only the points that reached the threshold (shown as\nreached/total).\n\n")
	fmt.Fprintf(w, "| rank | discipline | points | mean prec | worst prec | mean \\|C−t\\| | conv [s] |\n")
	fmt.Fprintf(w, "|---|---|---|---|---|---|---|\n")
	for i, n := range order {
		g := pools[n]
		conv := "—"
		if g.convN > 0 {
			conv = fmt.Sprintf("%s (%d/%d)",
				strconv.FormatFloat(g.convSum/float64(g.convN), 'f', 2, 64), g.convN, g.points)
		}
		fmt.Fprintf(w, "| %d | %s | %d | %s | %s | %s | %s |\n",
			i+1, g.name, g.points,
			us(g.precSum/float64(g.points)), us(g.worstPrec),
			us(g.accSum/float64(g.points)), conv)
	}
	fmt.Fprintf(w, "\n")
}

func writeComparison(w io.Writer, agg []stats.PointStats) {
	if len(agg) < 2 {
		return
	}
	best := -1
	for i, p := range agg {
		if p.Precision.N == 0 {
			continue
		}
		if best < 0 || p.Precision.Mean < agg[best].Precision.Mean {
			best = i
		}
	}
	if best < 0 {
		return
	}
	fmt.Fprintf(w, "## Cross-point comparison (Welch t, 95%%)\n\n")
	fmt.Fprintf(w, "Reference: `%s` (lowest mean precision, %s µs). A point is\n*distinguishable* when |t| exceeds the Student-t critical value at the\nWelch–Satterthwaite degrees of freedom; single-seed points cannot be\ntested.\n\n", agg[best].Label, us(agg[best].Precision.Mean))
	fmt.Fprintf(w, "| point | Δ mean | t | df | distinguishable? |\n")
	fmt.Fprintf(w, "|---|---|---|---|---|\n")
	for i, p := range agg {
		if i == best {
			continue
		}
		if p.Precision.N == 0 {
			fmt.Fprintf(w, "| %s | — | — | — | — |\n", p.Label)
			continue
		}
		c := stats.Compare(p.Precision, agg[best].Precision)
		verdict := "no"
		if c.Distinguishable {
			verdict = "**yes**"
		}
		if p.Precision.N < 2 || agg[best].Precision.N < 2 {
			verdict = "n/a (single seed)"
		}
		fmt.Fprintf(w, "| %s | %s | %s | %s | %s |\n",
			p.Label, us(c.DeltaMean), ft(c.T), strconv.FormatFloat(c.DF, 'f', 1, 64), verdict)
	}
	fmt.Fprintf(w, "\n")
}

// numericAxes returns the param keys present on every point that parse
// as numbers and take at least two distinct values, in sorted order.
func numericAxes(agg []stats.PointStats) []string {
	if len(agg) == 0 {
		return nil
	}
	var keys []string
	for k := range agg[0].Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []string
	for _, k := range keys {
		distinct := map[float64]bool{}
		ok := true
		for _, p := range agg {
			v, present := p.Params[k]
			if !present {
				ok = false
				break
			}
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				ok = false
				break
			}
			distinct[f] = true
		}
		if ok && len(distinct) >= 2 {
			out = append(out, k)
		}
	}
	return out
}

// otherSig joins the non-axis params into a stable series name.
func otherSig(params map[string]string, axis string) string {
	var keys []string
	for k := range params {
		if k != axis {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	sig := ""
	for _, k := range keys {
		if sig != "" {
			sig += ","
		}
		sig += k + "=" + params[k]
	}
	return sig
}

func writePlots(w io.Writer, agg []stats.PointStats) {
	for _, axis := range numericAxes(agg) {
		names := []string{}
		series := map[string]*plotSeries{}
		for _, p := range agg {
			if p.Precision.N == 0 {
				continue
			}
			x, _ := strconv.ParseFloat(p.Params[axis], 64)
			name := otherSig(p.Params, axis)
			if name == "" {
				name = "all points"
			}
			s, ok := series[name]
			if !ok {
				s = &plotSeries{Name: name}
				series[name] = s
				names = append(names, name)
			}
			e := p.Precision
			s.Points = append(s.Points, plotPoint{X: x, Y: e.Mean * 1e6, Lo: e.Lo * 1e6, Hi: e.Hi * 1e6})
			for _, v := range e.Values {
				s.Scatter = append(s.Scatter, xy{X: x, Y: v * 1e6})
			}
		}
		sort.Strings(names)
		var ss []plotSeries
		for _, n := range names {
			s := series[n]
			sort.Slice(s.Points, func(i, j int) bool { return s.Points[i].X < s.Points[j].X })
			sort.Slice(s.Scatter, func(i, j int) bool {
				if s.Scatter[i].X != s.Scatter[j].X {
					return s.Scatter[i].X < s.Scatter[j].X
				}
				return s.Scatter[i].Y < s.Scatter[j].Y
			})
			ss = append(ss, *s)
		}
		fmt.Fprintf(w, "## Precision vs %s\n\n", axis)
		fmt.Fprintf(w, "Line: mean across seeds. Band: Student-t 95%% CI. Dots: per-seed\nwindow means.\n\n")
		fmt.Fprintf(w, "%s\n\n", renderSVG("precision vs "+axis, axis, "precision [µs]", ss))
	}
}
