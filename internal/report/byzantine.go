package report

import (
	"fmt"
	"io"
	"sort"
	"strconv"

	"ntisim/internal/harness"
)

// writeTraitorTolerance renders the Byzantine campaign's headline
// result: per discipline and cluster size, the largest swept traitor
// fraction at which honest-node containment held for every seed — with
// the requirement that every smaller swept fraction also held, so the
// number reads as a tolerance bound, not a lucky point. Campaigns
// without adversarial cells (or without a traitors axis) skip the
// section entirely, keeping their reports byte-identical to before it
// existed.
func writeTraitorTolerance(w io.Writer, results []harness.Result) {
	type key struct {
		disc, nodes string
		frac        float64
	}
	viol := map[key]int{}
	traitors := map[key]int{}
	swept := map[key]bool{}
	discSet := map[string]bool{}
	nodeSet := map[string]bool{}
	fracSet := map[float64]bool{}
	for i := range results {
		r := &results[i]
		if r.Adversary == nil || r.Err != "" {
			continue
		}
		fs, ok := r.Params["traitors"]
		if !ok {
			continue
		}
		frac, err := strconv.ParseFloat(fs, 64)
		if err != nil {
			continue
		}
		disc := r.Params["discipline"]
		if disc == "" {
			disc = "default"
		}
		nodes := r.Params["nodes"]
		if nodes == "" {
			nodes = "?"
		}
		k := key{disc, nodes, frac}
		swept[k] = true
		viol[k] += r.Adversary.HonestViolations
		if r.Adversary.Traitors > traitors[k] {
			traitors[k] = r.Adversary.Traitors
		}
		discSet[disc] = true
		nodeSet[nodes] = true
		fracSet[frac] = true
	}
	if len(swept) == 0 {
		return
	}
	discs := make([]string, 0, len(discSet))
	for d := range discSet {
		discs = append(discs, d)
	}
	sort.Strings(discs)
	nodes := make([]string, 0, len(nodeSet))
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool {
		a, _ := strconv.Atoi(nodes[i])
		b, _ := strconv.Atoi(nodes[j])
		if a != b {
			return a < b
		}
		return nodes[i] < nodes[j]
	})
	fracs := make([]float64, 0, len(fracSet))
	for f := range fracSet {
		fracs = append(fracs, f)
	}
	sort.Float64s(fracs)

	fmt.Fprintf(w, "## Traitor tolerance (honest-node containment)\n\n")
	fmt.Fprintf(w, "Largest traitor fraction at which every honest node's accuracy\ninterval contained true time for the whole window, across all seeds —\nrequiring every smaller swept fraction to hold too. `—` means even the\nsmallest swept fraction broke honest containment.\n\n")
	fmt.Fprintf(w, "| discipline |")
	for _, n := range nodes {
		fmt.Fprintf(w, " n=%s |", n)
	}
	fmt.Fprintf(w, "\n|---|")
	for range nodes {
		fmt.Fprintf(w, "---|")
	}
	fmt.Fprintf(w, "\n")
	for _, d := range discs {
		fmt.Fprintf(w, "| %s |", d)
		for _, n := range nodes {
			tol, tolTraitors, found := -1.0, 0, false
			for _, fr := range fracs {
				k := key{d, n, fr}
				if !swept[k] {
					continue
				}
				if viol[k] > 0 {
					break
				}
				tol, tolTraitors, found = fr, traitors[k], true
			}
			if !found {
				fmt.Fprintf(w, " — |")
			} else {
				fmt.Fprintf(w, " %g (%d traitors) |", tol, tolTraitors)
			}
		}
		fmt.Fprintf(w, "\n")
	}
	fmt.Fprintf(w, "\n")
}
