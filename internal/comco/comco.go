// Package comco models the Communications Coprocessor: an Intel
// 82596CA-class Ethernet controller that moves packets between the NTI's
// shared memory and the network medium by DMA, independently of the CPU
// (paper Fig. 2).
//
// The timing of its individual memory accesses is what the NTI's
// timestamping exploits, and what is left of the transmission/reception
// uncertainty ε once the NTI is in place (paper §3.1): on transmit, the
// header words are prefetched into the on-chip FIFO right after medium
// acquisition (the read of the trigger word at offset 0x14 raises
// TRANSMIT); on receive, the header words are written to memory after
// frame end, behind a bus-arbitration delay (the write of offset 0x1C
// raises RECEIVE). Both paths carry small bounded jitter — the "ongoing
// data transmission and the bus arbitration" terms the paper identifies.
package comco

import (
	"encoding/binary"

	"ntisim/internal/csp"
	"ntisim/internal/network"
	"ntisim/internal/nti"
	"ntisim/internal/sim"
	"ntisim/internal/trace"
)

// Config describes the controller's DMA timing.
type Config struct {
	DMAWordTimeS float64 // per 32-bit word bus transfer; default 400 ns
	TxFIFOBytes  int     // prefetch FIFO depth; default 32
	// Bus arbitration before a DMA burst: uniform in [Min, Max].
	ArbMinS float64 // default 200 ns
	ArbMaxS float64 // default 1.5 µs
}

// Default82596 returns timings representative of the 82596CA on a VME
// carrier.
func Default82596() Config {
	return Config{
		DMAWordTimeS: 400e-9,
		TxFIFOBytes:  32,
		ArbMinS:      100e-9,
		ArbMaxS:      400e-9,
	}
}

// COMCO is one controller instance attached to a medium and an NTI.
type COMCO struct {
	s       *sim.Simulator
	nti     *nti.NTI
	med     network.Bus
	cfg     Config
	rng     *sim.RNG
	station int
	channel int

	rxNext     int
	onRxStored func(fid uint64, headerBase uint32, length int, corrupt bool)

	txFrames uint64
	rxFrames uint64

	// tr is the optional trace sink; trNode is the node id records are
	// attributed to (the kernel's global node id — may differ from the
	// medium-local station id on gateway nodes). trWords caches
	// Options.DMAWords so the per-word hot path is one flag test.
	tr      *trace.Tracer
	trNode  int
	trWords bool

	// Pools for the per-word DMA transfers and the per-frame completion
	// notification. Every received frame used to allocate one closure
	// per header/data word (16+ per frame per receiver); pooled jobs
	// with a prebuilt callback make the steady-state DMA timing model
	// allocation-free without changing event times or counts.
	freeJobs []*dmaJob
	freeDone []*rxDone
}

// dmaJob is one pooled timed 32-bit DMA transfer: a read through the
// NTI's decode logic into a transmit frame (tx), or a write of a
// received word into NTI memory (rx).
type dmaJob struct {
	c    *COMCO
	addr uint32
	val  uint32 // rx: word to deposit
	buf  []byte // tx: frame payload the read lands in
	off  int
	fid  uint64 // frame trace id (flow key)
	tx   bool
	trig bool // this word is the TRANSMIT/RECEIVE trigger access
	run  func()
}

func (j *dmaJob) fire() {
	c := j.c
	tx, addr, buf, off, val := j.tx, j.addr, j.buf, j.off, j.val
	fid, trig := j.fid, j.trig
	j.buf = nil
	c.freeJobs = append(c.freeJobs, j) // release first: the access below may schedule more DMA
	if tx {
		binary.BigEndian.PutUint32(buf[off:], c.nti.COMCORead32(addr))
	} else {
		c.nti.COMCOWrite32(addr, val)
	}
	if c.tr != nil {
		if c.trWords {
			c.tr.Emit(trace.KindDMAWord, c.s.Now(), c.trNode, c.channel, fid, uint64(addr), 0)
		}
		if trig {
			k := trace.KindRxTrigger
			if tx {
				k = trace.KindTxTrigger
			}
			c.tr.Emit(k, c.s.Now(), c.trNode, c.channel, fid, uint64(addr), 0)
		}
	}
}

func (c *COMCO) allocJob() *dmaJob {
	if n := len(c.freeJobs); n > 0 {
		j := c.freeJobs[n-1]
		c.freeJobs[n-1] = nil
		c.freeJobs = c.freeJobs[:n-1]
		return j
	}
	j := &dmaJob{c: c}
	j.run = j.fire
	return j
}

// rxDone is the pooled end-of-reception notification (the moment the
// real chip would raise its interrupt).
type rxDone struct {
	c       *COMCO
	base    uint32
	length  int
	fid     uint64
	corrupt bool
	run     func()
}

func (d *rxDone) fire() {
	c := d.c
	base, length, corrupt, fid := d.base, d.length, d.corrupt, d.fid
	c.freeDone = append(c.freeDone, d)
	c.rxFrames++
	if c.tr != nil {
		c.tr.Emit(trace.KindRxDone, c.s.Now(), c.trNode, c.channel, fid, uint64(base), 0)
	}
	if c.onRxStored != nil {
		c.onRxStored(fid, base, length, corrupt)
	}
}

func (c *COMCO) allocDone() *rxDone {
	if n := len(c.freeDone); n > 0 {
		d := c.freeDone[n-1]
		c.freeDone[n-1] = nil
		c.freeDone = c.freeDone[:n-1]
		return d
	}
	d := &rxDone{c: c}
	d.run = d.fire
	return d
}

// New creates a controller on the NTI's channel 0, attaching it to the
// medium as a station.
func New(s *sim.Simulator, module *nti.NTI, med network.Bus, cfg Config, label string) *COMCO {
	return NewChannel(s, module, med, cfg, label, 0)
}

// NewChannel creates a controller on an arbitrary NTI channel — gateway
// nodes run one controller per attached LAN segment, each wired to its
// own SSU pair (paper §3.3).
func NewChannel(s *sim.Simulator, module *nti.NTI, med network.Bus, cfg Config, label string, channel int) *COMCO {
	if cfg.DMAWordTimeS <= 0 {
		cfg.DMAWordTimeS = 400e-9
	}
	if cfg.TxFIFOBytes <= 0 {
		cfg.TxFIFOBytes = 32
	}
	if cfg.ArbMaxS < cfg.ArbMinS {
		cfg.ArbMaxS = cfg.ArbMinS
	}
	c := &COMCO{s: s, nti: module, med: med, cfg: cfg, rng: s.RNG("comco/" + label), channel: channel}
	c.station = med.Attach(c)
	return c
}

// Channel returns the NTI channel this controller is wired to.
func (c *COMCO) Channel() int { return c.channel }

// Station returns the controller's station id on the medium.
func (c *COMCO) Station() int { return c.station }

// OnRxStored installs the frame-reception callback: it fires when the
// last header word has been deposited in NTI memory, i.e. at the moment
// the real chip would raise its reception interrupt. fid is the frame's
// medium-assigned trace id; corrupt reports a CRC failure — the frame
// was still DMA'd (and the RECEIVE trigger fired! paper footnote 4) but
// must be discarded by software.
func (c *COMCO) OnRxStored(fn func(fid uint64, headerBase uint32, length int, corrupt bool)) {
	c.onRxStored = fn
}

// SetTracer attaches an event tracer (nil detaches), attributing this
// controller's records to node id `node`. Emitted: tx-trigger,
// rx-trigger, rx-done, and — when the tracer asks for them — every
// timed DMA word.
func (c *COMCO) SetTracer(tr *trace.Tracer, node int) {
	c.tr = tr
	c.trNode = node
	c.trWords = tr.Options().DMAWords
}

// Transmit queues the CSP image residing in transmit header slot
// headerIdx (64 bytes, already written by the CPU) for transmission,
// with extra payload bytes appended verbatim. The frame's header bytes
// are produced by timed DMA reads through the NTI's decode logic, so the
// TRANSMIT trigger fires and the stamp words are inserted on the fly.
// It returns the frame's medium-assigned trace id.
func (c *COMCO) Transmit(headerIdx int, extra []byte, dst int) uint64 {
	base := nti.TxHeaderAddrCh(c.channel, headerIdx)
	payload := make([]byte, nti.HeaderSize+len(extra))
	copy(payload[nti.HeaderSize:], extra)
	f := network.Frame{Src: c.station, Dst: dst, Payload: payload}
	var fid uint64
	fid = c.med.Send(f, func(at float64) { c.fetchHeader(fid, base, payload, at) })
	c.txFrames++
	return fid
}

// TransmitRaw sends a pre-assembled frame without going through the
// NTI's transmit-header decode logic — the path a system *without* NTI
// support uses (the software-only baselines of experiment E2): the
// payload bytes leave exactly as software wrote them, so any timestamp
// they carry was taken before medium access.
// It returns the frame's medium-assigned trace id.
func (c *COMCO) TransmitRaw(payload []byte, dst int) uint64 {
	buf := make([]byte, len(payload))
	copy(buf, payload)
	fid := c.med.Send(network.Frame{Src: c.station, Dst: dst, Payload: buf}, nil)
	c.txFrames++
	return fid
}

// fetchHeader schedules the DMA reads that fill the frame's header bytes
// while serialization is under way. Word w is read either during the
// initial FIFO prefill (back-to-back at DMA speed) or, once the FIFO is
// primed, paced by the wire draining it.
func (c *COMCO) fetchHeader(fid uint64, base uint32, payload []byte, acquiredAt float64) {
	arb := c.rng.Uniform(c.cfg.ArbMinS, c.cfg.ArbMaxS)
	preamble := 64 / c.med.Bitrate() // preamble bits on the wire
	for w := 0; w < nti.HeaderSize/4; w++ {
		off := uint32(4 * w)
		var t float64
		if int(off) < c.cfg.TxFIFOBytes {
			t = acquiredAt + arb + float64(w)*c.cfg.DMAWordTimeS
		} else {
			drained := float64(int(off)-c.cfg.TxFIFOBytes) * 8 / c.med.Bitrate()
			t = acquiredAt + arb + preamble + drained
		}
		j := c.allocJob()
		j.tx = true
		j.addr = base + off
		j.buf = payload
		j.off = int(off)
		j.fid = fid
		j.trig = off == csp.OffTxTrig
		c.s.At(t, j.run)
	}
}

// FrameArrived implements network.Station: the controller DMAs the
// received header into the next receive-header slot, word by word,
// behind a bus-arbitration delay. The write of the RxTrigOffset word
// raises RECEIVE in the NTI.
func (c *COMCO) FrameArrived(f network.Frame) {
	if len(f.Payload) < nti.HeaderSize {
		return // runt or background frame: no CSP header to store
	}
	slot := c.rxNext
	c.rxNext = (c.rxNext + 1) % nti.RxHeadersPerCh
	base := nti.RxHeaderAddrCh(c.channel, slot)
	arb := c.rng.Uniform(c.cfg.ArbMinS, c.cfg.ArbMaxS)
	words := nti.HeaderSize / 4
	for w := 0; w < words; w++ {
		j := c.allocJob()
		j.tx = false
		j.addr = base + uint32(4*w)
		j.val = binary.BigEndian.Uint32(f.Payload[4*w:])
		j.fid = f.ID
		j.trig = uint32(4*w) == csp.RxTrigOffset
		c.s.After(arb+float64(w)*c.cfg.DMAWordTimeS, j.run)
	}
	// Payload beyond the header lands in the paired data-buffer slot
	// (truncated to the slot size, like a real descriptor chain would
	// continue — CSPs never need more).
	extra := f.Payload[nti.HeaderSize:]
	if len(extra) > nti.DataSlotSize {
		extra = extra[:nti.DataSlotSize]
	}
	if len(extra) > 0 {
		dataBase := nti.DataSlotAddr(c.channel, slot)
		nw := (len(extra) + 3) / 4
		for w := 0; w < nw; w++ {
			j := c.allocJob()
			j.tx = false
			j.addr = dataBase + uint32(4*w)
			j.fid = f.ID
			j.trig = false
			if rest := extra[4*w:]; len(rest) >= 4 {
				j.val = binary.BigEndian.Uint32(rest)
			} else {
				var tail [4]byte // final partial word, zero-padded
				copy(tail[:], rest)
				j.val = binary.BigEndian.Uint32(tail[:])
			}
			c.s.After(arb+float64(words+w)*c.cfg.DMAWordTimeS, j.run)
		}
		words += nw
	}
	d := c.allocDone()
	d.base, d.length, d.corrupt, d.fid = base, len(f.Payload), f.Corrupt, f.ID
	c.s.After(arb+float64(words)*c.cfg.DMAWordTimeS, d.run)
}

// Stats reports frames transmitted and stored.
func (c *COMCO) Stats() (tx, rx uint64) { return c.txFrames, c.rxFrames }
