package comco

import (
	"testing"

	"ntisim/internal/csp"
	"ntisim/internal/fixpt"
	"ntisim/internal/network"
	"ntisim/internal/nti"
	"ntisim/internal/oscillator"
	"ntisim/internal/sim"
	"ntisim/internal/timefmt"
	"ntisim/internal/utcsu"
)

func rig(seed uint64) (*sim.Simulator, *network.Medium, *nti.NTI, *COMCO, *nti.NTI, *COMCO) {
	s := sim.New(seed)
	med := network.NewMedium(s, network.DefaultLAN())
	mk := func(label string) (*nti.NTI, *COMCO) {
		o := oscillator.New(s, oscillator.Ideal(10e6), label)
		u := utcsu.New(s, utcsu.Config{Osc: o})
		n := nti.New(u)
		return n, New(s, n, med, Default82596(), label)
	}
	na, ca := mk("a")
	nb, cb := mk("b")
	return s, med, na, ca, nb, cb
}

func TestTransmitInsertsHardwareStamp(t *testing.T) {
	s, _, na, ca, nb, cb := rig(1)
	_ = nb
	var storedAt uint32
	stored := false
	cb.OnRxStored(func(_ uint64, base uint32, length int, corrupt bool) {
		storedAt = base
		stored = true
	})
	s.RunUntil(0.5)
	// Software encodes a CSP with zero stamps into tx header 0.
	p := csp.Packet{Kind: csp.KindCSP, Node: 1, Round: 3}
	na.CPUWrite(nti.TxHeaderAddr(0), p.Encode())
	ca.Transmit(0, nil, network.Broadcast)
	s.RunUntil(1)
	if !stored {
		t.Fatal("frame never stored at receiver")
	}
	var hdr [nti.HeaderSize]byte
	nb.CPURead(storedAt, hdr[:])
	got, err := csp.Decode(hdr[:])
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	st, ok := got.TxStamp()
	if !ok {
		t.Fatal("tx stamp checksum failed on the wire image")
	}
	if d := st.Seconds() - 0.5; d < 0 || d > 100e-6 {
		t.Errorf("tx stamp offset from send %v", d)
	}
	if got.Round != 3 || got.Node != 1 {
		t.Errorf("payload fields corrupted: %+v", got)
	}
	if tx, _, _ := na.Stats(); tx != 1 {
		t.Errorf("tx triggers = %d", tx)
	}
	if _, rx, _ := nb.Stats(); rx != 1 {
		t.Errorf("rx triggers = %d", rx)
	}
}

func TestTransmitRawBypassesTriggers(t *testing.T) {
	s, _, na, ca, nb, cb := rig(2)
	stored := false
	cb.OnRxStored(func(_ uint64, base uint32, length int, corrupt bool) { stored = true })
	s.RunUntil(0.5)
	p := csp.Packet{Kind: csp.KindCSP, Node: 1}
	p.SetTxStamp(timefmt.StampFromTime(fixFromSeconds(0.123)))
	ca.TransmitRaw(p.Encode(), network.Broadcast)
	s.RunUntil(1)
	if !stored {
		t.Fatal("raw frame not delivered")
	}
	if tx, _, _ := na.Stats(); tx != 0 {
		t.Error("raw transmit raised a TRANSMIT trigger")
	}
	// The receiver's RECEIVE trigger still fires — the NTI decodes by
	// address, not by how the sender built the frame.
	if _, rx, _ := nb.Stats(); rx != 1 {
		t.Error("receive trigger missing for raw frame")
	}
}

func TestReceiveSlotsRotate(t *testing.T) {
	s, _, na, ca, nb, cb := rig(3)
	_ = nb
	var bases []uint32
	cb.OnRxStored(func(_ uint64, base uint32, length int, corrupt bool) { bases = append(bases, base) })
	s.RunUntil(0.1)
	for i := 0; i < 3; i++ {
		p := csp.Packet{Kind: csp.KindCSP, Seq: uint16(i)}
		na.CPUWrite(nti.TxHeaderAddr(i), p.Encode())
		ca.Transmit(i, nil, network.Broadcast)
	}
	s.RunUntil(1)
	if len(bases) != 3 {
		t.Fatalf("stored %d frames", len(bases))
	}
	if bases[0] == bases[1] || bases[1] == bases[2] {
		t.Errorf("rx slots did not rotate: %v", bases)
	}
	if bases[1] != bases[0]+nti.HeaderSize {
		t.Errorf("slots not sequential: %v", bases)
	}
}

func TestShortFramesIgnored(t *testing.T) {
	s, med, _, _, _, cb := rig(4)
	stored := false
	cb.OnRxStored(func(uint64, uint32, int, bool) { stored = true })
	med.Send(network.Frame{Src: 0, Dst: network.Broadcast, Payload: make([]byte, 32)}, nil)
	s.RunUntil(1)
	if stored {
		t.Error("runt frame stored")
	}
}

func TestCorruptFlagPropagates(t *testing.T) {
	s := sim.New(5)
	mc := network.DefaultLAN()
	mc.CRCErrorProb = 1
	med := network.NewMedium(s, mc)
	o1 := oscillator.New(s, oscillator.Ideal(10e6), "a")
	u1 := utcsu.New(s, utcsu.Config{Osc: o1})
	n1 := nti.New(u1)
	c1 := New(s, n1, med, Default82596(), "a")
	o2 := oscillator.New(s, oscillator.Ideal(10e6), "b")
	u2 := utcsu.New(s, utcsu.Config{Osc: o2})
	n2 := nti.New(u2)
	c2 := New(s, n2, med, Default82596(), "b")
	_ = c1
	sawCorrupt := false
	c2.OnRxStored(func(_ uint64, _ uint32, _ int, corrupt bool) { sawCorrupt = corrupt })
	p := csp.Packet{Kind: csp.KindCSP}
	n1.CPUWrite(nti.TxHeaderAddr(0), p.Encode())
	c1.Transmit(0, nil, network.Broadcast)
	s.RunUntil(1)
	if !sawCorrupt {
		t.Error("corrupt flag lost")
	}
}

func TestExtraPayloadCarried(t *testing.T) {
	s, _, na, ca, nb, cb := rig(6)
	_ = nb
	var gotLen int
	cb.OnRxStored(func(_ uint64, _ uint32, length int, _ bool) { gotLen = length })
	p := csp.Packet{Kind: csp.KindNet}
	na.CPUWrite(nti.TxHeaderAddr(0), p.Encode())
	ca.Transmit(0, make([]byte, 100), network.Broadcast)
	s.RunUntil(1)
	if gotLen != nti.HeaderSize+100 {
		t.Errorf("frame length %d", gotLen)
	}
}

func TestStats(t *testing.T) {
	s, _, na, ca, _, cb := rig(7)
	cb.OnRxStored(func(uint64, uint32, int, bool) {})
	p := csp.Packet{Kind: csp.KindCSP}
	na.CPUWrite(nti.TxHeaderAddr(0), p.Encode())
	ca.Transmit(0, nil, network.Broadcast)
	s.RunUntil(1)
	if tx, _ := ca.Stats(); tx != 1 {
		t.Errorf("tx stats = %d", tx)
	}
	if _, rx := cb.Stats(); rx != 1 {
		t.Errorf("rx stats = %d", rx)
	}
}

func fixFromSeconds(v float64) fixpt.Time { return fixpt.FromSeconds(v) }
