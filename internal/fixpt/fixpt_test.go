package fixpt

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFromSecondsRoundTrip(t *testing.T) {
	cases := []float64{0, 1, 1.5, 0.25, 123.456789, 1e6, 255.999999999}
	for _, s := range cases {
		got := FromSeconds(s).Seconds()
		if math.Abs(got-s) > 1e-12*math.Max(1, s) {
			t.Errorf("FromSeconds(%v).Seconds() = %v", s, got)
		}
	}
}

func TestFromSecondsNegative(t *testing.T) {
	v := FromSeconds(-1.25)
	if v.Sec != -2 || v.Frac != 3<<62 {
		t.Errorf("FromSeconds(-1.25) = %+v, want Sec=-2 Frac=0.75*2^64", v)
	}
	if got := v.Seconds(); math.Abs(got+1.25) > 1e-12 {
		t.Errorf("Seconds() = %v, want -1.25", got)
	}
}

func TestAddSubInverse(t *testing.T) {
	a := FromSeconds(17.375)
	b := FromSeconds(3.0625)
	if got := a.Add(b).Sub(b); got != a {
		t.Errorf("a+b-b = %+v, want %+v", got, a)
	}
	if got := a.Sub(b).Add(b); got != a {
		t.Errorf("a-b+b = %+v, want %+v", got, a)
	}
}

func TestAddCarry(t *testing.T) {
	a := Time{Sec: 0, Frac: ^uint64(0)} // just below 1 s
	b := Time{Sec: 0, Frac: 1}
	got := a.Add(b)
	if got.Sec != 1 || got.Frac != 0 {
		t.Errorf("carry add = %+v, want {1 0}", got)
	}
}

func TestSubBorrow(t *testing.T) {
	a := Time{Sec: 1, Frac: 0}
	b := Time{Sec: 0, Frac: 1}
	got := a.Sub(b)
	if got.Sec != 0 || got.Frac != ^uint64(0) {
		t.Errorf("borrow sub = %+v, want {0 max}", got)
	}
}

func TestNeg(t *testing.T) {
	a := FromSeconds(2.5)
	if got := a.Neg().Add(a); !got.IsZero() {
		t.Errorf("-a + a = %+v, want zero", got)
	}
	if !a.Neg().IsNegative() {
		t.Error("Neg(positive) should be negative")
	}
}

func TestCmp(t *testing.T) {
	a := FromSeconds(1.5)
	b := FromSeconds(1.75)
	if a.Cmp(b) != -1 || b.Cmp(a) != 1 || a.Cmp(a) != 0 {
		t.Error("Cmp ordering wrong")
	}
	if !a.Less(b) || b.Less(a) {
		t.Error("Less wrong")
	}
}

func TestAddScaledMatchesLoop(t *testing.T) {
	augend := AugendForRate(10e6, 1.0) // 100 ns per tick
	base := FromSeconds(5)
	want := base
	for i := 0; i < 1000; i++ {
		want = want.Add(Time{Frac: augend})
	}
	got := base.AddScaled(augend, 1000)
	if got != want {
		t.Errorf("AddScaled = %+v, loop = %+v", got, want)
	}
	if back := got.SubScaled(augend, 1000); back != base {
		t.Errorf("SubScaled inverse = %+v, want %+v", back, base)
	}
}

func TestAddScaledCrossesSeconds(t *testing.T) {
	// 20 MHz nominal augend for 10 s worth of ticks: 2e8 ticks.
	augend := AugendForRate(20e6, 1.0)
	got := Time{}.AddScaled(augend, 200_000_000)
	// Augend is truncated to 2^-51 s, so the result is slightly below 10 s
	// but within 2e8 * 2^-51 s ≈ 89 ns.
	s := got.Seconds()
	if s > 10 || s < 10-1e-7 {
		t.Errorf("10s of ticks = %v s", s)
	}
}

func TestTruncStamp(t *testing.T) {
	v := FromSeconds(1.0 + 100e-9) // 1 s + 100 ns
	tr := v.TruncStamp()
	if tr.Frac%StampUnit != 0 {
		t.Error("TruncStamp not aligned to 2^-24")
	}
	if tr.Cmp(v) > 0 {
		t.Error("TruncStamp must round down")
	}
	if v.Sub(tr).Seconds() >= 1.0/(1<<24) {
		t.Error("TruncStamp dropped more than one granule")
	}
}

func TestAugendForRateNominal(t *testing.T) {
	for _, f := range []float64{1e6, 10e6, 14e6, 20e6} {
		a := AugendForRate(f, 1.0)
		if a%AugendUnit != 0 {
			t.Errorf("augend at %v Hz not multiple of 2^-51", f)
		}
		r := RateForAugend(f, a)
		// Truncation to 2^-51 s at f Hz gives rate error < f * 2^-51.
		if math.Abs(r-1.0) > f/math.Exp2(51) {
			t.Errorf("rate for augend at %v Hz = %v", f, r)
		}
	}
}

func TestRateAdjustmentGranularity(t *testing.T) {
	// Paper §3.3: "fine-grained rate adjustable in steps of about 10 ns/s".
	// One augend step of 2^-51 s at 20 MHz = 20e6 * 2^-51 ≈ 8.9 ns/s.
	f := 20e6
	step := f / math.Exp2(51)
	if step < 5e-9 || step > 15e-9 {
		t.Errorf("rate step at 20 MHz = %v, want ~10 ns/s", step)
	}
}

func TestFromUnits(t *testing.T) {
	if got := FromUnits(5); got.Sec != 0 || got.Frac != 5 {
		t.Errorf("FromUnits(5) = %+v", got)
	}
	neg := FromUnits(-5)
	if !neg.IsNegative() {
		t.Error("FromUnits(-5) should be negative")
	}
	if got := neg.Add(FromUnits(5)); !got.IsZero() {
		t.Errorf("FromUnits(-5)+FromUnits(5) = %+v", got)
	}
}

// Property: Add is associative and commutative over random values.
func TestQuickAddProperties(t *testing.T) {
	comm := func(a, b int64, fa, fb uint64) bool {
		x := Time{Sec: a % (1 << 40), Frac: fa}
		y := Time{Sec: b % (1 << 40), Frac: fb}
		return x.Add(y) == y.Add(x)
	}
	if err := quick.Check(comm, nil); err != nil {
		t.Error(err)
	}
	assoc := func(a, b, c int32, fa, fb, fc uint64) bool {
		x := Time{Sec: int64(a), Frac: fa}
		y := Time{Sec: int64(b), Frac: fb}
		z := Time{Sec: int64(c), Frac: fc}
		return x.Add(y).Add(z) == x.Add(y.Add(z))
	}
	if err := quick.Check(assoc, nil); err != nil {
		t.Error(err)
	}
}

// Property: Sub is the inverse of Add.
func TestQuickSubInverse(t *testing.T) {
	f := func(a, b int32, fa, fb uint64) bool {
		x := Time{Sec: int64(a), Frac: fa}
		y := Time{Sec: int64(b), Frac: fb}
		return x.Add(y).Sub(y) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: AddScaled(a,n) == n applications of Add({0,a}) for small n.
func TestQuickAddScaled(t *testing.T) {
	f := func(aRaw uint32, n uint8) bool {
		augend := uint64(aRaw) << 10
		x := FromSeconds(3)
		want := x
		for i := 0; i < int(n); i++ {
			want = want.Add(Time{Frac: augend})
		}
		return x.AddScaled(augend, uint64(n)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Cmp defines a total order consistent with Seconds().
func TestQuickCmpOrder(t *testing.T) {
	f := func(a, b int32, fa, fb uint64) bool {
		x := Time{Sec: int64(a), Frac: fa}
		y := Time{Sec: int64(b), Frac: fb}
		c := x.Cmp(y)
		if x == y {
			return c == 0
		}
		d := x.Sub(y)
		if c < 0 {
			return d.IsNegative()
		}
		return !d.IsNegative()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkAddScaled(b *testing.B) {
	augend := AugendForRate(20e6, 1.0)
	t0 := FromSeconds(1)
	var sink Time
	for i := 0; i < b.N; i++ {
		sink = t0.AddScaled(augend, uint64(i))
	}
	_ = sink
}
