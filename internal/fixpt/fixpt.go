// Package fixpt provides exact 128-bit fixed-point time arithmetic.
//
// A Time is a signed quantity of seconds with a 64-bit binary fraction,
// i.e. an integer count of 2^-64 s units held in two machine words. The
// UTCSU adder-based clock (paper §3.3) sums an augend of granularity
// 2^-51 s on every oscillator tick; all of its register arithmetic is
// reproduced here without rounding so that clock-granularity and
// rate-adjustment-step effects are bit-exact in the simulation.
package fixpt

import (
	"fmt"
	"math"
	"math/bits"
)

// Time is a fixed-point time value: Sec seconds plus Frac/2^64 seconds.
// Negative values use two's-complement style representation: the value is
// Sec + Frac/2^64 where Sec may be negative and Frac is always the
// non-negative fractional part scaled by 2^64. The zero value is time zero.
type Time struct {
	Sec  int64  // whole seconds (floor)
	Frac uint64 // fractional part in 2^-64 s units
}

// Common unit constants expressed in 2^-64 s fraction units.
const (
	// UnitsPerSecond is 2^64 expressed as a float for conversions.
	unitsPerSecondF = 18446744073709551616.0 // 2^64

	// Augend values are multiples of 2^-51 s (paper §3.3: "a proper augend
	// value (in multiples of 2^-51 s ≈ 0.44 fs)"). 2^-51 s = 2^13 units.
	AugendUnit uint64 = 1 << 13

	// StampUnit is the visible clock granularity 2^-24 s (paper §3.3:
	// resolution 2^-24 ≈ 60 ns): 2^40 fraction units.
	StampUnit uint64 = 1 << 40
)

// FromSeconds converts a float64 number of seconds to a Time, rounding to
// the nearest representable unit.
func FromSeconds(s float64) Time {
	sec := math.Floor(s)
	frac := s - sec
	fu := frac * unitsPerSecondF
	f := uint64(fu)
	// Guard against frac rounding up to exactly 1.0.
	if fu >= unitsPerSecondF {
		sec++
		f = 0
	}
	return Time{Sec: int64(sec), Frac: f}
}

// Seconds converts t to float64 seconds (lossy beyond 53 bits).
func (t Time) Seconds() float64 {
	return float64(t.Sec) + float64(t.Frac)/unitsPerSecondF
}

// FromUnits builds a Time from a signed count of 2^-64 s units that fits
// in an int64 (covers ±0.5 s; used for small corrections).
func FromUnits(u int64) Time {
	if u >= 0 {
		return Time{Sec: 0, Frac: uint64(u)}
	}
	return Time{Sec: -1, Frac: uint64(u)} // two's complement wrap
}

// FromSecFrac builds a Time from explicit parts.
func FromSecFrac(sec int64, frac uint64) Time { return Time{Sec: sec, Frac: frac} }

// Add returns t + u.
func (t Time) Add(u Time) Time {
	frac, carry := bits.Add64(t.Frac, u.Frac, 0)
	return Time{Sec: t.Sec + u.Sec + int64(carry), Frac: frac}
}

// Sub returns t - u.
func (t Time) Sub(u Time) Time {
	frac, borrow := bits.Sub64(t.Frac, u.Frac, 0)
	return Time{Sec: t.Sec - u.Sec - int64(borrow), Frac: frac}
}

// Neg returns -t.
func (t Time) Neg() Time { return Time{}.Sub(t) }

// Cmp compares t and u: -1 if t<u, 0 if equal, +1 if t>u.
func (t Time) Cmp(u Time) int {
	switch {
	case t.Sec < u.Sec:
		return -1
	case t.Sec > u.Sec:
		return 1
	case t.Frac < u.Frac:
		return -1
	case t.Frac > u.Frac:
		return 1
	}
	return 0
}

// Less reports t < u.
func (t Time) Less(u Time) bool { return t.Cmp(u) < 0 }

// IsNegative reports whether t represents a value below zero.
func (t Time) IsNegative() bool { return t.Sec < 0 }

// IsZero reports whether t is exactly zero.
func (t Time) IsZero() bool { return t.Sec == 0 && t.Frac == 0 }

// AddScaled returns t + augend*n computed exactly, where augend is a
// per-tick increment in 2^-64 s units and n is a tick count. This is the
// core of the adder-based clock: the 128-bit product never overflows for
// any realistic augend (≈9.2e11 units at 50 ns) and tick count (<2^63).
func (t Time) AddScaled(augend uint64, n uint64) Time {
	hi, lo := bits.Mul64(augend, n)
	frac, carry := bits.Add64(t.Frac, lo, 0)
	return Time{Sec: t.Sec + int64(hi) + int64(carry), Frac: frac}
}

// SubScaled returns t - augend*n computed exactly.
func (t Time) SubScaled(augend uint64, n uint64) Time {
	hi, lo := bits.Mul64(augend, n)
	frac, borrow := bits.Sub64(t.Frac, lo, 0)
	return Time{Sec: t.Sec - int64(hi) - int64(borrow), Frac: frac}
}

// TruncStamp rounds t down to the visible 2^-24 s clock granularity,
// reproducing the quantization a reader of the UTCSU timestamp register
// observes.
func (t Time) TruncStamp() Time {
	return Time{Sec: t.Sec, Frac: t.Frac &^ (StampUnit - 1)}
}

// TruncAugend rounds a raw per-tick increment in 2^-64 s units down to the
// 2^-51 s augend granularity of the UTCSU STEP register.
func TruncAugend(units uint64) uint64 { return units &^ (AugendUnit - 1) }

// String formats t with nanosecond resolution for diagnostics.
func (t Time) String() string {
	s := t.Seconds()
	return fmt.Sprintf("%.9fs", s)
}

// DivFloat returns the float64 ratio t/u; u must be nonzero.
// Used only for diagnostics, never in register arithmetic.
func (t Time) DivFloat(u Time) float64 { return t.Seconds() / u.Seconds() }

// ScaleFloat returns t*k rounded to the nearest unit, for diagnostic use.
func (t Time) ScaleFloat(k float64) Time { return FromSeconds(t.Seconds() * k) }

// AugendForRate returns the augend (in 2^-64 s units, truncated to the
// 2^-51 s STEP granularity) that makes a clock driven at freqHz advance at
// `rate` seconds of clock time per second of oscillator-counted time.
// rate==1.0 is nominal.
func AugendForRate(freqHz float64, rate float64) uint64 {
	perTick := rate / freqHz // seconds of clock advance per tick
	u := perTick * unitsPerSecondF
	return TruncAugend(uint64(u))
}

// RateForAugend is the inverse of AugendForRate: the clock rate (seconds
// of clock time per oscillator second) produced by an augend at freqHz.
func RateForAugend(freqHz float64, augend uint64) float64 {
	return float64(augend) / unitsPerSecondF * freqHz
}
