// Package timefmt implements the UTCSU's externally visible time formats.
//
// The LTU maintains a 56-bit NTP-style fixed-point time: 32-bit integer
// seconds and a 24-bit fraction (paper §3.3). Software reads it as two
// atomic 32-bit words:
//
//   - the Timestamp: the 8 least-significant bits of the seconds together
//     with the full 24-bit fraction — resolution 2^-24 s ≈ 60 ns, wrapping
//     every 256 s;
//   - the Macrostamp: the remaining 24 most-significant bits of the seconds
//     along with an 8-bit checksum protecting the entire time information.
//
// Durations used by the synchronization algorithms are held in Granules,
// signed counts of the 2^-24 s clock granule.
package timefmt

import (
	"fmt"

	"ntisim/internal/fixpt"
)

// Granule is the visible clock granularity, 2^-24 s, in seconds.
const Granule = 1.0 / (1 << 24)

// Duration is a signed time span in 2^-24 s granules.
type Duration int64

// Duration constructors and conversions.

// DurationFromSeconds converts seconds to a Duration, rounding to nearest.
func DurationFromSeconds(s float64) Duration {
	if s >= 0 {
		return Duration(s*(1<<24) + 0.5)
	}
	return -Duration(-s*(1<<24) + 0.5)
}

// Seconds converts d to float64 seconds.
func (d Duration) Seconds() float64 { return float64(d) * Granule }

// Micros converts d to float64 microseconds.
func (d Duration) Micros() float64 { return d.Seconds() * 1e6 }

// Abs returns the absolute value of d.
func (d Duration) Abs() Duration {
	if d < 0 {
		return -d
	}
	return d
}

func (d Duration) String() string { return fmt.Sprintf("%.3fµs", d.Micros()) }

// Stamp is a full 56-bit UTCSU time reading: 32-bit seconds + 24-bit
// fraction, stored flat as a granule count. It is what software assembles
// from an atomic Timestamp+Macrostamp register pair.
type Stamp int64

// StampFromTime quantizes a fixpt time down to the 2^-24 s granule,
// exactly as the timestamp register latch does.
func StampFromTime(t fixpt.Time) Stamp {
	return Stamp(t.Sec<<24 | int64(t.Frac>>40))
}

// Time converts s back to a fixpt.Time at granule resolution.
func (s Stamp) Time() fixpt.Time {
	sec := int64(s) >> 24
	frac := uint64(s&0xFFFFFF) << 40
	return fixpt.FromSecFrac(sec, frac)
}

// Seconds converts s to float64 seconds.
func (s Stamp) Seconds() float64 { return float64(s) * Granule }

// Add returns s shifted by d granules.
func (s Stamp) Add(d Duration) Stamp { return s + Stamp(d) }

// Sub returns the span s - u as a Duration.
func (s Stamp) Sub(u Stamp) Duration { return Duration(s - u) }

func (s Stamp) String() string { return fmt.Sprintf("%.9fs", s.Seconds()) }

// Register words. The hardware exposes the 56-bit time as two 32-bit words.

// Words splits a Stamp into the Timestamp and Macrostamp register words.
// The Timestamp holds seconds<7:0> in its top byte and the 24-bit fraction
// below; the Macrostamp holds seconds<31:8> in its top 24 bits and an 8-bit
// checksum over the full 56-bit value in its low byte.
func (s Stamp) Words() (timestamp, macrostamp uint32) {
	sec := uint32(int64(s) >> 24)
	frac := uint32(s & 0xFFFFFF)
	timestamp = sec<<24 | frac
	macrostamp = (sec&0xFFFFFF00)<<0 | uint32(Checksum(s))
	return timestamp, macrostamp
}

// FromWords reassembles a Stamp from register words and verifies the
// checksum, returning ok=false on mismatch (a corrupted read).
func FromWords(timestamp, macrostamp uint32) (s Stamp, ok bool) {
	sec := (macrostamp & 0xFFFFFF00) | timestamp>>24
	frac := timestamp & 0xFFFFFF
	s = Stamp(int64(int32(sec))<<24 | int64(frac))
	return s, Checksum(s) == uint8(macrostamp&0xFF)
}

// Checksum computes the 8-bit checksum the BTU maintains over the 56-bit
// time value: a CRC-8 (polynomial x^8+x^2+x+1), which detects any burst
// error up to 8 bits and hence any single-byte corruption of the words.
func Checksum(s Stamp) uint8 {
	v := uint64(s)
	var crc uint8 = 0xFF
	for i := 6; i >= 0; i-- {
		crc ^= uint8(v >> (8 * i))
		for b := 0; b < 8; b++ {
			if crc&0x80 != 0 {
				crc = crc<<1 ^ 0x07
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// WrapPeriodSeconds is the wrap interval of the 32-bit Timestamp word
// (8 bits of seconds): 256 s.
const WrapPeriodSeconds = 256

// Alpha is a 16-bit accuracy register value in granules (2^-24 s), the
// format of the ACU's α- and α+ registers. Values saturate at the register
// width rather than wrapping (paper §3.3: "extra logic suppresses a
// wrap-around of α- and α+").
type Alpha uint16

// AlphaMax is the saturation bound of an accuracy register (~3.9 ms).
const AlphaMax Alpha = 0xFFFF

// AlphaFromDuration converts a non-negative duration to a saturating Alpha.
func AlphaFromDuration(d Duration) Alpha {
	if d < 0 {
		return 0
	}
	if d >= Duration(AlphaMax) {
		return AlphaMax
	}
	return Alpha(d)
}

// Duration converts a to a Duration in granules.
func (a Alpha) Duration() Duration { return Duration(a) }

// AddSat returns a+b with saturation at AlphaMax.
func (a Alpha) AddSat(b Alpha) Alpha {
	s := uint32(a) + uint32(b)
	if s > uint32(AlphaMax) {
		return AlphaMax
	}
	return Alpha(s)
}

// SubFloor returns a-b clamped at zero ("zero-masks potentially negative
// accuracies", paper §3.3).
func (a Alpha) SubFloor(b Alpha) Alpha {
	if b >= a {
		return 0
	}
	return a - b
}

func (a Alpha) String() string { return Duration(a).String() }
