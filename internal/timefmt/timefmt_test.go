package timefmt

import (
	"math"
	"testing"
	"testing/quick"

	"ntisim/internal/fixpt"
)

func TestDurationConversions(t *testing.T) {
	d := DurationFromSeconds(1e-6)
	if math.Abs(d.Seconds()-1e-6) > Granule {
		t.Errorf("1µs round trip = %v s", d.Seconds())
	}
	if math.Abs(d.Micros()-1.0) > Granule*1e6 {
		t.Errorf("Micros = %v", d.Micros())
	}
	if DurationFromSeconds(-1e-6) != -d {
		t.Error("negative conversion not symmetric")
	}
}

func TestDurationAbs(t *testing.T) {
	if Duration(-5).Abs() != 5 || Duration(5).Abs() != 5 || Duration(0).Abs() != 0 {
		t.Error("Abs wrong")
	}
}

func TestStampQuantization(t *testing.T) {
	ft := fixpt.FromSeconds(1.23456789)
	s := StampFromTime(ft)
	back := s.Time()
	diff := ft.Sub(back).Seconds()
	if diff < 0 || diff >= Granule {
		t.Errorf("stamp quantization error %v, want [0, %v)", diff, Granule)
	}
}

func TestStampArithmetic(t *testing.T) {
	a := StampFromTime(fixpt.FromSeconds(10))
	b := a.Add(DurationFromSeconds(0.5))
	if got := b.Sub(a).Seconds(); math.Abs(got-0.5) > Granule {
		t.Errorf("Sub after Add = %v", got)
	}
}

func TestWordsRoundTrip(t *testing.T) {
	for _, sec := range []float64{0, 1, 255.9, 256, 1000.5, 123456.789} {
		s := StampFromTime(fixpt.FromSeconds(sec))
		ts, ms := s.Words()
		got, ok := FromWords(ts, ms)
		if !ok {
			t.Fatalf("checksum rejected valid words for %v s", sec)
		}
		if got != s {
			t.Errorf("round trip %v: got %v want %v", sec, got, s)
		}
	}
}

func TestWordsDetectCorruption(t *testing.T) {
	s := StampFromTime(fixpt.FromSeconds(1234.5678))
	ts, ms := s.Words()
	// Flip each byte of each word; the checksum must catch it.
	for bit := 0; bit < 32; bit += 8 {
		if _, ok := FromWords(ts^(0xFF<<bit), ms); ok {
			t.Errorf("corruption in timestamp byte %d not detected", bit/8)
		}
	}
	for bit := 8; bit < 32; bit += 8 { // low byte of ms is the checksum itself
		if _, ok := FromWords(ts, ms^(0xFF<<bit)); ok {
			t.Errorf("corruption in macrostamp byte %d not detected", bit/8)
		}
	}
}

func TestTimestampWrapPeriod(t *testing.T) {
	// The timestamp word must be identical 256 s apart (paper §3.3:
	// "wraps around every 256 s").
	a := StampFromTime(fixpt.FromSeconds(17.25))
	b := StampFromTime(fixpt.FromSeconds(17.25 + WrapPeriodSeconds))
	tsA, _ := a.Words()
	tsB, _ := b.Words()
	if tsA != tsB {
		t.Errorf("timestamp words differ across 256 s: %08x vs %08x", tsA, tsB)
	}
	_, msA := a.Words()
	_, msB := b.Words()
	if msA == msB {
		t.Error("macrostamps should differ across 256 s")
	}
}

func TestAlphaSaturation(t *testing.T) {
	a := AlphaFromDuration(DurationFromSeconds(10)) // way over 16 bits
	if a != AlphaMax {
		t.Errorf("expected saturation, got %v", a)
	}
	if AlphaMax.AddSat(1) != AlphaMax {
		t.Error("AddSat must saturate")
	}
	if Alpha(5).SubFloor(10) != 0 {
		t.Error("SubFloor must clamp at zero")
	}
	if Alpha(10).SubFloor(4) != 6 {
		t.Error("SubFloor arithmetic wrong")
	}
	if AlphaFromDuration(-3) != 0 {
		t.Error("negative duration must clamp to 0")
	}
}

func TestAlphaGranularity(t *testing.T) {
	// One alpha unit is one granule ≈ 59.6 ns.
	if got := Alpha(1).Duration().Seconds(); math.Abs(got-Granule) > 1e-15 {
		t.Errorf("alpha unit = %v, want %v", got, Granule)
	}
}

// Property: Words/FromWords round-trips for any in-range stamp.
func TestQuickWordsRoundTrip(t *testing.T) {
	f := func(raw int64) bool {
		s := Stamp(raw & (1<<55 - 1)) // keep within 56-bit non-negative range
		ts, ms := s.Words()
		got, ok := FromWords(ts, ms)
		return ok && got == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: stamp quantization always rounds down by < 1 granule.
func TestQuickStampFloor(t *testing.T) {
	f := func(sec uint16, frac uint64) bool {
		ft := fixpt.FromSecFrac(int64(sec), frac)
		d := ft.Sub(StampFromTime(ft).Time())
		return !d.IsNegative() && d.Seconds() < Granule
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: AddSat is commutative and bounded.
func TestQuickAlphaAddSat(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := Alpha(a), Alpha(b)
		s := x.AddSat(y)
		return s == y.AddSat(x) && s >= x && s >= y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
