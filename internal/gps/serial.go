package gps

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"ntisim/internal/sim"
)

// Serial time-of-day path. The 1pps edge only marks *that* a second
// began; *which* second it was arrives later over a slow serial link
// (paper §3.3: "additional and less time critical information is
// usually provided via a serial interface and handled off-chip the
// UTCSU"). This file models that path: an NMEA-0183-style ZDA sentence
// per second, delivered a few hundred ms after its pulse, plus the
// pairing logic the off-chip software needs.

// EncodeZDA builds a "$GPZDA,<sssssssss>.00,...*CS" sentence labelling
// the UTC second sec (the simulation's UTC is a flat seconds count, so
// the time-of-day fields carry the count directly).
func EncodeZDA(sec int64) string {
	body := fmt.Sprintf("GPZDA,%d.00,01,01,1997,00,00", sec)
	return fmt.Sprintf("$%s*%02X", body, nmeaChecksum(body))
}

// Errors returned by ParseZDA.
var (
	ErrSentenceFraming  = errors.New("gps: bad sentence framing")
	ErrSentenceChecksum = errors.New("gps: sentence checksum mismatch")
	ErrSentenceFields   = errors.New("gps: malformed sentence fields")
)

// ParseZDA extracts the labelled second from a ZDA sentence, verifying
// the NMEA checksum.
func ParseZDA(s string) (sec int64, err error) {
	if len(s) < 4 || s[0] != '$' {
		return 0, ErrSentenceFraming
	}
	star := strings.LastIndexByte(s, '*')
	if star < 0 || star+3 != len(s) {
		return 0, ErrSentenceFraming
	}
	body := s[1:star]
	want, err := strconv.ParseUint(s[star+1:], 16, 8)
	if err != nil {
		return 0, ErrSentenceFraming
	}
	if nmeaChecksum(body) != uint8(want) {
		return 0, ErrSentenceChecksum
	}
	fields := strings.Split(body, ",")
	if len(fields) < 2 || fields[0] != "GPZDA" {
		return 0, ErrSentenceFields
	}
	dot := strings.IndexByte(fields[1], '.')
	if dot < 0 {
		dot = len(fields[1])
	}
	sec, err = strconv.ParseInt(fields[1][:dot], 10, 64)
	if err != nil {
		return 0, ErrSentenceFields
	}
	return sec, nil
}

// nmeaChecksum XORs the sentence body, per NMEA-0183.
func nmeaChecksum(body string) uint8 {
	var c uint8
	for i := 0; i < len(body); i++ {
		c ^= body[i]
	}
	return c
}

// SerialConfig parameterizes the serial side channel.
type SerialConfig struct {
	// DelayMeanS/DelayJitterS: the sentence for second k leaves the
	// receiver well after the pulse (UART at 4800 baud plus firmware).
	// Defaults: 300 ms ± 100 ms.
	DelayMeanS   float64
	DelayJitterS float64
}

// StartSerial attaches a serial emitter to the simulator: for every
// labelled second it delivers the corresponding ZDA sentence after the
// configured delay. It returns the feed function to be called by the
// receiver's pulse path (Receiver.New's out callback can fan out to it).
func StartSerial(s *sim.Simulator, cfg SerialConfig, label string, out func(sentence string)) func(Pulse) {
	if cfg.DelayMeanS <= 0 {
		cfg.DelayMeanS = 0.3
	}
	if cfg.DelayJitterS < 0 {
		cfg.DelayJitterS = 0
	}
	if cfg.DelayJitterS == 0 {
		cfg.DelayJitterS = 0.1
	}
	rng := s.RNG("gps-serial/" + label)
	lastDelivery := 0.0
	return func(p Pulse) {
		sentence := EncodeZDA(p.LabelSec)
		d := rng.TruncNormal(cfg.DelayMeanS, cfg.DelayJitterS/2, 0.05, cfg.DelayMeanS+cfg.DelayJitterS)
		at := s.Now() + d
		// A serial line is FIFO: a sentence can be late, but never
		// overtake its predecessor.
		if at <= lastDelivery {
			at = lastDelivery + 1e-3
		}
		lastDelivery = at
		s.At(at, func() {
			if out != nil {
				out(sentence)
			}
		})
	}
}

// SerialPairer reunites hardware pps samples with the serial sentences
// that label them — the bookkeeping the paper leaves to off-chip
// software. A pulse is identified by its local GPU timestamp; the next
// sentence to arrive labels the oldest unlabelled pulse (sentences
// cannot overtake each other on a serial line).
type SerialPairer struct {
	pending []pairerEntry
	out     func(labelSec int64, localStamp int64)
	dropped int
}

type pairerEntry struct{ local int64 }

// NewSerialPairer creates a pairer; out receives (label, local GPU
// stamp) pairs, the input the clock-validation layer needs.
func NewSerialPairer(out func(labelSec int64, localStamp int64)) *SerialPairer {
	return &SerialPairer{out: out}
}

// PulseSampled records a hardware pps sample (the GPU stamp, flattened
// to int64 for transport).
func (sp *SerialPairer) PulseSampled(localStamp int64) {
	sp.pending = append(sp.pending, pairerEntry{local: localStamp})
	// A sentence must arrive within a second or two; a deeper backlog
	// means sentences were lost — drop the stale half to resynchronize.
	if len(sp.pending) > 4 {
		sp.dropped += len(sp.pending) - 2
		sp.pending = sp.pending[len(sp.pending)-2:]
	}
}

// SentenceReceived pairs an arriving sentence with the oldest pending
// pulse. Unparseable sentences are counted and skipped.
func (sp *SerialPairer) SentenceReceived(sentence string) {
	sec, err := ParseZDA(sentence)
	if err != nil {
		sp.dropped++
		return
	}
	if len(sp.pending) == 0 {
		sp.dropped++
		return
	}
	e := sp.pending[0]
	sp.pending = sp.pending[1:]
	if sp.out != nil {
		sp.out(sec, e.local)
	}
}

// Dropped reports lost pairings (diagnostics).
func (sp *SerialPairer) Dropped() int { return sp.dropped }
