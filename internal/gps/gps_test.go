package gps

import (
	"math"
	"testing"

	"ntisim/internal/sim"
)

func collect(seed uint64, cfg Config, until float64) []Pulse {
	s := sim.New(seed)
	var out []Pulse
	New(s, cfg, "t", func(p Pulse) { out = append(out, p) })
	s.RunUntil(until)
	return out
}

func TestHealthyPulsesOnSeconds(t *testing.T) {
	ps := collect(1, DefaultReceiver(), 10.5)
	if len(ps) < 9 {
		t.Fatalf("got %d pulses in 10 s", len(ps))
	}
	for _, p := range ps {
		off := p.TrueTime - float64(p.LabelSec)
		if math.Abs(off) > 300e-9 {
			t.Errorf("pulse error %v exceeds sawtooth", off)
		}
		if !p.Valid {
			t.Error("healthy pulse marked invalid")
		}
	}
}

func TestPulseLabelsConsecutive(t *testing.T) {
	ps := collect(2, DefaultReceiver(), 8)
	for i := 1; i < len(ps); i++ {
		if ps[i].LabelSec != ps[i-1].LabelSec+1 {
			t.Fatalf("labels not consecutive: %d then %d", ps[i-1].LabelSec, ps[i].LabelSec)
		}
	}
}

func TestBias(t *testing.T) {
	cfg := DefaultReceiver()
	cfg.BiasS = 5e-6
	ps := collect(3, cfg, 20)
	var sum float64
	for _, p := range ps {
		sum += p.TrueTime - float64(p.LabelSec)
	}
	mean := sum / float64(len(ps))
	if math.Abs(mean-5e-6) > 1e-6 {
		t.Errorf("mean pulse error %v, want ~5µs bias", mean)
	}
}

func TestOutage(t *testing.T) {
	cfg := DefaultReceiver()
	cfg.Faults = []Fault{{Kind: FaultOutage, Start: 3, End: 7}}
	ps := collect(4, cfg, 12)
	for _, p := range ps {
		if p.TrueTime > 3.1 && p.TrueTime < 6.9 {
			t.Errorf("pulse at %v during outage", p.TrueTime)
		}
	}
	if len(ps) < 6 {
		t.Errorf("only %d pulses outside outage", len(ps))
	}
}

func TestOffsetFault(t *testing.T) {
	cfg := DefaultReceiver()
	cfg.Faults = []Fault{{Kind: FaultOffset, Start: 5, Magnitude: 2e-3}}
	ps := collect(5, cfg, 12)
	for _, p := range ps {
		off := p.TrueTime - float64(p.LabelSec)
		if p.LabelSec >= 6 {
			if math.Abs(off-2e-3) > 1e-5 {
				t.Errorf("pulse at sec %d: offset %v, want ~2ms", p.LabelSec, off)
			}
		} else if p.LabelSec <= 4 {
			if math.Abs(off) > 1e-5 {
				t.Errorf("pre-fault pulse offset %v", off)
			}
		}
	}
}

func TestWrongSecond(t *testing.T) {
	cfg := DefaultReceiver()
	cfg.Faults = []Fault{{Kind: FaultWrongSec, Start: 4, Magnitude: 1}}
	ps := collect(6, cfg, 10)
	sawWrong := false
	for _, p := range ps {
		if p.TrueTime > 4.5 {
			if p.LabelSec != int64(p.TrueTime+0.5)+1 {
				t.Errorf("wrong-second fault: label %d, true %v", p.LabelSec, p.TrueTime)
			}
			sawWrong = true
		}
	}
	if !sawWrong {
		t.Error("no faulty pulses observed")
	}
}

func TestRampDrift(t *testing.T) {
	cfg := DefaultReceiver()
	cfg.Faults = []Fault{{Kind: FaultRampDrift, Start: 2, Magnitude: 1e-5}}
	ps := collect(7, cfg, 30)
	last := ps[len(ps)-1]
	off := last.TrueTime - float64(last.LabelSec)
	if off < 1e-4 {
		t.Errorf("ramp drift not growing: final offset %v", off)
	}
}

func TestFlapping(t *testing.T) {
	cfg := DefaultReceiver()
	cfg.Faults = []Fault{{Kind: FaultFlapping, Start: 0, Magnitude: 1e-3}}
	ps := collect(8, cfg, 40)
	big := 0
	for _, p := range ps {
		if math.Abs(p.TrueTime-float64(p.LabelSec)) > 10e-6 {
			big++
		}
	}
	if big == 0 || big == len(ps) {
		t.Errorf("flapping should corrupt some but not all pulses: %d/%d", big, len(ps))
	}
}

func TestStop(t *testing.T) {
	s := sim.New(9)
	n := 0
	r := New(s, DefaultReceiver(), "t", func(Pulse) { n++ })
	s.RunUntil(5)
	r.Stop()
	before := n
	s.RunUntil(10)
	if n != before {
		t.Error("pulses after Stop")
	}
	if r.Pulses() == 0 {
		t.Error("pulse counter dead")
	}
}

func TestDeterminism(t *testing.T) {
	a := collect(42, DefaultReceiver(), 20)
	b := collect(42, DefaultReceiver(), 20)
	if len(a) != len(b) {
		t.Fatal("pulse counts differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pulse %d differs", i)
		}
	}
}

func TestZDARoundTrip(t *testing.T) {
	for _, sec := range []int64{0, 1, 59, 3600, 123456789} {
		s := EncodeZDA(sec)
		got, err := ParseZDA(s)
		if err != nil {
			t.Fatalf("ParseZDA(%q): %v", s, err)
		}
		if got != sec {
			t.Errorf("round trip %d -> %d", sec, got)
		}
	}
}

func TestZDARejectsCorruption(t *testing.T) {
	s := EncodeZDA(42)
	if _, err := ParseZDA(s[1:]); err != ErrSentenceFraming {
		t.Errorf("missing $: %v", err)
	}
	if _, err := ParseZDA(s[:len(s)-1]); err != ErrSentenceFraming {
		t.Errorf("truncated checksum: %v", err)
	}
	bad := []byte(s)
	bad[7] ^= 0x01 // flip a digit
	if _, err := ParseZDA(string(bad)); err != ErrSentenceChecksum {
		t.Errorf("corrupted body: %v", err)
	}
	if _, err := ParseZDA("$GPGGA,1,2*00"); err == nil {
		t.Error("wrong sentence type accepted")
	}
}

func TestSerialDeliveryDelayed(t *testing.T) {
	s := sim.New(40)
	var sentences []string
	var arrival []float64
	feed := StartSerial(s, SerialConfig{}, "t", func(msg string) {
		sentences = append(sentences, msg)
		arrival = append(arrival, s.Now())
	})
	var pulseTimes []float64
	New(s, DefaultReceiver(), "t", func(p Pulse) {
		pulseTimes = append(pulseTimes, s.Now())
		feed(p)
	})
	s.RunUntil(10.9)
	if len(sentences) < 9 {
		t.Fatalf("only %d sentences", len(sentences))
	}
	first, err := ParseZDA(sentences[0])
	if err != nil || first > 2 {
		t.Fatalf("first sentence: sec=%d err=%v", first, err)
	}
	for i, at := range arrival {
		d := at - pulseTimes[i]
		if d < 0.05 || d > 0.5 {
			t.Errorf("sentence %d delayed %v, want 50..500 ms", i, d)
		}
		if sec, err := ParseZDA(sentences[i]); err != nil || sec != first+int64(i) {
			t.Errorf("sentence %d decodes to %d (%v)", i, sec, err)
		}
	}
}

func TestSerialPairerMatchesInOrder(t *testing.T) {
	var pairs [][2]int64
	sp := NewSerialPairer(func(label, local int64) { pairs = append(pairs, [2]int64{label, local}) })
	sp.PulseSampled(1000)
	sp.PulseSampled(2000)
	sp.SentenceReceived(EncodeZDA(5))
	sp.SentenceReceived(EncodeZDA(6))
	if len(pairs) != 2 || pairs[0] != [2]int64{5, 1000} || pairs[1] != [2]int64{6, 2000} {
		t.Errorf("pairs = %v", pairs)
	}
	if sp.Dropped() != 0 {
		t.Errorf("dropped = %d", sp.Dropped())
	}
}

func TestSerialPairerResyncsAfterLoss(t *testing.T) {
	var pairs int
	sp := NewSerialPairer(func(int64, int64) { pairs++ })
	// Sentences lost: pulses pile up; the pairer must shed backlog.
	for i := 0; i < 8; i++ {
		sp.PulseSampled(int64(i))
	}
	if len(sp.pending) > 4 {
		t.Errorf("backlog not shed: %d", len(sp.pending))
	}
	if sp.Dropped() == 0 {
		t.Error("shedding not accounted")
	}
	sp.SentenceReceived(EncodeZDA(9))
	if pairs != 1 {
		t.Errorf("pairs = %d", pairs)
	}
	// Garbage sentence and sentence with no pending pulse.
	sp.SentenceReceived("garbage")
	sp.SentenceReceived(EncodeZDA(10))
	sp.SentenceReceived(EncodeZDA(11)) // nothing pending anymore
	if pairs != 2 {
		t.Errorf("pairs after noise = %d", pairs)
	}
}
