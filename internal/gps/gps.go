// Package gps models GPS timing receivers and their failure modes.
//
// A receiver emits a one-pulse-per-second (1pps) signal marking the
// exact begin of each UTC second (paper §3.3: the GPU units timestamp
// it) plus a serial time-of-day message identifying which second the
// pulse belongs to. Real receivers are accurate to ~100 ns–1 µs but are
// **not trustworthy**: the authors' own two-month evaluation of six
// receivers [HS97] "revealed a wide variety of failures", which is why
// interval-based clock validation exists. The fault injector reproduces
// the failure classes that study motivates: outages, offset steps,
// wrong-second (off-by-N) pulses, and flapping.
package gps

import (
	"ntisim/internal/sim"
	"ntisim/internal/trace"
)

// FaultKind enumerates injectable receiver faults.
type FaultKind int

const (
	FaultNone      FaultKind = iota
	FaultOutage              // no pulses for a while
	FaultOffset              // pulses shifted by a constant error
	FaultWrongSec            // pulse labelled with the wrong second (off-by-N)
	FaultFlapping            // alternating good/garbage pulses
	FaultRampDrift           // pulse error growing over time
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultOutage:
		return "outage"
	case FaultOffset:
		return "offset"
	case FaultWrongSec:
		return "wrong-second"
	case FaultFlapping:
		return "flapping"
	case FaultRampDrift:
		return "ramp-drift"
	}
	return "unknown"
}

// Fault describes one injected failure episode.
type Fault struct {
	Kind  FaultKind
	Start float64 // simulated time the episode begins
	End   float64 // and ends (0 = forever)
	// Magnitude: seconds for FaultOffset (the step), seconds/second for
	// FaultRampDrift, whole seconds for FaultWrongSec (the off-by-N).
	Magnitude float64
}

// Config parameterizes a receiver.
type Config struct {
	// SawtoothS is the amplitude of the classic receiver sawtooth error
	// (oscillator granularity of the receiver itself); pulses carry a
	// uniform error in ±SawtoothS. Default 200 ns.
	SawtoothS float64
	// BiasS is a constant antenna/cable delay miscalibration. Default 0.
	BiasS float64
	// AccuracyS is the receiver's *claimed* 1-sigma accuracy, what the
	// clock-sync layer uses as the external interval half-width.
	// Default 1 µs.
	AccuracyS float64
	Faults    []Fault
}

// DefaultReceiver returns a healthy mid-90s timing receiver.
func DefaultReceiver() Config {
	return Config{SawtoothS: 200e-9, AccuracyS: 1e-6}
}

// Pulse is one 1pps event as delivered to a node.
type Pulse struct {
	// TrueTime is when the pulse physically occurred (simulation truth).
	TrueTime float64
	// LabelSec is the UTC second the serial message claims the pulse
	// marks. For a healthy receiver, TrueTime ≈ LabelSec.
	LabelSec int64
	// Valid is the receiver's own health flag (lost lock etc.); faulty
	// receivers may assert it wrongly.
	Valid bool
}

// Receiver is one simulated GPS timing receiver.
type Receiver struct {
	s      *sim.Simulator
	cfg    Config
	rng    *sim.RNG
	out    func(Pulse)
	ticker *sim.Ticker
	pulses uint64

	tr        *trace.Tracer
	trNode    int
	lastFault FaultKind
}

// SetTracer attaches an event tracer (nil detaches), attributing this
// receiver's records to node id `node`. The receiver emits fault-onset
// and fault-clear records at the pulse-generator granularity (1 s).
func (r *Receiver) SetTracer(tr *trace.Tracer, node int) {
	r.tr = tr
	r.trNode = node
}

// New creates a receiver whose pulses are delivered to out. Pulses start
// at the next whole simulated second after start.
func New(s *sim.Simulator, cfg Config, label string, out func(Pulse)) *Receiver {
	if cfg.SawtoothS <= 0 {
		cfg.SawtoothS = 200e-9
	}
	if cfg.AccuracyS <= 0 {
		cfg.AccuracyS = 1e-6
	}
	r := &Receiver{s: s, cfg: cfg, rng: s.RNG("gps/" + label), out: out}
	// The generator runs `lead` ahead of each second so pulses with
	// negative errors can still be delivered at their physical time.
	start := float64(int64(s.Now())+1) + 1 - pulseLead
	r.ticker = s.Every(start, 1.0, r.emit)
	return r
}

// pulseLead is how far ahead of the nominal second the pulse generator
// wakes up; it bounds the earliest deliverable pulse error.
const pulseLead = 0.05

// AccuracyS returns the receiver's claimed accuracy.
func (r *Receiver) AccuracyS() float64 { return r.cfg.AccuracyS }

// Pulses returns the number of pulses emitted.
func (r *Receiver) Pulses() uint64 { return r.pulses }

// Stop halts the receiver.
func (r *Receiver) Stop() { r.ticker.Stop() }

func (r *Receiver) activeFault() *Fault {
	now := r.s.Now()
	for i := range r.cfg.Faults {
		f := &r.cfg.Faults[i]
		if now >= f.Start && (f.End == 0 || now < f.End) {
			return f
		}
	}
	return nil
}

func (r *Receiver) emit() {
	sec := int64(r.s.Now() + pulseLead + 0.5) // the second this pulse marks
	err := r.cfg.BiasS + r.rng.Uniform(-r.cfg.SawtoothS, r.cfg.SawtoothS)
	label := sec
	valid := true
	f := r.activeFault()
	// Fault-episode transitions, observed at pulse granularity. Purely
	// passive: no RNG draw, no scheduling — tracing cannot perturb the
	// simulation.
	cur, mag := FaultNone, 0.0
	if f != nil {
		cur, mag = f.Kind, f.Magnitude
	}
	if cur != r.lastFault {
		if r.tr != nil {
			if r.lastFault != FaultNone {
				r.tr.Emit(trace.KindFaultClear, r.s.Now(), r.trNode, 0, 0, uint64(r.lastFault), 0)
			}
			if cur != FaultNone {
				r.tr.Emit(trace.KindFaultOnset, r.s.Now(), r.trNode, 0, 0, uint64(cur), mag)
			}
		}
		r.lastFault = cur
	}
	if f != nil {
		switch f.Kind {
		case FaultOutage:
			return // no pulse at all
		case FaultOffset:
			err += f.Magnitude
		case FaultWrongSec:
			label += int64(f.Magnitude)
		case FaultFlapping:
			if r.rng.Bool(0.5) {
				err += r.rng.Uniform(-f.Magnitude, f.Magnitude)
			}
		case FaultRampDrift:
			err += f.Magnitude * (r.s.Now() - f.Start)
		}
	}
	wait := pulseLead + err
	if wait < 0 {
		wait = 0 // error beyond the lead window: clamp to "now"
	}
	p := Pulse{TrueTime: float64(sec) + err, LabelSec: label, Valid: valid}
	r.pulses++
	r.s.After(wait, func() {
		if r.out != nil {
			r.out(p)
		}
	})
}
