package nti

import (
	"bytes"
	"testing"

	"ntisim/internal/csp"
	"ntisim/internal/oscillator"
	"ntisim/internal/sim"
	"ntisim/internal/timefmt"
	"ntisim/internal/utcsu"
)

func rig(seed uint64) (*sim.Simulator, *utcsu.UTCSU, *NTI) {
	s := sim.New(seed)
	o := oscillator.New(s, oscillator.Ideal(10e6), "nti")
	u := utcsu.New(s, utcsu.Config{Osc: o})
	return s, u, New(u)
}

func TestMemoryMapLayout(t *testing.T) {
	// Fig. 6: four sections covering the full 256 KB exactly.
	if TxHeadersSize+RxHeadersSize+DataSize+SystemSize != MemSize {
		t.Error("sections do not tile the 256 KB region")
	}
	if MemSize != 256*1024 {
		t.Errorf("memory size %d, paper says 256 KB (2x 64Kx16 SRAM)", MemSize)
	}
	if NumTxHeaders != 64 || NumRxHeaders != 128 {
		t.Errorf("header counts %d/%d", NumTxHeaders, NumRxHeaders)
	}
}

func TestCPUAccessPlain(t *testing.T) {
	_, _, n := rig(1)
	data := []byte{1, 2, 3, 4}
	n.CPUWrite(DataBase, data)
	out := make([]byte, 4)
	n.CPURead(DataBase, out)
	if !bytes.Equal(data, out) {
		t.Error("CPU read/write mismatch")
	}
	n.CPUWrite32(SystemBase, 0xDEADBEEF)
	if n.CPURead32(SystemBase) != 0xDEADBEEF {
		t.Error("CPU word access mismatch")
	}
	// CPU access to trigger offsets has no special effect.
	n.CPUWrite32(RxHeaderAddr(0)+csp.RxTrigOffset, 0x1234)
	if _, rx, _ := n.Stats(); rx != 0 {
		t.Error("CPU write raised RECEIVE trigger")
	}
}

func TestTransmitTriggerAndTransparentMapping(t *testing.T) {
	s, u, n := rig(2)
	s.RunUntil(1.25)
	base := TxHeaderAddr(3)
	// Software wrote arbitrary bytes into the stamp block; the COMCO
	// read of the trigger offset must latch the UTCSU sample, and reads
	// of the stamp block must return the registers, not memory.
	n.CPUWrite32(base+csp.OffTxStamp, 0x11111111)
	n.CPUWrite32(base+csp.OffTxMacro, 0x22222222)
	n.CPUWrite32(base+csp.OffTxAlpha, 0x33333333)
	u.SetAlpha(timefmt.Duration(5), timefmt.Duration(9))
	s.RunUntil(1.2501)

	_ = n.COMCORead32(base + csp.OffTxTrig)
	ts := n.COMCORead32(base + csp.OffTxStamp)
	ms := n.COMCORead32(base + csp.OffTxMacro)
	al := n.COMCORead32(base + csp.OffTxAlpha)
	st, ok := timefmt.FromWords(ts, ms)
	if !ok {
		t.Fatal("mapped stamp fails checksum")
	}
	if d := st.Seconds() - 1.2501; d < 0 || d > 1e-6 {
		t.Errorf("mapped stamp offset %v", d)
	}
	if al>>16 != 5 || al&0xFFFF != 9 {
		t.Errorf("mapped alpha word %08x", al)
	}
	if tx, _, _ := n.Stats(); tx != 1 {
		t.Errorf("tx triggers = %d", tx)
	}
	// A COMCO read of a non-trigger offset returns plain memory.
	n.CPUWrite32(base+0x00, 0xAAAA5555)
	if n.COMCORead32(base+0x00) != 0xAAAA5555 {
		t.Error("plain COMCO read altered")
	}
}

func TestTransmitMappingRequiresTrigger(t *testing.T) {
	_, _, n := rig(3)
	base := TxHeaderAddr(0)
	n.CPUWrite32(base+csp.OffTxStamp, 0x77777777)
	// Without a prior trigger the stamp block reads back memory.
	if n.COMCORead32(base+csp.OffTxStamp) != 0x77777777 {
		t.Error("stamp block mapped before any trigger")
	}
}

func TestReceiveTriggerLatchesHeaderBase(t *testing.T) {
	s, _, n := rig(4)
	s.RunUntil(2)
	base := RxHeaderAddr(5)
	n.COMCOWrite32(base+csp.RxTrigOffset, 0xCAFEBABE)
	if n.CPURead32(base+csp.RxTrigOffset) != 0xCAFEBABE {
		t.Error("trigger write did not reach memory")
	}
	st, _, _, latched, seq := n.ReadRxSample()
	if latched != base {
		t.Errorf("latched base %#x, want %#x", latched, base)
	}
	if seq != 1 {
		t.Errorf("sample seq = %d", seq)
	}
	if d := st.Seconds() - 2; d < 0 || d > 1e-6 {
		t.Errorf("rx stamp offset %v", d)
	}
	if n.ReadIO(IORxHeaderBase) != base {
		t.Error("I/O read of Receive Header Base wrong")
	}
	// Writes at other offsets of the header do not trigger.
	n.COMCOWrite32(base+0x00, 1)
	if _, rx, _ := n.Stats(); rx != 1 {
		t.Errorf("rx triggers = %d", rx)
	}
}

func TestBackToBackOverwritesSample(t *testing.T) {
	s, _, n := rig(5)
	s.RunUntil(1)
	n.COMCOWrite32(RxHeaderAddr(0)+csp.RxTrigOffset, 0)
	s.RunUntil(1.00005)
	n.COMCOWrite32(RxHeaderAddr(1)+csp.RxTrigOffset, 0)
	_, _, _, latched, seq := n.ReadRxSample()
	if latched != RxHeaderAddr(1) {
		t.Error("latch should follow the newest trigger")
	}
	if seq != 2 {
		t.Errorf("seq = %d; software uses the gap to detect the overrun", seq)
	}
}

func TestIORegisters(t *testing.T) {
	_, _, n := rig(6)
	n.WriteIO(IOVectorBase, 0x40)
	if n.ReadIO(IOVectorBase) != 0x40 {
		t.Error("vector base readback")
	}
	n.WriteIO(IOIntEnable, 1)
	if n.ReadIO(IOIntEnable) != 1 {
		t.Error("int enable readback")
	}
	n.WriteIO(IOIntEnable, 0)
	if n.ReadIO(IOIntEnable) != 0 {
		t.Error("int disable readback")
	}
	if n.ReadIO(0x80) != 0 {
		t.Error("unmapped I/O should read zero")
	}
}

func TestSPROMIdentification(t *testing.T) {
	_, _, n := rig(7)
	id := n.SPROM()
	if !bytes.Contains(id, []byte("NTI")) {
		t.Error("S-PROM lacks module identification")
	}
	if n.ReadIO(IOSPROM) != uint32(id[0]) {
		t.Error("I/O S-PROM access byte wrong")
	}
}

func TestInterruptVectorComposition(t *testing.T) {
	s, u, n := rig(8)
	s.RunUntil(0.5)
	var vectors []uint8
	n.OnInterrupt(func(v uint8) { vectors = append(vectors, v) })
	n.WriteIO(IOVectorBase, 0x40)
	n.EnableInts()
	// INTN via a receive trigger with interrupts enabled on the SSU.
	u.SSU(SSUReceive).EnableInterrupt(true)
	n.COMCOWrite32(RxHeaderAddr(0)+csp.RxTrigOffset, 0)
	if len(vectors) != 1 || vectors[0] != 0x40|VecINTN {
		t.Fatalf("vectors = %v, want [0x41]", vectors)
	}
	// Interrupts auto-disable until software re-enables: second trigger lost.
	n.COMCOWrite32(RxHeaderAddr(1)+csp.RxTrigOffset, 0)
	if len(vectors) != 1 {
		t.Error("interrupt delivered while disabled")
	}
	if _, _, lost := n.Stats(); lost != 1 {
		t.Errorf("lost interrupts = %d", lost)
	}
	n.EnableInts()
	n.COMCOWrite32(RxHeaderAddr(2)+csp.RxTrigOffset, 0)
	if len(vectors) != 2 {
		t.Error("interrupt not delivered after re-enable")
	}
}

func TestTimerInterruptVector(t *testing.T) {
	s, u, n := rig(9)
	var vectors []uint8
	n.OnInterrupt(func(v uint8) { vectors = append(vectors, v) })
	n.WriteIO(IOVectorBase, 0x80)
	n.EnableInts()
	u.DutyAt(timefmt.Stamp(timefmt.DurationFromSeconds(1)), func() {})
	s.RunUntil(2)
	if len(vectors) != 1 || vectors[0] != 0x80|VecINTT {
		t.Errorf("vectors = %v, want [0x82]", vectors)
	}
}

func TestHeaderAddrBounds(t *testing.T) {
	for _, fn := range []func(){
		func() { TxHeaderAddr(-1) },
		func() { TxHeaderAddr(NumTxHeaders) },
		func() { RxHeaderAddr(-1) },
		func() { RxHeaderAddr(NumRxHeaders) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range header index accepted")
				}
			}()
			fn()
		}()
	}
}

func TestUTCSURegisterWindowMMIO(t *testing.T) {
	// Fig. 6: the 512-byte UTCSU register window follows the SRAM in the
	// CPU-visible space; a driver can run the chip by plain MMIO.
	s, u, n := rig(10)
	s.RunUntil(5.25)
	ts := n.CPURead32(UTCSURegBase + utcsu.RegTimestamp)
	ms := n.CPURead32(UTCSURegBase + utcsu.RegMacrostamp)
	got, ok := timefmt.FromWords(ts, ms)
	if !ok {
		t.Fatal("MMIO clock read fails checksum")
	}
	if got != u.Now() {
		t.Errorf("MMIO read %v != Now %v", got, u.Now())
	}
	// Write side: command a rate through the window.
	n.CPUWrite32(UTCSURegBase+utcsu.RegStep, 50_000)
	if u.RatePPB() != 50_000 {
		t.Errorf("MMIO STEP write lost: %d", u.RatePPB())
	}
	// SRAM below the window is unaffected by register traffic.
	n.CPUWrite32(DataBase, 0x12345678)
	if n.CPURead32(DataBase) != 0x12345678 {
		t.Error("SRAM access broken")
	}
}
