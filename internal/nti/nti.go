// Package nti models the Network Time Interface MA-Module (paper §3).
//
// The NTI couples a UTCSU, 256 KB of dual-ported SRAM and a CPLD onto an
// MA-Module mezzanine interface. The CPLD decodes two address regions
// onto the same physical memory (Fig. 6): plain CPU accesses, and COMCO
// accesses with the timestamping side effects of §3.1/§3.4:
//
//   - a COMCO *read* of offset 0x14 inside a transmit header raises the
//     TRANSMIT trigger; the sampled UTCSU time/accuracy registers are
//     transparently mapped over offsets 0x18/0x1C/0x20, so they ride into
//     the outgoing packet without software involvement;
//   - a COMCO *write* of offset 0x1C inside a receive header raises the
//     RECEIVE trigger and latches the header's base address into the
//     Receive Header Base I/O register, so the ISR can associate the
//     sampled stamp with the right packet even for back-to-back CSPs
//     (footnote 4);
//   - the three UTCSU interrupt pins are folded into the M-Module's
//     single vectorized interrupt, with the pin state encoded in the
//     vector and an enable register written at the end of each ISR.
package nti

import (
	"encoding/binary"
	"fmt"

	"ntisim/internal/csp"
	"ntisim/internal/timefmt"
	"ntisim/internal/utcsu"
)

// Memory map of the COMCO-visible 256 KB region (Fig. 6). The same
// physical SRAM appears again at CPUBase for plain accesses.
const (
	MemSize = 256 * 1024

	TxHeadersBase = 0x00000 // 4 KB of 64-byte transmit headers
	TxHeadersSize = 4 * 1024
	RxHeadersBase = TxHeadersBase + TxHeadersSize // 8 KB of receive headers
	RxHeadersSize = 8 * 1024
	DataBase      = RxHeadersBase + RxHeadersSize // 60 KB data buffers
	DataSize      = 60 * 1024
	SystemBase    = DataBase + DataSize // 184 KB system structures
	SystemSize    = MemSize - SystemBase

	HeaderSize   = 64
	NumTxHeaders = TxHeadersSize / HeaderSize
	NumRxHeaders = RxHeadersSize / HeaderSize

	// UTCSURegBase is the 512-byte UTCSU register window, decoded right
	// after the SRAM in the CPU-visible memory space (Fig. 6: "followed
	// by a 512 byte segment containing the UTCSU registers").
	UTCSURegBase = MemSize
	UTCSURegSize = utcsu.RegWindowSize
)

// I/O-space register offsets (Fig. 8).
const (
	IORxHeaderBase = 0x00
	IOVectorBase   = 0x02
	IOIntEnable    = 0x04
	IOSPROM        = 0xFE
)

// SSU channel assignment: the NTI wires the transmit trigger of network
// channel c to SSU 2c and the receive trigger to SSU 2c+1. The UTCSU's
// six SSUs thus support up to three independent channels — "to
// facilitate fault-tolerant (redundant) communications architectures or
// gateway nodes" (paper §3.3).
const (
	SSUTransmit = 0 // channel 0's transmit unit
	SSUReceive  = 1 // channel 0's receive unit
	NumChannels = 3
)

// ssuTx/ssuRx map a channel to its SSU indices.
func ssuTx(ch int) int { return 2 * ch }
func ssuRx(ch int) int { return 2*ch + 1 }

// Interrupt pin bits encoded into the delivered vector (paper §3.4:
// "the final vector also includes the state of the three UTCSU interrupt
// pins INTT, INTN, and INTA").
const (
	VecINTN = 1 << 0
	VecINTT = 1 << 1
	VecINTA = 1 << 2
)

// NTI is one module instance.
type NTI struct {
	u   *utcsu.UTCSU
	mem [MemSize]byte

	ch [NumChannels]channelState

	vectorBase uint8 // I/O reg 0x02
	intEnabled bool  // I/O reg 0x04

	sprom [256]byte

	onInterrupt func(vector uint8)

	lostInts uint64
}

// channelState holds one network channel's CPLD state: the latched
// transmit sample (transparently mapped over the stamp block of the
// header being fetched) and the Receive Header Base latch.
type channelState struct {
	txLatchValid bool
	txStampWord  uint32
	txMacroWord  uint32
	txAlphaWord  uint32
	rxHeaderBase uint32
	txTriggers   uint64
	rxTriggers   uint64
}

// New builds an NTI around the given UTCSU and programs the CPLD's
// interrupt forwarding.
func New(u *utcsu.UTCSU) *NTI {
	n := &NTI{u: u}
	copy(n.sprom[:], "NTI MA-Module rev 1.0 TU Wien 1997\x00")
	u.OnInterrupt(n.forwardInterrupt)
	for _, l := range []utcsu.IntLine{utcsu.INTN, utcsu.INTT, utcsu.INTA} {
		u.EnableInt(l, true)
	}
	return n
}

// UTCSU returns the on-board chip.
func (n *NTI) UTCSU() *utcsu.UTCSU { return n.u }

// Per-channel header partitions: the CPLD decodes the channel from the
// header's address range.
const (
	TxHeadersPerCh = NumTxHeaders / NumChannels
	RxHeadersPerCh = NumRxHeaders / NumChannels
)

// TxHeaderAddr returns the base address of channel 0's transmit header i.
func TxHeaderAddr(i int) uint32 { return TxHeaderAddrCh(0, i) }

// RxHeaderAddr returns the base address of channel 0's receive header i.
func RxHeaderAddr(i int) uint32 { return RxHeaderAddrCh(0, i) }

// TxHeaderAddrCh returns the base address of transmit header i of the
// given channel's partition.
func TxHeaderAddrCh(ch, i int) uint32 {
	if ch < 0 || ch >= NumChannels || i < 0 || i >= TxHeadersPerCh {
		panic(fmt.Sprintf("nti: tx header %d/%d out of range", ch, i))
	}
	return TxHeadersBase + uint32(ch*TxHeadersPerCh+i)*HeaderSize
}

// RxHeaderAddrCh returns the base address of receive header i of the
// given channel's partition.
func RxHeaderAddrCh(ch, i int) uint32 {
	if ch < 0 || ch >= NumChannels || i < 0 || i >= RxHeadersPerCh {
		panic(fmt.Sprintf("nti: rx header %d/%d out of range", ch, i))
	}
	return RxHeadersBase + uint32(ch*RxHeadersPerCh+i)*HeaderSize
}

// channelOfTx returns the channel owning a transmit-header index.
func channelOfTx(idx uint32) int { return int(idx) / TxHeadersPerCh % NumChannels }

// channelOfRx returns the channel owning a receive-header index.
func channelOfRx(idx uint32) int { return int(idx) / RxHeadersPerCh % NumChannels }

// Data-buffer slots: each receive header has a matching slot in the
// Data Buffers section where the COMCO deposits payload beyond the
// 64-byte header (ordinary packet data, Fig. 6).
const DataSlotSize = DataSize / NumRxHeaders // 480 bytes

// DataSlotAddr returns the data-buffer slot paired with receive header
// i of a channel.
func DataSlotAddr(ch, i int) uint32 {
	if ch < 0 || ch >= NumChannels || i < 0 || i >= RxHeadersPerCh {
		panic(fmt.Sprintf("nti: data slot %d/%d out of range", ch, i))
	}
	return DataBase + uint32(ch*RxHeadersPerCh+i)*DataSlotSize
}

// inTxHeaders reports whether addr lies in the transmit header section,
// returning the offset within its header.
func inTxHeaders(addr uint32) (off uint32, ok bool) {
	if addr >= TxHeadersBase && addr < TxHeadersBase+TxHeadersSize {
		return addr % HeaderSize, true
	}
	return 0, false
}

func inRxHeaders(addr uint32) (off uint32, ok bool) {
	if addr >= RxHeadersBase && addr < RxHeadersBase+RxHeadersSize {
		return (addr - RxHeadersBase) % HeaderSize, true
	}
	return 0, false
}

// CPU accesses: plain memory, no special functionality (paper §3.1:
// "CPU-accesses are just plain memory accesses").

// CPURead copies out of the SRAM.
func (n *NTI) CPURead(addr uint32, dst []byte) {
	copy(dst, n.mem[addr:])
}

// CPUWrite copies into the SRAM.
func (n *NTI) CPUWrite(addr uint32, src []byte) {
	copy(n.mem[addr:], src)
}

// CPURead32/CPUWrite32 are word-access conveniences. Addresses in the
// UTCSU register window (UTCSURegBase..+512) are decoded to the chip's
// bus interface; everything below is plain SRAM.
func (n *NTI) CPURead32(addr uint32) uint32 {
	if addr >= UTCSURegBase && addr < UTCSURegBase+UTCSURegSize {
		return n.u.ReadReg32(addr - UTCSURegBase)
	}
	return binary.BigEndian.Uint32(n.mem[addr:])
}

func (n *NTI) CPUWrite32(addr uint32, v uint32) {
	if addr >= UTCSURegBase && addr < UTCSURegBase+UTCSURegSize {
		n.u.WriteReg32(addr-UTCSURegBase, v)
		return
	}
	binary.BigEndian.PutUint32(n.mem[addr:], v)
}

// COMCORead32 performs a COMCO (DMA) read with the CPLD's special
// functionality: reading the trigger word of a transmit header samples
// the UTCSU into the latch; reading the stamp block returns the latched
// registers instead of memory.
func (n *NTI) COMCORead32(addr uint32) uint32 {
	if off, ok := inTxHeaders(addr); ok {
		ch := channelOfTx((addr - TxHeadersBase) / HeaderSize)
		c := &n.ch[ch]
		switch off {
		case csp.OffTxTrig:
			stamp, _ := n.u.SSU(ssuTx(ch)).Trigger(true)
			am, ap, _, _ := ssuAlphas(n.u, ssuTx(ch))
			c.txStampWord, c.txMacroWord = stamp.Words()
			c.txAlphaWord = uint32(am)<<16 | uint32(ap)
			c.txLatchValid = true
			c.txTriggers++
		case csp.OffTxStamp:
			if c.txLatchValid {
				return c.txStampWord
			}
		case csp.OffTxMacro:
			if c.txLatchValid {
				return c.txMacroWord
			}
		case csp.OffTxAlpha:
			if c.txLatchValid {
				return c.txAlphaWord
			}
		}
	}
	return binary.BigEndian.Uint32(n.mem[addr:])
}

// ssuAlphas reads the alpha registers sampled by the unit's last trigger.
func ssuAlphas(u *utcsu.UTCSU, i int) (timefmt.Alpha, timefmt.Alpha, timefmt.Stamp, uint64) {
	st, am, ap, seq := u.SSU(i).Read()
	return am, ap, st, seq
}

// COMCOWrite32 performs a COMCO (DMA) write: writing the receive trigger
// offset inside a receive header raises RECEIVE and latches the header
// base address for the ISR.
func (n *NTI) COMCOWrite32(addr uint32, v uint32) {
	binary.BigEndian.PutUint32(n.mem[addr:], v)
	if off, ok := inRxHeaders(addr); ok && off == csp.RxTrigOffset {
		ch := channelOfRx((addr - RxHeadersBase) / HeaderSize)
		n.u.SSU(ssuRx(ch)).Trigger(true)
		n.ch[ch].rxHeaderBase = addr - off
		n.ch[ch].rxTriggers++
	}
}

// ReadRxSample returns channel 0's receive SSU sample registers together
// with the latched Receive Header Base — what the reception ISR reads
// first.
func (n *NTI) ReadRxSample() (stamp timefmt.Stamp, alphaM, alphaP timefmt.Alpha, headerBase uint32, seq uint64) {
	return n.ReadRxSampleCh(0)
}

// ReadRxSampleCh is ReadRxSample for an arbitrary channel.
func (n *NTI) ReadRxSampleCh(ch int) (stamp timefmt.Stamp, alphaM, alphaP timefmt.Alpha, headerBase uint32, seq uint64) {
	st, am, ap, sq := n.u.SSU(ssuRx(ch)).Read()
	return st, am, ap, n.ch[ch].rxHeaderBase, sq
}

// I/O space (Fig. 8).

// ReadIO reads an I/O-space register.
func (n *NTI) ReadIO(off uint32) uint32 {
	switch off {
	case IORxHeaderBase:
		return n.ch[0].rxHeaderBase
	case IOVectorBase:
		return uint32(n.vectorBase)
	case IOIntEnable:
		if n.intEnabled {
			return 1
		}
		return 0
	case IOSPROM:
		return uint32(n.sprom[0])
	}
	return 0
}

// WriteIO writes an I/O-space register.
func (n *NTI) WriteIO(off uint32, v uint32) {
	switch off {
	case IOVectorBase:
		n.vectorBase = uint8(v)
	case IOIntEnable:
		n.intEnabled = v != 0
	}
}

// SPROM returns the serial PROM's identification record (the M-Module
// spec's id/revision block, read bit-serially through I/O 0xFE on real
// hardware).
func (n *NTI) SPROM() []byte { return n.sprom[:] }

// Interrupt forwarding: the CPLD folds the three UTCSU pins onto the
// M-Module's single interrupt line, composing the vector from the
// programmed base and the pin state. The NTI disables further interrupts
// until software re-enables them via the I/O register (paper §3.4),
// modelling the usual "write 0x04 just before RTE" discipline.
func (n *NTI) forwardInterrupt(line utcsu.IntLine, source string) {
	if !n.intEnabled {
		n.lostInts++
		return
	}
	n.intEnabled = false
	var pin uint8
	switch line {
	case utcsu.INTN:
		pin = VecINTN
	case utcsu.INTT:
		pin = VecINTT
	case utcsu.INTA:
		pin = VecINTA
	}
	if n.onInterrupt != nil {
		n.onInterrupt(n.vectorBase | pin)
	}
}

// OnInterrupt installs the carrier-board interrupt handler (the kernel's
// first-level dispatcher). Interrupts stay disabled until EnableInts.
func (n *NTI) OnInterrupt(fn func(vector uint8)) { n.onInterrupt = fn }

// EnableInts is the ISR-exit write to the Dis/Enable Interrupt Logic
// register.
func (n *NTI) EnableInts() { n.WriteIO(IOIntEnable, 1) }

// Stats reports channel 0's trigger counters and lost interrupts.
func (n *NTI) Stats() (txTriggers, rxTriggers, lostInts uint64) {
	return n.ch[0].txTriggers, n.ch[0].rxTriggers, n.lostInts
}

// ChannelStats reports one channel's trigger counters.
func (n *NTI) ChannelStats(ch int) (txTriggers, rxTriggers uint64) {
	return n.ch[ch].txTriggers, n.ch[ch].rxTriggers
}
