package clocksync

import (
	"ntisim/internal/csp"
	"ntisim/internal/interval"
	"ntisim/internal/kernel"
	"ntisim/internal/timefmt"
)

// DelayBounds is the result of a round-trip measurement campaign: bounds
// on the one-way delay between the hardware timestamping points of two
// nodes, the input to delay compensation (paper §2: "our ambitious goal
// ... makes it inevitable to employ an accurate round-trip-based
// transmission delay measurement").
type DelayBounds struct {
	Min, Max timefmt.Duration
	Samples  int
}

// MeasureDelay runs n round-trip probes from a to b (whose RTT
// responder must be enabled) and calls done with conservative one-way
// bounds. Each probe yields, entirely from hardware stamps,
//
//	oneway_i = ((T4−T1) − (T3−T2)) / 2
//
// where T1/T4 are the probe's transmit and the response's receive stamp
// on a's clock, and T2/T3 the corresponding stamps on b's clock. The
// spread of oneway_i over the campaign, widened by clock-granularity
// and drift margins, bounds the true delay.
//
// MeasureDelay temporarily owns a's CI handler; run it before creating
// the node's Synchronizer (which installs its own handler).
func MeasureDelay(a *kernel.Node, b *kernel.Node, rhoPPB int64, n int, done func(DelayBounds)) {
	if n <= 0 {
		n = 16
	}
	var (
		lo   timefmt.Duration = 1 << 62
		hi   timefmt.Duration
		got  int
		sent int
	)

	sendProbe := func() {
		sent++
		a.SendCSP(csp.Packet{Kind: csp.KindRTTReq, Round: uint32(sent)}, b.Station())
	}

	a.OnCSP(func(ar kernel.Arrival) {
		if ar.Pkt.Kind != csp.KindRTTResp || !ar.StampOK {
			return
		}
		t1 := ar.Pkt.EchoReqTx
		t2 := ar.Pkt.EchoReqRx
		t3, ok := ar.Pkt.TxStamp()
		t4 := ar.RxStamp
		if ok {
			rt := t4.Sub(t1)          // on a's clock
			turn := t3.Sub(t2)        // on b's clock
			oneway := (rt - turn) / 2 // symmetric estimate
			if oneway > 0 {
				if oneway < lo {
					lo = oneway
				}
				if oneway > hi {
					hi = oneway
				}
				got++
			}
		}
		if got >= n || sent >= 4*n {
			a.OnCSP(nil)
			// Margins: reading granularity on four stamps plus relative
			// drift over a generous turnaround bound.
			margin := timefmt.Duration(4) + interval.DriftDeterioration(hi+1000, rhoPPB)
			done(DelayBounds{Min: maxDur(0, lo-margin), Max: hi + margin, Samples: got})
			return
		}
		sendProbe()
	})
	sendProbe()
}

func maxDur(a, b timefmt.Duration) timefmt.Duration {
	if a > b {
		return a
	}
	return b
}
