package clocksync

import (
	"ntisim/internal/gps"
	"ntisim/internal/interval"
	"ntisim/internal/kernel"
	"ntisim/internal/timefmt"
)

// GPSAttachment couples a GPS receiver's 1pps output to one of the
// node's GPU timestamping units (paper §3.3: "three independent GPUs
// are provided for timestamping the one pulse per second signal") and
// turns the latest fix into an ExternalFunc for the synchronizer's
// clock-validation step.
type GPSAttachment struct {
	node *kernel.Node
	gpu  int
	acc  timefmt.Duration
	rho  int64

	haveFix  bool
	labelSec int64
	local    timefmt.Stamp
	maxAge   timefmt.Duration
	pulses   uint64

	// Rate measurement against UTC: the pps train is a rate reference
	// (label seconds vs local elapsed), the one reference that lets the
	// deterioration bound shrink legitimately — relative ensemble rate
	// synchronization alone cannot bound drift versus UTC.
	rateHist    []ppsRecord
	rateBaseMin int64 // baseline seconds before a rate estimate is valid
}

type ppsRecord struct {
	label int64
	local timefmt.Stamp
}

// AttachGPS prepares a GPS coupling on GPU unit gpuIndex. accuracy is
// the receiver's claimed bound on the pulse error; rhoPPB the local
// drift bound used to age fixes. Wire the returned attachment's OnPulse
// into a gps.Receiver and its Interval into the Synchronizer:
//
//	att := clocksync.AttachGPS(node, 0, acc, rho)
//	gps.New(sim, cfg, label, att.OnPulse)
//	sy.AddExternal(att.Interval)
func AttachGPS(node *kernel.Node, gpuIndex int, accuracy timefmt.Duration, rhoPPB int64) *GPSAttachment {
	return &GPSAttachment{
		node:        node,
		gpu:         gpuIndex,
		acc:         accuracy,
		rho:         rhoPPB,
		maxAge:      timefmt.DurationFromSeconds(10),
		rateBaseMin: 16,
	}
}

// OnPulse feeds one 1pps event into the GPU unit. The hardware samples
// the local clock (with the synchronizer-stage uncertainty); the serial
// time-of-day label arrives out of band and is paired here, as the
// off-chip software of the paper does.
func (g *GPSAttachment) OnPulse(p gps.Pulse) {
	if !p.Valid {
		return
	}
	st, ok := g.node.U.GPU(g.gpu).Trigger(true)
	if !ok {
		return
	}
	g.haveFix = true
	g.labelSec = p.LabelSec
	g.local = st
	g.pulses++
	g.rateHist = append(g.rateHist, ppsRecord{label: p.LabelSec, local: st})
	if max := int(2*g.rateBaseMin) + 4; len(g.rateHist) > max {
		g.rateHist = g.rateHist[len(g.rateHist)-max:]
	}
}

// RateVsUTC estimates the local clock's rate offset from UTC in ppb
// (positive = clock fast), from the pps train over a sliding baseline
// of at least rateBaseMin seconds. ok is false until enough pulses
// accumulated. Measurement error ≈ 2·(sawtooth + 1/fosc)/baseline,
// a few tens of ppb.
func (g *GPSAttachment) RateVsUTC() (ppb int64, ok bool) {
	n := len(g.rateHist)
	if n < 2 {
		return 0, false
	}
	newest := g.rateHist[n-1]
	// The oldest record at least rateBaseMin seconds back.
	base := g.rateHist[0]
	if newest.label-base.label < g.rateBaseMin {
		return 0, false
	}
	dLabel := newest.label - base.label // true elapsed seconds
	dLocal := newest.local.Sub(base.local).Seconds()
	return int64((dLocal - float64(dLabel)) / float64(dLabel) * 1e9), true
}

// Pulses reports accepted pulses.
func (g *GPSAttachment) Pulses() uint64 { return g.pulses }

// Interval is the ExternalFunc: the external estimate of what the local
// clock should read now, with the receiver's claimed accuracy aged by
// local drift since the pulse.
func (g *GPSAttachment) Interval(now timefmt.Stamp) (interval.Interval, bool) {
	if !g.haveFix {
		return interval.Interval{}, false
	}
	dt := now.Sub(g.local)
	if dt < 0 || dt > g.maxAge {
		return interval.Interval{}, false
	}
	ref := timefmt.Stamp(g.labelSec << 24).Add(dt)
	unc := g.acc + interval.DriftDeterioration(dt, g.rho) + 2
	return interval.New(ref, unc, unc), true
}
