package clocksync

import (
	"runtime"
	"testing"

	"ntisim/internal/network"
	"ntisim/internal/sim"
	"ntisim/internal/timefmt"
)

// TestSteadyStateAllocationsPerRound pins the per-round heap footprint
// of a running synchronizer: after warm-up the converge hot path reuses
// the Fuser scratch, the interval/id slices, and the pooled per-round
// peer maps, so a steady-state round should allocate (almost) nothing.
// The budget below covers the whole stack — kernel events, CSP frames,
// medium, synchronizer — per (node × round); regressions that
// reintroduce per-round garbage trip it immediately.
func TestSteadyStateAllocationsPerRound(t *testing.T) {
	s := sim.New(3)
	med := network.NewMedium(s, network.DefaultLAN())
	const nodes = 3
	syncs := make([]*Synchronizer, nodes)
	for i := 0; i < nodes; i++ {
		n, u := mkNode(s, med, uint16(i))
		syncs[i] = New(n, UTCSUClock{UTCSU: u}, Params{
			DelayMin: timefmt.DurationFromSeconds(40e-6),
			DelayMax: timefmt.DurationFromSeconds(120e-6),
		})
		syncs[i].Start()
	}
	// Warm up: initial synchronization, scratch growth, pool fill.
	s.RunUntil(20)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	const windowS = 30
	s.RunUntil(20 + windowS)
	runtime.ReadMemStats(&after)

	for _, sy := range syncs {
		if sy.Stats().Rounds < 40 {
			t.Fatalf("synchronizer ran only %d rounds; window not steady-state", sy.Stats().Rounds)
		}
	}
	// One round per second per node over the measured window.
	windowRounds := uint64(nodes * windowS)
	perRound := float64(after.Mallocs-before.Mallocs) / float64(windowRounds)
	t.Logf("%d mallocs over ~%d node-rounds (%.1f per node-round)",
		after.Mallocs-before.Mallocs, windowRounds, perRound)
	// ~11.1 measured after pooling the kernel's per-frame rx jobs
	// (previously ~15.3 with a 22 budget after the stamp-move and
	// duty-timer method-value caches); 16 keeps headroom for platform
	// variance without readmitting any of those closures.
	const budget = 16.0
	if perRound > budget {
		t.Errorf("steady-state allocations = %.1f per node-round, budget %.0f", perRound, budget)
	}
}
