package clocksync

import (
	"ntisim/internal/csp"
	"ntisim/internal/discipline"
	"ntisim/internal/interval"
	"ntisim/internal/kernel"
	"ntisim/internal/network"
	"ntisim/internal/telemetry"
	"ntisim/internal/timefmt"
	"ntisim/internal/trace"
)

// ConvergeFunc fuses the preprocessed accuracy intervals of one round
// into the node's improved interval, tolerating up to f faulty inputs.
type ConvergeFunc func(ivs []interval.Interval, f int) (interval.Interval, bool)

// Params configures a Synchronizer.
type Params struct {
	// RoundPeriod is P: CSPs are broadcast when C(t) = kP.
	RoundPeriod timefmt.Duration
	// ComputeDelay is Δ: the convergence function is applied at kP+Δ.
	// It must exceed the worst-case CSP end-to-end latency.
	ComputeDelay timefmt.Duration
	// F is the number of faulty nodes to tolerate.
	F int
	// Convergence defaults to interval.OrthogonalAccuracy.
	Convergence ConvergeFunc
	// Discipline selects the clock-discipline algorithm each node runs
	// (see internal/discipline): the factory is invoked once per
	// synchronizer, so one Params value can serve a whole cluster. It
	// generalizes Convergence — when nil, the synchronizer wraps
	// Convergence (or, when that is also unset, the allocation-free
	// orthogonal-accuracy baseline) as the discipline. Factories must
	// be pure; campaign clones share them.
	Discipline discipline.Factory
	// DelayMin/DelayMax bound the true delay between the peers'
	// timestamping points, from a priori knowledge or MeasureDelay.
	DelayMin, DelayMax timefmt.Duration
	// RhoPPB is the a priori drift bound used for drift compensation and
	// ACU deterioration.
	RhoPPB int64
	// AmortSpeedPPM is the continuous-amortization speed.
	AmortSpeedPPM int64
	// StepThreshold: corrections beyond it use StepTo instead of
	// amortization (initial synchronization). Default 100 ms.
	StepThreshold timefmt.Duration
	// StaggerSlot offsets each node's broadcast by node-id·slot within
	// the round, de-bursting the medium and the receivers' stamp-move
	// ISRs. 0 disables (all nodes broadcast at kP, as in the generic
	// algorithm; the medium then serializes them).
	StaggerSlot timefmt.Duration
	// InitAlpha is the accuracy loaded at Start.
	InitAlpha timefmt.Duration
	// MarginGranules is added to each accuracy on every resynchronization
	// to cover reading/rounding granularity. Default 2.
	MarginGranules timefmt.Duration

	// TrustExternal bypasses interval-based clock validation and adopts
	// external intervals unconditionally — the "questionable undertaking
	// of always trusting the output of a GPS receiver" (paper §5), kept
	// as the naive-trust contrast for experiment E5.
	TrustExternal bool

	// SourceF enables multi-source trust (G-SINC direction): instead of
	// validating each external reference sequentially, the node fuses
	// all of its sources' intervals with fault-tolerant combining
	// (Marzullo edges + fault-tolerant midpoint over the per-source
	// intervals, the zero-alloc Fuser path) tolerating up to SourceF
	// arbitrarily-faulty sources by construction, and sources whose
	// intervals persistently disagree with the node's own result are
	// quarantined for a while. 0 keeps the classic sequential
	// validation path. Ignored under TrustExternal.
	SourceF int

	// RateSync enables the rate-synchronization layer [Scho97].
	RateSync bool
	// RateBaselineRounds is the measurement baseline in rounds; longer
	// baselines average out the ε-induced measurement noise. Default 16.
	RateBaselineRounds int
	// RateRhoFloorPPB bounds how far the dynamic drift bound may shrink
	// once rate synchronization has converged. Default 50 ppb.
	RateRhoFloorPPB int64
}

// withDefaults fills in zero fields.
func (p Params) withDefaults() Params {
	if p.RoundPeriod == 0 {
		p.RoundPeriod = timefmt.DurationFromSeconds(1)
	}
	if p.ComputeDelay == 0 {
		p.ComputeDelay = p.RoundPeriod / 4
	}
	if p.Convergence == nil {
		p.Convergence = interval.OrthogonalAccuracy
	}
	if p.DelayMax == 0 {
		p.DelayMax = timefmt.DurationFromSeconds(500e-6)
	}
	if p.RhoPPB == 0 {
		p.RhoPPB = 2000
	}
	if p.AmortSpeedPPM == 0 {
		p.AmortSpeedPPM = 5000
	}
	if p.StepThreshold == 0 {
		p.StepThreshold = timefmt.DurationFromSeconds(100e-3)
	}
	if p.InitAlpha == 0 {
		p.InitAlpha = timefmt.DurationFromSeconds(300e-6)
	}
	if p.MarginGranules == 0 {
		p.MarginGranules = 2
	}
	if p.RateBaselineRounds == 0 {
		p.RateBaselineRounds = 16
	}
	if p.RateRhoFloorPPB == 0 {
		p.RateRhoFloorPPB = 50
	}
	return p
}

// ExternalFunc supplies an external (e.g. GPS) accuracy interval,
// expressed on the local "now" axis: given the local clock reading now,
// it returns an interval whose Ref is the external estimate of what the
// clock *should* read now. ok=false when no usable fix exists.
type ExternalFunc func(now timefmt.Stamp) (interval.Interval, bool)

// Stats accumulates per-node synchronization statistics.
type Stats struct {
	Rounds            uint64
	CSPsSent          uint64
	CSPsUsed          uint64
	ConvergenceFailed uint64
	Steps             uint64
	Amortizations     uint64
	ExternalAccepted  uint64
	PrimaryAccepted   uint64
	PrimaryRejected   uint64
	ExternalRejected  uint64
	// SourcesRejected counts quarantine entries under multi-source
	// trust: a reference source whose intervals kept disagreeing with
	// the validated result was benched for quarantineRounds.
	SourcesRejected uint64
	// RateCommands counts frequency adjustments commanded by the
	// discipline (distinct from the [Scho97] rate-synchronization
	// layer's own adjustments).
	RateCommands   uint64
	LastCorrection timefmt.Duration
}

// Synchronizer runs the interval-based algorithm on one node.
type Synchronizer struct {
	node *kernel.Node
	clk  Clock
	p    Params

	// disc is the clock discipline this node runs (never nil after
	// New); discID is its stable trace wire ID.
	disc   discipline.Discipline
	discID int

	round     uint32
	collected map[uint32]map[uint16]peerEntry
	rate      *rateSync
	externals []ExternalFunc
	// Multi-source trust state (Params.SourceF > 0): per-source
	// quarantine tracking, the scratch interval set handed to the
	// fault-tolerant source combiner, and its zero-alloc fuser.
	srcStates   []sourceState
	scratchSrcs []interval.Interval
	srcFuser    interval.Fuser
	stats       Stats
	running     bool
	bcastTm     Timer
	compTm      Timer

	// Per-round scratch, reused across converge calls so the steady
	// state allocates nothing: the interval set handed to the
	// discipline, the primary subset, the sorted peer-id order, and a
	// free list of drained per-round collection maps.
	scratchIvs   []interval.Interval
	scratchPrims []interval.Interval
	scratchIDs   []uint16
	freeEntries  []map[uint16]peerEntry
	// primaryUntil: the node advertises FlagPrimary while its round
	// counter is below this (it recently validated an external source).
	primaryUntil uint32
	// rhoNow is the drift bound in effect: the a priori RhoPPB until
	// rate synchronization derives a tighter dynamic bound (§2: bounds
	// "measured — even controlled — dynamically"). It bounds *relative*
	// ensemble drift, so it is applied to peer-interval compensation;
	// the ACU deterioration may use it only while the node's interval is
	// ensemble-framed — once UTC anchoring is in play (own externals or
	// visible primaries) deterioration falls back to the a priori bound,
	// because rate synchronization to the ensemble cannot bound drift
	// versus UTC.
	rhoNow int64
	// primarySeenRound is the last round in which a primary CSP was
	// collected.
	primarySeenRound uint32

	tr *trace.Tracer

	// Telemetry handles (SetTelemetry); nil-receiver no-ops when off.
	tmRounds    *telemetry.Counter
	tmFailed    *telemetry.Counter
	tmRateCmds  *telemetry.Counter
	tmSrcRej    *telemetry.Counter
	tmWidth     *telemetry.Histogram
	tmCorrOffst *telemetry.Histogram
}

// SetTracer attaches an event tracer (nil detaches). The synchronizer
// emits round-start, round-update, round-fail and rate-adjust records.
func (sy *Synchronizer) SetTracer(tr *trace.Tracer) { sy.tr = tr }

// SetTelemetry registers the sync-layer metrics on r: round and
// convergence-failure counters, discipline rate commands, the fused
// accuracy-interval width histogram (post-validation, the quantity the
// paper's precision bound is about) and the applied-correction magnitude
// histogram. A nil r detaches.
func (sy *Synchronizer) SetTelemetry(r *telemetry.Registry) {
	if r == nil {
		sy.tmRounds, sy.tmFailed, sy.tmRateCmds, sy.tmSrcRej = nil, nil, nil, nil
		sy.tmWidth, sy.tmCorrOffst = nil, nil
		return
	}
	sy.tmRounds = r.Counter("sync.rounds")
	sy.tmFailed = r.Counter(telemetry.MetricConvergenceFailed)
	sy.tmRateCmds = r.Counter("sync.rate_commands")
	if sy.p.SourceF > 0 {
		// Registered only on multi-source nodes: telemetry snapshots
		// serialize every registered metric, so an unconditional
		// registration would change legacy snapshot artifacts.
		sy.tmSrcRej = r.Counter(MetricSourcesRejected)
	}
	sy.tmWidth = r.Histogram("sync.fused_width_s")
	sy.tmCorrOffst = r.Histogram("sync.correction_s")
}

type peerEntry struct {
	iv      interval.Interval // real-time bounds at rx instant, local axis
	rx      timefmt.Stamp     // local clock at rx instant
	primary bool              // sender is anchored to a validated UTC source
}

// New builds a synchronizer for a node steering clk (normally the
// node's own UTCSU wrapped in UTCSUClock) and registers itself as the
// node's CI handler.
func New(node *kernel.Node, clk Clock, p Params) *Synchronizer {
	userConv, userDisc := p.Convergence, p.Discipline
	sy := &Synchronizer{
		node:      node,
		clk:       clk,
		p:         p.withDefaults(),
		collected: make(map[uint32]map[uint16]peerEntry),
	}
	switch {
	case userDisc != nil:
		sy.disc = userDisc()
	case userConv != nil:
		// A bespoke convergence function (e.g. the E14 ablations) rides
		// as a wrapped interval discipline.
		sy.disc = discipline.WrapConverge("", discipline.ConvergeFunc(userConv))
	default:
		// The default is the paper's algorithm through the
		// allocation-free fast path (identical results to
		// interval.OrthogonalAccuracy).
		sy.disc = discipline.NewInterval()
	}
	sy.discID = discipline.ID(sy.disc.Name())
	sy.rhoNow = sy.p.RhoPPB
	if sy.p.RateSync {
		sy.rate = newRateSync(sy.p)
	}
	node.OnCSP(sy.onArrival)
	return sy
}

// Discipline returns the clock discipline this synchronizer runs.
func (sy *Synchronizer) Discipline() discipline.Discipline { return sy.disc }

// Stats returns a copy of the accumulated statistics.
func (sy *Synchronizer) Stats() Stats { return sy.stats }

// Params returns the effective (defaulted) parameters.
func (sy *Synchronizer) Params() Params { return sy.p }

// ReinstallHandler re-registers the synchronizer as the node's CI
// handler after a MeasureDelay campaign temporarily took it over.
func (sy *Synchronizer) ReinstallHandler() { sy.node.OnCSP(sy.onArrival) }

// HandleArrival feeds one CI arrival into the synchronizer — for
// callers that interpose their own CI handler (e.g. to intercept probe
// packets) and forward the rest.
func (sy *Synchronizer) HandleArrival(ar kernel.Arrival) { sy.onArrival(ar) }

// SetDelayBounds updates the delay-compensation bounds (normally from a
// MeasureDelay campaign) before Start.
func (sy *Synchronizer) SetDelayBounds(b DelayBounds) {
	sy.p.DelayMin, sy.p.DelayMax = b.Min, b.Max
}

// AddExternal registers an external time source consulted at every
// resynchronization through interval-based clock validation.
func (sy *Synchronizer) AddExternal(fn ExternalFunc) {
	sy.externals = append(sy.externals, fn)
}

// Start initializes the interval clock and schedules the first round.
// The clock is left untouched (nodes start unsynchronized); only the
// accuracy registers and deterioration are loaded.
func (sy *Synchronizer) Start() {
	if sy.running {
		return
	}
	sy.running = true
	sy.clk.SetDriftBoundPPB(sy.p.RhoPPB, sy.p.RhoPPB)
	sy.clk.SetAlpha(sy.p.InitAlpha, sy.p.InitAlpha)
	now := sy.clk.Now()
	k := uint32(now/timefmt.Stamp(sy.p.RoundPeriod)) + 1
	sy.round = k
	sy.armBroadcast()
}

// Stop cancels the round timers.
func (sy *Synchronizer) Stop() {
	sy.running = false
	if sy.bcastTm != nil {
		sy.bcastTm.Cancel()
	}
	if sy.compTm != nil {
		sy.compTm.Cancel()
	}
}

func (sy *Synchronizer) roundStart(k uint32) timefmt.Stamp {
	return timefmt.Stamp(k) * timefmt.Stamp(sy.p.RoundPeriod)
}

func (sy *Synchronizer) armBroadcast() {
	k := sy.round
	at := sy.roundStart(k).Add(sy.p.StaggerSlot * timefmt.Duration(sy.node.ID))
	sy.bcastTm = sy.clk.DutyAt(at, func() { sy.broadcast(k) })
}

// broadcast sends this round's CSP and arms the convergence timer. The
// transmit time/accuracy stamp is inserted by the NTI hardware when the
// COMCO fetches the packet.
func (sy *Synchronizer) broadcast(k uint32) {
	if !sy.running {
		return
	}
	p := csp.Packet{Kind: csp.KindCSP, Round: k, RatePPB: int32(sy.clk.RatePPB())}
	if k <= sy.primaryUntil {
		p.Flags |= csp.FlagPrimary
	}
	if sy.tr != nil {
		sy.tr.Emit(trace.KindRoundStart, sy.node.Sim.Now(), int(sy.node.ID), 0, uint64(k), 0, 0)
	}
	sy.node.SendCSP(p, network.Broadcast)
	sy.stats.CSPsSent++
	sy.compTm = sy.clk.DutyAt(sy.roundStart(k).Add(sy.p.ComputeDelay), func() { sy.converge(k) })
	sy.round = k + 1
	sy.armBroadcast()
}

// onArrival preprocesses a received CSP (paper §2, step 2): rebuild the
// sender's interval from the hardware stamps, apply delay compensation,
// and record it together with the local receive stamp for later drift
// compensation.
func (sy *Synchronizer) onArrival(ar kernel.Arrival) {
	if ar.Pkt.Kind != csp.KindCSP || !ar.StampOK {
		return
	}
	tx, ok := ar.Pkt.TxStamp()
	if !ok {
		return // corrupted time information
	}
	// The device's timestamp granularity applies to both stamps (and
	// costs up to one granule of containment; compensate on the low
	// side).
	tx = sy.clk.QuantizeStamp(tx)
	rx := sy.clk.QuantizeStamp(ar.RxStamp)
	g := timefmt.Duration(1)
	if gs := sy.clk.GranuleSeconds(); gs > timefmt.Granule {
		g = timefmt.DurationFromSeconds(gs)
	}
	iv := interval.New(tx, ar.Pkt.TxAlphaM.Duration()+g, ar.Pkt.TxAlphaP.Duration())
	iv = iv.DelayCompensate(sy.p.DelayMin, sy.p.DelayMax)
	m := sy.collected[ar.Pkt.Round]
	if m == nil {
		if n := len(sy.freeEntries); n > 0 {
			m = sy.freeEntries[n-1]
			sy.freeEntries = sy.freeEntries[:n-1]
		} else {
			m = make(map[uint16]peerEntry)
		}
		sy.collected[ar.Pkt.Round] = m
	}
	m[ar.Pkt.Node] = peerEntry{iv: iv, rx: rx, primary: ar.Pkt.Flags&csp.FlagPrimary != 0}
	if sy.rate != nil {
		sy.rate.observe(ar.Pkt.Node, ar.Pkt.Round, tx, rx)
	}
}

// recycle clears a drained per-round collection map and parks it for
// reuse (bounded, so transient round pile-ups don't pin memory).
func (sy *Synchronizer) recycle(m map[uint16]peerEntry) {
	if m == nil || len(sy.freeEntries) >= 4 {
		return
	}
	clear(m)
	sy.freeEntries = append(sy.freeEntries, m)
}

// sortU16 is an in-place insertion sort: the per-round peer sets are
// small and this keeps the hot path free of sort.Slice's closure
// allocation.
func sortU16(a []uint16) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// converge runs step 3 of the generic algorithm at kP+Δ.
func (sy *Synchronizer) converge(k uint32) {
	if !sy.running {
		return
	}
	sy.stats.Rounds++
	sy.tmRounds.Inc()
	now := sy.clk.Now()
	am, ap := sy.clk.Alpha()

	entries := sy.collected[k]
	delete(sy.collected, k)
	// Drop stale rounds that never converged (missed compute windows).
	for r, m := range sy.collected {
		if r+2 < sy.round {
			delete(sy.collected, r)
			sy.recycle(m)
		}
	}

	ivs := sy.scratchIvs[:0]
	prims := sy.scratchPrims[:0]
	// Own interval: the local interval clock as of now.
	ivs = append(ivs, interval.New(now, am.Duration(), ap.Duration()))
	// Peers in ascending node-id order: the interval convergence
	// functions are order-insensitive, but windowed disciplines must
	// see a deterministic sequence regardless of map iteration order.
	ids := sy.scratchIDs[:0]
	for id := range entries {
		ids = append(ids, id)
	}
	sortU16(ids)
	sy.scratchIDs = ids
	for _, id := range ids {
		e := entries[id]
		dt := now.Sub(e.rx)
		if dt < 0 {
			continue // clock stepped across the reception; discard
		}
		iv := e.iv.DriftCompensate(dt, sy.rhoNow)
		ivs = append(ivs, iv)
		if e.primary {
			prims = append(prims, iv)
			sy.primarySeenRound = k
		}
		sy.stats.CSPsUsed++
	}
	sy.recycle(entries)
	sy.scratchIvs = ivs
	sy.scratchPrims = prims

	act, ok := sy.disc.Step(discipline.Sample{Round: k, Now: now, Intervals: ivs, F: sy.p.F})
	if !ok {
		sy.stats.ConvergenceFailed++
		sy.tmFailed.Inc()
		if sy.tr != nil {
			sy.tr.Emit(trace.KindRoundFail, sy.node.Sim.Now(), int(sy.node.ID), 0, uint64(k), uint64(len(ivs)), 0)
		}
		return
	}
	out := act.Interval
	if sy.tr != nil {
		// The discipline decision record: which filter turned this
		// round's len(ivs) samples into which proposed correction —
		// before validation possibly overrides it.
		sy.tr.Emit(trace.KindDiscipline, sy.node.Sim.Now(), int(sy.node.ID), 0,
			uint64(k), uint64(sy.discID), out.Ref.Sub(now).Seconds())
	}

	// Interval-based clock validation [Sch94], two tiers:
	//
	//  1. Remote primaries: CSPs flagged as UTC-anchored carry tight
	//     intervals; their fault-tolerant fusion is accepted only if
	//     consistent with the internal convergence result. This is how
	//     UTC accuracy propagates from few GPS-equipped nodes to the
	//     whole ensemble without trusting any single receiver.
	//  2. Local external sources (own GPS receivers), validated the
	//     same way against the result so far.
	if len(prims) > 0 {
		fp := sy.p.F
		if fp >= len(prims) {
			fp = len(prims) - 1
		}
		if pm, okP := interval.Marzullo(prims, fp); okP {
			validated, accepted := interval.Validate(pm, out)
			if accepted {
				sy.stats.PrimaryAccepted++
				out = validated
			} else {
				sy.stats.PrimaryRejected++
			}
		}
	}
	externalOK := false
	if sy.p.SourceF > 0 && !sy.p.TrustExternal && len(sy.externals) > 0 {
		// Multi-source trust: fault-tolerant combining over all source
		// intervals at once (multisource.go) instead of sequential
		// per-source validation.
		out, externalOK = sy.fuseSources(now, out, k)
	} else {
		for _, ext := range sy.externals {
			eIv, eOK := ext(now)
			if !eOK {
				continue
			}
			if sy.p.TrustExternal {
				// Naive trust: adopt the receiver's word unconditionally.
				sy.stats.ExternalAccepted++
				externalOK = true
				out = eIv
				continue
			}
			validated, accepted := interval.Validate(eIv, out)
			if accepted {
				sy.stats.ExternalAccepted++
				externalOK = true
				out = validated
			} else {
				sy.stats.ExternalRejected++
			}
		}
	}
	if externalOK {
		// Advertise primary status for the next couple of rounds.
		sy.primaryUntil = sy.round + 2
	}

	sy.tmWidth.Observe(out.Hi().Sub(out.Lo()).Seconds())
	sy.enforce(now, out)
	sy.tmCorrOffst.Observe(sy.stats.LastCorrection.Abs().Seconds())
	if sy.tr != nil {
		sy.tr.Emit(trace.KindRoundUpdate, sy.node.Sim.Now(), int(sy.node.ID), 0,
			uint64(k), uint64(len(ivs)), sy.stats.LastCorrection.Seconds())
	}

	if act.RateDeltaPPB != 0 {
		sy.clk.SetRatePPB(sy.clk.RatePPB() + act.RateDeltaPPB)
		sy.stats.RateCommands++
		sy.tmRateCmds.Inc()
		if sy.rate != nil {
			// The rate-sync epoch's stamps now straddle a rate change;
			// restart so its next estimate measures one rate, not two.
			sy.rate.restart()
		}
		if sy.tr != nil {
			sy.tr.Emit(trace.KindRateAdjust, sy.node.Sim.Now(), int(sy.node.ID), 0,
				uint64(k), uint64(sy.discID), float64(act.RateDeltaPPB))
		}
	}

	if sy.rate != nil {
		if corr, rho, ok := sy.rate.apply(k); ok {
			sy.clk.SetRatePPB(sy.clk.RatePPB() + corr)
			sy.rhoNow = rho
			acu := sy.acuRho(k)
			sy.clk.SetDriftBoundPPB(acu, acu)
			if sy.tr != nil {
				sy.tr.Emit(trace.KindRateAdjust, sy.node.Sim.Now(), int(sy.node.ID), 0,
					uint64(k), 0, float64(corr))
			}
		}
	}
}

// acuRho selects the deterioration bound the ACU may use at round k:
// the dynamic (relative) bound only while the node is purely
// ensemble-framed; the honest a priori bound while UTC anchoring is
// active.
func (sy *Synchronizer) acuRho(k uint32) int64 {
	if len(sy.externals) > 0 || (sy.primarySeenRound != 0 && k-sy.primarySeenRound < 4) {
		return sy.p.RhoPPB
	}
	return sy.rhoNow
}

// enforce applies the improved interval to the hardware: the accuracy
// registers are loaded so the interval's real-time edges are preserved
// around the *current* clock value, then the reference correction is
// amortized (the ACU's amortization coupling walks the accuracies back
// as the clock moves; see utcsu.acu).
func (sy *Synchronizer) enforce(now timefmt.Stamp, out interval.Interval) {
	cur := sy.clk.Now() // may differ from `now` by the compute time
	drift := interval.DriftDeterioration(cur.Sub(now), sy.rhoNow)
	lo := out.Lo().Add(-drift - sy.p.MarginGranules)
	hi := out.Hi().Add(drift + sy.p.MarginGranules)
	delta := out.Ref.Sub(cur)
	sy.stats.LastCorrection = delta
	if delta.Abs() >= sy.p.StepThreshold {
		// Initial synchronization: jump, then centre the accuracies.
		sy.clk.StepTo(out.Ref)
		sy.clk.SetAlpha(out.Ref.Sub(lo), hi.Sub(out.Ref))
		sy.stats.Steps++
		return
	}
	sy.clk.SetAlpha(cur.Sub(lo), hi.Sub(cur))
	sy.clk.Amortize(delta, sy.p.AmortSpeedPPM)
	sy.stats.Amortizations++
}
