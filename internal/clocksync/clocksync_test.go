package clocksync

import (
	"math"
	"testing"

	"ntisim/internal/comco"
	"ntisim/internal/cpu"
	"ntisim/internal/gps"
	"ntisim/internal/kernel"
	"ntisim/internal/network"
	"ntisim/internal/oscillator"
	"ntisim/internal/sim"
	"ntisim/internal/timefmt"
	"ntisim/internal/utcsu"
)

func mkNode(s *sim.Simulator, med *network.Medium, id uint16) (*kernel.Node, *utcsu.UTCSU) {
	o := oscillator.New(s, oscillator.TCXO(10e6), string(rune('A'+id)))
	u := utcsu.New(s, utcsu.Config{Osc: o})
	cfg := kernel.Config{CPU: cpu.DefaultMVME162(), Mode: kernel.ModeNTI, UseRxBaseLatch: true}
	return kernel.NewNode(s, id, u, med, cfg, comco.Default82596()), u
}

func TestParamsDefaults(t *testing.T) {
	p := Params{}.withDefaults()
	if p.RoundPeriod != timefmt.DurationFromSeconds(1) {
		t.Errorf("round period %v", p.RoundPeriod)
	}
	if p.ComputeDelay != p.RoundPeriod/4 {
		t.Errorf("compute delay %v", p.ComputeDelay)
	}
	if p.Convergence == nil || p.RhoPPB == 0 || p.AmortSpeedPPM == 0 {
		t.Error("defaults incomplete")
	}
	if p.RateBaselineRounds == 0 || p.RateRhoFloorPPB == 0 {
		t.Error("rate defaults incomplete")
	}
}

func TestMeasureDelayBoundsContainTruth(t *testing.T) {
	s := sim.New(1)
	med := network.NewMedium(s, network.DefaultLAN())
	a, _ := mkNode(s, med, 0)
	b, _ := mkNode(s, med, 1)
	b.EnableRTTResponder()
	var got DelayBounds
	done := false
	MeasureDelay(a, b, 2000, 16, func(db DelayBounds) { got = db; done = true })
	s.RunUntil(20)
	if !done {
		t.Fatal("measurement never completed")
	}
	if got.Samples < 16 {
		t.Errorf("samples = %d", got.Samples)
	}
	// The true trigger-to-trigger one-way delay for 64-byte frames at
	// 10 Mb/s is ≈59 µs: serialization (57.6 µs) − tx FIFO-prefill lead
	// (~2 µs) + propagation + rx arbitration/DMA (~3 µs). The measured
	// bounds must bracket that region tightly.
	mid := (got.Min.Seconds() + got.Max.Seconds()) / 2
	if mid < 50e-6 || mid > 70e-6 {
		t.Errorf("bounds [%v, %v] centred implausibly", got.Min, got.Max)
	}
	if got.Max < got.Min || got.Max.Seconds()-got.Min.Seconds() > 10e-6 {
		t.Errorf("bounds too loose: [%v, %v]", got.Min, got.Max)
	}
}

func TestSynchronizerLifecycle(t *testing.T) {
	s := sim.New(2)
	med := network.NewMedium(s, network.DefaultLAN())
	nodes := make([]*kernel.Node, 3)
	syncs := make([]*Synchronizer, 3)
	for i := range nodes {
		n, u := mkNode(s, med, uint16(i))
		nodes[i] = n
		syncs[i] = New(n, UTCSUClock{UTCSU: u}, Params{
			DelayMin: timefmt.DurationFromSeconds(40e-6),
			DelayMax: timefmt.DurationFromSeconds(120e-6),
		})
	}
	for _, sy := range syncs {
		sy.Start()
		sy.Start() // double-start is a no-op
	}
	s.RunUntil(10)
	st := syncs[0].Stats()
	if st.Rounds < 8 || st.CSPsSent < 8 {
		t.Errorf("rounds=%d sent=%d", st.Rounds, st.CSPsSent)
	}
	if st.CSPsUsed == 0 {
		t.Error("no CSPs used")
	}
	syncs[0].Stop()
	rounds := syncs[0].Stats().Rounds
	s.RunUntil(20)
	if syncs[0].Stats().Rounds != rounds {
		t.Error("rounds after Stop")
	}
	// Other nodes keep going.
	if syncs[1].Stats().Rounds < 15 {
		t.Errorf("peer stalled after node 0 stopped: %d", syncs[1].Stats().Rounds)
	}
}

func TestRateSyncEpochMath(t *testing.T) {
	p := Params{RateBaselineRounds: 8, RhoPPB: 3000, RateRhoFloorPPB: 50, F: 0}.withDefaults()
	r := newRateSync(p)
	st := func(s float64) timefmt.Stamp { return timefmt.Stamp(timefmt.DurationFromSeconds(s)) }
	// Peer 1 runs 1000 ppb fast relative to us: over 8 rounds of 1 s,
	// its tx stamps gain 8 µs on our rx stamps.
	for k := uint32(1); k <= 9; k++ {
		tSec := float64(k)
		r.observe(1, k, st(tSec*(1+1000e-9)), st(tSec))
	}
	corr, rho, ok := r.apply(9)
	if !ok {
		t.Fatal("no correction at epoch boundary")
	}
	// FTM of {0, +1000}/2 with gain 1/2 → +250 ppb.
	if corr < 150 || corr > 350 {
		t.Errorf("correction %d ppb, want ~250", corr)
	}
	if rho < 50 || rho > 3000 {
		t.Errorf("rho %d out of range", rho)
	}
	// The window restarted: immediate re-apply yields nothing.
	if _, _, ok := r.apply(10); ok {
		t.Error("apply should wait for a fresh epoch")
	}
}

func TestRateSyncIgnoresShortBaselines(t *testing.T) {
	p := Params{RateBaselineRounds: 8}.withDefaults()
	r := newRateSync(p)
	st := func(s float64) timefmt.Stamp { return timefmt.Stamp(timefmt.DurationFromSeconds(s)) }
	r.observe(1, 1, st(1), st(1))
	r.observe(1, 2, st(2), st(2))
	if _, _, ok := r.apply(9); ok {
		t.Error("two-round baseline must not produce a correction")
	}
}

func TestRateSyncClampsInsaneEstimates(t *testing.T) {
	p := Params{RateBaselineRounds: 4, RhoPPB: 2000, F: 0}.withDefaults()
	r := newRateSync(p)
	st := func(s float64) timefmt.Stamp { return timefmt.Stamp(timefmt.DurationFromSeconds(s)) }
	// A bogus peer claiming 1% rate offset.
	for k := uint32(1); k <= 5; k++ {
		tSec := float64(k)
		r.observe(1, k, st(tSec*1.01), st(tSec))
	}
	corr, _, ok := r.apply(5)
	if !ok {
		t.Fatal("no correction")
	}
	if corr > 2000 || corr < -2000 {
		t.Errorf("correction %d not clamped to rho", corr)
	}
}

func TestGPSAttachmentInterval(t *testing.T) {
	s := sim.New(3)
	med := network.NewMedium(s, network.DefaultLAN())
	node, u := mkNode(s, med, 0)
	att := AttachGPS(node, 0, timefmt.DurationFromSeconds(1e-6), 2000)
	if _, ok := att.Interval(u.Now()); ok {
		t.Error("interval before any pulse")
	}
	s.RunUntil(5.0)
	att.OnPulse(gps.Pulse{TrueTime: 5.0, LabelSec: 5, Valid: true})
	if att.Pulses() != 1 {
		t.Errorf("pulses = %d", att.Pulses())
	}
	s.RunUntil(5.5)
	iv, ok := att.Interval(u.Now())
	if !ok {
		t.Fatal("no interval after pulse")
	}
	// The local clock runs within ppm of true time from 0, so "what the
	// clock should read" is ~5.5 s and the clock reads ~5.5 s: the ref
	// error is the clock's own drift-accumulated offset (µs range).
	if d := math.Abs(iv.Ref.Seconds() - u.Now().Seconds()); d > 100e-6 {
		t.Errorf("external ref differs from clock by %v", d)
	}
	// Uncertainty: accuracy + ρ·0.5s ≈ 1µs + 1µs + margin.
	if iv.Minus.Seconds() < 1e-6 || iv.Minus.Seconds() > 10e-6 {
		t.Errorf("uncertainty %v", iv.Minus)
	}
}

func TestGPSAttachmentRejectsInvalidAndStale(t *testing.T) {
	s := sim.New(4)
	med := network.NewMedium(s, network.DefaultLAN())
	node, u := mkNode(s, med, 0)
	att := AttachGPS(node, 0, timefmt.DurationFromSeconds(1e-6), 2000)
	s.RunUntil(2)
	att.OnPulse(gps.Pulse{TrueTime: 2, LabelSec: 2, Valid: false})
	if att.Pulses() != 0 {
		t.Error("invalid pulse accepted")
	}
	att.OnPulse(gps.Pulse{TrueTime: 2, LabelSec: 2, Valid: true})
	s.RunUntil(30) // fix is now far older than maxAge
	if _, ok := att.Interval(u.Now()); ok {
		t.Error("stale fix should not produce an interval")
	}
}

func TestUTCSUClockInterface(t *testing.T) {
	s := sim.New(5)
	o := oscillator.New(s, oscillator.Ideal(10e6), "x")
	u := utcsu.New(s, utcsu.Config{Osc: o})
	var c Clock = UTCSUClock{UTCSU: u}
	if c.GranuleSeconds() != timefmt.Granule {
		t.Error("granule wrong")
	}
	fired := false
	tm := c.DutyAt(timefmt.Stamp(timefmt.DurationFromSeconds(0.5)), func() { fired = true })
	if !tm.Pending() {
		t.Error("timer not pending")
	}
	s.RunUntil(1)
	if !fired {
		t.Error("timer via interface did not fire")
	}
}

func TestTwoNodeSyncKeepsContainment(t *testing.T) {
	// End-to-end at the clocksync level: 2 nodes, intervals must contain
	// true time through rounds.
	s := sim.New(6)
	med := network.NewMedium(s, network.DefaultLAN())
	var syncs []*Synchronizer
	var units []*utcsu.UTCSU
	for i := 0; i < 2; i++ {
		n, u := mkNode(s, med, uint16(i))
		if i == 1 {
			n.EnableRTTResponder()
		}
		syncs = append(syncs, New(n, UTCSUClock{UTCSU: u}, Params{
			DelayMin: timefmt.DurationFromSeconds(40e-6),
			DelayMax: timefmt.DurationFromSeconds(120e-6),
		}))
		units = append(units, u)
	}
	for _, sy := range syncs {
		sy.Start()
	}
	for x := 5.0; x <= 60; x += 2.5 {
		s.RunUntil(x)
		for i, u := range units {
			snap := u.Snapshot()
			off := snap.Clock.Seconds() - snap.TrueTime
			lo := off - snap.AlphaMinus.Duration().Seconds()
			hi := off + snap.AlphaPlus.Duration().Seconds() + timefmt.Granule
			if lo > 0 || hi < 0 {
				t.Fatalf("node %d t=%v: containment broken [%v, %v]", i, x, lo, hi)
			}
		}
	}
}
