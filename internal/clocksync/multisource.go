package clocksync

import (
	"ntisim/internal/interval"
	"ntisim/internal/timefmt"
)

// Multi-source trust (Params.SourceF > 0): instead of validating each
// external reference sequentially — where a believable early liar can
// narrow the result before honest sources are heard — the node collects
// all of its sources' intervals and combines them with the
// fault-tolerant convergence function (Marzullo intersection edges,
// fault-tolerant-midpoint reference, on the zero-alloc Fuser). With
// 2f+1 sources of which at most f lie arbitrarily, the combined
// interval contains true time by construction [Marzullo's theorem], so
// a spoofed GNSS feed cannot steer the node while a majority of its
// references stay honest — the G-SINC property, applied at the
// reference-source tier.
//
// On top of the per-round combining, a cheap reputation filter: a
// source whose interval keeps failing interval-based validation against
// the node's own result for quarantineAfter consecutive rounds is
// benched for quarantineRounds (counted in Stats.SourcesRejected and
// the sync.sources_rejected telemetry counter). Quarantine keeps a
// persistent liar from dragging the fused midpoint around within the
// tolerance the intersection allows it.

// MetricSourcesRejected is the telemetry counter of quarantine entries
// under multi-source trust. It is registered only on nodes with
// SourceF > 0 so single-source snapshot streams keep their exact
// legacy metric set.
const MetricSourcesRejected = "sync.sources_rejected"

const (
	// quarantineAfter is the consecutive-rejection streak that benches
	// a source.
	quarantineAfter = 3
	// quarantineRounds is how many rounds a benched source sits out.
	quarantineRounds = 16
)

// sourceState is the per-reference-source reputation record.
type sourceState struct {
	rejectStreak     int
	quarantinedUntil uint32
}

// fuseSources runs the multi-source combining tier of round k against
// the internal convergence result `out`. It returns the (possibly
// improved) interval and whether any external evidence was accepted
// (which makes the node advertise FlagPrimary, exactly like the
// sequential path).
func (sy *Synchronizer) fuseSources(now timefmt.Stamp, out interval.Interval, k uint32) (interval.Interval, bool) {
	if sy.srcStates == nil {
		sy.srcStates = make([]sourceState, len(sy.externals))
	}
	ivs := sy.scratchSrcs[:0]
	for i, ext := range sy.externals {
		st := &sy.srcStates[i]
		eIv, eOK := ext(now)
		if !eOK {
			// No fix is not evidence of lying (outages are benign);
			// the streak neither grows nor resets.
			continue
		}
		if _, ok := interval.Validate(eIv, out); ok {
			st.rejectStreak = 0
		} else {
			st.rejectStreak++
			if st.rejectStreak >= quarantineAfter && k >= st.quarantinedUntil {
				st.quarantinedUntil = k + quarantineRounds
				sy.stats.SourcesRejected++
				sy.tmSrcRej.Inc()
			}
		}
		if k < st.quarantinedUntil {
			continue
		}
		ivs = append(ivs, eIv)
	}
	sy.scratchSrcs = ivs[:0]
	if len(ivs) == 0 {
		return out, false
	}
	// Fault-tolerant combining across the surviving sources. SourceF is
	// the design bound; with fewer than 2f+1 sources currently usable,
	// degrade gracefully the way every convergence function here does.
	fused, ok := sy.srcFuser.OrthogonalAccuracy(ivs, sy.p.SourceF)
	if !ok {
		// Sources mutually inconsistent beyond f faults: no external
		// evidence is trustworthy this round.
		sy.stats.ExternalRejected++
		return out, false
	}
	// The combined interval is still subject to interval-based clock
	// validation against the internal result, like any single source
	// on the classic path.
	validated, accepted := interval.Validate(fused, out)
	if !accepted {
		sy.stats.ExternalRejected++
		return out, false
	}
	sy.stats.ExternalAccepted++
	return validated, true
}
