// Package clocksync implements the interval-based clock synchronization
// algorithm family the NTI hardware was built to support (paper §2):
// the generic round-based algorithm of [SS97] with pluggable convergence
// functions (orthogonal accuracy [Sch97b], Marzullo [Mar84],
// fault-tolerant midpoint [LL84]/[KO87]), interval-based clock
// validation for external time sources [Sch94], the rate
// synchronization of [Scho97], and round-trip transmission-delay
// measurement.
package clocksync

import (
	"ntisim/internal/timefmt"
	"ntisim/internal/utcsu"
)

// Timer is a cancellable alarm armed against a clock.
type Timer interface {
	Cancel()
	Pending() bool
}

// Clock is the device the algorithm steers. *utcsu.UTCSU satisfies it
// through the UTCSUClock adapter; package baseline provides a
// counter-based alternative (the CSU/[KKMS95]-style device of
// experiment E8).
type Clock interface {
	// Now returns the current reading at register granularity.
	Now() timefmt.Stamp
	// Alpha returns the current accuracy registers.
	Alpha() (minus, plus timefmt.Alpha)
	// SetRatePPB commands a rate adjustment relative to nominal.
	SetRatePPB(ppb int64)
	// RatePPB returns the last commanded adjustment.
	RatePPB() int64
	// RateStepPPB reports the achievable rate granularity (the u of the
	// 4G+10u precision impairment, paper §5).
	RateStepPPB() float64
	// Amortize applies a state adjustment via continuous amortization.
	Amortize(delta timefmt.Duration, speedPPM int64)
	// StepTo loads the clock state directly (initial synchronization).
	StepTo(value timefmt.Stamp)
	// SetAlpha loads the accuracy registers.
	SetAlpha(minus, plus timefmt.Duration)
	// SetDriftBoundPPB programs the automatic accuracy deterioration.
	SetDriftBoundPPB(minus, plus int64)
	// DutyAt arms a timer against the clock's own time base.
	DutyAt(target timefmt.Stamp, fn func()) Timer
	// GranuleSeconds reports the reading granularity G.
	GranuleSeconds() float64
	// QuantizeStamp coarsens a hardware time/accuracy stamp to the
	// device's timestamp granularity: the UTCSU stamps at the full
	// 2⁻²⁴ s register resolution, a CSU-class device at its µs counter
	// granule. Applied to every stamp the algorithm consumes.
	QuantizeStamp(s timefmt.Stamp) timefmt.Stamp
}

// UTCSUClock adapts *utcsu.UTCSU to the Clock interface.
type UTCSUClock struct {
	*utcsu.UTCSU
}

// DutyAt wraps the chip's duty timers.
func (c UTCSUClock) DutyAt(target timefmt.Stamp, fn func()) Timer {
	return c.UTCSU.DutyAt(target, fn)
}

// GranuleSeconds is the 2⁻²⁴ s register granularity.
func (c UTCSUClock) GranuleSeconds() float64 { return timefmt.Granule }

// QuantizeStamp is the identity: UTCSU stamps already carry the full
// register resolution.
func (c UTCSUClock) QuantizeStamp(s timefmt.Stamp) timefmt.Stamp { return s }

var _ Clock = UTCSUClock{}
