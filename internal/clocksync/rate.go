package clocksync

import (
	"sort"

	"ntisim/internal/timefmt"
)

// rateSync implements interval-based clock rate synchronization after
// [Scho97]: each node estimates every peer's clock rate relative to its
// own from the hardware transmit/receive stamps of consecutive CSPs and
// steers its rate towards the fault-tolerant midpoint of the ensemble.
// The residual relative drift after convergence — bounded by the
// measurement noise ε/baseline — replaces the a priori oscillator bound
// in the deterioration logic, which is exactly how the paper proposes to
// reach 1 µs accuracy without high-end oscillators (§2: bounds
// "measured — even controlled — dynamically").
//
// Measurement: for peer q, the stamps (txᵏ, rxᵏ) of round k and the
// stamps of round k−B (B = baseline) give
//
//	rel_q [ppb] = ((txᵏ−txᵏ⁻ᴮ) − (rxᵏ−rxᵏ⁻ᴮ)) · 10⁹ / (rxᵏ−rxᵏ⁻ᴮ)
//
// the peer's rate relative to ours. The correction applied is half the
// fault-tolerant midpoint of {rel_q} ∪ {0} (own rate), which converges
// geometrically while tolerating F faulty peers.
// The loop is epoch-based: stamps are collected for RateBaselineRounds
// rounds, one correction is applied at the epoch boundary, and the
// measurement restarts. Correcting every round against a long baseline
// would feed back corrections that the measurement window has not yet
// seen — a delayed integrator that oscillates and diverges.
type rateSync struct {
	p     Params
	first map[uint16]rateObs // epoch-start stamps per peer
	last  map[uint16]rateObs // most recent stamps per peer
	// recentCorr tracks recent correction magnitudes for the dynamic
	// drift bound.
	recentCorr []int64
	epochStart uint32
	haveEpoch  bool
}

type rateObs struct {
	round  uint32
	tx, rx timefmt.Stamp
}

func newRateSync(p Params) *rateSync {
	return &rateSync{
		p:     p,
		first: make(map[uint16]rateObs),
		last:  make(map[uint16]rateObs),
	}
}

// restart invalidates the current measurement epoch. Called when
// something else (a discipline's rate command) changes the local rate
// mid-epoch: stamps collected before the change no longer describe one
// rate, so an estimate spanning them would be corrupt.
func (r *rateSync) restart() {
	clear(r.first)
	clear(r.last)
	r.haveEpoch = false
}

// observe records the hardware stamps of a received CSP.
func (r *rateSync) observe(node uint16, round uint32, tx, rx timefmt.Stamp) {
	if !r.haveEpoch {
		r.haveEpoch = true
		r.epochStart = round
	}
	o := rateObs{round: round, tx: tx, rx: rx}
	if _, seen := r.first[node]; !seen {
		r.first[node] = o
		return
	}
	r.last[node] = o
}

// apply computes the epoch's rate correction (ppb) and the dynamic
// drift bound; ok is false except at epoch boundaries.
func (r *rateSync) apply(round uint32) (corrPPB, rhoPPB int64, ok bool) {
	if !r.haveEpoch || round < r.epochStart+uint32(r.p.RateBaselineRounds) {
		return 0, 0, false
	}
	rels := []int64{0} // own rate, relative to itself
	for node, f := range r.first {
		l, okL := r.last[node]
		if !okL || l.round-f.round < uint32(r.p.RateBaselineRounds)/2 {
			continue
		}
		dTx := l.tx.Sub(f.tx)
		dRx := l.rx.Sub(f.rx)
		if dRx <= 0 {
			continue
		}
		rels = append(rels, (int64(dTx)-int64(dRx))*1_000_000_000/int64(dRx))
	}
	// Restart the measurement window regardless of outcome (clearing in
	// place keeps the buckets: steady-state epochs allocate nothing).
	clear(r.first)
	clear(r.last)
	r.haveEpoch = false
	if len(rels) < 2 {
		return 0, 0, false
	}
	f := r.p.F
	if 2*f >= len(rels) {
		f = (len(rels) - 1) / 2
	}
	sort.Slice(rels, func(i, j int) bool { return rels[i] < rels[j] })
	lo, hi := rels[f], rels[len(rels)-1-f]
	corrPPB = (lo + hi) / 2 / 2 // midpoint, applied with gain 1/2
	// Safety clamp: a correction can never exceed the a priori bound.
	if corrPPB > r.p.RhoPPB {
		corrPPB = r.p.RhoPPB
	} else if corrPPB < -r.p.RhoPPB {
		corrPPB = -r.p.RhoPPB
	}

	r.recentCorr = append(r.recentCorr, abs64(corrPPB))
	if len(r.recentCorr) > 4 {
		r.recentCorr = r.recentCorr[1:]
	}
	var peak int64
	for _, c := range r.recentCorr {
		if c > peak {
			peak = c
		}
	}
	// Dynamic drift bound: once corrections are small, the ensemble's
	// relative rates are within ~2·peak; never below the floor, never
	// above the a priori bound.
	rhoPPB = 4 * peak
	if rhoPPB < r.p.RateRhoFloorPPB {
		rhoPPB = r.p.RateRhoFloorPPB
	}
	if rhoPPB > r.p.RhoPPB {
		rhoPPB = r.p.RhoPPB
	}
	return corrPPB, rhoPPB, true
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
