package analysis

import (
	"math"
	"testing"

	"ntisim/internal/cluster"
	"ntisim/internal/metrics"
)

func TestLundeliusLynch(t *testing.T) {
	if got := LundeliusLynchLowerBound(1e-6, 2); math.Abs(got-0.5e-6) > 1e-12 {
		t.Errorf("LL(1µs, 2) = %v", got)
	}
	if got := LundeliusLynchLowerBound(1e-6, 16); got <= 0.9e-6 || got >= 1e-6 {
		t.Errorf("LL(1µs, 16) = %v", got)
	}
	if LundeliusLynchLowerBound(1e-6, 1) != 0 {
		t.Error("single node has no lower bound")
	}
	// Monotone in n.
	if LundeliusLynchLowerBound(1e-6, 4) >= LundeliusLynchLowerBound(1e-6, 8) {
		t.Error("bound should grow with n")
	}
}

func TestGranularityImpairment(t *testing.T) {
	// The paper's §5 numbers: G = u < 70 ns gives a bound below ~1 µs.
	g := 1.0 / (1 << 24)
	u := AdderClockRateUncertainty(14.5e6)
	if b := GranularityImpairment(g, u); b >= 1e-6 {
		t.Errorf("bound at 14.5 MHz = %v, paper says <1 µs above 14 MHz", b)
	}
	u = AdderClockRateUncertainty(10e6)
	if b := GranularityImpairment(g, u); b <= 1e-6 {
		t.Errorf("bound at 10 MHz = %v, should still exceed 1 µs", b)
	}
	// CSU-class: G = u = 1 µs → 14 µs.
	if b := GranularityImpairment(1e-6, 1e-6); math.Abs(b-14e-6) > 1e-12 {
		t.Errorf("CSU bound = %v, want 14 µs", b)
	}
}

func TestBudgetDominatesMeasured(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster run")
	}
	// The worst-case budget must dominate the measured worst case of the
	// default prototype, while staying within ~20x of it (a budget that
	// is orders of magnitude loose would be useless).
	c := cluster.New(cluster.Defaults(8, 55))
	b := c.MeasureDelay(0, 1, 12)
	for _, m := range c.Members {
		m.Sync.SetDelayBounds(b)
	}
	c.Start(c.Sim.Now() + 1)
	c.Sim.RunUntil(c.Sim.Now() + 20)
	var prec metrics.Series
	start := c.Sim.Now()
	for x := start; x <= start+60; x += 0.7 {
		c.Sim.RunUntil(x)
		prec.Add(c.Snapshot().Precision)
	}
	budget := PrototypeBudget()
	budget.DelayWindowS = (b.Max - b.Min).Seconds()
	bound := budget.WorstCasePrecision()
	if prec.Max() > bound {
		t.Errorf("measured %v exceeds budget %v", prec.Max(), bound)
	}
	if bound > 20*prec.Max() {
		t.Errorf("budget %v uselessly loose vs measured %v", bound, prec.Max())
	}
}

func TestBudgetTermSensitivity(t *testing.T) {
	b := PrototypeBudget()
	base := b.WorstCasePrecision()
	// Each term strictly increases the bound.
	for _, mut := range []func(*Budget){
		func(x *Budget) { x.EpsS *= 2 },
		func(x *Budget) { x.GranuleS *= 2 },
		func(x *Budget) { x.RateUncS *= 2 },
		func(x *Budget) { x.RhoPPB *= 2 },
		func(x *Budget) { x.RoundS *= 2 },
		func(x *Budget) { x.DelayWindowS *= 2 },
	} {
		x := b
		mut(&x)
		if x.WorstCasePrecision() <= base {
			t.Errorf("term mutation did not grow the bound")
		}
	}
}
