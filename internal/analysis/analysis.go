// Package analysis implements the closed-form bounds the paper's
// argument rests on (§3.1, §5), so experiments can print measured values
// next to the theory they are supposed to respect.
//
// Sources, kept deliberately minimal:
//
//   - the Lundelius–Lynch lower bound [LL84]: n ideal clocks cannot be
//     synchronized better than ε·(1−1/n) in the worst case, where ε is
//     the transmission/reception uncertainty (§3.1);
//   - the granularity impairment of the orthogonal accuracy convergence
//     function [Sch97b]: clock granularity G and rate-adjustment
//     uncertainty u cost 4G + 10u of worst-case precision, with
//     u = 1/fosc for the adder-based clock (§5);
//   - a first-order worst-case precision budget assembling the terms the
//     paper enumerates. It is a *budget*, not a verified theorem: each
//     term is individually justified, their sum is conservative.
package analysis

import "ntisim/internal/timefmt"

// LundeliusLynchLowerBound returns the best worst-case precision any
// algorithm can achieve for n nodes with transmission/reception
// uncertainty epsS: ε·(1−1/n) [LL84].
func LundeliusLynchLowerBound(epsS float64, n int) float64 {
	if n < 2 {
		return 0
	}
	return epsS * (1 - 1/float64(n))
}

// GranularityImpairment returns the 4G+10u worst-case precision cost of
// the OA convergence function (§5) for a clock with reading granularity
// gS and rate-adjustment uncertainty uS.
func GranularityImpairment(gS, uS float64) float64 { return 4*gS + 10*uS }

// AdderClockRateUncertainty returns u for the UTCSU's adder-based
// clock: one oscillator granule, 1/fosc (§5, citing [SS97 §3.1]).
func AdderClockRateUncertainty(foscHz float64) float64 { return 1 / foscHz }

// Budget describes a synchronization configuration for the first-order
// worst-case precision budget.
type Budget struct {
	// EpsS is the transmission/reception uncertainty (measured or E1).
	EpsS float64
	// GranuleS is the clock reading granularity G.
	GranuleS float64
	// RateUncS is the rate-adjustment uncertainty u.
	RateUncS float64
	// RhoPPB is the (dynamic or a priori) relative drift bound.
	RhoPPB float64
	// RoundS is the resynchronization period P plus the compute offset.
	RoundS float64
	// DelayWindowS is dmax−dmin of the delay-compensation bounds: the
	// systematic asymmetry the algorithm cannot observe.
	DelayWindowS float64
}

// WorstCasePrecision sums the budget's terms:
//
//	ε  — per-CSP stamp uncertainty,
//	4G+10u — convergence-function granularity impairment,
//	2ρ(P+Δ) — relative drift accumulated between resynchronizations,
//	(dmax−dmin)/2 — unobservable delay asymmetry.
//
// Measured precision must not exceed it (experiment E3/E15 check this);
// typical-case precision is well below.
func (b Budget) WorstCasePrecision() float64 {
	return b.EpsS +
		GranularityImpairment(b.GranuleS, b.RateUncS) +
		2*b.RhoPPB*1e-9*b.RoundS +
		b.DelayWindowS/2
}

// PrototypeBudget returns the budget of the repository's default
// prototype configuration (10 MHz UTCSU, measured ε and delay bounds,
// 1 s rounds, 2 ppm drift bound).
func PrototypeBudget() Budget {
	return Budget{
		EpsS:         0.7e-6,
		GranuleS:     timefmt.Granule,
		RateUncS:     AdderClockRateUncertainty(10e6),
		RhoPPB:       2000,
		RoundS:       1.25,
		DelayWindowS: 1e-6,
	}
}
