package adversary

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"

	"ntisim/internal/csp"
	"ntisim/internal/gps"
	"ntisim/internal/timefmt"
)

func TestCastIsDeterministicAndExact(t *testing.T) {
	spec := Spec{TraitorFrac: 0.25, Attack: AttackCollude}
	a := NewLayer(spec, 99, 16, 1)
	b := NewLayer(spec, 99, 16, 4) // shard count must not affect the cast
	if a == nil || b == nil {
		t.Fatal("NewLayer returned nil for an enabled spec")
	}
	if !reflect.DeepEqual(a.Traitors(), b.Traitors()) {
		t.Fatalf("cast differs across shard counts: %v vs %v", a.Traitors(), b.Traitors())
	}
	if got := len(a.Traitors()); got != 4 {
		t.Fatalf("traitor count = %d, want 4 (0.25 of 16)", got)
	}
	for _, id := range a.Traitors() {
		if !a.Traitor(id) || a.Role(id) != AttackCollude {
			t.Fatalf("traitor %d has role %q", id, a.Role(id))
		}
	}
	// A different seed recasts; a repeat of the same seed does not.
	c := NewLayer(spec, 99, 16, 1)
	if !reflect.DeepEqual(a.Traitors(), c.Traitors()) {
		t.Fatalf("same seed recast differently: %v vs %v", a.Traitors(), c.Traitors())
	}
}

func TestMixedAttackCyclesRoles(t *testing.T) {
	l := NewLayer(Spec{TraitorFrac: 0.5, Attack: AttackMixed}, 7, 12, 1)
	counts := map[string]int{}
	for _, id := range l.Traitors() {
		counts[l.Role(id)]++
	}
	if counts[AttackCollude] != 2 || counts[AttackTwoFaced] != 2 || counts[AttackDelayAsym] != 2 {
		t.Fatalf("mixed cast of 6 split %v, want 2/2/2", counts)
	}
}

func TestDisabledAndNilLayerAreInert(t *testing.T) {
	if l := NewLayer(Spec{}, 1, 8, 1); l != nil {
		t.Fatal("empty spec should yield a nil layer")
	}
	var l *Layer
	if l.Traitor(0) || l.Role(0) != "" || l.LiesTold() != 0 || l.Traitors() != nil {
		t.Fatal("nil layer must answer as fully honest")
	}
}

// lieFrame builds a minimal on-wire CSP header from a traitorous sender
// with a valid hardware transmit stamp inserted.
func lieFrame(src int, st timefmt.Stamp) []byte {
	p := make([]byte, csp.HeaderSize)
	p[csp.OffKind] = byte(csp.KindCSP)
	binary.BigEndian.PutUint16(p[csp.OffNode:], uint16(src))
	w1, w2 := st.Words()
	binary.BigEndian.PutUint32(p[csp.OffTxStamp:], w1)
	binary.BigEndian.PutUint32(p[csp.OffTxMacro:], w2)
	return p
}

func readStamp(t *testing.T, p []byte) timefmt.Stamp {
	t.Helper()
	st, ok := timefmt.FromWords(
		binary.BigEndian.Uint32(p[csp.OffTxStamp:]),
		binary.BigEndian.Uint32(p[csp.OffTxMacro:]))
	if !ok {
		t.Fatal("mutated frame carries an invalid stamp")
	}
	return st
}

func TestMutateColludeShiftsStampWithoutAliasing(t *testing.T) {
	const magS = 500e-6
	l := NewLayer(Spec{TraitorFrac: 0.25, Attack: AttackCollude, MagnitudeS: magS}, 42, 8, 1)
	src := l.Traitors()[0]
	st := timefmt.Stamp(0).Add(timefmt.DurationFromSeconds(5))
	orig := lieFrame(src, st)
	snapshot := append([]byte(nil), orig...)

	out, gotSrc, delta, ok := l.mutate(orig, 3, 1.0)
	if !ok {
		t.Fatal("traitor frame passed honestly")
	}
	if gotSrc != src {
		t.Fatalf("mutate attributed src %d, want %d", gotSrc, src)
	}
	// The lie is applied in NTT granules, so compare the quantized value.
	if want := timefmt.DurationFromSeconds(magS).Seconds(); delta != want {
		t.Fatalf("delta = %g, want +%g (collusion is a common false time)", delta, want)
	}
	if !bytes.Equal(orig, snapshot) {
		t.Fatal("mutate edited the shared broadcast payload in place")
	}
	want := st.Add(timefmt.DurationFromSeconds(magS))
	if got := readStamp(t, out); got != want {
		t.Fatalf("forged stamp = %v, want %v", got, want)
	}
	// Everything outside the checksum-exempt stamp words is untouched.
	if !bytes.Equal(out[:csp.OffTxStamp], orig[:csp.OffTxStamp]) ||
		!bytes.Equal(out[csp.OffTxAlpha:], orig[csp.OffTxAlpha:]) {
		t.Fatal("mutate edited bytes outside the hardware stamp region")
	}
}

func TestMutateTwoFacedSignFollowsPairBit(t *testing.T) {
	l := NewLayer(Spec{TraitorFrac: 0.25, Attack: AttackTwoFaced, MagnitudeS: 500e-6}, 42, 8, 1)
	src := l.Traitors()[0]
	st := timefmt.Stamp(0).Add(timefmt.DurationFromSeconds(5))
	sawPlus, sawMinus := false, false
	for dst := 0; dst < 8; dst++ {
		if dst == src {
			continue
		}
		_, _, delta, ok := l.mutate(lieFrame(src, st), dst, 1.0)
		if !ok {
			t.Fatalf("two-faced traitor passed honestly to dst %d", dst)
		}
		wantNeg := l.pairBit(src, dst)
		if (delta < 0) != wantNeg {
			t.Fatalf("dst %d: delta %g disagrees with pair bit %v", dst, delta, wantNeg)
		}
		// Determinism: the same pair always sees the same face.
		_, _, again, _ := l.mutate(lieFrame(src, st), dst, 2.0)
		if again != delta {
			t.Fatalf("dst %d saw two different faces: %g then %g", dst, delta, again)
		}
		sawPlus = sawPlus || delta > 0
		sawMinus = sawMinus || delta < 0
	}
	if !sawPlus || !sawMinus {
		t.Fatalf("two-faced clock showed only one face across 7 receivers (plus=%v minus=%v)", sawPlus, sawMinus)
	}
}

func TestMutatePassesHonestAndNonCSPTraffic(t *testing.T) {
	l := NewLayer(Spec{TraitorFrac: 0.25, Attack: AttackCollude, StartS: 10}, 42, 8, 1)
	src := l.Traitors()[0]
	st := timefmt.Stamp(0).Add(timefmt.DurationFromSeconds(5))
	honest := -1
	for i := 0; i < 8; i++ {
		if !l.Traitor(i) {
			honest = i
			break
		}
	}
	if _, _, _, ok := l.mutate(lieFrame(honest, st), 3, 20); ok {
		t.Fatal("honest sender was mutated")
	}
	if _, _, _, ok := l.mutate(lieFrame(src, st), 3, 5); ok {
		t.Fatal("lie told before the attack onset StartS")
	}
	rtt := lieFrame(src, st)
	rtt[csp.OffKind] = byte(csp.KindRTTReq)
	if _, _, _, ok := l.mutate(rtt, 3, 20); ok {
		t.Fatal("non-CSP frame (RTT probe) was mutated — delay calibration must stay clean")
	}
	if _, _, _, ok := l.mutate(lieFrame(src, st)[:csp.HeaderSize-1], 3, 20); ok {
		t.Fatal("truncated frame was mutated")
	}
}

func TestSourceFaultsAppendsWithoutMutatingBase(t *testing.T) {
	base := []gps.Fault{{Kind: gps.FaultOutage, Start: 1}}
	spec := Spec{GNSS: []GNSSEvent{
		{Kind: GNSSSpoof, StartS: 25, EndS: 35, OffsetS: 20e-3, Sources: 1},
		{Kind: GNSSOutage, StartS: 40, EndS: 50},
	}}
	got0 := spec.SourceFaults(0, base)
	if len(got0) != 3 {
		t.Fatalf("source 0 faults = %d, want 3 (base + spoof + outage)", len(got0))
	}
	got2 := spec.SourceFaults(2, base)
	if len(got2) != 2 {
		t.Fatalf("source 2 faults = %d, want 2 (spoof limited to Sources=1)", len(got2))
	}
	if len(base) != 1 {
		t.Fatalf("SourceFaults mutated the caller's base slice: %v", base)
	}
	none := Spec{}
	if got := none.SourceFaults(0, base); &got[0] != &base[0] {
		t.Fatal("no GNSS events should return base unchanged, not a copy")
	}
}
