// Package adversary is the Byzantine attacker layer: it wraps existing
// nodes and links with adversarial behavior models so the traitor
// tolerance of the synchronization stack can be measured instead of
// assumed. The NTI paper's interval algorithms tolerate up to f faulty
// *inputs* by construction; this package supplies the faults — in the
// G-SINC spirit of trusting no single node or reference source.
//
// Attack models:
//
//   - Two-faced clocks: a traitor whose CSPs advertise *different*
//     intervals to different receivers (the classic Byzantine clock of
//     Lamport/Melliar-Smith), splitting the honest ensemble into camps
//     pulled in opposite directions.
//   - Colluding liar cliques: traitors steering a common false time —
//     every receiver sees the same consistent lie, so the clique acts
//     as one coordinated voting bloc inside the convergence function.
//   - Delay-asymmetry links: an attacker on the path ages a victim
//     subset's frames beyond the receivers' [DelayMin, DelayMax]
//     compensation bounds — the node is honest, the network lies.
//   - Wide-area GNSS outage/spoofing schedules layered onto the
//     per-node gps fault models: every receiver in the system loses or
//     mis-reports the reference simultaneously, which is what makes
//     multi-source trust (clocksync.Params.SourceF) necessary.
//
// Implementation: lies are applied at frame *delivery*, per receiver,
// by wrapping each member's network.Bus (WrapBus). The mutation edits
// the hardware-stamp region of a copied payload — exactly the region
// the CSP header checksum deliberately skips (csp.headerCheck), so a
// forged stamp is indistinguishable from a hardware-inserted one, just
// as a real two-faced NTI would produce. Receive-side mutation keyed
// on (seed, src, dst) keeps every lie a pure function of the config:
// shard decomposition and worker count can never perturb adversarial
// behavior, preserving the campaign byte-identity contract.
package adversary

import (
	"encoding/binary"
	"fmt"
	"sort"

	"ntisim/internal/csp"
	"ntisim/internal/gps"
	"ntisim/internal/network"
	"ntisim/internal/sim"
	"ntisim/internal/telemetry"
	"ntisim/internal/timefmt"
	"ntisim/internal/trace"
)

// Attack model names (Spec.Attack).
const (
	// AttackCollude is the default: all traitors shift their advertised
	// time by +MagnitudeS, forming one consistent lying clique.
	AttackCollude = "collude"
	// AttackTwoFaced shifts by ±MagnitudeS with the sign drawn per
	// (src, dst) pair from DeriveSeed — different receivers see
	// different clocks from the same traitor.
	AttackTwoFaced = "two-faced"
	// AttackDelayAsym ages frames to a seed-chosen victim half of the
	// receivers by MagnitudeS (stamp moved into the past), modelling an
	// on-path delay attacker rather than a lying node.
	AttackDelayAsym = "delay-asym"
	// AttackMixed cycles collude/two-faced/delay-asym over the traitor
	// set in rank order.
	AttackMixed = "mixed"
)

// GNSS event kinds (GNSSEvent.Kind).
const (
	// GNSSOutage suppresses pulses on the affected receivers.
	GNSSOutage = "outage"
	// GNSSSpoof offsets the affected receivers' pulses by OffsetS — a
	// coordinated wide-area spoofing campaign steering a false time.
	GNSSSpoof = "spoof"
)

// GNSSEvent is one wide-area episode of the GNSS attack schedule: it
// applies to *every* GPS-equipped node simultaneously (that is what
// distinguishes it from the per-node gps.Fault models it lowers into).
type GNSSEvent struct {
	// Kind is GNSSOutage or GNSSSpoof.
	Kind string
	// StartS/EndS bound the episode in sim seconds (EndS 0 = open).
	StartS, EndS float64
	// OffsetS is the spoofed time offset (GNSSSpoof only).
	OffsetS float64
	// Sources limits the episode to each node's first Sources reference
	// sources; 0 hits all of them. A spoof that captures only 1 of 3
	// independent sources is what fault-tolerant source combining is
	// designed to survive.
	Sources int
}

// Spec configures the adversarial layer of a cluster. The zero value
// means no adversary at all.
type Spec struct {
	// TraitorFrac is the fraction of regular nodes (gateways excluded)
	// that behave as traitors; the count is round(frac·nodes). Which
	// nodes turn traitor is drawn from DeriveSeed(seed, "adversary/…"),
	// so the cast is a pure function of (seed, nodes).
	TraitorFrac float64
	// Attack selects the traitor behavior model (default AttackCollude).
	Attack string
	// MagnitudeS is the lie magnitude in seconds (default 500e-6 — in
	// the capture band above typical steady-state interval half-widths,
	// where a clique larger than F drags fused intervals off true time
	// instead of merely breaking the intersection).
	MagnitudeS float64
	// StartS delays the node/link attacks until this sim time.
	StartS float64
	// GNSS is the wide-area reference attack schedule.
	GNSS []GNSSEvent
	// Sources is the number of independent GNSS reference sources each
	// GPS-equipped node carries (1..utcsu.NumGPU; 0 = 1, the classic
	// single receiver). Multi-source nodes feed per-source intervals to
	// the synchronizer's fault-tolerant source combining.
	Sources int
}

// Enabled reports whether the spec asks for any adversarial behavior.
func (s *Spec) Enabled() bool {
	return s.TraitorFrac > 0 || len(s.GNSS) > 0 || s.Sources > 1
}

// Clone deep-copies the spec (the GNSS schedule is a slice; campaign
// cells must not share backing arrays — see cluster.Config.Clone).
func (s Spec) Clone() Spec {
	out := s
	out.GNSS = append([]GNSSEvent(nil), s.GNSS...)
	return out
}

// SourceFaults lowers the wide-area GNSS schedule into per-receiver
// gps.Fault episodes for one node's reference source, appended to the
// receiver's own configured faults. source is the node-local reference
// index (0-based).
func (s *Spec) SourceFaults(source int, base []gps.Fault) []gps.Fault {
	if len(s.GNSS) == 0 {
		return base
	}
	// Copy before appending: base may be shared across sources (and, on
	// un-Cloned configs, across cells).
	out := append([]gps.Fault(nil), base...)
	for _, ev := range s.GNSS {
		if ev.Sources > 0 && source >= ev.Sources {
			continue
		}
		switch ev.Kind {
		case GNSSOutage:
			out = append(out, gps.Fault{Kind: gps.FaultOutage, Start: ev.StartS, End: ev.EndS})
		case GNSSSpoof:
			out = append(out, gps.Fault{Kind: gps.FaultOffset, Start: ev.StartS, End: ev.EndS, Magnitude: ev.OffsetS})
		default:
			panic(fmt.Sprintf("adversary: unknown GNSS event kind %q", ev.Kind))
		}
	}
	return out
}

// Layer is the instantiated adversary of one cluster: the traitor cast
// with their attack roles, and the per-shard lie accounting. One Layer
// belongs to exactly one cluster.
type Layer struct {
	spec  Spec
	seed  uint64
	nodes int
	// roles[i] is the attack model of regular node i ("" = honest).
	roles []string
	// traitors lists the traitor node ids in ascending order.
	traitors []int
	mag      timefmt.Duration
	// liesByShard counts delivered lies per shard; each element is
	// written only by its shard's single-threaded simulator (the
	// per-shard registry pattern) and summed at barriers.
	liesByShard []uint64
}

// NewLayer casts the traitors for a cluster of `nodes` regular nodes
// under the given seed, across `shards` sub-simulators (1 for
// unsharded). Returns nil when the spec asks for nothing.
func NewLayer(spec Spec, seed uint64, nodes, shards int) *Layer {
	if !spec.Enabled() {
		return nil
	}
	if shards < 1 {
		shards = 1
	}
	l := &Layer{
		spec:        spec,
		seed:        seed,
		nodes:       nodes,
		roles:       make([]string, nodes),
		mag:         timefmt.DurationFromSeconds(spec.MagnitudeS),
		liesByShard: make([]uint64, shards),
	}
	if spec.MagnitudeS == 0 {
		l.mag = timefmt.DurationFromSeconds(500e-6)
	}
	k := int(spec.TraitorFrac*float64(nodes) + 0.5)
	if k > nodes {
		k = nodes
	}
	if k <= 0 {
		return l
	}
	// Rank nodes by a per-node derived hash and turn the k lowest into
	// traitors: an exact count whose membership is a pure function of
	// (seed, node id) — re-segmenting or re-sharding the same node set
	// never changes who lies.
	type ranked struct {
		id   int
		hash uint64
	}
	rk := make([]ranked, nodes)
	for i := range rk {
		rk[i] = ranked{i, sim.DeriveSeed(seed, fmt.Sprintf("adversary/node/%d", i))}
	}
	sort.Slice(rk, func(a, b int) bool {
		if rk[a].hash != rk[b].hash {
			return rk[a].hash < rk[b].hash
		}
		return rk[a].id < rk[b].id
	})
	attack := spec.Attack
	if attack == "" {
		attack = AttackCollude
	}
	mixed := [...]string{AttackCollude, AttackTwoFaced, AttackDelayAsym}
	for r := 0; r < k; r++ {
		role := attack
		if attack == AttackMixed {
			role = mixed[r%len(mixed)]
		}
		switch role {
		case AttackCollude, AttackTwoFaced, AttackDelayAsym:
		default:
			panic(fmt.Sprintf("adversary: unknown attack model %q", role))
		}
		l.roles[rk[r].id] = role
		l.traitors = append(l.traitors, rk[r].id)
	}
	sort.Ints(l.traitors)
	return l
}

// Role returns the attack model of a node id ("" for honest nodes,
// gateways, and out-of-range ids).
func (l *Layer) Role(node int) string {
	if l == nil || node < 0 || node >= len(l.roles) {
		return ""
	}
	return l.roles[node]
}

// Traitor reports whether node id is a traitor.
func (l *Layer) Traitor(node int) bool { return l.Role(node) != "" }

// Traitors lists the traitor node ids in ascending order.
func (l *Layer) Traitors() []int {
	if l == nil {
		return nil
	}
	return l.traitors
}

// LiesTold sums delivered lies over all shards. Call only at barriers
// (between RunUntil windows), like telemetry capture.
func (l *Layer) LiesTold() uint64 {
	if l == nil {
		return 0
	}
	var n uint64
	for _, v := range l.liesByShard {
		n += v
	}
	return n
}

// pairBit is the deterministic per-(src, dst) coin: which face a
// two-faced traitor shows, or whether a delay attacker targets the
// path. Pure in (seed, src, dst).
func (l *Layer) pairBit(src, dst int) bool {
	return sim.DeriveSeed(l.seed, fmt.Sprintf("adversary/pair/%d/%d", src, dst))&1 == 1
}

// mutate applies the attack of frame f's sender as seen by receiver
// dst: a copied payload with the embedded transmit stamp shifted by the
// returned delta (seconds). ok is false when the frame passes honestly.
func (l *Layer) mutate(payload []byte, dst int, now float64) (out []byte, src int, delta float64, ok bool) {
	if l == nil || len(l.traitors) == 0 || now < l.spec.StartS {
		return nil, 0, 0, false
	}
	if len(payload) < csp.HeaderSize || csp.Kind(payload[csp.OffKind]) != csp.KindCSP {
		return nil, 0, 0, false
	}
	src = int(binary.BigEndian.Uint16(payload[csp.OffNode:]))
	role := l.Role(src)
	if role == "" {
		return nil, 0, 0, false
	}
	d := l.mag
	switch role {
	case AttackCollude:
		// Common false time: every receiver sees +mag.
	case AttackTwoFaced:
		if l.pairBit(src, dst) {
			d = -d
		}
	case AttackDelayAsym:
		if !l.pairBit(src, dst) {
			return nil, 0, 0, false // this path is clean
		}
		d = -d // aged in flight: the stamp claims an older transmission
	}
	st, okSt := timefmt.FromWords(
		binary.BigEndian.Uint32(payload[csp.OffTxStamp:]),
		binary.BigEndian.Uint32(payload[csp.OffTxMacro:]))
	if !okSt {
		return nil, 0, 0, false // stamp never inserted or corrupt
	}
	// The medium shares one payload slice across a broadcast's
	// deliveries; the per-receiver lie must copy before editing. Only
	// the checksum-exempt hardware stamp region changes (the same
	// region cluster.relayRewrite edits), so the forged frame still
	// decodes as genuine.
	out = append([]byte(nil), payload...)
	w1, w2 := st.Add(d).Words()
	binary.BigEndian.PutUint32(out[csp.OffTxStamp:], w1)
	binary.BigEndian.PutUint32(out[csp.OffTxMacro:], w2)
	return out, src, d.Seconds(), true
}

// WrapBus interposes the adversary between a member's network bus and
// its COMCO: frames from traitorous senders are mutated per receiver at
// delivery. dst is the receiving node's id, shard its sub-simulator
// index; tr/reg are that shard's tracer and telemetry registry (nil =
// disabled). Returns the bus unchanged when no node attacks.
func (l *Layer) WrapBus(bus network.Bus, dst, shard int, s *sim.Simulator, tr *trace.Tracer, reg *telemetry.Registry) network.Bus {
	if l == nil || len(l.traitors) == 0 {
		return bus
	}
	w := &wrappedBus{inner: bus, l: l, dst: dst, shard: shard, s: s, tr: tr}
	if reg != nil {
		w.lies = reg.Counter(MetricLiesTold)
	}
	return w
}

// MetricLiesTold is the telemetry counter of delivered adversarial
// mutations (registered per shard only on clusters with traitors, so
// adversary-free snapshot streams are byte-identical to before).
const MetricLiesTold = "adv.lies_told"

// wrappedBus delegates Send/Bitrate and interposes on Attach, so every
// station the COMCO registers sees mutated deliveries.
type wrappedBus struct {
	inner network.Bus
	l     *Layer
	dst   int
	shard int
	s     *sim.Simulator
	tr    *trace.Tracer
	lies  *telemetry.Counter
}

func (b *wrappedBus) Attach(st network.Station) int {
	return b.inner.Attach(&interceptor{b: b, st: st})
}

func (b *wrappedBus) Send(f network.Frame, onAcquired func(at float64)) uint64 {
	return b.inner.Send(f, onAcquired)
}

func (b *wrappedBus) Bitrate() float64 { return b.inner.Bitrate() }

// interceptor is the per-station delivery tap.
type interceptor struct {
	b  *wrappedBus
	st network.Station
}

func (ic *interceptor) FrameArrived(f network.Frame) {
	b := ic.b
	if out, src, delta, ok := b.l.mutate(f.Payload, b.dst, b.s.Now()); ok {
		f.Payload = out
		b.l.liesByShard[b.shard]++
		b.lies.Inc()
		if b.tr != nil {
			b.tr.Emit(trace.KindLie, b.s.Now(), b.dst, 0, f.ID, uint64(src), delta)
		}
	}
	ic.st.FrameArrived(f)
}
