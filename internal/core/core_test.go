package core

import (
	"testing"

	"ntisim/internal/gps"
)

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(Options{Nodes: 0}); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := NewSystem(Options{Nodes: 2, TimestampMode: "bogus"}); err == nil {
		t.Error("bogus mode accepted")
	}
	if _, err := NewSystem(Options{Nodes: 2, OscillatorGrade: "cesium"}); err == nil {
		t.Error("bogus oscillator grade accepted")
	}
	if _, err := NewSystem(Options{Nodes: 2, GPS: []int{7}}); err == nil {
		t.Error("out-of-range GPS index accepted")
	}
}

func TestBasicRun(t *testing.T) {
	sys, err := NewSystem(Options{Nodes: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep := sys.Run(15, 30, 1)
	if rep.Precision.N() == 0 {
		t.Fatal("no samples")
	}
	if rep.Precision.Max() > 10e-6 {
		t.Errorf("precision %v", rep.Precision.Max())
	}
	if rep.ContainmentViolations != 0 {
		t.Errorf("%d containment violations", rep.ContainmentViolations)
	}
	if len(rep.PerNode) != 4 {
		t.Errorf("per-node stats: %d", len(rep.PerNode))
	}
	for i, st := range rep.PerNode {
		if st.Rounds == 0 {
			t.Errorf("node %d ran no rounds", i)
		}
	}
}

func TestMeasuredDelays(t *testing.T) {
	sys, err := NewSystem(Options{Nodes: 4, Seed: 2, MeasureDelays: true})
	if err != nil {
		t.Fatal(err)
	}
	rep := sys.Run(15, 30, 1)
	if sys.DelayBounds.Samples == 0 {
		t.Error("delay measurement skipped")
	}
	if rep.Precision.Max() > 10e-6 {
		t.Errorf("precision %v", rep.Precision.Max())
	}
	// With measured (unbiased) bounds the ensemble does not creep:
	// accuracy stays bounded over the window even without GPS.
	if rep.Accuracy.Max() > 500e-6 {
		t.Errorf("accuracy drifting: %v", rep.Accuracy.Max())
	}
}

func TestGPSOption(t *testing.T) {
	sys, err := NewSystem(Options{Nodes: 4, Seed: 3, GPS: []int{0}, MeasureDelays: true})
	if err != nil {
		t.Fatal(err)
	}
	rep := sys.Run(30, 60, 1)
	if rep.Accuracy.Max() > 50e-6 {
		t.Errorf("UTC accuracy with GPS: %v", rep.Accuracy.Max())
	}
	if rep.PerNode[0].ExternalAccepted == 0 {
		t.Error("GPS never accepted")
	}
}

func TestGPSFaultOption(t *testing.T) {
	sys, err := NewSystem(Options{
		Nodes: 4, Seed: 4, MeasureDelays: true,
		GPSFaults: map[int][]gps.Fault{
			0: {{Kind: gps.FaultOffset, Start: 40, Magnitude: 20e-3}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := sys.Run(60, 40, 1)
	if rep.PerNode[0].ExternalRejected == 0 {
		t.Error("fault never rejected")
	}
	if rep.Precision.Max() > 20e-6 {
		t.Errorf("precision under GPS fault: %v", rep.Precision.Max())
	}
}

func TestTaskModeIsWorse(t *testing.T) {
	run := func(mode string) float64 {
		sys, err := NewSystem(Options{Nodes: 4, Seed: 5, TimestampMode: mode})
		if err != nil {
			t.Fatal(err)
		}
		rep := sys.Run(15, 30, 1)
		return rep.Precision.Max()
	}
	nti := run("nti")
	task := run("task")
	if task < 5*nti {
		t.Errorf("task-level sync (%v) should be far worse than NTI (%v)", task, nti)
	}
}

func TestIdempotentStart(t *testing.T) {
	sys, _ := NewSystem(Options{Nodes: 2, Seed: 6})
	sys.Start()
	sys.Start()
	rep := sys.Run(5, 5, 1)
	if rep.Precision.N() == 0 {
		t.Error("no samples after double start")
	}
}
