// Package core is the library façade: one call builds a complete
// simulated distributed system — N nodes, each with CPU, UTCSU, NTI and
// COMCO on a shared LAN (paper Fig. 2) — runs interval-based external
// clock synchronization on it, and reports precision/accuracy measured
// through the hardware snapshot path.
//
// It is the API the examples and the experiment harness consume;
// everything underneath (cluster, clocksync, utcsu, nti, …) remains
// directly usable for fine-grained control.
package core

import (
	"fmt"

	"ntisim/internal/clocksync"
	"ntisim/internal/cluster"
	"ntisim/internal/gps"
	"ntisim/internal/kernel"
	"ntisim/internal/metrics"
	"ntisim/internal/oscillator"
	"ntisim/internal/timefmt"
)

// Options selects the system to build. The zero value of optional
// fields picks the paper's prototype configuration.
type Options struct {
	// Nodes is the cluster size (required, ≥ 2 for synchronization).
	Nodes int
	// Seed makes the whole run reproducible.
	Seed uint64

	// OscillatorHz paces the UTCSUs (default 10 MHz; legal 1..20 MHz).
	OscillatorHz float64
	// OscillatorGrade: "tcxo" (default) or "ocxo".
	OscillatorGrade string

	// RoundPeriodS is the synchronization round period P (default 1 s).
	RoundPeriodS float64
	// FaultTolerance is the number of faulty nodes to tolerate
	// (default: (n-1)/3 capped at 5).
	FaultTolerance int
	// RateSync enables clock-rate synchronization [Scho97].
	RateSync bool
	// MeasureDelays runs a round-trip campaign before starting and uses
	// the measured delay bounds for compensation (recommended).
	MeasureDelays bool

	// GPS lists node indices equipped with (healthy) GPS receivers.
	GPS []int
	// GPSFaults injects receiver faults per node index (implies a
	// receiver on that node).
	GPSFaults map[int][]gps.Fault

	// TimestampMode: "nti" (default), "isr" or "task" — the E2 classes.
	TimestampMode string
	// BackgroundLoad adds competing traffic at this utilization (0..0.9).
	BackgroundLoad float64
}

// System is a built, runnable system.
type System struct {
	Cluster *cluster.Cluster
	opts    Options
	started bool
	// DelayBounds holds the measured bounds when MeasureDelays was set.
	DelayBounds clocksync.DelayBounds
}

// Report summarizes a measurement window.
type Report struct {
	// Precision statistics over the window: max_{p,q}|C_p-C_q| samples.
	Precision metrics.Series
	// Accuracy statistics: max_p|C_p-t| samples.
	Accuracy metrics.Series
	// ContainmentViolations counts samples where some node's accuracy
	// interval did not contain real time (must be 0).
	ContainmentViolations int
	// Samples is the raw trace.
	Samples []metrics.ClusterSample
	// PerNode carries each synchronizer's statistics.
	PerNode []clocksync.Stats
}

// NewSystem builds a system from options.
func NewSystem(opts Options) (*System, error) {
	if opts.Nodes < 1 {
		return nil, fmt.Errorf("core: Nodes must be >= 1, got %d", opts.Nodes)
	}
	cfg := cluster.Defaults(opts.Nodes, opts.Seed)
	if opts.OscillatorHz != 0 {
		cfg.OscHz = opts.OscillatorHz
	}
	switch opts.OscillatorGrade {
	case "", "tcxo":
		// cluster default
	case "ocxo":
		hz := cfg.OscHz
		cfg.OscillatorFor = func(int) oscillator.Config { return oscillator.OCXO(hz) }
	default:
		return nil, fmt.Errorf("core: unknown oscillator grade %q", opts.OscillatorGrade)
	}
	if opts.RoundPeriodS != 0 {
		cfg.Sync.RoundPeriod = timefmt.DurationFromSeconds(opts.RoundPeriodS)
	}
	if opts.FaultTolerance != 0 {
		cfg.Sync.F = opts.FaultTolerance
	}
	cfg.Sync.RateSync = opts.RateSync
	switch opts.TimestampMode {
	case "", "nti":
		cfg.Kernel.Mode = kernel.ModeNTI
	case "isr":
		cfg.Kernel.Mode = kernel.ModeISR
	case "task":
		cfg.Kernel.Mode = kernel.ModeTask
	default:
		return nil, fmt.Errorf("core: unknown timestamp mode %q", opts.TimestampMode)
	}
	cfg.BackgroundLoad = opts.BackgroundLoad
	if len(opts.GPS) > 0 || len(opts.GPSFaults) > 0 {
		cfg.GPS = map[int]gps.Config{}
		for _, i := range opts.GPS {
			cfg.GPS[i] = gps.DefaultReceiver()
		}
		for i, faults := range opts.GPSFaults {
			rc := gps.DefaultReceiver()
			rc.Faults = faults
			cfg.GPS[i] = rc
		}
	}
	for i := range cfg.GPS {
		if i < 0 || i >= opts.Nodes {
			return nil, fmt.Errorf("core: GPS node index %d out of range", i)
		}
	}
	sys := &System{Cluster: cluster.New(cfg), opts: opts}
	return sys, nil
}

// Start performs optional delay measurement and launches every node's
// synchronizer. It is idempotent.
func (s *System) Start() {
	if s.started {
		return
	}
	s.started = true
	if s.opts.MeasureDelays && s.opts.Nodes >= 2 {
		b := s.Cluster.MeasureDelay(0, 1, 16)
		s.DelayBounds = b
		for _, m := range s.Cluster.Members {
			m.Sync.SetDelayBounds(b)
		}
	}
	s.Cluster.Start(s.Cluster.Sim.Now() + 0.5)
}

// Run advances the simulation: warmupS seconds to converge, then
// measureS seconds sampled every sampleS, and returns the report.
func (s *System) Run(warmupS, measureS, sampleS float64) Report {
	s.Start()
	now := s.Cluster.Sim.Now()
	s.Cluster.Sim.RunUntil(now + warmupS)
	var rep Report
	from := s.Cluster.Sim.Now()
	rep.Samples = s.Cluster.RunSampled(from, from+measureS, sampleS)
	for _, cs := range rep.Samples {
		rep.Precision.Add(cs.Precision)
		rep.Accuracy.Add(cs.MaxAbsOffset)
		if !cs.Contained {
			rep.ContainmentViolations++
		}
	}
	for _, m := range s.Cluster.Members {
		rep.PerNode = append(rep.PerNode, m.Sync.Stats())
	}
	return rep
}

// Now returns the current simulated time.
func (s *System) Now() float64 { return s.Cluster.Sim.Now() }
