package utcsu

import (
	"math"
	"testing"

	"ntisim/internal/oscillator"
	"ntisim/internal/timefmt"
)

func TestRegTimestampLatchesMacrostamp(t *testing.T) {
	s, u := rig(t, 50, oscillator.Ideal(10e6))
	s.RunUntil(300.7) // seconds<7:0> = 44, macro part nonzero
	ts := u.ReadReg32(RegTimestamp)
	// Advance across a 256 s wrap before reading the macrostamp: the
	// latched value must still pair with the old timestamp word.
	s.RunUntil(520)
	ms := u.ReadReg32(RegMacrostamp)
	got, ok := timefmt.FromWords(ts, ms)
	if !ok {
		t.Fatal("latched pair fails checksum")
	}
	if math.Abs(got.Seconds()-300.7) > 1e-5 {
		t.Errorf("latched read = %v, want ~300.7", got)
	}
}

func TestRegAlphaAndLoads(t *testing.T) {
	s, u := rig(t, 51, oscillator.Ideal(10e6))
	u.WriteReg32(RegAlphaLoad, 17<<16|23)
	s.RunUntil(0.001)
	v := u.ReadReg32(RegAlpha)
	if v>>16 < 17 || v&0xFFFF < 23 {
		t.Errorf("ALPHA = %08x", v)
	}
	// DRIFTBOUND makes both sides deteriorate.
	u.WriteReg32(RegDriftBound, 2000)
	s.RunUntil(1.001)
	v2 := u.ReadReg32(RegAlpha)
	if v2>>16 <= v>>16 {
		t.Error("deterioration not visible after DRIFTBOUND write")
	}
}

func TestRegStepAndRate(t *testing.T) {
	s, u := rig(t, 52, oscillator.Ideal(10e6))
	u.WriteReg32(RegStep, uint32(100_000)) // +100 ppm via the bus
	s.RunUntil(10)
	got := u.Now().Seconds()
	if math.Abs(got-10*(1+100e-6)) > 1e-5 {
		t.Errorf("clock after STEP write = %v", got)
	}
	// Negative rates through two's complement.
	neg := int32(-100_000)
	u.WriteReg32(RegStep, uint32(neg))
	if u.RatePPB() != -100_000 {
		t.Errorf("RatePPB = %d", u.RatePPB())
	}
}

func TestRegClockLoad(t *testing.T) {
	s, u := rig(t, 53, oscillator.Ideal(10e6))
	s.RunUntil(1)
	// Load 1000.5 s: seconds word then committing fraction word.
	u.WriteReg32(RegLoadTimeHi, 1000)
	u.WriteReg32(RegLoadTimeLo, 1<<23) // 0.5 in 24-bit fraction
	s.RunUntil(1.001)
	if got := u.Now().Seconds(); math.Abs(got-1000.501) > 1e-5 {
		t.Errorf("after LOADTIME = %v", got)
	}
}

func TestRegAmortization(t *testing.T) {
	s, u := rig(t, 54, oscillator.Ideal(10e6))
	s.RunUntil(1)
	delta := timefmt.DurationFromSeconds(50e-6)
	u.WriteReg32(RegAmortDelta, uint32(int32(delta)))
	if on, _ := u.Amortizing(); on {
		t.Fatal("amortization must not start before AMORTGO")
	}
	u.WriteReg32(RegAmortGo, 1)
	if on, _ := u.Amortizing(); !on {
		t.Fatal("AMORTGO did not start amortization")
	}
	if st := u.ReadReg32(RegStatus); st&1 == 0 {
		t.Error("STATUS bit0 should show amortizing")
	}
	s.RunUntil(1.2)
	if got := u.Now().Seconds(); math.Abs(got-(1.2+50e-6)) > 2e-6 {
		t.Errorf("after register-driven amortization: %v", got)
	}
}

func TestRegIntEnable(t *testing.T) {
	_, u := rig(t, 55, oscillator.Ideal(10e6))
	u.WriteReg32(RegIntEnable, 0b101) // INTN + INTA
	if !u.IntEnabled(INTN) || u.IntEnabled(INTT) || !u.IntEnabled(INTA) {
		t.Error("INTENABLE decode wrong")
	}
	if u.ReadReg32(RegIntEnable) != 0b101 {
		t.Errorf("INTENABLE readback = %03b", u.ReadReg32(RegIntEnable))
	}
}

func TestRegSampleUnits(t *testing.T) {
	s, u := rig(t, 56, oscillator.Ideal(10e6))
	s.RunUntil(2.5)
	u.SSU(3).Trigger(true)
	u.GPU(1).Trigger(true)
	u.APU(8).Trigger(true)
	for _, tc := range []struct {
		off  uint32
		name string
	}{
		{RegSSUBase + 8*3, "SSU3"},
		{RegGPUBase + 8*1, "GPU1"},
		{RegAPUBase + 8*8, "APU8"},
	} {
		ts := u.ReadReg32(tc.off)
		if ts == 0 {
			t.Errorf("%s timestamp register empty", tc.name)
		}
		_ = u.ReadReg32(tc.off + 4) // alpha word must decode without panic
	}
	// An untouched unit reads zero.
	if u.ReadReg32(RegSSUBase+8*5) != 0 {
		t.Error("untriggered SSU5 nonzero")
	}
}

func TestRegStatusSnapshotCount(t *testing.T) {
	s, u := rig(t, 57, oscillator.Ideal(10e6))
	s.RunUntil(1)
	u.Snapshot()
	u.Snapshot()
	if got := u.ReadReg32(RegStatus) >> 8; got != 2 {
		t.Errorf("snapshot count via STATUS = %d", got)
	}
}

func TestRegNames(t *testing.T) {
	for _, tc := range []struct {
		off  uint32
		want string
	}{
		{RegTimestamp, "TIMESTAMP"},
		{RegStep, "STEP"},
		{RegSSUBase, "SSU0.TIME"},
		{RegSSUBase + 4, "SSU0.ALPHA"},
		{RegGPUBase + 12, "GPU1.ALPHA"},
		{RegAPUBase + 16, "APU2.TIME"},
	} {
		if got := RegName(tc.off); got != tc.want {
			t.Errorf("RegName(0x%03X) = %q, want %q", tc.off, got, tc.want)
		}
	}
	if RegName(0x1F0) == "" {
		t.Error("unknown registers should still format")
	}
}

func TestRegUnknownReadsZero(t *testing.T) {
	_, u := rig(t, 58, oscillator.Ideal(10e6))
	if u.ReadReg32(0x1FC) != 0 {
		t.Error("unmapped register should read zero")
	}
	u.WriteReg32(0x1FC, 0xFFFF) // unmapped write is a no-op, not a crash
}
