// Package utcsu is a register-accurate behavioural model of the
// Universal Time Coordinated Synchronization Unit ASIC (paper §3.3).
//
// The real chip (0.7 µm CMOS, ~65k gates) contains:
//
//   - LTU: an adder-based local clock in 56-bit NTP format, fine-grained
//     rate adjustable in ~10 ns/s steps, with state adjustment via
//     continuous amortization and hardware leap-second support;
//   - ACU: two more adder-based "clocks" holding the accuracies α⁻/α⁺,
//     automatically deteriorated to account for the maximum oscillator
//     drift, saturating instead of wrapping;
//   - SSU ×6, GPU ×3, APU ×9: time/accuracy-stamping units for network
//     triggers, GPS 1pps inputs and application events;
//   - several 48-bit duty timers raising interrupts when local time
//     reaches a programmed value;
//   - an interrupt unit mapping all sources onto the INTN/INTT/INTA pins;
//   - SNU/BTU: snapshot and built-in-test support.
//
// The model keeps the clock as piecewise-affine functions of the
// oscillator tick index, so reading it is O(1) and its granularity
// (2⁻²⁴ s) and rate-adjustment step (2⁻⁵¹ s per tick) are bit-exact.
package utcsu

import (
	"fmt"

	"ntisim/internal/fixpt"
	"ntisim/internal/oscillator"
	"ntisim/internal/sim"
	"ntisim/internal/timefmt"
)

// Interrupt lines of the UTCSU (paper Fig. 5).
type IntLine int

const (
	INTN IntLine = iota // network-related (SSU sampling)
	INTT                // timer-related (duty timers, amortization end)
	INTA                // application-related (APU, GPU)
	numIntLines
)

func (l IntLine) String() string {
	switch l {
	case INTN:
		return "INTN"
	case INTT:
		return "INTT"
	case INTA:
		return "INTA"
	}
	return fmt.Sprintf("IntLine(%d)", int(l))
}

// Counts of the timestamping units (paper §3.3).
const (
	NumSSU = 6 // network send/receive stamp units
	NumGPU = 3 // GPS 1pps stamp units
	NumAPU = 9 // application stamp units
)

// Config configures a UTCSU instance.
type Config struct {
	// Osc paces the chip. The UTCSU accepts 1..20 MHz (paper §3.3).
	Osc *oscillator.Oscillator
	// TwoStageSync selects the two-stage input synchronizer (reliable
	// pin high): recovery time 2/fosc instead of 1/fosc.
	TwoStageSync bool
}

// UTCSU is one chip instance. It is not safe for concurrent use; the
// simulation is single-threaded by construction.
type UTCSU struct {
	sim *sim.Simulator
	osc *oscillator.Oscillator
	cfg Config

	ltu ltu
	acu acu

	ssu [NumSSU]SampleUnit
	gpu [NumGPU]SampleUnit
	apu [NumAPU]SampleUnit

	timers    []*DutyTimer
	intr      interruptUnit
	regs      regFile
	snapshots uint64
}

// New builds a UTCSU paced by cfg.Osc, with the clock and accuracies at
// zero and the nominal-rate augend loaded.
func New(s *sim.Simulator, cfg Config) *UTCSU {
	if cfg.Osc == nil {
		panic("utcsu: nil oscillator")
	}
	f := cfg.Osc.NominalHz()
	if f < 1e6 || f > 20e6 {
		panic(fmt.Sprintf("utcsu: oscillator frequency %v Hz outside 1..20 MHz", f))
	}
	u := &UTCSU{sim: s, osc: cfg.Osc, cfg: cfg}
	u.ltu.init(u)
	u.acu.init(u)
	for i := range u.ssu {
		u.ssu[i].owner, u.ssu[i].line = u, INTN
	}
	for i := range u.gpu {
		u.gpu[i].owner, u.gpu[i].line = u, INTA
	}
	for i := range u.apu {
		u.apu[i].owner, u.apu[i].line = u, INTA
	}
	return u
}

// Osc returns the pacing oscillator.
func (u *UTCSU) Osc() *oscillator.Oscillator { return u.osc }

// tick returns the current oscillator tick index.
func (u *UTCSU) tick() uint64 { return u.osc.TickIndex(u.sim.Now()) }

// syncDelayTicks is the synchronizer depth for asynchronous inputs.
func (u *UTCSU) syncDelayTicks() uint64 {
	if u.cfg.TwoStageSync {
		return 2
	}
	return 1
}

// Now returns the current clock reading quantized to the 2⁻²⁴ s register
// granularity, exactly what software sees in the timestamp registers.
func (u *UTCSU) Now() timefmt.Stamp {
	return timefmt.StampFromTime(u.ltu.valueAt(u.tick()))
}

// NowFine returns the full-resolution internal clock value (only the
// simulation and the NTPA bus can see this; software cannot).
func (u *UTCSU) NowFine() fixpt.Time { return u.ltu.valueAt(u.tick()) }

// ReadWords performs the atomic two-word register read of the clock:
// timestamp and macrostamp including the BTU checksum.
func (u *UTCSU) ReadWords() (timestamp, macrostamp uint32) {
	return u.Now().Words()
}

// SSU, GPU and APU accessors.

// SSU returns network timestamp unit i (0..5).
func (u *UTCSU) SSU(i int) *SampleUnit { return &u.ssu[i] }

// GPU returns GPS timestamp unit i (0..2).
func (u *UTCSU) GPU(i int) *SampleUnit { return &u.gpu[i] }

// APU returns application timestamp unit i (0..8).
func (u *UTCSU) APU(i int) *SampleUnit { return &u.apu[i] }

// Snapshot atomically captures clock, accuracies and the simulated true
// time — the model of the SNU's HWSNAP feature, which the paper provides
// precisely "to facilitate an experimental evaluation of precision/
// accuracy". The true-time field is the simulation's ground truth.
type Snapshot struct {
	TrueTime   float64
	Clock      timefmt.Stamp
	AlphaMinus timefmt.Alpha
	AlphaPlus  timefmt.Alpha
}

// Snapshot triggers the SNU.
func (u *UTCSU) Snapshot() Snapshot {
	u.snapshots++
	n := u.tick()
	am, ap := u.acu.at(n)
	return Snapshot{
		TrueTime:   u.sim.Now(),
		Clock:      timefmt.StampFromTime(u.ltu.valueAt(n)),
		AlphaMinus: am,
		AlphaPlus:  ap,
	}
}

// SnapshotCount reports how many snapshots were taken (diagnostics).
func (u *UTCSU) SnapshotCount() uint64 { return u.snapshots }

// Interval returns the current accuracy interval A(t) = [C−α⁻, C+α⁺]
// as maintained by the LTU and ACU together.
func (u *UTCSU) Interval() intervalReading {
	n := u.tick()
	am, ap := u.acu.at(n)
	return intervalReading{
		Ref:   timefmt.StampFromTime(u.ltu.valueAt(n)),
		Minus: am.Duration(),
		Plus:  ap.Duration(),
	}
}

// intervalReading mirrors interval.Interval without importing it, keeping
// the hardware model free of algorithm-layer dependencies.
type intervalReading struct {
	Ref   timefmt.Stamp
	Minus timefmt.Duration
	Plus  timefmt.Duration
}

// NTPABus reads the multiplexed NTPA-bus: the 48-bit-wide export of the
// entire local time and accuracy information "at full speed" (paper
// §3.3), intended for extension modules on the M-Modules' intermodule
// port. Unlike the software-visible registers it carries the full
// internal resolution.
func (u *UTCSU) NTPABus() (t fixpt.Time, alphaMinus, alphaPlus timefmt.Alpha) {
	n := u.tick()
	am, ap := u.acu.at(n)
	return u.ltu.valueAt(n), am, ap
}

// SelfTest is the BTU: it exercises the adder path against a recomputed
// reference and verifies the checksum generator, returning an error on
// mismatch (always nil in this model unless the state was corrupted).
func (u *UTCSU) SelfTest() error {
	n := u.tick()
	v := u.ltu.valueAt(n)
	w := u.ltu.valueAt(n) // re-read must be identical at the same tick
	if v != w {
		return fmt.Errorf("utcsu: BTU adder mismatch: %v vs %v", v, w)
	}
	s := timefmt.StampFromTime(v)
	ts, ms := s.Words()
	if got, ok := timefmt.FromWords(ts, ms); !ok || got != s {
		return fmt.Errorf("utcsu: BTU checksum path corrupt")
	}
	return nil
}
