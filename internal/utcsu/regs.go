package utcsu

import (
	"fmt"

	"ntisim/internal/fixpt"
	"ntisim/internal/timefmt"
)

// Register file — the chip's bus interface (BIU).
//
// The UTCSU is programmed through memory-mapped 32-bit registers; the
// NTI decodes a 512-byte window for them right after its SRAM (paper
// Fig. 6). This file defines the register map and a Read32/Write32 pair
// with hardware semantics — latched timestamp pairs, write-1-to-trigger
// command bits, saturating accuracy loads — so driver-style code can be
// written against addresses instead of Go methods. The Go methods on
// UTCSU remain the primary API; the register file delegates to them.
//
// Register map (byte offsets within the 512-byte window):
//
//	0x000 TIMESTAMP   RO  seconds<7:0> | fraction<23:0> (latches MACROSTAMP)
//	0x004 MACROSTAMP  RO  seconds<31:8> | checksum<7:0> (as latched)
//	0x008 ALPHA       RO  α⁻<15:0> << 16 | α⁺<15:0>
//	0x00C STEP        WO  rate adjustment, signed ppb
//	0x010 AMORTDELTA  WO  state correction in granules (signed); writing
//	                      AMORTGO starts continuous amortization
//	0x014 AMORTGO     WO  bit0 = start amortization with AMORTDELTA
//	0x018 LOADTIME_HI WO  clock load value, seconds
//	0x01C LOADTIME_LO WO  clock load value, fraction<23:0>; the write
//	                      commits the load (StepTo)
//	0x020 ALPHALOAD   WO  α⁻<15:0> << 16 | α⁺<15:0> (SetAlpha)
//	0x024 DRIFTBOUND  WO  deterioration rate, ppb (both sides)
//	0x028 INTENABLE   RW  bit0 INTN, bit1 INTT, bit2 INTA
//	0x02C STATUS      RO  bit0 amortizing, bits8+ snapshot count<23:0>
//	0x040+8i SSUTIME  RO  SSU i sample timestamp word   (i = 0..5)
//	0x044+8i SSUALPHA RO  SSU i sample α⁻|α⁺
//	0x080+8i GPUTIME  RO  GPU i sample timestamp word   (i = 0..2)
//	0x084+8i GPUALPHA RO  GPU i sample α⁻|α⁺
//	0x0A0+8i APUTIME  RO  APU i sample timestamp word   (i = 0..8)
//	0x0A4+8i APUALPHA RO  APU i sample α⁻|α⁺
const (
	RegTimestamp  = 0x000
	RegMacrostamp = 0x004
	RegAlpha      = 0x008
	RegStep       = 0x00C
	RegAmortDelta = 0x010
	RegAmortGo    = 0x014
	RegLoadTimeHi = 0x018
	RegLoadTimeLo = 0x01C
	RegAlphaLoad  = 0x020
	RegDriftBound = 0x024
	RegIntEnable  = 0x028
	RegStatus     = 0x02C
	RegSSUBase    = 0x040
	RegGPUBase    = 0x080
	RegAPUBase    = 0x0A0
	RegWindowSize = 0x200
)

// regFile holds the write-staging state of the register interface.
type regFile struct {
	latchedMacro uint32
	loadHi       uint32
	amortDelta   int32
}

// ReadReg32 performs a bus read of one UTCSU register.
//
// Reading TIMESTAMP atomically latches the matching MACROSTAMP, exactly
// like the hardware's two-word read protocol: software reads 0x000 then
// 0x004 and is guaranteed a consistent 56-bit value even if the second
// wrapped in between.
func (u *UTCSU) ReadReg32(off uint32) uint32 {
	switch off {
	case RegTimestamp:
		ts, ms := u.Now().Words()
		u.regs.latchedMacro = ms
		return ts
	case RegMacrostamp:
		return u.regs.latchedMacro
	case RegAlpha:
		am, ap := u.Alpha()
		return uint32(am)<<16 | uint32(ap)
	case RegIntEnable:
		var v uint32
		for i, l := range []IntLine{INTN, INTT, INTA} {
			if u.IntEnabled(l) {
				v |= 1 << i
			}
		}
		return v
	case RegStatus:
		var v uint32
		if on, _ := u.Amortizing(); on {
			v |= 1
		}
		v |= uint32(u.snapshots&0xFFFFFF) << 8
		return v
	}
	if idx, word, ok := sampleReg(off, RegSSUBase, NumSSU); ok {
		return u.sampleWord(&u.ssu[idx], word)
	}
	if idx, word, ok := sampleReg(off, RegGPUBase, NumGPU); ok {
		return u.sampleWord(&u.gpu[idx], word)
	}
	if idx, word, ok := sampleReg(off, RegAPUBase, NumAPU); ok {
		return u.sampleWord(&u.apu[idx], word)
	}
	return 0
}

// WriteReg32 performs a bus write of one UTCSU register.
func (u *UTCSU) WriteReg32(off uint32, v uint32) {
	switch off {
	case RegStep:
		u.SetRatePPB(int64(int32(v)))
	case RegAmortDelta:
		u.regs.amortDelta = int32(v)
	case RegAmortGo:
		if v&1 != 0 {
			u.Amortize(timefmt.Duration(u.regs.amortDelta), DefaultAmortPPM)
		}
	case RegLoadTimeHi:
		u.regs.loadHi = v
	case RegLoadTimeLo:
		st := timefmt.StampFromTime(fixpt.FromSecFrac(int64(int32(u.regs.loadHi)), uint64(v&0xFFFFFF)<<40))
		u.StepTo(st)
	case RegAlphaLoad:
		u.SetAlpha(timefmt.Duration(v>>16), timefmt.Duration(v&0xFFFF))
	case RegDriftBound:
		u.SetDriftBoundPPB(int64(v), int64(v))
	case RegIntEnable:
		for i, l := range []IntLine{INTN, INTT, INTA} {
			u.EnableInt(l, v&(1<<i) != 0)
		}
	}
}

// sampleReg decodes a sample-unit register offset.
func sampleReg(off, base uint32, n int) (idx int, word int, ok bool) {
	if off < base || off >= base+uint32(8*n) {
		return 0, 0, false
	}
	rel := off - base
	return int(rel / 8), int(rel % 8 / 4), true
}

// sampleWord returns word 0 (timestamp) or 1 (alphas) of a unit's sample.
func (u *UTCSU) sampleWord(su *SampleUnit, word int) uint32 {
	st, am, ap, _ := su.Read()
	if word == 0 {
		ts, _ := st.Words()
		return ts
	}
	return uint32(am)<<16 | uint32(ap)
}

// RegName returns a human-readable name for a register offset, for
// trace tools.
func RegName(off uint32) string {
	switch off {
	case RegTimestamp:
		return "TIMESTAMP"
	case RegMacrostamp:
		return "MACROSTAMP"
	case RegAlpha:
		return "ALPHA"
	case RegStep:
		return "STEP"
	case RegAmortDelta:
		return "AMORTDELTA"
	case RegAmortGo:
		return "AMORTGO"
	case RegLoadTimeHi:
		return "LOADTIME_HI"
	case RegLoadTimeLo:
		return "LOADTIME_LO"
	case RegAlphaLoad:
		return "ALPHALOAD"
	case RegDriftBound:
		return "DRIFTBOUND"
	case RegIntEnable:
		return "INTENABLE"
	case RegStatus:
		return "STATUS"
	}
	if i, w, ok := sampleReg(off, RegSSUBase, NumSSU); ok {
		return fmt.Sprintf("SSU%d.%s", i, wordName(w))
	}
	if i, w, ok := sampleReg(off, RegGPUBase, NumGPU); ok {
		return fmt.Sprintf("GPU%d.%s", i, wordName(w))
	}
	if i, w, ok := sampleReg(off, RegAPUBase, NumAPU); ok {
		return fmt.Sprintf("APU%d.%s", i, wordName(w))
	}
	return fmt.Sprintf("reg(0x%03X)", off)
}

func wordName(w int) string {
	if w == 0 {
		return "TIME"
	}
	return "ALPHA"
}
