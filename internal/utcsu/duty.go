package utcsu

import (
	"math/bits"

	"ntisim/internal/sim"
	"ntisim/internal/timefmt"
)

// DutyTimer is one of the UTCSU's 48-bit programmable duty timers: when
// local time reaches the programmed value an interrupt is raised (paper
// §3.3). Duty timers pace the CSP exchange protocol, continuous
// amortization, leap seconds and application events.
//
// Because the model's clock is piecewise affine in the tick index, the
// firing moment is computed by inverting the current segment; rate
// adjustments and amortization re-arm every pending timer, and the firing
// handler double-checks the clock actually reached the target (the
// underlying oscillator may have drifted between arming and firing),
// re-arming itself if not.
type DutyTimer struct {
	u      *UTCSU
	target timefmt.Stamp
	fn     func()
	// fireFn caches the dt.fire method value: arm runs on every rate
	// adjustment and amortization step, and a fresh bound-method closure
	// per arm was the second-largest allocation site of a campaign run.
	fireFn func()
	ev     *sim.Event
	done   bool
}

// DutyAt arms a duty timer to call fn when the local clock reaches
// target. The callback runs in simulation context (it models the ISR the
// CPU attaches to the timer interrupt). If target is already in the past
// the timer fires at the next tick.
func (u *UTCSU) DutyAt(target timefmt.Stamp, fn func()) *DutyTimer {
	dt := &DutyTimer{u: u, target: target, fn: fn}
	dt.fireFn = dt.fire
	u.timers = append(u.timers, dt)
	dt.arm()
	return dt
}

// Cancel disarms the timer.
func (dt *DutyTimer) Cancel() {
	if dt.done {
		return
	}
	dt.done = true
	if dt.ev != nil {
		dt.ev.Cancel()
		dt.ev = nil
	}
	dt.u.removeTimer(dt)
}

// Pending reports whether the timer is still armed.
func (dt *DutyTimer) Pending() bool { return !dt.done }

// Target returns the programmed compare value.
func (dt *DutyTimer) Target() timefmt.Stamp { return dt.target }

// arm (re)schedules the underlying simulation event.
func (dt *DutyTimer) arm() {
	if dt.done {
		return
	}
	if dt.ev != nil {
		dt.ev.Cancel()
	}
	u := dt.u
	n := u.fireTickFor(dt.target)
	at := u.osc.TimeOfTick(n)
	if now := u.sim.Now(); at < now {
		at = now
	}
	dt.ev = u.sim.At(at, dt.fireFn)
}

func (dt *DutyTimer) fire() {
	dt.ev = nil
	if dt.done {
		return
	}
	u := dt.u
	if u.Now() < dt.target {
		// Oscillator segments shifted after arming; try again strictly
		// later so a pathological mapping can never loop in place.
		n := u.fireTickFor(dt.target)
		at := u.osc.TimeOfTick(n)
		if min := u.sim.Now() + u.osc.NominalPeriod()/2; at < min {
			at = min
		}
		dt.ev = u.sim.At(at, dt.fireFn)
		return
	}
	dt.done = true
	u.removeTimer(dt)
	u.intr.raise(u, INTT, "DUTY")
	dt.fn()
}

// fireTickFor computes the first tick at which the clock reads >= target.
func (u *UTCSU) fireTickFor(target timefmt.Stamp) uint64 {
	l := &u.ltu
	now := u.tick()
	if timefmt.StampFromTime(l.valueAt(now)) >= target {
		return now + 1 // already past: fire on the next edge
	}
	seg := l.segs[len(l.segs)-1]
	start := seg.startTick
	if now > start {
		start = now
	}
	cur := l.valueAt(start)
	diff := target.Time().Sub(cur)
	if diff.IsNegative() {
		return start + 1
	}
	// ticks = ceil(diff / augend), computed as a 128-bit division:
	// diff = Sec·2^64 + Frac units of 2⁻⁶⁴ s. Sec is far below the augend
	// (≈9e11) for any realistic span, so the quotient fits 64 bits.
	aug := seg.augend
	ticks, rem := bits.Div64(uint64(diff.Sec), diff.Frac, aug)
	if rem != 0 {
		ticks++
	}
	if ticks == 0 {
		ticks = 1
	}
	return start + ticks
}

// rearmTimers recomputes all pending timers after a clock segment change.
func (u *UTCSU) rearmTimers() {
	for _, dt := range u.timers {
		dt.arm()
	}
}

func (u *UTCSU) removeTimer(dt *DutyTimer) {
	for i, t := range u.timers {
		if t == dt {
			u.timers = append(u.timers[:i], u.timers[i+1:]...)
			return
		}
	}
}

// PendingTimers reports the number of armed duty timers (diagnostics).
func (u *UTCSU) PendingTimers() int { return len(u.timers) }
