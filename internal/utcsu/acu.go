package utcsu

import (
	"sort"

	"ntisim/internal/fixpt"
	"ntisim/internal/timefmt"
)

// acu is the Accuracy Unit: two adder-based "clocks" holding and
// automatically deteriorating the accuracies α⁻ and α⁺ (paper §3.3).
//
// Each side accumulates at a programmable deterioration rate (the a
// priori drift bound, loaded by the rate-synchronization layer) per
// oscillator tick. During continuous amortization the clock value moves
// through its own accuracy interval, so the side the clock moves towards
// shrinks and the other grows by the amortization rate — with the
// hardware's zero-masking: a shrinking accuracy saturates at zero rather
// than going negative. Register reads saturate at the 16-bit width
// rather than wrapping.
type acu struct {
	u *UTCSU
	// Deterioration rates in 2⁻⁶⁴ s units per tick.
	detMinus uint64
	detPlus  uint64
	minus    []acuSeg
	plus     []acuSeg
}

type acuSeg struct {
	startTick uint64
	base      int64 // accuracy in 2⁻⁶⁴ s units at startTick (≥ 0)
	rate      int64 // signed units per tick
}

// satUnits caps the internal accumulator a little above the register
// saturation point so the value cannot overflow during long runs.
const satUnits = (int64(timefmt.AlphaMax) + 1) << 40

func (a *acu) init(u *UTCSU) {
	a.u = u
	a.minus = []acuSeg{{}}
	a.plus = []acuSeg{{}}
}

// SetDriftBoundPPB programs the deterioration rates: the accuracy grows
// by the drift bound per unit of elapsed time, keeping t ∈ A(t) valid as
// the free-running clock drifts (paper §2: "drift compensation must also
// be performed continuously by the local interval clock").
func (u *UTCSU) SetDriftBoundPPB(minusPPB, plusPPB int64) {
	a := &u.acu
	a.detMinus = fixpt.AugendForRate(u.osc.NominalHz(), float64(minusPPB)*1e-9)
	a.detPlus = fixpt.AugendForRate(u.osc.NominalHz(), float64(plusPPB)*1e-9)
	a.reseg()
}

// SetAlpha loads both accuracy registers atomically (in conjunction with
// a clock adjustment, this is the interval (re)initialization).
func (u *UTCSU) SetAlpha(minus, plus timefmt.Duration) {
	a := &u.acu
	n := u.tick() + 1
	a.place(&a.minus, acuSeg{startTick: n, base: clampUnits(int64(clampDur(minus)) << 40), rate: a.rateMinus()})
	a.place(&a.plus, acuSeg{startTick: n, base: clampUnits(int64(clampDur(plus)) << 40), rate: a.ratePlus()})
}

// EnlargeAlpha grows the accuracies (e.g. after adding a delay
// compensation term); negative arguments are ignored side-wise.
func (u *UTCSU) EnlargeAlpha(dMinus, dPlus timefmt.Duration) {
	a := &u.acu
	n := u.tick() + 1
	am, ap := a.unitsAt(n)
	if dMinus > 0 {
		am += int64(clampDur(dMinus)) << 40
	}
	if dPlus > 0 {
		ap += int64(clampDur(dPlus)) << 40
	}
	a.place(&a.minus, acuSeg{startTick: n, base: clampUnits(am), rate: a.rateMinus()})
	a.place(&a.plus, acuSeg{startTick: n, base: clampUnits(ap), rate: a.ratePlus()})
}

// Alpha returns the current saturated register values.
func (u *UTCSU) Alpha() (minus, plus timefmt.Alpha) {
	return u.acu.at(u.tick())
}

func clampDur(d timefmt.Duration) timefmt.Duration {
	if d < 0 {
		return 0
	}
	if d > timefmt.Duration(timefmt.AlphaMax) {
		return timefmt.Duration(timefmt.AlphaMax)
	}
	return d
}

func clampUnits(v int64) int64 {
	if v < 0 {
		return 0
	}
	if v > satUnits {
		return satUnits
	}
	return v
}

// rateMinus/ratePlus fold the amortization coupling into the
// deterioration rates: while the clock is sped up by amortDelta per tick
// (moving towards the upper edge), α⁺ shrinks and α⁻ grows by the same
// amount, keeping the interval edges fixed in real time.
func (a *acu) rateMinus() int64 { return int64(a.detMinus) + a.u.ltu.amortDeltaNow() }
func (a *acu) ratePlus() int64  { return int64(a.detPlus) - a.u.ltu.amortDeltaNow() }

// onClockSegChange re-segments both sides so rate coupling follows the
// LTU's amortization state.
func (a *acu) onClockSegChange() { a.reseg() }

func (a *acu) reseg() {
	n := a.u.tick() + 1
	am, ap := a.unitsAt(n)
	a.place(&a.minus, acuSeg{startTick: n, base: clampUnits(am), rate: a.rateMinus()})
	a.place(&a.plus, acuSeg{startTick: n, base: clampUnits(ap), rate: a.ratePlus()})
}

func (a *acu) place(side *[]acuSeg, s acuSeg) {
	segs := *side
	if last := &segs[len(segs)-1]; last.startTick == s.startTick {
		*last = s
	} else if last.startTick > s.startTick {
		// Can only happen for startTick regressions caused by tick()+1
		// racing a same-tick placement; overwrite conservatively.
		*last = s
	} else {
		*side = append(segs, s)
	}
}

func segAtTick(segs []acuSeg, n uint64) *acuSeg {
	if last := &segs[len(segs)-1]; n >= last.startTick {
		return last
	}
	i := sort.Search(len(segs), func(i int) bool { return segs[i].startTick > n })
	if i == 0 {
		return &segs[0]
	}
	return &segs[i-1]
}

// unitsAt evaluates both accumulators at tick n with zero-masking.
func (a *acu) unitsAt(n uint64) (am, ap int64) {
	evalSide := func(segs []acuSeg) int64 {
		s := segAtTick(segs, n)
		dn := int64(n - s.startTick)
		// Saturate before the multiply can overflow.
		if s.rate > 0 && dn > (satUnits-s.base)/s.rate {
			return satUnits
		}
		if s.rate < 0 && dn > s.base/(-s.rate) {
			return 0
		}
		return clampUnits(s.base + s.rate*dn)
	}
	return evalSide(a.minus), evalSide(a.plus)
}

// at returns the saturated 16-bit register values at tick n.
func (a *acu) at(n uint64) (timefmt.Alpha, timefmt.Alpha) {
	am, ap := a.unitsAt(n)
	return unitsToAlpha(am), unitsToAlpha(ap)
}

func unitsToAlpha(v int64) timefmt.Alpha {
	g := v >> 40
	if g >= int64(timefmt.AlphaMax) {
		return timefmt.AlphaMax
	}
	if g < 0 {
		return 0
	}
	return timefmt.Alpha(g)
}
