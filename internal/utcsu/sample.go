package utcsu

import "ntisim/internal/timefmt"

// SampleUnit models one time/accuracy-stamping unit: an SSU (network
// transmit/receive triggers), GPU (GPS 1pps) or APU (application event)
// channel. An external transition samples local time and both accuracies
// atomically into dedicated registers and optionally raises an interrupt
// (paper §3.3).
//
// Asynchronous inputs pass through a one- or two-stage synchronizer, so
// the sample reflects the clock at the next (or next-but-one) oscillator
// tick after the physical event — a timing uncertainty of at most
// 1/fosc (resp. 2/fosc), exactly as in the chip.
type SampleUnit struct {
	owner *UTCSU
	line  IntLine

	stamp      timefmt.Stamp
	alphaMinus timefmt.Alpha
	alphaPlus  timefmt.Alpha
	seq        uint64
	intrOn     bool
	invert     bool // programmable input polarity
}

// EnableInterrupt selects whether a trigger raises the unit's interrupt.
func (su *SampleUnit) EnableInterrupt(on bool) { su.intrOn = on }

// SetPolarity programs the trigger polarity (falling edge when invert is
// true). In the simulation Trigger carries the edge explicitly.
func (su *SampleUnit) SetPolarity(invert bool) { su.invert = invert }

// Trigger registers an input transition occurring now. rising tells the
// edge direction; a unit programmed for the opposite polarity ignores it.
// It returns the sampled stamp for convenience (the simulation caller is
// the signal source, e.g. the NTI decode logic).
func (su *SampleUnit) Trigger(rising bool) (timefmt.Stamp, bool) {
	if rising == su.invert {
		return 0, false
	}
	u := su.owner
	// Synchronizer: the sample is latched at the next oscillator edge(s).
	n := u.osc.TickIndex(u.sim.Now()) + u.syncDelayTicks()
	su.stamp = timefmt.StampFromTime(u.ltu.valueAt(n))
	su.alphaMinus, su.alphaPlus = u.acu.at(n)
	su.seq++
	if su.intrOn {
		u.intr.raise(u, su.line, "SAMPLE")
	}
	return su.stamp, true
}

// Read returns the sample registers and the sample sequence number, which
// software uses to detect overruns (a new trigger before the previous
// sample was consumed).
func (su *SampleUnit) Read() (stamp timefmt.Stamp, alphaMinus, alphaPlus timefmt.Alpha, seq uint64) {
	return su.stamp, su.alphaMinus, su.alphaPlus, su.seq
}

// Seq returns the number of triggers accepted so far.
func (su *SampleUnit) Seq() uint64 { return su.seq }
