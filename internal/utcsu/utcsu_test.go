package utcsu

import (
	"math"
	"testing"
	"testing/quick"

	"ntisim/internal/fixpt"
	"ntisim/internal/oscillator"
	"ntisim/internal/sim"
	"ntisim/internal/timefmt"
)

// rig builds a simulator + UTCSU on an oscillator config.
func rig(t testing.TB, seed uint64, cfg oscillator.Config) (*sim.Simulator, *UTCSU) {
	t.Helper()
	s := sim.New(seed)
	o := oscillator.New(s, cfg, "dut")
	return s, New(s, Config{Osc: o})
}

func TestNominalRate(t *testing.T) {
	s, u := rig(t, 1, oscillator.Ideal(10e6))
	s.RunUntil(10)
	got := u.Now().Seconds()
	// Augend truncation to 2^-51 loses at most fosc*2^-51 per second.
	maxErr := 10 * 10e6 / math.Exp2(51) * 10
	if math.Abs(got-10) > maxErr+timefmt.Granule {
		t.Errorf("clock after 10 s = %v (err %v)", got, got-10)
	}
}

func TestGranularity(t *testing.T) {
	_, u := rig(t, 1, oscillator.Ideal(10e6))
	v := u.Now()
	if v.Time().Frac%(1<<40) != 0 {
		t.Error("Now() not quantized to 2^-24 s")
	}
}

func TestFrequencyRangeEnforced(t *testing.T) {
	s := sim.New(1)
	for _, f := range []float64{0.5e6, 25e6} {
		o := oscillator.New(s, oscillator.Ideal(f), "bad")
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("frequency %v accepted", f)
				}
			}()
			New(s, Config{Osc: o})
		}()
	}
}

func TestSetRatePPB(t *testing.T) {
	s, u := rig(t, 1, oscillator.Ideal(10e6))
	u.SetRatePPB(100_000) // +100 ppm
	s.RunUntil(10)
	got := u.Now().Seconds()
	want := 10 * (1 + 100e-6)
	if math.Abs(got-want) > 1e-5 {
		t.Errorf("clock with +100ppm after 10 s = %v, want %v", got, want)
	}
	if u.RatePPB() != 100_000 {
		t.Errorf("RatePPB = %v", u.RatePPB())
	}
}

func TestRateStepGranularity(t *testing.T) {
	// Paper §3.3: rate adjustable in steps of ~10 ns/s. At 20 MHz the
	// step is 20e6*2^-51 ≈ 8.9 ppb.
	_, u := rig(t, 1, oscillator.Ideal(20e6))
	step := u.RateStepPPB()
	if step < 5 || step > 15 {
		t.Errorf("rate step = %v ppb, want ~10", step)
	}
	// A rate request below one step has no effect on the augend.
	s2, u2 := rig(t, 2, oscillator.Ideal(20e6))
	u2.SetRatePPB(1) // below one quantum
	s2.RunUntil(5)
	got := u2.Now().Seconds()
	if math.Abs(got-5) > 5*20e6/math.Exp2(51)*5+timefmt.Granule {
		t.Errorf("sub-quantum rate change moved the clock: %v", got)
	}
}

func TestStepTo(t *testing.T) {
	s, u := rig(t, 1, oscillator.Ideal(10e6))
	s.RunUntil(1)
	target := timefmt.Stamp(timefmt.DurationFromSeconds(100))
	u.StepTo(target)
	s.RunUntil(1.001)
	got := u.Now().Seconds()
	if math.Abs(got-100.001) > 1e-5 {
		t.Errorf("after StepTo(100): %v", got)
	}
}

func TestAmortizeForward(t *testing.T) {
	s, u := rig(t, 1, oscillator.Ideal(10e6))
	s.RunUntil(1)
	before := u.Now()
	delta := timefmt.DurationFromSeconds(100e-6) // +100 µs
	u.Amortize(delta, 5000)                      // 0.5% speedup -> ~20 ms long
	if on, d := u.Amortizing(); !on || d != delta {
		t.Errorf("Amortizing = %v %v", on, d)
	}
	s.RunUntil(1.1) // well past amortization end
	if on, _ := u.Amortizing(); on {
		t.Error("amortization did not end")
	}
	got := u.Now().Sub(before).Seconds()
	want := 0.1 + 100e-6
	if math.Abs(got-want) > 2e-6 {
		t.Errorf("advance over 100ms = %v, want %v", got, want)
	}
	if u.RaisedCount(INTT) == 0 {
		t.Error("no INTT at amortization end")
	}
}

func TestAmortizeBackwardMonotonic(t *testing.T) {
	s, u := rig(t, 1, oscillator.Ideal(10e6))
	s.RunUntil(1)
	u.Amortize(timefmt.DurationFromSeconds(-50e-6), 5000)
	prev := u.Now()
	for x := 1.0; x < 1.05; x += 0.0001 {
		s.RunUntil(x)
		cur := u.Now()
		if cur < prev {
			t.Fatalf("clock went backwards during amortization: %v < %v", cur, prev)
		}
		prev = cur
	}
	s.RunUntil(1.2)
	got := u.Now().Seconds()
	want := 1.2 - 50e-6
	if math.Abs(got-want) > 2e-6 {
		t.Errorf("after -50µs amortization: %v, want %v", got, want)
	}
}

func TestAmortizeZeroNoop(t *testing.T) {
	s, u := rig(t, 1, oscillator.Ideal(10e6))
	u.Amortize(0, 5000)
	if on, _ := u.Amortizing(); on {
		t.Error("zero amortization should be a no-op")
	}
	s.RunUntil(1)
}

func TestAmortizeSupersede(t *testing.T) {
	s, u := rig(t, 1, oscillator.Ideal(10e6))
	s.RunUntil(1)
	u.Amortize(timefmt.DurationFromSeconds(500e-6), 1000)
	s.RunUntil(1.01)
	// Supersede mid-flight with a new adjustment.
	u.Amortize(timefmt.DurationFromSeconds(10e-6), 5000)
	s.RunUntil(2)
	if on, _ := u.Amortizing(); on {
		t.Error("second amortization never ended")
	}
}

func TestAlphaDeterioration(t *testing.T) {
	s, u := rig(t, 1, oscillator.Ideal(10e6))
	u.SetDriftBoundPPB(2000, 2000) // 2 ppm per side
	u.SetAlpha(0, 0)
	s.RunUntil(10)
	am, ap := u.Alpha()
	// 2 ppm over 10 s = 20 µs ≈ 335 granules.
	want := 20e-6
	if math.Abs(am.Duration().Seconds()-want) > 1e-6 || math.Abs(ap.Duration().Seconds()-want) > 1e-6 {
		t.Errorf("alpha after 10s = %v/%v, want ~20µs", am, ap)
	}
}

func TestAlphaSetAndEnlarge(t *testing.T) {
	s, u := rig(t, 1, oscillator.Ideal(10e6))
	u.SetAlpha(timefmt.DurationFromSeconds(10e-6), timefmt.DurationFromSeconds(20e-6))
	s.RunUntil(0.001)
	am, ap := u.Alpha()
	if math.Abs(am.Duration().Seconds()-10e-6) > 1e-6 || math.Abs(ap.Duration().Seconds()-20e-6) > 1e-6 {
		t.Errorf("SetAlpha -> %v/%v", am, ap)
	}
	u.EnlargeAlpha(timefmt.DurationFromSeconds(5e-6), 0)
	s.RunUntil(0.002)
	am2, _ := u.Alpha()
	if d := am2.Duration().Seconds() - am.Duration().Seconds(); math.Abs(d-5e-6) > 1e-6 {
		t.Errorf("EnlargeAlpha minus grew by %v", d)
	}
}

func TestAlphaSaturates(t *testing.T) {
	s, u := rig(t, 1, oscillator.Ideal(10e6))
	u.SetDriftBoundPPB(100_000, 100_000) // huge: 100 ppm
	u.SetAlpha(0, 0)
	s.RunUntil(60) // 100ppm*60s = 6 ms > 3.9 ms register max
	am, ap := u.Alpha()
	if am != timefmt.AlphaMax || ap != timefmt.AlphaMax {
		t.Errorf("alpha should saturate: %v/%v", am, ap)
	}
	// Long after saturation it must stay there (no wraparound), even at
	// extreme horizons where naive accumulators would overflow.
	s.RunUntil(20000)
	am, ap = u.Alpha()
	if am != timefmt.AlphaMax || ap != timefmt.AlphaMax {
		t.Errorf("alpha wrapped after saturation: %v/%v", am, ap)
	}
}

func TestAmortizationCouplesAlpha(t *testing.T) {
	// While amortizing forward, the clock moves toward the interval's
	// upper edge: α⁺ must shrink and α⁻ grow at the amortization rate.
	s, u := rig(t, 1, oscillator.Ideal(10e6))
	u.SetAlpha(timefmt.DurationFromSeconds(100e-6), timefmt.DurationFromSeconds(100e-6))
	s.RunUntil(0.5)
	am0, ap0 := u.Alpha()
	u.Amortize(timefmt.DurationFromSeconds(50e-6), 5000)
	s.RunUntil(0.6) // amortization of 50µs at 0.5% takes 10 ms
	am1, ap1 := u.Alpha()
	dMinus := am1.Duration().Seconds() - am0.Duration().Seconds()
	dPlus := ap1.Duration().Seconds() - ap0.Duration().Seconds()
	if math.Abs(dMinus-50e-6) > 3e-6 {
		t.Errorf("alpha- grew by %v, want ~50µs", dMinus)
	}
	if math.Abs(dPlus+50e-6) > 3e-6 {
		t.Errorf("alpha+ changed by %v, want ~-50µs", dPlus)
	}
}

func TestAlphaZeroMaskDuringAmortization(t *testing.T) {
	// If α⁺ is already tiny, forward amortization would drive it
	// negative; the hardware zero-masks it instead.
	s, u := rig(t, 1, oscillator.Ideal(10e6))
	u.SetAlpha(timefmt.DurationFromSeconds(10e-6), timefmt.DurationFromSeconds(1e-6))
	s.RunUntil(0.5)
	u.Amortize(timefmt.DurationFromSeconds(80e-6), 5000)
	s.RunUntil(0.508) // mid-amortization (16 ms total)
	_, ap := u.Alpha()
	if ap.Duration() < 0 {
		t.Fatalf("alpha+ negative: %v", ap)
	}
	s.RunUntil(0.6)
	_, apEnd := u.Alpha()
	if apEnd.Duration() < 0 {
		t.Fatalf("alpha+ negative after amortization: %v", apEnd)
	}
}

func TestContainmentInvariant(t *testing.T) {
	// The core interval-clock invariant (P/A, paper §2): with the drift
	// bound programmed at least as large as the true oscillator drift,
	// real time stays inside [C-α⁻, C+α⁺] forever (no resync needed:
	// deterioration covers the drift).
	s := sim.New(7)
	cfg := oscillator.TCXO(10e6)
	o := oscillator.New(s, cfg, "dut")
	u := New(s, Config{Osc: o})
	// Initialize the clock to true time with a small initial alpha.
	u.StepTo(timefmt.StampFromTime(fixptFromFloat(s.Now())))
	u.SetAlpha(timefmt.DurationFromSeconds(2e-6), timefmt.DurationFromSeconds(2e-6))
	rho := int64(o.MaxDrift()*1e9) + 1
	u.SetDriftBoundPPB(rho, rho)
	for x := 1.0; x <= 120; x += 1 {
		s.RunUntil(x)
		snap := u.Snapshot()
		truth := timefmt.DurationFromSeconds(snap.TrueTime)
		lo := timefmt.Duration(snap.Clock) - snap.AlphaMinus.Duration()
		hi := timefmt.Duration(snap.Clock) + snap.AlphaPlus.Duration() + 1 // reading granularity
		if truth < lo || truth > hi {
			t.Fatalf("t=%v: truth %v outside [%v, %v]", x, truth, lo, hi)
		}
	}
}

func TestSampleUnitQuantization(t *testing.T) {
	s, u := rig(t, 1, oscillator.Ideal(1e6)) // 1 µs ticks: visible quantization
	s.RunUntil(0.5)
	su := u.APU(0)
	st, ok := su.Trigger(true)
	if !ok {
		t.Fatal("trigger rejected")
	}
	// Sample reflects the next tick: within (0, 2] µs of now (1 tick
	// synchronizer + reading granularity).
	d := st.Seconds() - 0.5
	if d < 0 || d > 2.1e-6 {
		t.Errorf("sample offset from event = %v", d)
	}
	if su.Seq() != 1 {
		t.Errorf("seq = %d", su.Seq())
	}
}

func TestSampleUnitTwoStage(t *testing.T) {
	s := sim.New(1)
	o := oscillator.New(s, oscillator.Ideal(1e6), "dut")
	u := New(s, Config{Osc: o, TwoStageSync: true})
	s.RunUntil(0.5)
	st, _ := u.APU(0).Trigger(true)
	one := New(s, Config{Osc: o})
	st1, _ := one.APU(0).Trigger(true)
	if st <= st1 {
		t.Errorf("two-stage sample %v should lag one-stage %v", st, st1)
	}
}

func TestSampleUnitPolarity(t *testing.T) {
	s, u := rig(t, 1, oscillator.Ideal(10e6))
	s.RunUntil(0.1)
	su := u.APU(1)
	su.SetPolarity(true) // falling edges only
	if _, ok := su.Trigger(true); ok {
		t.Error("rising edge accepted by falling-polarity unit")
	}
	if _, ok := su.Trigger(false); !ok {
		t.Error("falling edge rejected")
	}
}

func TestSampleUnitInterrupt(t *testing.T) {
	s, u := rig(t, 1, oscillator.Ideal(10e6))
	s.RunUntil(0.1)
	var got []IntLine
	u.OnInterrupt(func(l IntLine, src string) { got = append(got, l) })
	u.EnableInt(INTN, true)
	u.SSU(0).EnableInterrupt(true)
	u.SSU(0).Trigger(true)
	if len(got) != 1 || got[0] != INTN {
		t.Errorf("interrupts = %v", got)
	}
	// APU goes to INTA; masked -> latched, delivered on unmask.
	u.APU(0).EnableInterrupt(true)
	u.APU(0).Trigger(true)
	if len(got) != 1 {
		t.Error("masked INTA delivered early")
	}
	if !u.PendingInt(INTA) {
		t.Error("INTA not latched")
	}
	u.EnableInt(INTA, true)
	if len(got) != 2 || got[1] != INTA {
		t.Errorf("latched INTA not delivered: %v", got)
	}
}

func TestDutyTimerFires(t *testing.T) {
	s, u := rig(t, 1, oscillator.Ideal(10e6))
	fired := -1.0
	u.DutyAt(timefmt.Stamp(timefmt.DurationFromSeconds(2)), func() { fired = s.Now() })
	s.RunUntil(3)
	if fired < 0 {
		t.Fatal("duty timer never fired")
	}
	if math.Abs(fired-2) > 1e-5 {
		t.Errorf("fired at %v, want ~2", fired)
	}
}

func TestDutyTimerPastTargetFiresImmediately(t *testing.T) {
	s, u := rig(t, 1, oscillator.Ideal(10e6))
	s.RunUntil(5)
	fired := -1.0
	u.DutyAt(timefmt.Stamp(timefmt.DurationFromSeconds(1)), func() { fired = s.Now() })
	s.RunUntil(5.001)
	if fired < 0 || fired > 5.0005 {
		t.Errorf("past-target timer fired at %v", fired)
	}
}

func TestDutyTimerCancel(t *testing.T) {
	s, u := rig(t, 1, oscillator.Ideal(10e6))
	fired := false
	dt := u.DutyAt(timefmt.Stamp(timefmt.DurationFromSeconds(1)), func() { fired = true })
	dt.Cancel()
	if dt.Pending() {
		t.Error("cancelled timer pending")
	}
	s.RunUntil(2)
	if fired {
		t.Error("cancelled timer fired")
	}
	if u.PendingTimers() != 0 {
		t.Errorf("timer list not cleaned: %d", u.PendingTimers())
	}
}

func TestDutyTimerSurvivesRateChange(t *testing.T) {
	s, u := rig(t, 1, oscillator.Ideal(10e6))
	fired := -1.0
	u.DutyAt(timefmt.Stamp(timefmt.DurationFromSeconds(2)), func() { fired = s.Now() })
	s.RunUntil(1)
	u.SetRatePPB(500_000) // clock now runs 0.05% fast
	s.RunUntil(3)
	if fired < 0 {
		t.Fatal("timer lost after rate change")
	}
	// Clock reaches 2.0 earlier than true 2.0 now.
	want := 1 + 1/(1+500e-6)
	if math.Abs(fired-want) > 1e-4 {
		t.Errorf("fired at %v, want ~%v", fired, want)
	}
}

func TestDutyTimerWithDriftingOscillator(t *testing.T) {
	s := sim.New(3)
	o := oscillator.New(s, oscillator.TCXO(10e6), "dut")
	u := New(s, Config{Osc: o})
	fired := -1.0
	u.DutyAt(timefmt.Stamp(timefmt.DurationFromSeconds(30)), func() { fired = s.Now() })
	s.RunUntil(40)
	if fired < 0 {
		t.Fatal("timer never fired under drift")
	}
	// Clock value at firing must be >= target.
	if math.Abs(fired-30) > 0.01 {
		t.Errorf("fired at %v", fired)
	}
}

func TestLeapInsert(t *testing.T) {
	s, u := rig(t, 1, oscillator.Ideal(10e6))
	u.LeapAt(timefmt.Stamp(timefmt.DurationFromSeconds(5)), +1)
	s.RunUntil(6)
	// Insertion: clock repeated one second, so it now lags true time by 1 s.
	got := u.Now().Seconds()
	if math.Abs(got-5) > 1e-4 {
		t.Errorf("after leap insert: clock=%v, want ~5", got)
	}
}

func TestLeapDelete(t *testing.T) {
	s, u := rig(t, 1, oscillator.Ideal(10e6))
	u.LeapAt(timefmt.Stamp(timefmt.DurationFromSeconds(5)), -1)
	s.RunUntil(6)
	got := u.Now().Seconds()
	if math.Abs(got-7) > 1e-4 {
		t.Errorf("after leap delete: clock=%v, want ~7", got)
	}
}

func TestReadWordsChecksum(t *testing.T) {
	s, u := rig(t, 1, oscillator.Ideal(10e6))
	s.RunUntil(123.456)
	ts, ms := u.ReadWords()
	got, ok := timefmt.FromWords(ts, ms)
	if !ok {
		t.Fatal("checksum failed on valid read")
	}
	if got != u.Now() {
		t.Errorf("words decode %v, Now %v", got, u.Now())
	}
}

func TestSelfTest(t *testing.T) {
	s, u := rig(t, 1, oscillator.Ideal(10e6))
	s.RunUntil(1)
	if err := u.SelfTest(); err != nil {
		t.Errorf("SelfTest: %v", err)
	}
}

func TestIntervalReading(t *testing.T) {
	s, u := rig(t, 1, oscillator.Ideal(10e6))
	u.SetAlpha(timefmt.DurationFromSeconds(3e-6), timefmt.DurationFromSeconds(4e-6))
	s.RunUntil(1)
	iv := u.Interval()
	if iv.Ref != u.Now() {
		t.Error("interval ref != Now")
	}
	if iv.Minus.Seconds() < 2e-6 || iv.Plus.Seconds() < 3e-6 {
		t.Errorf("interval accuracies lost: %v/%v", iv.Minus, iv.Plus)
	}
}

func TestSnapshotTruth(t *testing.T) {
	s, u := rig(t, 1, oscillator.Ideal(10e6))
	s.RunUntil(2.5)
	snap := u.Snapshot()
	if snap.TrueTime != 2.5 {
		t.Errorf("snapshot true time = %v", snap.TrueTime)
	}
	if math.Abs(snap.Clock.Seconds()-2.5) > 1e-5 {
		t.Errorf("snapshot clock = %v", snap.Clock)
	}
	if u.SnapshotCount() != 1 {
		t.Errorf("snapshot count = %d", u.SnapshotCount())
	}
}

func fixptFromFloat(s float64) fixpt.Time { return fixpt.FromSeconds(s) }

func TestPPSOutputPulsesOnClockSeconds(t *testing.T) {
	s, u := rig(t, 30, oscillator.Ideal(10e6))
	var labels []int64
	var times []float64
	pps := u.StartPPS(0, func(sec int64) {
		labels = append(labels, sec)
		times = append(times, s.Now())
	})
	s.RunUntil(5.5)
	if len(labels) != 5 {
		t.Fatalf("pulses = %d, want 5", len(labels))
	}
	for i, l := range labels {
		if l != int64(i+1) {
			t.Errorf("pulse %d labelled %d", i, l)
		}
		if math.Abs(times[i]-float64(i+1)) > 1e-5 {
			t.Errorf("pulse %d at %v", i, times[i])
		}
	}
	if pps.Pulses() != 5 {
		t.Errorf("counter = %d", pps.Pulses())
	}
	pps.Stop()
	s.RunUntil(10)
	if pps.Pulses() != 5 {
		t.Error("pulses after Stop")
	}
}

func TestPPSFollowsClockNotTrueTime(t *testing.T) {
	// The pin marks *clock* seconds: a rate-adjusted clock pulses at its
	// own second boundaries, not at true seconds.
	s, u := rig(t, 31, oscillator.Ideal(10e6))
	u.SetRatePPB(100_000_000) // clock runs 10% fast
	var times []float64
	u.StartPPS(1, func(int64) { times = append(times, s.Now()) })
	s.RunUntil(2)
	if len(times) < 2 {
		t.Fatal("too few pulses")
	}
	gap := times[1] - times[0]
	want := 1 / 1.1 // one clock second takes ~0.909 true seconds
	if math.Abs(gap-want) > 1e-3 {
		t.Errorf("pulse gap %v, want ~%v", gap, want)
	}
}

func TestPPSLineRange(t *testing.T) {
	_, u := rig(t, 32, oscillator.Ideal(10e6))
	defer func() {
		if recover() == nil {
			t.Error("out-of-range PPS line accepted")
		}
	}()
	u.StartPPS(NumPPSOut, nil)
}

func TestNTPABusFullResolution(t *testing.T) {
	s, u := rig(t, 33, oscillator.Ideal(10e6))
	u.SetAlpha(timefmt.DurationFromSeconds(5e-6), timefmt.DurationFromSeconds(7e-6))
	s.RunUntil(1.23456789)
	ft, am, ap := u.NTPABus()
	// Full internal resolution: finer than the 2^-24 register granule.
	reg := u.Now()
	d := ft.Sub(reg.Time())
	if d.IsNegative() || d.Seconds() >= timefmt.Granule {
		t.Errorf("NTPA time %v inconsistent with register %v", ft, reg)
	}
	if am.Duration().Seconds() < 4e-6 || ap.Duration().Seconds() < 6e-6 {
		t.Errorf("NTPA alphas %v/%v", am, ap)
	}
}

// TestQuickOperationSequences drives the chip with random command
// sequences and checks the hardware invariants that no software may
// break: the clock never runs backwards except through an explicit
// state load, reads stay granule-aligned, and the accuracy registers
// never go negative or wrap.
func TestQuickOperationSequences(t *testing.T) {
	f := func(ops []uint8, seedRaw uint16) bool {
		s := sim.New(uint64(seedRaw) + 1)
		o := oscillator.New(s, oscillator.TCXO(10e6), "fuzz")
		u := New(s, Config{Osc: o})
		rng := s.RNG("fuzz-ops")
		prev := u.Now()
		steppedBack := false
		for _, op := range ops {
			s.RunUntil(s.Now() + 0.01 + rng.Float64()*0.05)
			switch op % 6 {
			case 0:
				u.SetRatePPB(int64(rng.Intn(400_001)) - 200_000)
			case 1:
				d := timefmt.Duration(rng.Intn(2001) - 1000) // ±60 µs
				u.Amortize(d, int64(1+rng.Intn(9000)))
			case 2:
				u.SetAlpha(timefmt.Duration(rng.Intn(70000)), timefmt.Duration(rng.Intn(70000)))
			case 3:
				u.EnlargeAlpha(timefmt.Duration(rng.Intn(100)), timefmt.Duration(rng.Intn(100)))
			case 4:
				u.SetDriftBoundPPB(int64(rng.Intn(5000)), int64(rng.Intn(5000)))
			case 5:
				// Forward-only state load (backward loads legitimately
				// rewind the clock; exclude them from the monotonicity
				// check).
				u.StepTo(u.Now().Add(timefmt.Duration(rng.Intn(1000))))
				steppedBack = false
			}
			now := u.Now()
			if !steppedBack && now < prev {
				t.Logf("clock went backwards: %v -> %v after op %d", prev, now, op%6)
				return false
			}
			prev = now
			am, ap := u.Alpha()
			if am > timefmt.AlphaMax || ap > timefmt.AlphaMax {
				return false
			}
			if now.Time().Frac%(1<<40) != 0 {
				return false // reading not granule-aligned
			}
			if err := u.SelfTest(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
