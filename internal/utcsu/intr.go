package utcsu

// interruptUnit (ITU) maps the chip's many interrupt sources onto the
// three output pins INTN (network), INTT (timer) and INTA (application),
// each individually maskable (paper §3.3). The NTI's CPLD further folds
// the three pins into the M-Module's single vectorized interrupt; that
// part lives in package nti.
type interruptUnit struct {
	enabled [numIntLines]bool
	pending [numIntLines]bool
	lastSrc [numIntLines]string
	handler func(line IntLine, source string)
	raised  [numIntLines]uint64
}

// OnInterrupt installs the pin-change handler (the NTI's CPLD, or a test).
func (u *UTCSU) OnInterrupt(fn func(line IntLine, source string)) {
	u.intr.handler = fn
}

// EnableInt unmasks a line; a pending latched interrupt is delivered
// immediately.
func (u *UTCSU) EnableInt(line IntLine, on bool) {
	iu := &u.intr
	iu.enabled[line] = on
	if on && iu.pending[line] {
		iu.pending[line] = false
		if iu.handler != nil {
			iu.handler(line, iu.lastSrc[line])
		}
	}
}

// IntEnabled reports the mask state of a line.
func (u *UTCSU) IntEnabled(line IntLine) bool { return u.intr.enabled[line] }

// PendingInt reports whether a masked interrupt is latched on the line.
func (u *UTCSU) PendingInt(line IntLine) bool { return u.intr.pending[line] }

// RaisedCount returns how many interrupts were asserted on a line.
func (u *UTCSU) RaisedCount(line IntLine) uint64 { return u.intr.raised[line] }

func (iu *interruptUnit) raise(u *UTCSU, line IntLine, source string) {
	iu.raised[line]++
	iu.lastSrc[line] = source
	if !iu.enabled[line] {
		iu.pending[line] = true
		return
	}
	if iu.handler != nil {
		iu.handler(line, source)
	}
}
