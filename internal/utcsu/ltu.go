package utcsu

import (
	"sort"

	"ntisim/internal/fixpt"
	"ntisim/internal/sim"
	"ntisim/internal/timefmt"
)

// ltu is the Local Time Unit: the adder-based clock (paper §3.3).
//
// Instead of a counter, the hardware adds a programmable augend (a
// multiple of 2⁻⁵¹ s) to a wide register on every oscillator tick. The
// model represents the clock as piecewise-affine segments over the tick
// index: within a segment the clock value at tick n is exactly
// base + augend·(n−startTick), computed with 128-bit integer arithmetic.
// New segments are appended on rate adjustment, amortization start/end,
// state loads and leap seconds, so every read is bit-identical to what
// the register would hold.
type ltu struct {
	u          *UTCSU
	segs       []clockSeg
	baseAugend uint64 // rate-adjusted augend, without amortization
	ratePPB    int64  // last commanded rate offset

	amortDelta   int64 // signed extra augend while amortizing, else 0
	amortEnd     *sim.Event
	amortPending timefmt.Duration // remaining offset (diagnostics)
}

type clockSeg struct {
	startTick uint64
	base      fixpt.Time // clock value at startTick
	augend    uint64     // effective per-tick increment (2⁻⁶⁴ s units)
}

func (l *ltu) init(u *UTCSU) {
	l.u = u
	l.baseAugend = fixpt.AugendForRate(u.osc.NominalHz(), 1.0)
	l.segs = []clockSeg{{startTick: 0, base: fixpt.Time{}, augend: l.baseAugend}}
}

// segOf returns the segment governing tick n.
func (l *ltu) segOf(n uint64) *clockSeg {
	if last := &l.segs[len(l.segs)-1]; n >= last.startTick {
		return last
	}
	i := sort.Search(len(l.segs), func(i int) bool { return l.segs[i].startTick > n })
	if i == 0 {
		return &l.segs[0]
	}
	return &l.segs[i-1]
}

// valueAt returns the exact register content at tick n.
func (l *ltu) valueAt(n uint64) fixpt.Time {
	s := l.segOf(n)
	return s.base.AddScaled(s.augend, n-s.startTick)
}

// effectiveAugend is baseAugend adjusted by any running amortization,
// clamped to stay positive (the clock never runs backwards; paper §5:
// STEP < 2·Gosc, nominal speed at most doubled).
func (l *ltu) effectiveAugend() uint64 {
	a := int64(l.baseAugend) + l.amortDelta
	if a < int64(fixpt.AugendUnit) {
		a = int64(fixpt.AugendUnit)
	}
	if max := int64(2 * l.baseAugend); a > max {
		a = max
	}
	return uint64(a)
}

// appendSeg installs a new effective augend from the next tick on.
// Writes to clock control registers take effect at a tick boundary.
func (l *ltu) appendSeg(augend uint64) {
	n := l.u.tick() + 1
	base := l.valueAt(n)
	l.placeSeg(clockSeg{startTick: n, base: base, augend: augend})
}

func (l *ltu) placeSeg(s clockSeg) {
	if last := &l.segs[len(l.segs)-1]; last.startTick == s.startTick {
		*last = s
	} else {
		l.segs = append(l.segs, s)
	}
	l.u.acu.onClockSegChange()
	l.u.rearmTimers()
}

// SetRatePPB adjusts the clock rate by ppb parts-per-billion relative to
// the oscillator's nominal rate, by loading a new augend. The achievable
// granularity is one augend unit, i.e. fosc·2⁻⁵¹ s/s (≈9 ns/s @ 20 MHz).
func (u *UTCSU) SetRatePPB(ppb int64) {
	l := &u.ltu
	l.ratePPB = ppb
	l.baseAugend = fixpt.AugendForRate(u.osc.NominalHz(), 1+float64(ppb)*1e-9)
	if l.baseAugend < fixpt.AugendUnit {
		l.baseAugend = fixpt.AugendUnit
	}
	l.appendSeg(l.effectiveAugend())
}

// RatePPB returns the last commanded rate adjustment.
func (u *UTCSU) RatePPB() int64 { return u.ltu.ratePPB }

// RateStepPPB returns the rate-adjustment granularity in ppb: the rate
// change caused by one augend unit (2⁻⁵¹ s) at the pacing frequency.
func (u *UTCSU) RateStepPPB() float64 {
	return u.osc.NominalHz() / float64(uint64(1)<<51) * 1e9
}

// StepTo loads the clock state register directly: from the next tick the
// clock reads value. Used for initialization and hardware leap seconds;
// during normal operation state changes go through Amortize.
func (u *UTCSU) StepTo(value timefmt.Stamp) {
	l := &u.ltu
	l.cancelAmortization()
	n := u.tick() + 1
	l.placeSeg(clockSeg{startTick: n, base: value.Time(), augend: l.effectiveAugend()})
}

// AmortConfig sets the speed of continuous amortization as a fraction of
// nominal rate (e.g. 5000 ppm = the clock runs 0.5% fast/slow until the
// offset is amortized).
const DefaultAmortPPM = 5000

// Amortize applies a state adjustment of delta to the clock via
// continuous amortization: the effective augend is changed by ±speedPPM
// of nominal until the programmed offset has accumulated, then restored
// (the hardware's amortization duty timer). A running amortization is
// superseded. Offsets of a second or more do not amortize sensibly;
// callers should StepTo for initial synchronization.
//
// The residual below one augend-quantum per tick (≈ speed/fosc seconds,
// sub-nanosecond) is not applied; the next round absorbs it.
func (u *UTCSU) Amortize(delta timefmt.Duration, speedPPM int64) {
	l := &u.ltu
	l.cancelAmortization()
	if delta == 0 {
		return
	}
	if speedPPM <= 0 {
		speedPPM = DefaultAmortPPM
	}
	mag := delta.Abs()
	// Per-tick extra augend, quantized to the STEP granularity.
	aug := fixpt.AugendForRate(u.osc.NominalHz(), float64(speedPPM)*1e-6)
	if aug < fixpt.AugendUnit {
		aug = fixpt.AugendUnit
	}
	// Keep the clock monotonic when slowing down.
	if int64(aug) >= int64(l.baseAugend) {
		aug = l.baseAugend - fixpt.AugendUnit
		if aug == 0 {
			return
		}
	}
	// Offset in 2⁻⁶⁴ s units; |delta| < 1 s fits in uint64.
	if mag >= timefmt.Duration(1)<<24 {
		// ≥ 1 s: amortization is the wrong tool; clamp to just under 1 s
		// and let the caller converge over rounds (or StepTo).
		mag = timefmt.Duration(1)<<24 - 1
	}
	units := uint64(mag) << 40
	nTicks := units / aug
	if nTicks == 0 {
		return
	}
	if delta > 0 {
		l.amortDelta = int64(aug)
	} else {
		l.amortDelta = -int64(aug)
	}
	l.amortPending = delta
	l.appendSeg(l.effectiveAugend())
	startTick := l.segs[len(l.segs)-1].startTick
	endTick := startTick + nTicks
	l.amortEnd = u.sim.At(u.osc.TimeOfTick(endTick), func() {
		l.amortEnd = nil
		l.amortDelta = 0
		l.amortPending = 0
		l.appendSeg(l.effectiveAugend())
		u.intr.raise(u, INTT, "AMORT")
	})
}

// Amortizing reports whether a continuous amortization is in progress
// and the offset it was programmed with.
func (u *UTCSU) Amortizing() (bool, timefmt.Duration) {
	return u.ltu.amortDelta != 0, u.ltu.amortPending
}

// amortDeltaNow exposes the signed amortization augend to the ACU for
// its zero-masking logic.
func (l *ltu) amortDeltaNow() int64 { return l.amortDelta }

func (l *ltu) cancelAmortization() {
	if l.amortEnd != nil {
		l.amortEnd.Cancel()
		l.amortEnd = nil
	}
	if l.amortDelta != 0 {
		l.amortDelta = 0
		l.amortPending = 0
		l.appendSeg(l.effectiveAugend())
	}
}

// LeapAt programs the hardware leap-second logic: when the clock reaches
// at, one second is inserted (delta=+1: clock jumps back, UTC repeats a
// second) or deleted (delta=-1: clock jumps forward). Returns the armed
// duty timer.
func (u *UTCSU) LeapAt(at timefmt.Stamp, delta int) *DutyTimer {
	if delta != 1 && delta != -1 {
		panic("utcsu: leap delta must be ±1")
	}
	var dt *DutyTimer
	dt = u.DutyAt(at, func() {
		step := timefmt.DurationFromSeconds(float64(-delta))
		u.StepTo(u.Now().Add(step))
		u.intr.raise(u, INTT, "LEAP")
	})
	return dt
}

// ClockSegments reports the number of clock segments (diagnostics).
func (u *UTCSU) ClockSegments() int { return len(u.ltu.segs) }
