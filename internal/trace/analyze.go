// Flight-path analysis: reconstruct per-hop latencies of the Fig. 3
// timestamping data path from a record stream, and extract the fault
// onset/recovery timeline. cmd/ntiflight is a thin front-end over
// these.

package trace

import "sort"

// Hop names, in data-path order. Every hop is a transition between two
// record kinds matched on the frame id (and receiver node where the
// fan-out makes the hop per-receiver).
var hopNames = []string{
	"csp-send → tx-trigger",      // driver handoff until the COMCO reads the trigger word
	"tx-trigger → frame-tx",      // FIFO prefill vs. serialization start (negative ≈ prefetch lead)
	"frame-tx → frame-rx",        // serialization + propagation
	"frame-rx → rx-trigger",      // bus arbitration before the header DMA
	"rx-trigger → rx-done",       // remaining DMA words until the interrupt
	"rx-done → csp-arrival",      // ISR + task-level kernel latency
	"csp-arrival → round-update", // wait until the convergence instant kP+Δ
}

// HopStats summarizes one hop's latency distribution in seconds.
type HopStats struct {
	Name                      string
	N                         int
	MinS, MedianS, P99S, MaxS float64
}

// quantile returns the q-quantile of sorted (nearest-rank, matching
// metrics.Series.Percentile's spirit without importing it).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted)-1) + 0.5)
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func hopStats(name string, vals []float64) HopStats {
	h := HopStats{Name: name, N: len(vals)}
	if len(vals) == 0 {
		return h
	}
	sort.Float64s(vals)
	h.MinS = vals[0]
	h.MaxS = vals[len(vals)-1]
	h.MedianS = quantile(vals, 0.5)
	h.P99S = quantile(vals, 0.99)
	return h
}

// txTimes are the per-frame sender-side stages.
type txTimes struct {
	send, txTrig, frameTx          float64
	hasSend, hasTxTrig, hasFrameTx bool
}

// rxTimes are the per-(frame, receiver) stages.
type rxTimes struct {
	frameRx, rxTrig, rxDone, arrival             float64
	hasFrameRx, hasRxTrig, hasRxDone, hasArrival bool
	round                                        uint64
}

type frameNode struct {
	frame uint64
	node  int32
}

type nodeRound struct {
	node  int32
	round uint64
}

// FlightPath reconstructs the per-hop latency distributions of the
// CSP data path from a record stream. Incomplete chains (frames that
// fell out of the ring, lost frames, stale rounds) contribute only the
// hops they completed.
func FlightPath(recs []Record) []HopStats {
	tx := map[uint64]*txTimes{}
	rx := map[frameNode]*rxTimes{}
	update := map[nodeRound]float64{}
	txAt := func(f uint64) *txTimes {
		t := tx[f]
		if t == nil {
			t = &txTimes{}
			tx[f] = t
		}
		return t
	}
	rxAt := func(f uint64, n int32) *rxTimes {
		k := frameNode{f, n}
		t := rx[k]
		if t == nil {
			t = &rxTimes{}
			rx[k] = t
		}
		return t
	}
	for i := range recs {
		r := &recs[i]
		switch r.Kind {
		case KindCSPSend:
			t := txAt(r.A)
			if !t.hasSend {
				t.send, t.hasSend = r.T, true
			}
		case KindTxTrigger:
			t := txAt(r.A)
			if !t.hasTxTrig {
				t.txTrig, t.hasTxTrig = r.T, true
			}
		case KindFrameTx:
			t := txAt(r.A)
			if !t.hasFrameTx {
				t.frameTx, t.hasFrameTx = r.T, true
			}
		case KindFrameRx:
			t := rxAt(r.A, r.Node)
			if !t.hasFrameRx {
				t.frameRx, t.hasFrameRx = r.T, true
			}
		case KindRxTrigger:
			t := rxAt(r.A, r.Node)
			if !t.hasRxTrig {
				t.rxTrig, t.hasRxTrig = r.T, true
			}
		case KindRxDone:
			t := rxAt(r.A, r.Node)
			if !t.hasRxDone {
				t.rxDone, t.hasRxDone = r.T, true
			}
		case KindCSPArrival:
			t := rxAt(r.A, r.Node)
			if !t.hasArrival {
				t.arrival, t.hasArrival = r.T, true
				t.round = r.B
			}
		case KindRoundUpdate:
			k := nodeRound{r.Node, r.A}
			if _, ok := update[k]; !ok {
				update[k] = r.T
			}
		}
	}

	hops := make([][]float64, len(hopNames))
	for _, t := range tx {
		if t.hasSend && t.hasTxTrig {
			hops[0] = append(hops[0], t.txTrig-t.send)
		}
		if t.hasTxTrig && t.hasFrameTx {
			hops[1] = append(hops[1], t.frameTx-t.txTrig)
		}
	}
	for k, t := range rx {
		src := tx[k.frame]
		if src != nil && src.hasFrameTx && t.hasFrameRx {
			hops[2] = append(hops[2], t.frameRx-src.frameTx)
		}
		if t.hasFrameRx && t.hasRxTrig {
			hops[3] = append(hops[3], t.rxTrig-t.frameRx)
		}
		if t.hasRxTrig && t.hasRxDone {
			hops[4] = append(hops[4], t.rxDone-t.rxTrig)
		}
		if t.hasRxDone && t.hasArrival {
			hops[5] = append(hops[5], t.arrival-t.rxDone)
		}
		if t.hasArrival {
			if uT, ok := update[nodeRound{k.node, t.round}]; ok && uT >= t.arrival {
				hops[6] = append(hops[6], uT-t.arrival)
			}
		}
	}

	out := make([]HopStats, len(hopNames))
	for i, name := range hopNames {
		out[i] = hopStats(name, hops[i])
	}
	return out
}

// FaultEvent is one GPS fault onset or recovery.
type FaultEvent struct {
	T         float64
	Node      int32
	FaultKind uint64 // gps.FaultKind ordinal
	Onset     bool
	Magnitude float64
}

// FaultTimeline extracts the fault onset/recovery events in time
// order.
func FaultTimeline(recs []Record) []FaultEvent {
	var out []FaultEvent
	for i := range recs {
		r := &recs[i]
		switch r.Kind {
		case KindFaultOnset:
			out = append(out, FaultEvent{T: r.T, Node: r.Node, FaultKind: r.B, Onset: true, Magnitude: r.V})
		case KindFaultClear:
			out = append(out, FaultEvent{T: r.T, Node: r.Node, FaultKind: r.B})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}

// RoundTimeline lists (node, round, correction) of every round update
// in emission order — the convergence history ntiflight prints.
type RoundEvent struct {
	T           float64
	Node        int32
	Round       uint64
	Intervals   uint64
	CorrectionS float64
	Failed      bool
	// DisciplineID is the clock discipline that produced this round's
	// correction (disc-step record, discipline.NameOf maps it back);
	// -1 when the trace predates discipline records.
	DisciplineID int
	// ProposedS is the discipline's proposed correction before clock
	// validation (meaningful only when DisciplineID >= 0).
	ProposedS float64
}

// RoundTimeline extracts round updates and failures in order,
// annotating each update with the disc-step record of the same
// (node, round) when present.
func RoundTimeline(recs []Record) []RoundEvent {
	type disc struct {
		id       int
		proposed float64
	}
	steps := map[nodeRound]disc{}
	for i := range recs {
		r := &recs[i]
		if r.Kind == KindDiscipline {
			k := nodeRound{r.Node, r.A}
			if _, ok := steps[k]; !ok {
				steps[k] = disc{id: int(r.B), proposed: r.V}
			}
		}
	}
	var out []RoundEvent
	for i := range recs {
		r := &recs[i]
		switch r.Kind {
		case KindRoundUpdate:
			e := RoundEvent{T: r.T, Node: r.Node, Round: r.A, Intervals: r.B, CorrectionS: r.V, DisciplineID: -1}
			if d, ok := steps[nodeRound{r.Node, r.A}]; ok {
				e.DisciplineID, e.ProposedS = d.id, d.proposed
			}
			out = append(out, e)
		case KindRoundFail:
			out = append(out, RoundEvent{T: r.T, Node: r.Node, Round: r.A, Intervals: r.B, Failed: true, DisciplineID: -1})
		}
	}
	return out
}
