package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

func sampleTracer() *Tracer {
	tr := New(Options{})
	tr.Emit(KindCSPSend, 0.5000, 0, 0, 1, 3, 0)
	tr.Emit(KindTxTrigger, 0.5001, 0, 0, 1, 0x14, 0)
	tr.Emit(KindFrameTx, 0.5002, 0, 0, 1, 64, 57.6e-6)
	tr.Emit(KindFrameRx, 0.5003, 1, 0, 1, 0, 0)
	tr.Emit(KindRxTrigger, 0.5004, 1, 0, 1, 0x101C, 0)
	tr.Emit(KindRxDone, 0.5005, 1, 0, 1, 0x1000, 0)
	tr.Emit(KindCSPArrival, 0.5006, 1, 0, 1, 3, 0.50007)
	tr.Emit(KindRoundUpdate, 0.7500, 1, 0, 3, 2, 1.5e-6)
	tr.Emit(KindFaultOnset, 1.0, 1, 0, 0, 2, 0.02)
	return tr
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := sampleTracer()
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	orig := tr.Records()
	if len(back) != len(orig) {
		t.Fatalf("round trip lost records: %d != %d", len(back), len(orig))
	}
	for i := range orig {
		if back[i] != orig[i] {
			t.Errorf("record %d: %+v != %+v", i, back[i], orig[i])
		}
	}
}

func TestJSONLDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := sampleTracer().WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := sampleTracer().WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two identical tracers exported different bytes")
	}
}

func TestPerfettoValidJSONAndFlows(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, sampleTracer().Records()); err != nil {
		t.Fatalf("WritePerfetto: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("perfetto output is not valid JSON:\n%s", buf.String())
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	phases := map[string]int{}
	threadNames := 0
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		phases[ph]++
		if ph == "M" {
			threadNames++
		}
	}
	if threadNames != 2 {
		t.Errorf("thread_name metadata for %d threads, want 2 (nodes 0 and 1)", threadNames)
	}
	// The frame flow must open (s), step (t) and close (f) across the
	// flight-path chain.
	if phases["s"] < 1 || phases["t"] < 1 || phases["f"] < 1 {
		t.Errorf("flow phases = %v, want at least one each of s/t/f", phases)
	}
	if phases["X"] != 9 {
		t.Errorf("%d slices, want one per record (9)", phases["X"])
	}
}

func TestPerfettoDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WritePerfetto(&a, sampleTracer().Records()); err != nil {
		t.Fatal(err)
	}
	if err := WritePerfetto(&b, sampleTracer().Records()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("perfetto export not byte-deterministic")
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(bytes.NewBufferString("{\"seq\":0,\"t\":1,\"k\":\"no-such-kind\",\"node\":0}\n")); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := ReadJSONL(bytes.NewBufferString("not json\n")); err == nil {
		t.Error("malformed line accepted")
	}
}
