// Package trace is the deterministic cross-layer event-tracing
// subsystem: every layer of the simulated timestamping data path — the
// simulation kernel, the medium, the COMCO's DMA engine, the kernel
// software, the synchronization algorithm and the GPS receivers — emits
// fixed-size records into per-node ring buffers owned by one Tracer per
// simulation.
//
// The hot path is allocation-free: records are plain values written
// into preallocated rings (the ring for a node is allocated once, on
// that node's first record), and a nil *Tracer is the no-op sink every
// component starts with, so disabled tracing costs one predictable
// branch per instrumentation site and zero allocations.
//
// Traces are byte-deterministic: records carry simulated time and a
// global emission sequence number, both of which depend only on the
// seed — never on wall clock, worker count or goroutine scheduling —
// so the exported bytes of a cell's trace are identical at 1 worker
// and at N. The exporters (JSONL and Chrome/Perfetto trace-event JSON,
// see export.go) preserve that by iterating in sequence order with
// fixed formatting.
package trace

import (
	"fmt"
	"sort"
)

// Kind identifies what a Record describes. The A/B/V fields are
// kind-specific (see the per-kind comments); A carries the frame id
// for every kind on the CSP flight path, which is what links a CSP's
// send → trigger → DMA → arrival chain into one flow.
type Kind uint8

const (
	// KindEventFire is one simulation-kernel event dispatch
	// (A = scheduling sequence number). Only recorded when
	// Options.Dispatch is set — the volume drowns everything else.
	KindEventFire Kind = iota
	// KindFrameTx: serialization of a frame began on the medium
	// (node = src station, A = frame, B = payload bytes, V = duration s).
	KindFrameTx
	// KindFrameLost: the frame was serialized into a partitioned
	// medium — cable fault or switch outage — and reached no station
	// (node = src station, A = frame, B = payload bytes, V = duration s).
	KindFrameLost
	// KindFrameRx: the last bit of a frame arrived at one station
	// (node = receiver station, A = frame, B = 1 if CRC-corrupt).
	KindFrameRx
	// KindDMAWord: one timed 32-bit COMCO DMA transfer (A = frame,
	// B = NTI address). Only recorded when Options.DMAWords is set.
	KindDMAWord
	// KindTxTrigger: the COMCO read the transmit trigger word — the
	// TRANSMIT timestamp was sampled and latched (A = frame, B = NTI
	// address).
	KindTxTrigger
	// KindRxTrigger: the COMCO wrote the receive trigger word — the
	// RECEIVE timestamp was sampled and the header base latched
	// (A = frame, B = NTI address).
	KindRxTrigger
	// KindRxDone: the frame is fully stored in NTI memory; the real
	// chip would raise its reception interrupt now (A = frame,
	// B = header base).
	KindRxDone
	// KindLatchRead: the stamp-move ISR consumed a receive sample
	// (A = SSU sample sequence, B = latched header base, V = stamp s).
	KindLatchRead
	// KindCSPSend: the kernel handed a CSP to the COMCO
	// (A = frame, B = round).
	KindCSPSend
	// KindCSPArrival: the CI delivered a CSP to the synchronization
	// algorithm (A = frame, B = round, V = receive stamp s; V = 0 when
	// the hardware stamp was lost).
	KindCSPArrival
	// KindRoundStart: the synchronizer broadcast its round-k CSP
	// (A = round).
	KindRoundStart
	// KindRoundUpdate: the convergence function was applied and the
	// clock corrected (A = round, B = intervals fused, V = correction s).
	KindRoundUpdate
	// KindRoundFail: the convergence function failed — too few
	// intervals intersected (A = round, B = intervals offered).
	KindRoundFail
	// KindRateAdjust: the rate-synchronization layer applied a rate
	// correction (A = round, V = correction ppb).
	KindRateAdjust
	// KindFaultOnset: a GPS receiver fault episode began
	// (B = gps.FaultKind, V = magnitude).
	KindFaultOnset
	// KindFaultClear: a GPS receiver fault episode ended
	// (B = gps.FaultKind of the cleared episode).
	KindFaultClear
	// KindDiscipline: the clock discipline turned one round's samples
	// into a proposed correction (A = round, B = discipline wire ID —
	// see discipline.NameOf — V = proposed correction in seconds,
	// before clock validation).
	KindDiscipline
	// KindQueryServed: a serving node answered one tick's batch of
	// client time queries (A = queries in the batch, V = absolute clock
	// error each of them observed, in seconds).
	KindQueryServed
	// KindLie: the adversary mutated a CSP in flight before delivery to
	// this node (A = frame ID, B = lying source node, V = stamp shift
	// in seconds).
	KindLie

	numKinds
)

// kindNames are the stable wire names used by the JSONL schema and the
// analyzers. Renaming one is a trace-format change (regenerate goldens).
var kindNames = [numKinds]string{
	KindEventFire:   "event-fire",
	KindFrameTx:     "frame-tx",
	KindFrameLost:   "frame-lost",
	KindFrameRx:     "frame-rx",
	KindDMAWord:     "dma-word",
	KindTxTrigger:   "tx-trigger",
	KindRxTrigger:   "rx-trigger",
	KindRxDone:      "rx-done",
	KindLatchRead:   "latch-read",
	KindCSPSend:     "csp-send",
	KindCSPArrival:  "csp-arrival",
	KindRoundStart:  "round-start",
	KindRoundUpdate: "round-update",
	KindRoundFail:   "round-fail",
	KindRateAdjust:  "rate-adjust",
	KindFaultOnset:  "fault-onset",
	KindFaultClear:  "fault-clear",
	KindDiscipline:  "disc-step",
	KindQueryServed: "query-served",
	KindLie:         "lie",
}

// kindArgs labels the A/B/V payload of each kind for the text
// formatter; an empty label omits the field.
var kindArgs = [numKinds][3]string{
	KindEventFire:   {"seq", "", ""},
	KindFrameTx:     {"frame", "bytes", "dur"},
	KindFrameLost:   {"frame", "bytes", "dur"},
	KindFrameRx:     {"frame", "corrupt", ""},
	KindDMAWord:     {"frame", "addr", ""},
	KindTxTrigger:   {"frame", "addr", ""},
	KindRxTrigger:   {"frame", "addr", ""},
	KindRxDone:      {"frame", "base", ""},
	KindLatchRead:   {"seq", "base", "stamp"},
	KindCSPSend:     {"frame", "round", ""},
	KindCSPArrival:  {"frame", "round", "stamp"},
	KindRoundStart:  {"round", "", ""},
	KindRoundUpdate: {"round", "intervals", "corr"},
	KindRoundFail:   {"round", "intervals", ""},
	KindRateAdjust:  {"round", "", "ppb"},
	KindFaultOnset:  {"", "fault", "mag"},
	KindFaultClear:  {"", "fault", ""},
	KindDiscipline:  {"round", "disc", "corr"},
	KindQueryServed: {"queries", "", "err"},
	KindLie:         {"frame", "src", "delta"},
}

// String returns the kind's stable wire name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// KindFromName resolves a wire name back to its Kind.
func KindFromName(name string) (Kind, bool) {
	for k, n := range kindNames {
		if n == name {
			return Kind(k), true
		}
	}
	return 0, false
}

// Record is one fixed-size trace event. Records are plain values —
// emitting one never allocates once its node's ring exists.
type Record struct {
	// T is the simulated time of the event in seconds.
	T float64
	// Seq is the global emission order within the Tracer; exports are
	// sorted by it, which reproduces exactly the single-threaded
	// execution order of the owning simulation.
	Seq uint64
	// A and B are kind-specific integer payloads (see the Kind docs);
	// A is the frame id on every flight-path kind.
	A, B uint64
	// V is the kind-specific float payload (durations, stamps, ppb).
	V float64
	// Node is the emitting node/station id; -1 for the simulation
	// kernel and the medium itself, -2 for background-load frames.
	Node int32
	// Shard is the sub-simulator the record was emitted on in a
	// sharded (WANs-of-LANs) run, or -1 for unsharded simulations.
	// Stamped from the tracer's SetShard value at emission.
	Shard int16
	// Ch is the NTI channel for multi-segment (gateway) nodes.
	Ch   int8
	Kind Kind
}

// String renders the record as one logic-analyzer-style text line.
func (r Record) String() string {
	s := fmt.Sprintf("t=%.9f node=%-2d", r.T, r.Node)
	if r.Ch != 0 {
		s += fmt.Sprintf(" ch=%d", r.Ch)
	}
	s += fmt.Sprintf(" %-12s", r.Kind.String())
	labels := [3]string{}
	if int(r.Kind) < len(kindArgs) {
		labels = kindArgs[r.Kind]
	}
	if labels[0] != "" {
		s += fmt.Sprintf(" %s=%d", labels[0], r.A)
	}
	if labels[1] != "" {
		if labels[1] == "addr" || labels[1] == "base" {
			s += fmt.Sprintf(" %s=0x%05X", labels[1], r.B)
		} else {
			s += fmt.Sprintf(" %s=%d", labels[1], r.B)
		}
	}
	if labels[2] != "" {
		s += fmt.Sprintf(" %s=%.9f", labels[2], r.V)
	}
	return s
}

// Options tunes a Tracer.
type Options struct {
	// RingCap is the per-node ring capacity in records; when a node
	// emits more, the oldest records are overwritten (and counted by
	// Dropped). Default 16384 (~1 MB/node).
	RingCap int
	// Dispatch records every simulation-kernel event dispatch
	// (KindEventFire). Off by default: a campaign cell fires millions
	// of events and the dispatch stream would evict everything else.
	Dispatch bool
	// DMAWords records every 32-bit COMCO DMA transfer (KindDMAWord),
	// the full logic-analyzer view. Off by default for the same
	// volume reason; cmd/ntitrace turns it on.
	DMAWords bool
}

// DefaultRingCap is the per-node ring capacity when Options.RingCap is
// zero.
const DefaultRingCap = 16384

// ring is one node's record buffer: a fixed-capacity circular array.
// buf is allocated once, at the node's first record.
type ring struct {
	buf []Record
	n   uint64 // total records emitted into this ring
}

// Tracer collects the records of one simulation. A nil *Tracer is a
// valid no-op sink: Emit on nil returns immediately, so components can
// hold an optional tracer without wrapper types. Tracer is not
// goroutine-safe — like the simulator that feeds it, it belongs to
// exactly one cell.
type Tracer struct {
	opts  Options
	seq   uint64
	shard int16
	rings []ring // indexed by node+2 (-2 = background, -1 = kernel/medium)
}

// New creates a Tracer.
func New(o Options) *Tracer {
	if o.RingCap <= 0 {
		o.RingCap = DefaultRingCap
	}
	return &Tracer{opts: o, shard: -1}
}

// SetShard tags every subsequently emitted record with the given shard
// id. Sharded clusters give each sub-simulator its own tracer (a
// Tracer, like a Simulator, is single-threaded state) and merge them
// afterwards with MergeShards; the tag records which sub-simulator an
// event executed on.
func (t *Tracer) SetShard(shard int) { t.shard = int16(shard) }

// Shard returns the tracer's shard tag (-1 when unsharded).
func (t *Tracer) Shard() int {
	if t == nil {
		return -1
	}
	return int(t.shard)
}

// Options returns the tracer's effective options (zero value when the
// tracer is nil, i.e. everything disabled).
func (t *Tracer) Options() Options {
	if t == nil {
		return Options{}
	}
	return t.opts
}

// Emit appends one record. Safe on a nil Tracer (no-op). The hot-path
// contract: after a node's first record, Emit performs no allocation.
func (t *Tracer) Emit(k Kind, now float64, node, ch int, a, b uint64, v float64) {
	if t == nil {
		return
	}
	idx := node + 2
	if idx < 0 {
		idx = 0
	}
	if idx >= len(t.rings) {
		t.rings = append(t.rings, make([]ring, idx+1-len(t.rings))...)
	}
	r := &t.rings[idx]
	if r.buf == nil {
		r.buf = make([]Record, t.opts.RingCap)
	}
	r.buf[r.n%uint64(len(r.buf))] = Record{
		T: now, Seq: t.seq, A: a, B: b, V: v,
		Node: int32(node), Shard: t.shard, Ch: int8(ch), Kind: k,
	}
	r.n++
	t.seq++
}

// emitRecord appends a prebuilt record, reassigning only its sequence
// number — the merge path of MergeShards.
func (t *Tracer) emitRecord(rec Record) {
	idx := int(rec.Node) + 2
	if idx < 0 {
		idx = 0
	}
	if idx >= len(t.rings) {
		t.rings = append(t.rings, make([]ring, idx+1-len(t.rings))...)
	}
	r := &t.rings[idx]
	if r.buf == nil {
		r.buf = make([]Record, t.opts.RingCap)
	}
	rec.Seq = t.seq
	r.buf[r.n%uint64(len(r.buf))] = rec
	r.n++
	t.seq++
}

// MergeShards merges per-shard tracers into one tracer whose emission
// order is the canonical serialization of the sharded run: records
// sorted by (time, shard, per-shard sequence) and re-sequenced. The
// order is a pure function of the per-shard streams, so merged
// exports are byte-identical regardless of worker count. Ring
// capacity is sized to retain every input record.
func MergeShards(ts []*Tracer) *Tracer {
	var opts Options
	total := 0
	for _, t := range ts {
		if t != nil {
			opts = t.opts
			total += t.Len()
		}
	}
	var all []Record
	all = make([]Record, 0, total)
	for _, t := range ts {
		all = append(all, t.Records()...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := &all[i], &all[j]
		if a.T != b.T {
			return a.T < b.T
		}
		if a.Shard != b.Shard {
			return a.Shard < b.Shard
		}
		return a.Seq < b.Seq
	})
	opts.RingCap = total
	if opts.RingCap == 0 {
		opts.RingCap = 1
	}
	out := New(opts)
	for i := range all {
		out.emitRecord(all[i])
	}
	return out
}

// Len returns the number of records currently retained across all
// rings.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	n := 0
	for i := range t.rings {
		n += t.rings[i].live()
	}
	return n
}

// Dropped returns how many records were overwritten by ring
// wrap-around.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	var d uint64
	for i := range t.rings {
		r := &t.rings[i]
		d += r.n - uint64(r.live())
	}
	return d
}

func (r *ring) live() int {
	if r.n < uint64(len(r.buf)) {
		return int(r.n)
	}
	return len(r.buf)
}

// Records returns the retained records of every ring merged into
// global emission order. The result is freshly allocated; the rings
// are left untouched (tracing may continue).
func (t *Tracer) Records() []Record {
	if t == nil {
		return nil
	}
	out := make([]Record, 0, t.Len())
	for i := range t.rings {
		r := &t.rings[i]
		out = append(out, r.buf[:r.live()]...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}
