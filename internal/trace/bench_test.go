// Overhead pins for the tracing hot path. The external test package
// lets these benches drive a whole cluster (cluster imports trace, so
// an in-package bench would be an import cycle).

package trace_test

import (
	"testing"

	"ntisim/internal/cluster"
	"ntisim/internal/trace"
)

// BenchmarkTraceDisabledOverhead runs a full 2-node synchronized system
// with NO tracer attached — every instrumentation site reduced to its
// never-taken nil check — and reports kernel event throughput. Compare
// events/s against the BENCH_kernel.json baseline: the acceptance bound
// for the tracing subsystem is <2% regression. The allocs/op metric
// must stay at its pre-trace value (the sites add zero allocations).
func BenchmarkTraceDisabledOverhead(b *testing.B) {
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		c := cluster.New(cluster.Defaults(2, 1998))
		c.Start(1)
		c.Sim.RunUntil(30)
		events += c.Sim.EventCount()
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
	b.ReportMetric(30*float64(b.N)/b.Elapsed().Seconds(), "sim-s/s")
}

// BenchmarkTraceEnabledOverhead is the same system with a tracer
// attached (default options: flight path, rounds and faults recorded;
// dispatch and DMA words off) — the cost of *live* tracing.
func BenchmarkTraceEnabledOverhead(b *testing.B) {
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		cfg := cluster.Defaults(2, 1998)
		cfg.Tracer = trace.New(trace.Options{})
		c := cluster.New(cfg)
		c.Start(1)
		c.Sim.RunUntil(30)
		events += c.Sim.EventCount()
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
	b.ReportMetric(30*float64(b.N)/b.Elapsed().Seconds(), "sim-s/s")
}

// BenchmarkEmit times one hot-path record append into a warm ring.
func BenchmarkEmit(b *testing.B) {
	tr := trace.New(trace.Options{})
	tr.Emit(trace.KindFrameTx, 0, 0, 0, 0, 0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Emit(trace.KindFrameTx, float64(i), 0, 0, uint64(i), 64, 57.6e-6)
	}
}
