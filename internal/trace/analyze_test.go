package trace

import (
	"math"
	"testing"
)

// chain emits one complete flight-path chain for frame fid from node 0
// to node 1, offset by base seconds, with per-hop deltas of 1..7 µs.
func chain(tr *Tracer, fid uint64, base float64, round uint64) {
	t := base
	tr.Emit(KindCSPSend, t, 0, 0, fid, round, 0)
	t += 1e-6
	tr.Emit(KindTxTrigger, t, 0, 0, fid, 0x14, 0)
	t += 2e-6
	tr.Emit(KindFrameTx, t, 0, 0, fid, 64, 57.6e-6)
	t += 3e-6
	tr.Emit(KindFrameRx, t, 1, 0, fid, 0, 0)
	t += 4e-6
	tr.Emit(KindRxTrigger, t, 1, 0, fid, 0x101C, 0)
	t += 5e-6
	tr.Emit(KindRxDone, t, 1, 0, fid, 0x1000, 0)
	t += 6e-6
	tr.Emit(KindCSPArrival, t, 1, 0, fid, round, t)
	t += 7e-6
	tr.Emit(KindRoundUpdate, t, 1, 0, round, 2, 1e-6)
}

func TestFlightPathReconstruction(t *testing.T) {
	tr := New(Options{})
	chain(tr, 1, 0.5, 3)
	chain(tr, 2, 1.5, 4)
	hops := FlightPath(tr.Records())
	if len(hops) != 7 {
		t.Fatalf("%d hops, want 7", len(hops))
	}
	wants := []float64{1e-6, 2e-6, 3e-6, 4e-6, 5e-6, 6e-6, 7e-6}
	for i, h := range hops {
		if h.N != 2 {
			t.Errorf("hop %q: n=%d, want 2", h.Name, h.N)
		}
		for name, got := range map[string]float64{"min": h.MinS, "median": h.MedianS, "max": h.MaxS} {
			if math.Abs(got-wants[i]) > 1e-12 {
				t.Errorf("hop %q %s = %g, want %g", h.Name, name, got, wants[i])
			}
		}
	}
}

func TestFlightPathToleratesIncompleteChains(t *testing.T) {
	tr := New(Options{})
	// A frame that was transmitted but never received (partition).
	tr.Emit(KindCSPSend, 0.5, 0, 0, 1, 3, 0)
	tr.Emit(KindTxTrigger, 0.5001, 0, 0, 1, 0x14, 0)
	tr.Emit(KindFrameLost, 0.5002, 0, 0, 1, 64, 57.6e-6)
	hops := FlightPath(tr.Records())
	if hops[0].N != 1 {
		t.Errorf("send→trigger hop should survive a lost frame, n=%d", hops[0].N)
	}
	for _, h := range hops[2:] {
		if h.N != 0 {
			t.Errorf("hop %q counted a never-delivered frame", h.Name)
		}
	}
}

func TestFaultTimeline(t *testing.T) {
	tr := New(Options{})
	tr.Emit(KindFaultOnset, 60, 2, 0, 0, 2, 0.02)
	tr.Emit(KindFaultClear, 120, 2, 0, 0, 2, 0)
	evs := FaultTimeline(tr.Records())
	if len(evs) != 2 {
		t.Fatalf("%d events, want 2", len(evs))
	}
	if !evs[0].Onset || evs[0].T != 60 || evs[0].Magnitude != 0.02 || evs[0].FaultKind != 2 {
		t.Errorf("onset mangled: %+v", evs[0])
	}
	if evs[1].Onset || evs[1].T != 120 {
		t.Errorf("recovery mangled: %+v", evs[1])
	}
}

func TestRoundTimeline(t *testing.T) {
	tr := New(Options{})
	tr.Emit(KindRoundUpdate, 1.25, 0, 0, 1, 3, 2e-6)
	tr.Emit(KindRoundFail, 2.25, 0, 0, 2, 1, 0)
	evs := RoundTimeline(tr.Records())
	if len(evs) != 2 {
		t.Fatalf("%d events, want 2", len(evs))
	}
	if evs[0].Failed || evs[0].Round != 1 || evs[0].Intervals != 3 || evs[0].CorrectionS != 2e-6 {
		t.Errorf("update mangled: %+v", evs[0])
	}
	if !evs[1].Failed || evs[1].Round != 2 {
		t.Errorf("failure mangled: %+v", evs[1])
	}
}
