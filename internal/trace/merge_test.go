package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestMergeShardsCanonicalOrder(t *testing.T) {
	a := New(Options{})
	a.SetShard(0)
	b := New(Options{})
	b.SetShard(1)
	// Interleaved times, including a cross-shard tie at t=2 that must
	// resolve shard 0 before shard 1.
	a.Emit(KindRoundStart, 1.0, 0, 0, 1, 0, 0)
	a.Emit(KindRoundStart, 2.0, 0, 0, 2, 0, 0)
	b.Emit(KindRoundStart, 0.5, 5, 0, 3, 0, 0)
	b.Emit(KindRoundStart, 2.0, 5, 0, 4, 0, 0)
	m := MergeShards([]*Tracer{a, b})
	recs := m.Records()
	if len(recs) != 4 {
		t.Fatalf("merged %d records, want 4", len(recs))
	}
	wantA := []uint64{3, 1, 2, 4}
	for i, r := range recs {
		if r.A != wantA[i] {
			t.Fatalf("merged order: record %d has A=%d, want %d", i, r.A, wantA[i])
		}
		if r.Seq != uint64(i) {
			t.Fatalf("record %d not re-sequenced: seq %d", i, r.Seq)
		}
	}
	if recs[1].Shard != 0 || recs[3].Shard != 1 {
		t.Fatalf("shard attribution lost: %d/%d", recs[1].Shard, recs[3].Shard)
	}
}

func TestShardFieldJSONLRoundTripAndLegacyBytes(t *testing.T) {
	// Unsharded records must serialize without any shard field (legacy
	// golden compatibility).
	plain := New(Options{})
	plain.Emit(KindCSPSend, 1.5, 3, 0, 7, 2, 0)
	var buf bytes.Buffer
	if err := plain.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "shard") {
		t.Fatalf("unsharded export leaked a shard field: %s", buf.String())
	}

	// Sharded records round-trip the tag, including shard 0.
	sh := New(Options{})
	sh.SetShard(0)
	sh.Emit(KindCSPSend, 1.5, 3, 0, 7, 2, 0)
	buf.Reset()
	if err := sh.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"shard":0`) {
		t.Fatalf("shard 0 not exported: %s", buf.String())
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Shard != 0 {
		t.Fatalf("shard tag did not round-trip: %+v", back)
	}
}
