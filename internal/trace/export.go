// Exporters. Both formats are byte-deterministic for a given record
// sequence: records are written in emission order with fixed number
// formatting, and no wall-clock, hostname or map-order data is
// involved anywhere.
//
//   - JSONL is the compact archival schema shared by cmd/ntitrace -json
//     and the harness's per-cell campaign artifacts; cmd/ntiflight
//     consumes it.
//   - WritePerfetto emits Chrome/Perfetto trace-event JSON: one thread
//     per node, the frame serialization as a duration slice, every
//     flight-path event as a slice carrying flow arrows that link a
//     CSP's send → latch → DMA → arrival chain across nodes.

package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// jsonRecord is the JSONL wire form of a Record. Shard is a pointer so
// unsharded records (Shard -1) omit the field entirely, keeping the
// schema — and the committed trace goldens — byte-identical to the
// pre-sharding format.
type jsonRecord struct {
	Seq   uint64  `json:"seq"`
	T     float64 `json:"t"`
	Kind  string  `json:"k"`
	Node  int32   `json:"node"`
	Shard *int16  `json:"shard,omitempty"`
	Ch    int8    `json:"ch,omitempty"`
	A     uint64  `json:"a,omitempty"`
	B     uint64  `json:"b,omitempty"`
	V     float64 `json:"v,omitempty"`
}

// WriteJSONL writes one compact JSON record per line, in emission
// order.
func WriteJSONL(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range recs {
		r := &recs[i]
		jr := jsonRecord{
			Seq: r.Seq, T: r.T, Kind: r.Kind.String(),
			Node: r.Node, Ch: r.Ch, A: r.A, B: r.B, V: r.V,
		}
		if r.Shard >= 0 {
			jr.Shard = &recs[i].Shard
		}
		if err := enc.Encode(&jr); err != nil {
			return fmt.Errorf("trace: jsonl record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// WriteJSONL exports the tracer's retained records (see Records).
func (t *Tracer) WriteJSONL(w io.Writer) error {
	return WriteJSONL(w, t.Records())
}

// ReadJSONL parses records previously written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var out []Record
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var jr jsonRecord
		if err := json.Unmarshal(sc.Bytes(), &jr); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		k, ok := KindFromName(jr.Kind)
		if !ok {
			return nil, fmt.Errorf("trace: line %d: unknown kind %q", line, jr.Kind)
		}
		shard := int16(-1)
		if jr.Shard != nil {
			shard = *jr.Shard
		}
		out = append(out, Record{
			T: jr.T, Seq: jr.Seq, A: jr.A, B: jr.B, V: jr.V,
			Node: jr.Node, Shard: shard, Ch: jr.Ch, Kind: k,
		})
	}
	return out, sc.Err()
}

// flightPathKinds are the kinds that participate in a CSP's flow chain
// (A = frame id on all of them).
func isFlightPathKind(k Kind) bool {
	switch k {
	case KindCSPSend, KindTxTrigger, KindFrameTx, KindFrameLost,
		KindFrameRx, KindRxTrigger, KindRxDone, KindCSPArrival:
		return true
	}
	return false
}

// pf formats a Perfetto timestamp/duration (µs, fixed 3 decimals —
// nanosecond resolution, byte-stable).
func pf(seconds float64) string {
	return strconv.FormatFloat(seconds*1e6, 'f', 3, 64)
}

// perfettoTid maps a record's node id to a stable thread id (>= 1;
// Perfetto dislikes tid 0 and negative ids).
func perfettoTid(node int32) int32 { return node + 3 }

// perfettoThreadName labels a node's thread.
func perfettoThreadName(node int32) string {
	switch node {
	case -2:
		return "background load"
	case -1:
		return "sim kernel / medium"
	}
	return fmt.Sprintf("node %d", node)
}

// WritePerfetto writes Chrome/Perfetto trace-event JSON ("trace event
// format", the JSON flavor chrome://tracing and ui.perfetto.dev both
// load). Every record becomes a slice on its node's thread; records on
// the flight path additionally carry flow steps with the frame id, so
// the UI draws arrows along the send → latch → DMA → arrival chain,
// and a CSP arrival opens a second flow toward its round update.
func WritePerfetto(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		fmt.Fprintf(bw, format, args...)
	}

	// Thread-name metadata, sorted for determinism.
	nodes := map[int32]bool{}
	for i := range recs {
		nodes[recs[i].Node] = true
	}
	ids := make([]int, 0, len(nodes))
	for n := range nodes {
		ids = append(ids, int(n))
	}
	sort.Ints(ids)
	for _, n := range ids {
		emit(`{"ph":"M","name":"thread_name","pid":1,"tid":%d,"args":{"name":%q}}`,
			perfettoTid(int32(n)), perfettoThreadName(int32(n)))
	}

	flowSeen := map[uint64]bool{}  // frame-id flows
	roundSeen := map[uint64]bool{} // (node,round) arrival→update flows
	for i := range recs {
		r := &recs[i]
		tid := perfettoTid(r.Node)
		name := r.Kind.String()
		// Duration slices get their real extent; instantaneous stages
		// get a hair of width so flow arrows have something to bind to.
		dur := "0.300"
		if (r.Kind == KindFrameTx || r.Kind == KindFrameLost) && r.V > 0 {
			dur = pf(r.V)
		}
		emit(`{"ph":"X","name":%q,"pid":1,"tid":%d,"ts":%s,"dur":%s,"args":{"seq":%d,"a":%d,"b":%d,"v":%s}}`,
			name, tid, pf(r.T), dur, r.Seq, r.A, r.B,
			strconv.FormatFloat(r.V, 'g', -1, 64))
		if isFlightPathKind(r.Kind) {
			ph := "t"
			if !flowSeen[r.A] {
				ph, flowSeen[r.A] = "s", true
			} else if r.Kind == KindCSPArrival {
				ph = "f"
			}
			bp := ""
			if ph == "f" {
				bp = `,"bp":"e"`
			}
			emit(`{"ph":%q,"id":%d,"name":"csp","cat":"flight","pid":1,"tid":%d,"ts":%s%s}`,
				ph, r.A, tid, pf(r.T), bp)
		}
		// Arrival → round-update flows, keyed by (receiver, round).
		if r.Kind == KindCSPArrival || r.Kind == KindRoundUpdate {
			key := uint64(uint32(r.Node))<<32 | r.B&0xFFFFFFFF
			if r.Kind == KindRoundUpdate {
				key = uint64(uint32(r.Node))<<32 | r.A&0xFFFFFFFF
			}
			id := key | 1<<63
			ph := "t"
			if !roundSeen[key] {
				ph, roundSeen[key] = "s", true
			} else if r.Kind == KindRoundUpdate {
				ph = "f"
			}
			bp := ""
			if ph == "f" {
				bp = `,"bp":"e"`
			}
			emit(`{"ph":%q,"id":%d,"name":"round","cat":"round","pid":1,"tid":%d,"ts":%s%s}`,
				ph, id, tid, pf(r.T), bp)
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
