package trace

import (
	"testing"
)

func TestNilTracerIsNoop(t *testing.T) {
	var tr *Tracer
	tr.Emit(KindFrameTx, 1, 0, 0, 1, 64, 57e-6) // must not panic
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Records() != nil {
		t.Error("nil tracer not a clean no-op")
	}
	if o := tr.Options(); o.Dispatch || o.DMAWords || o.RingCap != 0 {
		t.Errorf("nil tracer options = %+v, want zero", o)
	}
}

func TestEmitOrderAndPayload(t *testing.T) {
	tr := New(Options{})
	tr.Emit(KindRoundStart, 1.0, 0, 0, 7, 0, 0)
	tr.Emit(KindFrameTx, 1.1, 1, 0, 3, 64, 57e-6)
	tr.Emit(KindEventFire, 1.2, -1, 0, 42, 0, 0)
	tr.Emit(KindFaultOnset, 1.3, 2, 1, 0, 4, 0.02)

	recs := tr.Records()
	if len(recs) != 4 || tr.Len() != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i) {
			t.Errorf("record %d: seq %d — Records must be in emission order", i, r.Seq)
		}
	}
	r := recs[1]
	if r.Kind != KindFrameTx || r.T != 1.1 || r.Node != 1 || r.A != 3 || r.B != 64 || r.V != 57e-6 {
		t.Errorf("payload mangled: %+v", r)
	}
	if recs[3].Ch != 1 {
		t.Errorf("channel lost: %+v", recs[3])
	}
	if recs[2].Node != -1 {
		t.Errorf("negative node id lost: %+v", recs[2])
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	tr := New(Options{RingCap: 8})
	for i := 0; i < 20; i++ {
		tr.Emit(KindEventFire, float64(i), 0, 0, uint64(i), 0, 0)
	}
	if got := tr.Len(); got != 8 {
		t.Fatalf("Len = %d, want ring cap 8", got)
	}
	if got := tr.Dropped(); got != 12 {
		t.Fatalf("Dropped = %d, want 12", got)
	}
	recs := tr.Records()
	for i, r := range recs {
		if want := uint64(12 + i); r.Seq != want {
			t.Errorf("record %d: seq %d, want %d (oldest overwritten first)", i, r.Seq, want)
		}
	}
}

func TestPerNodeRingsMergeBySeq(t *testing.T) {
	tr := New(Options{RingCap: 4})
	// Interleave two nodes; each ring holds only its node's records.
	for i := 0; i < 6; i++ {
		tr.Emit(KindFrameTx, float64(i), i%2, 0, uint64(i), 0, 0)
	}
	recs := tr.Records()
	if len(recs) != 6 {
		t.Fatalf("got %d records, want 6", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq <= recs[i-1].Seq {
			t.Fatalf("merge not in seq order: %d after %d", recs[i].Seq, recs[i-1].Seq)
		}
	}
}

// TestEmitZeroAlloc pins the hot-path contract: after a node's first
// record, Emit allocates nothing; a nil tracer never allocates.
func TestEmitZeroAlloc(t *testing.T) {
	var nilTr *Tracer
	if n := testing.AllocsPerRun(100, func() {
		nilTr.Emit(KindFrameTx, 1, 0, 0, 1, 64, 0)
	}); n != 0 {
		t.Errorf("nil tracer Emit: %v allocs/op, want 0", n)
	}

	tr := New(Options{RingCap: 64})
	tr.Emit(KindFrameTx, 0, 0, 0, 0, 0, 0) // warm the node-0 ring
	if n := testing.AllocsPerRun(100, func() {
		tr.Emit(KindFrameTx, 1, 0, 0, 1, 64, 57e-6)
	}); n != 0 {
		t.Errorf("warm-ring Emit: %v allocs/op, want 0", n)
	}
}

func TestKindNamesRoundTrip(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		name := k.String()
		if name == "" {
			t.Fatalf("kind %d has no wire name", k)
		}
		back, ok := KindFromName(name)
		if !ok || back != k {
			t.Errorf("KindFromName(%q) = %v,%v, want %v", name, back, ok, k)
		}
	}
	if _, ok := KindFromName("no-such-kind"); ok {
		t.Error("unknown name resolved")
	}
}

func TestRecordString(t *testing.T) {
	r := Record{T: 0.5, Node: 1, Kind: KindRxTrigger, A: 3, B: 0x101C}
	s := r.String()
	for _, want := range []string{"rx-trigger", "frame=3", "addr=0x0101C", "node=1"} {
		if !contains(s, want) {
			t.Errorf("Record.String() = %q, missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
