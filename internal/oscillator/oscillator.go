// Package oscillator models the quartz oscillators that pace a UTCSU.
//
// The paper drives the UTCSU from an on-board TCXO or OCXO (§3.2) with any
// frequency in 1..20 MHz (§3.3). What matters to clock synchronization is
// the frequency trajectory: a systematic calibration offset, a slow random
// walk (aging, supply), and a temperature-induced component. The model is
// piecewise constant in frequency — a new segment is appended at every
// drift update — so tick index and true time convert exactly in O(log n),
// with no per-tick simulation.
//
// Tick 0 occurs at the oscillator's start time; tick n at start +
// n·period, with the period changing only at segment boundaries aligned to
// tick boundaries (a frequency step takes effect at the next tick, as in
// real hardware).
package oscillator

import (
	"math"
	"sort"

	"ntisim/internal/sim"
)

// Config describes one oscillator. Zero values give an ideal oscillator.
type Config struct {
	NominalHz float64 // required, e.g. 10e6

	// Systematic calibration offset, drawn once at construction from
	// N(InitOffsetPPM, InitOffsetSigmaPPM).
	InitOffsetPPM      float64
	InitOffsetSigmaPPM float64

	// Random-walk drift: at every UpdateInterval the drift moves by
	// N(0, WalkStepPPM) and is clamped to ±MaxDriftPPM.
	WalkStepPPM   float64
	MaxDriftPPM   float64 // 0 means 100 ppm
	TempAmpPPM    float64 // sinusoidal temperature component amplitude
	TempPeriodS   float64 // its period; 0 disables
	AgingPPMPerDy float64 // linear aging in ppm per day

	UpdateInterval float64 // drift-update period; 0 means 1 s
}

// TCXO returns a typical temperature-compensated crystal configuration
// (paper §3.2 default): ±2 ppm calibration, slow walk, small temperature
// residual.
func TCXO(nominalHz float64) Config {
	return Config{
		NominalHz:          nominalHz,
		InitOffsetSigmaPPM: 1.0,
		WalkStepPPM:        0.002,
		MaxDriftPPM:        5,
		TempAmpPPM:         0.3,
		TempPeriodS:        900,
	}
}

// OCXO returns an ovenized crystal configuration: 10x tighter everywhere.
func OCXO(nominalHz float64) Config {
	return Config{
		NominalHz:          nominalHz,
		InitOffsetSigmaPPM: 0.1,
		WalkStepPPM:        0.0002,
		MaxDriftPPM:        0.5,
		TempAmpPPM:         0.02,
		TempPeriodS:        900,
	}
}

// Ideal returns a drift-free oscillator, useful in unit tests.
func Ideal(nominalHz float64) Config { return Config{NominalHz: nominalHz} }

type segment struct {
	t0     float64 // true time of tick n0
	n0     uint64
	period float64 // true seconds per tick
}

// Oscillator is a single oscillator instance bound to a simulator.
type Oscillator struct {
	cfg      Config
	rng      *sim.RNG
	s        *sim.Simulator
	segs     []segment
	baseOff  float64 // systematic offset (fractional, not ppm)
	walk     float64 // current random-walk value (fractional)
	phase    float64 // temperature phase offset (radians)
	start    float64
	maxDrift float64
	ticker   *sim.Ticker
}

// New creates an oscillator starting its tick 0 at the current simulated
// time and schedules its drift updates. label individualizes the RNG
// stream.
func New(s *sim.Simulator, cfg Config, label string) *Oscillator {
	if cfg.NominalHz <= 0 {
		panic("oscillator: NominalHz must be positive")
	}
	if cfg.UpdateInterval <= 0 {
		cfg.UpdateInterval = 1
	}
	if cfg.MaxDriftPPM <= 0 {
		cfg.MaxDriftPPM = 100
	}
	rng := s.RNG("osc/" + label)
	o := &Oscillator{
		cfg:      cfg,
		rng:      rng,
		s:        s,
		start:    s.Now(),
		maxDrift: cfg.MaxDriftPPM * 1e-6,
	}
	o.baseOff = (cfg.InitOffsetPPM + cfg.InitOffsetSigmaPPM*rng.Normal(0, 1)) * 1e-6
	o.phase = rng.Float64() * 2 * math.Pi
	o.segs = []segment{{t0: o.start, n0: 0, period: o.periodFor(o.start)}}
	if cfg.WalkStepPPM > 0 || cfg.TempPeriodS > 0 || cfg.AgingPPMPerDy != 0 {
		o.ticker = s.Every(o.start+cfg.UpdateInterval, cfg.UpdateInterval, o.update)
	}
	return o
}

// NominalHz returns the nominal frequency.
func (o *Oscillator) NominalHz() float64 { return o.cfg.NominalHz }

// NominalPeriod returns 1/NominalHz.
func (o *Oscillator) NominalPeriod() float64 { return 1 / o.cfg.NominalHz }

// periodFor computes the true period at time t from the current drift
// state.
func (o *Oscillator) periodFor(t float64) float64 {
	return 1 / (o.cfg.NominalHz * (1 + o.driftFor(t)))
}

func (o *Oscillator) driftFor(t float64) float64 {
	d := o.baseOff + o.walk
	if o.cfg.TempPeriodS > 0 {
		d += o.cfg.TempAmpPPM * 1e-6 * math.Sin(2*math.Pi*(t-o.start)/o.cfg.TempPeriodS+o.phase)
	}
	if o.cfg.AgingPPMPerDy != 0 {
		d += o.cfg.AgingPPMPerDy * 1e-6 * (t - o.start) / 86400
	}
	if d > o.maxDrift {
		d = o.maxDrift
	} else if d < -o.maxDrift {
		d = -o.maxDrift
	}
	return d
}

// update appends a new frequency segment, aligned to a tick boundary.
func (o *Oscillator) update() {
	if o.cfg.WalkStepPPM > 0 {
		o.walk += o.rng.Normal(0, o.cfg.WalkStepPPM) * 1e-6
		// Reflect at the clamp so the walk doesn't stick to the rail.
		lim := o.maxDrift
		if o.walk > lim {
			o.walk = 2*lim - o.walk
		} else if o.walk < -lim {
			o.walk = -2*lim - o.walk
		}
	}
	now := o.s.Now()
	last := &o.segs[len(o.segs)-1]
	// Frequency change takes effect at the first tick at/after now.
	n := last.n0 + uint64(math.Ceil((now-last.t0)/last.period-1e-12))
	if n < last.n0 {
		n = last.n0
	}
	tn := last.t0 + float64(n-last.n0)*last.period
	p := o.periodFor(now)
	if n == last.n0 {
		// Segment had no ticks yet; replace in place.
		last.period = p
		return
	}
	o.segs = append(o.segs, segment{t0: tn, n0: n, period: p})
}

// segAt returns the segment governing true time t.
func (o *Oscillator) segAt(t float64) *segment {
	// Fast path: most queries are in the latest segment.
	if last := &o.segs[len(o.segs)-1]; t >= last.t0 {
		return last
	}
	i := sort.Search(len(o.segs), func(i int) bool { return o.segs[i].t0 > t })
	if i == 0 {
		return &o.segs[0]
	}
	return &o.segs[i-1]
}

// segOfTick returns the segment containing tick n.
func (o *Oscillator) segOfTick(n uint64) *segment {
	if last := &o.segs[len(o.segs)-1]; n >= last.n0 {
		return last
	}
	i := sort.Search(len(o.segs), func(i int) bool { return o.segs[i].n0 > n })
	if i == 0 {
		return &o.segs[0]
	}
	return &o.segs[i-1]
}

// TickIndex returns the number of full ticks elapsed at true time t
// (i.e. the index of the last tick at or before t). t before the start
// returns 0.
func (o *Oscillator) TickIndex(t float64) uint64 {
	if t <= o.start {
		return 0
	}
	s := o.segAt(t)
	n := s.n0 + uint64((t-s.t0)/s.period)
	// The float division can land one tick low when t is exactly a tick
	// time computed by TimeOfTick (t0 + k·period). Correct so that
	// TickIndex(TimeOfTick(k)) == k holds round-trip, within a few ULPs.
	tol := math.Max(math.Abs(t), 1) * 4e-16
	for s.t0+float64(n+1-s.n0)*s.period <= t+tol {
		n++
	}
	return n
}

// TimeOfTick returns the true time at which tick n occurs.
func (o *Oscillator) TimeOfTick(n uint64) float64 {
	s := o.segOfTick(n)
	return s.t0 + float64(n-s.n0)*s.period
}

// NextTickAfter returns the index and true time of the first tick
// strictly after t. Used to model the UTCSU's input synchronizer stage:
// an asynchronous event becomes visible at the next oscillator edge.
func (o *Oscillator) NextTickAfter(t float64) (n uint64, at float64) {
	if t < o.start {
		return 0, o.start
	}
	n = o.TickIndex(t) + 1
	return n, o.TimeOfTick(n)
}

// DriftAt returns the fractional frequency deviation in effect at t,
// derived from the actual segment period (so it reflects what the clock
// really experienced, clamps included).
func (o *Oscillator) DriftAt(t float64) float64 {
	s := o.segAt(t)
	return 1/(s.period*o.cfg.NominalHz) - 1
}

// MaxDrift returns the configured |drift| bound (fractional), the ρ the
// synchronization algorithms may assume a priori.
func (o *Oscillator) MaxDrift() float64 { return o.maxDrift }

// Stop halts drift updates (end of scenario).
func (o *Oscillator) Stop() {
	if o.ticker != nil {
		o.ticker.Stop()
	}
}

// Segments returns the number of frequency segments so far (diagnostics).
func (o *Oscillator) Segments() int { return len(o.segs) }
