package oscillator

import (
	"math"
	"testing"
	"testing/quick"

	"ntisim/internal/sim"
)

func TestIdealTickMapping(t *testing.T) {
	s := sim.New(1)
	o := New(s, Ideal(10e6), "a")
	// Tick 10 of a 10 MHz ideal oscillator is at exactly 1 µs intervals.
	if got := o.TimeOfTick(10); math.Abs(got-1e-6) > 1e-15 {
		t.Errorf("TimeOfTick(10) = %v, want 1e-6", got)
	}
	if got := o.TickIndex(1e-6 + 1e-9); got != 10 {
		t.Errorf("TickIndex = %v, want 10", got)
	}
	if got := o.TickIndex(0); got != 0 {
		t.Errorf("TickIndex(0) = %v", got)
	}
}

func TestTickIndexMonotonic(t *testing.T) {
	s := sim.New(2)
	o := New(s, TCXO(10e6), "a")
	s.RunUntil(30) // let drift updates run
	prev := uint64(0)
	for x := 0.0; x < 30; x += 0.37 {
		n := o.TickIndex(x)
		if n < prev {
			t.Fatalf("TickIndex not monotonic at %v: %d < %d", x, n, prev)
		}
		prev = n
	}
}

func TestTickInverse(t *testing.T) {
	s := sim.New(3)
	o := New(s, TCXO(16e6), "a")
	s.RunUntil(20)
	for _, n := range []uint64{0, 1, 999, 16_000_000, 200_000_000} {
		at := o.TimeOfTick(n)
		got := o.TickIndex(at + 1e-12)
		if got != n {
			t.Errorf("TickIndex(TimeOfTick(%d)) = %d", n, got)
		}
	}
}

func TestNextTickAfter(t *testing.T) {
	s := sim.New(1)
	o := New(s, Ideal(1e6), "a") // 1 µs period
	n, at := o.NextTickAfter(2.5e-6)
	if n != 3 || math.Abs(at-3e-6) > 1e-15 {
		t.Errorf("NextTickAfter = %d @ %v", n, at)
	}
	// Exactly on a tick: next is strictly after.
	n, at = o.NextTickAfter(3e-6)
	if n != 4 {
		t.Errorf("NextTickAfter on-tick = %d @ %v, want 4", n, at)
	}
	// Synchronizer uncertainty is bounded by one period.
	if at-3e-6 > 1.0/1e6+1e-12 {
		t.Errorf("synchronizer delay too large: %v", at-3e-6)
	}
}

func TestDriftWithinBound(t *testing.T) {
	s := sim.New(4)
	cfg := TCXO(10e6)
	cfg.WalkStepPPM = 10 // aggressive walk to exercise the clamp
	cfg.MaxDriftPPM = 5
	o := New(s, cfg, "a")
	s.RunUntil(300)
	for x := 0.0; x <= 300; x += 7 {
		if d := math.Abs(o.DriftAt(x)); d > 5.0001e-6 {
			t.Fatalf("drift %v at t=%v exceeds bound", d, x)
		}
	}
	if math.Abs(o.MaxDrift()-5e-6) > 1e-12 {
		t.Errorf("MaxDrift = %v", o.MaxDrift())
	}
}

func TestDriftActuallyVaries(t *testing.T) {
	s := sim.New(5)
	o := New(s, TCXO(10e6), "a")
	s.RunUntil(600)
	d0 := o.DriftAt(1)
	varied := false
	for x := 2.0; x < 600; x += 10 {
		if math.Abs(o.DriftAt(x)-d0) > 1e-9 {
			varied = true
			break
		}
	}
	if !varied {
		t.Error("TCXO drift never changed over 600 s")
	}
	if o.Segments() < 100 {
		t.Errorf("expected many segments, got %d", o.Segments())
	}
}

func TestSystematicOffsetApplied(t *testing.T) {
	s := sim.New(6)
	cfg := Ideal(10e6)
	cfg.InitOffsetPPM = 3
	o := New(s, cfg, "a")
	// After 1 true second the oscillator has ticked 10e6*(1+3e-6) times.
	n := o.TickIndex(1.0)
	want := uint64(10e6 * (1 + 3e-6))
	if diff := int64(n) - int64(want); diff < -1 || diff > 1 {
		t.Errorf("ticks after 1 s = %d, want ≈%d", n, want)
	}
}

func TestTwoOscillatorsDiffer(t *testing.T) {
	s := sim.New(7)
	a := New(s, TCXO(10e6), "a")
	b := New(s, TCXO(10e6), "b")
	if a.DriftAt(0) == b.DriftAt(0) {
		t.Error("independent oscillators got identical initial drift")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	mk := func() float64 {
		s := sim.New(99)
		o := New(s, TCXO(10e6), "x")
		s.RunUntil(50)
		return o.TimeOfTick(123456789)
	}
	if mk() != mk() {
		t.Error("oscillator not deterministic")
	}
}

func TestOCXOTighterThanTCXO(t *testing.T) {
	spread := func(cfg Config) float64 {
		s := sim.New(11)
		o := New(s, cfg, "x")
		s.RunUntil(600)
		lo, hi := math.Inf(1), math.Inf(-1)
		for x := 0.0; x <= 600; x += 5 {
			d := o.DriftAt(x)
			lo = math.Min(lo, d)
			hi = math.Max(hi, d)
		}
		return hi - lo
	}
	if spread(OCXO(10e6)) >= spread(TCXO(10e6)) {
		t.Error("OCXO should have tighter drift spread than TCXO")
	}
}

func TestAging(t *testing.T) {
	s := sim.New(12)
	cfg := Ideal(10e6)
	cfg.AgingPPMPerDy = 86.4 // 1e-9 per second, large enough to see
	cfg.UpdateInterval = 1
	o := New(s, cfg, "a")
	s.RunUntil(1000)
	d := o.DriftAt(999)
	want := 86.4e-6 * 999.0 / 86400
	if math.Abs(d-want) > want*0.05 {
		t.Errorf("aging drift = %v, want ≈%v", d, want)
	}
}

func TestStopFreezesSegments(t *testing.T) {
	s := sim.New(13)
	o := New(s, TCXO(10e6), "a")
	s.RunUntil(10)
	o.Stop()
	n := o.Segments()
	s.RunUntil(50)
	if o.Segments() != n {
		t.Error("segments grew after Stop")
	}
}

// Property: tick times are strictly increasing and inverse-consistent.
func TestQuickTickConsistency(t *testing.T) {
	s := sim.New(21)
	o := New(s, TCXO(10e6), "q")
	s.RunUntil(60)
	f := func(raw uint32) bool {
		n := uint64(raw) % 600_000_000 // within the simulated minute
		at := o.TimeOfTick(n)
		atNext := o.TimeOfTick(n + 1)
		return atNext > at && o.TickIndex(at+1e-12) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTickIndex(b *testing.B) {
	s := sim.New(1)
	o := New(s, TCXO(10e6), "a")
	s.RunUntil(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = o.TickIndex(float64(i%100) + 0.5)
	}
}
