// Scratch-based convergence: a Fuser owns reusable buffers so the
// per-round hot path of a long-running synchronizer computes Marzullo
// intersections and fault-tolerant midpoints without allocating. The
// package-level functions (Marzullo, FTMidpoint, OrthogonalAccuracy, …)
// stay as the allocation-per-call reference implementations; a Fuser
// produces bit-identical results (same edge ordering, same tie rules)
// and is what internal/discipline uses on the steady-state path.

package interval

import (
	"sort"

	"ntisim/internal/timefmt"
)

// fuserEdge mirrors the sweep edge of Marzullo.
type fuserEdge struct {
	at    timefmt.Stamp
	delta int8 // +1 = interval opens, -1 = closes
}

// edgeSlice sorts edges by position, opens before closes at the same
// point (closed intervals touch) — exactly Marzullo's comparator.
type edgeSlice []fuserEdge

func (e edgeSlice) Len() int      { return len(e) }
func (e edgeSlice) Swap(i, j int) { e[i], e[j] = e[j], e[i] }
func (e edgeSlice) Less(i, j int) bool {
	if e[i].at != e[j].at {
		return e[i].at < e[j].at
	}
	return e[i].delta > e[j].delta
}

// stampSlice sorts reference points ascending.
type stampSlice []timefmt.Stamp

func (s stampSlice) Len() int           { return len(s) }
func (s stampSlice) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }
func (s stampSlice) Less(i, j int) bool { return s[i] < s[j] }

// Fuser computes the convergence functions of this package with
// reusable scratch buffers: after warm-up no call allocates. A Fuser is
// single-goroutine state (one per synchronizer/discipline instance).
type Fuser struct {
	edges edgeSlice
	refs  stampSlice
}

// Marzullo is the scratch-buffer equivalent of the package function.
func (fz *Fuser) Marzullo(ivs []Interval, f int) (Interval, bool) {
	n := len(ivs)
	need := n - f
	if need <= 0 || n == 0 {
		return Interval{}, false
	}
	edges := fz.edges[:0]
	for _, iv := range ivs {
		edges = append(edges, fuserEdge{iv.Lo(), +1}, fuserEdge{iv.Hi(), -1})
	}
	fz.edges = edges
	sort.Sort(&fz.edges)
	var lo, hi timefmt.Stamp
	foundLo, foundHi := false, false
	depth := 0
	for _, e := range fz.edges {
		depth += int(e.delta)
		if e.delta > 0 && depth >= need && !foundLo {
			lo, foundLo = e.at, true
		}
		// Last close below need, not the first: the hull over all
		// depth-(n−f) regions (see the package function).
		if e.delta < 0 && depth == need-1 && foundLo {
			hi, foundHi = e.at, true
		}
	}
	if !foundLo || !foundHi || hi < lo {
		return Interval{}, false
	}
	mid := lo.Add(hi.Sub(lo) / 2)
	return FromEdges(lo, hi, mid), true
}

// loadRefs fills the scratch reference-point buffer from ivs.
func (fz *Fuser) loadRefs(ivs []Interval) {
	refs := fz.refs[:0]
	for _, iv := range ivs {
		refs = append(refs, iv.Ref)
	}
	fz.refs = refs
}

// FTMidpoint computes the fault-tolerant midpoint of the intervals'
// reference points without allocating. It panics if 2f >= len(ivs),
// like the package function.
func (fz *Fuser) FTMidpoint(ivs []Interval, f int) timefmt.Stamp {
	n := len(ivs)
	if 2*f >= n {
		panic("interval: FTMidpoint needs n > 2f")
	}
	fz.loadRefs(ivs)
	sort.Sort(&fz.refs)
	lo, hi := fz.refs[f], fz.refs[n-1-f]
	return lo.Add(hi.Sub(lo) / 2)
}

// FTAverage computes the fault-tolerant average of the intervals'
// reference points without allocating. It panics if 2f >= len(ivs).
func (fz *Fuser) FTAverage(ivs []Interval, f int) timefmt.Stamp {
	n := len(ivs)
	if 2*f >= n {
		panic("interval: FTAverage needs n > 2f")
	}
	fz.loadRefs(ivs)
	sort.Sort(&fz.refs)
	kept := fz.refs[f : n-f]
	base := kept[0]
	var acc int64
	for _, v := range kept {
		acc += int64(v.Sub(base))
	}
	return base.Add(timefmt.Duration(acc / int64(len(kept))))
}

// degradeF mirrors the graceful degradation of the package convergence
// functions: with fewer than 2f+1 inputs fall back to the largest
// tolerable f.
func degradeF(ivs []Interval, f int) int {
	if 2*f >= len(ivs) && len(ivs) > 0 {
		f = (len(ivs) - 1) / 2
	}
	return f
}

// OrthogonalAccuracy is the scratch-buffer equivalent of the package
// function: Marzullo edges, fault-tolerant-midpoint reference.
func (fz *Fuser) OrthogonalAccuracy(ivs []Interval, f int) (Interval, bool) {
	f = degradeF(ivs, f)
	mz, ok := fz.Marzullo(ivs, f)
	if !ok {
		return Interval{}, false
	}
	return mz.Rereference(fz.FTMidpoint(ivs, f)), true
}

// OrthogonalAccuracyFTA is the scratch-buffer equivalent of the package
// function: Marzullo edges, fault-tolerant-average reference.
func (fz *Fuser) OrthogonalAccuracyFTA(ivs []Interval, f int) (Interval, bool) {
	f = degradeF(ivs, f)
	mz, ok := fz.Marzullo(ivs, f)
	if !ok {
		return Interval{}, false
	}
	return mz.Rereference(fz.FTAverage(ivs, f)), true
}

// MarzulloMidpoint is the scratch-buffer equivalent of the package
// function: pure Marzullo dynamics with graceful f degradation.
func (fz *Fuser) MarzulloMidpoint(ivs []Interval, f int) (Interval, bool) {
	return fz.Marzullo(ivs, degradeF(ivs, f))
}
