package interval

import (
	"sort"
	"testing"
	"testing/quick"

	"ntisim/internal/timefmt"
)

func st(s float64) timefmt.Stamp         { return timefmt.Stamp(timefmt.DurationFromSeconds(s)) }
func dur(s float64) timefmt.Duration     { return timefmt.DurationFromSeconds(s) }
func ivl(ref, m, p float64) Interval     { return New(st(ref), dur(m), dur(p)) }
func edges(lo, hi float64) Interval      { return FromEdges(st(lo), st(hi), st((lo+hi)/2)) }
func approx(a, b timefmt.Stamp) bool     { d := a.Sub(b); return d.Abs() <= 1 }
func approxD(a, b timefmt.Duration) bool { return (a - b).Abs() <= 1 }

func TestNewClampsNegative(t *testing.T) {
	iv := New(st(1), -5, -7)
	if iv.Minus != 0 || iv.Plus != 0 {
		t.Errorf("negative accuracies not clamped: %+v", iv)
	}
}

func TestEdgesAndContains(t *testing.T) {
	iv := ivl(10, 1, 2)
	if !approx(iv.Lo(), st(9)) || !approx(iv.Hi(), st(12)) {
		t.Errorf("edges wrong: lo=%v hi=%v", iv.Lo(), iv.Hi())
	}
	if !iv.Contains(st(9.5)) || !iv.Contains(st(12)) || iv.Contains(st(8.9)) || iv.Contains(st(12.1)) {
		t.Error("Contains wrong")
	}
	if !approxD(iv.Length(), dur(3)) {
		t.Errorf("Length = %v", iv.Length())
	}
}

func TestFromEdgesClampsRef(t *testing.T) {
	iv := FromEdges(st(5), st(7), st(100))
	if iv.Ref != st(7) {
		t.Errorf("ref not clamped to hi: %v", iv.Ref)
	}
	iv = FromEdges(st(5), st(7), st(0))
	if iv.Ref != st(5) {
		t.Errorf("ref not clamped to lo: %v", iv.Ref)
	}
	// Inverted edges collapse.
	iv = FromEdges(st(7), st(5), st(6))
	if iv.Length() != 0 {
		t.Errorf("inverted edges should collapse: %+v", iv)
	}
}

func TestShiftEnlarge(t *testing.T) {
	iv := ivl(10, 1, 1).Shift(dur(5))
	if !approx(iv.Ref, st(15)) || !approx(iv.Lo(), st(14)) {
		t.Errorf("Shift wrong: %+v", iv)
	}
	iv = iv.Enlarge(dur(1), dur(2))
	if !approxD(iv.Minus, dur(2)) || !approxD(iv.Plus, dur(3)) {
		t.Errorf("Enlarge wrong: %+v", iv)
	}
}

func TestRereferencePreservesEdges(t *testing.T) {
	iv := ivl(10, 2, 2)
	r := iv.Rereference(st(11))
	if !approx(r.Lo(), iv.Lo()) || !approx(r.Hi(), iv.Hi()) {
		t.Errorf("edges moved: %+v vs %+v", r, iv)
	}
	if r.Ref != st(11) {
		t.Errorf("ref = %v", r.Ref)
	}
	// Outside: interval extends to keep containment.
	r = iv.Rereference(st(20))
	if !approx(r.Lo(), iv.Lo()) || !approx(r.Hi(), st(20)) || r.Plus != 0 {
		t.Errorf("outside rereference wrong: %+v", r)
	}
}

func TestIntersect(t *testing.T) {
	a := edges(1, 5)
	b := edges(4, 9)
	x, ok := a.Intersect(b)
	if !ok || !approx(x.Lo(), st(4)) || !approx(x.Hi(), st(5)) {
		t.Errorf("intersect = %+v ok=%v", x, ok)
	}
	_, ok = edges(1, 2).Intersect(edges(3, 4))
	if ok {
		t.Error("disjoint intervals intersected")
	}
	// Touching intervals intersect in a point.
	x, ok = edges(1, 3).Intersect(edges(3, 5))
	if !ok || x.Length() != 0 {
		t.Errorf("touching intersect = %+v ok=%v", x, ok)
	}
}

func TestUnion(t *testing.T) {
	u := edges(1, 3).Union(edges(7, 9))
	if !approx(u.Lo(), st(1)) || !approx(u.Hi(), st(9)) {
		t.Errorf("union = %+v", u)
	}
}

func TestDelayCompensatePreservesContainment(t *testing.T) {
	// Sender's interval contains true send time 10.0; true delay anywhere
	// in [dmin, dmax] must leave true receive time inside the compensated
	// interval.
	iv := ivl(10.0, 0.001, 0.001)
	dmin, dmax := dur(100e-6), dur(300e-6)
	out := iv.DelayCompensate(dmin, dmax)
	for _, delay := range []float64{100e-6, 200e-6, 300e-6} {
		recv := st(10.0 + delay)
		if !out.Contains(recv) {
			t.Errorf("delay %v: %v not in %+v", delay, recv, out)
		}
	}
	// Enlargement is exactly the uncertainty.
	if !approxD(out.Length()-iv.Length(), dmax-dmin) {
		t.Errorf("enlargement = %v, want %v", out.Length()-iv.Length(), dmax-dmin)
	}
}

func TestDriftCompensate(t *testing.T) {
	iv := ivl(10, 0.0001, 0.0001)
	dt := dur(1.0)                      // one second of local time
	out := iv.DriftCompensate(dt, 2000) // 2 ppm
	if !approx(out.Ref, st(11)) {
		t.Errorf("ref = %v", out.Ref)
	}
	// Deterioration ≈ 2 µs on each side.
	grow := (out.Length() - iv.Length()) / 2
	if grow < dur(2e-6) || grow > dur(2e-6)+2 {
		t.Errorf("deterioration = %v, want ≈2µs", grow)
	}
}

func TestDriftDeteriorationRoundsUp(t *testing.T) {
	// 1 granule over 1 ppb: must round up to 1 granule, not 0.
	if DriftDeterioration(1, 1) != 1 {
		t.Error("deterioration must round up")
	}
	if DriftDeterioration(0, 1000) != 0 {
		t.Error("zero span has zero deterioration")
	}
	if DriftDeterioration(-dur(1), 1000) != DriftDeterioration(dur(1), 1000) {
		t.Error("deterioration must use |dt|")
	}
}

func TestMarzulloBasic(t *testing.T) {
	// Three overlapping, one clearly off; f=1 must ignore the outlier.
	ivs := []Interval{edges(9, 11), edges(9.5, 11.5), edges(10, 12), edges(100, 101)}
	mz, ok := Marzullo(ivs, 1)
	if !ok {
		t.Fatal("Marzullo failed")
	}
	if !approx(mz.Lo(), st(10)) || !approx(mz.Hi(), st(11)) {
		t.Errorf("marzullo = [%v, %v], want [10, 11]", mz.Lo(), mz.Hi())
	}
}

func TestMarzulloAllAgree(t *testing.T) {
	ivs := []Interval{edges(9, 11), edges(10, 12), edges(8, 10.5)}
	mz, ok := Marzullo(ivs, 0)
	if !ok || !approx(mz.Lo(), st(10)) || !approx(mz.Hi(), st(10.5)) {
		t.Errorf("marzullo f=0 = %+v ok=%v", mz, ok)
	}
}

func TestMarzulloNoQuorum(t *testing.T) {
	ivs := []Interval{edges(1, 2), edges(5, 6), edges(9, 10)}
	if _, ok := Marzullo(ivs, 0); ok {
		t.Error("disjoint intervals should fail with f=0")
	}
	if _, ok := Marzullo(nil, 0); ok {
		t.Error("empty input should fail")
	}
	if _, ok := Marzullo([]Interval{edges(1, 2)}, 1); ok {
		t.Error("f >= n should fail")
	}
}

func TestMarzulloContainsTruthUnderFaults(t *testing.T) {
	// Truth at 10; n=4, f=1; correct intervals contain truth.
	truth := st(10)
	ivs := []Interval{edges(9.9, 10.1), edges(9.95, 10.2), edges(9.8, 10.05), edges(3, 4)}
	mz, ok := Marzullo(ivs, 1)
	if !ok || !mz.Contains(truth) {
		t.Errorf("marzullo lost the truth: %+v ok=%v", mz, ok)
	}
}

func TestFTMidpoint(t *testing.T) {
	refs := []timefmt.Stamp{st(1), st(2), st(3), st(100)}
	// f=1: drop 1 and 100, midpoint of [2,3] = 2.5.
	got := FTMidpoint(refs, 1)
	if !approx(got, st(2.5)) {
		t.Errorf("FTMidpoint = %v, want 2.5", got)
	}
	// f=0: midpoint of [1,100].
	if got := FTMidpoint(refs, 0); !approx(got, st(50.5)) {
		t.Errorf("FTMidpoint f=0 = %v", got)
	}
}

func TestFTMidpointPanicsOnBadF(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for 2f >= n")
		}
	}()
	FTMidpoint([]timefmt.Stamp{st(1), st(2)}, 1)
}

func TestOrthogonalAccuracy(t *testing.T) {
	ivs := []Interval{ivl(10, 0.5, 0.5), ivl(10.2, 0.5, 0.5), ivl(9.9, 0.5, 0.5), ivl(50, 0.1, 0.1)}
	oa, ok := OrthogonalAccuracy(ivs, 1)
	if !ok {
		t.Fatal("OA failed")
	}
	mz, _ := Marzullo(ivs, 1)
	if !oa.ContainsInterval(mz) && !mz.ContainsInterval(oa) {
		// OA is the Marzullo interval re-referenced, so edges must match.
		t.Errorf("OA %+v inconsistent with Marzullo %+v", oa, mz)
	}
	if !oa.Contains(st(10)) {
		t.Errorf("OA lost truth: %+v", oa)
	}
	// The reference should be near the FTM of the correct refs (~10.03),
	// certainly not dragged to the faulty 50.
	if oa.Ref > st(11) || oa.Ref < st(9) {
		t.Errorf("OA ref implausible: %v", oa.Ref)
	}
}

func TestEnvelope(t *testing.T) {
	ivs := []Interval{edges(1, 3), edges(2, 8)}
	env, ok := Envelope(ivs)
	if !ok || !approx(env.Lo(), st(1)) || !approx(env.Hi(), st(8)) {
		t.Errorf("envelope = %+v ok=%v", env, ok)
	}
	if _, ok := Envelope(nil); ok {
		t.Error("empty envelope should fail")
	}
}

func TestValidateAccepts(t *testing.T) {
	validation := ivl(10, 0.01, 0.01) // ±10 ms reliable interval
	gps := ivl(10.001, 0.0001, 0.0001)
	out, accepted := Validate(gps, validation)
	if !accepted {
		t.Fatal("consistent GPS rejected")
	}
	if out.Length() > gps.Length()+2 {
		t.Errorf("validated interval should be GPS-sized, got %v", out.Length())
	}
}

func TestValidateRejects(t *testing.T) {
	validation := ivl(10, 0.01, 0.01)
	gps := ivl(37, 0.0001, 0.0001) // wildly wrong (e.g. wrong-second fault)
	out, accepted := Validate(gps, validation)
	if accepted {
		t.Fatal("inconsistent GPS accepted")
	}
	if out != validation {
		t.Errorf("fallback should be the validation interval, got %+v", out)
	}
}

// Property: Marzullo's output is contained in the f=0 envelope and
// contains the intersection of all inputs when that is non-empty.
func TestQuickMarzulloSandwich(t *testing.T) {
	f := func(raw [4]struct {
		Ref  int16
		M, P uint8
	}) bool {
		ivs := make([]Interval, 4)
		for i, r := range raw {
			ivs[i] = New(timefmt.Stamp(r.Ref), timefmt.Duration(r.M), timefmt.Duration(r.P))
		}
		mz, ok := Marzullo(ivs, 1)
		if !ok {
			return true // nothing to check
		}
		env, _ := Envelope(ivs)
		if !env.ContainsInterval(mz) {
			return false
		}
		// Full intersection (f=0), if it exists, must lie inside the f=1 result.
		full, okFull := Marzullo(ivs, 0)
		if okFull && !mz.ContainsInterval(full) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: DelayCompensate preserves containment of the true receive
// time for any true delay within bounds.
func TestQuickDelayCompensate(t *testing.T) {
	f := func(refRaw int16, m, p uint8, dminRaw, spanRaw, pickRaw uint8) bool {
		iv := New(timefmt.Stamp(refRaw), timefmt.Duration(m), timefmt.Duration(p))
		dmin := timefmt.Duration(dminRaw)
		dmax := dmin + timefmt.Duration(spanRaw)
		trueDelay := dmin + timefmt.Duration(pickRaw)%(dmax-dmin+1)
		// True send time anywhere in iv.
		trueSend := iv.Lo().Add(iv.Length() / 2)
		out := iv.DelayCompensate(dmin, dmax)
		return out.Contains(trueSend.Add(trueDelay))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: intersection is commutative in its edges.
func TestQuickIntersectCommutative(t *testing.T) {
	f := func(a, b int16, am, ap, bm, bp uint8) bool {
		x := New(timefmt.Stamp(a), timefmt.Duration(am), timefmt.Duration(ap))
		y := New(timefmt.Stamp(b), timefmt.Duration(bm), timefmt.Duration(bp))
		p, okP := x.Intersect(y)
		q, okQ := y.Intersect(x)
		if okP != okQ {
			return false
		}
		if !okP {
			return true
		}
		return p.Lo() == q.Lo() && p.Hi() == q.Hi()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkMarzullo16(b *testing.B) {
	ivs := make([]Interval, 16)
	for i := range ivs {
		ivs[i] = ivl(10+float64(i)*0.01, 0.5, 0.5)
	}
	for i := 0; i < b.N; i++ {
		Marzullo(ivs, 5)
	}
}

func TestFTAverage(t *testing.T) {
	refs := []timefmt.Stamp{st(1), st(2), st(3), st(100)}
	// f=1: drop 1 and 100, mean of {2,3} = 2.5.
	if got := FTAverage(refs, 1); !approx(got, st(2.5)) {
		t.Errorf("FTAverage = %v, want 2.5", got)
	}
	// f=0: mean of all = 26.5.
	if got := FTAverage(refs, 0); !approx(got, st(26.5)) {
		t.Errorf("FTAverage f=0 = %v, want 26.5", got)
	}
}

func TestFTAveragePanicsOnBadF(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for 2f >= n")
		}
	}()
	FTAverage([]timefmt.Stamp{st(1)}, 1)
}

func TestOrthogonalAccuracyFTA(t *testing.T) {
	ivs := []Interval{ivl(10, 0.5, 0.5), ivl(10.2, 0.5, 0.5), ivl(9.9, 0.5, 0.5), ivl(50, 0.1, 0.1)}
	oa, ok := OrthogonalAccuracyFTA(ivs, 1)
	if !ok {
		t.Fatal("OA-FTA failed")
	}
	if !oa.Contains(st(10)) {
		t.Errorf("OA-FTA lost truth: %+v", oa)
	}
	// Reference is the trimmed mean of {10, 10.2, 9.9} ≈ 10.03, far from 50.
	if oa.Ref > st(10.5) || oa.Ref < st(9.5) {
		t.Errorf("OA-FTA ref implausible: %v", oa.Ref)
	}
}

func TestMarzulloMidpointFunction(t *testing.T) {
	ivs := []Interval{edges(9, 11), edges(9.5, 11.5), edges(10, 12)}
	out, ok := MarzulloMidpoint(ivs, 0)
	if !ok {
		t.Fatal("MarzulloMidpoint failed")
	}
	// Intersection is [10, 11]; reference at its midpoint.
	if !approx(out.Ref, st(10.5)) {
		t.Errorf("ref = %v, want 10.5", out.Ref)
	}
	// Degenerate f is clamped instead of panicking.
	if _, ok := MarzulloMidpoint(ivs[:1], 3); !ok {
		t.Error("single interval with oversized f should still fuse")
	}
}

// Property: FTAverage lies within [min, max] of the surviving refs and
// between FTMidpoint's bounding extremes.
func TestQuickFTAverageBounds(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 3 {
			return true
		}
		refs := make([]timefmt.Stamp, len(raw))
		for i, v := range raw {
			refs[i] = timefmt.Stamp(v)
		}
		fTol := (len(refs) - 1) / 3
		avg := FTAverage(refs, fTol)
		sorted := make([]timefmt.Stamp, len(refs))
		copy(sorted, refs)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		lo, hi := sorted[fTol], sorted[len(sorted)-1-fTol]
		return avg >= lo && avg <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
