package interval

import (
	"math/rand"
	"testing"

	"ntisim/internal/timefmt"
)

// Adversarial-input differential tests: the paper's fault-tolerance
// claim is that the convergence functions bound the damage f arbitrary
// (Byzantine) inputs can do. Here liars get to pick worst-case
// intervals — disjoint from true time, two-faced (a different lie per
// receiver view), or barely-overlapping — and the properties under test
// are (a) the fused interval still contains true time whenever at least
// n−f inputs do, and (b) the zero-alloc Fuser stays bit-identical to
// the reference package functions on exactly these hostile inputs.

// mkHonest builds an interval containing T with randomized asymmetric
// bounds and a randomized reference point inside them.
func mkHonest(rng *rand.Rand, T timefmt.Stamp) Interval {
	minus := timefmt.DurationFromSeconds(50e-6 + 400e-6*rng.Float64())
	plus := timefmt.DurationFromSeconds(50e-6 + 400e-6*rng.Float64())
	// Slide the reference anywhere that keeps T ∈ [ref−minus, ref+plus],
	// i.e. the offset from T within [−plus, minus].
	off := timefmt.Duration(rng.Int63n(int64(minus+plus)+1)) - plus
	return New(T.Add(off), minus, plus)
}

// mkLie builds a traitor's interval as one receiver view sees it: the
// lie magnitude is chosen in the nastiest band (comparable to honest
// widths, so it pulls edges rather than being obviously disjoint), with
// the sign flipped per trial like a two-faced clock's pair bit.
func mkLie(rng *rand.Rand, T timefmt.Stamp) Interval {
	mag := timefmt.DurationFromSeconds(200e-6 + 2e-3*rng.Float64())
	if rng.Intn(2) == 1 {
		mag = -mag
	}
	minus := timefmt.DurationFromSeconds(20e-6 + 200e-6*rng.Float64())
	plus := timefmt.DurationFromSeconds(20e-6 + 200e-6*rng.Float64())
	return New(T.Add(mag), minus, plus)
}

func TestFusionContainsTrueTimeUnderByzantineInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5eed))
	T := timefmt.Stamp(0).Add(timefmt.DurationFromSeconds(100))
	var fz Fuser
	for f := 1; f <= 4; f++ {
		honest := 2*f + 1
		for trial := 0; trial < 200; trial++ {
			ivs := make([]Interval, 0, honest+f)
			for i := 0; i < honest; i++ {
				ivs = append(ivs, mkHonest(rng, T))
			}
			for i := 0; i < f; i++ {
				ivs = append(ivs, mkLie(rng, T))
			}
			rng.Shuffle(len(ivs), func(i, j int) { ivs[i], ivs[j] = ivs[j], ivs[i] })

			mz, ok := fz.Marzullo(ivs, f)
			if !ok {
				t.Fatalf("f=%d trial %d: Marzullo failed with %d honest inputs", f, trial, honest)
			}
			if !mz.Contains(T) {
				t.Fatalf("f=%d trial %d: Marzullo %v lost true time %v", f, trial, mz, T)
			}
			oa, ok := fz.OrthogonalAccuracy(ivs, f)
			if !ok {
				t.Fatalf("f=%d trial %d: OrthogonalAccuracy failed", f, trial)
			}
			if !oa.Contains(T) {
				t.Fatalf("f=%d trial %d: OrthogonalAccuracy %v lost true time %v", f, trial, oa, T)
			}
			// The FT-midpoint reference must stay inside its own edges,
			// or the interval is self-inconsistent.
			if oa.Ref < oa.Lo() || oa.Ref > oa.Hi() {
				t.Fatalf("f=%d trial %d: reference %v outside [%v, %v]", f, trial, oa.Ref, oa.Lo(), oa.Hi())
			}
		}
	}
}

// TestFuserMatchesReferenceOnAdversarialInputs pins the Fuser to the
// allocation-per-call package functions bit-for-bit on hostile inputs —
// edge ties, barely-touching intervals, and lies engineered near the
// capture band, where a comparator or tie-rule divergence would show.
func TestFuserMatchesReferenceOnAdversarialInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(0xbad))
	T := timefmt.Stamp(0).Add(timefmt.DurationFromSeconds(42))
	var fz Fuser
	for trial := 0; trial < 500; trial++ {
		n := 3 + rng.Intn(8)
		f := rng.Intn(n) // deliberately includes f too large (degradeF path)
		ivs := make([]Interval, 0, n)
		for i := 0; i < n; i++ {
			switch rng.Intn(3) {
			case 0:
				ivs = append(ivs, mkHonest(rng, T))
			case 1:
				ivs = append(ivs, mkLie(rng, T))
			default:
				// Degenerate: zero-width point interval, sometimes
				// duplicated at an existing edge to force sort ties.
				if len(ivs) > 0 && rng.Intn(2) == 1 {
					ivs = append(ivs, Point(ivs[len(ivs)-1].Hi()))
				} else {
					ivs = append(ivs, Point(T.Add(timefmt.DurationFromSeconds(1e-3*rng.Float64()))))
				}
			}
		}
		got, gotOK := fz.OrthogonalAccuracy(ivs, f)
		want, wantOK := OrthogonalAccuracy(ivs, f)
		if gotOK != wantOK || got != want {
			t.Fatalf("trial %d: OrthogonalAccuracy mismatch: fuser (%v, %v) vs reference (%v, %v)", trial, got, gotOK, want, wantOK)
		}
		got, gotOK = fz.OrthogonalAccuracyFTA(ivs, f)
		want, wantOK = OrthogonalAccuracyFTA(ivs, f)
		if gotOK != wantOK || got != want {
			t.Fatalf("trial %d: OrthogonalAccuracyFTA mismatch: fuser (%v, %v) vs reference (%v, %v)", trial, got, gotOK, want, wantOK)
		}
		got, gotOK = fz.MarzulloMidpoint(ivs, f)
		want, wantOK = MarzulloMidpoint(ivs, f)
		if gotOK != wantOK || got != want {
			t.Fatalf("trial %d: MarzulloMidpoint mismatch: fuser (%v, %v) vs reference (%v, %v)", trial, got, gotOK, want, wantOK)
		}
	}
}
