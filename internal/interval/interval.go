// Package interval implements accuracy-interval arithmetic for
// interval-based clock synchronization (paper §2).
//
// Real time t is represented by an accuracy interval A = [C−α⁻, C+α⁺]
// around a clock value C that must satisfy t ∈ A. The synchronization
// algorithms exchange such intervals, make them compatible (delay and
// drift compensation) and fuse them with a convergence function.
//
// All arithmetic is in the UTCSU's visible granularity (2⁻²⁴ s granules,
// timefmt.Duration/Stamp), matching what the hardware registers can hold.
package interval

import (
	"fmt"
	"sort"

	"ntisim/internal/timefmt"
)

// Interval is an accuracy interval: reference point Ref (a clock reading)
// with non-negative accuracies Minus (α⁻) and Plus (α⁺).
type Interval struct {
	Ref   timefmt.Stamp
	Minus timefmt.Duration
	Plus  timefmt.Duration
}

// New builds an interval, clamping negative accuracies to zero as the
// ACU's zero-masking logic does (paper §3.3).
func New(ref timefmt.Stamp, minus, plus timefmt.Duration) Interval {
	if minus < 0 {
		minus = 0
	}
	if plus < 0 {
		plus = 0
	}
	return Interval{Ref: ref, Minus: minus, Plus: plus}
}

// FromEdges builds an interval spanning [lo, hi] with the reference at a
// given point inside (clamped to the edges if outside).
func FromEdges(lo, hi timefmt.Stamp, ref timefmt.Stamp) Interval {
	if hi < lo {
		hi = lo
	}
	if ref < lo {
		ref = lo
	}
	if ref > hi {
		ref = hi
	}
	return Interval{Ref: ref, Minus: ref.Sub(lo), Plus: hi.Sub(ref)}
}

// Point returns a zero-width interval at ref.
func Point(ref timefmt.Stamp) Interval { return Interval{Ref: ref} }

// Lo returns the lower edge C−α⁻.
func (iv Interval) Lo() timefmt.Stamp { return iv.Ref.Add(-iv.Minus) }

// Hi returns the upper edge C+α⁺.
func (iv Interval) Hi() timefmt.Stamp { return iv.Ref.Add(iv.Plus) }

// Length returns α⁻+α⁺.
func (iv Interval) Length() timefmt.Duration { return iv.Minus + iv.Plus }

// Contains reports whether t lies within the interval (inclusive).
func (iv Interval) Contains(t timefmt.Stamp) bool {
	return iv.Lo() <= t && t <= iv.Hi()
}

// ContainsInterval reports whether iv fully covers other.
func (iv Interval) ContainsInterval(other Interval) bool {
	return iv.Lo() <= other.Lo() && other.Hi() <= iv.Hi()
}

// Midpoint returns the centre of the interval.
func (iv Interval) Midpoint() timefmt.Stamp {
	return iv.Lo().Add(iv.Length() / 2)
}

// Shift translates the whole interval by d (reference and edges alike).
func (iv Interval) Shift(d timefmt.Duration) Interval {
	iv.Ref = iv.Ref.Add(d)
	return iv
}

// Enlarge grows the interval by extra uncertainty on each side.
func (iv Interval) Enlarge(minus, plus timefmt.Duration) Interval {
	return New(iv.Ref, iv.Minus+minus, iv.Plus+plus)
}

// Rereference moves the reference point to ref, keeping the edges fixed.
// If ref lies outside the interval the nearer accuracy is zero-masked and
// the interval is extended on that side so real-time containment is
// preserved.
func (iv Interval) Rereference(ref timefmt.Stamp) Interval {
	lo, hi := iv.Lo(), iv.Hi()
	if lo > ref {
		lo = ref
	}
	if hi < ref {
		hi = ref
	}
	return Interval{Ref: ref, Minus: ref.Sub(lo), Plus: hi.Sub(ref)}
}

// Intersect returns the intersection of two intervals with the reference
// of iv re-clamped inside, and ok=false if they are disjoint.
func (iv Interval) Intersect(other Interval) (Interval, bool) {
	lo, hi := iv.Lo(), iv.Hi()
	if o := other.Lo(); o > lo {
		lo = o
	}
	if o := other.Hi(); o < hi {
		hi = o
	}
	if hi < lo {
		return Interval{}, false
	}
	return FromEdges(lo, hi, iv.Ref), true
}

// Union returns the smallest interval covering both inputs, referenced at
// iv.Ref.
func (iv Interval) Union(other Interval) Interval {
	lo, hi := iv.Lo(), iv.Hi()
	if o := other.Lo(); o < lo {
		lo = o
	}
	if o := other.Hi(); o > hi {
		hi = o
	}
	return FromEdges(lo, hi, iv.Ref)
}

// DelayCompensate adapts an interval received in a CSP to the receiving
// node's time base (paper §2 step 2, first operation): the reference is
// advanced by the nominal transmission delay and the edges are enlarged by
// the delay uncertainty. delayMin/delayMax bound the true end-to-end delay
// between the peers' timestamping points.
func (iv Interval) DelayCompensate(delayMin, delayMax timefmt.Duration) Interval {
	if delayMax < delayMin {
		delayMin, delayMax = delayMax, delayMin
	}
	nominal := (delayMin + delayMax) / 2
	out := iv.Shift(nominal)
	return out.Enlarge(nominal-delayMin, delayMax-nominal)
}

// DriftCompensate shifts the interval forward by elapsed local-clock time
// dt and deteriorates both accuracies by the maximum drift the local clock
// may have accumulated meanwhile (paper §2 step 2, second operation).
// rhoPPB is the drift bound in parts per billion.
func (iv Interval) DriftCompensate(dt timefmt.Duration, rhoPPB int64) Interval {
	det := DriftDeterioration(dt, rhoPPB)
	out := iv.Shift(dt)
	return out.Enlarge(det, det)
}

// DriftDeterioration returns ⌈|dt|·ρ⌉ in granules: the accuracy loss of a
// clock with drift bound rhoPPB over a span dt, rounded up so containment
// is conservative.
func DriftDeterioration(dt timefmt.Duration, rhoPPB int64) timefmt.Duration {
	if dt < 0 {
		dt = -dt
	}
	num := int64(dt) * rhoPPB
	d := num / 1_000_000_000
	if num%1_000_000_000 != 0 {
		d++
	}
	return timefmt.Duration(d)
}

func (iv Interval) String() string {
	return fmt.Sprintf("[%v -%v +%v]", iv.Ref, iv.Minus, iv.Plus)
}

// Marzullo computes the fault-tolerant intersection of the given
// intervals assuming at most f of them are faulty [Mar84]: the smallest
// interval containing every point that lies in at least n−f inputs. If
// fewer than n−f inputs overlap anywhere, ok is false. The result is
// referenced at its midpoint.
func Marzullo(ivs []Interval, f int) (Interval, bool) {
	n := len(ivs)
	need := n - f
	if need <= 0 || n == 0 {
		return Interval{}, false
	}
	type edge struct {
		at    timefmt.Stamp
		delta int // +1 = interval opens, -1 = closes
	}
	edges := make([]edge, 0, 2*n)
	for _, iv := range ivs {
		edges = append(edges, edge{iv.Lo(), +1}, edge{iv.Hi(), -1})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].at != edges[j].at {
			return edges[i].at < edges[j].at
		}
		// Open before close at the same point: closed intervals touch.
		return edges[i].delta > edges[j].delta
	})
	var lo, hi timefmt.Stamp
	foundLo, foundHi := false, false
	depth := 0
	for _, e := range edges {
		depth += e.delta
		if e.delta > 0 && depth >= need && !foundLo {
			lo, foundLo = e.at, true
		}
		// Keep advancing hi to the LAST close that drops below need:
		// Byzantine inputs can split the depth-(n−f) coverage into
		// disjoint regions, and true time is only guaranteed to lie in
		// one of them — the hull over all of them is what the contract
		// (and the containment theorem) requires, not the leftmost.
		if e.delta < 0 && depth == need-1 && foundLo {
			hi, foundHi = e.at, true
		}
	}
	if !foundLo || !foundHi || hi < lo {
		return Interval{}, false
	}
	mid := lo.Add(hi.Sub(lo) / 2)
	return FromEdges(lo, hi, mid), true
}

// FTMidpoint computes the fault-tolerant midpoint of the reference points
// [LL84]/[KO87]: discard the f smallest and f largest values and return
// the midpoint of the extremes of the rest. It panics if 2f >= len(refs).
func FTMidpoint(refs []timefmt.Stamp, f int) timefmt.Stamp {
	n := len(refs)
	if 2*f >= n {
		panic("interval: FTMidpoint needs n > 2f")
	}
	sorted := make([]timefmt.Stamp, n)
	copy(sorted, refs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	lo, hi := sorted[f], sorted[n-1-f]
	return lo.Add(hi.Sub(lo) / 2)
}

// OrthogonalAccuracy is the OA convergence function of [Sch97b] as
// reconstructed from the paper's description (§5): precision is driven by
// a fault-tolerant-midpoint-style choice of the new reference point, while
// accuracy is maintained "orthogonally" by the Marzullo intersection of
// the input intervals. The returned interval always contains the Marzullo
// interval (hence real time, if at most f inputs are faulty).
func OrthogonalAccuracy(ivs []Interval, f int) (Interval, bool) {
	// With fewer than 2f+1 inputs the full fault tolerance is not
	// attainable this round (e.g. peers went silent); degrade gracefully
	// to the largest tolerable f rather than refusing to resynchronize.
	if 2*f >= len(ivs) && len(ivs) > 0 {
		f = (len(ivs) - 1) / 2
	}
	mz, ok := Marzullo(ivs, f)
	if !ok {
		return Interval{}, false
	}
	refs := make([]timefmt.Stamp, len(ivs))
	for i, iv := range ivs {
		refs[i] = iv.Ref
	}
	ref := FTMidpoint(refs, f)
	// Orthogonality: the reference point follows pure fault-tolerant-
	// midpoint dynamics (that is what guarantees precision, [LL84]), and
	// is NOT clamped into the Marzullo interval — when it falls outside,
	// Rereference extends the interval instead, so real-time containment
	// (accuracy) is preserved at the cost of a wider interval. Clamping
	// would couple the reference to the node's own interval edge and can
	// stall precision convergence entirely.
	return mz.Rereference(ref), true
}

// FTAverage computes the fault-tolerant average of the reference points
// (the convergence function of [LL84]'s averaging variant and [KO87]'s
// CSU firmware): discard the f smallest and f largest values, return the
// arithmetic mean of the rest. Compared to the midpoint it weights every
// surviving input, trading worst-case contraction for noise averaging.
// It panics if 2f >= len(refs).
func FTAverage(refs []timefmt.Stamp, f int) timefmt.Stamp {
	n := len(refs)
	if 2*f >= n {
		panic("interval: FTAverage needs n > 2f")
	}
	sorted := make([]timefmt.Stamp, n)
	copy(sorted, refs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	kept := sorted[f : n-f]
	base := kept[0]
	var acc int64
	for _, v := range kept {
		acc += int64(v.Sub(base))
	}
	return base.Add(timefmt.Duration(acc / int64(len(kept))))
}

// OrthogonalAccuracyFTA is OrthogonalAccuracy with the reference point
// chosen by the fault-tolerant average instead of the midpoint — the
// ablation used by the convergence-function comparison (experiment E14).
func OrthogonalAccuracyFTA(ivs []Interval, f int) (Interval, bool) {
	if 2*f >= len(ivs) && len(ivs) > 0 {
		f = (len(ivs) - 1) / 2
	}
	mz, ok := Marzullo(ivs, f)
	if !ok {
		return Interval{}, false
	}
	refs := make([]timefmt.Stamp, len(ivs))
	for i, iv := range ivs {
		refs[i] = iv.Ref
	}
	return mz.Rereference(FTAverage(refs, f)), true
}

// MarzulloMidpoint is the convergence function that sets the new
// reference to the midpoint of the fault-tolerant intersection — pure
// Marzullo dynamics as used by NTP's clock selection. Accuracy-optimal,
// but its reference point is dominated by whichever inputs bound the
// intersection, which couples precision to interval widths.
func MarzulloMidpoint(ivs []Interval, f int) (Interval, bool) {
	if 2*f >= len(ivs) && len(ivs) > 0 {
		f = (len(ivs) - 1) / 2
	}
	return Marzullo(ivs, f)
}

// Envelope returns the union of all intervals (the "no fault excluded"
// fallback), referenced at the FTMidpoint with f=0.
func Envelope(ivs []Interval) (Interval, bool) {
	if len(ivs) == 0 {
		return Interval{}, false
	}
	out := ivs[0]
	for _, iv := range ivs[1:] {
		out = out.Union(iv)
	}
	refs := make([]timefmt.Stamp, len(ivs))
	for i, iv := range ivs {
		refs[i] = iv.Ref
	}
	return out.Rereference(FTMidpoint(refs, 0)), true
}

// Validate implements interval-based clock validation [Sch94] (paper §2):
// a highly accurate but possibly faulty external interval (e.g. from a
// GPS receiver) is accepted only if it is consistent with the reliable
// validation interval; otherwise the validation interval is returned and
// accepted=false.
func Validate(external, validation Interval) (Interval, bool) {
	x, ok := external.Intersect(validation)
	if !ok {
		return validation, false
	}
	// Consistent: the (much smaller) intersection, referenced as close to
	// the external reference as the intersection permits.
	return x.Rereference(clampStamp(external.Ref, x.Lo(), x.Hi())), true
}

func clampStamp(v, lo, hi timefmt.Stamp) timefmt.Stamp {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
