package interval

import (
	"math/rand"
	"testing"

	"ntisim/internal/timefmt"
)

// --- OrthogonalAccuracy degenerate inputs -------------------------------

func TestOrthogonalAccuracyEmpty(t *testing.T) {
	if _, ok := OrthogonalAccuracy(nil, 0); ok {
		t.Error("nil input should not converge")
	}
	if _, ok := OrthogonalAccuracy([]Interval{}, 1); ok {
		t.Error("empty input should not converge")
	}
	var fz Fuser
	if _, ok := fz.OrthogonalAccuracy(nil, 0); ok {
		t.Error("Fuser: nil input should not converge")
	}
}

func TestOrthogonalAccuracySingleInterval(t *testing.T) {
	in := ivl(10, 1, 2)
	// A single interval is its own intersection even when the caller
	// asks for more fault tolerance than the set supports (graceful f
	// degradation to 0).
	for _, f := range []int{0, 1, 3} {
		out, ok := OrthogonalAccuracy([]Interval{in}, f)
		if !ok {
			t.Fatalf("f=%d: single interval should converge", f)
		}
		if !approx(out.Lo(), in.Lo()) || !approx(out.Hi(), in.Hi()) {
			t.Errorf("f=%d: edges changed: in %v out %v", f, in, out)
		}
		// FTMidpoint of one reference is that reference.
		if !approx(out.Ref, in.Ref) {
			t.Errorf("f=%d: ref = %v, want %v", f, out.Ref, in.Ref)
		}
	}
}

func TestOrthogonalAccuracyFullyDisjoint(t *testing.T) {
	// Three pairwise-disjoint intervals: with f=1 Marzullo needs 2
	// overlapping, with f=0 it needs all 3 — neither exists.
	ivs := []Interval{ivl(0, 0.1, 0.1), ivl(10, 0.1, 0.1), ivl(20, 0.1, 0.1)}
	for _, f := range []int{0, 1} {
		if out, ok := OrthogonalAccuracy(ivs, f); ok {
			t.Errorf("f=%d: disjoint set converged to %v", f, out)
		}
		var fz Fuser
		if out, ok := fz.OrthogonalAccuracy(ivs, f); ok {
			t.Errorf("Fuser f=%d: disjoint set converged to %v", f, out)
		}
	}
}

// --- Fuser vs package-function equivalence ------------------------------

// randomIvs builds n intervals scattered around t=100s with assorted
// widths, including exact ties (duplicated edges) to exercise the
// opens-before-closes tie rule.
func randomIvs(rng *rand.Rand, n int) []Interval {
	ivs := make([]Interval, n)
	for i := range ivs {
		ref := 100 + rng.NormFloat64()*1e-3
		minus := rng.Float64() * 5e-3
		plus := rng.Float64() * 5e-3
		ivs[i] = ivl(ref, minus, plus)
		if i > 0 && rng.Intn(4) == 0 {
			ivs[i] = ivs[i-1] // exact duplicate: edge ties
		}
	}
	return ivs
}

func refsOf(ivs []Interval) []timefmt.Stamp {
	out := make([]timefmt.Stamp, len(ivs))
	for i, iv := range ivs {
		out[i] = iv.Ref
	}
	return out
}

func TestFuserMatchesPackageFunctions(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var fz Fuser
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(8)
		f := rng.Intn(4)
		ivs := randomIvs(rng, n)

		wantMz, wantOK := Marzullo(ivs, f)
		gotMz, gotOK := fz.Marzullo(ivs, f)
		if wantOK != gotOK || wantMz != gotMz {
			t.Fatalf("trial %d: Marzullo(n=%d,f=%d) = %v,%v; Fuser = %v,%v",
				trial, n, f, wantMz, wantOK, gotMz, gotOK)
		}

		wantOA, wantOK := OrthogonalAccuracy(ivs, f)
		gotOA, gotOK := fz.OrthogonalAccuracy(ivs, f)
		if wantOK != gotOK || wantOA != gotOA {
			t.Fatalf("trial %d: OrthogonalAccuracy(n=%d,f=%d) = %v,%v; Fuser = %v,%v",
				trial, n, f, wantOA, wantOK, gotOA, gotOK)
		}

		wantFTA, wantOK := OrthogonalAccuracyFTA(ivs, f)
		gotFTA, gotOK := fz.OrthogonalAccuracyFTA(ivs, f)
		if wantOK != gotOK || wantFTA != gotFTA {
			t.Fatalf("trial %d: OrthogonalAccuracyFTA(n=%d,f=%d) = %v,%v; Fuser = %v,%v",
				trial, n, f, wantFTA, wantOK, gotFTA, gotOK)
		}

		wantMM, wantOK := MarzulloMidpoint(ivs, f)
		gotMM, gotOK := fz.MarzulloMidpoint(ivs, f)
		if wantOK != gotOK || wantMM != gotMM {
			t.Fatalf("trial %d: MarzulloMidpoint(n=%d,f=%d) = %v,%v; Fuser = %v,%v",
				trial, n, f, wantMM, wantOK, gotMM, gotOK)
		}

		if 2*f < n {
			refs := refsOf(ivs)
			if want, got := FTMidpoint(refs, f), fz.FTMidpoint(ivs, f); want != got {
				t.Fatalf("trial %d: FTMidpoint(n=%d,f=%d) = %v; Fuser = %v", trial, n, f, want, got)
			}
			if want, got := FTAverage(refs, f), fz.FTAverage(ivs, f); want != got {
				t.Fatalf("trial %d: FTAverage(n=%d,f=%d) = %v; Fuser = %v", trial, n, f, want, got)
			}
		}
	}
}

func TestFuserPanicsLikePackage(t *testing.T) {
	var fz Fuser
	defer func() {
		if recover() == nil {
			t.Error("Fuser.FTMidpoint with 2f >= n should panic")
		}
	}()
	fz.FTMidpoint([]Interval{ivl(1, 1, 1)}, 1)
}

// TestFuserZeroAlloc pins the Fuser's raison d'être: after warm-up its
// convergence calls do not allocate.
func TestFuserZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ivs := randomIvs(rng, 8)
	var fz Fuser
	fz.OrthogonalAccuracy(ivs, 2) // warm the scratch buffers
	allocs := testing.AllocsPerRun(100, func() {
		if _, ok := fz.OrthogonalAccuracy(ivs, 2); !ok {
			t.Fatal("convergence failed")
		}
		fz.FTAverage(ivs, 2)
	})
	if allocs != 0 {
		t.Errorf("Fuser allocates %v per round, want 0", allocs)
	}
}
