// Package stats turns multi-seed campaign results into per-point
// statistical estimates. The paper's evaluation claims (≈1 µs
// worst-case precision/accuracy) are statements about distributions
// over runs, not single-run numbers, so every grid point is aggregated
// across its seeds into an Estimate: mean, sample stddev, order
// statistics, a Student-t confidence interval for the mean, and a
// bootstrap percentile interval that needs no normality assumption.
//
// Everything here is deterministic. Bootstrap resampling draws from a
// sim.RNG derived from the group's first cell seed and the point
// label, so a report generated from the same artifacts is
// byte-identical run after run — the property the golden report gate
// in CI relies on.
package stats

import (
	"math"
	"sort"

	"ntisim/internal/harness"
	"ntisim/internal/sim"
)

// Options tunes aggregation.
type Options struct {
	// Bootstrap is the resample count for bootstrap CIs (default 1000;
	// negative disables bootstrap entirely).
	Bootstrap int
	// ConvergedBelowS is the precision threshold (seconds) defining
	// convergence time on timeline-bearing results: the first timeline
	// sample at or below it. Default 5e-6 (5 µs, comfortably inside
	// the paper's pre-convergence transient, above its steady state).
	ConvergedBelowS float64
}

func (o Options) withDefaults() Options {
	if o.Bootstrap == 0 {
		o.Bootstrap = 1000
	}
	if o.ConvergedBelowS == 0 {
		o.ConvergedBelowS = 5e-6
	}
	return o
}

// Estimate summarizes one scalar metric observed once per seed.
//
// Degeneracy is graceful by construction: N = 0 is the zero Estimate;
// N = 1 has Mean = Median = Min = Max = the sample, Stddev 0 and both
// intervals collapsed to [Mean, Mean] (one observation carries no
// dispersion information — the collapsed interval says "no
// uncertainty estimate", not "no uncertainty").
type Estimate struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	// Stddev is the sample standard deviation (n−1 denominator; 0 when
	// N < 2).
	Stddev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Median float64 `json:"median"`
	Max    float64 `json:"max"`
	// Lo/Hi is the Student-t 95% confidence interval for the mean.
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
	// BootLo/BootHi is the bootstrap percentile 95% interval of the
	// resampled mean (equal to [Mean, Mean] when N < 2 or bootstrap is
	// disabled).
	BootLo float64 `json:"boot_lo"`
	BootHi float64 `json:"boot_hi"`
	// Values keeps the per-seed observations in seed order, for
	// scatter plots.
	Values []float64 `json:"values,omitempty"`
}

// Describe computes an Estimate from per-seed values. rng drives the
// bootstrap (resamples resamples; both may be zero/nil to skip it);
// pass an RNG derived from the cells' seed so results stay
// deterministic.
func Describe(vals []float64, resamples int, rng *sim.RNG) Estimate {
	e := Estimate{N: len(vals), Values: append([]float64(nil), vals...)}
	if e.N == 0 {
		return e
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	e.Min, e.Max = sorted[0], sorted[len(sorted)-1]
	e.Median = sorted[nearestRank(0.5, len(sorted))]

	var sum float64
	for _, v := range vals {
		sum += v
	}
	e.Mean = sum / float64(e.N)
	e.Lo, e.Hi = e.Mean, e.Mean
	e.BootLo, e.BootHi = e.Mean, e.Mean
	if e.N < 2 {
		return e
	}

	var ss float64
	for _, v := range vals {
		d := v - e.Mean
		ss += d * d
	}
	e.Stddev = math.Sqrt(ss / float64(e.N-1))
	half := TCrit95(float64(e.N-1)) * e.Stddev / math.Sqrt(float64(e.N))
	e.Lo, e.Hi = e.Mean-half, e.Mean+half

	if resamples > 0 && rng != nil {
		e.BootLo, e.BootHi = bootstrapCI(vals, resamples, rng)
	}
	return e
}

// bootstrapCI is the percentile bootstrap of the mean: resample n
// values with replacement, take the mean, repeat, and report the
// 2.5%/97.5% order statistics of the resampled means.
func bootstrapCI(vals []float64, resamples int, rng *sim.RNG) (lo, hi float64) {
	means := make([]float64, resamples)
	n := len(vals)
	for b := range means {
		var sum float64
		for i := 0; i < n; i++ {
			sum += vals[rng.Intn(n)]
		}
		means[b] = sum / float64(n)
	}
	sort.Float64s(means)
	return means[nearestRank(0.025, resamples)], means[nearestRank(0.975, resamples)]
}

// nearestRank maps quantile p to an index into a sorted slice of n
// values (the same convention as metrics.Series.Percentile).
func nearestRank(p float64, n int) int {
	i := int(p*float64(n-1) + 0.5)
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// tTable95 holds the two-sided 95% Student-t critical values for
// integer degrees of freedom 1..30.
var tTable95 = []float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCrit95 returns the two-sided 95% Student-t critical value for df
// degrees of freedom (fractional df — from Welch–Satterthwaite — is
// linearly interpolated in the table; beyond the table the 1.960+2.4/df
// asymptotic fit is used, accurate to <0.001 at df ≥ 30).
func TCrit95(df float64) float64 {
	if df <= 1 {
		return tTable95[0]
	}
	if df <= float64(len(tTable95)) {
		lo := int(df) // table index of floor(df) is int(df)-1
		frac := df - float64(lo)
		if lo >= len(tTable95) {
			return tTable95[len(tTable95)-1]
		}
		return tTable95[lo-1] + frac*(tTable95[lo]-tTable95[lo-1])
	}
	return 1.960 + 2.4/df
}

// Comparison is the outcome of a Welch two-sample t-test between two
// Estimates' underlying per-seed samples.
type Comparison struct {
	// DeltaMean is a.Mean − b.Mean.
	DeltaMean float64
	// T is the Welch t statistic; DF the Welch–Satterthwaite degrees
	// of freedom; Critical the 95% threshold |T| is judged against.
	T, DF, Critical float64
	// Distinguishable reports |T| > Critical: the means differ at the
	// 95% level. Always false when either side has N < 2 (no
	// dispersion estimate — a single seed cannot be tested).
	Distinguishable bool
}

// Compare runs Welch's t-test on two Estimates at the 95% level.
func Compare(a, b Estimate) Comparison {
	c := Comparison{DeltaMean: a.Mean - b.Mean}
	if a.N < 2 || b.N < 2 {
		return c
	}
	va := a.Stddev * a.Stddev / float64(a.N)
	vb := b.Stddev * b.Stddev / float64(b.N)
	se2 := va + vb
	if se2 == 0 {
		// Zero dispersion on both sides: any mean difference is exact.
		c.Distinguishable = c.DeltaMean != 0
		if c.Distinguishable {
			c.T = math.Inf(1)
			if c.DeltaMean < 0 {
				c.T = math.Inf(-1)
			}
		}
		c.DF = float64(a.N + b.N - 2)
		c.Critical = TCrit95(c.DF)
		return c
	}
	c.T = c.DeltaMean / math.Sqrt(se2)
	c.DF = se2 * se2 / (va*va/float64(a.N-1) + vb*vb/float64(b.N-1))
	c.Critical = TCrit95(c.DF)
	c.Distinguishable = math.Abs(c.T) > c.Critical
	return c
}

// PointStats aggregates one grid point across its seeds.
type PointStats struct {
	Label  string
	Params map[string]string
	// Seeds lists the seeds of the non-errored results that entered
	// the estimates; Errors counts cells that failed.
	Seeds  []uint64
	Errors int

	// Precision estimates the per-seed mean precision; PrecisionWorst
	// the per-seed worst (max) precision; Accuracy the per-seed worst
	// |C−t|; Width the per-seed mean accuracy-interval half-width. All
	// in seconds.
	Precision      Estimate
	PrecisionWorst Estimate
	Accuracy       Estimate
	Width          Estimate
	// Convergence estimates the per-seed convergence time (seconds
	// into the measurement window until precision first reaches
	// Options.ConvergedBelowS). N = 0 unless the campaign kept
	// timelines (Spec.Timeline) and the threshold was reached.
	Convergence Estimate

	// ServedP50/P99/P999 estimate the per-seed served-accuracy
	// percentiles (seconds of client-observed error), ServedMax the
	// per-seed worst served error, and ServedQPS the served requests
	// per sim-second. N = 0 unless the campaign enabled a client
	// population (cluster.Config.Serving).
	ServedP50  Estimate
	ServedP99  Estimate
	ServedP999 Estimate
	ServedMax  Estimate
	ServedQPS  Estimate
}

// HasServing reports whether the point carries served-load estimates.
func (ps *PointStats) HasServing() bool { return ps.ServedP99.N > 0 }

// Aggregate groups results by point (harness.GroupByPoint order, i.e.
// grid order) and estimates each metric across seeds. Errored cells
// are excluded from estimates and counted in Errors.
func Aggregate(results []harness.Result, opt Options) []PointStats {
	opt = opt.withDefaults()
	groups := harness.GroupByPoint(results)
	out := make([]PointStats, 0, len(groups))
	for _, g := range groups {
		ps := PointStats{Label: g.Label, Params: g.Params, Seeds: g.Seeds()}
		var prec, worst, acc, width, conv []float64
		var sp50, sp99, sp999, smax, sqps []float64
		var seed0 uint64
		for _, r := range g.Results {
			if r.Err != "" {
				ps.Errors++
				continue
			}
			if len(prec) == 0 {
				seed0 = r.Seed
			}
			prec = append(prec, r.Precision.Mean)
			worst = append(worst, r.Precision.Max)
			acc = append(acc, r.Accuracy.Max)
			width = append(width, r.Width.Mean)
			if t, ok := ConvergenceTime(r, opt.ConvergedBelowS); ok {
				conv = append(conv, t)
			}
			if sv := r.Serving; sv != nil {
				sp50 = append(sp50, sv.ErrP50S)
				sp99 = append(sp99, sv.ErrP99S)
				sp999 = append(sp999, sv.ErrP999S)
				smax = append(smax, sv.ErrMaxS)
				sqps = append(sqps, sv.QPS)
			}
		}
		// One RNG root per point, derived from the first cell seed and
		// the label, then one stream per metric: reports stay
		// deterministic and adding a metric never perturbs the others.
		root := sim.NewRNG(seed0).Derive("stats/bootstrap/" + g.Label)
		ps.Precision = Describe(prec, opt.Bootstrap, root.Derive("precision"))
		ps.PrecisionWorst = Describe(worst, opt.Bootstrap, root.Derive("precision-worst"))
		ps.Accuracy = Describe(acc, opt.Bootstrap, root.Derive("accuracy"))
		ps.Width = Describe(width, opt.Bootstrap, root.Derive("width"))
		ps.Convergence = Describe(conv, opt.Bootstrap, root.Derive("convergence"))
		ps.ServedP50 = Describe(sp50, opt.Bootstrap, root.Derive("served-p50"))
		ps.ServedP99 = Describe(sp99, opt.Bootstrap, root.Derive("served-p99"))
		ps.ServedP999 = Describe(sp999, opt.Bootstrap, root.Derive("served-p999"))
		ps.ServedMax = Describe(smax, opt.Bootstrap, root.Derive("served-max"))
		ps.ServedQPS = Describe(sqps, opt.Bootstrap, root.Derive("served-qps"))
		out = append(out, ps)
	}
	return out
}

// ConvergenceTime returns the first timeline sample time (seconds from
// window start) at which the cell's precision reached belowS, and
// whether that ever happened. Results without timelines report false.
func ConvergenceTime(r *harness.Result, belowS float64) (float64, bool) {
	for _, p := range r.Timeline {
		if p.PrecisionS <= belowS {
			return p.T, true
		}
	}
	return 0, false
}
