package stats

import (
	"math"
	"testing"

	"ntisim/internal/harness"
	"ntisim/internal/sim"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDescribeBasics(t *testing.T) {
	// Mean 3, sample stddev sqrt(2.5) for {1..5}.
	e := Describe([]float64{3, 1, 4, 5, 2}, 0, nil)
	if e.N != 5 || e.Mean != 3 || e.Min != 1 || e.Max != 5 || e.Median != 3 {
		t.Fatalf("estimate = %+v", e)
	}
	if !almost(e.Stddev, math.Sqrt(2.5), 1e-12) {
		t.Errorf("stddev = %g, want sqrt(2.5)", e.Stddev)
	}
	// t(4 df, 95%) = 2.776: half-width 2.776·s/√5.
	half := 2.776 * e.Stddev / math.Sqrt(5)
	if !almost(e.Lo, 3-half, 1e-9) || !almost(e.Hi, 3+half, 1e-9) {
		t.Errorf("CI = [%g, %g], want 3 ± %g", e.Lo, e.Hi, half)
	}
	// Bootstrap disabled: interval collapses to the mean.
	if e.BootLo != e.Mean || e.BootHi != e.Mean {
		t.Errorf("disabled bootstrap = [%g, %g]", e.BootLo, e.BootHi)
	}
}

// N = 1 must degenerate gracefully: the sample everywhere, zero
// dispersion, collapsed intervals — never NaN.
func TestDescribeSingleSample(t *testing.T) {
	e := Describe([]float64{7e-6}, 1000, sim.NewRNG(1))
	if e.N != 1 || e.Mean != 7e-6 || e.Median != 7e-6 || e.Min != 7e-6 || e.Max != 7e-6 {
		t.Fatalf("estimate = %+v", e)
	}
	if e.Stddev != 0 || e.Lo != 7e-6 || e.Hi != 7e-6 || e.BootLo != 7e-6 || e.BootHi != 7e-6 {
		t.Errorf("single sample must collapse all intervals: %+v", e)
	}
}

func TestDescribeEmpty(t *testing.T) {
	e := Describe(nil, 1000, sim.NewRNG(1))
	if e.N != 0 || e.Mean != 0 || e.Stddev != 0 || e.Lo != 0 || e.Hi != 0 || e.BootLo != 0 || e.BootHi != 0 {
		t.Errorf("empty estimate = %+v", e)
	}
}

// The bootstrap interval must be deterministic for a fixed RNG seed,
// contain the sample mean, and sit inside the sample range.
func TestBootstrapDeterministicAndSane(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	a := Describe(vals, 1000, sim.NewRNG(42))
	b := Describe(vals, 1000, sim.NewRNG(42))
	if a.BootLo != b.BootLo || a.BootHi != b.BootHi {
		t.Fatalf("bootstrap not deterministic: [%g,%g] vs [%g,%g]", a.BootLo, a.BootHi, b.BootLo, b.BootHi)
	}
	if a.BootLo > a.Mean || a.BootHi < a.Mean {
		t.Errorf("bootstrap interval [%g, %g] excludes the mean %g", a.BootLo, a.BootHi, a.Mean)
	}
	if a.BootLo < a.Min || a.BootHi > a.Max {
		t.Errorf("bootstrap interval [%g, %g] outside sample range", a.BootLo, a.BootHi)
	}
	c := Describe(vals, 1000, sim.NewRNG(43))
	if c.BootLo == a.BootLo && c.BootHi == a.BootHi {
		t.Error("different RNG seeds produced identical bootstrap intervals (suspicious)")
	}
}

func TestTCrit95(t *testing.T) {
	cases := []struct{ df, want, tol float64 }{
		{1, 12.706, 0}, {2, 4.303, 0}, {4, 2.776, 0}, {30, 2.042, 0},
		{0.5, 12.706, 0}, // clamped below 1
		{1.5, (12.706 + 4.303) / 2, 1e-9},
		{40, 2.021, 0.002}, {60, 2.000, 0.002}, {120, 1.980, 0.002}, {1e9, 1.960, 0.001},
	}
	for _, c := range cases {
		if got := TCrit95(c.df); !almost(got, c.want, c.tol) {
			t.Errorf("TCrit95(%g) = %g, want %g ± %g", c.df, got, c.want, c.tol)
		}
	}
	// Monotone decreasing over a df sweep.
	prev := math.Inf(1)
	for df := 1.0; df < 200; df += 0.25 {
		got := TCrit95(df)
		if got > prev+1e-12 {
			t.Fatalf("TCrit95 not monotone at df=%g: %g > %g", df, got, prev)
		}
		prev = got
	}
}

func TestCompareDistinguishesSeparatedSamples(t *testing.T) {
	a := Describe([]float64{1.0, 1.1, 0.9, 1.05, 0.95}, 0, nil)
	b := Describe([]float64{2.0, 2.1, 1.9, 2.05, 1.95}, 0, nil)
	c := Compare(a, b)
	if !c.Distinguishable {
		t.Fatalf("clearly separated samples not distinguishable: %+v", c)
	}
	if c.DeltaMean >= 0 {
		t.Errorf("delta = %g, want negative", c.DeltaMean)
	}
	if c.T >= 0 || math.Abs(c.T) <= c.Critical {
		t.Errorf("t = %g vs critical %g", c.T, c.Critical)
	}

	// Same distribution: indistinguishable.
	d := Compare(a, a)
	if d.Distinguishable || d.T != 0 {
		t.Errorf("self-comparison distinguishable: %+v", d)
	}
}

func TestCompareDegenerate(t *testing.T) {
	one := Describe([]float64{1}, 0, nil)
	many := Describe([]float64{2, 3, 4}, 0, nil)
	if c := Compare(one, many); c.Distinguishable {
		t.Error("single-seed side must never be distinguishable")
	}
	// Zero variance on both sides, different means: exact difference.
	za := Describe([]float64{1, 1, 1}, 0, nil)
	zb := Describe([]float64{2, 2, 2}, 0, nil)
	if c := Compare(za, zb); !c.Distinguishable || !math.IsInf(c.T, -1) {
		t.Errorf("zero-variance separated means: %+v", c)
	}
	if c := Compare(za, za); c.Distinguishable {
		t.Error("identical zero-variance samples distinguishable")
	}
}

// fakeResults builds a 2-point × 3-seed grid of synthetic results in
// grid (seed-major) order.
func fakeResults() []harness.Result {
	mk := func(cell int, label string, seed uint64, prec float64) harness.Result {
		r := harness.Result{Cell: cell, Label: label, Seed: seed,
			Params: map[string]string{"nodes": "2"}}
		r.Precision.Mean = prec
		r.Precision.Max = prec * 2
		r.Accuracy.Max = prec * 3
		r.Width.Mean = prec * 4
		return r
	}
	return []harness.Result{
		mk(0, "a", 7, 1e-6), mk(1, "b", 7, 10e-6),
		mk(2, "a", 8, 1.2e-6), mk(3, "b", 8, 11e-6),
		mk(4, "a", 9, 0.8e-6), mk(5, "b", 9, 9e-6),
	}
}

func TestAggregate(t *testing.T) {
	agg := Aggregate(fakeResults(), Options{})
	if len(agg) != 2 {
		t.Fatalf("points = %d, want 2", len(agg))
	}
	a, b := agg[0], agg[1]
	if a.Label != "a" || b.Label != "b" {
		t.Fatalf("group order = %q, %q", a.Label, b.Label)
	}
	if len(a.Seeds) != 3 || a.Seeds[0] != 7 || a.Seeds[2] != 9 {
		t.Errorf("seeds = %v", a.Seeds)
	}
	if !almost(a.Precision.Mean, 1e-6, 1e-12) || a.Precision.N != 3 {
		t.Errorf("precision estimate = %+v", a.Precision)
	}
	if !almost(a.PrecisionWorst.Mean, 2e-6, 1e-12) || !almost(a.Accuracy.Mean, 3e-6, 1e-12) {
		t.Errorf("derived metrics: worst %+v acc %+v", a.PrecisionWorst, a.Accuracy)
	}
	if a.Convergence.N != 0 {
		t.Errorf("no timelines, yet convergence N = %d", a.Convergence.N)
	}
	// The two points are an order of magnitude apart: distinguishable.
	if c := Compare(a.Precision, b.Precision); !c.Distinguishable {
		t.Errorf("a vs b not distinguishable: %+v", c)
	}

	// Aggregation must itself be deterministic (bootstrap included).
	again := Aggregate(fakeResults(), Options{})
	x, y := agg[0].Precision, again[0].Precision
	if x.Mean != y.Mean || x.Lo != y.Lo || x.Hi != y.Hi || x.BootLo != y.BootLo || x.BootHi != y.BootHi {
		t.Errorf("aggregate not deterministic: %+v vs %+v", x, y)
	}
}

func TestAggregateSkipsErroredCells(t *testing.T) {
	rs := fakeResults()
	rs[0].Err = "boom"
	agg := Aggregate(rs, Options{Bootstrap: -1})
	if agg[0].Errors != 1 || agg[0].Precision.N != 2 {
		t.Errorf("errored cell not excluded: %+v", agg[0])
	}
	if len(agg[0].Seeds) != 2 || agg[0].Seeds[0] != 8 {
		t.Errorf("seeds = %v", agg[0].Seeds)
	}
}

func TestConvergenceTime(t *testing.T) {
	r := harness.Result{Timeline: []harness.TimelinePoint{
		{T: 0, PrecisionS: 9e-6}, {T: 5, PrecisionS: 4e-6}, {T: 10, PrecisionS: 1e-6},
	}}
	if ct, ok := ConvergenceTime(&r, 5e-6); !ok || ct != 5 {
		t.Errorf("ConvergenceTime = %g, %v", ct, ok)
	}
	if _, ok := ConvergenceTime(&r, 1e-7); ok {
		t.Error("threshold never reached, yet ok")
	}
	if _, ok := ConvergenceTime(&harness.Result{}, 1); ok {
		t.Error("no timeline, yet ok")
	}

	// Timeline-bearing results feed the Convergence estimate.
	rs := fakeResults()
	for i := range rs {
		rs[i].Timeline = []harness.TimelinePoint{{T: 0, PrecisionS: 9e-6}, {T: float64(i + 1), PrecisionS: 1e-9}}
	}
	agg := Aggregate(rs, Options{ConvergedBelowS: 1e-6, Bootstrap: -1})
	if agg[0].Convergence.N != 3 {
		t.Fatalf("convergence N = %d, want 3", agg[0].Convergence.N)
	}
	// Point "a" sits at cells 0, 2, 4 → convergence times 1, 3, 5.
	if agg[0].Convergence.Mean != 3 || agg[0].Convergence.Min != 1 || agg[0].Convergence.Max != 5 {
		t.Errorf("convergence estimate = %+v", agg[0].Convergence)
	}
}
