package cluster

import (
	"testing"

	"ntisim/internal/metrics"
)

// shardedBase is the reference sharded topology of these tests:
// 2 segments × 4 nodes + F+1 = 2 gateways on the link.
func shardedBase(seed uint64) Config {
	cfg := Defaults(8, seed)
	cfg.Sync.F = 1
	cfg.Segments = 2
	return cfg
}

func TestShardedTopologyShape(t *testing.T) {
	cfg := shardedBase(31)
	cfg.Shards = 1
	c := New(cfg)
	if c.Group == nil {
		t.Fatal("sharded cluster has no Group")
	}
	if got := c.Group.Shards(); got != 2 {
		t.Fatalf("shards = %d, want 2", got)
	}
	if len(c.Media) != 2 {
		t.Fatalf("media = %d", len(c.Media))
	}
	if len(c.Members) != 8+2 {
		t.Fatalf("members = %d, want 10", len(c.Members))
	}
	gws := 0
	for _, m := range c.Members {
		if m.Segment == -1 {
			gws++
			if m.Node.Channels() != 2 {
				t.Errorf("gateway has %d channels", m.Node.Channels())
			}
			if m.Shard != 0 {
				t.Errorf("gateway homed on shard %d, want 0 (lower adjacent segment)", m.Shard)
			}
		} else {
			if m.Node.Channels() != 1 {
				t.Errorf("plain node has %d channels", m.Node.Channels())
			}
			if m.Shard != m.Segment {
				t.Errorf("node %d on shard %d, segment %d", m.Index, m.Shard, m.Segment)
			}
		}
	}
	if gws != 2 {
		t.Errorf("gateways = %d", gws)
	}
}

func TestShardedNodesMustDivide(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 7 nodes over 2 segments")
		}
	}()
	cfg := shardedBase(31)
	cfg.Nodes = 7
	New(cfg)
}

// runShardedTrajectory runs the reference topology and returns the
// per-sample cluster precision and per-node offsets — the full
// observable state trajectory, compared exactly across shard counts.
func runShardedTrajectory(seed uint64, shards int) (precision []float64, offsets [][]float64) {
	cfg := shardedBase(seed)
	cfg.Shards = shards
	c := New(cfg)
	c.Start(1)
	c.RunUntil(20)
	for x := 20.0; x <= 40; x += 2 {
		c.RunUntil(x)
		snap := c.Snapshot()
		precision = append(precision, snap.Precision)
		var offs []float64
		for _, m := range c.Members {
			o, _, _ := m.OffsetAndBounds()
			offs = append(offs, o)
		}
		offsets = append(offsets, offs)
	}
	return precision, offsets
}

// TestShardedWorkerCountByteIdentity is the tentpole gate at cluster
// level: the full state trajectory must be bit-identical whether the
// shards run sequentially (the single-kernel baseline) or on N worker
// goroutines.
func TestShardedWorkerCountByteIdentity(t *testing.T) {
	p1, o1 := runShardedTrajectory(77, 1)
	p2, o2 := runShardedTrajectory(77, 2)
	if len(p1) == 0 || len(p1) != len(p2) {
		t.Fatalf("sample counts differ: %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("sample %d: precision %v (1 worker) != %v (2 workers)", i, p1[i], p2[i])
		}
		for j := range o1[i] {
			if o1[i][j] != o2[i][j] {
				t.Fatalf("sample %d node %d: offset %v != %v", i, j, o1[i][j], o2[i][j])
			}
		}
	}
}

// TestShardedCouplesSegments mirrors TestWANOfLANsCouplesSegments on
// the sharded engine: both segments converge individually and the
// relayed gateway CSPs keep them coupled globally.
func TestShardedCouplesSegments(t *testing.T) {
	if testing.Short() {
		t.Skip("long segmented run")
	}
	cfg := shardedBase(22)
	cfg.Shards = 2
	c := New(cfg)
	b := c.MeasureDelay(0, 1, 12)
	for _, m := range c.Members {
		m.Sync.SetDelayBounds(b)
	}
	c.Start(c.Now() + 1)
	c.RunUntil(c.Now() + 40)
	var global metrics.Series
	start := c.Now()
	for x := start; x <= start+60; x += 2 {
		c.RunUntil(x)
		snap := c.Snapshot()
		global.Add(snap.Precision)
		// Interval containment must survive the relay rewrite: every
		// member's accuracy interval keeps true time inside it.
		for _, m := range c.Members {
			if _, lo, hi := m.OffsetAndBounds(); lo > 0 || hi < 0 {
				t.Fatalf("t=%v node %d: accuracy interval [%v, %v] lost true time",
					x, m.Index, lo, hi)
			}
		}
	}
	if global.Max() > 15e-6 {
		t.Errorf("cross-segment precision %v", global.Max())
	}
	if s0 := c.SegmentPrecision(0); s0 > 6e-6 {
		t.Errorf("segment 0 precision %v", s0)
	}
	if s1 := c.SegmentPrecision(1); s1 > 6e-6 {
		t.Errorf("segment 1 precision %v", s1)
	}
}

// TestShardedThreeSegmentsParallel runs a 3-segment chain on 3 workers
// under the race detector (make race runs this package with -race) and
// checks global convergence — the CI race gate for the sharded engine.
func TestShardedThreeSegmentsParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("long segmented run")
	}
	cfg := Defaults(9, 23)
	cfg.Sync.F = 1
	cfg.Segments = 3
	cfg.GatewaysPerLink = 2
	cfg.Shards = 3
	c := New(cfg)
	if len(c.Members) != 9+2*2 {
		t.Fatalf("members = %d", len(c.Members))
	}
	c.Start(1)
	c.RunUntil(60)
	var global metrics.Series
	for x := 60.0; x <= 100; x += 2 {
		c.RunUntil(x)
		global.Add(c.Snapshot().Precision)
	}
	if global.Max() > 25e-6 {
		t.Errorf("three-segment precision %v", global.Max())
	}
}
