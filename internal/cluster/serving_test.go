package cluster

import (
	"math"
	"strings"
	"testing"

	"ntisim/internal/service"
)

// servingConfig is a small sharded topology with a client population,
// big enough to exercise regional skew and gateway exclusion.
func servingConfig(seed uint64) Config {
	cfg := Defaults(4, seed)
	cfg.Segments = 2
	cfg.Sync.F = 0
	cfg.Serving = service.Config{
		Clients:      50000,
		Arrival:      "mmpp",
		RegionalSkew: 1.5,
	}
	return cfg
}

// runServing builds, syncs and serves for windowS, returning the report.
func runServing(t *testing.T, cfg Config, windowS float64) (service.Stats, *Cluster) {
	t.Helper()
	c := New(cfg)
	c.Start(c.Now() + 0.5)
	c.RunUntil(c.Now() + 3) // settle past the initial step transients
	begin := c.Now()
	c.StartServing(begin)
	c.RunUntil(begin + windowS)
	return c.ServingReport(c.Now() - begin), c
}

func TestServingShardCountInvariance(t *testing.T) {
	cfg1 := servingConfig(99)
	cfg1.Shards = 1
	st1, _ := runServing(t, cfg1, 5)

	cfg2 := servingConfig(99)
	cfg2.Shards = 2
	st2, _ := runServing(t, cfg2, 5)

	if st1.Queries == 0 {
		t.Fatal("no queries served")
	}
	if st1 != st2 {
		t.Errorf("serving stats differ across shard worker counts:\n 1: %+v\n 2: %+v", st1, st2)
	}
	if !(st1.ErrP50S <= st1.ErrP99S && st1.ErrP99S <= st1.ErrP999S && st1.ErrP999S <= st1.ErrMaxS) {
		t.Errorf("percentiles out of order: %+v", st1)
	}
	// Open-loop mmpp preserves the nominal mean rate: 50000 clients x
	// 0.1 qps = 5000 qps. Short-window burst variance is large; accept
	// a broad band around it.
	if st1.QPS < 2000 || st1.QPS > 12000 {
		t.Errorf("QPS = %.0f, want ~5000", st1.QPS)
	}
}

func TestServingGatewaysExcluded(t *testing.T) {
	cfg := servingConfig(7)
	c := New(cfg)
	if len(c.ServingGens) != cfg.Nodes {
		t.Fatalf("generators = %d, want one per regular node = %d (gateways excluded)",
			len(c.ServingGens), cfg.Nodes)
	}
	gateways := 0
	for _, m := range c.Members {
		if m.Segment < 0 {
			gateways++
		}
	}
	if gateways == 0 {
		t.Fatal("topology built no gateways; test is vacuous")
	}
	if st := c.ServingReport(1); st.Nodes != cfg.Nodes {
		t.Errorf("Stats.Nodes = %d, want %d", st.Nodes, cfg.Nodes)
	}
}

func TestServingRegionalSkew(t *testing.T) {
	cfg := servingConfig(11)
	cfg.Serving.Arrival = "poisson"
	cfg.Serving.RegionalSkew = 3
	_, c := runServing(t, cfg, 10)
	perSeg := map[int]uint64{}
	for i, g := range c.ServingGens {
		perSeg[c.Members[i].Segment] += g.Queries()
	}
	// Weight of segment 1 is 3x segment 0; the realized ratio should be
	// comfortably above 2 after 10 s at these rates.
	if perSeg[1] < 2*perSeg[0] {
		t.Errorf("segment query split = %v, want seg 1 >= 2x seg 0 under skew 3", perSeg)
	}
}

func TestServingUnshardedMeanRate(t *testing.T) {
	cfg := Defaults(2, 5)
	cfg.Serving = service.Config{Clients: 10000}
	st, _ := runServing(t, cfg, 10)
	// 10000 clients x 0.1 qps = 1000 qps homogeneous poisson; 10 s
	// window -> ~10000 queries with sub-percent shot noise.
	want := float64(st.Clients) * service.DefaultQPSPerClient * st.WindowS
	if math.Abs(float64(st.Queries)-want) > 0.05*want {
		t.Errorf("queries = %d, want %.0f +- 5%%", st.Queries, want)
	}
	if st.ErrMaxS <= 0 || st.ErrMaxS > 1e-3 {
		t.Errorf("served max error = %g s, want small positive", st.ErrMaxS)
	}
}

// MeasureDelay RTT probes are segment-local unicast; the guard must
// reject probe pairs homed on different shards. Three segments give a
// pair (first and last node) separated by two WAN hops.
func TestMeasureDelayCrossShardGuardThreeSegments(t *testing.T) {
	cfg := Defaults(6, 21)
	cfg.Segments = 3
	cfg.Sync.F = 0
	c := New(cfg)
	if a, b := c.Members[0], c.Members[5]; a.Shard == b.Shard {
		t.Fatalf("test expects members 0 and 5 on different shards, got %d and %d", a.Shard, b.Shard)
	}
	func() {
		defer func() {
			p := recover()
			if p == nil {
				t.Error("cross-shard MeasureDelay did not panic")
				return
			}
			if !strings.Contains(p.(string), "cross shards") {
				t.Errorf("panic = %v, want cross-shards guard message", p)
			}
		}()
		c.MeasureDelay(0, 5, 4)
	}()
	// Same-segment probes must still work after the refused call.
	if b := c.MeasureDelay(0, 1, 4); b.Samples == 0 {
		t.Errorf("same-shard MeasureDelay returned empty bounds: %+v", b)
	}
}
