package cluster

import (
	"testing"

	"ntisim/internal/metrics"
	"ntisim/internal/timefmt"
)

func TestWANOfLANsTopology(t *testing.T) {
	base := Defaults(11, 21)
	base.Sync.F = 1
	c := NewWANOfLANs(base, 2, 4)
	// 2 segments × 4 nodes + F+1 = 2 gateways.
	if len(c.Members) != 10 {
		t.Fatalf("members = %d", len(c.Members))
	}
	if len(c.Media) != 2 {
		t.Fatalf("media = %d", len(c.Media))
	}
	gws := 0
	for _, m := range c.Members {
		if m.Segment == -1 {
			gws++
			if m.Node.Channels() != 2 {
				t.Errorf("gateway has %d channels", m.Node.Channels())
			}
		} else if m.Node.Channels() != 1 {
			t.Errorf("plain node has %d channels", m.Node.Channels())
		}
	}
	if gws != 2 {
		t.Errorf("gateways = %d", gws)
	}
}

func TestWANOfLANsCouplesSegments(t *testing.T) {
	if testing.Short() {
		t.Skip("long segmented run")
	}
	base := Defaults(11, 22)
	base.Sync.F = 1
	c := NewWANOfLANs(base, 2, 4)
	b := c.MeasureDelay(0, 1, 12)
	for _, m := range c.Members {
		m.Sync.SetDelayBounds(b)
	}
	c.Start(c.Sim.Now() + 1)
	c.Sim.RunUntil(c.Sim.Now() + 40)
	var global metrics.Series
	start := c.Sim.Now()
	for x := start; x <= start+60; x += 2 {
		c.Sim.RunUntil(x)
		global.Add(c.Snapshot().Precision)
	}
	if global.Max() > 15e-6 {
		t.Errorf("cross-segment precision %v", global.Max())
	}
	// Both segments individually tighter than the global bound.
	if s0 := c.SegmentPrecision(0); s0 > 6e-6 {
		t.Errorf("segment 0 precision %v", s0)
	}
	if s1 := c.SegmentPrecision(1); s1 > 6e-6 {
		t.Errorf("segment 1 precision %v", s1)
	}
}

func TestWANOfLANsThreeSegments(t *testing.T) {
	if testing.Short() {
		t.Skip("long segmented run")
	}
	base := Defaults(11, 23)
	base.Sync.F = 1
	c := NewWANOfLANsGW(base, 3, 3, 2)
	if len(c.Media) != 3 {
		t.Fatalf("media = %d", len(c.Media))
	}
	if len(c.Members) != 3*3+2*2 {
		t.Fatalf("members = %d", len(c.Members))
	}
	c.Start(1)
	c.Sim.RunUntil(60)
	var global metrics.Series
	for x := 60.0; x <= 120; x += 2 {
		c.Sim.RunUntil(x)
		global.Add(c.Snapshot().Precision)
	}
	// Three segments, two hops end to end: still bounded.
	if global.Max() > 40e-6 {
		t.Errorf("three-segment precision %v", global.Max())
	}
}

func TestClusterLeapSecond(t *testing.T) {
	// Hardware leap-second support (paper §3.3) across a synchronized
	// cluster: every node arms its leap timer for the same UTC second;
	// afterwards the ensemble is still tight and the clocks stepped
	// together by -1 s relative to true time.
	c := New(Defaults(4, 24))
	c.Start(1)
	c.Sim.RunUntil(10)
	leapAt := timefmt.Stamp(timefmt.DurationFromSeconds(30))
	for _, m := range c.Members {
		m.U.LeapAt(leapAt, +1)
	}
	c.Sim.RunUntil(29)
	before := c.Snapshot()
	c.Sim.RunUntil(40)
	after := c.Snapshot()
	if after.Precision > 10e-6 {
		t.Errorf("precision after leap: %v", after.Precision)
	}
	// All clocks now read ~1 s behind true time (inserted second).
	for i, off := range after.Offsets {
		if off > -0.9 || off < -1.1 {
			t.Errorf("node %d offset after leap insert: %v", i, off)
		}
	}
	_ = before
}

func TestSegmentPrecisionEmpty(t *testing.T) {
	c := New(Defaults(2, 25))
	if p := c.SegmentPrecision(7); p != 0 {
		t.Errorf("empty segment precision %v", p)
	}
}
