package cluster

import (
	"testing"

	"ntisim/internal/adversary"
	"ntisim/internal/trace"
)

// TestAdversaryLieTraceWiring runs a traced adversarial cluster and
// checks the lie bookkeeping end to end: every delivered lie appears
// both in the layer's counters and as a KindLie trace record naming a
// cast traitor as the lying source and an honest node as the receiver.
func TestAdversaryLieTraceWiring(t *testing.T) {
	cfg := Defaults(4, 7)
	cfg.Adversary = adversary.Spec{TraitorFrac: 0.3, Attack: adversary.AttackTwoFaced}
	cfg.Tracer = trace.New(trace.Options{})
	c := New(cfg)
	c.Start(0.5)
	c.RunUntil(10)

	if got := c.TraitorCount(); got != 1 {
		t.Fatalf("TraitorCount = %d, want 1 (0.3 of 4)", got)
	}
	lies := 0
	for _, r := range c.Trace().Records() {
		if r.Kind != trace.KindLie {
			continue
		}
		lies++
		if !c.Traitor(int(r.B)) {
			t.Fatalf("lie record names honest node %d as the liar", r.B)
		}
		if c.Traitor(int(r.Node)) {
			t.Fatalf("lie record delivered to traitor %d (traitors lie, they are not lied to here)", r.Node)
		}
		if r.V == 0 {
			t.Fatal("lie record carries a zero stamp shift")
		}
	}
	if lies == 0 {
		t.Fatal("traced adversarial run produced no lie records")
	}
	if uint64(lies) != c.AdversaryLies() {
		t.Fatalf("trace has %d lies but the layer counted %d", lies, c.AdversaryLies())
	}
}
