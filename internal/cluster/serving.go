// Serving wiring: attaching the internal/service client population to
// a built cluster. Every regular node (Segment >= 0; gateways carry
// WAN traffic, not client-facing service) gets one aggregate arrival
// generator homed on the node's own shard simulator, so a sharded run
// serves its population fully in parallel with zero cross-shard
// coordination — the generators only read their own node's UTCSU.
package cluster

import (
	"fmt"
	"math"

	"ntisim/internal/service"
	"ntisim/internal/sim"
)

// attachServing builds the per-node client-load generators described by
// cfg.Serving. Segment weights follow RegionalSkew (weight of segment s
// ∝ skew^s, normalized), split evenly over the segment's serving
// nodes. Generator RNG streams derive from (Seed, node index) only —
// never from a shard's RNG universe — so arrival counts are identical
// at any shard or worker count.
func (c *Cluster) attachServing() {
	sc := c.cfg.Serving
	if sc.Clients <= 0 {
		return
	}
	segs := c.cfg.Segments
	if segs < 1 {
		segs = 1
	}
	skew := sc.RegionalSkew
	if skew <= 0 {
		skew = 1
	}
	perSeg := make([]int, segs)
	for _, m := range c.Members {
		if m.Segment >= 0 {
			perSeg[m.Segment]++
		}
	}
	weights := make([]float64, segs)
	var wsum float64
	for s := range weights {
		if perSeg[s] > 0 {
			weights[s] = math.Pow(skew, float64(s))
		}
		wsum += weights[s]
	}
	qpc := sc.QPSPerClient
	if qpc == 0 {
		qpc = service.DefaultQPSPerClient
	}
	totalQPS := float64(sc.Clients) * qpc
	for _, m := range c.Members {
		if m.Segment < 0 {
			continue
		}
		qps := totalQPS * weights[m.Segment] / wsum / float64(perSeg[m.Segment])
		s := c.Sim
		tr := c.cfg.Tracer
		if c.Group != nil {
			s = c.Group.Shard(m.Shard)
			tr = c.tracers[m.Shard]
		}
		mem := m
		seed := sim.DeriveSeed(c.cfg.Seed, fmt.Sprintf("service/node/%d", m.Index))
		g := service.New(s, sc, m.Index, seed, qps, func() float64 {
			off, _, _ := mem.OffsetAndBounds()
			return math.Abs(off)
		}, tr)
		if c.cfg.Telemetry != nil {
			reg := c.cfg.Telemetry
			if c.telems != nil {
				reg = c.telems[m.Shard]
			}
			g.SetTelemetry(reg)
		}
		c.ServingGens = append(c.ServingGens, g)
	}
}

// StartServing launches every client-load generator at the given
// simulated time (>= the current time of every shard). It is a no-op
// when the config carries no client population.
func (c *Cluster) StartServing(at float64) {
	for _, g := range c.ServingGens {
		g.Start(at)
	}
}

// ServingReport merges the per-node generators into population-level
// served-accuracy statistics over a window of windowS sim-seconds.
func (c *Cluster) ServingReport(windowS float64) service.Stats {
	return service.Collect(c.ServingGens, c.cfg.Serving.Clients, windowS)
}
