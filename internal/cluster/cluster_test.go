package cluster

import (
	"math"
	"testing"

	"ntisim/internal/gps"
	"ntisim/internal/metrics"
	"ntisim/internal/oscillator"
	"ntisim/internal/timefmt"
)

func TestFourNodeConvergence(t *testing.T) {
	cfg := Defaults(4, 1)
	c := New(cfg)
	c.Start(1)
	// Warm-up: initial steps + a few rounds.
	c.Sim.RunUntil(15)
	var prec metrics.Series
	for _, cs := range c.RunSampled(15, 60, 1) {
		prec.Add(cs.Precision)
	}
	if prec.N() == 0 {
		t.Fatal("no samples")
	}
	worst := prec.Max()
	if worst > 5e-6 {
		t.Errorf("worst precision %v, want µs-range", worst)
	}
	// Every node ran rounds.
	for _, m := range c.Members {
		st := m.Sync.Stats()
		if st.Rounds < 40 {
			t.Errorf("node %d only %d rounds", m.Index, st.Rounds)
		}
		if st.CSPsUsed == 0 {
			t.Errorf("node %d used no CSPs", m.Index)
		}
	}
}

func TestPrecisionRequirementHolds(t *testing.T) {
	// Requirement (P): |Cp - Cq| bounded for all correct nodes, at all
	// times after convergence, not just at sampling instants near the
	// resynchronization.
	c := New(Defaults(4, 2))
	c.Start(1)
	c.Sim.RunUntil(20)
	for _, cs := range c.RunSampled(20, 50, 0.37) { // off-grid sampling
		if cs.Precision > 10e-6 {
			t.Fatalf("precision %v at t=%v", cs.Precision, cs.TrueTime)
		}
	}
}

func TestAccuracyIntervalContainsTruth(t *testing.T) {
	// Requirement (A): every node's [C-α⁻, C+α⁺] contains real time.
	// This is the core soundness property of interval-based clock sync.
	c := New(Defaults(4, 3))
	c.Start(1)
	c.Sim.RunUntil(12)
	bad := 0
	samples := c.RunSampled(12, 60, 0.5)
	for _, cs := range samples {
		if !cs.Contained {
			bad++
		}
	}
	if bad > 0 {
		t.Errorf("containment violated in %d/%d samples", bad, len(samples))
	}
}

func TestSixteenNodePrototype(t *testing.T) {
	if testing.Short() {
		t.Skip("16-node run in -short mode")
	}
	c := New(Defaults(16, 4))
	c.Start(1)
	c.Sim.RunUntil(20)
	var prec metrics.Series
	for _, cs := range c.RunSampled(20, 60, 1) {
		prec.Add(cs.Precision)
	}
	if prec.Max() > 10e-6 {
		t.Errorf("16-node worst precision %v", prec.Max())
	}
}

func TestDelayMeasurement(t *testing.T) {
	c := New(Defaults(2, 5))
	b := c.MeasureDelay(0, 1, 12)
	if b.Samples < 12 {
		t.Fatalf("only %d RTT samples", b.Samples)
	}
	// True one-way hardware-to-hardware delay at 10 Mb/s with 64-byte
	// frames is ~50-80 µs; bounds must bracket a plausible range.
	if b.Min.Seconds() < 1e-6 || b.Max.Seconds() > 1e-3 || b.Min > b.Max {
		t.Errorf("delay bounds [%v, %v] implausible", b.Min, b.Max)
	}
}

func TestMeasuredDelayImprovesSync(t *testing.T) {
	run := func(measure bool) float64 {
		cfg := Defaults(4, 6)
		c := New(cfg)
		if measure {
			b := c.MeasureDelay(0, 1, 12)
			for _, m := range c.Members {
				m.Sync.SetDelayBounds(b)
			}
		}
		c.Start(c.Sim.Now() + 1)
		begin := c.Sim.Now() + 15
		var prec metrics.Series
		for _, cs := range c.RunSampled(begin, begin+40, 1) {
			prec.Add(cs.Precision)
		}
		return prec.Max()
	}
	with := run(true)
	without := run(false)
	// Measured bounds are tighter than the default a priori 0..500 µs,
	// which shrinks delay-compensation enlargement and thus precision.
	if with > without {
		t.Errorf("measured bounds made sync worse: %v vs %v", with, without)
	}
}

func TestBackgroundLoadTolerated(t *testing.T) {
	cfg := Defaults(4, 7)
	cfg.BackgroundLoad = 0.4
	c := New(cfg)
	c.Start(1)
	c.Sim.RunUntil(20)
	var prec metrics.Series
	for _, cs := range c.RunSampled(20, 60, 1) {
		prec.Add(cs.Precision)
	}
	// Hardware timestamping is after medium access: load may widen the
	// delay spread a little but precision stays in the µs range.
	if prec.Max() > 20e-6 {
		t.Errorf("precision under load %v", prec.Max())
	}
}

func TestGPSNodeSteersToUTC(t *testing.T) {
	cfg := Defaults(4, 8)
	cfg.GPS = map[int]gps.Config{0: gps.DefaultReceiver()}
	c := New(cfg)
	c.Start(1)
	c.Sim.RunUntil(30)
	var acc metrics.Series
	for _, cs := range c.RunSampled(30, 90, 1) {
		acc.Add(cs.MaxAbsOffset)
	}
	// External sync: all nodes' absolute offset from (simulated) UTC
	// must be bounded — the GPS node pulls the whole ensemble.
	if acc.Max() > 50e-6 {
		t.Errorf("worst |C-t| = %v with GPS present", acc.Max())
	}
	st := c.Members[0].Sync.Stats()
	if st.ExternalAccepted == 0 {
		t.Error("GPS intervals never accepted")
	}
}

func TestFaultyGPSRejectedByValidation(t *testing.T) {
	cfg := Defaults(4, 9)
	rx := gps.DefaultReceiver()
	// A 50 ms offset fault from t=40: wildly outside any honest interval.
	rx.Faults = []gps.Fault{{Kind: gps.FaultOffset, Start: 40, Magnitude: 50e-3}}
	cfg.GPS = map[int]gps.Config{0: rx}
	c := New(cfg)
	c.Start(1)
	c.Sim.RunUntil(100)
	st := c.Members[0].Sync.Stats()
	if st.ExternalRejected == 0 {
		t.Error("faulty GPS never rejected by clock validation")
	}
	// Despite the faulty receiver, internal precision must survive.
	cs := c.Snapshot()
	if cs.Precision > 20e-6 {
		t.Errorf("faulty GPS wrecked precision: %v", cs.Precision)
	}
}

func TestRateSyncReducesDriftBound(t *testing.T) {
	if testing.Short() {
		t.Skip("long run in -short mode")
	}
	run := func(rateSync bool) (precision float64, meanAlpha float64) {
		cfg := Defaults(6, 10)
		cfg.Sync.RateSync = rateSync
		cfg.Sync.RhoPPB = 3000
		c := New(cfg)
		c.Start(1)
		c.Sim.RunUntil(60) // let rate measurements settle
		var prec, alpha metrics.Series
		for _, cs := range c.RunSampled(60, 160, 2) {
			prec.Add(cs.Precision)
		}
		for _, m := range c.Members {
			am, ap := m.U.Alpha()
			alpha.Add(am.Duration().Seconds() + ap.Duration().Seconds())
		}
		return prec.Max(), alpha.Mean()
	}
	pOn, aOn := run(true)
	pOff, aOff := run(false)
	t.Logf("rate sync on: prec=%v alpha=%v; off: prec=%v alpha=%v", pOn, aOn, pOff, aOff)
	if aOn >= aOff {
		t.Errorf("rate sync did not shrink accuracy: %v vs %v", aOn, aOff)
	}
	if pOn > pOff*2 {
		t.Errorf("rate sync degraded precision: %v vs %v", pOn, pOff)
	}
}

func TestNodeCrashTolerated(t *testing.T) {
	cfg := Defaults(5, 11)
	cfg.Sync.F = 1
	c := New(cfg)
	c.Start(1)
	c.Sim.RunUntil(20)
	// Crash node 4: stop its synchronizer (it goes silent).
	c.Members[4].Sync.Stop()
	c.Sim.RunUntil(25)
	var prec metrics.Series
	for t := 25.0; t <= 60; t += 1 {
		c.Sim.RunUntil(t)
		cs := c.Snapshot()
		// Only the surviving nodes matter for precision.
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, off := range cs.Offsets {
			if i == 4 {
				continue
			}
			lo = math.Min(lo, off)
			hi = math.Max(hi, off)
		}
		prec.Add(hi - lo)
	}
	if prec.Max() > 10e-6 {
		t.Errorf("crash of one node broke sync: %v", prec.Max())
	}
}

func TestDeterministicCluster(t *testing.T) {
	run := func() float64 {
		c := New(Defaults(4, 77))
		c.Start(1)
		c.Sim.RunUntil(30)
		return c.Snapshot().Precision
	}
	if run() != run() {
		t.Error("cluster runs are not reproducible")
	}
}

func TestNodeRejoinAfterRestart(t *testing.T) {
	// A node stops (crash), stays silent, then restarts its synchronizer:
	// it must step back into the ensemble (initial correction via StepTo
	// if drifted beyond the threshold, else amortization) and re-converge.
	cfg := Defaults(5, 31)
	cfg.Sync.F = 1
	c := New(cfg)
	c.Start(1)
	c.Sim.RunUntil(20)
	victim := c.Members[4]
	victim.Sync.Stop()
	// While down, wreck its clock so rejoin is non-trivial.
	victim.U.StepTo(victim.U.Now().Add(timefmt.DurationFromSeconds(0.05)))
	c.Sim.RunUntil(40)
	victim.Sync.Start()
	c.Sim.RunUntil(60)
	cs := c.Snapshot()
	if cs.Precision > 10e-6 {
		t.Errorf("precision after rejoin: %v", cs.Precision)
	}
	st := victim.Sync.Stats()
	if st.Rounds == 0 {
		t.Error("victim never resumed rounds")
	}
}

func TestOCXOClusterTighter(t *testing.T) {
	if testing.Short() {
		t.Skip("two long runs")
	}
	run := func(grade func(int) oscillator.Config) float64 {
		cfg := Defaults(4, 32)
		cfg.OscillatorFor = grade
		c := New(cfg)
		b := c.MeasureDelay(0, 1, 12)
		for _, m := range c.Members {
			m.Sync.SetDelayBounds(b)
		}
		c.Start(c.Sim.Now() + 1)
		c.Sim.RunUntil(c.Sim.Now() + 20)
		var width metrics.Series
		start := c.Sim.Now()
		for x := start; x <= start+60; x += 2 {
			c.Sim.RunUntil(x)
			for _, m := range c.Members {
				am, ap := m.U.Alpha()
				width.Add(am.Duration().Seconds() + ap.Duration().Seconds())
			}
		}
		return width.Mean()
	}
	hz := 10e6
	tcxo := run(func(int) oscillator.Config { return oscillator.TCXO(hz) })
	ocxo := run(func(int) oscillator.Config { return oscillator.OCXO(hz) })
	// Same a priori rho in both runs, so mean width should be comparable;
	// what OCXO buys without rate sync is stability, not width. Just
	// sanity-check both stayed bounded.
	if tcxo > 2e-3 || ocxo > 2e-3 {
		t.Errorf("interval widths diverged: tcxo=%v ocxo=%v", tcxo, ocxo)
	}
}

func TestNetworkPartitionSurvived(t *testing.T) {
	// A 15 s total network outage: intervals must keep containing real
	// time (the ACU's deterioration covers the silence — that is what
	// the drift bound is FOR), and the ensemble re-converges after the
	// cable is plugged back in.
	c := New(Defaults(4, 33))
	c.Start(1)
	c.Sim.RunUntil(20)
	c.Med.SetPartitioned(true)
	violations := 0
	for x := 21.0; x <= 35; x += 1 {
		c.Sim.RunUntil(x)
		if !c.Snapshot().Contained {
			violations++
		}
	}
	c.Med.SetPartitioned(false)
	c.Sim.RunUntil(50)
	if violations > 0 {
		t.Errorf("containment broke during partition: %d samples", violations)
	}
	cs := c.Snapshot()
	if cs.Precision > 10e-6 {
		t.Errorf("no re-convergence after heal: %v", cs.Precision)
	}
	if !cs.Contained {
		t.Error("containment broken after heal")
	}
}

func TestPPSAlignmentAcrossCluster(t *testing.T) {
	// The paper's application story: once synchronized, the 1PPS output
	// pins of all nodes fire within the ensemble precision.
	c := New(Defaults(4, 34))
	c.Start(1)
	c.Sim.RunUntil(20)
	pulses := map[int64][]float64{} // second label -> true times
	for _, m := range c.Members {
		m.U.StartPPS(0, func(sec int64) {
			pulses[sec] = append(pulses[sec], c.Sim.Now())
		})
	}
	c.Sim.RunUntil(40)
	checked := 0
	for sec, ts := range pulses {
		if len(ts) != len(c.Members) {
			continue // edges of the window
		}
		lo, hi := ts[0], ts[0]
		for _, v := range ts[1:] {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if hi-lo > 10e-6 {
			t.Errorf("second %d: PPS spread %v", sec, hi-lo)
		}
		checked++
	}
	if checked < 15 {
		t.Fatalf("only %d full PPS rounds", checked)
	}
}

// TestConfigClone: mutating a clone's GPS setup (the map and the Faults
// slices inside it) must not leak into the original — the property the
// harness' per-cell grid mutation depends on.
func TestConfigClone(t *testing.T) {
	base := Defaults(8, 1)
	base.GPS = map[int]gps.Config{
		0: gps.DefaultReceiver(),
		1: {AccuracyS: 1e-6, Faults: []gps.Fault{{Kind: gps.FaultOutage, Start: 10}}},
	}

	c := base.Clone()
	c.Nodes = 4
	c.GPS[2] = gps.DefaultReceiver()
	c.GPS[1] = func() gps.Config {
		rc := c.GPS[1]
		rc.Faults[0].Kind = gps.FaultOffset
		rc.Faults = append(rc.Faults, gps.Fault{Kind: gps.FaultFlapping, Start: 99})
		return rc
	}()

	if base.Nodes != 8 {
		t.Errorf("base.Nodes mutated: %d", base.Nodes)
	}
	if len(base.GPS) != 2 {
		t.Errorf("base GPS map mutated: %v", base.GPS)
	}
	if got := base.GPS[1].Faults; len(got) != 1 || got[0].Kind != gps.FaultOutage {
		t.Errorf("base GPS faults mutated: %v", got)
	}

	// A nil GPS map stays nil and the clone is still independent.
	var plain Config = Defaults(2, 1)
	c2 := plain.Clone()
	if c2.GPS != nil {
		t.Errorf("clone invented a GPS map")
	}
	c2.Sync.F = 99
	if plain.Sync.F == 99 {
		t.Errorf("Sync aliased between clone and original")
	}
}
