package cluster

import (
	"runtime"
	"testing"

	"ntisim/internal/telemetry"
)

// measureSteadyMallocs runs an 8-node cluster to steady state and
// counts heap allocations over a 30 sim-second window.
func measureSteadyMallocs(reg *telemetry.Registry) uint64 {
	cfg := Defaults(8, 1)
	cfg.Telemetry = reg
	c := New(cfg)
	c.Start(1)
	c.Sim.RunUntil(20) // warm-up: registration, scratch growth, pool fill
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	c.Sim.RunUntil(50)
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}

// TestTelemetrySteadyStateAllocParity pins the cost of the telemetry
// layer at the kernel level: with no registry attached the instrumented
// hot paths are nil-handle branches and must add zero allocations; with
// a registry attached, counters/gauges/histograms update in place, so
// the steady-state window must stay within noise of the disabled run.
// (The per-op zero-alloc pins live in internal/telemetry; this test is
// the whole-cluster version.)
func TestTelemetrySteadyStateAllocParity(t *testing.T) {
	disabled := measureSteadyMallocs(nil)
	enabled := measureSteadyMallocs(telemetry.New())
	t.Logf("steady-state mallocs over 30 sim-s: disabled=%d enabled=%d", disabled, enabled)
	// The window covers ~240 node-rounds and thousands of frames; 100
	// mallocs of slack absorbs runtime noise while still catching any
	// per-event or per-round telemetry garbage.
	const slack = 100
	if enabled > disabled+slack {
		t.Errorf("telemetry-enabled run allocated %d vs %d disabled (> %d slack): hot path regressed",
			enabled, disabled, slack)
	}
}

// TestTelemetrySnapshotDisabled: a cluster without a registry reports
// no snapshot rather than a zero-valued one.
func TestTelemetrySnapshotDisabled(t *testing.T) {
	c := New(Defaults(2, 1))
	c.Start(1)
	c.Sim.RunUntil(5)
	if _, ok := c.TelemetrySnapshot(); ok {
		t.Fatal("TelemetrySnapshot reported ok without a registry")
	}
}

// TestTelemetrySnapshotMergesShards: a sharded cluster's snapshot sums
// per-shard counters by name and keeps gauges shard-tagged.
func TestTelemetrySnapshotMergesShards(t *testing.T) {
	cfg := Defaults(8, 1)
	cfg.Segments = 2
	cfg.Sync.F = 1
	cfg.Shards = 1
	cfg.Telemetry = telemetry.New()
	c := New(cfg)
	c.Start(1)
	c.RunUntil(10)
	s, ok := c.TelemetrySnapshot()
	if !ok {
		t.Fatal("no snapshot from telemetry-enabled cluster")
	}
	if s.Counters["sim.events_fired"] == 0 {
		t.Error("merged fired-event counter is zero")
	}
	if s.Counters["net.frames_sent"] == 0 {
		t.Error("merged frames-sent counter is zero")
	}
	for _, key := range []string{
		telemetry.MetricShardEvents + "@0",
		telemetry.MetricShardEvents + "@1",
		telemetry.MetricQueueDepth + "@0",
		telemetry.MetricQueueDepth + "@1",
	} {
		if _, ok := s.Gauges[key]; !ok {
			t.Errorf("snapshot missing shard gauge %q", key)
		}
	}
	if s.Counters["group.windows"] == 0 {
		t.Error("driver window counter is zero")
	}
}
