package cluster

import (
	"fmt"

	"ntisim/internal/clocksync"
	"ntisim/internal/kernel"
	"ntisim/internal/network"
	"ntisim/internal/oscillator"
	"ntisim/internal/sim"
	"ntisim/internal/utcsu"
)

// NewWANOfLANs builds the generalized topology of paper footnote 2:
// several LAN segments chained by gateway nodes, where "all gateway
// nodes are also equipped with the NTI" — here literally: a gateway is
// one node whose NTI serves two COMCOs on two segments through two SSU
// pairs, so its CSPs are hardware-stamped on both LANs and its single
// interval clock couples the segments' ensembles.
//
// The topology is a chain: segment 0 — gateways — segment 1 — … with
// gatewaysPerLink parallel gateways on every link. Redundant gateways
// are not only a fault-tolerance requirement: a convergence function
// trimming f extremes ignores a single bridge's reference entirely, so
// coupling segments under f-fault-tolerance needs at least f+1 gateways
// per link. Members are ordered segment by segment, gateways last;
// Member.Segment is -1 for gateways.
func NewWANOfLANs(base Config, segments, nodesPerSegment int) *Cluster {
	return NewWANOfLANsGW(base, segments, nodesPerSegment, base.Sync.F+1)
}

// NewWANOfLANsGW is NewWANOfLANs with an explicit gateway count per
// link.
func NewWANOfLANsGW(base Config, segments, nodesPerSegment, gatewaysPerLink int) *Cluster {
	if segments < 2 || nodesPerSegment < 1 || gatewaysPerLink < 1 {
		panic("cluster: WANs-of-LANs needs ≥2 segments, ≥1 node, ≥1 gateway")
	}
	s := sim.New(base.Seed)
	if base.OscHz == 0 {
		base.OscHz = 10e6
	}
	media := make([]*network.Medium, segments)
	for i := range media {
		media[i] = network.NewMedium(s, base.Medium)
		if base.Tracer != nil {
			media[i].SetTracer(base.Tracer)
		}
	}
	if base.Tracer != nil {
		s.SetTracer(base.Tracer)
	}
	c := &Cluster{Sim: s, Med: media[0], Media: media, cfg: base}

	id := uint16(0)
	mkNode := func(med *network.Medium, segment int) *Member {
		oc := oscillator.TCXO(base.OscHz)
		if base.OscillatorFor != nil {
			oc = base.OscillatorFor(int(id))
		}
		osc := oscillator.New(s, oc, fmt.Sprintf("wol%d", id))
		u := utcsu.New(s, utcsu.Config{Osc: osc})
		node := kernel.NewNode(s, id, u, med, base.Kernel, base.COMCO)
		m := &Member{Index: int(id), Segment: segment, Osc: osc, U: u, Node: node}
		m.Sync = clocksync.New(node, clocksync.UTCSUClock{UTCSU: u}, base.Sync)
		if base.Tracer != nil {
			node.SetTracer(base.Tracer)
			m.Sync.SetTracer(base.Tracer)
		}
		id++
		c.Members = append(c.Members, m)
		return m
	}

	for seg := 0; seg < segments; seg++ {
		for i := 0; i < nodesPerSegment; i++ {
			mkNode(media[seg], seg)
		}
	}
	for seg := 0; seg+1 < segments; seg++ {
		for g := 0; g < gatewaysPerLink; g++ {
			gw := mkNode(media[seg], -1)
			gw.Node.AttachSegment(media[seg+1])
		}
	}
	return c
}

// SegmentPrecision computes max|Cp−Cq| over the members of one segment
// (gateways excluded), from a fresh snapshot.
func (c *Cluster) SegmentPrecision(segment int) float64 {
	var lo, hi float64
	first := true
	for _, m := range c.Members {
		if m.Segment != segment {
			continue
		}
		off, _, _ := m.OffsetAndBounds()
		if first {
			lo, hi = off, off
			first = false
			continue
		}
		if off < lo {
			lo = off
		}
		if off > hi {
			hi = off
		}
	}
	if first {
		return 0
	}
	return hi - lo
}
