// Package cluster assembles complete multi-node systems — the paper's
// Fig. 2 architecture replicated N times on a shared medium — and
// provides the measurement scaffolding used by the experiments: the
// two-node ε setup of §4 and the 16-node prototype the paper announces.
package cluster

import (
	"fmt"

	"ntisim/internal/adversary"
	"ntisim/internal/clocksync"
	"ntisim/internal/comco"
	"ntisim/internal/cpu"
	"ntisim/internal/gps"
	"ntisim/internal/kernel"
	"ntisim/internal/metrics"
	"ntisim/internal/network"
	"ntisim/internal/oscillator"
	"ntisim/internal/service"
	"ntisim/internal/sim"
	"ntisim/internal/telemetry"
	"ntisim/internal/timefmt"
	"ntisim/internal/trace"
	"ntisim/internal/utcsu"
)

// Config assembles a cluster.
//
// A Config is mostly a value type, but GPS (a map) and the Faults
// slices inside its receiver configs alias their originals on plain
// struct copy. Parameter sweeps that mutate per-cell configs must go
// through Clone, which deep-copies those; all other fields (including
// the nested Medium/Kernel/COMCO/Sync structs) are safe to mutate on a
// struct copy. The two function fields, OscillatorFor and ClockFactory,
// remain shared by Clone — they must be pure (no captured mutable
// state) to keep cloned configs independent.
type Config struct {
	Nodes int
	Seed  uint64
	// OscillatorFor returns the oscillator config of node i; default
	// TCXO at OscHz.
	OscillatorFor func(i int) oscillator.Config
	// OscHz is the pacing frequency when OscillatorFor is nil (default
	// 10 MHz; the paper's UTCSU accepts 1..20 MHz).
	OscHz  float64
	Medium network.MediumConfig
	Kernel kernel.Config
	COMCO  comco.Config
	Sync   clocksync.Params
	// ClockFactory builds the clock device the synchronizer steers;
	// default wraps the node's UTCSU directly (clocksync.UTCSUClock).
	// Experiment E8 substitutes baseline.CounterClock here.
	ClockFactory func(u *utcsu.UTCSU) clocksync.Clock
	// GPS maps node index → receiver config for GPS-equipped nodes.
	GPS map[int]gps.Config
	// Adversary is the Byzantine attack specification (traitor nodes,
	// wide-area GNSS schedules, multi-source reference counts); the
	// zero value disables it entirely. Per-node roles derive from
	// (Seed, node id), so shard decomposition never perturbs who lies.
	Adversary adversary.Spec
	// BackgroundLoad injects competing KI/NI-style traffic at this
	// utilization (0..0.9).
	BackgroundLoad float64
	// Segments, when >= 2, makes New build the segment-sharded
	// WANs-of-LANs topology (paper footnote 2) instead of a single
	// LAN: Nodes is then the total regular-node count, split evenly
	// across the segments (it must divide), with each segment's
	// sub-simulator a shard of a conservatively synchronized
	// sim.Group. See sharded.go and DESIGN.md §8.
	Segments int
	// GatewaysPerLink is the number of redundant gateway nodes on each
	// inter-segment link of a sharded topology; 0 means Sync.F+1 (the
	// minimum that survives an f-trimming convergence function).
	GatewaysPerLink int
	// WANDelayS is the one-way WAN propagation delay between adjacent
	// segments of a sharded topology — and therefore the conservative
	// lookahead of the parallel kernel. 0 means DefaultWANDelayS.
	WANDelayS float64
	// Serving describes the simulated client population querying the
	// cluster for time (internal/service): open-loop arrival streams
	// aggregated per node, feeding served-accuracy sketches. The zero
	// value (Clients == 0) disables serving entirely.
	Serving service.Config
	// Shards is the worker-goroutine count driving the sharded
	// topology's sub-simulators: 1 executes the shards sequentially
	// (the single-kernel baseline), N runs up to N segments
	// concurrently, 0 picks min(Segments, GOMAXPROCS). Results are
	// byte-identical for every value — the shard decomposition is
	// fixed by Segments; Shards only chooses execution parallelism.
	Shards int
	// Tracer, when non-nil, is wired through every layer of the cluster
	// (simulation kernel, media, node kernels, synchronizers, GPS
	// receivers). One Tracer belongs to exactly one cluster — like the
	// simulator, it is single-threaded state.
	Tracer *trace.Tracer
	// Telemetry, when non-nil, wires the runtime metrics registry
	// through every layer (kernel counters, bus gauges, sync histograms,
	// serving counters). Sharded clusters create one private registry
	// per shard (single-threaded, like per-shard tracers) and treat this
	// one as the driver-level registry; TelemetrySnapshot merges them.
	// One Registry belongs to exactly one cluster.
	Telemetry *telemetry.Registry
}

// Defaults returns a ready-to-run n-node configuration.
func Defaults(n int, seed uint64) Config {
	return Config{
		Nodes:  n,
		Seed:   seed,
		OscHz:  10e6,
		Medium: network.DefaultLAN(),
		Kernel: kernel.Config{CPU: cpu.DefaultMVME162(), Mode: kernel.ModeNTI, UseRxBaseLatch: true},
		COMCO:  comco.Default82596(),
		// A priori delay bounds for a 10 Mb/s LAN with 64-byte CSPs:
		// serialization ≈ 51 µs + preamble + propagation + DMA terms.
		// MeasureDelay tightens these further.
		Sync: clocksync.Params{
			DelayMin: timefmt.DurationFromSeconds(40e-6),
			DelayMax: timefmt.DurationFromSeconds(120e-6),
			// Tolerate a proportional share of faulty nodes; discarding
			// the extreme intervals also de-noises the midpoint under
			// occasional CSP loss.
			F: fDefault(n),
			// De-burst the per-round broadcasts.
			StaggerSlot: timefmt.DurationFromSeconds(200e-6),
		},
	}
}

// Clone returns a deep copy safe for independent per-cell mutation in
// parameter sweeps: the GPS map and each receiver config's Faults slice
// are copied, so mutating one clone's GPS setup can never leak into
// another cell sharing the same base Config.
func (c Config) Clone() Config {
	out := c // copies every value field, including nested structs
	if c.GPS != nil {
		out.GPS = make(map[int]gps.Config, len(c.GPS))
		for i, rc := range c.GPS {
			rc.Faults = append([]gps.Fault(nil), rc.Faults...)
			out.GPS[i] = rc
		}
	}
	out.Adversary = c.Adversary.Clone()
	return out
}

// fDefault is the default fault-tolerance degree for n nodes.
func fDefault(n int) int {
	f := (n - 1) / 3
	if f > 5 {
		f = 5
	}
	return f
}

// Member is one node of the cluster.
type Member struct {
	Index int
	// Segment is the LAN segment index in a WANs-of-LANs topology
	// (-1 for gateway nodes); 0 for single-LAN clusters.
	Segment int
	// Shard is the sub-simulator the member executes on in a sharded
	// topology (gateways are homed on their lower-numbered adjacent
	// segment's shard); 0 for unsharded clusters.
	Shard int
	Osc   *oscillator.Oscillator
	U     *utcsu.UTCSU
	Node  *kernel.Node
	Sync  *clocksync.Synchronizer
	GPS   *clocksync.GPSAttachment
	Rx    *gps.Receiver
	// SrcGPS/SrcRx are the additional reference sources (GPU 1..) of a
	// multi-source node (Adversary.Sources >= 2); the classic single
	// receiver stays in GPS/Rx.
	SrcGPS []*clocksync.GPSAttachment
	SrcRx  []*gps.Receiver
}

// OffsetAndBounds implements metrics.Snapshotter through an SNU
// snapshot: the clock's offset from simulated true time and the
// real-time edges of its accuracy interval relative to true time.
func (m *Member) OffsetAndBounds() (offset, loEdge, hiEdge float64) {
	snap := m.U.Snapshot()
	offset = snap.Clock.Seconds() - snap.TrueTime
	loEdge = offset - snap.AlphaMinus.Duration().Seconds()
	hiEdge = offset + snap.AlphaPlus.Duration().Seconds()
	return offset, loEdge, hiEdge
}

// Cluster is the assembled system.
type Cluster struct {
	// Sim is the simulator of an unsharded cluster (and shard 0 of a
	// sharded one). Code that advances time or reads the clock should
	// use the RunUntil/Now/EventCount wrappers, which dispatch to the
	// Group for sharded clusters.
	Sim *sim.Simulator
	// Group is the conservative parallel composition of the per-segment
	// sub-simulators; nil for unsharded clusters.
	Group *sim.Group
	// Med is the (first) medium; Media lists all segments in a
	// WANs-of-LANs topology.
	Med     *network.Medium
	Media   []*network.Medium
	Members []*Member
	// ServingGens are the per-node client-load generators (one per
	// regular node, in member order) when cfg.Serving enables a client
	// population; empty otherwise. See serving.go.
	ServingGens []*service.Generator
	tracers     []*trace.Tracer       // per-shard tracers of a sharded cluster
	telems      []*telemetry.Registry // per-shard registries of a sharded cluster
	adv         *adversary.Layer      // nil without an adversary spec
	cfg         Config
}

// Traitor reports whether member index i is an adversarial node
// (always false on clusters without an adversary).
func (c *Cluster) Traitor(i int) bool { return c.adv.Traitor(i) }

// TraitorCount returns the number of adversarial nodes.
func (c *Cluster) TraitorCount() int { return len(c.adv.Traitors()) }

// AdversaryLies returns the total adversarial frame mutations delivered
// so far. Call only between RunUntil calls (barrier state, like
// telemetry).
func (c *Cluster) AdversaryLies() uint64 { return c.adv.LiesTold() }

// New builds the cluster. Synchronizers are created but not started;
// call Start (optionally after MeasureDelay has refined the bounds).
// A Config with Segments >= 2 builds the sharded WANs-of-LANs
// topology (sharded.go); otherwise a single shared LAN.
func New(cfg Config) *Cluster {
	if cfg.Nodes <= 0 {
		panic("cluster: need at least one node")
	}
	if cfg.Segments >= 2 {
		return newSharded(cfg)
	}
	if cfg.OscHz == 0 {
		cfg.OscHz = 10e6
	}
	s := sim.New(cfg.Seed)
	med := network.NewMedium(s, cfg.Medium)
	if cfg.Tracer != nil {
		s.SetTracer(cfg.Tracer)
		med.SetTracer(cfg.Tracer)
	}
	if cfg.Telemetry != nil {
		s.SetTelemetry(cfg.Telemetry)
		med.SetTelemetry(cfg.Telemetry)
	}
	c := &Cluster{Sim: s, Med: med, Media: []*network.Medium{med}, cfg: cfg}
	c.adv = adversary.NewLayer(cfg.Adversary, cfg.Seed, cfg.Nodes, 1)
	for i := 0; i < cfg.Nodes; i++ {
		oc := oscillator.TCXO(cfg.OscHz)
		if cfg.OscillatorFor != nil {
			oc = cfg.OscillatorFor(i)
		}
		osc := oscillator.New(s, oc, fmt.Sprintf("node%d", i))
		u := utcsu.New(s, utcsu.Config{Osc: osc})
		// The adversary sits between the medium and the node's COMCO:
		// WrapBus is the identity when nobody attacks.
		bus := c.adv.WrapBus(med, i, 0, s, cfg.Tracer, cfg.Telemetry)
		node := kernel.NewNode(s, uint16(i), u, bus, cfg.Kernel, cfg.COMCO)
		m := &Member{Index: i, Osc: osc, U: u, Node: node}
		var clk clocksync.Clock = clocksync.UTCSUClock{UTCSU: u}
		if cfg.ClockFactory != nil {
			clk = cfg.ClockFactory(u)
		}
		m.Sync = clocksync.New(node, clk, cfg.Sync)
		if gc, hasGPS := cfg.GPS[i]; hasGPS {
			attachReferences(s, cfg.Tracer, m, gc, fmt.Sprintf("node%d", i), &cfg)
		}
		if cfg.Tracer != nil {
			node.SetTracer(cfg.Tracer)
			m.Sync.SetTracer(cfg.Tracer)
			if m.Rx != nil {
				m.Rx.SetTracer(cfg.Tracer, i)
			}
		}
		m.Sync.SetTelemetry(cfg.Telemetry)
		c.Members = append(c.Members, m)
	}
	if cfg.BackgroundLoad > 0 {
		med.StartBackgroundLoad(cfg.BackgroundLoad, 400)
	}
	c.attachServing()
	return c
}

// attachReferences wires member m's GNSS reference sources: the
// classic single receiver on GPS stamp unit 0 plus, under multi-source
// trust (Adversary.Sources >= 2), additional independent receivers on
// the UTCSU's spare stamp units. Each source gets the wide-area GNSS
// attack schedule lowered into its fault list (a no-op without one),
// and each extra receiver derives its noise stream from its own label,
// so source streams are mutually independent and shard-invariant.
func attachReferences(s *sim.Simulator, tr *trace.Tracer, m *Member, gc gps.Config, label string, cfg *Config) {
	rho := cfg.Sync.RhoPPB
	if rho == 0 {
		rho = 2000
	}
	acc := timefmt.DurationFromSeconds(gc.AccuracyS)
	if acc == 0 {
		acc = timefmt.DurationFromSeconds(1e-6)
	}
	sources := cfg.Adversary.Sources
	if sources < 1 {
		sources = 1
	}
	if sources > utcsu.NumGPU {
		sources = utcsu.NumGPU
	}
	base := gc
	base.Faults = cfg.Adversary.SourceFaults(0, gc.Faults)
	m.GPS = clocksync.AttachGPS(m.Node, 0, acc, rho)
	m.Rx = gps.New(s, base, label, m.GPS.OnPulse)
	m.Sync.AddExternal(m.GPS.Interval)
	for src := 1; src < sources; src++ {
		sc := gc
		sc.Faults = cfg.Adversary.SourceFaults(src, gc.Faults)
		att := clocksync.AttachGPS(m.Node, src, acc, rho)
		rx := gps.New(s, sc, fmt.Sprintf("%s/src%d", label, src), att.OnPulse)
		m.Sync.AddExternal(att.Interval)
		if tr != nil {
			rx.SetTracer(tr, m.Index)
		}
		m.SrcGPS = append(m.SrcGPS, att)
		m.SrcRx = append(m.SrcRx, rx)
	}
}

// Start launches every synchronizer at the given simulated time. In a
// sharded cluster each shard gets its own start event covering the
// members homed on it.
func (c *Cluster) Start(at float64) {
	if c.Group == nil {
		c.Sim.At(at, func() {
			for _, m := range c.Members {
				m.Sync.Start()
			}
		})
		return
	}
	for i := 0; i < c.Group.Shards(); i++ {
		shard := i
		c.Group.Shard(shard).At(at, func() {
			for _, m := range c.Members {
				if m.Shard == shard {
					m.Sync.Start()
				}
			}
		})
	}
}

// RunUntil advances the simulation (every shard, for sharded
// clusters) to the horizon and returns the reached time.
func (c *Cluster) RunUntil(horizon float64) float64 {
	if c.Group != nil {
		return c.Group.RunUntil(horizon)
	}
	return c.Sim.RunUntil(horizon)
}

// Now returns the current simulated time.
func (c *Cluster) Now() float64 {
	if c.Group != nil {
		return c.Group.Now()
	}
	return c.Sim.Now()
}

// EventCount returns events fired so far, summed over shards.
func (c *Cluster) EventCount() uint64 {
	if c.Group != nil {
		return c.Group.EventCount()
	}
	return c.Sim.EventCount()
}

// Trace returns the cluster's event trace: the configured tracer for
// unsharded clusters, or the per-shard tracers merged into canonical
// (time, shard, sequence) order for sharded ones. Nil when tracing is
// off.
func (c *Cluster) Trace() *trace.Tracer {
	if c.Group == nil || c.cfg.Tracer == nil {
		return c.cfg.Tracer
	}
	return trace.MergeShards(c.tracers)
}

// Snapshot samples all clocks simultaneously.
func (c *Cluster) Snapshot() metrics.ClusterSample {
	nodes := make([]metrics.Snapshotter, len(c.Members))
	for i, m := range c.Members {
		nodes[i] = m
	}
	return metrics.Sample(c.Now(), nodes)
}

// TelemetrySnapshot merges the cluster's registries (the configured one
// plus, when sharded, the per-shard registries) into one sim-time
// Snapshot. ok is false when the cluster was built without telemetry.
// Call only between RunUntil calls — registries are barrier state.
func (c *Cluster) TelemetrySnapshot() (telemetry.Snapshot, bool) {
	if c.cfg.Telemetry == nil {
		return telemetry.Snapshot{}, false
	}
	if len(c.telems) == 0 {
		return telemetry.Capture(c.Now(), c.cfg.Telemetry), true
	}
	regs := make([]*telemetry.Registry, 0, len(c.telems)+1)
	regs = append(regs, c.cfg.Telemetry)
	regs = append(regs, c.telems...)
	return telemetry.Capture(c.Now(), regs...), true
}

// RunSampled advances the simulation to `until`, sampling the cluster
// every `every` seconds starting at from, and returns the samples.
func (c *Cluster) RunSampled(from, until, every float64) []metrics.ClusterSample {
	var out []metrics.ClusterSample
	for t := from; t <= until; t += every {
		c.RunUntil(t)
		out = append(out, c.Snapshot())
	}
	return out
}

// MeasureDelay runs a round-trip campaign between members a and b and
// returns the bounds (completing the simulation work synchronously).
// Call before Start.
func (c *Cluster) MeasureDelay(a, b, probes int) clocksync.DelayBounds {
	if c.Group != nil && c.Members[a].Shard != c.Members[b].Shard {
		panic("cluster: MeasureDelay probes cannot cross shards (RTT unicast is segment-local)")
	}
	c.Members[b].Node.EnableRTTResponder()
	var res clocksync.DelayBounds
	done := false
	rho := c.cfg.Sync.RhoPPB
	if rho == 0 {
		rho = 2000
	}
	clocksync.MeasureDelay(c.Members[a].Node, c.Members[b].Node, rho, probes, func(b clocksync.DelayBounds) {
		res = b
		done = true
	})
	deadline := c.Now() + 60
	for !done && c.Now() < deadline {
		c.RunUntil(c.Now() + 0.5)
	}
	// Re-install the synchronizers' CI handlers that MeasureDelay
	// displaced on member a.
	c.Members[a].Sync.ReinstallHandler()
	return res
}
