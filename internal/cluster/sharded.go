// Sharded WANs-of-LANs: the parallel-kernel topology builder.
//
// The footnote-2 topology is embarrassingly decomposable: LAN segments
// interact only through gateway frames that cross a WAN link whose
// propagation delay is known a priori. newSharded exploits that by
// giving every segment its own sim.Simulator (its own event queue,
// RNG universe and tracer) and composing them under a sim.Group whose
// conservative lookahead is exactly the WAN delay — see DESIGN.md §8.
//
// Placement rules:
//
//   - A segment's nodes, medium and background load live on that
//     segment's shard.
//   - A gateway node is one NTI serving two segments, which couples
//     its UTCSU, synchronizer and both COMCOs into one indivisible
//     state machine; it is homed on the lower-numbered adjacent
//     segment's shard. Its first channel attaches to the home medium
//     directly; its second attaches to a network.LinkPort whose far
//     end (a network.Relay) sits on the remote segment's medium, with
//     frames carried across the shard boundary as Group.Post events
//     delayed by the WAN propagation delay.
//
// Relayed CSPs get a PTP-transparent-clock-style correction (see
// relayRewrite): without it, the extra link+WAN flight time would
// break the LAN-scale [DelayMin, DelayMax] bounds receivers compensate
// with, and the gateways' intervals would stop containing true time.
//
// Determinism: member construction order, RNG derivation
// (sim.DeriveSeed(seed, "shard/i")), window boundaries and mailbox
// flush order are all pure functions of the Config — never of the
// worker count — so campaign artifacts are byte-identical for
// Shards=1 and Shards=N. The 1-worker run IS the single-kernel
// baseline: the same per-segment simulators executed sequentially.
package cluster

import (
	"encoding/binary"
	"fmt"
	"runtime"

	"ntisim/internal/adversary"
	"ntisim/internal/clocksync"
	"ntisim/internal/csp"
	"ntisim/internal/interval"
	"ntisim/internal/kernel"
	"ntisim/internal/network"
	"ntisim/internal/oscillator"
	"ntisim/internal/sim"
	"ntisim/internal/telemetry"
	"ntisim/internal/timefmt"
	"ntisim/internal/trace"
	"ntisim/internal/utcsu"
)

// DefaultWANDelayS is the one-way WAN propagation delay between
// adjacent segments when Config.WANDelayS is zero: 1 ms, a
// metropolitan-scale link, and a comfortable conservative lookahead
// (hundreds of LAN frames fit in one window).
const DefaultWANDelayS = 1e-3

// newSharded builds the segment-sharded WANs-of-LANs cluster
// (dispatched from New when cfg.Segments >= 2).
func newSharded(cfg Config) *Cluster {
	segs := cfg.Segments
	if cfg.Nodes < segs || cfg.Nodes%segs != 0 {
		panic(fmt.Sprintf("cluster: %d nodes do not divide evenly over %d segments", cfg.Nodes, segs))
	}
	per := cfg.Nodes / segs
	gpl := cfg.GatewaysPerLink
	if gpl <= 0 {
		gpl = cfg.Sync.F + 1
	}
	wan := cfg.WANDelayS
	if wan <= 0 {
		wan = DefaultWANDelayS
	}
	workers := cfg.Shards
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers > segs {
			workers = segs
		}
	}
	if cfg.OscHz == 0 {
		cfg.OscHz = 10e6
	}

	sims := make([]*sim.Simulator, segs)
	tracers := make([]*trace.Tracer, segs)
	media := make([]*network.Medium, segs)
	var telems []*telemetry.Registry
	if cfg.Telemetry != nil {
		telems = make([]*telemetry.Registry, segs)
	}
	for i := range sims {
		sims[i] = sim.New(sim.DeriveSeed(cfg.Seed, fmt.Sprintf("shard/%d", i)))
		if cfg.Tracer != nil {
			tracers[i] = trace.New(cfg.Tracer.Options())
			tracers[i].SetShard(i)
			sims[i].SetTracer(tracers[i])
		}
		media[i] = network.NewMedium(sims[i], cfg.Medium)
		media[i].SetTracer(tracers[i])
		if telems != nil {
			// One private registry per shard, updated only by that
			// shard's single-threaded simulator — the trace-ring pattern.
			telems[i] = telemetry.New()
			telems[i].SetShard(i)
			sims[i].SetTelemetry(telems[i])
			media[i].SetTelemetry(telems[i])
		}
	}
	group := sim.NewGroup(wan, workers, sims)
	if cfg.Telemetry != nil {
		// Driver-level metrics (windows, flush sizes, imbalance) go on
		// the cluster's own registry — only touched between windows.
		group.SetTelemetry(cfg.Telemetry)
		for i := range sims {
			s := sims[i]
			// Cumulative per-shard progress and window lag, read at
			// capture time (barrier): how many events the shard has fired
			// and how far short of the group clock it went idle.
			telems[i].GaugeFunc(telemetry.MetricShardEvents, func() float64 { return float64(s.EventCount()) })
			telems[i].GaugeFunc("group.shard_lag_s", func() float64 { return group.Now() - s.LastFiredAt() })
		}
	}
	c := &Cluster{
		Sim:     sims[0],
		Med:     media[0],
		Media:   media,
		Group:   group,
		tracers: tracers,
		telems:  telems,
		cfg:     cfg,
	}

	c.adv = adversary.NewLayer(cfg.Adversary, cfg.Seed, cfg.Nodes, segs)

	id := uint16(0)
	mkNode := func(shard int, bus network.Bus, segment int) *Member {
		s := sims[shard]
		tr := tracers[shard]
		var reg *telemetry.Registry
		if telems != nil {
			reg = telems[shard]
		}
		oc := oscillator.TCXO(cfg.OscHz)
		if cfg.OscillatorFor != nil {
			oc = cfg.OscillatorFor(int(id))
		}
		osc := oscillator.New(s, oc, fmt.Sprintf("wol%d", id))
		u := utcsu.New(s, utcsu.Config{Osc: osc})
		// Per-receiver adversary tap (identity when nobody attacks):
		// lies are applied at delivery on the receiver's shard, so the
		// decomposition never changes what any node hears.
		bus = c.adv.WrapBus(bus, int(id), shard, s, tr, reg)
		node := kernel.NewNode(s, id, u, bus, cfg.Kernel, cfg.COMCO)
		m := &Member{Index: int(id), Segment: segment, Shard: shard, Osc: osc, U: u, Node: node}
		var clk clocksync.Clock = clocksync.UTCSUClock{UTCSU: u}
		if cfg.ClockFactory != nil {
			clk = cfg.ClockFactory(u)
		}
		m.Sync = clocksync.New(node, clk, cfg.Sync)
		if gc, hasGPS := cfg.GPS[int(id)]; hasGPS {
			attachReferences(s, tr, m, gc, fmt.Sprintf("wol%d", id), &cfg)
		}
		if tr != nil {
			node.SetTracer(tr)
			m.Sync.SetTracer(tr)
			if m.Rx != nil {
				m.Rx.SetTracer(tr, int(id))
			}
		}
		if telems != nil {
			m.Sync.SetTelemetry(telems[shard])
		}
		id++
		c.Members = append(c.Members, m)
		return m
	}

	for seg := 0; seg < segs; seg++ {
		for i := 0; i < per; i++ {
			mkNode(seg, media[seg], seg)
		}
	}

	rw := relayRewrite(cfg.Sync.RhoPPB)
	link := network.LinkConfig{
		BitRateBps:   cfg.Medium.BitRateBps,
		PreambleBits: cfg.Medium.PreambleBits,
		InterframeS:  cfg.Medium.InterframeS,
	}
	for seg := 0; seg+1 < segs; seg++ {
		home, remote := seg, seg+1
		for g := 0; g < gpl; g++ {
			gw := mkNode(home, media[home], -1)
			var port *network.LinkPort
			var relay *network.Relay
			port = network.NewLinkPort(sims[home], link, func(f network.Frame) {
				group.Post(home, remote, sims[home].Now()+wan, func() { relay.Inject(f) })
			}, rw)
			relay = network.NewRelay(media[remote], func(f network.Frame) {
				group.Post(remote, home, sims[remote].Now()+wan, func() { port.Inject(f) })
			}, rw)
			if telems != nil {
				port.SetTelemetry(telems[home])
				relay.SetTelemetry(telems[remote])
			}
			// The gateway's WAN-facing channel gets the same adversary
			// tap as its LAN channel: traitors on the remote segment lie
			// to the gateway too.
			var gwReg *telemetry.Registry
			if telems != nil {
				gwReg = telems[home]
			}
			gw.Node.AttachSegment(c.adv.WrapBus(port, gw.Index, home, sims[home], tracers[home], gwReg))
		}
	}

	if cfg.BackgroundLoad > 0 {
		for i := range media {
			media[i].StartBackgroundLoad(cfg.BackgroundLoad, 400)
		}
	}
	c.attachServing()
	return c
}

// relayRewrite is the transparent-clock correction applied to relayed
// CSPs at their final acquisition (see network.RewriteFunc): advance
// the embedded transmit stamp by the true time the frame spent beyond
// a direct transmission, and widen its accuracy fields by the drift
// the sender's clock may have accumulated over that span (the rewrite
// adds true elapsed time where a hardware transparent clock would add
// sender-clock elapsed time; the difference is bounded by ρ·elapsed,
// plus one granule of rounding). After the rewrite, the frame's
// timing geometry as seen by every receiver — stamp age vs.
// [DelayMin, DelayMax] — is that of a locally transmitted CSP, and
// interval containment survives the relay.
//
// The stamp words are safe to edit in flight: the CSP header checksum
// deliberately skips the hardware-inserted stamp region
// (csp.headerCheck mixes up to OffTxTrig and from OffEcho), and the
// BTU checksum inside the macrostamp word is recomputed by
// Stamp.Words.
func relayRewrite(rhoPPB int64) network.RewriteFunc {
	if rhoPPB == 0 {
		rhoPPB = 2000
	}
	return func(payload []byte, elapsedS float64) {
		if len(payload) < csp.HeaderSize || csp.Kind(payload[csp.OffKind]) != csp.KindCSP {
			return
		}
		ts := binary.BigEndian.Uint32(payload[csp.OffTxStamp:])
		ms := binary.BigEndian.Uint32(payload[csp.OffTxMacro:])
		st, ok := timefmt.FromWords(ts, ms)
		if !ok {
			return // stamp never inserted (software modes pre-fill; NTI mode always has) or corrupt
		}
		d := timefmt.DurationFromSeconds(elapsedS)
		w1, w2 := st.Add(d).Words()
		binary.BigEndian.PutUint32(payload[csp.OffTxStamp:], w1)
		binary.BigEndian.PutUint32(payload[csp.OffTxMacro:], w2)
		widen := timefmt.AlphaFromDuration(interval.DriftDeterioration(d, rhoPPB) + 1)
		am := timefmt.Alpha(binary.BigEndian.Uint16(payload[csp.OffTxAlpha:]))
		ap := timefmt.Alpha(binary.BigEndian.Uint16(payload[csp.OffTxAlpha+2:]))
		binary.BigEndian.PutUint16(payload[csp.OffTxAlpha:], uint16(am.AddSat(widen)))
		binary.BigEndian.PutUint16(payload[csp.OffTxAlpha+2:], uint16(ap.AddSat(widen)))
	}
}
