package discipline

import "ntisim/internal/interval"

// Lucky is an ntimed-style lucky-sample filter (scion-time's
// filter_ntimed shape): each round's fault-tolerant-midpoint offset is
// recorded together with a quality figure — the width of the round's
// Marzullo intersection, which shrinks when delay noise was low and the
// peers agreed tightly. The correction tracks an exponentially-weighted
// average of the *luckiest* (narrowest-intersection) sample in a short
// window, so one quiet medium round dominates several noisy ones
// instead of being averaged away by them.
type Lucky struct {
	fz interval.Fuser

	// Window is the lucky-selection depth in rounds (default 8).
	Window int
	// Gain is the EWMA weight of each round's lucky sample (default
	// 0.25).
	Gain float64

	samples []luckySample // ring, oldest first
	ewma    float64
	init    bool
}

type luckySample struct {
	off     float64 // residual offset [s], adjusted for later commands
	quality float64 // Marzullo intersection width [s]; smaller is better
}

// NewLucky returns a lucky-sample discipline with default window and
// gain.
func NewLucky() *Lucky { return &Lucky{Window: 8, Gain: 0.25} }

// Name implements Discipline.
func (d *Lucky) Name() string { return "lucky" }

// Reset implements Discipline.
func (d *Lucky) Reset() {
	d.samples = d.samples[:0]
	d.ewma = 0
	d.init = false
}

// Step implements Discipline.
func (d *Lucky) Step(s Sample) (Action, bool) {
	mz, z, _, ok := measure(&d.fz, s)
	if !ok {
		return Action{}, false
	}
	if len(d.samples) >= d.Window {
		copy(d.samples, d.samples[1:])
		d.samples = d.samples[:len(d.samples)-1]
	}
	d.samples = append(d.samples, luckySample{off: z, quality: mz.Length().Seconds()})

	// Pick the luckiest sample in the window (ties: the most recent).
	best := 0
	for i := 1; i < len(d.samples); i++ {
		if d.samples[i].quality <= d.samples[best].quality {
			best = i
		}
	}
	lucky := d.samples[best].off
	if !d.init {
		d.init = true
		d.ewma = lucky
	} else {
		d.ewma += d.Gain * (lucky - d.ewma)
	}

	// Command the smoothed estimate, then re-express the stored window
	// (and the EWMA itself) relative to the corrected clock.
	corr := d.ewma
	for i := range d.samples {
		d.samples[i].off -= corr
	}
	d.ewma = 0
	return Action{Interval: mz.Rereference(refAt(s.Now, corr))}, true
}
