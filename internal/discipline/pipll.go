package discipline

import "ntisim/internal/timefmt"

// PIPLL is a proportional-integral (type-II PLL) rate controller that
// can wrap any offset-filter discipline — the shape of scion-time's
// adjustments/pll and the classic NTP clock servo. The inner discipline
// measures the offset; the wrapper applies only the proportional
// fraction of it as a phase correction and integrates the rest into a
// persistent frequency adjustment, so a constant oscillator drift is
// eventually absorbed by the rate word and the per-round phase
// corrections decay toward the measurement noise floor.
//
// Containment is unaffected: the inner discipline's interval edges are
// kept, re-referenced at the reduced phase command (Rereference extends
// the interval when the reference leaves it, so requirement (A)
// survives a deliberately sluggish servo).
type PIPLL struct {
	inner Discipline
	name  string

	// KP is the proportional phase gain per round (default 0.6).
	KP float64
	// KI is the integral frequency gain per round (default 0.08/s: each
	// round adds KI·offset/period to the rate word).
	KI float64
	// MaxRatePPB clamps the total commanded frequency adjustment
	// (default 2000 ppb, the a priori drift bound).
	MaxRatePPB int64

	totalPPB int64 // integral state: net rate commanded so far
	lastNow  timefmt.Stamp
	haveLast bool
}

// NewPIPLL wraps an inner offset-filter discipline in the PI/PLL rate
// controller.
func NewPIPLL(inner Discipline) *PIPLL {
	return &PIPLL{
		inner:      inner,
		name:       "pi-" + inner.Name(),
		KP:         0.6,
		KI:         0.08,
		MaxRatePPB: 2000,
	}
}

// Name implements Discipline.
func (d *PIPLL) Name() string { return d.name }

// Reset implements Discipline.
func (d *PIPLL) Reset() {
	d.inner.Reset()
	d.totalPPB = 0
	d.haveLast = false
}

// Step implements Discipline.
func (d *PIPLL) Step(s Sample) (Action, bool) {
	act, ok := d.inner.Step(s)
	if !ok {
		return Action{}, false
	}
	offS := act.Interval.Ref.Sub(s.Now).Seconds()
	dt := 1.0
	if d.haveLast {
		if e := s.Now.Sub(d.lastNow).Seconds(); e > 0 {
			dt = e
		}
	}
	d.lastNow, d.haveLast = s.Now, true

	// Integral branch: offset → frequency, anti-windup clamped so the
	// total stays inside the a priori drift bound.
	delta := int64(d.KI * offS / dt * 1e9)
	if tot := d.totalPPB + delta; tot > d.MaxRatePPB {
		delta = d.MaxRatePPB - d.totalPPB
	} else if tot < -d.MaxRatePPB {
		delta = -d.MaxRatePPB - d.totalPPB
	}
	d.totalPPB += delta

	// Proportional branch: command only KP of the phase error.
	ref := s.Now.Add(timefmt.DurationFromSeconds(d.KP * offS))
	out := Action{
		Interval:     act.Interval.Rereference(ref),
		RateDeltaPPB: act.RateDeltaPPB + delta,
	}
	return out, true
}
