package discipline

import (
	"ntisim/internal/interval"
	"ntisim/internal/timefmt"
)

// measure fuses one round's intervals into the Marzullo interval (the
// accuracy edges every discipline maintains) and the fault-tolerant
// midpoint offset measurement z = FTMidpoint − Now in seconds (the
// scalar the filters consume). f is degraded gracefully like the
// interval convergence functions. ok=false when the inputs admit no
// fault-tolerant intersection.
func measure(fz *interval.Fuser, s Sample) (mz interval.Interval, z float64, f int, ok bool) {
	f = s.F
	if 2*f >= len(s.Intervals) && len(s.Intervals) > 0 {
		f = (len(s.Intervals) - 1) / 2
	}
	mz, ok = fz.Marzullo(s.Intervals, f)
	if !ok {
		return interval.Interval{}, 0, f, false
	}
	z = fz.FTMidpoint(s.Intervals, f).Sub(s.Now).Seconds()
	return mz, z, f, true
}

// refAt turns a filtered offset estimate (seconds) back into a
// reference point on the local clock axis.
func refAt(now timefmt.Stamp, offS float64) timefmt.Stamp {
	return now.Add(timefmt.DurationFromSeconds(offS))
}

// Kalman is a two-state (offset, rate) Kalman filter over the per-round
// fault-tolerant-midpoint offset measurement, the shape of scion-time's
// filter_kalman / P-TimeSync's propagation-noise filters: the
// measurement noise ε (delay asymmetry, stamp granularity) is averaged
// down by the steady-state gain while the rate state keeps the
// prediction honest between rounds. The commanded correction is the
// filtered offset; after commanding, the offset state is zeroed (the
// servo consumes it) while the rate estimate persists.
//
// Accuracy is maintained orthogonally: the returned interval is the
// Marzullo intersection re-referenced at the filtered offset, so
// containment never depends on the filter being right.
type Kalman struct {
	fz interval.Fuser

	// QOffset/QRate are process-noise densities: offset random walk
	// [s²/s] and rate random walk [(s/s)²/s]. R is the measurement
	// variance [s²].
	QOffset, QRate, R float64

	x, v          float64 // offset [s], rate [s/s] state
	pxx, pxv, pvv float64 // covariance
	init          bool
	lastNow       timefmt.Stamp
}

// NewKalman returns a Kalman discipline with defaults sized for the
// prototype LAN: ~2 µs measurement noise, TCXO-class rate wander.
func NewKalman() *Kalman {
	return &Kalman{
		QOffset: 1e-16,   // 10 ns²/s offset random walk
		QRate:   2.5e-15, // (50 ppb)²/s rate random walk
		R:       4e-12,   // (2 µs)² measurement noise
	}
}

// Name implements Discipline.
func (d *Kalman) Name() string { return "kalman" }

// Reset implements Discipline.
func (d *Kalman) Reset() {
	d.x, d.v = 0, 0
	d.pxx, d.pxv, d.pvv = 0, 0, 0
	d.init = false
}

// Step implements Discipline.
func (d *Kalman) Step(s Sample) (Action, bool) {
	mz, z, _, ok := measure(&d.fz, s)
	if !ok {
		return Action{}, false
	}
	if !d.init {
		// First fix: adopt the raw measurement (the synchronizer's step
		// threshold handles the initial jump), uncertain rate.
		d.init = true
		d.x, d.v = z, 0
		d.pxx, d.pxv, d.pvv = d.R, 0, 1e-12
		d.lastNow = s.Now
		corr := d.x
		d.x = 0
		return Action{Interval: mz.Rereference(refAt(s.Now, corr))}, true
	}
	dt := s.Now.Sub(d.lastNow).Seconds()
	if dt < 0 {
		dt = 0
	}
	d.lastNow = s.Now

	// Predict: x += v·dt under random-walk process noise.
	d.x += d.v * dt
	d.pxx += 2*d.pxv*dt + d.pvv*dt*dt + d.QOffset*dt
	d.pxv += d.pvv * dt
	d.pvv += d.QRate * dt

	// Update with the scalar measurement z (H = [1 0]).
	innS := d.pxx + d.R
	kx := d.pxx / innS
	kv := d.pxv / innS
	inn := z - d.x
	d.x += kx * inn
	d.v += kv * inn
	d.pvv -= kv * d.pxv
	d.pxv *= 1 - kx
	d.pxx *= 1 - kx

	// Command the filtered offset; the servo removes it, so the offset
	// state restarts at zero while the rate estimate carries over.
	corr := d.x
	d.x = 0
	return Action{Interval: mz.Rereference(refAt(s.Now, corr))}, true
}
