// Package discipline provides pluggable clock-discipline algorithms:
// consumers of one resynchronization round's preprocessed accuracy
// intervals that produce a state correction (and optionally a rate
// adjustment) for the local clock. The paper's interval-based
// convergence functions (interval.OrthogonalAccuracy and friends) are
// one Discipline among peers here, next to the filter/estimator
// families modern time-sync stacks use: a steady-state Kalman offset
// filter, an ntimed-style lucky-sample filter, a Theil-Sen robust
// trend estimator, and a PI/PLL rate controller that can wrap any of
// them.
//
// Every discipline preserves requirement (A) of the paper (§2): the
// returned interval's edges always cover the Marzullo fault-tolerant
// intersection of the inputs, so real-time containment is maintained
// "orthogonally" no matter how the reference point is filtered. What
// varies between disciplines is the dynamics of the reference point —
// and with it precision, noise rejection, and convergence time.
package discipline

import (
	"sort"

	"ntisim/internal/interval"
	"ntisim/internal/timefmt"
)

// Sample is one resynchronization round's preprocessed input.
type Sample struct {
	// Round is the round number k.
	Round uint32
	// Now is the local clock reading at the convergence instant kP+Δ.
	Now timefmt.Stamp
	// Intervals holds the round's accuracy intervals: element 0 is the
	// node's own interval as of Now, the rest are the delay- and
	// drift-compensated peer intervals in ascending node-id order. The
	// backing array is scratch reused across rounds — implementations
	// must not retain it past Step.
	Intervals []interval.Interval
	// F is the number of faulty inputs to tolerate.
	F int
}

// Action is the correction a discipline commands for one round.
type Action struct {
	// Interval is the improved accuracy interval. Its reference point
	// implies the state correction Ref − Sample.Now, applied by the
	// synchronizer through amortization (or a step during initial
	// synchronization); its edges load the accuracy registers.
	Interval interval.Interval
	// RateDeltaPPB is an additional frequency-steering command relative
	// to the clock's current rate; 0 leaves the rate alone.
	RateDeltaPPB int64
}

// Discipline consumes one round's samples at a time and produces
// corrections. Implementations are single-goroutine state: one instance
// belongs to exactly one synchronizer.
type Discipline interface {
	// Name returns the registry name ("interval", "kalman", …).
	Name() string
	// Step consumes one round's sample. ok=false means the round could
	// not be fused (too few consistent inputs) and no correction
	// applies; internal filter state is left untouched in that case.
	Step(s Sample) (Action, bool)
	// Reset discards accumulated filter state (e.g. after the
	// synchronizer stepped the clock across a large offset).
	Reset()
}

// Factory builds a fresh Discipline instance. Factories must be pure so
// one factory can serve every node of a cluster and every cloned cell
// of a campaign grid.
type Factory func() Discipline

// IDCustom is the trace ID reported for disciplines outside the
// registry (e.g. a wrapped custom convergence function).
const IDCustom = 63

// builtins lists the registered disciplines in stable ID order. The
// slice index is the discipline's wire ID in trace records — append
// only, never reorder.
var builtins = []struct {
	name    string
	desc    string
	factory Factory
}{
	{"interval", "orthogonal-accuracy interval baseline (the paper's CSA)", func() Discipline { return NewInterval() }},
	{"kalman", "steady-state Kalman offset/rate filter over the FT-midpoint measurement", func() Discipline { return NewKalman() }},
	{"lucky", "ntimed-style lucky-sample pick with exponentially-weighted smoothing", func() Discipline { return NewLucky() }},
	{"theilsen", "Theil-Sen robust trend regression over a sample window", func() Discipline { return NewTheilSen() }},
	{"pi-kalman", "PI/PLL rate controller wrapping the Kalman offset filter", func() Discipline { return NewPIPLL(NewKalman()) }},
	{"pi-theilsen", "PI/PLL rate controller wrapping the Theil-Sen estimator", func() Discipline { return NewPIPLL(NewTheilSen()) }},
}

// Names lists the registered discipline names in sorted order.
func Names() []string {
	out := make([]string, 0, len(builtins))
	for _, b := range builtins {
		out = append(out, b.name)
	}
	sort.Strings(out)
	return out
}

// Describe returns the one-line description of a registered discipline
// ("" when unknown).
func Describe(name string) string {
	for _, b := range builtins {
		if b.name == name {
			return b.desc
		}
	}
	return ""
}

// Lookup resolves a discipline name to its factory.
func Lookup(name string) (Factory, bool) {
	for _, b := range builtins {
		if b.name == name {
			return b.factory, true
		}
	}
	return nil, false
}

// New builds a fresh instance of a registered discipline.
func New(name string) (Discipline, bool) {
	f, ok := Lookup(name)
	if !ok {
		return nil, false
	}
	return f(), true
}

// ID returns the stable wire ID of a registered discipline name
// (IDCustom when unknown) — the value trace disc-step records carry.
func ID(name string) int {
	for i, b := range builtins {
		if b.name == name {
			return i
		}
	}
	return IDCustom
}

// NameOf resolves a wire ID back to its name ("custom" for IDs outside
// the registry).
func NameOf(id int) string {
	if id >= 0 && id < len(builtins) {
		return builtins[id].name
	}
	return "custom"
}
