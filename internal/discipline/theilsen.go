package discipline

import (
	"sort"

	"ntisim/internal/interval"
)

// TheilSen is a robust trend estimator (scion-time's theil_sen shape):
// it fits offset-vs-time over a sample window with the Theil-Sen
// estimator — slope = median of all pairwise slopes, intercept = median
// residual — which tolerates up to ~29% arbitrary outliers, so a burst
// of delayed CSPs or one lying peer cannot bend the fit the way it
// bends a least-squares line. The commanded correction is the fit's
// prediction at the current instant; once per full window the fitted
// slope is additionally commanded as a rate adjustment (median-based
// rate steering), and the window restarts so stale-rate samples never
// feed back.
type TheilSen struct {
	fz interval.Fuser

	// Window is the regression depth in rounds (default 8, ≥ 3 to fit).
	Window int
	// RateGain scales the slope → rate command (default 0.5).
	RateGain float64
	// MaxRatePPB clamps the net commanded frequency adjustment
	// (default 2000 ppb, the a priori TCXO drift bound): anti-windup,
	// so repeated window commands cannot steer the clock further from
	// nominal than the drift bound the accuracy logic assumes.
	MaxRatePPB int64

	totalPPB int64     // net rate commanded so far (anti-windup state)
	ts, offs []float64 // sample window: local time [s], residual offset [s]
	scratch  []float64 // pairwise slopes / residuals for the medians
}

// NewTheilSen returns a Theil-Sen discipline with defaults.
func NewTheilSen() *TheilSen {
	return &TheilSen{Window: 8, RateGain: 0.5, MaxRatePPB: 2000}
}

// Name implements Discipline.
func (d *TheilSen) Name() string { return "theilsen" }

// Reset implements Discipline.
func (d *TheilSen) Reset() {
	d.ts = d.ts[:0]
	d.offs = d.offs[:0]
	d.totalPPB = 0
}

// median sorts vals in place and returns the midpoint (mean of the two
// central elements for even counts).
func median(vals []float64) float64 {
	sort.Float64s(vals)
	n := len(vals)
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}

// Step implements Discipline.
func (d *TheilSen) Step(s Sample) (Action, bool) {
	mz, z, _, ok := measure(&d.fz, s)
	if !ok {
		return Action{}, false
	}
	tNow := s.Now.Seconds()
	if len(d.ts) >= d.Window {
		copy(d.ts, d.ts[1:])
		copy(d.offs, d.offs[1:])
		d.ts = d.ts[:len(d.ts)-1]
		d.offs = d.offs[:len(d.offs)-1]
	}
	d.ts = append(d.ts, tNow)
	d.offs = append(d.offs, z)

	if len(d.ts) < 3 {
		// Not enough points for a fit: behave like the raw baseline.
		corr := z
		for i := range d.offs {
			d.offs[i] -= corr
		}
		return Action{Interval: mz.Rereference(refAt(s.Now, corr))}, true
	}

	// Theil-Sen slope: median of all pairwise slopes.
	slopes := d.scratch[:0]
	for i := 0; i < len(d.ts); i++ {
		for j := i + 1; j < len(d.ts); j++ {
			dt := d.ts[j] - d.ts[i]
			if dt <= 0 {
				continue
			}
			slopes = append(slopes, (d.offs[j]-d.offs[i])/dt)
		}
	}
	d.scratch = slopes
	if len(slopes) == 0 {
		return Action{}, false
	}
	m := median(slopes)
	// Intercept: median residual against the slope.
	resid := d.scratch[:0]
	for i := range d.ts {
		resid = append(resid, d.offs[i]-m*(d.ts[i]-tNow))
	}
	d.scratch = resid
	corr := median(resid) // fit evaluated at tNow

	act := Action{}
	if len(d.ts) >= d.Window {
		// Window full: command the fitted residual drift as a rate
		// adjustment and restart the window (its samples describe the
		// pre-adjustment rate).
		ppb := int64(-m * d.RateGain * 1e9)
		if tot := d.totalPPB + ppb; tot > d.MaxRatePPB {
			ppb = d.MaxRatePPB - d.totalPPB
		} else if tot < -d.MaxRatePPB {
			ppb = -d.MaxRatePPB - d.totalPPB
		}
		if ppb != 0 {
			act.RateDeltaPPB = ppb
			d.totalPPB += ppb
			d.ts = d.ts[:0]
			d.offs = d.offs[:0]
		}
	}
	for i := range d.offs {
		d.offs[i] -= corr
	}
	act.Interval = mz.Rereference(refAt(s.Now, corr))
	return act, true
}
