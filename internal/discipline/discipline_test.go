package discipline

import (
	"math"
	"math/rand"
	"testing"

	"ntisim/internal/interval"
	"ntisim/internal/timefmt"
)

func st(s float64) timefmt.Stamp     { return timefmt.Stamp(timefmt.DurationFromSeconds(s)) }
func dur(s float64) timefmt.Duration { return timefmt.DurationFromSeconds(s) }

// oracle simulates a drifting local clock disciplined by d: true time
// advances in 1 s rounds; four truth-anchored peers provide ±20 µs
// intervals with 2 µs gaussian stamp noise; the commanded correction
// and rate delta are applied in full before the next round (the
// synchronizer's amortization completes µs-scale corrections well
// within a round). It returns the absolute post-correction clock error
// per round and the final effective rate error in ppb.
func oracle(t *testing.T, d Discipline, offS, driftPPB float64, rounds int) (errs []float64, ratePPB float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	clockErr := offS   // C − t [s]
	ratePPB = driftPPB // effective local rate error [ppb]
	for k := 0; k < rounds; k++ {
		tTrue := float64(k + 1)
		clockErr += ratePPB * 1e-9 // one second elapsed
		now := st(tTrue + clockErr)
		ivs := []interval.Interval{interval.New(now, dur(2e-3), dur(2e-3))}
		for p := 0; p < 4; p++ {
			ref := st(tTrue + rng.NormFloat64()*2e-6)
			ivs = append(ivs, interval.New(ref, dur(20e-6), dur(20e-6)))
		}
		act, ok := d.Step(Sample{Round: uint32(k), Now: now, Intervals: ivs, F: 1})
		if !ok {
			t.Fatalf("round %d: %s did not converge", k, d.Name())
		}
		// Requirement (A): whatever the filter does to the reference,
		// the interval must keep containing true time.
		if !act.Interval.Contains(st(tTrue)) {
			t.Fatalf("round %d: %s interval %v lost containment of truth %v",
				k, d.Name(), act.Interval, st(tTrue))
		}
		clockErr += act.Interval.Ref.Sub(now).Seconds()
		ratePPB += float64(act.RateDeltaPPB)
		errs = append(errs, math.Abs(clockErr))
	}
	return errs, ratePPB
}

// TestDisciplinesConvergeOnDriftingClock runs every registered
// discipline against the synthetic oracle: 500 µs initial offset,
// 500 ppb residual drift. All of them must pull the clock into the
// few-µs regime and keep it there.
func TestDisciplinesConvergeOnDriftingClock(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			d, ok := New(name)
			if !ok {
				t.Fatalf("New(%q) failed", name)
			}
			errs, _ := oracle(t, d, 500e-6, 500, 80)
			worst := 0.0
			for _, e := range errs[len(errs)-10:] {
				if e > worst {
					worst = e
				}
			}
			if worst > 20e-6 {
				t.Errorf("%s: steady-state error %v s, want < 20 µs (initial 500 µs)", name, worst)
			}
			// errs[0] is already post-correction: every discipline must
			// have engaged on the very first round (the PI loop's
			// proportional branch removes KP=60% of it, the offset
			// filters nearly all).
			if errs[0] > 250e-6 {
				t.Errorf("%s: first-round error %v s, want at least half the 500 µs initial offset removed", name, errs[0])
			}
		})
	}
}

// TestPIPLLStealsRate checks the type-II loop actually does frequency
// discipline: under a 2000 ppb drift the integral branch must absorb
// most of the rate error, something the pure offset filters cannot do.
func TestPIPLLStealsRate(t *testing.T) {
	d := NewPIPLL(NewKalman())
	_, rate := oracle(t, d, 100e-6, 2000, 150)
	if math.Abs(rate) > 1000 {
		t.Errorf("effective rate error %v ppb after 150 rounds, want < 1000 (started at 2000)", rate)
	}
}

// TestStepNoQuorum: a round whose intervals admit no fault-tolerant
// intersection must report ok=false and leave the filter able to
// continue on the next good round.
func TestStepNoQuorum(t *testing.T) {
	disjoint := []interval.Interval{
		interval.New(st(1), dur(1e-6), dur(1e-6)),
		interval.New(st(10), dur(1e-6), dur(1e-6)),
		interval.New(st(20), dur(1e-6), dur(1e-6)),
	}
	for _, name := range Names() {
		d, _ := New(name)
		if _, ok := d.Step(Sample{Round: 0, Now: st(1), Intervals: disjoint, F: 0}); ok {
			t.Errorf("%s: disjoint round converged", name)
		}
		good := []interval.Interval{
			interval.New(st(2), dur(1e-3), dur(1e-3)),
			interval.New(st(2.00001), dur(20e-6), dur(20e-6)),
			interval.New(st(2.00001), dur(20e-6), dur(20e-6)),
		}
		if _, ok := d.Step(Sample{Round: 1, Now: st(2), Intervals: good, F: 0}); !ok {
			t.Errorf("%s: good round after bad round did not converge", name)
		}
	}
}

// TestResetRecovers: Reset must discard filter state so a discipline
// can be re-synchronized after a clock step.
func TestResetRecovers(t *testing.T) {
	for _, name := range Names() {
		d, _ := New(name)
		oracle(t, d, 500e-6, 500, 20)
		d.Reset()
		errs, _ := oracle(t, d, 500e-6, 500, 40)
		if errs[len(errs)-1] > 20e-6 {
			t.Errorf("%s: did not re-converge after Reset: %v s", name, errs[len(errs)-1])
		}
	}
}

// TestRegistryRoundTrip pins the registry invariants the trace wire
// format and CLI front-ends rely on.
func TestRegistryRoundTrip(t *testing.T) {
	names := Names()
	if len(names) < 4 {
		t.Fatalf("registry has %d disciplines, want >= 4", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
	for _, n := range names {
		d, ok := New(n)
		if !ok {
			t.Fatalf("New(%q) failed", n)
		}
		if d.Name() != n {
			t.Errorf("New(%q).Name() = %q", n, d.Name())
		}
		if Describe(n) == "" {
			t.Errorf("Describe(%q) empty", n)
		}
		id := ID(n)
		if id == IDCustom {
			t.Errorf("ID(%q) = IDCustom", n)
		}
		if NameOf(id) != n {
			t.Errorf("NameOf(ID(%q)) = %q", n, NameOf(id))
		}
	}
	if _, ok := Lookup("no-such-filter"); ok {
		t.Error("Lookup of unknown name succeeded")
	}
	if ID("no-such-filter") != IDCustom {
		t.Error("unknown name should map to IDCustom")
	}
	if NameOf(IDCustom) != "custom" || NameOf(-1) != "custom" {
		t.Error("out-of-registry IDs should read back as custom")
	}
}

// TestWrapConverge: an arbitrary convergence function plugs in as a
// stateless discipline; the empty name reads back as "custom".
func TestWrapConverge(t *testing.T) {
	d := WrapConverge("", ConvergeFunc(interval.MarzulloMidpoint))
	if d.Name() != "custom" {
		t.Errorf("Name() = %q, want custom", d.Name())
	}
	ivs := []interval.Interval{
		interval.New(st(5), dur(1e-3), dur(1e-3)),
		interval.New(st(5.0001), dur(1e-3), dur(1e-3)),
	}
	act, ok := d.Step(Sample{Now: st(5), Intervals: ivs, F: 0})
	if !ok {
		t.Fatal("Step failed")
	}
	want, _ := interval.MarzulloMidpoint(ivs, 0)
	if act.Interval != want {
		t.Errorf("wrapped result %v, want %v", act.Interval, want)
	}
	if act.RateDeltaPPB != 0 {
		t.Errorf("wrapped converge function commanded a rate delta: %d", act.RateDeltaPPB)
	}
}
