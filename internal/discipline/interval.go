package discipline

import "ntisim/internal/interval"

// ConvergeFunc fuses one round's accuracy intervals, tolerating up to f
// faulty inputs. It has the same underlying type as
// clocksync.ConvergeFunc, so existing convergence functions plug in
// unchanged.
type ConvergeFunc func(ivs []interval.Interval, f int) (interval.Interval, bool)

// Interval adapts the paper's interval-based convergence functions to
// the Discipline interface: the whole correction is the fused
// interval, no filter state, no rate steering. This is the baseline
// every other discipline is campaigned against.
type Interval struct {
	name string
	fn   ConvergeFunc // nil: the allocation-free Fuser OA fast path
	fz   interval.Fuser
}

// NewInterval returns the orthogonal-accuracy baseline discipline. It
// computes exactly interval.OrthogonalAccuracy, through scratch buffers
// that make the steady-state round allocation-free.
func NewInterval() *Interval { return &Interval{name: "interval"} }

// WrapConverge adapts an arbitrary convergence function (e.g. the E14
// ablations interval.OrthogonalAccuracyFTA or interval.MarzulloMidpoint)
// as a Discipline.
func WrapConverge(name string, fn ConvergeFunc) *Interval {
	if name == "" {
		name = "custom"
	}
	return &Interval{name: name, fn: fn}
}

// Name implements Discipline.
func (d *Interval) Name() string { return d.name }

// Step implements Discipline.
func (d *Interval) Step(s Sample) (Action, bool) {
	var out interval.Interval
	var ok bool
	if d.fn != nil {
		out, ok = d.fn(s.Intervals, s.F)
	} else {
		out, ok = d.fz.OrthogonalAccuracy(s.Intervals, s.F)
	}
	if !ok {
		return Action{}, false
	}
	return Action{Interval: out}, true
}

// Reset implements Discipline (stateless).
func (d *Interval) Reset() {}
