package service

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"ntisim/internal/sim"
)

func TestArrivalRegistry(t *testing.T) {
	names := Arrivals()
	if !reflect.DeepEqual(names, []string{"mmpp", "poisson"}) {
		t.Fatalf("Arrivals() = %v", names)
	}
	for _, n := range names {
		if !ValidArrival(n) {
			t.Errorf("ValidArrival(%q) = false", n)
		}
	}
	if ValidArrival("uniform") {
		t.Error("ValidArrival accepted unknown name")
	}
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("New with unknown arrival did not panic")
		}
		if !strings.Contains(p.(string), "choices: mmpp, poisson") {
			t.Errorf("panic %v does not list the valid choices", p)
		}
	}()
	New(sim.New(1), Config{Clients: 1, Arrival: "uniform"}, 0, 1, 1, func() float64 { return 0 }, nil)
}

// runGenerator drives one generator for spanS seconds of sim time.
func runGenerator(cfg Config, qps, spanS float64, sample func() float64) *Generator {
	s := sim.New(1)
	g := New(s, cfg, 0, sim.DeriveSeed(9, "service/node/0"), qps, sample, nil)
	g.Start(s.Now())
	s.RunUntil(spanS)
	return g
}

func TestPoissonGeneratorMeanRate(t *testing.T) {
	g := runGenerator(Config{Clients: 1}, 500, 20, func() float64 { return 1e-6 })
	want := 500.0 * 20
	got := float64(g.Queries())
	if math.Abs(got-want) > 0.05*want {
		t.Errorf("queries = %.0f, want %.0f +- 5%%", got, want)
	}
	if g.Sketch().Count() != g.Queries() {
		t.Errorf("sketch count %d != queries %d", g.Sketch().Count(), g.Queries())
	}
	if p50 := g.Sketch().Quantile(0.5); p50 != 1e-6 {
		t.Errorf("constant 1µs error sampled as p50 %g", p50)
	}
}

func TestMMPPPreservesMeanRate(t *testing.T) {
	cfg := Config{Clients: 1, Arrival: "mmpp", BurstFactor: 10, BurstFrac: 0.2, BurstDwellS: 0.5}
	// Long horizon so many burst/calm cycles average out.
	g := runGenerator(cfg, 200, 300, func() float64 { return 1e-6 })
	want := 200.0 * 300
	got := float64(g.Queries())
	if math.Abs(got-want) > 0.10*want {
		t.Errorf("mmpp long-run queries = %.0f, want %.0f +- 10%%", got, want)
	}
}

func TestMMPPBurstsAreBursty(t *testing.T) {
	// With a huge burst factor and rare bursts, per-window counts must
	// be visibly bimodal: compare windowed maxima against the mean.
	cfg := Config{Clients: 1, Arrival: "mmpp", BurstFactor: 50, BurstFrac: 0.05, BurstDwellS: 1}
	s := sim.New(1)
	g := New(s, cfg, 0, 77, 100, nil, nil)
	g.sample = func() float64 { return 0 }
	g.Start(0)
	var counts []uint64
	last := uint64(0)
	for w := 0; w < 100; w++ {
		s.RunUntil(float64(w + 1))
		counts = append(counts, g.Queries()-last)
		last = g.Queries()
	}
	var max, sum uint64
	for _, c := range counts {
		sum += c
		if c > max {
			max = c
		}
	}
	mean := float64(sum) / float64(len(counts))
	if float64(max) < 5*mean {
		t.Errorf("windowed max %d vs mean %.1f: bursts not visible", max, mean)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	mk := func() Stats {
		g := runGenerator(Config{Clients: 100, Arrival: "mmpp"}, 300, 10, func() float64 { return 2e-6 })
		return Collect([]*Generator{g}, 100, 10)
	}
	a, b := mk(), mk()
	if a != b {
		t.Errorf("identical runs differ:\n a: %+v\n b: %+v", a, b)
	}
	if a.Queries == 0 || a.QPS == 0 {
		t.Errorf("no traffic generated: %+v", a)
	}
}

// The steady-state tick path — modulating chain, Poisson draw, error
// sample, sketch update — must not allocate: populations of millions
// cost the same per tick as thousands.
func TestGeneratorSteadyStateAllocFree(t *testing.T) {
	s := sim.New(1)
	// 1e6 clients x 0.1 qps on one node: lambda = 1000 per 10 ms tick.
	g := New(s, Config{Clients: 1000000, Arrival: "mmpp"}, 0, 5, 100000, func() float64 { return 3e-6 }, nil)
	g.Start(s.Now())
	s.RunUntil(1) // warm up the ticker and event pool
	allocs := testing.AllocsPerRun(200, func() {
		s.RunUntil(s.Now() + DefaultTickS)
	})
	if allocs != 0 {
		t.Errorf("steady-state serving tick allocates %.2f/op, want 0", allocs)
	}
	if g.Queries() == 0 {
		t.Error("allocation-pinned run served no queries")
	}
}

func TestCollectMergesNodes(t *testing.T) {
	s := sim.New(1)
	sample := func() float64 { return 1e-6 }
	var gens []*Generator
	for i := 0; i < 3; i++ {
		g := New(s, Config{Clients: 300}, i, uint64(i+1), 100, sample, nil)
		g.Start(0)
		gens = append(gens, g)
	}
	s.RunUntil(5)
	st := Collect(gens, 300, 5)
	var total uint64
	for _, g := range gens {
		total += g.Queries()
	}
	if st.Queries != total || st.Nodes != 3 || st.Clients != 300 {
		t.Errorf("collect mismatch: %+v vs total %d", st, total)
	}
	if want := float64(total) / 5; st.QPS != want {
		t.Errorf("QPS = %g, want %g", st.QPS, want)
	}
}
