// Package service models the time-service client population: open-loop
// arrival processes generating 10⁵–10⁷ simulated time-query clients
// against the synchronized cluster nodes. Clients are never modeled
// individually — like the network's background-load frames, each
// serving node carries one aggregate arrival stream, advanced in fixed
// ticks: every tick draws the number of arrivals from the configured
// process, samples the node's clock error once, and feeds the batch
// into a streaming quantile sketch. The steady-state path allocates
// nothing, so populations in the millions cost the same per tick as
// populations in the thousands, and the harness can report
// served-accuracy percentiles (what error does the p99 client actually
// get?) as byte-deterministic campaign metrics.
package service

import (
	"fmt"
	"sort"
	"strings"

	"ntisim/internal/sim"
	"ntisim/internal/telemetry"
	"ntisim/internal/trace"
)

// Defaults applied by Config.withDefaults for zero-valued fields.
const (
	DefaultQPSPerClient = 0.1
	DefaultBurstFactor  = 8
	DefaultBurstFrac    = 0.1
	DefaultBurstDwellS  = 2
	DefaultTickS        = 0.01
)

// Config describes a client population. The zero value disables serving
// (Clients == 0); all other fields default sensibly when zero, so
// enabling a million-client load is just Serving.Clients = 1e6. Config
// is a pure value type — copying a cluster config copies it fully.
type Config struct {
	// Clients is the simulated client population size. 0 disables the
	// load subsystem entirely (no events, no RNG streams, no metrics).
	Clients int
	// QPSPerClient is the mean query rate per client in queries per
	// sim-second (default 0.1: each client asks for time every ~10 s).
	QPSPerClient float64
	// Arrival names the arrival process: "poisson" (default) for a
	// homogeneous open-loop stream, or "mmpp" for a two-state
	// Markov-modulated Poisson process with calm/burst phases whose
	// time-averaged rate still equals Clients × QPSPerClient.
	Arrival string
	// BurstFactor is the mmpp burst-state rate multiplier relative to
	// the calm state (default 8).
	BurstFactor float64
	// BurstFrac is the long-run fraction of time mmpp spends bursting
	// (default 0.1).
	BurstFrac float64
	// BurstDwellS is the mean sojourn time of one mmpp burst in
	// sim-seconds (default 2); calm dwells follow from BurstFrac.
	BurstDwellS float64
	// RegionalSkew shapes how the population is spread across network
	// segments: segment s receives weight RegionalSkew^s before
	// normalization. 1 (or 0, the default) is uniform; 1.5 on four
	// segments sends the last segment ~3.4× the first's traffic.
	RegionalSkew float64
	// TickS is the aggregation granularity of the arrival stream in
	// sim-seconds (default 0.01). Smaller ticks track error dynamics
	// more finely at proportionally more events.
	TickS float64
}

// withDefaults returns cfg with zero-valued tunables replaced by the
// package defaults. Clients is left as-is: zero means disabled.
func (c Config) withDefaults() Config {
	if c.QPSPerClient == 0 {
		c.QPSPerClient = DefaultQPSPerClient
	}
	if c.Arrival == "" {
		c.Arrival = "poisson"
	}
	if c.BurstFactor == 0 {
		c.BurstFactor = DefaultBurstFactor
	}
	if c.BurstFrac == 0 {
		c.BurstFrac = DefaultBurstFrac
	}
	if c.BurstDwellS == 0 {
		c.BurstDwellS = DefaultBurstDwellS
	}
	if c.RegionalSkew == 0 {
		c.RegionalSkew = 1
	}
	if c.TickS == 0 {
		c.TickS = DefaultTickS
	}
	return c
}

// arrivalNames is the closed set of arrival-process names. Kept as an
// explicit slice (sorted) so front-ends can list valid choices in
// errors without reflection.
var arrivalNames = []string{"mmpp", "poisson"}

// Arrivals returns the valid arrival-process names in sorted order.
func Arrivals() []string {
	out := make([]string, len(arrivalNames))
	copy(out, arrivalNames)
	return out
}

// ValidArrival reports whether name is a known arrival process.
func ValidArrival(name string) bool {
	i := sort.SearchStrings(arrivalNames, name)
	return i < len(arrivalNames) && arrivalNames[i] == name
}

// mustArrival validates an arrival name, panicking with the valid
// choices on error (front-ends validate user input first; reaching this
// panic means a programming error in preset or axis construction).
func mustArrival(name string) string {
	if !ValidArrival(name) {
		panic(fmt.Sprintf("service: unknown arrival process %q (choices: %s)",
			name, strings.Join(arrivalNames, ", ")))
	}
	return name
}

// Generator is one node's aggregate arrival stream. It owns a private
// RNG derived from the scenario seed and the node index — never from
// the node's shard — so the stream of arrival counts is a pure function
// of (seed, node) and identical at any shard or worker count.
type Generator struct {
	s      *sim.Simulator
	rng    *sim.RNG
	sk     *Sketch
	sample func() float64
	tr     *trace.Tracer
	node   int
	tickS  float64

	// Mean arrivals per tick in each mmpp state; for plain poisson,
	// calm carries the homogeneous rate and mmpp is false.
	calm, burst           float64
	dwellCalmS, dwellBurstS float64
	mmpp                  bool
	inBurst               bool
	nextFlip              float64

	queries uint64
	ticker  *sim.Ticker

	tmQueries *telemetry.Counter
	tmBurst   *telemetry.Histogram
}

// SetTelemetry registers the serving metrics on r: a served-query
// counter and the per-tick arrival burst-size histogram. A nil r
// detaches.
func (g *Generator) SetTelemetry(r *telemetry.Registry) {
	if r == nil {
		g.tmQueries, g.tmBurst = nil, nil
		return
	}
	g.tmQueries = r.Counter("svc.queries")
	g.tmBurst = r.Histogram("svc.tick_batch")
}

// New builds a generator serving qps mean queries per sim-second on s.
// sample must return the node's current absolute clock error in seconds
// without allocating (it runs once per tick). tr may be nil.
func New(s *sim.Simulator, cfg Config, node int, seed uint64, qps float64, sample func() float64, tr *trace.Tracer) *Generator {
	cfg = cfg.withDefaults()
	mustArrival(cfg.Arrival)
	g := &Generator{
		s:      s,
		rng:    sim.NewRNG(seed),
		sk:     NewSketch(),
		sample: sample,
		tr:     tr,
		node:   node,
		tickS:  cfg.TickS,
	}
	perTick := qps * cfg.TickS
	switch cfg.Arrival {
	case "poisson":
		g.calm = perTick
	case "mmpp":
		g.mmpp = true
		// Solve the calm rate so the duty-cycle-weighted mean still
		// equals the nominal rate: (1−f)·λc + f·B·λc = λ.
		f, b := cfg.BurstFrac, cfg.BurstFactor
		g.calm = perTick / (1 - f + f*b)
		g.burst = b * g.calm
		g.dwellBurstS = cfg.BurstDwellS
		g.dwellCalmS = cfg.BurstDwellS * (1 - f) / f
	}
	return g
}

// Start schedules the tick loop; the first tick fires one tick after at
// so it aggregates the (at, at+TickS] window.
func (g *Generator) Start(at float64) {
	if g.mmpp {
		g.inBurst = false
		g.nextFlip = at + g.rng.Exponential(g.dwellCalmS)
	}
	g.ticker = g.s.Every(at+g.tickS, g.tickS, g.step)
}

// Stop cancels the tick loop.
func (g *Generator) Stop() {
	if g.ticker != nil {
		g.ticker.Stop()
		g.ticker = nil
	}
}

// step serves one tick's worth of queries: advance the modulating
// chain, draw the arrival count, sample the node error once, and batch
// the whole tick into the sketch. Zero allocations in steady state.
func (g *Generator) step() {
	now := g.s.Now()
	lam := g.calm
	if g.mmpp {
		for now >= g.nextFlip {
			g.inBurst = !g.inBurst
			d := g.dwellCalmS
			if g.inBurst {
				d = g.dwellBurstS
			}
			g.nextFlip += g.rng.Exponential(d)
		}
		if g.inBurst {
			lam = g.burst
		}
	}
	n := g.rng.Poisson(lam)
	if n == 0 {
		return
	}
	err := g.sample()
	if err < 0 {
		err = -err
	}
	g.sk.AddN(err, n)
	g.queries += n
	g.tmQueries.Add(n)
	g.tmBurst.Observe(float64(n))
	if g.tr != nil {
		g.tr.Emit(trace.KindQueryServed, now, g.node, 0, n, 0, err)
	}
}

// Queries returns the number of queries served so far.
func (g *Generator) Queries() uint64 { return g.queries }

// Sketch returns the generator's error sketch (never nil).
func (g *Generator) Sketch() *Sketch { return g.sk }

// Stats summarizes the served-query population over a measurement
// window. All error figures are in seconds of absolute clock error as
// observed by the clients served in the window.
type Stats struct {
	// Clients is the configured population size.
	Clients int `json:"clients"`
	// Nodes is the number of serving nodes (gateways excluded).
	Nodes int `json:"nodes"`
	// Queries is the total number of queries served in the window.
	Queries uint64 `json:"queries"`
	// WindowS is the measurement window length in sim-seconds.
	WindowS float64 `json:"window_s"`
	// QPS is Queries/WindowS: served requests per sim-second.
	QPS float64 `json:"qps"`
	// ErrMeanS is the mean error across all served queries.
	ErrMeanS float64 `json:"err_mean_s"`
	// ErrP50S, ErrP99S, ErrP999S are the served-error percentiles: the
	// error the median, p99 and p99.9 client actually received.
	ErrP50S  float64 `json:"err_p50_s"`
	ErrP99S  float64 `json:"err_p99_s"`
	ErrP999S float64 `json:"err_p999_s"`
	// ErrMaxS is the exact worst error any client received.
	ErrMaxS float64 `json:"err_max_s"`
}

// Collect merges the per-node generators into population-level stats
// for a window of windowS sim-seconds. Merge order does not affect the
// result (bin counts add exactly), so per-shard generator layouts
// cannot perturb the reported figures.
func Collect(gens []*Generator, clients int, windowS float64) Stats {
	st := Stats{Clients: clients, Nodes: len(gens), WindowS: windowS}
	merged := NewSketch()
	for _, g := range gens {
		merged.Merge(g.sk)
		st.Queries += g.queries
	}
	if windowS > 0 {
		st.QPS = float64(st.Queries) / windowS
	}
	st.ErrMeanS = merged.Mean()
	st.ErrP50S = merged.Quantile(0.50)
	st.ErrP99S = merged.Quantile(0.99)
	st.ErrP999S = merged.Quantile(0.999)
	st.ErrMaxS = merged.Max()
	return st
}
