package service

import (
	"math"
	"sort"
	"testing"

	"ntisim/internal/sim"
)

func TestSketchEmpty(t *testing.T) {
	s := NewSketch()
	if s.Count() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Quantile(0.5) != 0 {
		t.Errorf("empty sketch not all-zero: count=%d mean=%g q50=%g", s.Count(), s.Mean(), s.Quantile(0.5))
	}
}

func TestSketchQuantileRelativeError(t *testing.T) {
	rng := sim.NewRNG(42)
	s := NewSketch()
	vals := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform over nearly the whole sketch range, the hardest
		// case for a fixed-width-bin histogram.
		v := 1e-8 * rng.Pareto(0.3, 1, 1e7)
		vals = append(vals, v)
		s.AddN(v, 1)
	}
	sort.Float64s(vals)
	for _, q := range []float64{0.01, 0.5, 0.9, 0.99, 0.999} {
		exact := vals[int(q*float64(len(vals)-1)+0.5)]
		got := s.Quantile(q)
		rel := (got - exact) / exact
		if rel < 0 {
			rel = -rel
		}
		// gamma = 1.02 bins guarantee ~1% relative error on the bin
		// midpoint; allow 3% for rank-vs-midpoint interactions.
		if rel > 0.03 {
			t.Errorf("q=%g: sketch %g vs exact %g (rel err %.3f)", q, got, exact, rel)
		}
	}
	if s.Max() != vals[len(vals)-1] || s.Min() != vals[0] {
		t.Errorf("min/max not exact: got [%g, %g] want [%g, %g]", s.Min(), s.Max(), vals[0], vals[len(vals)-1])
	}
}

func TestSketchMergeEqualsUnion(t *testing.T) {
	rng := sim.NewRNG(7)
	a, b, union := NewSketch(), NewSketch(), NewSketch()
	for i := 0; i < 5000; i++ {
		v := rng.Exponential(1e-5)
		n := uint64(rng.Intn(5))
		if i%2 == 0 {
			a.AddN(v, n)
		} else {
			b.AddN(v, n)
		}
		union.AddN(v, n)
	}
	a.Merge(b)
	// Counts, min and max merge exactly; the sum is a float
	// accumulation whose order differs between the two builds, so it
	// only matches to rounding. (In the cluster, per-node sketches are
	// always merged in member order, so the reported mean is still
	// byte-deterministic.)
	if a.Count() != union.Count() || a.Min() != union.Min() || a.Max() != union.Max() {
		t.Fatalf("merge summary differs from union: count %d/%d", a.Count(), union.Count())
	}
	if d := math.Abs(a.Sum() - union.Sum()); d > 1e-12*union.Sum() {
		t.Fatalf("merged sum %g vs union %g", a.Sum(), union.Sum())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
		if a.Quantile(q) != union.Quantile(q) {
			t.Errorf("q=%g: merged %g != union %g", q, a.Quantile(q), union.Quantile(q))
		}
	}
}

func TestSketchExtremesAndClamp(t *testing.T) {
	s := NewSketch()
	s.AddN(1e-12, 10) // below range: near-zero bin
	s.AddN(100, 1)    // above range: saturates last bin
	if s.Quantile(0.1) != 1e-12 {
		t.Errorf("sub-ns quantile = %g, want clamped to exact min 1e-12", s.Quantile(0.1))
	}
	if s.Quantile(1) != 100 {
		t.Errorf("saturated top quantile = %g, want clamped to exact max 100", s.Quantile(1))
	}
	if s.Quantile(-1) != s.Quantile(0) || s.Quantile(2) != s.Quantile(1) {
		t.Error("out-of-range q must clamp to the extremes")
	}
}

func TestSketchAddNAllocFree(t *testing.T) {
	s := NewSketch()
	rng := sim.NewRNG(3)
	allocs := testing.AllocsPerRun(1000, func() {
		s.AddN(rng.Exponential(1e-5), 17)
	})
	if allocs != 0 {
		t.Errorf("AddN allocates %.1f/op, want 0", allocs)
	}
}
