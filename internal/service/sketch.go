package service

import "math"

// The sketch covers served-error magnitudes from 1 ns to 10 s with a
// relative accuracy of ±(gamma−1)/2 ≈ ±1% per bin. Everything below
// sketchMinS collapses into a dedicated near-zero bin and everything
// above sketchMaxS into the last bin; the exact observed min/max clamp
// reported quantiles so saturation never invents values outside the
// sample range.
const (
	sketchMinS  = 1e-9
	sketchMaxS  = 10.0
	sketchGamma = 1.02
)

// Sketch is a log-binned streaming quantile sketch for served-error
// samples. All bins are allocated up front so the hot path (AddN) never
// allocates, and two sketches built from the same weighted samples are
// bit-identical regardless of shard or worker interleaving — merging is
// elementwise addition, which is exact on uint64 counts.
type Sketch struct {
	bins    []uint64
	zero    uint64 // samples below sketchMinS
	over    uint64 // samples at or above sketchMaxS
	count   uint64
	sum     float64
	minSeen float64
	maxSeen float64
}

// invLogGamma and numBins are fixed by the sketch constants; computed
// once so AddN is a multiply, not a log of gamma per sample batch.
var (
	invLogGamma = 1 / math.Log(sketchGamma)
	numBins     = int(math.Ceil(math.Log(sketchMaxS/sketchMinS)*invLogGamma)) + 1
)

// NewSketch returns an empty sketch with all bins preallocated.
func NewSketch() *Sketch {
	return &Sketch{bins: make([]uint64, numBins)}
}

// AddN records n samples of value v (seconds, non-negative). A batch of
// identical values is how the tick-aggregated generator feeds the
// sketch: every query served within one tick observes the same node
// error, so one AddN covers the whole batch without per-query work.
func (s *Sketch) AddN(v float64, n uint64) {
	if n == 0 {
		return
	}
	if v < 0 {
		v = -v
	}
	if s.count == 0 || v < s.minSeen {
		s.minSeen = v
	}
	if s.count == 0 || v > s.maxSeen {
		s.maxSeen = v
	}
	s.count += n
	s.sum += v * float64(n)
	if v < sketchMinS {
		s.zero += n
		return
	}
	if v >= sketchMaxS {
		s.over += n
		return
	}
	i := int(math.Log(v/sketchMinS) * invLogGamma)
	if i >= len(s.bins) {
		i = len(s.bins) - 1
	}
	s.bins[i] += n
}

// Count returns the total number of recorded samples.
func (s *Sketch) Count() uint64 { return s.count }

// Sum returns the exact sum of the recorded samples.
func (s *Sketch) Sum() float64 { return s.sum }

// Mean returns the exact mean of the recorded samples (0 when empty).
func (s *Sketch) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return s.sum / float64(s.count)
}

// Min returns the exact smallest recorded sample (0 when empty).
func (s *Sketch) Min() float64 {
	if s.count == 0 {
		return 0
	}
	return s.minSeen
}

// Max returns the exact largest recorded sample (0 when empty).
func (s *Sketch) Max() float64 {
	if s.count == 0 {
		return 0
	}
	return s.maxSeen
}

// Quantile returns the q-quantile (0 <= q <= 1) by nearest rank over
// the cumulative bin counts, reporting the geometric midpoint of the
// selected bin clamped to the exact observed [Min, Max]. Empty sketches
// return 0; q outside [0,1] clamps to the extremes.
func (s *Sketch) Quantile(q float64) float64 {
	if s.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q*float64(s.count-1) + 0.5)
	// Ranks landing in the overflow bin (or past every bin) report the
	// exact observed maximum.
	v := s.maxSeen
	if rank < s.zero {
		v = 0
	} else {
		cum := s.zero
		for i, c := range s.bins {
			cum += c
			if rank < cum {
				v = sketchMinS * math.Pow(sketchGamma, float64(i)+0.5)
				break
			}
		}
	}
	if v < s.minSeen {
		v = s.minSeen
	}
	if v > s.maxSeen {
		v = s.maxSeen
	}
	return v
}

// Merge folds o into s. Bin layouts are identical by construction, so
// the merged sketch equals one built from the union of both sample
// streams exactly — the property that makes per-node sketches safe to
// aggregate across shards in any order.
func (s *Sketch) Merge(o *Sketch) {
	if o == nil || o.count == 0 {
		return
	}
	if s.count == 0 || o.minSeen < s.minSeen {
		s.minSeen = o.minSeen
	}
	if s.count == 0 || o.maxSeen > s.maxSeen {
		s.maxSeen = o.maxSeen
	}
	s.zero += o.zero
	s.over += o.over
	s.count += o.count
	s.sum += o.sum
	for i, c := range o.bins {
		s.bins[i] += c
	}
}
